// Command faas-cli is the client for the GPU-FaaS gateway: deploy, list,
// describe, remove, scale and invoke functions.
//
// Usage:
//
//	faas-cli -gateway http://localhost:8080 deploy -name classify -model resnet18 -gpu
//	faas-cli invoke -name classify -n 5
//	faas-cli list
//	faas-cli metrics
//	faas-cli remove -name classify
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"gpufaas/internal/faas"
)

func main() {
	gateway := flag.String("gateway", "http://localhost:8080", "gateway base URL")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	var err error
	switch cmd {
	case "deploy":
		err = deploy(*gateway, args)
	case "invoke":
		err = invoke(*gateway, args)
	case "list":
		err = get(*gateway + "/system/functions")
	case "describe":
		err = describe(*gateway, args)
	case "remove":
		err = remove(*gateway, args)
	case "scale":
		err = scale(*gateway, args)
	case "metrics":
		err = get(*gateway + "/system/metrics")
	case "gpus":
		err = get(*gateway + "/system/gpus")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "faas-cli: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: faas-cli [-gateway URL] <command> [flags]
commands: deploy, invoke, list, describe, remove, scale, metrics, gpus`)
	os.Exit(2)
}

func deploy(gw string, args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	name := fs.String("name", "", "function name")
	model := fs.String("model", "", "inference model (Table I name)")
	gpu := fs.Bool("gpu", false, "enable GPU (the Dockerfile GPU flag)")
	batch := fs.Int("batch", 32, "batch size")
	tenant := fs.String("tenant", "", "owning tenant")
	replicas := fs.Int("replicas", 1, "container replicas")
	fs.Parse(args)
	spec := faas.FunctionSpec{
		Name: *name, Model: *model, GPUEnabled: *gpu,
		BatchSize: *batch, Tenant: *tenant, Replicas: *replicas,
	}
	body, _ := json.Marshal(spec)
	return post(gw+"/system/functions", body)
}

func invoke(gw string, args []string) error {
	fs := flag.NewFlagSet("invoke", flag.ExitOnError)
	name := fs.String("name", "", "function name")
	n := fs.Int("n", 1, "number of invocations")
	fs.Parse(args)
	for i := 0; i < *n; i++ {
		start := time.Now()
		resp, err := http.Post(gw+"/function/"+*name, "application/json", bytes.NewReader(nil))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("invoke %d: %s: %s", i, resp.Status, body)
		}
		var iv faas.InvokeResponse
		if err := json.Unmarshal(body, &iv); err != nil {
			return err
		}
		hit := "MISS"
		if iv.Hit {
			hit = "HIT"
		}
		fmt.Printf("#%d gpu=%s %s load=%v infer=%v latency=%v wall=%v\n",
			i, iv.GPU, hit, iv.LoadTime, iv.InferTime, iv.TotalLatency,
			time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func describe(gw string, args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	name := fs.String("name", "", "function name")
	fs.Parse(args)
	return get(gw + "/system/functions/" + *name)
}

func remove(gw string, args []string) error {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	name := fs.String("name", "", "function name")
	fs.Parse(args)
	req, err := http.NewRequest(http.MethodDelete, gw+"/system/functions/"+*name, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, body)
	}
	fmt.Println("removed")
	return nil
}

func scale(gw string, args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	name := fs.String("name", "", "function name")
	replicas := fs.Int("replicas", 1, "target replica count")
	fs.Parse(args)
	body, _ := json.Marshal(map[string]int{"replicas": *replicas})
	return post(gw+"/system/scale/"+*name, body)
}

func post(url string, body []byte) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, out)
	}
	fmt.Printf("%s\n", out)
	return nil
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, out)
	}
	fmt.Printf("%s\n", out)
	return nil
}
