// Command loadgen drives a live GPU-FaaS gateway over HTTP in one of
// two modes.
//
// Replay (default) replays a trace-shaped workload: it deploys one
// GPU-enabled function per working-set rank, then issues the per-minute
// invocation mix at a configurable speedup, printing per-function
// hit/miss latency statistics at the end. It is the live-path analogue
// of the simulated experiment harness.
//
// Overload (-mode overload) is the load-shedding harness: a closed-loop
// calibration phase measures the gateway's capacity, then open-loop
// phases ramp the offered rate past it (each phase multiplies the rate
// by -rps-factor). Arrivals are paced by the wall clock and never wait
// for completions — the regime where a closed-loop generator silently
// self-throttles. Each phase reports offered vs goodput, the 429 shed
// count (pair with -admit-concurrent on the gateway; without admission
// control the tail diverges instead), served-latency p50/p95/p99 and
// the generator's own runtime.MemStats telemetry. -json writes the
// phase rows machine-readably. With -retry N a 429 is retried up to N
// times, honoring the Retry-After hint with deterministic jitter;
// retried successes are reported separately from first-try goodput so
// retries never inflate the headline rate.
//
// Usage:
//
//	faas-gateway -timescale 0.001 &
//	loadgen -gateway http://localhost:8080 -ws 15 -minutes 1 -rpm 60 -speedup 60
//
//	faas-gateway -timescale 0.1 -admit-concurrent 8 -admit-queue 16 &
//	loadgen -mode overload -phases 3 -rps-factor 2 -phase-seconds 5
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpufaas/internal/experiments"
	"gpufaas/internal/faas"
	"gpufaas/internal/models"
	"gpufaas/internal/stats"
)

func main() {
	gateway := flag.String("gateway", "http://localhost:8080", "gateway base URL")
	mode := flag.String("mode", "replay", "replay (trace-shaped workload) or overload (closed-loop calibration + open-loop RPS ramp)")
	ws := flag.Int("ws", 15, "working-set size (functions) [replay]")
	minutes := flag.Int("minutes", 1, "trace minutes to replay [replay]")
	rpm := flag.Int("rpm", 60, "requests per minute after normalization [replay]")
	speedup := flag.Float64("speedup", 60, "replay speedup over trace time [replay]")
	seed := flag.Int64("seed", 1, "workload seed [replay]")
	fn := flag.String("fn", "overload-fn", "function to hammer [overload]")
	model := flag.String("model", "resnet18", "model for -fn if it needs deploying [overload]")
	batch := flag.Int("batch", 1, "batch size for -fn if it needs deploying [overload]")
	concurrency := flag.Int("concurrency", 8, "closed-loop calibration workers [overload]")
	calibSec := flag.Float64("calibrate-seconds", 2, "closed-loop calibration window [overload]")
	phases := flag.Int("phases", 3, "open-loop phases [overload]")
	phaseSec := flag.Float64("phase-seconds", 3, "seconds per open-loop phase [overload]")
	rpsStart := flag.Float64("rps-start", 0, "first phase's offered rate (0 = the calibrated capacity) [overload]")
	rpsFactor := flag.Float64("rps-factor", 2, "offered-rate multiplier between phases [overload]")
	tenant := flag.String("tenant", "", "X-Tenant header value (exercises per-tenant token buckets) [overload]")
	jsonPath := flag.String("json", "", "write the overload phase rows as JSON to this path [overload]")
	retry := flag.Int("retry", 0, "retries per request after a 429, honoring Retry-After with jittered backoff (0: report the shed and move on) [overload]")
	retrySeed := flag.Uint64("retry-seed", 1, "seed for the deterministic retry jitter [overload]")
	flag.Parse()

	var err error
	switch *mode {
	case "replay":
		err = run(*gateway, *ws, *minutes, *rpm, *speedup, *seed)
	case "overload":
		err = runOverload(overloadParams{
			gateway: *gateway, fn: *fn, model: *model, batch: *batch,
			concurrency: *concurrency, calibrate: secs(*calibSec),
			phases: *phases, phaseDur: secs(*phaseSec),
			rpsStart: *rpsStart, rpsFactor: *rpsFactor,
			tenant: *tenant, jsonPath: *jsonPath,
			retry: *retry, retrySeed: *retrySeed,
		})
	default:
		err = fmt.Errorf("unknown mode %q (want replay or overload)", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func run(gateway string, ws, minutes, rpm int, speedup float64, seed int64) error {
	if speedup <= 0 {
		return fmt.Errorf("non-positive speedup %g", speedup)
	}
	p := experiments.WorkloadParams{
		Minutes: minutes, RequestsPerMinute: rpm, WorkingSet: ws,
		Batch: 8, Seed: seed,
	}
	built, err := experiments.Workload(p, models.Default())
	if err != nil {
		return err
	}

	// One function per model instance. The gateway validates models
	// against its own zoo (Table I), so deploy the base architecture.
	deployed := map[string]string{} // model instance -> function name
	for i, name := range built.Zoo.Names() {
		fn := fmt.Sprintf("ws-fn-%02d", i)
		base := name
		if j := bytes.IndexByte([]byte(name), '@'); j >= 0 {
			base = name[:j]
		}
		spec := faas.FunctionSpec{Name: fn, GPUEnabled: true, Model: base, BatchSize: 8}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(gateway+"/system/functions", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("deploy %s: %s", fn, resp.Status)
		}
		deployed[name] = fn
	}
	fmt.Printf("deployed %d functions; replaying %d requests at %gx\n",
		len(deployed), len(built.Requests), speedup)

	type agg struct {
		lat  *stats.Sample
		hits int
		miss int
	}
	aggs := map[string]*agg{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for _, r := range built.Requests {
		at := time.Duration(float64(r.Arrival) / speedup)
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		fn := deployed[r.Model]
		wg.Add(1)
		go func(fn string) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := http.Post(gateway+"/function/"+fn, "application/json", nil)
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var iv faas.InvokeResponse
			if json.Unmarshal(body, &iv) != nil {
				return
			}
			mu.Lock()
			a, ok := aggs[fn]
			if !ok {
				a = &agg{lat: stats.NewSample(64)}
				aggs[fn] = a
			}
			a.lat.Add(time.Since(t0).Seconds())
			if iv.Hit {
				a.hits++
			} else {
				a.miss++
			}
			mu.Unlock()
		}(fn)
	}
	wg.Wait()

	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-10s %6s %6s %6s %10s %10s\n", "function", "n", "hits", "miss", "mean(s)", "p95(s)")
	var total, misses int
	for _, n := range names {
		a := aggs[n]
		fmt.Printf("%-10s %6d %6d %6d %10.3f %10.3f\n",
			n, a.lat.N(), a.hits, a.miss, a.lat.Mean(), a.lat.Percentile(95))
		total += a.hits + a.miss
		misses += a.miss
	}
	if total > 0 {
		fmt.Printf("\noverall: %d requests, miss ratio %.3f, wall %v\n",
			total, float64(misses)/float64(total), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// overloadParams configures the overload harness.
type overloadParams struct {
	gateway, fn, model, tenant, jsonPath string
	batch, concurrency, phases           int
	calibrate, phaseDur                  time.Duration
	rpsStart, rpsFactor                  float64
	retry                                int
	retrySeed                            uint64
}

// retrier replays 429s with capped attempts and jittered backoff. The
// jitter is a pure function of (seed, draw index) — splitmix64, like
// the simulator's samplers — so two loadgen runs against equally-loaded
// gateways retry on the same schedule.
type retrier struct {
	max  int // retries per request after the first attempt
	seed uint64
	seq  atomic.Uint64
}

// backoff turns the server's Retry-After hint into this attempt's wait:
// hint × [0.75, 1.25), so synchronized shed waves desynchronize instead
// of re-arriving as a thundering herd.
func (rt *retrier) backoff(hint time.Duration) time.Duration {
	z := rt.seed ^ (rt.seq.Add(1) * 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	frac := 0.75 + 0.5*float64(z>>11)/float64(uint64(1)<<53)
	return time.Duration(float64(hint) * frac)
}

// retryAfter parses the 429's Retry-After delay-seconds; absent or
// malformed hints back off a token 100ms.
func retryAfter(resp *http.Response) time.Duration {
	if s, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return 100 * time.Millisecond
}

// phaseRow is one harness phase, printed as a table row and exported by
// -json.
type phaseRow struct {
	Phase       string  `json:"phase"`
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int64   `json:"sent"`
	Served      int64   `json:"served"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	GoodputRPS  float64 `json:"goodput_rps"`
	// Retry accounting (-retry only): successes that needed at least one
	// retry, total retry attempts fired, and goodput counting only
	// first-try successes — the honest headline under retry, since a
	// retried success consumed extra offered capacity to land.
	ServedRetried      int64   `json:"served_retried,omitempty"`
	Retries            int64   `json:"retries,omitempty"`
	FirstTryGoodputRPS float64 `json:"first_try_goodput_rps,omitempty"`
	P50Ms              float64 `json:"p50_ms"`
	P95Ms              float64 `json:"p95_ms"`
	P99Ms              float64 `json:"p99_ms"`
	MaxMs              float64 `json:"max_ms"`
	// Generator-side allocation telemetry (runtime.MemStats deltas):
	// heap allocations per sent request and the net heap growth.
	AllocsPerOp float64 `json:"allocs_per_op"`
	HeapDeltaMB float64 `json:"heap_delta_mb"`
}

// phaseAgg accumulates one phase's outcomes across request goroutines.
type phaseAgg struct {
	mu            sync.Mutex
	latsMs        []float64
	served        atomic.Int64
	servedRetried atomic.Int64
	retries       atomic.Int64
	shed          atomic.Int64
	errs          atomic.Int64
}

// hit fires one invocation and files the outcome: 2xx served, 429 shed
// (retried first when rt allows), anything else (including transport
// errors) an error. Served latency spans the whole exchange including
// any backoff waits — that is what the caller experienced.
func (pa *phaseAgg) hit(client *http.Client, url, tenant string, rt *retrier) {
	t0 := time.Now()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, nil)
		if err != nil {
			pa.errs.Add(1)
			return
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			pa.errs.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			pa.served.Add(1)
			if attempt > 0 {
				pa.servedRetried.Add(1)
			}
			latMs := float64(time.Since(t0)) / float64(time.Millisecond)
			pa.mu.Lock()
			pa.latsMs = append(pa.latsMs, latMs)
			pa.mu.Unlock()
			return
		case resp.StatusCode == http.StatusTooManyRequests:
			if rt == nil || attempt >= rt.max {
				pa.shed.Add(1)
				return
			}
			pa.retries.Add(1)
			time.Sleep(rt.backoff(retryAfter(resp)))
		default:
			pa.errs.Add(1)
			return
		}
	}
}

// row folds the aggregate into a phase row.
func (pa *phaseAgg) row(name string, offered float64, dur, elapsed time.Duration, sent int64) phaseRow {
	r := phaseRow{
		Phase: name, OfferedRPS: offered, DurationSec: dur.Seconds(),
		Sent: sent, Served: pa.served.Load(), Shed: pa.shed.Load(), Errors: pa.errs.Load(),
		GoodputRPS:    float64(pa.served.Load()) / elapsed.Seconds(),
		ServedRetried: pa.servedRetried.Load(), Retries: pa.retries.Load(),
	}
	if r.ServedRetried > 0 {
		r.FirstTryGoodputRPS = float64(r.Served-r.ServedRetried) / elapsed.Seconds()
	}
	pa.mu.Lock()
	defer pa.mu.Unlock()
	sort.Float64s(pa.latsMs)
	if n := len(pa.latsMs); n > 0 {
		at := func(q float64) float64 { return pa.latsMs[int(q*float64(n-1))] }
		r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs = at(0.50), at(0.95), at(0.99), pa.latsMs[n-1]
	}
	return r
}

// runOverload deploys the target function if needed, calibrates
// capacity in closed loop, then ramps open-loop phases past it.
func runOverload(p overloadParams) error {
	if p.phases < 1 || p.rpsFactor <= 0 || p.concurrency < 1 {
		return fmt.Errorf("need phases >= 1, rps-factor > 0, concurrency >= 1")
	}
	spec := faas.FunctionSpec{Name: p.fn, GPUEnabled: true, Model: p.model, BatchSize: p.batch}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(p.gateway+"/system/functions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("deploy %s: %s", p.fn, resp.Status)
	}
	url := p.gateway + "/function/" + p.fn
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4 * p.concurrency}}

	// Closed loop: a fixed worker pool, each firing as fast as the
	// gateway completes. Its sustained rate is the capacity estimate
	// that anchors the ramp.
	var calib phaseAgg
	var sent atomic.Int64
	deadline := time.Now().Add(p.calibrate)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				sent.Add(1)
				// No retrier: calibration measures raw capacity; backoff
				// sleeps would understate it.
				calib.hit(client, url, p.tenant, nil)
			}
		}()
	}
	wg.Wait()
	rows := []phaseRow{calib.row("closed_loop", 0, p.calibrate, time.Since(start), sent.Load())}
	if rows[0].Served == 0 {
		return fmt.Errorf("calibration served nothing (errors=%d); is the gateway up?", rows[0].Errors)
	}

	rps := p.rpsStart
	if rps <= 0 {
		rps = rows[0].GoodputRPS
	}
	var rt *retrier
	if p.retry > 0 {
		rt = &retrier{max: p.retry, seed: p.retrySeed}
	}
	for i := 0; i < p.phases; i++ {
		var pa phaseAgg
		var sent int64
		interval := time.Duration(float64(time.Second) / rps)

		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)

		start := time.Now()
		var wg sync.WaitGroup
		for next := start; time.Since(start) < p.phaseDur; next = next.Add(interval) {
			// Open loop: sleep to the schedule; when late, fire
			// immediately rather than quietly lowering the offered rate.
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				pa.hit(client, url, p.tenant, rt)
			}()
		}
		wg.Wait() // drain: backlogged requests' latencies belong to this phase

		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)

		row := pa.row(fmt.Sprintf("open_loop_%d", i+1), rps, p.phaseDur, time.Since(start), sent)
		row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(sent)
		row.HeapDeltaMB = (float64(m1.HeapAlloc) - float64(m0.HeapAlloc)) / (1 << 20)
		rows = append(rows, row)
		rps *= p.rpsFactor
	}

	fmt.Printf("%-14s %8s %7s %7s %6s %5s %9s %8s %8s %8s %9s\n",
		"phase", "offered", "sent", "served", "shed", "err", "goodput", "p50(ms)", "p95(ms)", "p99(ms)", "allocs/op")
	for _, r := range rows {
		fmt.Printf("%-14s %8.1f %7d %7d %6d %5d %9.1f %8.1f %8.1f %8.1f %9.1f\n",
			r.Phase, r.OfferedRPS, r.Sent, r.Served, r.Shed, r.Errors,
			r.GoodputRPS, r.P50Ms, r.P95Ms, r.P99Ms, r.AllocsPerOp)
		if r.Retries > 0 || r.ServedRetried > 0 {
			fmt.Printf("%-14s   retried-success %d (of %d served), %d retry attempts, first-try goodput %.1f rps\n",
				"", r.ServedRetried, r.Served, r.Retries, r.FirstTryGoodputRPS)
		}
	}
	if p.jsonPath != "" {
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(p.jsonPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", p.jsonPath)
	}
	return nil
}
