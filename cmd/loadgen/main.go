// Command loadgen replays a trace-shaped workload against a live GPU-FaaS
// gateway over HTTP: it deploys one GPU-enabled function per working-set
// rank, then issues the per-minute invocation mix at a configurable
// speedup, printing per-function hit/miss latency statistics at the end.
// It is the live-path analogue of the simulated experiment harness.
//
// Usage:
//
//	faas-gateway -timescale 0.001 &
//	loadgen -gateway http://localhost:8080 -ws 15 -minutes 1 -rpm 60 -speedup 60
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"gpufaas/internal/experiments"
	"gpufaas/internal/faas"
	"gpufaas/internal/models"
	"gpufaas/internal/stats"
)

func main() {
	gateway := flag.String("gateway", "http://localhost:8080", "gateway base URL")
	ws := flag.Int("ws", 15, "working-set size (functions)")
	minutes := flag.Int("minutes", 1, "trace minutes to replay")
	rpm := flag.Int("rpm", 60, "requests per minute after normalization")
	speedup := flag.Float64("speedup", 60, "replay speedup over trace time")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*gateway, *ws, *minutes, *rpm, *speedup, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run(gateway string, ws, minutes, rpm int, speedup float64, seed int64) error {
	if speedup <= 0 {
		return fmt.Errorf("non-positive speedup %g", speedup)
	}
	p := experiments.WorkloadParams{
		Minutes: minutes, RequestsPerMinute: rpm, WorkingSet: ws,
		Batch: 8, Seed: seed,
	}
	built, err := experiments.Workload(p, models.Default())
	if err != nil {
		return err
	}

	// One function per model instance. The gateway validates models
	// against its own zoo (Table I), so deploy the base architecture.
	deployed := map[string]string{} // model instance -> function name
	for i, name := range built.Zoo.Names() {
		fn := fmt.Sprintf("ws-fn-%02d", i)
		base := name
		if j := bytes.IndexByte([]byte(name), '@'); j >= 0 {
			base = name[:j]
		}
		spec := faas.FunctionSpec{Name: fn, GPUEnabled: true, Model: base, BatchSize: 8}
		body, _ := json.Marshal(spec)
		resp, err := http.Post(gateway+"/system/functions", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("deploy %s: %s", fn, resp.Status)
		}
		deployed[name] = fn
	}
	fmt.Printf("deployed %d functions; replaying %d requests at %gx\n",
		len(deployed), len(built.Requests), speedup)

	type agg struct {
		lat  *stats.Sample
		hits int
		miss int
	}
	aggs := map[string]*agg{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for _, r := range built.Requests {
		at := time.Duration(float64(r.Arrival) / speedup)
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		fn := deployed[r.Model]
		wg.Add(1)
		go func(fn string) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := http.Post(gateway+"/function/"+fn, "application/json", nil)
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var iv faas.InvokeResponse
			if json.Unmarshal(body, &iv) != nil {
				return
			}
			mu.Lock()
			a, ok := aggs[fn]
			if !ok {
				a = &agg{lat: stats.NewSample(64)}
				aggs[fn] = a
			}
			a.lat.Add(time.Since(t0).Seconds())
			if iv.Hit {
				a.hits++
			} else {
				a.miss++
			}
			mu.Unlock()
		}(fn)
	}
	wg.Wait()

	names := make([]string, 0, len(aggs))
	for n := range aggs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("\n%-10s %6s %6s %6s %10s %10s\n", "function", "n", "hits", "miss", "mean(s)", "p95(s)")
	var total, misses int
	for _, n := range names {
		a := aggs[n]
		fmt.Printf("%-10s %6d %6d %6d %10.3f %10.3f\n",
			n, a.lat.N(), a.hits, a.miss, a.lat.Mean(), a.lat.Percentile(95))
		total += a.hits + a.miss
		misses += a.miss
	}
	if total > 0 {
		fmt.Printf("\noverall: %d requests, miss ratio %.3f, wall %v\n",
			total, float64(misses)/float64(total), time.Since(start).Round(time.Millisecond))
	}
	return nil
}
