// Command faas-bench regenerates the paper's evaluation artifacts: Table I
// and the data series behind Figures 4a/4b/4c, 5, 6 and 7, plus the
// extension ablations (cache replacement policy, GPU scaling).
//
// Usage:
//
//	faas-bench [-exp all|table1|fig4|fig7|cachepolicy|scaling]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gpufaas/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all|table1|fig4|fig7|cachepolicy|scaling")
	flag.Parse()

	run := func(name string, fn func() error) {
		fmt.Printf("\n== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table I — model profiles (occupancy, load, inference @ batch 32)", func() error {
			rows, err := experiments.TableI()
			if err != nil {
				return err
			}
			experiments.WriteTableI(os.Stdout, rows)
			return nil
		})
	}
	if want("fig4") {
		run("Figures 4a/4b/4c, 5, 6 — scheduler x working-set matrix", func() error {
			rows, err := experiments.Fig4Matrix()
			if err != nil {
				return err
			}
			experiments.WriteFig4Table(os.Stdout, rows)
			return nil
		})
	}
	if want("fig7") {
		run("Figure 7 — O3 starvation-limit sensitivity (working set 35)", func() error {
			pts, err := experiments.Fig7Sweep()
			if err != nil {
				return err
			}
			experiments.WriteFig7Table(os.Stdout, pts)
			return nil
		})
	}
	if want("cachepolicy") {
		run("Ablation — cache replacement policy under LALBO3 (ws=35)", func() error {
			out, err := experiments.CachePolicyComparison(35)
			if err != nil {
				return err
			}
			var keys []string
			for k := range out {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Printf("%-6s %12s %10s\n", "policy", "avg_lat(s)", "miss")
			for _, k := range keys {
				r := out[k]
				fmt.Printf("%-6s %12.3f %10.4f\n", k, r.AvgLatencySec, r.MissRatio)
			}
			return nil
		})
	}
	if want("scaling") {
		run("Ablation — GPU count scaling under LALBO3 (ws=25)", func() error {
			rows, err := experiments.GPUScaling([]int{2, 3, 4, 5})
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %12s %10s %8s\n", "config", "avg_lat(s)", "miss", "sm_util")
			for _, r := range rows {
				fmt.Printf("%-14s %12.3f %10.4f %8.4f\n", r.Policy, r.AvgLatencySec, r.MissRatio, r.SMUtilization)
			}
			return nil
		})
	}
}
