// Command faas-bench regenerates the paper's evaluation artifacts: Table I
// and the data series behind Figures 4a/4b/4c, 5, 6 and 7, plus the
// extension ablations (cache replacement policy, GPU scaling). Grid
// experiments fan out across a worker pool; -json writes a machine-
// readable BENCH_*.json snapshot (schema documented in EXPERIMENTS.md) so
// the perf trajectory is tracked across commits.
//
// Usage:
//
//	faas-bench [-exp all|table1|fig4|fig7|cachepolicy|scaling|elasticity|heterogeneity|scale|cells|obs|hotpath|overload|batch|chaos]
//	           [-list] [-workers N] [-short] [-json BENCH_baseline.json] [-det-json canon.json] [-v]
//	           [-trace trace.json]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	           [-blockprofile block.pprof] [-mutexprofile mutex.pprof]
//
// -list prints every experiment with a one-liner and whether it is part
// of `-exp all` and of the CI determinism gates — the explicit-only
// exclusions (cells, obs, overload, batch, chaos) are otherwise discoverable
// only by reading this comment.
//
// The pprof flags profile the experiment run itself (`go tool pprof
// <binary> cpu.pprof`), so perf work on the simulator hot paths starts
// from a measured profile rather than guesswork. -blockprofile and
// -mutexprofile capture contention (the worker pool and the per-cell
// cluster locks), which CPU samples cannot see.
//
// -det-json writes a second, canonicalized snapshot with every
// environment-/timing-dependent field zeroed (created_at, go_version,
// gomaxprocs, workers, all wall-clock and speedup fields). Two runs of
// the same experiment at different worker counts must produce
// byte-identical -det-json files; CI diffs them as the determinism gate.
//
// The `cells` experiment (the multi-cell shard sweep) is deliberately
// NOT part of `-exp all`: its 16k-GPU rows dwarf the rest of the grid.
// Run it explicitly with `-exp cells` (and `-short` to cap at 4096).
// Likewise `obs` (the fully instrumented K=1 vs K=16 comparison): it
// is the only experiment that produces lifecycle spans, so -trace —
// which renders them as Chrome trace-event JSON for Perfetto /
// chrome://tracing — requires `-exp obs`. The trace is deterministic:
// byte-identical at any worker count (CI diffs it too).
//
// The `overload` experiment is also explicit-only, for the opposite
// reason: it is the one experiment that measures the LIVE serving path
// with wall-clock goroutines (open-loop arrivals past saturation,
// admission control on vs off), so its rows are real time measurements
// — excluded from `-exp all` and from every determinism gate.
//
// The `batch` experiment (the coalesced-dispatch frontier sweep) is
// explicit-only like cells — its saturated burst cells dwarf the rest
// of the grid — but pure sim time, so it DOES join the determinism
// gates (CI diffs its -det-json across worker counts).
//
// The `chaos` experiment (the availability sweep: deterministic fault
// injection, mode × MTTR × retry policy) is explicit-only for the same
// reason as batch — its 12-minute fault-injected cells dwarf the grid —
// and, like batch, pure sim time: every fault instant is a function of
// the seed, so it joins the determinism gates too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"gpufaas/internal/experiments"
	"gpufaas/internal/obs"
)

// snapshot is the BENCH_*.json payload. Every figure series the run
// produced is embedded, plus enough environment metadata to compare
// wall-clock numbers across commits.
type snapshot struct {
	Schema      string  `json:"schema"`
	CreatedAt   string  `json:"created_at"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Experiment  string  `json:"experiment"`
	WallSeconds float64 `json:"wall_seconds"`

	Experiments map[string]expResult `json:"experiments"`
}

// expResult is one experiment's series plus its wall-clock cost.
type expResult struct {
	WallSeconds   float64                        `json:"wall_seconds"`
	Runs          int                            `json:"runs"`
	Rows          []experiments.Row              `json:"rows,omitempty"`
	Fig7          []experiments.Fig7Point        `json:"fig7,omitempty"`
	TableI        []experiments.TableIRow        `json:"table1,omitempty"`
	CachePolicy   map[string]experiments.Row     `json:"cache_policy,omitempty"`
	Elasticity    []experiments.ElasticityRow    `json:"elasticity,omitempty"`
	Heterogeneity []experiments.HeterogeneityRow `json:"heterogeneity,omitempty"`
	Scale         []experiments.ScaleRow         `json:"scale,omitempty"`
	Cells         []experiments.CellRow          `json:"cells,omitempty"`
	Obs           []experiments.ObsRow           `json:"obs,omitempty"`
	Hotpath       []experiments.HotpathRow       `json:"hotpath,omitempty"`
	Overload      []experiments.OverloadRow      `json:"overload,omitempty"`
	Batch         []experiments.BatchRow         `json:"batch,omitempty"`
	Chaos         []experiments.ChaosRow         `json:"chaos,omitempty"`
}

// canonicalize deep-copies a snapshot with every field that legitimately
// varies between runs of the same experiment zeroed out, leaving only
// bytes the simulation itself determines. This is what -det-json writes
// and what the CI determinism gate compares across worker counts.
func canonicalize(snap snapshot) snapshot {
	out := snap
	out.CreatedAt = ""
	out.GoVersion = ""
	out.GOMAXPROCS = 0
	out.Workers = 0
	out.WallSeconds = 0
	out.Experiments = make(map[string]expResult, len(snap.Experiments))
	for name, res := range snap.Experiments {
		res.WallSeconds = 0
		if len(res.Cells) > 0 {
			rows := make([]experiments.CellRow, len(res.Cells))
			copy(rows, res.Cells)
			for i := range rows {
				rows[i].WallSeconds = 0
				rows[i].Speedup = 0
			}
			res.Cells = rows
		}
		out.Experiments[name] = res
	}
	return out
}

// experimentCatalog backs -list: every experiment, whether `-exp all`
// runs it, and whether its canonical snapshot feeds a CI determinism
// gate (the workers=1 vs workers=8 -det-json byte comparison). Kept
// next to benchMain's run calls — a new experiment adds a row here.
var experimentCatalog = []struct {
	name    string
	inAll   bool
	detGate bool
	oneLine string
}{
	{"table1", true, false, "Table I model profiles: occupancy, load and inference time at batch 32"},
	{"fig4", true, false, "Figures 4a/4b/4c, 5, 6: scheduler x working-set latency/miss matrix"},
	{"fig7", true, false, "Figure 7: O3 starvation-limit sensitivity at working set 35"},
	{"cachepolicy", true, false, "ablation: cache replacement policy under LALBO3"},
	{"scaling", true, false, "ablation: GPU count scaling under LALBO3"},
	{"elasticity", true, false, "fixed vs autoscaled fleet on diurnal and bursty traces"},
	{"heterogeneity", true, false, "homogeneous vs mixed fleets, cost-aware tiered scaling"},
	{"scale", true, false, "streaming replay at production fleet sizes and trace lengths"},
	{"cells", false, true, "multi-cell sharded fleets behind the front-door router"},
	{"obs", false, true, "instrumented run: lifecycle trace, latency breakdown, time series"},
	{"hotpath", true, false, "engine fire / scheduler decision microbenchmarks"},
	{"overload", false, false, "live gateway past saturation, admission control on vs off (wall clock)"},
	{"batch", false, true, "coalesced same-model dispatch frontier: policy x shape x MaxBatch"},
	{"chaos", false, true, "availability sweep: deterministic faults, mode x MTTR x retry policy"},
}

// listExperiments renders the catalog for -list.
func listExperiments(w io.Writer) {
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(w, "%-14s %-7s %-9s %s\n", "experiment", "in-all", "det-gate", "description")
	for _, e := range experimentCatalog {
		fmt.Fprintf(w, "%-14s %-7s %-9s %s\n", e.name, yn(e.inAll), yn(e.detGate), e.oneLine)
	}
	fmt.Fprintf(w, "\nin-all: runs under `-exp all`; det-gate: CI compares its -det-json\nsnapshot byte-for-byte across worker counts. overload measures wall\nclock and must never join a determinism gate.\n")
}

func main() {
	// The body runs in a helper so deferred profile flushes execute even
	// when an experiment fails (os.Exit skips defers).
	os.Exit(benchMain())
}

func benchMain() int {
	exp := flag.String("exp", "all", "experiment to run: all|table1|fig4|fig7|cachepolicy|scaling|elasticity|heterogeneity|scale|cells|obs|hotpath|overload|batch|chaos (cells, obs, overload, batch and chaos are not part of all)")
	list := flag.Bool("list", false, "print every experiment with a one-liner, whether it runs under -exp all, and whether it feeds the CI determinism gates, then exit")
	workers := flag.Int("workers", 0, "concurrent experiment runs (0 = GOMAXPROCS)")
	short := flag.Bool("short", false, "shrink long experiments (elasticity/heterogeneity run the 6-minute traces; scale drops the 1024-GPU and hour-long cells; the cell sweep caps at 4096 GPUs; obs halves the trace)")
	jsonPath := flag.String("json", "", "write a BENCH_*.json snapshot to this path")
	detJSONPath := flag.String("det-json", "", "also write a canonicalized snapshot (wall-clock and environment fields zeroed) to this path; CI diffs these across worker counts")
	tracePath := flag.String("trace", "", "write the sampled request-lifecycle spans as Chrome trace-event JSON (open in Perfetto); requires -exp obs")
	verbose := flag.Bool("v", false, "stream each grid cell as it completes")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memProfile := flag.String("memprofile", "", "write an allocation profile (at exit) to this path")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile (at exit) to this path")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile (at exit) to this path")
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return 0
	}

	switch *exp {
	case "all", "table1", "fig4", "fig7", "cachepolicy", "scaling", "elasticity", "heterogeneity", "scale", "cells", "obs", "hotpath", "overload", "batch", "chaos":
	default:
		fmt.Fprintf(os.Stderr, "faas-bench: unknown experiment %q (want all|table1|fig4|fig7|cachepolicy|scaling|elasticity|heterogeneity|scale|cells|obs|hotpath|overload|batch|chaos; see -list)\n", *exp)
		os.Exit(2)
	}
	if *tracePath != "" && *exp != "obs" {
		fmt.Fprintf(os.Stderr, "faas-bench: -trace requires -exp obs (only the obs experiment samples lifecycle spans)\n")
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: create %s: %v\n", *cpuProfile, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: start CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote CPU profile %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faas-bench: create %s: %v\n", path, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush final allocation stats into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "faas-bench: write mem profile: %v\n", err)
				return
			}
			fmt.Printf("wrote allocation profile %s\n", path)
		}()
	}
	// Contention profiles dump at exit like the allocation profile.
	// Rate 1 records every event — acceptable for a bench run, where the
	// question ("which lock serializes the worker pool?") wants the full
	// picture, not a sample.
	writeProfile := func(kind, path string) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: create %s: %v\n", path, err)
			return
		}
		defer f.Close()
		if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: write %s profile: %v\n", kind, err)
			return
		}
		fmt.Printf("wrote %s profile %s\n", kind, path)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProfile)
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProfile)
	}

	var stream func(experiments.Spec, experiments.Row)
	if *verbose {
		stream = func(s experiments.Spec, r experiments.Row) {
			fmt.Printf("  done %-24s avg_lat=%.3fs miss=%.4f\n", s.Name, r.AvgLatencySec, r.MissRatio)
		}
	}
	m := experiments.Matrix{Workers: *workers, OnRow: stream}

	snap := snapshot{
		Schema:      "gpufaas-bench/v1",
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     *workers,
		Experiment:  *exp,
		Experiments: make(map[string]expResult),
	}

	// A failed experiment aborts the remaining ones (and the snapshot
	// write) but still returns through benchMain, so the deferred
	// profile flushes run — a failing run is exactly the one worth
	// profiling.
	failed := false
	run := func(name, title string, fn func() (expResult, error)) {
		if failed || (*exp != "all" && *exp != name) {
			return
		}
		fmt.Printf("\n== %s ==\n", title)
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: %s: %v\n", name, err)
			failed = true
			return
		}
		res.WallSeconds = time.Since(start).Seconds()
		snap.Experiments[name] = res
		fmt.Printf("-- %s: %d runs in %.2fs\n", name, res.Runs, res.WallSeconds)
	}

	total := time.Now()
	run("table1", "Table I — model profiles (occupancy, load, inference @ batch 32)", func() (expResult, error) {
		rows, err := experiments.TableI()
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteTableI(os.Stdout, rows)
		return expResult{TableI: rows, Runs: 1}, nil
	})
	run("fig4", "Figures 4a/4b/4c, 5, 6 — scheduler x working-set matrix", func() (expResult, error) {
		rows, err := experiments.Fig4MatrixWith(m)
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteFig4Table(os.Stdout, rows)
		return expResult{Rows: rows, Runs: len(rows)}, nil
	})
	run("fig7", "Figure 7 — O3 starvation-limit sensitivity (working set 35)", func() (expResult, error) {
		pts, err := experiments.Fig7SweepWith(m)
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteFig7Table(os.Stdout, pts)
		return expResult{Fig7: pts, Runs: len(pts)}, nil
	})
	run("cachepolicy", "Ablation — cache replacement policy under LALBO3 (ws=35)", func() (expResult, error) {
		out, err := experiments.CachePolicyComparisonWith(m, 35)
		if err != nil {
			return expResult{}, err
		}
		var keys []string
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("%-6s %12s %10s\n", "policy", "avg_lat(s)", "miss")
		for _, k := range keys {
			r := out[k]
			fmt.Printf("%-6s %12.3f %10.4f\n", k, r.AvgLatencySec, r.MissRatio)
		}
		return expResult{CachePolicy: out, Runs: len(out)}, nil
	})
	run("scaling", "Ablation — GPU count scaling under LALBO3 (ws=25)", func() (expResult, error) {
		rows, err := experiments.GPUScalingWith(m, []int{2, 3, 4, 5})
		if err != nil {
			return expResult{}, err
		}
		fmt.Printf("%-14s %12s %10s %8s\n", "config", "avg_lat(s)", "miss", "sm_util")
		for _, r := range rows {
			fmt.Printf("%-14s %12.3f %10.4f %8.4f\n", r.Policy, r.AvgLatencySec, r.MissRatio, r.SMUtilization)
		}
		return expResult{Rows: rows, Runs: len(rows)}, nil
	})
	run("elasticity", "Elasticity — fixed vs autoscaled fleet on diurnal/bursty traces", func() (expResult, error) {
		rows, err := experiments.ElasticitySweep(m, *short)
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteElasticityTable(os.Stdout, rows)
		return expResult{Elasticity: rows, Runs: len(rows)}, nil
	})
	run("heterogeneity", "Heterogeneity — homogeneous vs mixed fleets, cost-aware tiered scaling", func() (expResult, error) {
		rows, err := experiments.HeterogeneitySweep(m, *short)
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteHeterogeneityTable(os.Stdout, rows)
		return expResult{Heterogeneity: rows, Runs: len(rows)}, nil
	})
	run("scale", "Scale — streaming replay at production fleet sizes and trace lengths", func() (expResult, error) {
		rows, err := experiments.ScaleSweep(m, *short)
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteScaleTable(os.Stdout, rows)
		return expResult{Scale: rows, Runs: len(rows)}, nil
	})
	// Excluded from -exp all (the 16k-GPU rows dwarf the rest of the
	// grid); runs only when asked for explicitly.
	if *exp == "cells" {
		run("cells", "Multi-cell — sharded fleets behind the front-door router", func() (expResult, error) {
			rows, err := experiments.CellSweep(*workers, *short)
			if err != nil {
				return expResult{}, err
			}
			experiments.WriteCellTable(os.Stdout, rows)
			return expResult{Cells: rows, Runs: len(rows)}, nil
		})
	}
	// Also excluded from -exp all: the fully instrumented observability
	// run, the one experiment that produces lifecycle spans for -trace.
	var traceSpans []obs.Span
	if *exp == "obs" {
		run("obs", "Observability — instrumented K=1 vs K=16 at 1024 GPUs (trace, breakdown, series)", func() (expResult, error) {
			rows, spans, err := experiments.ObsSweep(*workers, *short)
			if err != nil {
				return expResult{}, err
			}
			traceSpans = spans
			experiments.WriteObsTable(os.Stdout, rows)
			return expResult{Obs: rows, Runs: len(rows)}, nil
		})
	}
	// Explicit-only like cells/obs, but for the opposite reason: these
	// rows are wall-clock measurements of the live serving path, so
	// they must never feed the determinism gates.
	if *exp == "overload" {
		run("overload", "Overload — live gateway past saturation, admission control on vs off", func() (expResult, error) {
			rows, err := experiments.OverloadSweep(*short)
			if err != nil {
				return expResult{}, err
			}
			experiments.WriteOverloadTable(os.Stdout, rows)
			return expResult{Overload: rows, Runs: len(rows)}, nil
		})
	}
	// Explicit-only like cells (its saturated burst cells dwarf the rest
	// of the grid), but pure sim time — so unlike overload it DOES join
	// the determinism gates.
	if *exp == "batch" {
		run("batch", "Batching — coalesced same-model dispatch frontier (policy x shape x MaxBatch)", func() (expResult, error) {
			rows, err := experiments.BatchSweep(m, *short)
			if err != nil {
				return expResult{}, err
			}
			experiments.WriteBatchTable(os.Stdout, rows)
			return expResult{Batch: rows, Runs: len(rows)}, nil
		})
	}
	// Explicit-only like batch (its fault-injected 12-minute cells dwarf
	// the grid) and, like batch, pure sim time — every fault instant is a
	// function of the seed — so it joins the determinism gates.
	if *exp == "chaos" {
		run("chaos", "Chaos — availability sweep: fault mode x MTTR x retry policy", func() (expResult, error) {
			rows, err := experiments.ChaosSweep(m, *short)
			if err != nil {
				return expResult{}, err
			}
			experiments.WriteChaosTable(os.Stdout, rows)
			return expResult{Chaos: rows, Runs: len(rows)}, nil
		})
	}
	run("hotpath", "Hot path — engine fire / scheduler decision microbenchmarks", func() (expResult, error) {
		rows, err := experiments.Hotpath()
		if err != nil {
			return expResult{}, err
		}
		experiments.WriteHotpathTable(os.Stdout, rows)
		return expResult{Hotpath: rows, Runs: len(rows)}, nil
	})
	snap.WallSeconds = time.Since(total).Seconds()
	if failed {
		return 1
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: marshal snapshot: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: write %s: %v\n", *jsonPath, err)
			return 1
		}
		fmt.Printf("\nwrote snapshot %s (%.2fs total)\n", *jsonPath, snap.WallSeconds)
	}
	if *detJSONPath != "" {
		buf, err := json.MarshalIndent(canonicalize(snap), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: marshal canonical snapshot: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*detJSONPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: write %s: %v\n", *detJSONPath, err)
			return 1
		}
		fmt.Printf("wrote canonical snapshot %s\n", *detJSONPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: create %s: %v\n", *tracePath, err)
			return 1
		}
		if err := obs.WriteTrace(f, traceSpans); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "faas-bench: write trace: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "faas-bench: close %s: %v\n", *tracePath, err)
			return 1
		}
		fmt.Printf("wrote trace %s (%d spans; open in Perfetto or chrome://tracing)\n", *tracePath, len(traceSpans))
	}
	return 0
}
