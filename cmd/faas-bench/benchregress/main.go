// Command benchregress compares the hotpath microbenchmark rows of two
// gpufaas-bench/v1 snapshots (baseline first, current second) and exits
// non-zero when any case regressed in ns/op by more than the threshold
// factor, or gained allocations per op. It backs `make bench-regress` and
// the advisory benchmark-regression step in CI — advisory because shared
// runners are noisy; the threshold is deliberately loose to only catch
// step-function regressions (a lost pooling path, a reintroduced
// per-event allocation), not scheduling jitter.
//
// When both snapshots carry overload rows (faas-bench -exp overload),
// the shedding-on phase is compared too: served-latency p99 and goodput
// against the baseline, plus allocs/op. The overload threshold is wider
// than the hotpath one — these are live wall-clock measurements — so
// only a step change (shedding stopped bounding the tail, goodput
// collapsed) trips it. Snapshots without overload rows skip the
// comparison silently.
//
// Snapshots carrying batch rows (faas-bench -exp batch) compare the
// MaxBatch=8 frontier rows (no linger): goodput and p95 against the
// baseline. These are pure sim-time numbers — identical runs produce
// identical rows — so any drift is a behavioral change in the batching
// path, but the step stays advisory like the others and the threshold
// leaves room for deliberate retuning of the service-time curve.
//
// Snapshots carrying chaos rows (faas-bench -exp chaos) compare the
// retry-on fault cells — the rows that back the availability claim
// (retry holds goodput where retry-off bleeds). Goodput and
// availability must hold within the threshold; sim-time like batch, so
// drift means the recovery path changed behaviour.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type snapshot struct {
	Schema      string                `json:"schema"`
	Experiments map[string]experiment `json:"experiments"`
}

type experiment struct {
	Hotpath  []hotpathRow  `json:"hotpath"`
	Overload []overloadRow `json:"overload"`
	Batch    []batchRow    `json:"batch"`
	Chaos    []chaosRow    `json:"chaos"`
}

type hotpathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type overloadRow struct {
	Name        string  `json:"name"`
	Shedding    bool    `json:"shedding"`
	GoodputRPS  float64 `json:"goodput_rps"`
	P99Ms       float64 `json:"p99_ms"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type batchRow struct {
	Policy        string  `json:"policy"`
	Shape         string  `json:"shape"`
	MaxBatch      int     `json:"max_batch"`
	BatchWaitMs   float64 `json:"batch_wait_ms"`
	GoodputRPS    float64 `json:"goodput_rps"`
	P95LatencySec float64 `json:"p95_latency_sec"`
}

// key identifies a batch row across snapshots.
func (r batchRow) key() string {
	return fmt.Sprintf("batch/%s/%s/k=%d/wait=%gms", r.Policy, r.Shape, r.MaxBatch, r.BatchWaitMs)
}

type chaosRow struct {
	Mode          string  `json:"mode"`
	MTTRSec       float64 `json:"mttr_sec"`
	RetryAttempts int     `json:"retry_attempts"`
	GoodputRPS    float64 `json:"goodput_rps"`
	Availability  float64 `json:"availability"`
}

// key identifies a chaos cell across snapshots.
func (r chaosRow) key() string {
	return fmt.Sprintf("chaos/%s/mttr=%gs/retry=%d", r.Mode, r.MTTRSec, r.RetryAttempts)
}

func load(path string) (map[string]hotpathRow, map[string]overloadRow, map[string]batchRow, map[string]chaosRow, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != "gpufaas-bench/v1" {
		return nil, nil, nil, nil, fmt.Errorf("%s: unexpected schema %q", path, snap.Schema)
	}
	rows := make(map[string]hotpathRow)
	over := make(map[string]overloadRow)
	batch := make(map[string]batchRow)
	cha := make(map[string]chaosRow)
	for _, exp := range snap.Experiments {
		for _, r := range exp.Hotpath {
			rows[r.Name] = r
		}
		for _, r := range exp.Overload {
			over[r.Name] = r
		}
		for _, r := range exp.Batch {
			// Only the MaxBatch=8 frontier rows (no linger) gate: they
			// carry the headline latency/throughput claim.
			if r.MaxBatch == 8 && r.BatchWaitMs == 0 {
				batch[r.key()] = r
			}
		}
		for _, r := range exp.Chaos {
			// Only the retry-on fault cells gate: they carry the
			// availability claim (the retry-off cells are SUPPOSED to
			// bleed, and the fault-free baseline never moves).
			if r.Mode != "none" && r.RetryAttempts > 0 {
				cha[r.key()] = r
			}
		}
	}
	return rows, over, batch, cha, nil
}

func main() {
	threshold := flag.Float64("threshold", 1.5, "fail when current ns/op exceeds baseline by this factor")
	overThreshold := flag.Float64("overload-threshold", 3.0, "fail when the shedding-on overload p99 exceeds baseline by this factor, or goodput drops below baseline divided by it")
	batchThreshold := flag.Float64("batch-threshold", 1.25, "fail when a MaxBatch=8 frontier row's p95 exceeds baseline by this factor, or its goodput drops below baseline divided by it")
	chaosThreshold := flag.Float64("chaos-threshold", 1.1, "fail when a retry-on chaos cell's goodput or availability drops below baseline divided by this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchregress [-threshold 1.5] [-overload-threshold 3.0] [-batch-threshold 1.25] [-chaos-threshold 1.1] baseline.json current.json")
		os.Exit(2)
	}
	base, baseOver, baseBatch, baseChaos, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	cur, curOver, curBatch, curChaos, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 && len(baseOver) == 0 && len(baseBatch) == 0 && len(baseChaos) == 0 {
		fmt.Println("benchregress: baseline has no hotpath, overload, batch or chaos rows; nothing to compare")
		return
	}
	regressed := false
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-26s (in baseline, not in current run)\n", name)
			regressed = true
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok      "
		switch {
		case ratio > *threshold:
			status = "REGRESS "
			regressed = true
		case c.AllocsPerOp > b.AllocsPerOp:
			status = "ALLOCS  "
			regressed = true
		}
		fmt.Printf("%s %-26s baseline %10.1f ns/op  current %10.1f ns/op  (%.2fx)  allocs %d -> %d\n",
			status, name, b.NsPerOp, c.NsPerOp, ratio, b.AllocsPerOp, c.AllocsPerOp)
	}
	// Overload comparison: only the shedding-on phase gates — it is the
	// claim the admission work makes (bounded tail, goodput plateau at
	// capacity). The shedding-off divergence row is context, not a
	// target: its p99 is SUPPOSED to be terrible.
	for name, b := range baseOver {
		c, ok := curOver[name]
		if !ok || !b.Shedding {
			continue
		}
		p99Ratio := c.P99Ms / b.P99Ms
		goodRatio := b.GoodputRPS / c.GoodputRPS
		allocRatio := c.AllocsPerOp / b.AllocsPerOp
		status := "ok      "
		switch {
		case p99Ratio > *overThreshold:
			status = "REGRESS "
			regressed = true
		case goodRatio > *overThreshold:
			status = "GOODPUT "
			regressed = true
		case allocRatio > *overThreshold:
			status = "ALLOCS  "
			regressed = true
		}
		fmt.Printf("%s %-26s p99 %8.1f -> %8.1f ms (%.2fx)  goodput %8.1f -> %8.1f rps  allocs/op %6.1f -> %6.1f\n",
			status, name, b.P99Ms, c.P99Ms, p99Ratio, b.GoodputRPS, c.GoodputRPS, b.AllocsPerOp, c.AllocsPerOp)
	}
	// Batch frontier comparison: the MaxBatch=8 no-linger rows must hold
	// their goodput and p95 within the (retuning-tolerant) threshold.
	for name, b := range baseBatch {
		c, ok := curBatch[name]
		if !ok {
			fmt.Printf("MISSING  %-34s (in baseline, not in current run)\n", name)
			regressed = true
			continue
		}
		p95Ratio := c.P95LatencySec / b.P95LatencySec
		goodRatio := b.GoodputRPS / c.GoodputRPS
		status := "ok      "
		switch {
		case p95Ratio > *batchThreshold:
			status = "REGRESS "
			regressed = true
		case goodRatio > *batchThreshold:
			status = "GOODPUT "
			regressed = true
		}
		fmt.Printf("%s %-34s p95 %7.2f -> %7.2f s (%.2fx)  goodput %7.2f -> %7.2f rps\n",
			status, name, b.P95LatencySec, c.P95LatencySec, p95Ratio, b.GoodputRPS, c.GoodputRPS)
	}
	// Chaos comparison: the retry-on fault cells must hold goodput and
	// availability — the claim BENCH_chaos.json pins is that retry-on
	// dominates retry-off, so a recovery-path change that drops either
	// axis here is exactly the regression the sweep exists to catch.
	for name, b := range baseChaos {
		c, ok := curChaos[name]
		if !ok {
			fmt.Printf("MISSING  %-38s (in baseline, not in current run)\n", name)
			regressed = true
			continue
		}
		goodRatio := b.GoodputRPS / c.GoodputRPS
		availRatio := b.Availability / c.Availability
		status := "ok      "
		switch {
		case goodRatio > *chaosThreshold:
			status = "GOODPUT "
			regressed = true
		case availRatio > *chaosThreshold:
			status = "AVAIL   "
			regressed = true
		}
		fmt.Printf("%s %-38s goodput %7.2f -> %7.2f rps  availability %.4f -> %.4f\n",
			status, name, b.GoodputRPS, c.GoodputRPS, b.Availability, c.Availability)
	}
	if regressed {
		fmt.Println("benchregress: hot-path regression detected (advisory)")
		os.Exit(1)
	}
}
