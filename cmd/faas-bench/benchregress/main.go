// Command benchregress compares the hotpath microbenchmark rows of two
// gpufaas-bench/v1 snapshots (baseline first, current second) and exits
// non-zero when any case regressed in ns/op by more than the threshold
// factor, or gained allocations per op. It backs `make bench-regress` and
// the advisory benchmark-regression step in CI — advisory because shared
// runners are noisy; the threshold is deliberately loose to only catch
// step-function regressions (a lost pooling path, a reintroduced
// per-event allocation), not scheduling jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type snapshot struct {
	Schema      string                `json:"schema"`
	Experiments map[string]experiment `json:"experiments"`
}

type experiment struct {
	Hotpath []hotpathRow `json:"hotpath"`
}

type hotpathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func load(path string) (map[string]hotpathRow, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Schema != "gpufaas-bench/v1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, snap.Schema)
	}
	rows := make(map[string]hotpathRow)
	for _, exp := range snap.Experiments {
		for _, r := range exp.Hotpath {
			rows[r.Name] = r
		}
	}
	return rows, nil
}

func main() {
	threshold := flag.Float64("threshold", 1.5, "fail when current ns/op exceeds baseline by this factor")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchregress [-threshold 1.5] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchregress: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Println("benchregress: baseline has no hotpath rows; nothing to compare")
		return
	}
	regressed := false
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-26s (in baseline, not in current run)\n", name)
			regressed = true
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok      "
		switch {
		case ratio > *threshold:
			status = "REGRESS "
			regressed = true
		case c.AllocsPerOp > b.AllocsPerOp:
			status = "ALLOCS  "
			regressed = true
		}
		fmt.Printf("%s %-26s baseline %10.1f ns/op  current %10.1f ns/op  (%.2fx)  allocs %d -> %d\n",
			status, name, b.NsPerOp, c.NsPerOp, ratio, b.AllocsPerOp, c.AllocsPerOp)
	}
	if regressed {
		fmt.Println("benchregress: hot-path regression detected (advisory)")
		os.Exit(1)
	}
}
