// Command faas-gateway runs the live GPU-FaaS gateway: an OpenFaaS-style
// HTTP API fronting the locality-aware GPU scheduler over a simulated GPU
// cluster (timings follow the paper's Table I profile, scaled by
// -timescale so demos respond quickly).
//
// Usage:
//
//	faas-gateway -addr :8080 -policy LALBO3 -timescale 0.01
//	faas-gateway -fleet t4:8,rtx2080:4 -autoscale tiered
//	faas-gateway -nodes 8 -cells 4 -cell-router leastload
//
// Then deploy and invoke with faas-cli or plain curl:
//
//	curl -XPOST localhost:8080/system/functions -d '{"name":"classify","gpuEnabled":true,"model":"resnet18"}'
//	curl -XPOST localhost:8080/function/classify
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/cluster"
	"gpufaas/internal/faas"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", "LALBO3", "scheduler policy: LB|LALB|LALBO3")
	o3limit := flag.Int("o3limit", 25, "LALBO3 starvation limit")
	nodes := flag.Int("nodes", 3, "GPU nodes")
	gpus := flag.Int("gpus-per-node", 4, "GPUs per node")
	fleet := flag.String("fleet", "", "heterogeneous fleet as type:count[:memGiB],... (e.g. t4:8,rtx2080:4; overrides -nodes/-gpus-per-node)")
	timescale := flag.Float64("timescale", 0.01, "profile time scale (1.0 = paper-real seconds)")
	asPolicy := flag.String("autoscale", "", "attach an autoscaler: target-util|step|tiered (tiered needs -fleet; empty = off)")
	asMin := flag.Int("autoscale-min", 2, "autoscaler fleet floor")
	asMax := flag.Int("autoscale-max", 0, "autoscaler fleet ceiling (0 = unbounded)")
	asInterval := flag.Duration("autoscale-interval", 5*time.Second, "autoscaler tick interval (wall time)")
	asColdStart := flag.Duration("autoscale-coldstart", 2*time.Second, "provisioned-GPU cold start (wall time)")
	asP95 := flag.Duration("autoscale-p95", 2*time.Second, "tiered policy p95 objective (wall time, after -timescale)")
	cells := flag.Int("cells", 1, "shard the fleet into N independent cells behind the front-door router")
	cellRouter := flag.String("cell-router", "", "front-door policy for -cells > 1: hash|affinity|leastload (default hash)")
	admitConc := flag.Int("admit-concurrent", 0, "per-cell concurrent-invocation limit; 0 disables admission control and load shedding")
	admitQueue := flag.Int("admit-queue", 0, "bounded admission queue depth per cell (with -admit-concurrent)")
	admitWait := flag.Duration("admit-wait", 100*time.Millisecond, "admission deadline: queued invocations that cannot start in time are shed with 429")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained invocations/sec (token bucket; 0 = off, needs -admit-concurrent)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst (default max(rate, 1))")
	maxBody := flag.Int64("max-body-bytes", 64<<20, "invocation body cap; larger requests get 413")
	flag.Parse()

	cfg := faas.GatewayConfig{
		Policy:       *policy,
		O3Limit:      *o3limit,
		Nodes:        *nodes,
		GPUsPerNode:  *gpus,
		TimeScale:    *timescale,
		Cells:        *cells,
		CellRouter:   *cellRouter,
		MaxBodyBytes: *maxBody,
	}
	if *admitConc > 0 {
		cfg.Admission = &faas.AdmissionConfig{
			MaxConcurrent: *admitConc,
			QueueDepth:    *admitQueue,
			MaxWait:       *admitWait,
			TenantRate:    *tenantRate,
			TenantBurst:   *tenantBurst,
		}
	} else if *tenantRate > 0 {
		log.Fatal("faas-gateway: -tenant-rate requires -admit-concurrent > 0")
	}
	gpuCount := *nodes * *gpus
	if *fleet != "" {
		spec, err := cluster.ParseFleetSpec(*fleet)
		if err != nil {
			log.Fatalf("faas-gateway: %v", err)
		}
		cfg.Fleet = spec
		gpuCount = 0
		for _, class := range spec {
			gpuCount += class.Count
		}
	}
	if *asPolicy != "" {
		var pol autoscale.Policy
		var err error
		if *asPolicy == "tiered" {
			if cfg.Fleet == nil {
				log.Fatal("faas-gateway: -autoscale tiered requires -fleet")
			}
			// Tiers sorted cheapest-first by the classes' declared
			// cost (ParseFleetSpec fills it from the built-in
			// registry), so flag order cannot invert the economics.
			spec := append(cluster.FleetSpec(nil), cfg.Fleet...)
			sort.SliceStable(spec, func(i, j int) bool {
				return spec[i].CostPerSecond < spec[j].CostPerSecond
			})
			pol, err = autoscale.NewTiered(autoscale.Tiered{
				Tiers:     spec.Types(),
				TargetP95: asP95.Seconds(),
			})
		} else {
			pol, err = autoscale.ParsePolicy(*asPolicy, 0, 0, 0, 0, 0)
		}
		if err != nil {
			log.Fatalf("faas-gateway: %v", err)
		}
		cfg.Autoscale = &autoscale.Config{
			Policy:    pol,
			Interval:  *asInterval,
			MinGPUs:   *asMin,
			MaxGPUs:   *asMax,
			ColdStart: *asColdStart,
		}
	}
	g, err := faas.NewGateway(cfg)
	if err != nil {
		log.Fatalf("faas-gateway: %v", err)
	}
	fmt.Printf("GPU-FaaS gateway listening on %s (policy=%s, %d GPUs, %d cells, fleet=%q, timescale=%g, autoscale=%q)\n",
		*addr, *policy, gpuCount, g.CellCount(), *fleet, *timescale, *asPolicy)
	log.Fatal(http.ListenAndServe(*addr, g.Handler()))
}
