// Command faas-gateway runs the live GPU-FaaS gateway: an OpenFaaS-style
// HTTP API fronting the locality-aware GPU scheduler over a simulated GPU
// cluster (timings follow the paper's Table I profile, scaled by
// -timescale so demos respond quickly).
//
// Usage:
//
//	faas-gateway -addr :8080 -policy LALBO3 -timescale 0.01
//
// Then deploy and invoke with faas-cli or plain curl:
//
//	curl -XPOST localhost:8080/system/functions -d '{"name":"classify","gpuEnabled":true,"model":"resnet18"}'
//	curl -XPOST localhost:8080/function/classify
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/faas"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", "LALBO3", "scheduler policy: LB|LALB|LALBO3")
	o3limit := flag.Int("o3limit", 25, "LALBO3 starvation limit")
	nodes := flag.Int("nodes", 3, "GPU nodes")
	gpus := flag.Int("gpus-per-node", 4, "GPUs per node")
	timescale := flag.Float64("timescale", 0.01, "profile time scale (1.0 = paper-real seconds)")
	asPolicy := flag.String("autoscale", "", "attach an autoscaler: target-util|step (empty = off)")
	asMin := flag.Int("autoscale-min", 2, "autoscaler fleet floor")
	asMax := flag.Int("autoscale-max", 0, "autoscaler fleet ceiling (0 = unbounded)")
	asInterval := flag.Duration("autoscale-interval", 5*time.Second, "autoscaler tick interval (wall time)")
	asColdStart := flag.Duration("autoscale-coldstart", 2*time.Second, "provisioned-GPU cold start (wall time)")
	flag.Parse()

	cfg := faas.GatewayConfig{
		Policy:      *policy,
		O3Limit:     *o3limit,
		Nodes:       *nodes,
		GPUsPerNode: *gpus,
		TimeScale:   *timescale,
	}
	if *asPolicy != "" {
		pol, err := autoscale.ParsePolicy(*asPolicy, 0, 0, 0, 0, 0)
		if err != nil {
			log.Fatalf("faas-gateway: %v", err)
		}
		cfg.Autoscale = &autoscale.Config{
			Policy:    pol,
			Interval:  *asInterval,
			MinGPUs:   *asMin,
			MaxGPUs:   *asMax,
			ColdStart: *asColdStart,
		}
	}
	g, err := faas.NewGateway(cfg)
	if err != nil {
		log.Fatalf("faas-gateway: %v", err)
	}
	fmt.Printf("GPU-FaaS gateway listening on %s (policy=%s, %d GPUs, timescale=%g, autoscale=%q)\n",
		*addr, *policy, *nodes**gpus, *timescale, *asPolicy)
	log.Fatal(http.ListenAndServe(*addr, g.Handler()))
}
