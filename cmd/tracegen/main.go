// Command tracegen synthesizes Azure-Functions-shaped invocation traces in
// the published CSV format (one row per function, one column per minute),
// matching the statistics the paper reports: the top-15 functions carry
// 56% of invocations and the long tail is nearly flat.
//
// Usage:
//
//	tracegen -functions 46413 -minutes 1440 -rpm 40000 -seed 1 > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"gpufaas/internal/trace"
)

func main() {
	functions := flag.Int("functions", 46413, "unique functions (paper: 46,413)")
	minutes := flag.Int("minutes", 6, "trace length in minutes")
	rpm := flag.Int("rpm", 40000, "mean invocations per minute before normalization")
	topShare := flag.Float64("topshare", 0.56, "fraction of invocations carried by the hot set")
	topCount := flag.Int("topcount", 15, "hot-set size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	tr, err := trace.Synthesize(trace.SynthConfig{
		Functions:            *functions,
		Minutes:              *minutes,
		InvocationsPerMinute: *rpm,
		TopShare:             *topShare,
		TopCount:             *topCount,
		Seed:                 *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := tr.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d functions x %d minutes, %d invocations, top-%d share %.3f\n",
		*functions, *minutes, tr.TotalInvocations(), *topCount, tr.TopShare(*topCount))
}
