// Command tracegen synthesizes Azure-Functions-shaped invocation traces in
// the published CSV format (one row per function, one column per minute),
// matching the statistics the paper reports: the top-15 functions carry
// 56% of invocations and the long tail is nearly flat.
//
// Besides the paper's flat (stationary) load, tracegen generates the
// elasticity workload shapes: -shape diurnal modulates the per-minute
// load sinusoidally (trough at minute 0), -shape burst overlays periodic
// spikes on a flat baseline.
//
// Usage:
//
//	tracegen -functions 46413 -minutes 1440 -rpm 40000 -seed 1 > trace.csv
//	tracegen -minutes 24 -shape diurnal -amplitude 0.7 > diurnal.csv
//	tracegen -minutes 24 -shape burst -burst-every 6 -burst-factor 4 > burst.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"gpufaas/internal/trace"
)

func main() {
	functions := flag.Int("functions", 46413, "unique functions (paper: 46,413)")
	minutes := flag.Int("minutes", 6, "trace length in minutes")
	rpm := flag.Int("rpm", 40000, "mean invocations per minute before normalization")
	topShare := flag.Float64("topshare", 0.56, "fraction of invocations carried by the hot set")
	topCount := flag.Int("topcount", 15, "hot-set size")
	seed := flag.Int64("seed", 1, "random seed")
	shape := flag.String("shape", "flat", "per-minute load shape: flat|diurnal|burst")
	period := flag.Int("period", 0, "diurnal: full-cycle length in minutes (0 = trace length)")
	amplitude := flag.Float64("amplitude", 0.6, "diurnal: modulation depth in [0,1)")
	phase := flag.Int("phase", 0, "diurnal: phase shift in minutes")
	burstEvery := flag.Int("burst-every", 6, "burst: period in minutes")
	burstLen := flag.Int("burst-len", 1, "burst: burst duration in minutes")
	burstFactor := flag.Float64("burst-factor", 3, "burst: load multiplier during a burst")
	flag.Parse()

	tr, err := trace.Synthesize(trace.SynthConfig{
		Functions:            *functions,
		Minutes:              *minutes,
		InvocationsPerMinute: *rpm,
		TopShare:             *topShare,
		TopCount:             *topCount,
		Seed:                 *seed,
		Shape: trace.Shape{
			Kind:          *shape,
			PeriodMinutes: *period,
			Amplitude:     *amplitude,
			PhaseMinutes:  *phase,
			BurstEvery:    *burstEvery,
			BurstLen:      *burstLen,
			BurstFactor:   *burstFactor,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := tr.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d functions x %d minutes, %d invocations, top-%d share %.3f\n",
		*functions, *minutes, tr.TotalInvocations(), *topCount, tr.TopShare(*topCount))
}
