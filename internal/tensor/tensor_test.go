package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x, err := New(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 24 || x.Dims() != 3 || x.Dim(1) != 3 {
		t.Errorf("shape accessors wrong: %+v", x)
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero dim should fail")
	}
	if _, err := FromData([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Error("mismatched FromData should fail")
	}
	y, err := FromData([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil || y.Data[3] != 4 {
		t.Errorf("FromData: %v %v", y, err)
	}
}

func TestReshapeAndClone(t *testing.T) {
	x := MustNew(2, 6)
	x.Data[0] = 5
	y, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 5 {
		t.Error("reshape should share data")
	}
	if _, err := x.Reshape(5, 5); err == nil {
		t.Error("size-changing reshape should fail")
	}
	c := x.Clone()
	c.Data[0] = 9
	if x.Data[0] != 5 {
		t.Error("clone must not alias")
	}
	if !x.SameShape(MustNew(2, 6)) || x.SameShape(MustNew(6, 2)) || x.SameShape(MustNew(12)) {
		t.Error("SameShape wrong")
	}
}

func TestConv2DIdentity(t *testing.T) {
	// 1x1 kernel with weight 1 is identity.
	x, _ := FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w, _ := FromData([]float32{1}, 1, 1, 1, 1)
	y, err := Conv2D(x, w, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv: %v", y.Data)
		}
	}
}

func TestConv2DKnown(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, stride 1, no pad -> 2x2 sums.
	x, _ := FromData([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w, _ := FromData([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	bias, _ := FromData([]float32{10}, 1)
	y, err := Conv2D(x, w, bias, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1 + 2 + 4 + 5 + 10, 2 + 3 + 5 + 6 + 10, 4 + 5 + 7 + 8 + 10, 5 + 6 + 8 + 9 + 10}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("conv out = %v, want %v", y.Data, want)
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	x := MustNew(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = 1
	}
	w, _ := FromData([]float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, 1, 1, 3, 3)
	y, err := Conv2D(x, w, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[2] != 2 || y.Shape[3] != 2 {
		t.Fatalf("shape = %v", y.Shape)
	}
	// Top-left window covers 4 ones (corner), center windows more.
	if y.Data[0] != 4 {
		t.Errorf("corner = %v", y.Data[0])
	}
}

func TestConv2DErrors(t *testing.T) {
	x := MustNew(1, 2, 4, 4)
	w := MustNew(3, 5, 3, 3) // Cin mismatch
	if _, err := Conv2D(x, w, nil, 1, 0); err == nil {
		t.Error("Cin mismatch should fail")
	}
	w2 := MustNew(3, 2, 3, 3)
	if _, err := Conv2D(x, w2, MustNew(7), 1, 0); err == nil {
		t.Error("bias mismatch should fail")
	}
	if _, err := Conv2D(x, w2, nil, 0, 0); err == nil {
		t.Error("zero stride should fail")
	}
	if _, err := Conv2D(x, MustNew(1, 2, 9, 9), nil, 1, 0); err == nil {
		t.Error("kernel larger than input should fail")
	}
	if _, err := Conv2D(MustNew(2, 2), w2, nil, 1, 0); err == nil {
		t.Error("2-D input should fail")
	}
}

func TestDense(t *testing.T) {
	x, _ := FromData([]float32{1, 2}, 1, 2)
	w, _ := FromData([]float32{3, 4, 5, 6}, 2, 2) // rows: [3,4],[5,6]
	b, _ := FromData([]float32{0.5, -0.5}, 2)
	y, err := Dense(x, w, b)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 1*3+2*4+0.5 || y.Data[1] != 1*5+2*6-0.5 {
		t.Fatalf("dense = %v", y.Data)
	}
	if _, err := Dense(x, MustNew(2, 3), nil); err == nil {
		t.Error("inner-dim mismatch should fail")
	}
	if _, err := Dense(x, w, MustNew(3)); err == nil {
		t.Error("bias mismatch should fail")
	}
}

func TestReLU(t *testing.T) {
	x, _ := FromData([]float32{-1, 0, 2}, 3, 1)
	ReLU(x)
	if x.Data[0] != 0 || x.Data[1] != 0 || x.Data[2] != 2 {
		t.Errorf("relu = %v", x.Data)
	}
}

func TestAddAndConcat(t *testing.T) {
	a, _ := FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	b, _ := FromData([]float32{10, 20, 30, 40}, 1, 1, 2, 2)
	s, err := Add(a, b)
	if err != nil || s.Data[3] != 44 {
		t.Errorf("add = %v (%v)", s.Data, err)
	}
	if _, err := Add(a, MustNew(1, 1, 2, 3)); err == nil {
		t.Error("shape mismatch add should fail")
	}
	c, err := ConcatChannels(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape[1] != 2 || c.Data[0] != 1 || c.Data[4] != 10 {
		t.Errorf("concat = %v %v", c.Shape, c.Data)
	}
	if _, err := ConcatChannels(); err == nil {
		t.Error("empty concat should fail")
	}
	if _, err := ConcatChannels(a, MustNew(1, 1, 3, 3)); err == nil {
		t.Error("mismatched concat should fail")
	}
}

func TestMaxPool(t *testing.T) {
	x, _ := FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, err := MaxPool2D(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("maxpool = %v", y.Data)
		}
	}
	if _, err := MaxPool2D(MustNew(2, 2), 2, 2); err == nil {
		t.Error("2-D input should fail")
	}
	if _, err := MaxPool2D(x, 0, 1); err == nil {
		t.Error("zero k should fail")
	}
	if _, err := MaxPool2D(x, 9, 1); err == nil {
		t.Error("pool larger than input should fail")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x, _ := FromData([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y, err := GlobalAvgPool(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Errorf("gap = %v", y.Data)
	}
	if _, err := GlobalAvgPool(MustNew(2, 2)); err == nil {
		t.Error("2-D input should fail")
	}
}

func TestBatchNorm(t *testing.T) {
	x, _ := FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	gamma, _ := FromData([]float32{2}, 1)
	beta, _ := FromData([]float32{1}, 1)
	mean, _ := FromData([]float32{2.5}, 1)
	variance, _ := FromData([]float32{1}, 1)
	if _, err := BatchNorm(x, gamma, beta, mean, variance, 0); err != nil {
		t.Fatal(err)
	}
	// y = 2*(x-2.5)/1 + 1
	want := []float32{-2, 0, 2, 4}
	for i, v := range want {
		if math.Abs(float64(x.Data[i]-v)) > 1e-5 {
			t.Fatalf("bn = %v", x.Data)
		}
	}
	if _, err := BatchNorm(x, MustNew(3), beta, mean, variance, 0); err == nil {
		t.Error("param mismatch should fail")
	}
	if _, err := BatchNorm(MustNew(2, 2), gamma, beta, mean, variance, 0); err == nil {
		t.Error("2-D input should fail")
	}
}

func TestSoftmaxAndArgmax(t *testing.T) {
	x, _ := FromData([]float32{1, 2, 3, 3, 2, 1}, 2, 3)
	p, err := Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		var sum float64
		for i := 0; i < 3; i++ {
			v := float64(p.Data[b*3+i])
			if v <= 0 || v >= 1 {
				t.Errorf("prob out of range: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", b, sum)
		}
	}
	am, err := Argmax(p)
	if err != nil {
		t.Fatal(err)
	}
	if am[0] != 2 || am[1] != 0 {
		t.Errorf("argmax = %v", am)
	}
	if _, err := Softmax(MustNew(1, 2, 3)); err == nil {
		t.Error("3-D softmax should fail")
	}
	if _, err := Argmax(MustNew(1, 2, 3)); err == nil {
		t.Error("3-D argmax should fail")
	}
}

func TestFlatten(t *testing.T) {
	x := MustNew(2, 3, 4, 5)
	y, err := Flatten(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Errorf("flatten = %v", y.Shape)
	}
	if _, err := Flatten(MustNew(5)); err == nil {
		t.Error("1-D flatten should fail")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := MustNew(100)
	b := MustNew(100)
	a.FillRandom(rand.New(rand.NewSource(7)), 0.1)
	b.FillRandom(rand.New(rand.NewSource(7)), 0.1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

// Property: softmax output is a probability distribution for any input.
func TestSoftmaxProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		n := len(raw)
		data := make([]float32, n)
		for i, v := range raw {
			data[i] = float32(v) / 8
		}
		x, err := FromData(data, 1, n)
		if err != nil {
			return false
		}
		p, err := Softmax(x)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range p.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: conv with a single 1x1 unit kernel preserves any input.
func TestConvIdentityProperty(t *testing.T) {
	f := func(raw []int8) bool {
		n := len(raw)
		if n < 4 {
			return true
		}
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			return true
		}
		data := make([]float32, side*side)
		for i := range data {
			data[i] = float32(raw[i])
		}
		x, err := FromData(data, 1, 1, side, side)
		if err != nil {
			return false
		}
		w, _ := FromData([]float32{1}, 1, 1, 1, 1)
		y, err := Conv2D(x, w, nil, 1, 0)
		if err != nil {
			return false
		}
		for i := range x.Data {
			if y.Data[i] != x.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConv2D(b *testing.B) {
	x := MustNew(1, 16, 32, 32)
	w := MustNew(32, 16, 3, 3)
	x.FillRandom(rand.New(rand.NewSource(1)), 1)
	w.FillRandom(rand.New(rand.NewSource(2)), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(x, w, nil, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDense(b *testing.B) {
	x := MustNew(32, 512)
	w := MustNew(256, 512)
	x.FillRandom(rand.New(rand.NewSource(1)), 1)
	w.FillRandom(rand.New(rand.NewSource(2)), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dense(x, w, nil); err != nil {
			b.Fatal(err)
		}
	}
}
