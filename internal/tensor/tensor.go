// Package tensor is a small CPU tensor library supporting the forward
// passes of the CNN architectures in the model zoo (internal/nn). Layout
// is dense NCHW float32. Convolutions and dense layers parallelize across
// the output dimension with a worker pool sized to GOMAXPROCS, which keeps
// live-mode inference latency reasonable without any external
// dependencies.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Tensor is a dense n-dimensional array of float32 in row-major order.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dim %d in %v", d, shape)
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}, nil
}

// MustNew is New for statically-correct shapes; panics on error.
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromData wraps data with a shape; the length must match.
func FromData(data []float32, shape ...int) (*Tensor, error) {
	t, err := New(shape...)
	if err != nil {
		return nil, err
	}
	if len(data) != len(t.Data) {
		return nil, fmt.Errorf("tensor: data len %d != shape size %d", len(data), len(t.Data))
	}
	copy(t.Data, data)
	return t, nil
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view-copy with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: non-positive dim in %v", shape)
		}
		n *= d
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("tensor: reshape %v -> %v changes size", t.Shape, shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// FillRandom fills with N(0, stddev) values from rng (deterministic model
// initialization).
func (t *Tensor) FillRandom(rng *rand.Rand, stddev float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * stddev)
	}
}

// ErrShape indicates incompatible operand shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Conv2D computes a 2-D convolution. x is [N, Cin, H, W]; w is
// [Cout, Cin, KH, KW]; bias (may be nil) is [Cout]. Stride and padding are
// symmetric. Output is [N, Cout, Ho, Wo].
func Conv2D(x, w, bias *Tensor, stride, pad int) (*Tensor, error) {
	if x.Dims() != 4 || w.Dims() != 4 {
		return nil, fmt.Errorf("%w: conv2d needs 4-D x and w, got %v and %v", ErrShape, x.Shape, w.Shape)
	}
	if stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("tensor: invalid stride %d / pad %d", stride, pad)
	}
	n, cin, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cout, wcin, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if cin != wcin {
		return nil, fmt.Errorf("%w: conv2d Cin %d != weight Cin %d", ErrShape, cin, wcin)
	}
	if bias != nil && (bias.Dims() != 1 || bias.Shape[0] != cout) {
		return nil, fmt.Errorf("%w: conv2d bias %v, want [%d]", ErrShape, bias.Shape, cout)
	}
	ho := (h+2*pad-kh)/stride + 1
	wo := (wd+2*pad-kw)/stride + 1
	if ho <= 0 || wo <= 0 {
		return nil, fmt.Errorf("%w: conv2d output %dx%d", ErrShape, ho, wo)
	}
	out := MustNew(n, cout, ho, wo)
	parallelFor(n*cout, func(job int) {
		b := job / cout
		oc := job % cout
		var bv float32
		if bias != nil {
			bv = bias.Data[oc]
		}
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				sum := bv
				for ic := 0; ic < cin; ic++ {
					xBase := ((b*cin + ic) * h) * wd
					wBase := ((oc*cin + ic) * kh) * kw
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= wd {
								continue
							}
							sum += x.Data[xBase+iy*wd+ix] * w.Data[wBase+ky*kw+kx]
						}
					}
				}
				out.Data[((b*cout+oc)*ho+oy)*wo+ox] = sum
			}
		}
	})
	return out, nil
}

// Dense computes y = x·Wᵀ + b. x is [N, In]; w is [Out, In]; b (may be
// nil) is [Out]. Output is [N, Out].
func Dense(x, w, bias *Tensor) (*Tensor, error) {
	if x.Dims() != 2 || w.Dims() != 2 {
		return nil, fmt.Errorf("%w: dense needs 2-D x and w", ErrShape)
	}
	n, in := x.Shape[0], x.Shape[1]
	outDim, win := w.Shape[0], w.Shape[1]
	if in != win {
		return nil, fmt.Errorf("%w: dense In %d != weight In %d", ErrShape, in, win)
	}
	if bias != nil && (bias.Dims() != 1 || bias.Shape[0] != outDim) {
		return nil, fmt.Errorf("%w: dense bias %v, want [%d]", ErrShape, bias.Shape, outDim)
	}
	out := MustNew(n, outDim)
	parallelFor(n, func(b int) {
		xRow := x.Data[b*in : (b+1)*in]
		for o := 0; o < outDim; o++ {
			wRow := w.Data[o*in : (o+1)*in]
			var sum float32
			if bias != nil {
				sum = bias.Data[o]
			}
			for i, xv := range xRow {
				sum += xv * wRow[i]
			}
			out.Data[b*outDim+o] = sum
		}
	})
	return out, nil
}

// ReLU applies max(0, x) in place and returns x.
func ReLU(x *Tensor) *Tensor {
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	return x
}

// Add computes x + y element-wise into a new tensor (residual connections).
func Add(x, y *Tensor) (*Tensor, error) {
	if !x.SameShape(y) {
		return nil, fmt.Errorf("%w: add %v vs %v", ErrShape, x.Shape, y.Shape)
	}
	out := x.Clone()
	for i, v := range y.Data {
		out.Data[i] += v
	}
	return out, nil
}

// ConcatChannels concatenates 4-D tensors along the channel dimension
// (DenseNet blocks).
func ConcatChannels(xs ...*Tensor) (*Tensor, error) {
	if len(xs) == 0 {
		return nil, errors.New("tensor: concat of nothing")
	}
	n, h, w := xs[0].Shape[0], xs[0].Shape[2], xs[0].Shape[3]
	totalC := 0
	for _, x := range xs {
		if x.Dims() != 4 || x.Shape[0] != n || x.Shape[2] != h || x.Shape[3] != w {
			return nil, fmt.Errorf("%w: concat operand %v", ErrShape, x.Shape)
		}
		totalC += x.Shape[1]
	}
	out := MustNew(n, totalC, h, w)
	hw := h * w
	for b := 0; b < n; b++ {
		off := 0
		for _, x := range xs {
			c := x.Shape[1]
			src := x.Data[b*c*hw : (b+1)*c*hw]
			dst := out.Data[(b*totalC+off)*hw : (b*totalC+off+c)*hw]
			copy(dst, src)
			off += c
		}
	}
	return out, nil
}

// MaxPool2D applies kxk max pooling with the given stride to a 4-D tensor.
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: maxpool needs 4-D input", ErrShape)
	}
	if k <= 0 || stride <= 0 {
		return nil, fmt.Errorf("tensor: invalid pool k=%d stride=%d", k, stride)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	ho := (h-k)/stride + 1
	wo := (w-k)/stride + 1
	if ho <= 0 || wo <= 0 {
		return nil, fmt.Errorf("%w: maxpool output %dx%d", ErrShape, ho, wo)
	}
	out := MustNew(n, c, ho, wo)
	parallelFor(n*c, func(job int) {
		base := job * h * w
		obase := job * ho * wo
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						v := x.Data[base+(oy*stride+ky)*w+ox*stride+kx]
						if v > best {
							best = v
						}
					}
				}
				out.Data[obase+oy*wo+ox] = best
			}
		}
	})
	return out, nil
}

// GlobalAvgPool reduces a 4-D tensor [N,C,H,W] to [N,C] by averaging each
// channel plane.
func GlobalAvgPool(x *Tensor) (*Tensor, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: gap needs 4-D input", ErrShape)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := MustNew(n, c)
	hw := float32(h * w)
	for j := 0; j < n*c; j++ {
		var sum float32
		for _, v := range x.Data[j*h*w : (j+1)*h*w] {
			sum += v
		}
		out.Data[j] = sum / hw
	}
	return out, nil
}

// BatchNorm applies per-channel inference-mode normalization
// y = gamma*(x-mean)/sqrt(var+eps) + beta to a 4-D tensor in place.
func BatchNorm(x, gamma, beta, mean, variance *Tensor, eps float32) (*Tensor, error) {
	if x.Dims() != 4 {
		return nil, fmt.Errorf("%w: batchnorm needs 4-D input", ErrShape)
	}
	c := x.Shape[1]
	for _, p := range []*Tensor{gamma, beta, mean, variance} {
		if p.Dims() != 1 || p.Shape[0] != c {
			return nil, fmt.Errorf("%w: batchnorm param %v, want [%d]", ErrShape, p.Shape, c)
		}
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	hw := h * w
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			scale := gamma.Data[ch] / float32(math.Sqrt(float64(variance.Data[ch]+eps)))
			shift := beta.Data[ch] - mean.Data[ch]*scale
			seg := x.Data[(b*c+ch)*hw : (b*c+ch+1)*hw]
			for i, v := range seg {
				seg[i] = v*scale + shift
			}
		}
	}
	return x, nil
}

// Softmax applies a row-wise softmax to a 2-D tensor, returning a new
// tensor of probabilities.
func Softmax(x *Tensor) (*Tensor, error) {
	if x.Dims() != 2 {
		return nil, fmt.Errorf("%w: softmax needs 2-D input", ErrShape)
	}
	n, c := x.Shape[0], x.Shape[1]
	out := MustNew(n, c)
	for b := 0; b < n; b++ {
		row := x.Data[b*c : (b+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			out.Data[b*c+i] = float32(e)
			sum += e
		}
		for i := range row {
			out.Data[b*c+i] = float32(float64(out.Data[b*c+i]) / sum)
		}
	}
	return out, nil
}

// Argmax returns the index of the largest value in each row of a 2-D
// tensor.
func Argmax(x *Tensor) ([]int, error) {
	if x.Dims() != 2 {
		return nil, fmt.Errorf("%w: argmax needs 2-D input", ErrShape)
	}
	n, c := x.Shape[0], x.Shape[1]
	out := make([]int, n)
	for b := 0; b < n; b++ {
		best, bi := x.Data[b*c], 0
		for i := 1; i < c; i++ {
			if v := x.Data[b*c+i]; v > best {
				best, bi = v, i
			}
		}
		out[b] = bi
	}
	return out, nil
}

// Flatten reshapes [N, ...] to [N, rest].
func Flatten(x *Tensor) (*Tensor, error) {
	if x.Dims() < 2 {
		return nil, fmt.Errorf("%w: flatten needs >=2 dims", ErrShape)
	}
	rest := 1
	for _, d := range x.Shape[1:] {
		rest *= d
	}
	return x.Reshape(x.Shape[0], rest)
}
