package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasic(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", w.Mean())
	}
	if !almost(w.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", w.Variance())
	}
	if !almost(w.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", w.StdDev())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("empty Welford must report zeros")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 {
		t.Errorf("Mean = %g, want 3.5", w.Mean())
	}
	if w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("single observation must have zero variance")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(split uint8) bool {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
		}
		k := int(split) % len(xs)
		var all, a, b Welford
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		a.Merge(b)
		return almost(a.Mean(), all.Mean(), 1e-9) && almost(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMeanVariance(t *testing.T) {
	s := NewSample(4)
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if !almost(s.Mean(), 2.5, 1e-12) {
		t.Errorf("Mean = %g", s.Mean())
	}
	if !almost(s.Variance(), 1.25, 1e-12) {
		t.Errorf("Variance = %g", s.Variance())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSamplePercentile(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestSamplePercentileEmptyAndSingleton(t *testing.T) {
	s := NewSample(0)
	if s.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
	s.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if s.Percentile(p) != 7 {
			t.Errorf("singleton P%g = %g, want 7", p, s.Percentile(p))
		}
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(8)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if s.Percentile(95) == 0 {
		t.Fatal("pre-reset percentile should be nonzero")
	}
	s.Reset()
	if s.N() != 0 || s.Percentile(95) != 0 || s.Mean() != 0 {
		t.Errorf("after Reset: N=%d P95=%g mean=%g", s.N(), s.Percentile(95), s.Mean())
	}
	// The sample is reusable as a rolling window (the autoscaler's
	// per-tick p95): refill and query again.
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(95); !almost(got, 95.05, 1e-9) {
		t.Errorf("refilled P95 = %g", got)
	}
}

func TestSamplePercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSample(0)
	for i := 0; i < 200; i++ {
		s.Add(rng.Float64() * 1000)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		v := s.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%g: %g < %g", p, v, prev)
		}
		prev = v
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 1) // value 1 during [0,10)
	tw.Set(10, 3)
	// average over [0,20]: (1*10 + 3*10)/20 = 2
	if got := tw.Average(20); !almost(got, 2, 1e-12) {
		t.Errorf("Average = %g, want 2", got)
	}
	if tw.Value() != 3 {
		t.Errorf("Value = %g, want 3", tw.Value())
	}
}

func TestTimeWeightedDegenerate(t *testing.T) {
	var tw TimeWeighted
	if tw.Average(100) != 0 {
		t.Error("unstarted TimeWeighted should average 0")
	}
	tw.Set(5, 4)
	if got := tw.Average(5); got != 4 {
		t.Errorf("zero-span average = %g, want current value 4", got)
	}
	// Time going backwards clamps rather than corrupting the area.
	tw.Set(3, 9)
	if got := tw.Average(10); got < 4 || got > 9 {
		t.Errorf("clamped average = %g, want within [4,9]", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.9 + 0.0125*x // paper-style: fixed cost + per-sample cost
	}
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Alpha, 0.9, 1e-9) || !almost(l.Beta, 0.0125, 1e-9) {
		t.Errorf("fit = %+v", l)
	}
	if !almost(l.R2, 1, 1e-9) {
		t.Errorf("R2 = %g, want 1", l.R2)
	}
	if got := l.Predict(64); !almost(got, 0.9+0.8, 1e-9) {
		t.Errorf("Predict(64) = %g", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := FitLinear([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for zero x-variance")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 5+2*x+rng.NormFloat64()*0.01)
	}
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Alpha, 5, 0.01) || !almost(l.Beta, 2, 0.001) {
		t.Errorf("fit = %+v", l)
	}
	if l.R2 < 0.9999 {
		t.Errorf("R2 = %g", l.R2)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first bucket
	h.Add(99) // clamps to last bucket
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("edge clamping: %v", h.Counts)
	}
	if q := h.Quantile(0.5); q < 4 || q > 7 {
		t.Errorf("median bucket edge = %g", q)
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Error("want error for empty range")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("want error for zero buckets")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	r.Observe(false)
	if !almost(r.Value(), 0.5, 1e-12) {
		t.Errorf("Value = %g", r.Value())
	}
}

func TestReductionAndSpeedup(t *testing.T) {
	if !almost(Reduction(100, 2.26), 0.9774, 1e-9) {
		t.Errorf("Reduction = %g", Reduction(100, 2.26))
	}
	if Reduction(0, 5) != 0 {
		t.Error("Reduction with zero base should be 0")
	}
	if !almost(Speedup(96, 2), 48, 1e-12) {
		t.Errorf("Speedup = %g", Speedup(96, 2))
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup(x,0) should be +Inf")
	}
	if Speedup(0, 0) != 1 {
		t.Error("Speedup(0,0) should be 1")
	}
}

// Property: variance is never negative and mean lies within [min, max].
func TestWelfordProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			w.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return w.Variance() >= 0 && w.Mean() >= lo-1e-9 && w.Mean() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: time-weighted average of a step function lies within the range
// of values it took on.
func TestTimeWeightedBounded(t *testing.T) {
	f := func(steps []uint8) bool {
		if len(steps) == 0 {
			return true
		}
		var tw TimeWeighted
		lo, hi := math.Inf(1), math.Inf(-1)
		t0 := 0.0
		for _, s := range steps {
			v := float64(s)
			tw.Set(t0, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			t0 += 1
		}
		avg := tw.Average(t0 + 5)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
