// Package stats provides the statistical primitives used throughout the
// GPU-FaaS reproduction: streaming moments (Welford), percentiles,
// time-weighted averages for utilization-style metrics, simple linear
// regression for model profiling (inference time vs. batch size, §IV-A of
// the paper), and small histogram utilities used by the benchmark harness.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance, or 0 for fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased (n-1) variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Sample stores observations for percentile queries. It keeps the raw
// values; for the workload sizes in this repo (hundreds to a few thousand
// requests per experiment) exact percentiles are cheap and preferable to a
// sketch.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Reset discards all observations, keeping the allocated capacity. The
// autoscaler reuses one Sample as a per-tick latency window: fill,
// Percentile(95), Reset.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the population variance of the sample.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(n)
}

// StdDev returns the population standard deviation of the sample.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 when empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Values returns a copy of the stored observations (sorted ascending if a
// percentile has been queried since the last Add).
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// TimeWeighted tracks a step function of time (for example, the number of
// GPUs caching a model, or a busy/idle flag) and reports its time-weighted
// average. Observations must arrive with non-decreasing timestamps.
type TimeWeighted struct {
	started  bool
	t0, last float64
	value    float64
	area     float64
}

// Set records that the tracked quantity changed to v at time t (seconds).
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.t0, tw.last, tw.value = t, t, v
		return
	}
	if t < tw.last {
		t = tw.last // clamp minor reordering; callers use a monotone clock
	}
	tw.area += tw.value * (t - tw.last)
	tw.last, tw.value = t, v
}

// Average returns the time-weighted average over [t0, t]. If t precedes the
// last update the average up to the last update is returned.
func (tw *TimeWeighted) Average(t float64) float64 {
	if !tw.started {
		return 0
	}
	if t < tw.last {
		t = tw.last
	}
	total := t - tw.t0
	if total <= 0 {
		return tw.value
	}
	return (tw.area + tw.value*(t-tw.last)) / total
}

// Value returns the current value of the step function.
func (tw *TimeWeighted) Value() float64 { return tw.value }

// Linear is a least-squares fit y = Alpha + Beta*x, used to profile model
// inference time as a function of batch size ("which can be profiled using
// simple regression methods", §IV-A).
type Linear struct {
	Alpha, Beta float64
	R2          float64
	N           int
}

// ErrDegenerate is returned when a regression has no x-variance or too few
// points to fit.
var ErrDegenerate = errors.New("stats: degenerate regression input")

// FitLinear fits a least-squares line through the (x, y) pairs.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Linear{}, ErrDegenerate
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, ErrDegenerate
	}
	beta := sxy / sxx
	alpha := my - beta*mx
	r2 := 1.0
	if syy > 0 {
		ss := 0.0
		for i := 0; i < n; i++ {
			r := ys[i] - (alpha + beta*xs[i])
			ss += r * r
		}
		r2 = 1 - ss/syy
	}
	return Linear{Alpha: alpha, Beta: beta, R2: r2, N: n}, nil
}

// Predict evaluates the fitted line at x.
func (l Linear) Predict(x float64) float64 { return l.Alpha + l.Beta*x }

// Histogram is a fixed-bucket histogram over [lo, hi); out-of-range values
// clamp to the edge buckets. It is used by the bench harness to summarize
// latency distributions.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%g,%g) n=%d", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns an approximate quantile (0..1) from bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	var cum int64
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.Lo + width*float64(i+1)
		}
	}
	return h.Hi
}

// Ratio is a hit/total style counter with a convenience accessor, used for
// cache miss ratios and false-miss ratios.
type Ratio struct {
	Num, Den int64
}

// Observe adds one trial; hit selects the numerator.
func (r *Ratio) Observe(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// Value returns Num/Den, or 0 when no trials were observed.
func (r *Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Reduction returns the relative reduction from base to x, e.g. the paper's
// "reduces the average latency by 97.74%" is Reduction(lbLatency,
// lalbLatency) == 0.9774. Returns 0 when base is 0.
func Reduction(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - x) / base
}

// Speedup returns base/x, the paper's "48x speedup" form. Returns +Inf for
// x == 0 with nonzero base, and 1 when both are zero.
func Speedup(base, x float64) float64 {
	if x == 0 {
		if base == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return base / x
}
