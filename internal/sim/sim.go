// Package sim implements the discrete-event simulation engine that drives
// the GPU-FaaS cluster in simulated-time mode. The engine provides a
// deterministic virtual clock and a priority event queue; all scheduling,
// caching and GPU-execution components are passive state machines that the
// engine calls back at event boundaries.
//
// Determinism: events with equal timestamps are delivered in the order they
// were scheduled (FIFO tie-breaking via a monotone sequence number), so a
// simulation with a fixed workload and seed always produces identical
// results — a property the test suite relies on.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// Event is a callback scheduled to fire at a virtual time.
type Event struct {
	At   Time
	Name string // for tracing/debugging
	Fn   func(now Time)

	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event loop. It is not safe for
// concurrent use; the live (real-time) FaaS path uses goroutines and a wall
// clock instead of this engine.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	maxLen int
}

// New returns an empty engine at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events delivered so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxQueueLen returns the high-water mark of the event queue.
func (e *Engine) MaxQueueLen() int { return e.maxLen }

// ErrPastEvent is returned when scheduling an event before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn at absolute virtual time t and returns a handle that can
// be cancelled. Scheduling in the past is an error: virtual time never runs
// backwards.
func (e *Engine) At(t Time, name string, fn func(now Time)) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v (%s)", ErrPastEvent, t, e.now, name)
	}
	ev := &Event{At: t, Name: name, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.maxLen {
		e.maxLen = len(e.queue)
	}
	return ev, nil
}

// After schedules fn after delay d from the current time. Negative delays
// are clamped to zero (fires at the current time, after already-queued
// same-time events).
func (e *Engine) After(d Time, name string, fn func(now Time)) *Event {
	if d < 0 {
		d = 0
	}
	ev, _ := e.At(e.now+d, name, fn) // cannot be in the past by construction
	return ev
}

// Cancel removes a pending event. It is a no-op if the event already fired
// or was cancelled.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Step delivers the next event, advancing virtual time to its timestamp.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.fired++
	ev.Fn(e.now)
	return true
}

// Run delivers events until the queue empties or the event budget is
// exhausted. A budget <= 0 means unlimited. It returns the number of events
// delivered by this call.
func (e *Engine) Run(budget uint64) uint64 {
	var n uint64
	for (budget <= 0 || n < budget) && e.Step() {
		n++
	}
	return n
}

// RunUntil delivers events with timestamps <= deadline; the clock is left at
// min(deadline, time of last event). Events scheduled beyond the deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) uint64 {
	var n uint64
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Clock abstracts "what time is it" and "call me later" so that the
// scheduler, cache manager and GPU managers run identically under the
// discrete-event engine (benchmarks) and the wall clock (live gateway).
type Clock interface {
	// Now returns the current time as an offset from the run epoch.
	Now() Time
	// AfterFunc arranges for fn to run after d. The returned cancel func
	// stops a pending timer; calling it after firing is a no-op.
	AfterFunc(d Time, name string, fn func(now Time)) (cancel func())
}

// SimClock adapts Engine to the Clock interface.
type SimClock struct{ E *Engine }

// Now returns the engine's virtual time.
func (c SimClock) Now() Time { return c.E.Now() }

// AfterFunc schedules fn on the engine.
func (c SimClock) AfterFunc(d Time, name string, fn func(now Time)) func() {
	ev := c.E.After(d, name, fn)
	return func() { c.E.Cancel(ev) }
}

// RealClock implements Clock over the wall clock. Callbacks run on timer
// goroutines; components that use RealClock must be mutex-protected (the
// live FaaS path locks around every scheduler entry point).
type RealClock struct {
	Epoch time.Time
}

// NewRealClock returns a RealClock rooted at the current instant.
func NewRealClock() *RealClock { return &RealClock{Epoch: time.Now()} }

// Now returns the elapsed wall time since the epoch.
func (c *RealClock) Now() Time { return time.Since(c.Epoch) }

// AfterFunc runs fn on a timer goroutine after d.
func (c *RealClock) AfterFunc(d Time, _ string, fn func(now Time)) func() {
	t := time.AfterFunc(d, func() { fn(c.Now()) })
	return func() { t.Stop() }
}
