// Package sim implements the discrete-event simulation engine that drives
// the GPU-FaaS cluster in simulated-time mode. The engine provides a
// deterministic virtual clock and a priority event queue; all scheduling,
// caching and GPU-execution components are passive state machines that the
// engine calls back at event boundaries.
//
// Determinism: events with equal timestamps are delivered in the order they
// were scheduled (FIFO tie-breaking via a monotone sequence number), so a
// simulation with a fixed workload and seed always produces identical
// results — a property the test suite relies on.
//
// The queue is an inlined 4-ary index heap over a free-list-pooled event
// arena: scheduling an event reuses a slot instead of allocating, and the
// heap orders int32 slot indices instead of container/heap's boxed `any`
// values. Handles are generation-stamped so Cancel stays a safe no-op
// after the slot has fired and been reused.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// Handle identifies a scheduled event. The zero Handle is "no event";
// cancelling it is a no-op. Handles stay safe after their event fires or
// is cancelled: the underlying arena slot's generation is bumped on
// release, so a stale Handle can never touch the slot's next occupant.
type Handle struct {
	slot int32
	gen  uint32
}

// eventSlot is one arena entry. Slots are recycled through a free list;
// gen disambiguates incarnations.
type eventSlot struct {
	fn   func(now Time)
	bfn  func(i int, now Time) // batch callback (AfterBatch); nil otherwise
	name string
	at   Time
	seq  uint64
	gen  uint32 // current incarnation; starts at 1 so Handle{} never matches
	pos  int32  // heap position, -1 when not queued
	bidx int32  // batch element index (with bfn)
}

// heapArity is the branching factor of the event queue. A 4-ary heap
// halves the tree depth of the binary heap, trading slightly more sibling
// comparisons per level for far fewer cache-missing levels — the winning
// trade for sift-down-dominated workloads like Step.
const heapArity = 4

// Engine is a single-threaded discrete-event loop. It is not safe for
// concurrent use; the live (real-time) FaaS path uses goroutines and a wall
// clock instead of this engine.
type Engine struct {
	now    Time
	slots  []eventSlot
	free   []int32 // free-list of recyclable slot indices
	heap   []int32 // 4-ary min-heap of slot indices, keyed by (at, seq)
	seq    uint64
	fired  uint64
	maxLen int
}

// New returns an empty engine at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events delivered so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.heap) }

// MaxQueueLen returns the high-water mark of the event queue.
func (e *Engine) MaxQueueLen() int { return e.maxLen }

// Scheduled reports whether the event behind the handle is still queued
// (it has neither fired nor been cancelled).
func (e *Engine) Scheduled(h Handle) bool {
	if h.slot < 0 || int(h.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.slot]
	return s.gen == h.gen && s.pos >= 0
}

// ErrPastEvent is returned when scheduling an event before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// alloc takes a slot from the free list (or grows the arena) and fills in
// the ordering key; the caller sets the callback fields.
func (e *Engine) alloc(at Time, name string) int32 {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{gen: 1})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at = at
	s.name = name
	s.seq = e.seq
	e.seq++
	return idx
}

// release returns a slot to the free list. The generation bump kills every
// outstanding Handle to this incarnation, and the callback references are
// dropped so captured state is collectable while the slot sits free.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.bfn = nil
	s.name = ""
	s.gen++
	s.pos = -1
	e.free = append(e.free, idx)
}

// less orders slots by (at, seq): timestamp first, FIFO tie-break.
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// siftUp restores the heap property from position i toward the root.
func (e *Engine) siftUp(i int) {
	idx := e.heap[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := e.heap[parent]
		if !e.less(idx, p) {
			break
		}
		e.heap[i] = p
		e.slots[p].pos = int32(i)
		i = parent
	}
	e.heap[i] = idx
	e.slots[idx].pos = int32(i)
}

// siftDown restores the heap property from position i toward the leaves.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	idx := e.heap[i]
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		b := e.heap[best]
		if !e.less(b, idx) {
			break
		}
		e.heap[i] = b
		e.slots[b].pos = int32(i)
		i = best
	}
	e.heap[i] = idx
	e.slots[idx].pos = int32(i)
}

// push queues a filled slot.
func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	if len(e.heap) > e.maxLen {
		e.maxLen = len(e.heap)
	}
}

// removeAt unlinks the heap entry at position i, restoring heap order.
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	e.heap[i] = last
	e.slots[last].pos = int32(i)
	e.siftDown(i)
	e.siftUp(i)
}

// At schedules fn at absolute virtual time t and returns a handle that can
// be cancelled. Scheduling in the past is an error: virtual time never runs
// backwards.
func (e *Engine) At(t Time, name string, fn func(now Time)) (Handle, error) {
	if t < e.now {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v (%s)", ErrPastEvent, t, e.now, name)
	}
	idx := e.alloc(t, name)
	e.slots[idx].fn = fn
	e.push(idx)
	return Handle{slot: idx, gen: e.slots[idx].gen}, nil
}

// After schedules fn after delay d from the current time. Negative delays
// are clamped to zero (fires at the current time, after already-queued
// same-time events).
func (e *Engine) After(d Time, name string, fn func(now Time)) Handle {
	if d < 0 {
		d = 0
	}
	h, _ := e.At(e.now+d, name, fn) // cannot be in the past by construction
	return h
}

// AfterBatch schedules fn(i, now) at now+delays[i] for every element of
// delays, equivalent to — but cheaper than — a loop of After calls with
// per-element closures: the batch shares one callback, and the heap is
// rebuilt once (Floyd heapify, O(n)) instead of sifting per event.
// Delivery order matches the sequential-After equivalent exactly: ties
// fire in slice order. Negative delays are clamped to zero, like After.
func (e *Engine) AfterBatch(delays []Time, name string, fn func(i int, now Time)) {
	if len(delays) == 0 {
		return
	}
	// Reserve contiguously where possible; slots may still come from the
	// free list.
	if cap(e.slots)-len(e.slots) < len(delays)-len(e.free) {
		grown := make([]eventSlot, len(e.slots), len(e.slots)+len(delays))
		copy(grown, e.slots)
		e.slots = grown
	}
	if cap(e.heap)-len(e.heap) < len(delays) {
		grown := make([]int32, len(e.heap), len(e.heap)+len(delays))
		copy(grown, e.heap)
		e.heap = grown
	}
	for i, d := range delays {
		if d < 0 {
			d = 0
		}
		idx := e.alloc(e.now+d, name)
		s := &e.slots[idx]
		s.bfn = fn
		s.bidx = int32(i)
		e.heap = append(e.heap, idx)
		s.pos = int32(len(e.heap) - 1)
	}
	// Floyd heapify: the internal layout differs from sequential pushes,
	// but pop order is fully determined by the (at, seq) total order.
	for i := (len(e.heap) - 2) / heapArity; i >= 0; i-- {
		e.siftDown(i)
	}
	if len(e.heap) > e.maxLen {
		e.maxLen = len(e.heap)
	}
}

// Cancel removes a pending event. It is a no-op if the event already fired
// or was cancelled (the generation stamp makes stale handles inert even
// after the arena slot is reused).
func (e *Engine) Cancel(h Handle) {
	if h.slot < 0 || int(h.slot) >= len(e.slots) {
		return
	}
	s := &e.slots[h.slot]
	if s.gen != h.gen || s.pos < 0 {
		return
	}
	e.removeAt(int(s.pos))
	e.release(h.slot)
}

// Step delivers the next event, advancing virtual time to its timestamp.
// It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		e.slots[last].pos = 0
		e.siftDown(0)
	}
	// Copy the callback out and recycle the slot before invoking, so the
	// callback may schedule (and reuse the arena) freely and a Cancel of
	// this event from within it is a clean no-op.
	s := &e.slots[idx]
	at, fn, bfn, bidx := s.at, s.fn, s.bfn, s.bidx
	e.release(idx)
	e.now = at
	e.fired++
	if bfn != nil {
		bfn(int(bidx), at)
	} else {
		fn(at)
	}
	return true
}

// Run delivers events until the queue empties or the event budget is
// exhausted. A budget <= 0 means unlimited. It returns the number of events
// delivered by this call.
func (e *Engine) Run(budget uint64) uint64 {
	var n uint64
	for (budget <= 0 || n < budget) && e.Step() {
		n++
	}
	return n
}

// RunUntil delivers events with timestamps <= deadline; the clock is left at
// min(deadline, time of last event). Events scheduled beyond the deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) uint64 {
	var n uint64
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Clock abstracts "what time is it" and "call me later" so that the
// scheduler, cache manager and GPU managers run identically under the
// discrete-event engine (benchmarks) and the wall clock (live gateway).
type Clock interface {
	// Now returns the current time as an offset from the run epoch.
	Now() Time
	// AfterFunc arranges for fn to run after d. The returned cancel func
	// stops a pending timer; calling it after firing is a no-op.
	AfterFunc(d Time, name string, fn func(now Time)) (cancel func())
}

// SimClock adapts Engine to the Clock interface.
type SimClock struct{ E *Engine }

// Now returns the engine's virtual time.
func (c SimClock) Now() Time { return c.E.Now() }

// AfterFunc schedules fn on the engine.
func (c SimClock) AfterFunc(d Time, name string, fn func(now Time)) func() {
	h := c.E.After(d, name, fn)
	return func() { c.E.Cancel(h) }
}

// RealClock implements Clock over the wall clock. Callbacks run on timer
// goroutines; components that use RealClock must be mutex-protected (the
// live FaaS path locks around every scheduler entry point).
type RealClock struct {
	Epoch time.Time
}

// NewRealClock returns a RealClock rooted at the current instant.
func NewRealClock() *RealClock { return &RealClock{Epoch: time.Now()} }

// Now returns the elapsed wall time since the epoch.
func (c *RealClock) Now() Time { return time.Since(c.Epoch) }

// AfterFunc runs fn on a timer goroutine after d.
func (c *RealClock) AfterFunc(d Time, _ string, fn func(now Time)) func() {
	t := time.AfterFunc(d, func() { fn(c.Now()) })
	return func() { t.Stop() }
}
