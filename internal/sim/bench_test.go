package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineFire measures the steady-state schedule+deliver cycle —
// the cost every simulated request pays several times over (arrival,
// load-done, completion). Depth sub-benchmarks hold a standing queue so
// the heap works at realistic fan-out, not just the empty-queue fast
// path.
func BenchmarkEngineFire(b *testing.B) {
	for _, depth := range []int{0, 1024} {
		b.Run(benchName(depth), func(b *testing.B) {
			e := New()
			for i := 0; i < depth; i++ {
				e.After(time.Duration(i+1)*time.Hour, "standing", func(Time) {})
			}
			fn := func(Time) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(time.Millisecond, "fire", fn)
				e.Step()
			}
		})
	}
}

// BenchmarkEngineCancel measures schedule+cancel — the watchdog/timer
// pattern where most timers never fire.
func BenchmarkEngineCancel(b *testing.B) {
	e := New()
	fn := func(Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.After(time.Second, "cancel", fn)
		e.Cancel(ev)
	}
}

func benchName(depth int) string {
	if depth == 0 {
		return "depth=0"
	}
	return "depth=1024"
}
