package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.After(3*time.Second, "c", func(Time) { got = append(got, 3) })
	e.After(1*time.Second, "a", func(Time) { got = append(got, 1) })
	e.After(2*time.Second, "b", func(Time) { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, "tie", func(Time) { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.After(time.Second, "outer", func(now Time) {
		trace = append(trace, "outer")
		e.After(time.Second, "inner", func(Time) { trace = append(trace, "inner") })
	})
	e.Run(0)
	if len(trace) != 2 || trace[0] != "outer" || trace[1] != "inner" {
		t.Fatalf("trace = %v", trace)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEnginePastEventRejected(t *testing.T) {
	e := New()
	e.After(5*time.Second, "later", func(Time) {})
	e.Step()
	if _, err := e.At(time.Second, "past", func(Time) {}); err == nil {
		t.Fatal("want error scheduling into the past")
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := New()
	fired := false
	e.After(-time.Second, "neg", func(now Time) {
		fired = true
		if now != 0 {
			t.Errorf("fired at %v, want 0", now)
		}
	})
	e.Run(0)
	if !fired {
		t.Fatal("clamped event did not fire")
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := 0
	ev := e.After(time.Second, "x", func(Time) { fired++ })
	e.After(2*time.Second, "y", func(Time) { fired++ })
	if !e.Scheduled(ev) {
		t.Error("event should be scheduled before cancel")
	}
	e.Cancel(ev)
	if e.Scheduled(ev) {
		t.Error("event should not be scheduled after cancel")
	}
	e.Cancel(ev)       // cancel-twice is a no-op
	e.Cancel(Handle{}) // zero handle is "no event"
	e.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineCancelAfterFireNoop(t *testing.T) {
	e := New()
	ev := e.After(time.Second, "x", func(Time) {})
	e.Run(0)
	if e.Scheduled(ev) {
		t.Error("fired event still reports scheduled")
	}
	e.Cancel(ev) // must not panic or corrupt the heap
	e.After(time.Second, "y", func(Time) {})
	if e.Run(0) != 1 {
		t.Fatal("engine corrupted after cancelling a fired event")
	}
}

// TestEngineStaleHandleAfterReuse: the arena recycles a fired event's
// slot; cancelling through the stale handle must not touch the slot's new
// occupant (the generation stamp protects it).
func TestEngineStaleHandleAfterReuse(t *testing.T) {
	e := New()
	stale := e.After(time.Second, "old", func(Time) {})
	e.Run(0) // fires "old", releasing its slot to the free list
	fired := false
	fresh := e.After(time.Second, "new", func(Time) { fired = true })
	e.Cancel(stale) // stale generation: must be inert
	if !e.Scheduled(fresh) {
		t.Fatal("stale cancel killed the slot's new occupant")
	}
	e.Cancel(stale) // cancel-twice on a stale handle, still inert
	e.Run(0)
	if !fired {
		t.Fatal("reused-slot event did not fire")
	}
}

// TestEngineFIFOUnderInterleavedCancels: same-timestamp events keep their
// scheduling order even when events between them are cancelled (heap
// removals must not disturb the (at, seq) total order).
func TestEngineFIFOUnderInterleavedCancels(t *testing.T) {
	e := New()
	var got []int
	var hs []Handle
	for i := 0; i < 20; i++ {
		i := i
		hs = append(hs, e.After(time.Second, "tie", func(Time) { got = append(got, i) }))
	}
	var want []int
	for i := range hs {
		if i%3 == 1 { // cancel a strided subset between survivors
			e.Cancel(hs[i])
		} else {
			want = append(want, i)
		}
	}
	e.Run(0)
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-time events reordered after cancels: %v, want %v", got, want)
		}
	}
}

// TestRunUntilClockAtDeadline: RunUntil with no events in range must still
// advance the clock to the deadline, and an event exactly at the deadline
// is delivered.
func TestRunUntilClockAtDeadline(t *testing.T) {
	e := New()
	if n := e.RunUntil(time.Second); n != 0 || e.Now() != time.Second {
		t.Fatalf("empty RunUntil: n=%d now=%v", n, e.Now())
	}
	fired := false
	e.After(time.Second, "edge", func(now Time) {
		fired = true
		if now != 2*time.Second {
			t.Errorf("fired at %v", now)
		}
	})
	e.After(5*time.Second, "beyond", func(Time) {})
	if n := e.RunUntil(2 * time.Second); n != 1 || !fired {
		t.Fatalf("deadline-edge event: n=%d fired=%v", n, fired)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("clock = %v, want the deadline", e.Now())
	}
}

// TestAfterBatchMatchesSequentialAfter: an AfterBatch delivery is
// indistinguishable from the equivalent loop of After calls, including
// FIFO tie-breaks and interleaving with already-queued events.
func TestAfterBatchMatchesSequentialAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		delays := make([]Time, rng.Intn(64))
		for i := range delays {
			delays[i] = Time(rng.Intn(8)) * time.Second
		}
		runSeq := func(batch bool) []int {
			e := New()
			var got []int
			e.After(3*time.Second, "pre", func(Time) { got = append(got, -1) })
			if batch {
				e.AfterBatch(delays, "b", func(i int, _ Time) { got = append(got, i) })
			} else {
				for i, d := range delays {
					i := i
					e.After(d, "b", func(Time) { got = append(got, i) })
				}
			}
			e.Run(0)
			return got
		}
		seq, bat := runSeq(false), runSeq(true)
		if len(seq) != len(bat) {
			t.Fatalf("trial %d: lengths differ: %v vs %v", trial, seq, bat)
		}
		for i := range seq {
			if seq[i] != bat[i] {
				t.Fatalf("trial %d: order differs at %d: seq=%v batch=%v", trial, i, seq, bat)
			}
		}
	}
}

// TestAfterBatchEdgeCases: empty batches and negative delays (clamped like
// After).
func TestAfterBatchEdgeCases(t *testing.T) {
	e := New()
	e.AfterBatch(nil, "empty", func(int, Time) { t.Error("empty batch fired") })
	if e.Pending() != 0 {
		t.Fatal("empty batch queued events")
	}
	var got []int
	e.AfterBatch([]Time{-time.Second, 0}, "neg", func(i int, now Time) {
		if now != 0 {
			t.Errorf("element %d fired at %v, want 0", i, now)
		}
		got = append(got, i)
	})
	e.Run(0)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("fired %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 5 * time.Second} {
		e.After(d, "x", func(now Time) { fired = append(fired, now) })
	}
	n := e.RunUntil(3 * time.Second)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("delivered %d, fired %v", n, fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock should sit at the deadline, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run(0)
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestRunBudget(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.After(Time(i)*time.Millisecond, "x", func(Time) {})
	}
	if n := e.Run(4); n != 4 {
		t.Fatalf("budget run delivered %d", n)
	}
	if e.Pending() != 6 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

// Property: regardless of insertion order, events fire in timestamp order
// with FIFO tie-breaking, and the clock is monotone.
func TestEngineTimestampOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			e.After(Time(d)*time.Millisecond, "p", func(now Time) { fired = append(fired, now) })
		}
		e.Run(0)
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others firing.
func TestEngineCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(n uint8) bool {
		e := New()
		count := int(n%50) + 1
		fired := make([]bool, count)
		evs := make([]Handle, count)
		for i := 0; i < count; i++ {
			i := i
			evs[i] = e.After(Time(rng.Intn(1000))*time.Millisecond, "p", func(Time) { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run(0)
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimClock(t *testing.T) {
	e := New()
	c := SimClock{E: e}
	var at Time
	cancel := c.AfterFunc(2*time.Second, "t", func(now Time) { at = now })
	_ = cancel
	e.Run(0)
	if at != 2*time.Second {
		t.Fatalf("fired at %v", at)
	}
	if c.Now() != 2*time.Second {
		t.Errorf("Now = %v", c.Now())
	}

	var fired bool
	cancel2 := c.AfterFunc(time.Second, "t2", func(Time) { fired = true })
	cancel2()
	e.Run(0)
	if fired {
		t.Error("cancelled SimClock timer fired")
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	done := make(chan Time, 1)
	c.AfterFunc(5*time.Millisecond, "t", func(now Time) { done <- now })
	select {
	case at := <-done:
		if at < 4*time.Millisecond {
			t.Errorf("fired too early: %v", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RealClock timer never fired")
	}
	cancel := c.AfterFunc(50*time.Millisecond, "t2", func(Time) { t.Error("cancelled timer fired") })
	cancel()
	time.Sleep(80 * time.Millisecond)
}

func TestMaxQueueLen(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Second, "x", func(Time) {})
	}
	e.Run(0)
	if e.MaxQueueLen() != 5 {
		t.Errorf("MaxQueueLen = %d", e.MaxQueueLen())
	}
}
