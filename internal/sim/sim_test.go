package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.After(3*time.Second, "c", func(Time) { got = append(got, 3) })
	e.After(1*time.Second, "a", func(Time) { got = append(got, 1) })
	e.After(2*time.Second, "b", func(Time) { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, "tie", func(Time) { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.After(time.Second, "outer", func(now Time) {
		trace = append(trace, "outer")
		e.After(time.Second, "inner", func(Time) { trace = append(trace, "inner") })
	})
	e.Run(0)
	if len(trace) != 2 || trace[0] != "outer" || trace[1] != "inner" {
		t.Fatalf("trace = %v", trace)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEnginePastEventRejected(t *testing.T) {
	e := New()
	e.After(5*time.Second, "later", func(Time) {})
	e.Step()
	if _, err := e.At(time.Second, "past", func(Time) {}); err == nil {
		t.Fatal("want error scheduling into the past")
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := New()
	fired := false
	e.After(-time.Second, "neg", func(now Time) {
		fired = true
		if now != 0 {
			t.Errorf("fired at %v, want 0", now)
		}
	})
	e.Run(0)
	if !fired {
		t.Fatal("clamped event did not fire")
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := 0
	ev := e.After(time.Second, "x", func(Time) { fired++ })
	e.After(2*time.Second, "y", func(Time) { fired++ })
	e.Cancel(ev)
	if !ev.Cancelled() {
		t.Error("event should report cancelled")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	e.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineCancelAfterFireNoop(t *testing.T) {
	e := New()
	ev := e.After(time.Second, "x", func(Time) {})
	e.Run(0)
	e.Cancel(ev) // must not panic or corrupt the heap
	e.After(time.Second, "y", func(Time) {})
	if e.Run(0) != 1 {
		t.Fatal("engine corrupted after cancelling a fired event")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 5 * time.Second} {
		e.After(d, "x", func(now Time) { fired = append(fired, now) })
	}
	n := e.RunUntil(3 * time.Second)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("delivered %d, fired %v", n, fired)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock should sit at the deadline, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run(0)
	if e.Now() != 5*time.Second {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestRunBudget(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.After(Time(i)*time.Millisecond, "x", func(Time) {})
	}
	if n := e.Run(4); n != 4 {
		t.Fatalf("budget run delivered %d", n)
	}
	if e.Pending() != 6 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

// Property: regardless of insertion order, events fire in timestamp order
// with FIFO tie-breaking, and the clock is monotone.
func TestEngineTimestampOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var fired []Time
		for _, d := range delays {
			e.After(Time(d)*time.Millisecond, "p", func(now Time) { fired = append(fired, now) })
		}
		e.Run(0)
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others firing.
func TestEngineCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(n uint8) bool {
		e := New()
		count := int(n%50) + 1
		fired := make([]bool, count)
		evs := make([]*Event, count)
		for i := 0; i < count; i++ {
			i := i
			evs[i] = e.After(Time(rng.Intn(1000))*time.Millisecond, "p", func(Time) { fired[i] = true })
		}
		cancelled := make([]bool, count)
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		e.Run(0)
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimClock(t *testing.T) {
	e := New()
	c := SimClock{E: e}
	var at Time
	cancel := c.AfterFunc(2*time.Second, "t", func(now Time) { at = now })
	_ = cancel
	e.Run(0)
	if at != 2*time.Second {
		t.Fatalf("fired at %v", at)
	}
	if c.Now() != 2*time.Second {
		t.Errorf("Now = %v", c.Now())
	}

	var fired bool
	cancel2 := c.AfterFunc(time.Second, "t2", func(Time) { fired = true })
	cancel2()
	e.Run(0)
	if fired {
		t.Error("cancelled SimClock timer fired")
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	done := make(chan Time, 1)
	c.AfterFunc(5*time.Millisecond, "t", func(now Time) { done <- now })
	select {
	case at := <-done:
		if at < 4*time.Millisecond {
			t.Errorf("fired too early: %v", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RealClock timer never fired")
	}
	cancel := c.AfterFunc(50*time.Millisecond, "t2", func(Time) { t.Error("cancelled timer fired") })
	cancel()
	time.Sleep(80 * time.Millisecond)
}

func TestMaxQueueLen(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Second, "x", func(Time) {})
	}
	e.Run(0)
	if e.MaxQueueLen() != 5 {
		t.Errorf("MaxQueueLen = %d", e.MaxQueueLen())
	}
}
