// Package multicell shards a GPU-FaaS fleet into K independent cells —
// each a full sim.Engine + scheduler + cache/autoscaler stack on its own
// goroutine — behind a deterministic front-door router. Cells share no
// GPUs and no event ordering, so the one resource a single-threaded
// simulation cannot use, cores, converts directly into fleet scale:
// 10k+ GPU fleets run as K smaller clusters wall-clock-parallel.
//
// Determinism is the load-bearing property. The router is a pure
// function of the arrival-stream prefix (see router.go), so every cell
// worker regenerates the full stream from its seed, filters it through a
// private router instance and keeps only its own share. No channels, no
// cross-cell feedback, no dependence on goroutine interleaving: the same
// configuration produces byte-identical merged reports at any worker
// count, which the CI determinism gate enforces end to end.
package multicell

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/obs"
	"gpufaas/internal/trace"
)

// CellSpec is one cell's stack: its cluster configuration (fleet already
// partitioned down to the cell's share) and the arrival source the
// front-door router filters.
type CellSpec struct {
	// Config builds the cell's private cluster. It must describe only
	// this cell's slice of the fleet.
	Config cluster.Config
	// Source yields the FULL fleet arrival stream; the runner filters
	// it through the router and keeps the cell's share. Each cell needs
	// its own source instance (streams are single-use iterators).
	Source cluster.ArrivalSource
	// TopModel, when non-empty, enables duplicate tracking (Fig. 6).
	TopModel string
}

// Config describes one multi-cell run.
type Config struct {
	// Cells is the number of cells (>= 1).
	Cells int
	// Router seeds the front-door router; Cells is overridden from the
	// field above.
	Router RouterConfig
	// Workers bounds concurrently simulated cells (<= 0: GOMAXPROCS).
	// Results do not depend on it.
	Workers int
	// Materialize collects each cell's share into memory and replays it
	// via RunWorkload instead of RunWorkloadStream. The materialized
	// path is byte-identical to the legacy single-cluster replay (the
	// golden-pinned path) at O(trace) memory; the streaming path is the
	// scale configuration.
	Materialize bool
	// Setup builds cell i's spec. It is called once per cell and may
	// run concurrently with other cells' setups.
	Setup func(cell int) (CellSpec, error)
}

// CellOutcome couples one cell's report with the raw merge inputs and
// the router's accounting for the cell.
type CellOutcome struct {
	Report cluster.Report
	Stats  cluster.RunStats
	// Routed counts the requests the front door sent to this cell.
	Routed int64
	// Spans are the cell's sampled lifecycle spans (nil unless the cell
	// config enabled tracing). The sample is a pure function of request
	// IDs, so concatenating cells reconstructs the fleet-wide sample.
	Spans []obs.Span
}

// Result is one multi-cell run: the fleet-level roll-up plus the
// per-cell outcomes it was merged from.
type Result struct {
	Merged MergedReport
	Cells  []CellOutcome
	// WallSeconds is the wall-clock duration of the whole run.
	// Volatile: excluded from determinism comparisons.
	WallSeconds float64
}

// Run simulates all cells and merges their reports. Cell errors are
// reported lowest-index first (deterministic at any worker count).
func Run(cfg Config) (Result, error) {
	if cfg.Cells < 1 {
		return Result{}, fmt.Errorf("multicell: need >= 1 cell, got %d", cfg.Cells)
	}
	if cfg.Setup == nil {
		return Result{}, fmt.Errorf("multicell: nil Setup")
	}
	rcfg := cfg.Router
	rcfg.Cells = cfg.Cells
	if _, err := NewRouter(rcfg); err != nil {
		return Result{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Cells {
		workers = cfg.Cells
	}

	start := time.Now()
	outs := make([]CellOutcome, cfg.Cells)
	errs := make([]error, cfg.Cells)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out, err := runCell(cfg, rcfg, i)
				if err != nil {
					errs[i] = fmt.Errorf("multicell: cell %d: %w", i, err)
					continue
				}
				outs[i] = out
			}
		}()
	}
	for i := 0; i < cfg.Cells; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return Result{
		Merged:      Merge(outs, rcfg.Policy),
		Cells:       outs,
		WallSeconds: time.Since(start).Seconds(),
	}, nil
}

// runCell simulates one cell: private router, private cluster, private
// replay of the full stream filtered down to the cell's share.
func runCell(cfg Config, rcfg RouterConfig, i int) (CellOutcome, error) {
	router, err := NewRouter(rcfg)
	if err != nil {
		return CellOutcome{}, err
	}
	spec, err := cfg.Setup(i)
	if err != nil {
		return CellOutcome{}, err
	}
	if spec.Source == nil {
		return CellOutcome{}, fmt.Errorf("nil arrival source")
	}
	c, err := cluster.New(spec.Config)
	if err != nil {
		return CellOutcome{}, err
	}
	if spec.TopModel != "" {
		c.TrackModel(spec.TopModel)
	}
	src := &cellSource{src: spec.Source, router: router, cell: i}
	var rep cluster.Report
	if cfg.Materialize {
		var all []trace.Request
		for {
			batch, ok := src.Next()
			if !ok {
				break
			}
			all = append(all, batch...) // Next's slice is reused: copy
		}
		rep, err = c.RunWorkload(all)
	} else {
		rep, err = c.RunWorkloadStream(src)
	}
	if err != nil {
		return CellOutcome{}, err
	}
	return CellOutcome{Report: rep, Stats: c.RunStats(), Routed: src.kept, Spans: c.Spans()}, nil
}

// cellSource filters a full arrival stream down to one cell's share by
// replaying the front-door routing decision for every request. Empty
// batches are skipped so the downstream injector always sees progress.
type cellSource struct {
	src    cluster.ArrivalSource
	router *Router
	cell   int
	buf    []trace.Request
	kept   int64
}

// Next implements cluster.ArrivalSource.
func (cs *cellSource) Next() ([]trace.Request, bool) {
	for {
		batch, ok := cs.src.Next()
		if !ok {
			return nil, false
		}
		cs.buf = cs.buf[:0]
		for _, r := range batch {
			if cs.router.Route(r) == cs.cell {
				cs.buf = append(cs.buf, r)
			}
		}
		if len(cs.buf) > 0 {
			cs.kept += int64(len(cs.buf))
			return cs.buf, true
		}
	}
}
