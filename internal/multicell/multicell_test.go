package multicell

import (
	"math"
	"testing"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/stats"
)

func TestPartitionCounts(t *testing.T) {
	cases := []struct {
		total, cells int
		want         []int
	}{
		{12, 4, []int{3, 3, 3, 3}},
		{13, 4, []int{4, 3, 3, 3}},
		{3, 4, []int{1, 1, 1, 0}},
		{0, 2, []int{0, 0}},
	}
	for _, c := range cases {
		got := PartitionCounts(c.total, c.cells)
		if len(got) != len(c.want) {
			t.Fatalf("PartitionCounts(%d,%d) len=%d", c.total, c.cells, len(got))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PartitionCounts(%d,%d) = %v, want %v", c.total, c.cells, got, c.want)
				break
			}
		}
	}
}

func TestPartitionFleet(t *testing.T) {
	spec := cluster.FleetSpec{
		{Type: "a100", Count: 10, Memory: 1 << 30},
		{Type: "rtx2080", Count: 3, Memory: 1 << 30},
	}
	parts, err := PartitionFleet(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]int{}
	for _, f := range parts {
		cellTotal := 0
		for _, class := range f {
			totals[class.Type] += class.Count
			cellTotal += class.Count
		}
		if cellTotal == 0 {
			t.Fatal("cell with no devices")
		}
	}
	if totals["a100"] != 10 || totals["rtx2080"] != 3 {
		t.Errorf("partition lost devices: %v", totals)
	}
	// Cell 3 gets no rtx2080 devices (3 over 4 cells) but the class
	// must stay DECLARED at Count 0: declared classes are autoscale
	// targets (tiered policies scale classes up from zero).
	if len(parts[3]) != 2 {
		t.Fatalf("cell 3 lost a class declaration: %v", parts[3])
	}
	if parts[3][1].Type != "rtx2080" || parts[3][1].Count != 0 {
		t.Errorf("cell 3 rtx2080 share = %+v, want declared Count 0", parts[3][1])
	}

	if _, err := PartitionFleet(cluster.FleetSpec{{Type: "a100", Count: 2}}, 4); err == nil {
		t.Error("partitioning 2 devices into 4 cells should fail")
	}
}

// TestMergeExactPercentiles pins that the roll-up computes latency
// statistics over the concatenated raw samples, not an approximation of
// per-cell summaries.
func TestMergeExactPercentiles(t *testing.T) {
	cells := []CellOutcome{
		{Stats: cluster.RunStats{Latencies: []float64{1, 2, 3, 10}}},
		{Stats: cluster.RunStats{Latencies: []float64{0.5, 4, 20}}},
	}
	m := Merge(cells, RouteHash)

	want := stats.NewSample(7)
	for _, x := range []float64{1, 2, 3, 10, 0.5, 4, 20} {
		want.Add(x)
	}
	if m.P95LatencySec != want.Percentile(95) {
		t.Errorf("P95 = %v, want %v", m.P95LatencySec, want.Percentile(95))
	}
	if m.P50LatencySec != want.Percentile(50) {
		t.Errorf("P50 = %v, want %v", m.P50LatencySec, want.Percentile(50))
	}
	if m.AvgLatencySec != want.Mean() {
		t.Errorf("Avg = %v, want %v", m.AvgLatencySec, want.Mean())
	}
	if m.MaxLatencySec != 20 {
		t.Errorf("Max = %v, want 20", m.MaxLatencySec)
	}
}

func TestMergeCountersAndRatios(t *testing.T) {
	mk := func(req, misses, falseMisses, lookups int64, p95 float64, idle, infer time.Duration) CellOutcome {
		return CellOutcome{
			Report: cluster.Report{
				Requests:      req,
				Misses:        misses,
				FalseMisses:   falseMisses,
				P95LatencySec: p95,
				GPUSeconds:    float64(req),
				Streaming:     &cluster.StreamStats{Requests: req, PeakInflight: 2},
			},
			Stats: cluster.RunStats{
				CacheRequests: lookups,
				Idle:          idle,
				Inferring:     infer,
			},
		}
	}
	cells := []CellOutcome{
		mk(100, 30, 6, 100, 2.0, 10*time.Second, 30*time.Second),
		mk(50, 10, 2, 50, 5.0, 30*time.Second, 10*time.Second),
	}
	m := Merge(cells, RouteLeastLoaded)

	if m.Requests != 150 || m.Misses != 40 || m.FalseMisses != 8 {
		t.Errorf("summed counters wrong: %+v", m)
	}
	if want := 40.0 / 150.0; m.MissRatio != want {
		t.Errorf("MissRatio = %v, want %v (summed num/den, not averaged ratios)", m.MissRatio, want)
	}
	if want := 8.0 / 40.0; m.FalseMissRatio != want {
		t.Errorf("FalseMissRatio = %v, want %v", m.FalseMissRatio, want)
	}
	// 40s inferring over 80s total GPU-time.
	if want := 0.5; math.Abs(m.SMUtilization-want) > 1e-12 {
		t.Errorf("SMUtilization = %v, want %v", m.SMUtilization, want)
	}
	if m.GPUSeconds != 150 {
		t.Errorf("GPUSeconds = %v, want 150", m.GPUSeconds)
	}
	if m.Streaming == nil || m.Streaming.Requests != 150 || m.Streaming.PeakInflight != 4 {
		t.Errorf("Streaming roll-up wrong: %+v", m.Streaming)
	}
	sp := m.CellSpread
	if sp.MinRequests != 50 || sp.MaxRequests != 100 || sp.MinP95LatencySec != 2.0 || sp.MaxP95LatencySec != 5.0 {
		t.Errorf("spread wrong: %+v", sp)
	}
	if m.Router != "leastload" {
		t.Errorf("Router = %q", m.Router)
	}
}
