package multicell

// The front-door router. Production serving clouds scale past a single
// scheduler's reach by sharding the fleet into cells and placing a thin
// stateless router in front; the only state such a router can afford is
// a hash ring and a lagged load feed from the metrics pipeline. The
// three policies here reproduce that design space as a comparison axis:
// consistent hashing (stable function→cell pinning), model-affinity
// with overload spill, and pure least-loaded balancing on a
// snapshot-lagged signal.
//
// Determinism contract: a Router is a pure function of its config and
// the prefix of the arrival stream it has routed. It never observes the
// cells themselves — the "load" it balances on is its own routing
// history, bucketed into snapshot intervals, exactly the lag a real
// front door sees between a cell's state and the metrics feed. Every
// cell worker can therefore replay the full stream through a private
// Router instance and keep its own share, which is what makes multi-cell
// runs byte-identical at any worker count.

import (
	"fmt"
	"sort"
	"time"

	"gpufaas/internal/trace"
)

// Policy selects how the front-door router splits arrivals across cells.
type Policy int

const (
	// RouteHash consistent-hashes the function name onto a seeded
	// virtual-node ring: each function's requests pin to one cell, and
	// growing the cell count only remaps keys adjacent to the new
	// cell's vnodes (the classic minimal-disruption property).
	RouteHash Policy = iota
	// RouteAffinity consistent-hashes the model (not the function) to a
	// home cell, so functions sharing a model instance co-locate and
	// the cell's cache can serve them all — but spills a request to the
	// least-loaded cell when the home cell's recent routed load runs
	// more than SpillFactor ahead of the per-cell average.
	RouteAffinity
	// RouteLeastLoaded sends each request to the cell with the smallest
	// load signal (last interval's routed count plus the current
	// interval's), ties broken by lowest cell index.
	RouteLeastLoaded
)

// String returns the flag-level policy name.
func (p Policy) String() string {
	switch p {
	case RouteHash:
		return "hash"
	case RouteAffinity:
		return "affinity"
	case RouteLeastLoaded:
		return "leastload"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// RouterPolicies lists the policies in presentation order.
var RouterPolicies = []Policy{RouteHash, RouteAffinity, RouteLeastLoaded}

// ParsePolicy resolves a flag-level name ("hash", "affinity",
// "leastload") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range RouterPolicies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("multicell: unknown router policy %q (want hash, affinity or leastload)", s)
}

// RouterConfig seeds a deterministic front-door router.
type RouterConfig struct {
	// Cells is the number of downstream cells (>= 1).
	Cells int
	// Policy selects the routing policy; the zero value is RouteHash.
	Policy Policy
	// Seed perturbs the vnode ring, like an experiment seed: two
	// routers with equal configs route identically.
	Seed int64
	// Replicas is the number of virtual nodes per cell on the hash ring
	// (<= 0: 16).
	Replicas int
	// SnapshotEvery is the load-signal refresh interval (<= 0: 10s).
	// The router sees per-cell load with up to this much lag — a
	// metrics-pipeline front door, not a live queue reader.
	SnapshotEvery time.Duration
	// SpillFactor bounds RouteAffinity's tolerance: the home cell takes
	// the request unless its load signal exceeds SpillFactor × the
	// per-cell average (<= 0: 2.0).
	SpillFactor float64
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash uint64
	cell int
}

// Router deterministically assigns arrivals to cells. It is not safe
// for concurrent use; each cell worker (and the live gateway, under its
// own lock) owns a private instance.
type Router struct {
	cfg  RouterConfig
	ring []ringPoint

	// Load signal: cur counts routes in the open interval, snap holds
	// the previous interval's counts. The signal for a cell is
	// snap[i]+cur[i]; on each interval boundary snap <- cur, cur <- 0.
	snap    []int64
	cur     []int64
	total   []int64 // cumulative per-cell routed counts
	nextCut time.Duration
}

// NewRouter builds a router. The returned router's first snapshot
// boundary is one SnapshotEvery after time zero.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("multicell: router needs >= 1 cell, got %d", cfg.Cells)
	}
	switch cfg.Policy {
	case RouteHash, RouteAffinity, RouteLeastLoaded:
	default:
		return nil, fmt.Errorf("multicell: unknown router policy %d", int(cfg.Policy))
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 16
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10 * time.Second
	}
	if cfg.SpillFactor <= 0 {
		cfg.SpillFactor = 2.0
	}
	r := &Router{
		cfg:     cfg,
		ring:    make([]ringPoint, 0, cfg.Cells*cfg.Replicas),
		snap:    make([]int64, cfg.Cells),
		cur:     make([]int64, cfg.Cells),
		total:   make([]int64, cfg.Cells),
		nextCut: cfg.SnapshotEvery,
	}
	for c := 0; c < cfg.Cells; c++ {
		for v := 0; v < cfg.Replicas; v++ {
			r.ring = append(r.ring, ringPoint{
				hash: hash64(cfg.Seed, fmt.Sprintf("cell/%d/%d", c, v)),
				cell: c,
			})
		}
	}
	// Total order even under (astronomically unlikely) hash collisions.
	sort.Slice(r.ring, func(a, b int) bool {
		if r.ring[a].hash != r.ring[b].hash {
			return r.ring[a].hash < r.ring[b].hash
		}
		return r.ring[a].cell < r.ring[b].cell
	})
	return r, nil
}

// Cells returns the configured cell count.
func (r *Router) Cells() int { return r.cfg.Cells }

// Config returns the router's resolved configuration (defaults filled).
func (r *Router) Config() RouterConfig { return r.cfg }

// Route assigns one arrival to a cell. Arrivals must be fed in
// non-decreasing arrival order (the stream contract).
func (r *Router) Route(req trace.Request) int {
	cell := 0
	if r.cfg.Cells > 1 {
		r.advance(req.Arrival)
		switch r.cfg.Policy {
		case RouteHash:
			cell = r.lookup(req.Function)
		case RouteAffinity:
			cell = r.lookup(req.Model)
			if r.overloaded(cell) {
				cell = r.argmin()
			}
		case RouteLeastLoaded:
			cell = r.argmin()
		}
	}
	r.cur[cell]++
	r.total[cell]++
	return cell
}

// Routed returns the cumulative per-cell routed counts (a copy).
func (r *Router) Routed() []int64 {
	out := make([]int64, len(r.total))
	copy(out, r.total)
	return out
}

// advance rolls the load-signal window forward to cover t.
func (r *Router) advance(t time.Duration) {
	for t >= r.nextCut {
		copy(r.snap, r.cur)
		for i := range r.cur {
			r.cur[i] = 0
		}
		r.nextCut += r.cfg.SnapshotEvery
	}
}

// load is the signal the balancing policies see for one cell.
func (r *Router) load(cell int) int64 { return r.snap[cell] + r.cur[cell] }

// Home reports the key's hash-ring owner without routing a request.
// Unlike Route it mutates no router state (the ring is immutable after
// construction), so it is safe for concurrent use; the live gateway
// uses it to pin each function to an admission cell at deploy time.
func (r *Router) Home(key string) int {
	if r.cfg.Cells == 1 {
		return 0
	}
	return r.lookup(key)
}

// lookup walks the ring: the key's successor vnode owns it.
func (r *Router) lookup(key string) int {
	h := hash64(r.cfg.Seed, key)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].cell
}

// argmin returns the cell with the smallest load signal, lowest index
// winning ties.
func (r *Router) argmin() int {
	best, bestLoad := 0, r.load(0)
	for i := 1; i < r.cfg.Cells; i++ {
		if l := r.load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// overloaded reports whether a home cell should spill: its load signal
// exceeds SpillFactor × the per-cell average (with +1 slack so empty
// and near-empty windows never spill).
func (r *Router) overloaded(cell int) bool {
	var sum int64
	for i := 0; i < r.cfg.Cells; i++ {
		sum += r.load(i)
	}
	avg := float64(sum) / float64(r.cfg.Cells)
	return float64(r.load(cell)) > r.cfg.SpillFactor*avg+1
}

// hash64 is FNV-1a over the key with the seed folded into the offset
// basis, finished with murmur3's 64-bit avalanche mix. Raw FNV barely
// diffuses the high bits on short keys ("cell/3/7", "f042"), which
// would collapse each cell's vnodes into one tight band of the ring;
// the finalizer spreads them uniformly, which is what the consistent
// hash's minimal-disruption property rests on.
func hash64(seed int64, key string) uint64 {
	h := uint64(14695981039346656037) ^ uint64(seed)*0x9E3779B97F4A7C15
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
