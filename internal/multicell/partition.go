package multicell

// Fleet partitioning: cells own disjoint slices of the declared fleet.
// Shares are near-equal with the remainder dealt to the lowest-indexed
// cells, so the split is deterministic and independent of everything
// but (spec, cells).

import (
	"fmt"

	"gpufaas/internal/cluster"
)

// PartitionCounts splits total into cells near-equal non-negative
// shares; the remainder goes to the lowest-indexed cells.
func PartitionCounts(total, cells int) []int {
	out := make([]int, cells)
	if cells <= 0 {
		return out
	}
	base, rem := total/cells, total%cells
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// PartitionFleet splits a declared fleet across cells, class by class.
// Every class stays declared in every cell — even at Count 0 — because
// a declared class is an autoscale target (tiered policies scale
// classes up from zero) and class-agnostic report rows key off the
// declaration, not the boot count. Every cell must still end up with at
// least one device overall.
func PartitionFleet(spec cluster.FleetSpec, cells int) ([]cluster.FleetSpec, error) {
	if cells < 1 {
		return nil, fmt.Errorf("multicell: need >= 1 cell, got %d", cells)
	}
	out := make([]cluster.FleetSpec, cells)
	for _, class := range spec {
		shares := PartitionCounts(class.Count, cells)
		for i, n := range shares {
			cc := class
			cc.Count = n
			out[i] = append(out[i], cc)
		}
	}
	for i, f := range out {
		total := 0
		for _, class := range f {
			total += class.Count
		}
		if total == 0 {
			return nil, fmt.Errorf("multicell: cell %d/%d has no devices (fleet too small to shard)", i, cells)
		}
	}
	return out, nil
}
