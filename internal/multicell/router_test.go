package multicell

import (
	"fmt"
	"testing"
	"time"

	"gpufaas/internal/trace"
)

// req builds a routing probe; arrivals spread 100ms apart so the load
// window advances realistically.
func req(i int, fn, model string) trace.Request {
	return trace.Request{
		ID:       int64(i),
		Function: fn,
		Model:    model,
		Arrival:  time.Duration(i) * 100 * time.Millisecond,
	}
}

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range RouterPolicies {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// TestHashStabilityAcrossCellCounts pins the consistent-hash property:
// growing K cells to K+1 moves keys only onto the new cell — no key
// migrates between surviving cells.
func TestHashStabilityAcrossCellCounts(t *testing.T) {
	const keys = 500
	for _, k := range []int{2, 4, 8} {
		small := newTestRouter(t, RouterConfig{Cells: k, Policy: RouteHash, Seed: 7})
		big := newTestRouter(t, RouterConfig{Cells: k + 1, Policy: RouteHash, Seed: 7})
		moved := 0
		for i := 0; i < keys; i++ {
			r := req(i, fmt.Sprintf("f%03d", i), "m")
			a, b := small.Route(r), big.Route(r)
			if a != b {
				if b != k {
					t.Fatalf("cells %d->%d: key %d moved %d->%d (not to the new cell)", k, k+1, i, a, b)
				}
				moved++
			}
		}
		// The new cell should claim roughly 1/(k+1) of the keyspace;
		// anything between "some" and "half" certifies minimal
		// disruption without overfitting the hash.
		if moved == 0 || moved > keys/2 {
			t.Errorf("cells %d->%d: %d/%d keys moved, want (0, %d]", k, k+1, moved, keys, keys/2)
		}
	}
}

// TestHashPinsFunctions pins that a function's requests always land in
// the same cell, and that two routers with equal configs agree.
func TestHashPinsFunctions(t *testing.T) {
	a := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteHash, Seed: 3})
	b := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteHash, Seed: 3})
	home := make(map[string]int)
	for i := 0; i < 400; i++ {
		fn := fmt.Sprintf("f%02d", i%10)
		r := req(i, fn, "m")
		ca, cb := a.Route(r), b.Route(r)
		if ca != cb {
			t.Fatalf("equal-config routers disagree at %d: %d vs %d", i, ca, cb)
		}
		if prev, ok := home[fn]; ok && prev != ca {
			t.Fatalf("function %s moved cells %d->%d", fn, prev, ca)
		}
		home[fn] = ca
	}
	if len(home) != 10 {
		t.Fatalf("expected 10 pinned functions, got %d", len(home))
	}
}

// TestLeastLoadedTieBreakDeterminism pins the tie rule (lowest cell
// index) and that routing is a pure function of the stream prefix.
func TestLeastLoadedTieBreakDeterminism(t *testing.T) {
	a := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteLeastLoaded, Seed: 1})
	// From an all-zero signal the first K routes must walk cells
	// 0,1,2,3 in order: each tie breaks to the lowest index.
	for i := 0; i < 4; i++ {
		if got := a.Route(req(i, "f", "m")); got != i {
			t.Fatalf("route %d = cell %d, want %d (lowest-index tie-break)", i, got, i)
		}
	}
	// Replaying the identical stream through a fresh router reproduces
	// the full decision sequence.
	b := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteLeastLoaded, Seed: 1})
	c := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteLeastLoaded, Seed: 1})
	for i := 0; i < 1000; i++ {
		r := req(i, fmt.Sprintf("f%02d", i%17), "m")
		if cb, cc := b.Route(r), c.Route(r); cb != cc {
			t.Fatalf("replay diverged at %d: %d vs %d", i, cb, cc)
		}
	}
}

// TestLeastLoadedBalances pins that a uniform stream spreads evenly.
func TestLeastLoadedBalances(t *testing.T) {
	r := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteLeastLoaded, Seed: 1})
	for i := 0; i < 1000; i++ {
		r.Route(req(i, fmt.Sprintf("f%02d", i%13), "m"))
	}
	counts := r.Routed()
	var min, max int64 = counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("least-loaded imbalance %d (counts %v), want <= 1", max-min, counts)
	}
}

// TestAffinityHomesAndSpills pins both halves of the affinity policy:
// under balanced load a model stays home; under a single-model hotspot
// the overload check spills the excess to other cells.
func TestAffinityHomesAndSpills(t *testing.T) {
	// SpillFactor high enough that the hash's natural unevenness never
	// trips the overload check: pure homing behavior.
	balanced := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteAffinity, Seed: 5, SpillFactor: 100})
	home := make(map[string]int)
	for i := 0; i < 400; i++ {
		m := fmt.Sprintf("m%02d", i%16)
		cell := balanced.Route(req(i, "f", m))
		if prev, ok := home[m]; ok && prev != cell {
			t.Fatalf("balanced load: model %s moved cells %d->%d", m, prev, cell)
		}
		home[m] = cell
	}

	hot := newTestRouter(t, RouterConfig{Cells: 4, Policy: RouteAffinity, Seed: 5})
	cellsHit := make(map[int]bool)
	for i := 0; i < 400; i++ {
		cellsHit[hot.Route(req(i, "f", "hot-model"))] = true
	}
	if len(cellsHit) < 2 {
		t.Errorf("single-model hotspot never spilled: cells hit %v", cellsHit)
	}
}

func TestRouterSeedChangesRing(t *testing.T) {
	a := newTestRouter(t, RouterConfig{Cells: 8, Policy: RouteHash, Seed: 1})
	b := newTestRouter(t, RouterConfig{Cells: 8, Policy: RouteHash, Seed: 2})
	same := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		r := req(i, fmt.Sprintf("f%03d", i), "m")
		if a.Route(r) == b.Route(r) {
			same++
		}
	}
	if same == keys {
		t.Error("distinct seeds produced identical rings")
	}
}
