package multicell

// Deterministic report merging. Counters and cost sum; percentiles are
// exact, computed over the concatenated per-cell latency samples (the
// per-request observations, not a quantile-of-quantiles approximation);
// utilization fractions are re-derived from summed phase durations, so
// each cell is weighted by the GPU-time it contributed. The per-cell
// min/max spread exposes router imbalance the fleet-level means hide.

import (
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/obs"
	"gpufaas/internal/stats"
)

// Spread brackets a per-cell metric across the fleet (min/max over
// cells) to expose imbalance.
type Spread struct {
	MinRequests, MaxRequests           int64
	MinP95LatencySec, MaxP95LatencySec float64
	MinMissRatio, MaxMissRatio         float64
	MinSMUtilization, MaxSMUtilization float64
}

// MergedReport is the fleet-level roll-up of K per-cell Reports.
type MergedReport struct {
	Cells  int
	Router string
	// Policy is the cells' scheduler policy (uniform across cells).
	Policy string

	Requests int64
	Failed   int64
	// Makespan is the slowest cell's makespan (cells run in parallel).
	Makespan time.Duration

	// Latency summary over the concatenated per-cell samples (exact).
	AvgLatencySec       float64
	LatencyVarianceSec2 float64
	P50LatencySec       float64
	P95LatencySec       float64
	P99LatencySec       float64
	MaxLatencySec       float64

	// Cache metrics re-derived from summed numerators/denominators.
	MissRatio      float64
	FalseMissRatio float64
	Misses         int64
	FalseMisses    int64

	// Utilization fractions from summed phase durations (GPU-time
	// weighted across cells).
	SMUtilization float64
	LoadFraction  float64
	BusyFraction  float64

	// TopModelDuplicates sums across cells: each cell caches its own
	// replicas of the tracked model, and fleet-wide duplication is what
	// Fig. 6 measures.
	TopModelDuplicates float64

	LocalQueueMoves int64
	O3Dispatches    int64
	Starved         int64

	GPUSeconds float64
	ScaleUps   int64
	ScaleDowns int64
	// PeakGPUs sums per-cell peaks: cells peak independently, so the
	// sum is the fleet's provisioned-capacity bound.
	PeakGPUs  int
	FinalGPUs int

	Cost       float64              `json:",omitempty"`
	ClassUsage []cluster.ClassUsage `json:",omitempty"`

	// MaxEventQueueLen / PeakLocalQueue are maxima across cells: the
	// capacity planning question is "how big does any one cell's queue
	// get", not a fleet sum.
	MaxEventQueueLen int
	PeakLocalQueue   int

	// Streaming sums the per-cell streaming counters; nil when the
	// cells replayed materialized.
	Streaming *cluster.StreamStats `json:",omitempty"`

	// Breakdown is the fleet-wide latency decomposition, recomputed
	// exactly over the concatenated per-cell component samples (like the
	// latency percentiles above); nil when the cells ran without it.
	Breakdown *obs.Breakdown `json:",omitempty"`
	// Series merges the per-cell time-series by interval index (gauges
	// and deltas summed, per-cell loads retained); nil when off.
	Series *obs.MergedSeries `json:",omitempty"`
	// SampledSpans counts lifecycle spans across cells; zero when
	// tracing is off.
	SampledSpans int64 `json:",omitempty"`

	// Fault-injection accounting summed across cells (each cell owns a
	// private injector over its own ordinals); zero/nil — and omitted —
	// on fault-free runs, like the cluster Report fields they mirror.
	Failures       int64            `json:",omitempty"`
	Interrupted    int64            `json:",omitempty"`
	Retries        int64            `json:",omitempty"`
	FailedByReason map[string]int64 `json:",omitempty"`

	// CellSpread is the per-cell min/max imbalance bracket.
	CellSpread Spread
}

// Merge rolls K per-cell outcomes into the fleet-level report. The
// outcomes must be in cell order; the merge is deterministic (fixed
// iteration and float summation order).
func Merge(cells []CellOutcome, router Policy) MergedReport {
	m := MergedReport{Cells: len(cells), Router: router.String()}
	if len(cells) == 0 {
		return m
	}
	m.Policy = cells[0].Report.Policy

	n := 0
	for _, c := range cells {
		n += len(c.Stats.Latencies)
	}
	sample := stats.NewSample(n)
	var idleT, loadT, inferT time.Duration
	var cacheReqs int64
	rawBreakdowns := make([]*obs.RawBreakdown, len(cells))
	cellSeries := make([]*obs.Series, len(cells))
	classIdx := make(map[string]int)
	for i, c := range cells {
		r := c.Report
		m.Requests += r.Requests
		m.Failed += r.Failed
		if r.Makespan > m.Makespan {
			m.Makespan = r.Makespan
		}
		m.Misses += r.Misses
		m.FalseMisses += r.FalseMisses
		m.TopModelDuplicates += r.TopModelDuplicates
		m.LocalQueueMoves += r.LocalQueueMoves
		m.O3Dispatches += r.O3Dispatches
		m.Starved += r.Starved
		m.GPUSeconds += r.GPUSeconds
		m.ScaleUps += r.ScaleUps
		m.ScaleDowns += r.ScaleDowns
		m.Failures += r.Failures
		m.Interrupted += r.Interrupted
		m.Retries += r.Retries
		for reason, n := range r.FailedByReason {
			if m.FailedByReason == nil {
				m.FailedByReason = make(map[string]int64)
			}
			m.FailedByReason[reason] += n
		}
		m.PeakGPUs += r.PeakGPUs
		m.FinalGPUs += r.FinalGPUs
		m.Cost += r.Cost
		if r.MaxEventQueueLen > m.MaxEventQueueLen {
			m.MaxEventQueueLen = r.MaxEventQueueLen
		}
		if r.PeakLocalQueue > m.PeakLocalQueue {
			m.PeakLocalQueue = r.PeakLocalQueue
		}
		for _, cu := range r.ClassUsage {
			j, ok := classIdx[cu.Class]
			if !ok {
				j = len(m.ClassUsage)
				classIdx[cu.Class] = j
				m.ClassUsage = append(m.ClassUsage, cluster.ClassUsage{Class: cu.Class})
			}
			m.ClassUsage[j].GPUSeconds += cu.GPUSeconds
			m.ClassUsage[j].Cost += cu.Cost
			m.ClassUsage[j].PeakGPUs += cu.PeakGPUs
			m.ClassUsage[j].FinalGPUs += cu.FinalGPUs
		}
		if st := r.Streaming; st != nil {
			if m.Streaming == nil {
				m.Streaming = &cluster.StreamStats{}
			}
			m.Streaming.Requests += st.Requests
			m.Streaming.Batches += st.Batches
			m.Streaming.PeakInflight += st.PeakInflight
			m.Streaming.ArenaAllocated += st.ArenaAllocated
			m.Streaming.ArenaReused += st.ArenaReused
		}

		for _, x := range c.Stats.Latencies {
			sample.Add(x)
		}
		idleT += c.Stats.Idle
		loadT += c.Stats.Loading
		inferT += c.Stats.Inferring
		cacheReqs += c.Stats.CacheRequests
		rawBreakdowns[i] = c.Stats.Breakdown
		cellSeries[i] = c.Stats.Series
		m.SampledSpans += int64(len(c.Spans))

		if i == 0 || r.Requests < m.CellSpread.MinRequests {
			m.CellSpread.MinRequests = r.Requests
		}
		if i == 0 || r.Requests > m.CellSpread.MaxRequests {
			m.CellSpread.MaxRequests = r.Requests
		}
		if i == 0 || r.P95LatencySec < m.CellSpread.MinP95LatencySec {
			m.CellSpread.MinP95LatencySec = r.P95LatencySec
		}
		if i == 0 || r.P95LatencySec > m.CellSpread.MaxP95LatencySec {
			m.CellSpread.MaxP95LatencySec = r.P95LatencySec
		}
		if i == 0 || r.MissRatio < m.CellSpread.MinMissRatio {
			m.CellSpread.MinMissRatio = r.MissRatio
		}
		if i == 0 || r.MissRatio > m.CellSpread.MaxMissRatio {
			m.CellSpread.MaxMissRatio = r.MissRatio
		}
		if i == 0 || r.SMUtilization < m.CellSpread.MinSMUtilization {
			m.CellSpread.MinSMUtilization = r.SMUtilization
		}
		if i == 0 || r.SMUtilization > m.CellSpread.MaxSMUtilization {
			m.CellSpread.MaxSMUtilization = r.SMUtilization
		}
	}

	m.AvgLatencySec = sample.Mean()
	m.LatencyVarianceSec2 = sample.Variance()
	m.P50LatencySec = sample.Percentile(50)
	m.P95LatencySec = sample.Percentile(95)
	m.P99LatencySec = sample.Percentile(99)
	m.MaxLatencySec = sample.Max()

	if cacheReqs > 0 {
		m.MissRatio = float64(m.Misses) / float64(cacheReqs)
	}
	if m.Misses > 0 {
		m.FalseMissRatio = float64(m.FalseMisses) / float64(m.Misses)
	}
	if total := float64(idleT + loadT + inferT); total > 0 {
		m.SMUtilization = float64(inferT) / total
		m.LoadFraction = float64(loadT) / total
		m.BusyFraction = float64(loadT+inferT) / total
	}
	m.Breakdown = obs.MergeRaw(rawBreakdowns).Breakdown()
	m.Series = obs.MergeSeries(cellSeries)
	return m
}
