// Package gpumgr implements the paper's GPU Manager (§III-C): the per-node
// component that owns the GPU processes, executes inference requests on
// behalf of functions, and coordinates with the global Cache Manager.
//
// For each dispatched request the manager determines hit/miss with the
// Cache Manager; on a miss it kills victim processes (evicting their
// models), starts a fresh GPU process, and uploads the model (the Loading
// phase); it then runs the inference and reports the completion with
// measured latency. One request executes at a time per GPU, and the model
// serving an in-flight request is pinned against eviction.
//
// The manager also implements the §VI multi-tenancy isolation hooks:
// per-tenant limits on concurrent GPU processes and cumulative GPU time.
package gpumgr

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"time"

	"gpufaas/internal/cache"
	"gpufaas/internal/core"
	"gpufaas/internal/gpu"
	"gpufaas/internal/models"
	"gpufaas/internal/sim"
)

// Errors reported by the manager.
var (
	ErrUnknownDevice = errors.New("gpumgr: unknown device")
	ErrUnknownModel  = errors.New("gpumgr: unknown model")
	ErrNoProfile     = errors.New("gpumgr: no profile for model on GPU type")
	ErrQuota         = errors.New("gpumgr: tenant quota exceeded")
)

// Process is one GPU process serving a loaded model ("each GPU process
// uploads an inference model when initiating").
type Process struct {
	PID     int64
	GPU     string
	Model   string
	Tenant  string
	Started sim.Time
}

// Result records one completed request for the Datastore and the metric
// collectors.
type Result struct {
	ReqID    int64
	Function string
	Model    string
	GPU      string
	Tenant   string
	Hit      bool
	// FalseMiss marks a miss on a model that was resident elsewhere in
	// the fleet at dispatch time — the load the paper's locality-aware
	// placement exists to avoid.
	FalseMiss    bool
	Arrival      sim.Time
	DispatchedAt sim.Time
	FinishedAt   sim.Time
	LoadTime     time.Duration
	InferTime    time.Duration
	// BatchMembers is the number of requests coalesced into the launch
	// that produced this result; 0 marks the legacy single-dispatch
	// path (Execute), whose results are bit-identical to builds without
	// batching. Every member of one batched launch reports the same
	// FinishedAt, LoadTime and InferTime — the launch's wall times — so
	// the queue+load+infer latency decomposition stays additive.
	BatchMembers int
	// InferShare is this request's attributed slice of the batched
	// inference time: the launch overhead plus its own inputs for the
	// primary, the marginal per-input cost for coalesced members.
	// Shares sum exactly to InferTime across the batch. Zero on the
	// single-dispatch path (callers treat that as InferTime).
	InferShare time.Duration
}

// Latency is the end-to-end function latency: completion minus arrival
// (queueing + loading + inference), the quantity of Fig. 4a.
func (r Result) Latency() time.Duration { return time.Duration(r.FinishedAt - r.Arrival) }

// ServiceTime is load + inference, excluding queueing.
func (r Result) ServiceTime() time.Duration { return r.LoadTime + r.InferTime }

// Quota bounds one tenant's GPU consumption (§VI "Multi-tenancy and
// Security"). Zero-valued fields mean unlimited.
type Quota struct {
	// MaxProcesses caps concurrently live GPU processes.
	MaxProcesses int
	// MaxGPUTime caps cumulative load+inference time consumed.
	MaxGPUTime time.Duration
	// MaxMemoryBytes caps summed occupancy of the tenant's resident
	// models.
	MaxMemoryBytes int64
}

type tenantUsage struct {
	processes int
	gpuTime   time.Duration
	memory    int64
}

// StatusSink receives GPU status and completion reports; the live FaaS
// layer wires this to the Datastore ("GPU Manager reports to the Datastore
// that the GPU status is busy", §III-C). A nil sink disables reporting.
type StatusSink interface {
	GPUStatus(gpuID string, busy bool, at sim.Time)
	Completion(res Result)
}

// GPURemovalSink is an optional StatusSink extension: sinks that keep
// per-GPU derived state (the Datastore's gpu/<id>/status keys) implement
// it to drop that state when a GPU leaves the fleet — otherwise a
// decommissioned GPU's final busy=false report would linger as a
// phantom "idle" entry forever.
type GPURemovalSink interface {
	GPURemoved(gpuID string, at sim.Time)
}

// Manager manages the GPUs of one node. Not safe for concurrent use; the
// cluster serializes access (event loop in sim mode, mutex in live mode).
type Manager struct {
	node     string
	clock    sim.Clock
	devices  map[string]*gpu.Device
	order    []string
	cacheMgr *cache.Manager
	zoo      *models.Zoo
	profiles *models.ProfileStore
	sink     StatusSink

	nextPID   int64
	processes map[string]map[string]*Process // gpuID -> model -> process
	// devOrd caches each device's dense registration ordinal (assigned
	// by the Cache Manager at registration), so the per-dispatch
	// hit/miss resolution is an ord-indexed lookup instead of hashing
	// the GPU ID.
	devOrd map[string]cache.Ord

	// inflights tracks the live launch per busy GPU — the member
	// requests and pending clock callbacks — so a device failure can
	// interrupt the launch and hand the members back for retry. Records
	// are pooled (flFree) to keep the steady dispatch path
	// allocation-free.
	inflights map[string]*inflightLaunch
	flFree    []*inflightLaunch

	// slowdown holds the transient straggler factor per GPU (> 1 means
	// slower); applied to load and inference times at dispatch.
	slowdown map[string]float64

	quotas map[string]Quota
	usage  map[string]*tenantUsage

	onComplete func(res Result)
}

// inflightLaunch records one live launch: member requests primary
// first, the dispatch instant for exactly-once GPU-time attribution,
// and the cancel handles for the load-done and completion callbacks.
type inflightLaunch struct {
	members      []*core.Request
	tenant       string
	dispatchedAt sim.Time
	cancelLoad   func()
	cancelDone   func()
}

// Config assembles a Manager.
type Config struct {
	Node     string
	Clock    sim.Clock
	Cache    *cache.Manager
	Zoo      *models.Zoo
	Profiles *models.ProfileStore
	// Sink receives status reports; may be nil.
	Sink StatusSink
	// OnComplete is invoked after each request finishes (the cluster
	// uses it to record metrics and re-run the scheduler). May be nil.
	OnComplete func(res Result)
}

// New creates a Manager with no devices.
func New(cfg Config) (*Manager, error) {
	if cfg.Clock == nil {
		return nil, errors.New("gpumgr: nil clock")
	}
	if cfg.Cache == nil {
		return nil, errors.New("gpumgr: nil cache manager")
	}
	if cfg.Zoo == nil {
		return nil, errors.New("gpumgr: nil model zoo")
	}
	if cfg.Profiles == nil {
		return nil, errors.New("gpumgr: nil profile store")
	}
	return &Manager{
		node:       cfg.Node,
		clock:      cfg.Clock,
		devices:    make(map[string]*gpu.Device),
		cacheMgr:   cfg.Cache,
		zoo:        cfg.Zoo,
		profiles:   cfg.Profiles,
		sink:       cfg.Sink,
		processes:  make(map[string]map[string]*Process),
		devOrd:     make(map[string]cache.Ord),
		inflights:  make(map[string]*inflightLaunch),
		slowdown:   make(map[string]float64),
		quotas:     make(map[string]Quota),
		usage:      make(map[string]*tenantUsage),
		onComplete: cfg.OnComplete,
	}, nil
}

// Node returns the node name.
func (m *Manager) Node() string { return m.node }

// AddDevice registers a GPU with the manager and the Cache Manager.
func (m *Manager) AddDevice(d *gpu.Device) error {
	if _, dup := m.devices[d.ID()]; dup {
		return fmt.Errorf("gpumgr: device %s already added", d.ID())
	}
	if err := m.cacheMgr.RegisterGPU(d.ID()); err != nil {
		return err
	}
	o, ok := m.cacheMgr.Ord(d.ID())
	if !ok {
		// Unreachable after a successful RegisterGPU; fail loudly rather
		// than letting a zero-valued ordinal alias device 0's residency.
		return fmt.Errorf("gpumgr: no ordinal assigned for %s", d.ID())
	}
	m.devOrd[d.ID()] = o
	m.devices[d.ID()] = d
	m.order = append(m.order, d.ID())
	m.processes[d.ID()] = make(map[string]*Process)
	return nil
}

// RemoveDevice decommissions a GPU: it kills every process on the device
// (evicting the resident models through the Cache Manager, so the global
// index and all event subscribers observe the departures), then drops the
// device from the manager and deregisters it from the Cache Manager. The
// device must be idle — the cluster drains in-flight work first.
func (m *Manager) RemoveDevice(gpuID string, now sim.Time) error {
	dev, ok := m.devices[gpuID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDevice, gpuID)
	}
	if dev.Busy() {
		return fmt.Errorf("gpumgr: device %s busy, drain before removal", gpuID)
	}
	for _, model := range dev.ResidentModels() {
		if err := m.killProcess(gpuID, model, now); err != nil {
			return err
		}
	}
	if err := m.cacheMgr.UnregisterGPU(gpuID); err != nil {
		return err
	}
	delete(m.devices, gpuID)
	delete(m.processes, gpuID)
	delete(m.devOrd, gpuID)
	delete(m.slowdown, gpuID)
	if i := slices.Index(m.order, gpuID); i >= 0 {
		m.order = slices.Delete(m.order, i, i+1)
	}
	return nil
}

// Device returns the device by ID.
func (m *Manager) Device(id string) (*gpu.Device, bool) {
	d, ok := m.devices[id]
	return d, ok
}

// DeviceIDs returns the managed GPU IDs in registration order.
func (m *Manager) DeviceIDs() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// SetQuota installs (or replaces) a tenant's quota.
func (m *Manager) SetQuota(tenant string, q Quota) { m.quotas[tenant] = q }

// Processes returns the live processes on a GPU, sorted by model for
// determinism.
func (m *Manager) Processes(gpuID string) []Process {
	byModel := m.processes[gpuID]
	out := make([]Process, 0, len(byModel))
	for _, p := range byModel {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

func (m *Manager) tenantUsageFor(tenant string) *tenantUsage {
	u, ok := m.usage[tenant]
	if !ok {
		u = &tenantUsage{}
		m.usage[tenant] = u
	}
	return u
}

// SetSlowdown installs (factor > 1) or clears (factor <= 1) a transient
// straggler multiplier on a GPU: thermal throttle, noisy neighbor, link
// degradation. Future launches on the device run factor× slower (load
// and inference both); the launch already in flight keeps its original
// times — a window affects dispatches, not running kernels.
func (m *Manager) SetSlowdown(gpuID string, factor float64) {
	if factor <= 1 {
		delete(m.slowdown, gpuID)
		return
	}
	m.slowdown[gpuID] = factor
}

// Slowdown returns the active straggler factor for a GPU (1 when none).
func (m *Manager) Slowdown(gpuID string) float64 {
	if f, ok := m.slowdown[gpuID]; ok {
		return f
	}
	return 1
}

// scaleTime applies the device's straggler factor to a service time.
func (m *Manager) scaleTime(gpuID string, d time.Duration) time.Duration {
	if f, ok := m.slowdown[gpuID]; ok {
		return time.Duration(float64(d) * f)
	}
	return d
}

// trackLaunch records the launch the device just began, reusing a
// pooled record so steady-state dispatch stays allocation-free.
func (m *Manager) trackLaunch(gpuID string, primary *core.Request, extras []*core.Request, cancelLoad, cancelDone func(), now sim.Time) {
	var fl *inflightLaunch
	if n := len(m.flFree); n > 0 {
		fl = m.flFree[n-1]
		m.flFree = m.flFree[:n-1]
	} else {
		fl = &inflightLaunch{}
	}
	fl.members = append(fl.members[:0], primary)
	fl.members = append(fl.members, extras...)
	fl.tenant = primary.Tenant
	fl.dispatchedAt = now
	fl.cancelLoad = cancelLoad
	fl.cancelDone = cancelDone
	m.inflights[gpuID] = fl
}

// releaseLaunch drops the launch record after completion or interrupt.
func (m *Manager) releaseLaunch(gpuID string) {
	fl := m.inflights[gpuID]
	if fl == nil {
		return
	}
	delete(m.inflights, gpuID)
	for i := range fl.members {
		fl.members[i] = nil
	}
	fl.members = fl.members[:0]
	fl.cancelLoad = nil
	fl.cancelDone = nil
	m.flFree = append(m.flFree, fl)
}

// Interrupt aborts the in-flight launch on a failed GPU. Both pending
// clock callbacks are cancelled, the device abandons the launch (its
// partial phase time still accrues to utilization — the GPU really
// burned those seconds), the model is unpinned, and the primary tenant
// is charged the GPU time actually consumed (dispatch to failure), so
// GPU-seconds are charged exactly once per attempt. The member requests
// are returned primary-first for the caller's retry policy, along with
// the launch's dispatch time (for wasted-work accounting); nil members
// when the device was idle. No status report is emitted — the caller
// removes the device outright and GPURemovalSink handles datastore
// cleanup.
func (m *Manager) Interrupt(gpuID string, now sim.Time) ([]*core.Request, sim.Time, error) {
	dev, ok := m.devices[gpuID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownDevice, gpuID)
	}
	fl := m.inflights[gpuID]
	if fl == nil {
		return nil, 0, nil
	}
	if fl.cancelLoad != nil {
		fl.cancelLoad()
	}
	if fl.cancelDone != nil {
		fl.cancelDone()
	}
	if _, err := dev.Interrupt(now); err != nil {
		return nil, 0, err
	}
	m.cacheMgr.Pin(gpuID, "")
	u := m.tenantUsageFor(fl.tenant)
	u.gpuTime += time.Duration(now - fl.dispatchedAt)
	members := make([]*core.Request, len(fl.members))
	copy(members, fl.members)
	startedAt := fl.dispatchedAt
	m.releaseLaunch(gpuID)
	return members, startedAt, nil
}

// checkQuota verifies the tenant can start a request that will consume the
// given GPU time and (on a miss) memory.
func (m *Manager) checkQuota(tenant string, gpuTime time.Duration, newProcess bool, memBytes int64) error {
	q, ok := m.quotas[tenant]
	if !ok {
		return nil
	}
	u := m.tenantUsageFor(tenant)
	if newProcess && q.MaxProcesses > 0 && u.processes+1 > q.MaxProcesses {
		return fmt.Errorf("%w: tenant %q at %d/%d processes", ErrQuota, tenant, u.processes, q.MaxProcesses)
	}
	if q.MaxGPUTime > 0 && u.gpuTime+gpuTime > q.MaxGPUTime {
		return fmt.Errorf("%w: tenant %q GPU time %v + %v > %v", ErrQuota, tenant, u.gpuTime, gpuTime, q.MaxGPUTime)
	}
	if newProcess && q.MaxMemoryBytes > 0 && u.memory+memBytes > q.MaxMemoryBytes {
		return fmt.Errorf("%w: tenant %q memory %d + %d > %d", ErrQuota, tenant, u.memory, memBytes, q.MaxMemoryBytes)
	}
	return nil
}

// Execute runs a scheduler dispatch on one of this node's GPUs. It
// resolves hit/miss against the Cache Manager, performs evictions (killing
// victim processes), starts the GPU process on a miss, begins execution on
// the device, and schedules the load-done and completion callbacks on the
// clock. The returned hit flag is the actual outcome (it can differ from
// the scheduler's expectation if the model was evicted after the decision,
// which the harness tolerates).
func (m *Manager) Execute(req *core.Request, gpuID string, now sim.Time) (hit bool, err error) {
	dev, ok := m.devices[gpuID]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownDevice, gpuID)
	}
	mdl, ok := m.zoo.Get(req.Model)
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownModel, req.Model)
	}
	prof, ok := m.profiles.Get(dev.Type(), mdl.Name)
	if !ok {
		return false, fmt.Errorf("%w: %s on %s", ErrNoProfile, mdl.Name, dev.Type())
	}

	hit = m.cacheMgr.CachedOrd(m.devOrd[gpuID], mdl.Name)
	inferTime := m.scaleTime(gpuID, prof.InferTime(req.BatchSize))
	loadTime := time.Duration(0)
	if !hit {
		loadTime = m.scaleTime(gpuID, prof.LoadTime)
	}
	newProcess := !hit
	if err := m.checkQuota(req.Tenant, loadTime+inferTime, newProcess, mdl.OccupancyBytes()); err != nil {
		return hit, err
	}

	falseMiss := false
	if hit {
		if err := m.cacheMgr.OnHit(gpuID, mdl.Name, now); err != nil {
			return true, err
		}
	} else {
		// Resolve false-miss attribution before OnMiss inserts the model
		// here (mirroring the Cache Manager's own aggregate counter).
		falseMiss = m.cacheMgr.CachedAnywhere(mdl.Name)
		victims, err := m.cacheMgr.Victims(dev, mdl.OccupancyBytes())
		if err != nil {
			return false, err
		}
		for _, v := range victims {
			if err := m.killProcess(gpuID, v, now); err != nil {
				return false, err
			}
		}
		if err := dev.Admit(mdl.Name, mdl.OccupancyBytes(), now); err != nil {
			return false, err
		}
		if err := m.cacheMgr.OnMiss(gpuID, mdl.Name, now); err != nil {
			return false, err
		}
		m.startProcess(gpuID, mdl.Name, req.Tenant, now)
	}

	finishAt, err := dev.Begin(req.ID, mdl.Name, loadTime, inferTime, now)
	if err != nil {
		return hit, err
	}
	m.cacheMgr.Pin(gpuID, mdl.Name)
	if m.sink != nil {
		m.sink.GPUStatus(gpuID, true, now)
	}

	res := Result{
		ReqID:        req.ID,
		Function:     req.Function,
		Model:        mdl.Name,
		GPU:          gpuID,
		Tenant:       req.Tenant,
		Hit:          hit,
		FalseMiss:    falseMiss,
		Arrival:      req.Arrival,
		DispatchedAt: now,
		FinishedAt:   finishAt,
		LoadTime:     loadTime,
		InferTime:    inferTime,
	}
	var cancelLoad func()
	if loadTime > 0 {
		cancelLoad = m.clock.AfterFunc(loadTime, "gpumgr.loadDone "+gpuID, func(at sim.Time) {
			// Ignore error: in live mode a completion race can make
			// this a no-op.
			_ = dev.LoadDone(at)
		})
	}
	cancelDone := m.clock.AfterFunc(time.Duration(finishAt-now), "gpumgr.complete "+gpuID, func(at sim.Time) {
		m.complete(dev, res, at)
	})
	m.trackLaunch(gpuID, req, nil, cancelLoad, cancelDone, now)
	return hit, nil
}

// ExecuteBatch runs a coalesced scheduler dispatch — the primary request
// plus the same-model extras the scheduler drained behind it — as ONE
// launch on the GPU: one hit/miss resolution, one model load on a miss,
// one batched inference sized by the members' summed inputs, one
// completion that finishes every member at the same instant.
//
// Cache-metric semantics: a batched launch counts as one cache access
// (one OnHit or OnMiss), because it is one model activation — hit/miss
// ratios count launches, not member requests.
//
// Tenant accounting is exact: each extra is charged the marginal
// per-input cost its membership adds (InferFit slope times its inputs),
// the primary is charged the remainder (launch overhead + its own
// inputs) plus the load. Quota checks use the same decomposition:
// an extra whose tenant is out of quota is excluded from the launch and
// returned in dropped — the caller fails it like a dispatch error; a
// primary quota failure fails the whole call before any state changes.
//
// With no extras the call is exactly Execute.
func (m *Manager) ExecuteBatch(req *core.Request, extras []*core.Request, gpuID string, now sim.Time) (hit bool, dropped []*core.Request, err error) {
	if len(extras) == 0 {
		hit, err = m.Execute(req, gpuID, now)
		return hit, nil, err
	}
	dev, ok := m.devices[gpuID]
	if !ok {
		return false, nil, fmt.Errorf("%w: %s", ErrUnknownDevice, gpuID)
	}
	mdl, ok := m.zoo.Get(req.Model)
	if !ok {
		return false, nil, fmt.Errorf("%w: %s", ErrUnknownModel, req.Model)
	}
	prof, ok := m.profiles.Get(dev.Type(), mdl.Name)
	if !ok {
		return false, nil, fmt.Errorf("%w: %s on %s", ErrNoProfile, mdl.Name, dev.Type())
	}
	for _, r := range extras {
		if r.Model != req.Model {
			return false, nil, fmt.Errorf("gpumgr: batch mixes models %s and %s", req.Model, r.Model)
		}
	}

	hit = m.cacheMgr.CachedOrd(m.devOrd[gpuID], mdl.Name)
	loadTime := time.Duration(0)
	if !hit {
		loadTime = m.scaleTime(gpuID, prof.LoadTime)
	}
	newProcess := !hit

	// Primary pays the single-request cost (launch overhead + own
	// inputs) plus the load; each extra pays only the marginal slope
	// cost of its inputs. The shares sum exactly to the batched
	// inference time, so quota charges equal GPU time consumed. A
	// straggler factor scales the whole launch, marginal costs
	// included, so the decomposition keeps summing exactly.
	primaryInfer := m.scaleTime(gpuID, prof.InferTime(req.BatchSize))
	if err := m.checkQuota(req.Tenant, loadTime+primaryInfer, newProcess, mdl.OccupancyBytes()); err != nil {
		return hit, nil, err
	}
	marginal := func(batch int) time.Duration {
		if batch <= 0 {
			batch = 1
		}
		return m.scaleTime(gpuID, time.Duration(prof.InferFit.Beta*float64(batch)*float64(time.Second)))
	}
	members := make([]*core.Request, 0, 1+len(extras))
	members = append(members, req)
	var shares []time.Duration
	shares = append(shares, 0) // primary's share is the remainder, below
	for _, r := range extras {
		cost := marginal(r.BatchSize)
		if err := m.checkQuota(r.Tenant, cost, false, 0); err != nil {
			dropped = append(dropped, r)
			continue
		}
		members = append(members, r)
		shares = append(shares, cost)
	}

	totalInputs := 0
	for _, r := range members {
		b := r.BatchSize
		if b <= 0 {
			b = 1
		}
		totalInputs += b
	}
	inferTime := m.scaleTime(gpuID, prof.InferTime(totalInputs))
	shares[0] = inferTime
	for _, s := range shares[1:] {
		shares[0] -= s
	}

	falseMiss := false
	if hit {
		if err := m.cacheMgr.OnHit(gpuID, mdl.Name, now); err != nil {
			return true, dropped, err
		}
	} else {
		falseMiss = m.cacheMgr.CachedAnywhere(mdl.Name)
		victims, err := m.cacheMgr.Victims(dev, mdl.OccupancyBytes())
		if err != nil {
			return false, dropped, err
		}
		for _, v := range victims {
			if err := m.killProcess(gpuID, v, now); err != nil {
				return false, dropped, err
			}
		}
		if err := dev.Admit(mdl.Name, mdl.OccupancyBytes(), now); err != nil {
			return false, dropped, err
		}
		if err := m.cacheMgr.OnMiss(gpuID, mdl.Name, now); err != nil {
			return false, dropped, err
		}
		m.startProcess(gpuID, mdl.Name, req.Tenant, now)
	}

	finishAt, err := dev.Begin(req.ID, mdl.Name, loadTime, inferTime, now)
	if err != nil {
		return hit, dropped, err
	}
	m.cacheMgr.Pin(gpuID, mdl.Name)
	if m.sink != nil {
		m.sink.GPUStatus(gpuID, true, now)
	}

	results := make([]Result, len(members))
	for i, r := range members {
		results[i] = Result{
			ReqID:        r.ID,
			Function:     r.Function,
			Model:        mdl.Name,
			GPU:          gpuID,
			Tenant:       r.Tenant,
			Hit:          hit,
			FalseMiss:    falseMiss,
			Arrival:      r.Arrival,
			DispatchedAt: now,
			FinishedAt:   finishAt,
			LoadTime:     loadTime,
			InferTime:    inferTime,
			BatchMembers: len(members),
			InferShare:   shares[i],
		}
	}
	var cancelLoad func()
	if loadTime > 0 {
		cancelLoad = m.clock.AfterFunc(loadTime, "gpumgr.loadDone "+gpuID, func(at sim.Time) {
			_ = dev.LoadDone(at)
		})
	}
	cancelDone := m.clock.AfterFunc(time.Duration(finishAt-now), "gpumgr.complete "+gpuID, func(at sim.Time) {
		m.completeBatch(dev, results, at)
	})
	m.trackLaunch(gpuID, req, members[1:], cancelLoad, cancelDone, now)
	return hit, dropped, nil
}

// completeBatch retires a batched launch: one device completion, exact
// per-member tenant charges (load to the primary), then the member
// completions in arrival order.
func (m *Manager) completeBatch(dev *gpu.Device, results []Result, now sim.Time) {
	if _, err := dev.Complete(now); err != nil {
		panic(fmt.Sprintf("gpumgr: complete on %s: %v", dev.ID(), err))
	}
	m.releaseLaunch(dev.ID())
	m.cacheMgr.Pin(dev.ID(), "")
	for i := range results {
		res := &results[i]
		u := m.tenantUsageFor(res.Tenant)
		u.gpuTime += res.InferShare
		if i == 0 {
			u.gpuTime += res.LoadTime
		}
		res.FinishedAt = now
	}
	if m.sink != nil {
		m.sink.GPUStatus(dev.ID(), false, now)
	}
	for i := range results {
		if m.sink != nil {
			m.sink.Completion(results[i])
		}
		if m.onComplete != nil {
			m.onComplete(results[i])
		}
	}
}

func (m *Manager) complete(dev *gpu.Device, res Result, now sim.Time) {
	if _, err := dev.Complete(now); err != nil {
		// Completion of a request the device does not believe it is
		// running indicates a harness bug; surface it loudly in tests
		// by panicking in sim mode (deterministic), tolerating in live.
		panic(fmt.Sprintf("gpumgr: complete on %s: %v", dev.ID(), err))
	}
	m.releaseLaunch(dev.ID())
	m.cacheMgr.Pin(dev.ID(), "")
	u := m.tenantUsageFor(res.Tenant)
	u.gpuTime += res.LoadTime + res.InferTime
	res.FinishedAt = now
	if m.sink != nil {
		m.sink.GPUStatus(dev.ID(), false, now)
		m.sink.Completion(res)
	}
	if m.onComplete != nil {
		m.onComplete(res)
	}
}

// startProcess records a new GPU process serving the model.
func (m *Manager) startProcess(gpuID, model, tenant string, now sim.Time) {
	m.nextPID++
	m.processes[gpuID][model] = &Process{
		PID: m.nextPID, GPU: gpuID, Model: model, Tenant: tenant, Started: now,
	}
	u := m.tenantUsageFor(tenant)
	u.processes++
	if mdl, ok := m.zoo.Get(model); ok {
		u.memory += mdl.OccupancyBytes()
	}
}

// killProcess kills the process serving a victim model and evicts the
// model from the device and the cache index.
func (m *Manager) killProcess(gpuID, model string, now sim.Time) error {
	dev := m.devices[gpuID]
	if err := dev.Evict(model); err != nil {
		return err
	}
	if err := m.cacheMgr.OnEvict(gpuID, model, now); err != nil {
		return err
	}
	if p, ok := m.processes[gpuID][model]; ok {
		u := m.tenantUsageFor(p.Tenant)
		u.processes--
		if mdl, ok := m.zoo.Get(model); ok {
			u.memory -= mdl.OccupancyBytes()
		}
		delete(m.processes[gpuID], model)
	}
	return nil
}

// TenantGPUTime returns the cumulative GPU time consumed by a tenant.
func (m *Manager) TenantGPUTime(tenant string) time.Duration {
	if u, ok := m.usage[tenant]; ok {
		return u.gpuTime
	}
	return 0
}

// TenantProcesses returns the tenant's live process count.
func (m *Manager) TenantProcesses(tenant string) int {
	if u, ok := m.usage[tenant]; ok {
		return u.processes
	}
	return 0
}
