package gpumgr

import (
	"errors"
	"testing"
	"time"

	"gpufaas/internal/cache"
	"gpufaas/internal/core"
	"gpufaas/internal/gpu"
	"gpufaas/internal/models"
	"gpufaas/internal/sim"
)

type fixture struct {
	engine *sim.Engine
	cache  *cache.Manager
	mgr    *Manager
	zoo    *models.Zoo
	done   []Result
}

type recordSink struct {
	status []string
	comps  []Result
}

func (r *recordSink) GPUStatus(gpuID string, busy bool, _ sim.Time) {
	s := "idle"
	if busy {
		s = "busy"
	}
	r.status = append(r.status, gpuID+"="+s)
}
func (r *recordSink) Completion(res Result) { r.comps = append(r.comps, res) }

func newFixture(t *testing.T, sink StatusSink, gpus int) *fixture {
	t.Helper()
	f := &fixture{engine: sim.New(), zoo: models.Default()}
	sizeOf := func(m string) (int64, bool) {
		mm, ok := f.zoo.Get(m)
		if !ok {
			return 0, false
		}
		return mm.OccupancyBytes(), true
	}
	var err error
	f.cache, err = cache.NewManager(cache.PolicyLRU, sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	f.mgr, err = New(Config{
		Node:       "node0",
		Clock:      sim.SimClock{E: f.engine},
		Cache:      f.cache,
		Zoo:        f.zoo,
		Profiles:   models.TableProfiles("rtx2080", f.zoo),
		Sink:       sink,
		OnComplete: func(res Result) { f.done = append(f.done, res) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gpus; i++ {
		d, err := gpu.New(gpu.Config{
			ID: f.mgr.Node() + "/gpu" + string(rune('0'+i)), Node: "node0",
			Type: "rtx2080", Capacity: 7 << 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.mgr.AddDevice(d); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func req(id int64, model string) *core.Request {
	return &core.Request{ID: id, Function: "fn", Model: model, BatchSize: 32}
}

func TestNewValidation(t *testing.T) {
	good := Config{Clock: sim.SimClock{E: sim.New()}}
	cm, _ := cache.NewManager(cache.PolicyLRU, func(string) (int64, bool) { return 1, true })
	good.Cache = cm
	good.Zoo = models.Default()
	good.Profiles = models.NewProfileStore()
	cases := []func(Config) Config{
		func(c Config) Config { c.Clock = nil; return c },
		func(c Config) Config { c.Cache = nil; return c },
		func(c Config) Config { c.Zoo = nil; return c },
		func(c Config) Config { c.Profiles = nil; return c },
	}
	for i, mut := range cases {
		if _, err := New(mut(good)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
}

func TestAddDeviceDuplicate(t *testing.T) {
	f := newFixture(t, nil, 1)
	d, _ := gpu.New(gpu.Config{ID: "node0/gpu0", Capacity: 1 << 30})
	if err := f.mgr.AddDevice(d); err == nil {
		t.Error("duplicate device should fail")
	}
	if got := f.mgr.DeviceIDs(); len(got) != 1 {
		t.Errorf("DeviceIDs = %v", got)
	}
	if _, ok := f.mgr.Device("node0/gpu0"); !ok {
		t.Error("Device lookup failed")
	}
}

func TestExecuteMissThenHit(t *testing.T) {
	sink := &recordSink{}
	f := newFixture(t, sink, 1)
	hit, err := f.mgr.Execute(req(1, "resnet18"), "node0/gpu0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first execution must miss")
	}
	procs := f.mgr.Processes("node0/gpu0")
	if len(procs) != 1 || procs[0].Model != "resnet18" {
		t.Errorf("processes = %+v", procs)
	}
	f.engine.Run(0)
	if len(f.done) != 1 {
		t.Fatalf("completions = %d", len(f.done))
	}
	res := f.done[0]
	// load 2.52s + infer 1.25s
	want := 2520*time.Millisecond + 1250*time.Millisecond
	if got := time.Duration(res.FinishedAt); got != want {
		t.Errorf("finish = %v, want %v", got, want)
	}
	// Second request: hit, no load.
	now := sim.Time(f.engine.Now())
	hit, err = f.mgr.Execute(req(2, "resnet18"), "node0/gpu0", now)
	if err != nil || !hit {
		t.Fatalf("second execute: hit=%v err=%v", hit, err)
	}
	f.engine.Run(0)
	if len(f.done) != 2 || f.done[1].LoadTime != 0 {
		t.Errorf("hit result = %+v", f.done[1])
	}
	// Sink saw busy/idle transitions and completions.
	if len(sink.comps) != 2 {
		t.Errorf("sink completions = %d", len(sink.comps))
	}
	if len(sink.status) < 4 {
		t.Errorf("sink status = %v", sink.status)
	}
}

func TestExecuteEvictsLRUVictims(t *testing.T) {
	f := newFixture(t, nil, 1)
	// 7 GiB GPU: vgg19 (3947MB) + vgg16 (3907MB) don't fit together.
	if _, err := f.mgr.Execute(req(1, "vgg19"), "node0/gpu0", 0); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(0)
	now := f.engine.Now()
	if _, err := f.mgr.Execute(req(2, "vgg16"), "node0/gpu0", now); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(0)
	d, _ := f.mgr.Device("node0/gpu0")
	if d.Resident("vgg19") {
		t.Error("vgg19 should have been evicted")
	}
	if !d.Resident("vgg16") {
		t.Error("vgg16 should be resident")
	}
	if len(f.mgr.Processes("node0/gpu0")) != 1 {
		t.Errorf("processes = %+v", f.mgr.Processes("node0/gpu0"))
	}
	m := f.cache.Metrics()
	if m.Misses != 2 || m.Requests != 2 {
		t.Errorf("cache metrics = %+v", m)
	}
}

func TestExecuteErrors(t *testing.T) {
	f := newFixture(t, nil, 1)
	if _, err := f.mgr.Execute(req(1, "resnet18"), "ghost", 0); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
	if _, err := f.mgr.Execute(req(1, "no-such-model"), "node0/gpu0", 0); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: %v", err)
	}
	// Device busy: Execute while a request is in flight fails via device.
	if _, err := f.mgr.Execute(req(1, "resnet18"), "node0/gpu0", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Execute(req(2, "alexnet"), "node0/gpu0", 0); err == nil {
		t.Error("execute on busy device should fail")
	}
}

func TestQuotaProcesses(t *testing.T) {
	f := newFixture(t, nil, 2)
	f.mgr.SetQuota("t1", Quota{MaxProcesses: 1})
	r1 := req(1, "resnet18")
	r1.Tenant = "t1"
	if _, err := f.mgr.Execute(r1, "node0/gpu0", 0); err != nil {
		t.Fatal(err)
	}
	r2 := req(2, "alexnet")
	r2.Tenant = "t1"
	if _, err := f.mgr.Execute(r2, "node0/gpu1", 0); !errors.Is(err, ErrQuota) {
		t.Errorf("second process: %v", err)
	}
	// A hit does not need a new process, so it passes the process quota.
	f.engine.Run(0)
	r3 := req(3, "resnet18")
	r3.Tenant = "t1"
	if _, err := f.mgr.Execute(r3, "node0/gpu0", f.engine.Now()); err != nil {
		t.Errorf("hit within quota: %v", err)
	}
	if f.mgr.TenantProcesses("t1") != 1 {
		t.Errorf("processes = %d", f.mgr.TenantProcesses("t1"))
	}
}

func TestQuotaGPUTime(t *testing.T) {
	f := newFixture(t, nil, 1)
	f.mgr.SetQuota("t1", Quota{MaxGPUTime: 5 * time.Second})
	r1 := req(1, "resnet18") // 2.52 + 1.25 = 3.77s
	r1.Tenant = "t1"
	if _, err := f.mgr.Execute(r1, "node0/gpu0", 0); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(0)
	if got := f.mgr.TenantGPUTime("t1"); got != 3770*time.Millisecond {
		t.Errorf("gpu time = %v", got)
	}
	r2 := req(2, "resnet18") // hit: 1.25s, total 5.02s > 5s
	r2.Tenant = "t1"
	if _, err := f.mgr.Execute(r2, "node0/gpu0", f.engine.Now()); !errors.Is(err, ErrQuota) {
		t.Errorf("over-time execute: %v", err)
	}
	if f.mgr.TenantGPUTime("unknown") != 0 || f.mgr.TenantProcesses("unknown") != 0 {
		t.Error("unknown tenant usage should be zero")
	}
}

func TestQuotaMemory(t *testing.T) {
	f := newFixture(t, nil, 2)
	f.mgr.SetQuota("t1", Quota{MaxMemoryBytes: 2000 * (1 << 20)})
	r1 := req(1, "resnet18") // 1313 MB
	r1.Tenant = "t1"
	if _, err := f.mgr.Execute(r1, "node0/gpu0", 0); err != nil {
		t.Fatal(err)
	}
	r2 := req(2, "alexnet") // 1437 MB -> 2750 MB > 2000 MB
	r2.Tenant = "t1"
	if _, err := f.mgr.Execute(r2, "node0/gpu1", 0); !errors.Is(err, ErrQuota) {
		t.Errorf("over-memory execute: %v", err)
	}
}

func TestNoProfileError(t *testing.T) {
	f := newFixture(t, nil, 1)
	// A device with a GPU type that has no profiles.
	d, _ := gpu.New(gpu.Config{ID: "node0/exotic", Node: "node0", Type: "h100", Capacity: 7 << 30})
	if err := f.mgr.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Execute(req(1, "resnet18"), "node0/exotic", 0); !errors.Is(err, ErrNoProfile) {
		t.Errorf("missing profile: %v", err)
	}
}

func TestHeterogeneousProfiles(t *testing.T) {
	// §VI "Heterogeneity of GPUs": per-type profiles drive per-type
	// execution times on devices of different types under one manager.
	f := newFixture(t, nil, 1)
	fast := models.NewProfileStore()
	for _, m := range f.zoo.All() {
		p, _ := models.TableProfiles("rtx2080", f.zoo).Get("rtx2080", m.Name)
		p.GPUType = "a100"
		p.LoadTime = p.LoadTime / 2
		fast.Put(p)
		f.mgr.profiles.Put(p) // extend the shared store with the new type
	}
	d, _ := gpu.New(gpu.Config{ID: "node0/a100", Node: "node0", Type: "a100", Capacity: 7 << 30})
	if err := f.mgr.AddDevice(d); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Execute(req(1, "resnet18"), "node0/a100", 0); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(0)
	if len(f.done) != 1 {
		t.Fatal("no completion")
	}
	if f.done[0].LoadTime != 1260*time.Millisecond {
		t.Errorf("a100 load = %v, want half of 2.52s", f.done[0].LoadTime)
	}
}
