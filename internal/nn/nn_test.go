package nn

import (
	"math"
	"math/rand"
	"testing"

	"gpufaas/internal/models"
	"gpufaas/internal/tensor"
)

func randomBatch(t *testing.T, n int) *tensor.Tensor {
	t.Helper()
	x := tensor.MustNew(n, 3, InputSize, InputSize)
	x.FillRandom(rand.New(rand.NewSource(99)), 1)
	return x
}

func TestBuildAllZooArchitectures(t *testing.T) {
	zoo := models.Default()
	x := randomBatch(t, 2)
	for _, m := range zoo.All() {
		net, err := Build(m.Name, 7)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		logits, err := net.Forward(x)
		if err != nil {
			t.Fatalf("%s forward: %v", m.Name, err)
		}
		if logits.Dims() != 2 || logits.Shape[0] != 2 || logits.Shape[1] != NumClasses {
			t.Fatalf("%s logits shape %v", m.Name, logits.Shape)
		}
		for _, v := range logits.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s produced NaN/Inf logits", m.Name)
			}
		}
		if net.Params() <= 0 {
			t.Errorf("%s has no parameters", m.Name)
		}
	}
}

func TestBuildInstanceSuffix(t *testing.T) {
	net, err := Build("resnet18@f07", 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.Arch != "resnet18" {
		t.Errorf("Arch = %s", net.Arch)
	}
	if BaseArch("vgg19@f31") != "vgg19" || BaseArch("alexnet") != "alexnet" {
		t.Error("BaseArch wrong")
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("gpt4", 1); err == nil {
		t.Error("unknown architecture should fail")
	}
}

func TestPredictDeterministic(t *testing.T) {
	x := randomBatch(t, 4)
	a, err := Build("resnet18", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("resnet18", 42)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different predictions")
		}
		if pa[i] < 0 || pa[i] >= NumClasses {
			t.Fatalf("class out of range: %d", pa[i])
		}
	}
}

func TestDifferentSeedsDifferentWeights(t *testing.T) {
	a, _ := Build("alexnet", 1)
	b, _ := Build("alexnet", 2)
	x := randomBatch(t, 1)
	la, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range la.Data {
		if la.Data[i] != lb.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical logits")
	}
}

func TestForwardInputValidation(t *testing.T) {
	net, err := Build("resnet18", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Forward(tensor.MustNew(1, 1, 32, 32)); err == nil {
		t.Error("wrong channel count should fail")
	}
	if _, err := net.Forward(tensor.MustNew(1, 3, 16, 16)); err == nil {
		t.Error("wrong spatial size should fail")
	}
}

func TestVariantDepthOrdering(t *testing.T) {
	// Bigger variants must have at least as many parameters.
	pairs := [][2]string{
		{"resnet18", "resnet152"},
		{"vgg11", "vgg19"},
		{"densenet121", "densenet201"},
		{"resnext50.32x4d", "resnext101.32x8d"},
	}
	for _, p := range pairs {
		small, err := Build(p[0], 1)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Build(p[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		if big.Params() <= small.Params() {
			t.Errorf("%s params %d <= %s params %d", p[1], big.Params(), p[0], small.Params())
		}
	}
}

func BenchmarkResNet18Forward(b *testing.B) {
	net, err := Build("resnet18", 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(8, 3, InputSize, InputSize)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVGG19Forward(b *testing.B) {
	net, err := Build("vgg19", 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(8, 3, InputSize, InputSize)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}
