// Package nn builds runnable CNN forward passes for the model zoo's
// architectures. Live-mode FaaS functions execute these networks on real
// image tensors, so the gateway path is exercised end to end with actual
// computation; the simulated experiments use the Table I timing profiles
// instead (the scheduling results depend only on those).
//
// The architectures are faithful-in-structure, scaled-down-in-width
// variants of their namesakes (residual blocks for the ResNet family,
// dense concatenation blocks for DenseNets, fire-style squeeze/expand for
// SqueezeNets, plain deep stacks for VGG/AlexNet, parallel branches for
// Inception). Weights are deterministic pseudo-random: the goal is
// realistic compute and dataflow, not trained accuracy.
package nn

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"gpufaas/internal/tensor"
)

// NumClasses is the output width (CIFAR-10-style tasks).
const NumClasses = 10

// InputSize is the expected spatial input (32x32 RGB).
const InputSize = 32

// Layer is one step of a forward pass.
type Layer interface {
	// Forward consumes the previous activation and returns the next.
	Forward(x *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the number of learnable parameters.
	Params() int64
	// Name identifies the layer for inspection.
	Name() string
}

// Network is an executable sequence of layers.
type Network struct {
	Arch   string
	Layers []Layer
}

// Forward runs the network on a [N,3,32,32] input, returning logits
// [N, NumClasses].
func (n *Network) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 4 || x.Shape[1] != 3 || x.Shape[2] != InputSize || x.Shape[3] != InputSize {
		return nil, fmt.Errorf("nn: input must be [N,3,%d,%d], got %v", InputSize, InputSize, x.Shape)
	}
	var err error
	for _, l := range n.Layers {
		if x, err = l.Forward(x); err != nil {
			return nil, fmt.Errorf("nn: %s/%s: %w", n.Arch, l.Name(), err)
		}
	}
	return x, nil
}

// Predict runs Forward then softmax+argmax, returning the class per input.
func (n *Network) Predict(x *tensor.Tensor) ([]int, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return nil, err
	}
	probs, err := tensor.Softmax(logits)
	if err != nil {
		return nil, err
	}
	return tensor.Argmax(probs)
}

// Params returns the total learnable parameter count.
func (n *Network) Params() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.Params()
	}
	return total
}

// ---- concrete layers ----

type convLayer struct {
	name       string
	w, b       *tensor.Tensor
	stride     int
	pad        int
	relu       bool
	paramCount int64
}

func newConv(name string, rng *rand.Rand, cin, cout, k, stride, pad int, relu bool) *convLayer {
	w := tensor.MustNew(cout, cin, k, k)
	w.FillRandom(rng, 0.35/float64(k)) // keep activations bounded through depth
	b := tensor.MustNew(cout)
	return &convLayer{
		name: name, w: w, b: b, stride: stride, pad: pad, relu: relu,
		paramCount: int64(cout*cin*k*k + cout),
	}
}

func (l *convLayer) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := tensor.Conv2D(x, l.w, l.b, l.stride, l.pad)
	if err != nil {
		return nil, err
	}
	if l.relu {
		tensor.ReLU(y)
	}
	return y, nil
}
func (l *convLayer) Params() int64 { return l.paramCount }
func (l *convLayer) Name() string  { return l.name }

type poolLayer struct {
	name      string
	k, stride int
}

func (l *poolLayer) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.MaxPool2D(x, l.k, l.stride)
}
func (l *poolLayer) Params() int64 { return 0 }
func (l *poolLayer) Name() string  { return l.name }

type gapLayer struct{}

func (gapLayer) Forward(x *tensor.Tensor) (*tensor.Tensor, error) { return tensor.GlobalAvgPool(x) }
func (gapLayer) Params() int64                                    { return 0 }
func (gapLayer) Name() string                                     { return "gap" }

type denseLayer struct {
	name       string
	w, b       *tensor.Tensor
	relu       bool
	paramCount int64
}

func newDense(name string, rng *rand.Rand, in, out int, relu bool) *denseLayer {
	w := tensor.MustNew(out, in)
	w.FillRandom(rng, 0.2)
	b := tensor.MustNew(out)
	return &denseLayer{name: name, w: w, b: b, relu: relu, paramCount: int64(out*in + out)}
}

func (l *denseLayer) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Dims() != 2 {
		var err error
		if x, err = tensor.Flatten(x); err != nil {
			return nil, err
		}
	}
	y, err := tensor.Dense(x, l.w, l.b)
	if err != nil {
		return nil, err
	}
	if l.relu {
		tensor.ReLU(y)
	}
	return y, nil
}
func (l *denseLayer) Params() int64 { return l.paramCount }
func (l *denseLayer) Name() string  { return l.name }

// residualBlock is conv-conv plus identity skip (ResNet family).
type residualBlock struct {
	name   string
	c1, c2 *convLayer
}

func newResidual(name string, rng *rand.Rand, channels int) *residualBlock {
	return &residualBlock{
		name: name,
		c1:   newConv(name+".c1", rng, channels, channels, 3, 1, 1, true),
		c2:   newConv(name+".c2", rng, channels, channels, 3, 1, 1, false),
	}
}

func (l *residualBlock) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := l.c1.Forward(x)
	if err != nil {
		return nil, err
	}
	if y, err = l.c2.Forward(y); err != nil {
		return nil, err
	}
	sum, err := tensor.Add(y, x)
	if err != nil {
		return nil, err
	}
	return tensor.ReLU(sum), nil
}
func (l *residualBlock) Params() int64 { return l.c1.Params() + l.c2.Params() }
func (l *residualBlock) Name() string  { return l.name }

// denseBlock concatenates each conv's output onto its input (DenseNet).
type denseBlock struct {
	name  string
	convs []*convLayer
}

func newDenseBlock(name string, rng *rand.Rand, cin, growth, n int) *denseBlock {
	b := &denseBlock{name: name}
	c := cin
	for i := 0; i < n; i++ {
		b.convs = append(b.convs, newConv(fmt.Sprintf("%s.c%d", name, i), rng, c, growth, 3, 1, 1, true))
		c += growth
	}
	return b
}

func (l *denseBlock) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	cur := x
	for _, c := range l.convs {
		y, err := c.Forward(cur)
		if err != nil {
			return nil, err
		}
		if cur, err = tensor.ConcatChannels(cur, y); err != nil {
			return nil, err
		}
	}
	return cur, nil
}
func (l *denseBlock) Params() int64 {
	var t int64
	for _, c := range l.convs {
		t += c.Params()
	}
	return t
}
func (l *denseBlock) Name() string { return l.name }

// fireBlock is SqueezeNet's squeeze (1x1) then expand (1x1 || 3x3).
type fireBlock struct {
	name            string
	squeeze, e1, e3 *convLayer
}

func newFire(name string, rng *rand.Rand, cin, squeeze, expand int) *fireBlock {
	return &fireBlock{
		name:    name,
		squeeze: newConv(name+".squeeze", rng, cin, squeeze, 1, 1, 0, true),
		e1:      newConv(name+".expand1", rng, squeeze, expand, 1, 1, 0, true),
		e3:      newConv(name+".expand3", rng, squeeze, expand, 3, 1, 1, true),
	}
}

func (l *fireBlock) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	s, err := l.squeeze.Forward(x)
	if err != nil {
		return nil, err
	}
	a, err := l.e1.Forward(s)
	if err != nil {
		return nil, err
	}
	b, err := l.e3.Forward(s)
	if err != nil {
		return nil, err
	}
	return tensor.ConcatChannels(a, b)
}
func (l *fireBlock) Params() int64 { return l.squeeze.Params() + l.e1.Params() + l.e3.Params() }
func (l *fireBlock) Name() string  { return l.name }

// inceptionBlock runs parallel 1x1 and 3x3 branches and concatenates.
type inceptionBlock struct {
	name   string
	b1, b3 *convLayer
}

func newInception(name string, rng *rand.Rand, cin, per int) *inceptionBlock {
	return &inceptionBlock{
		name: name,
		b1:   newConv(name+".b1", rng, cin, per, 1, 1, 0, true),
		b3:   newConv(name+".b3", rng, cin, per, 3, 1, 1, true),
	}
}

func (l *inceptionBlock) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	a, err := l.b1.Forward(x)
	if err != nil {
		return nil, err
	}
	b, err := l.b3.Forward(x)
	if err != nil {
		return nil, err
	}
	return tensor.ConcatChannels(a, b)
}
func (l *inceptionBlock) Params() int64 { return l.b1.Params() + l.b3.Params() }
func (l *inceptionBlock) Name() string  { return l.name }

// ---- architecture builder ----

// BaseArch strips a per-function instance suffix ("resnet18@f07" ->
// "resnet18").
func BaseArch(model string) string {
	if i := strings.IndexByte(model, '@'); i >= 0 {
		return model[:i]
	}
	return model
}

// ErrUnknownArch is returned for model names outside the zoo's families.
var ErrUnknownArch = errors.New("nn: unknown architecture")

// Build constructs the network for a zoo model name (instance suffixes
// allowed). The seed makes weights deterministic per instance.
func Build(model string, seed int64) (*Network, error) {
	arch := BaseArch(model)
	rng := rand.New(rand.NewSource(seed))
	net := &Network{Arch: arch}
	add := func(ls ...Layer) {
		net.Layers = append(net.Layers, ls...)
	}

	switch {
	case strings.HasPrefix(arch, "squeezenet"):
		add(newConv("stem", rng, 3, 16, 3, 2, 1, true)) // 16x16
		add(newFire("fire1", rng, 16, 4, 8))            // 16ch
		add(&poolLayer{"pool1", 2, 2})                  // 8x8
		add(newFire("fire2", rng, 16, 8, 16))           // 32ch
		add(gapLayer{})
		add(newDense("fc", rng, 32, NumClasses, false))

	case arch == "alexnet":
		add(newConv("c1", rng, 3, 24, 5, 2, 2, true)) // 16x16
		add(&poolLayer{"p1", 2, 2})                   // 8x8
		add(newConv("c2", rng, 24, 48, 3, 1, 1, true))
		add(newConv("c3", rng, 48, 48, 3, 1, 1, true))
		add(&poolLayer{"p2", 2, 2}) // 4x4
		add(newDense("fc1", rng, 48*4*4, 128, true))
		add(newDense("fc2", rng, 128, NumClasses, false))

	case strings.HasPrefix(arch, "vgg"):
		depth := vggDepth(arch)
		add(newConv("stem", rng, 3, 16, 3, 1, 1, true))
		add(&poolLayer{"p0", 2, 2}) // 16x16
		c := 16
		for i := 0; i < depth; i++ {
			add(newConv(fmt.Sprintf("c%d", i+1), rng, c, 32, 3, 1, 1, true))
			c = 32
			if i == depth/2 {
				add(&poolLayer{fmt.Sprintf("p%d", i+1), 2, 2}) // 8x8
			}
		}
		add(&poolLayer{"pend", 2, 2}) // 4x4
		add(newDense("fc1", rng, 32*4*4, 128, true))
		add(newDense("fc2", rng, 128, NumClasses, false))

	case strings.HasPrefix(arch, "resnet"), strings.HasPrefix(arch, "resnext"),
		strings.HasPrefix(arch, "wideresnet"):
		blocks, width := resnetShape(arch)
		add(newConv("stem", rng, 3, width, 3, 1, 1, true))
		add(&poolLayer{"p0", 2, 2}) // 16x16
		for i := 0; i < blocks; i++ {
			add(newResidual(fmt.Sprintf("res%d", i+1), rng, width))
			if i == blocks/2 {
				add(&poolLayer{fmt.Sprintf("p%d", i+1), 2, 2}) // 8x8
			}
		}
		add(gapLayer{})
		add(newDense("fc", rng, width, NumClasses, false))

	case strings.HasPrefix(arch, "densenet"):
		n := densenetShape(arch)
		add(newConv("stem", rng, 3, 16, 3, 2, 1, true)) // 16x16
		add(newDenseBlock("dense1", rng, 16, 8, n))
		add(&poolLayer{"p1", 2, 2}) // 8x8
		c := 16 + 8*n
		add(newDenseBlock("dense2", rng, c, 8, 2))
		add(gapLayer{})
		add(newDense("fc", rng, c+16, NumClasses, false))

	case strings.HasPrefix(arch, "inception"):
		add(newConv("stem", rng, 3, 16, 3, 2, 1, true)) // 16x16
		add(newInception("inc1", rng, 16, 12))          // 24ch
		add(&poolLayer{"p1", 2, 2})                     // 8x8
		add(newInception("inc2", rng, 24, 16))          // 32ch
		add(gapLayer{})
		add(newDense("fc", rng, 32, NumClasses, false))

	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownArch, model)
	}
	return net, nil
}

// vggDepth maps the VGG variant to a (scaled) conv-stack depth.
func vggDepth(arch string) int {
	switch {
	case strings.HasPrefix(arch, "vgg19"):
		return 8
	case strings.HasPrefix(arch, "vgg16"):
		return 7
	case strings.HasPrefix(arch, "vgg13"):
		return 6
	default: // vgg11
		return 5
	}
}

// resnetShape maps a ResNet-family variant to (blocks, width).
func resnetShape(arch string) (blocks, width int) {
	switch {
	case strings.HasPrefix(arch, "wideresnet101"):
		return 6, 32
	case strings.HasPrefix(arch, "wideresnet"):
		return 4, 32
	case strings.HasPrefix(arch, "resnext101"):
		return 6, 24
	case strings.HasPrefix(arch, "resnext"):
		return 4, 24
	case arch == "resnet152":
		return 8, 16
	case arch == "resnet101":
		return 7, 16
	case arch == "resnet50":
		return 6, 16
	case arch == "resnet34":
		return 4, 16
	default: // resnet18
		return 3, 16
	}
}

// densenetShape maps a DenseNet variant to its first block's depth.
func densenetShape(arch string) int {
	switch arch {
	case "densenet201":
		return 5
	case "densenet169":
		return 4
	case "densenet161":
		return 4
	default: // densenet121
		return 3
	}
}
