package experiments

// The multi-cell sweep: the scale sweep's successor. PR 5's streaming
// replay made a 1024-GPU hour fit in memory; this grid shards fleets up
// to 16384 GPUs into {1,4,16} cells behind each front-door router
// policy, so the simulation finally spends cores instead of just
// memory. Rows run sequentially — each row fans its cells across the
// worker pool — so the recorded wall-clock per row is meaningful and
// the K=1 row of each fleet doubles as the speedup baseline.

import (
	"fmt"
	"io"

	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/models"
	"gpufaas/internal/multicell"
)

// CellParams configures one multi-cell run. The embedded RunParams is
// the per-cell template whose fleet/topology fields describe the WHOLE
// fleet; RunCells partitions it across cells (declared fleets class by
// class, the homogeneous default node by node).
type CellParams struct {
	Run   RunParams
	Cells int
	// Router selects the front-door policy (zero value: consistent
	// hash).
	Router multicell.Policy
	// RouterSeed seeds the vnode ring; zero uses the workload seed,
	// mirroring how grid specs carry one deterministic seed.
	RouterSeed int64
	// Workers bounds concurrently simulated cells (<= 0: GOMAXPROCS).
	Workers int
	// Materialize replays each cell via RunWorkload instead of the
	// streaming injector — byte-identical to the legacy single-cluster
	// path (the golden-equivalence mode).
	Materialize bool
}

// RunCells partitions the fleet, builds one full stack per cell and
// runs them behind the front-door router.
func RunCells(p CellParams) (multicell.Result, error) {
	if p.Cells < 1 {
		return multicell.Result{}, fmt.Errorf("experiments: need >= 1 cell, got %d", p.Cells)
	}
	base := p.Run
	// Resolve the template once: validates the params and fixes the
	// effective workload (seed, minutes) before any cell builds.
	_, wp, err := buildConfig(base)
	if err != nil {
		return multicell.Result{}, err
	}
	var fleets []cluster.FleetSpec
	var nodes []int
	if base.Fleet != nil {
		fleets, err = multicell.PartitionFleet(base.Fleet, p.Cells)
		if err != nil {
			return multicell.Result{}, err
		}
	} else {
		n := base.Nodes
		if n == 0 {
			n = cluster.DefaultConfig().Nodes
		}
		nodes = multicell.PartitionCounts(n, p.Cells)
		if nodes[len(nodes)-1] == 0 {
			return multicell.Result{}, fmt.Errorf("experiments: %d nodes cannot shard into %d cells", n, p.Cells)
		}
	}
	seed := p.RouterSeed
	if seed == 0 {
		seed = wp.Seed
	}
	return multicell.Run(multicell.Config{
		Cells:       p.Cells,
		Router:      multicell.RouterConfig{Policy: p.Router, Seed: seed},
		Workers:     p.Workers,
		Materialize: p.Materialize,
		Setup: func(cell int) (multicell.CellSpec, error) {
			cp := base
			if fleets != nil {
				cp.Fleet = fleets[cell]
			} else {
				cp.Nodes = nodes[cell]
			}
			// Tag each cell's observability output (span Cell field,
			// trace-event process grouping) with its cell index.
			cp.Obs.Cell = cell
			cfg, cwp, err := buildConfig(cp)
			if err != nil {
				return multicell.CellSpec{}, err
			}
			// Each cell regenerates the full arrival stream from the
			// workload seed; the runner's router filter keeps the
			// cell's share. Memory stays O(one trace minute) per cell.
			built, err := StreamWorkload(cwp, models.Default(), cp.StreamChunk)
			if err != nil {
				return multicell.CellSpec{}, err
			}
			cfg.Zoo = built.Zoo
			return multicell.CellSpec{
				Config:   cfg,
				Source:   built.Stream,
				TopModel: built.TopModel,
			}, nil
		},
	})
}

// CellFleets are the swept fleet sizes (GPUs); short mode drops the
// 16384-GPU column.
var CellFleets = []int{1024, 4096, 16384}

// CellCounts is the sharding axis.
var CellCounts = []int{1, 4, 16}

// CellRow is one cell-sweep result: the merged fleet metrics, the
// per-cell imbalance bracket, the capacity-planning telemetry, and the
// wall-clock speedup over the same fleet's K=1 baseline.
type CellRow struct {
	Fleet  int
	Cells  int
	Router string

	Requests      int64
	AvgLatencySec float64
	P95LatencySec float64
	MissRatio     float64
	SMUtilization float64

	// Latency decomposition (Report.Breakdown, merged exactly across
	// cells): the p95 of each additive component over all requests. The
	// K=16 locality collapse shows here as LoadP95Sec blowing out while
	// ServiceP95Sec stays flat — aggregate MissRatio only hints at it.
	QueueP95Sec   float64
	LoadP95Sec    float64
	ServiceP95Sec float64
	// MissLoadP95Sec is the load p95 over misses only (the price of one
	// miss, independent of the miss rate).
	MissLoadP95Sec float64

	// Per-cell spread (min/max over cells): router imbalance.
	MinCellRequests int64
	MaxCellRequests int64
	MinCellP95Sec   float64
	MaxCellP95Sec   float64

	// Capacity-planning telemetry: the worst single cell's peak event
	// queue and local-queue depth, and the summed streaming peak.
	MaxEventQueueLen int
	PeakLocalQueue   int
	PeakInflight     int64

	// WallSeconds / Speedup are wall-clock measurements (Speedup is
	// against the same fleet's K=1 row; 1.0 for the baseline itself).
	// Volatile by nature: faas-bench's canonical snapshot (-det-json)
	// zeroes them, and omitempty drops them from the JSON, so the CI
	// determinism gate compares only reproducible bytes.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

// cellSpec is one sweep cell.
type cellSpec struct {
	fleet  int
	cells  int
	router multicell.Policy
}

// cellSweepSpecs returns the sweep grid in row order: per fleet, the
// K=1 baseline (router choice is moot with one cell) then each cell
// count × router policy.
func cellSweepSpecs(short bool) []cellSpec {
	fleets := CellFleets
	if short {
		fleets = []int{1024, 4096}
	}
	var specs []cellSpec
	for _, gpus := range fleets {
		specs = append(specs, cellSpec{fleet: gpus, cells: 1, router: multicell.RouteHash})
		for _, cells := range CellCounts {
			if cells == 1 {
				continue
			}
			for _, pol := range multicell.RouterPolicies {
				specs = append(specs, cellSpec{fleet: gpus, cells: cells, router: pol})
			}
		}
	}
	return specs
}

// cellRunParams is the scale sweep's operating point for one fleet
// size: per-GPU arrival rate held at the paper's 325 req/min per 12
// GPUs, working set grown with the fleet (capped by the synthesizer's
// population), streaming replay.
func cellRunParams(gpus int) RunParams {
	ws := scaleWorkingSet(gpus)
	return RunParams{
		Policy:      core.LALBO3,
		WorkingSet:  ws,
		Nodes:       gpus / 4,
		GPUsPerNode: 4,
		Streaming:   true,
		Workload: WorkloadParams{
			Minutes:           12,
			RequestsPerMinute: gpus * 325 / 12,
			WorkingSet:        ws,
			Batch:             models.EvalBatchSize,
			Seed:              1,
		},
	}
}

// CellSweep runs the cells × router × fleet grid. Rows execute
// sequentially; each row's cells fan across the worker pool, so the
// per-row wall clock is the quantity the Speedup column compares.
// Everything except the wall-clock fields is byte-identical at any
// worker count.
func CellSweep(workers int, short bool) ([]CellRow, error) {
	specs := cellSweepSpecs(short)
	rows := make([]CellRow, len(specs))
	baseWall := make(map[int]float64, len(CellFleets))
	for i, s := range specs {
		run := cellRunParams(s.fleet)
		// The decomposition is what turns a p95 move into a diagnosis;
		// tracing/series stay off here (the obs sweep carries those).
		run.Obs.Breakdown = true
		res, err := RunCells(CellParams{
			Run:     run,
			Cells:   s.cells,
			Router:  s.router,
			Workers: workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: cells/gpus=%d/k=%d/%v: %w", s.fleet, s.cells, s.router, err)
		}
		m := res.Merged
		row := CellRow{
			Fleet:            s.fleet,
			Cells:            s.cells,
			Router:           s.router.String(),
			Requests:         m.Requests,
			AvgLatencySec:    m.AvgLatencySec,
			P95LatencySec:    m.P95LatencySec,
			MissRatio:        m.MissRatio,
			SMUtilization:    m.SMUtilization,
			MinCellRequests:  m.CellSpread.MinRequests,
			MaxCellRequests:  m.CellSpread.MaxRequests,
			MinCellP95Sec:    m.CellSpread.MinP95LatencySec,
			MaxCellP95Sec:    m.CellSpread.MaxP95LatencySec,
			MaxEventQueueLen: m.MaxEventQueueLen,
			PeakLocalQueue:   m.PeakLocalQueue,
			WallSeconds:      res.WallSeconds,
		}
		if b := m.Breakdown; b != nil {
			row.QueueP95Sec = b.All.QueueWait.P95Sec
			row.LoadP95Sec = b.All.Load.P95Sec
			row.ServiceP95Sec = b.All.Service.P95Sec
			row.MissLoadP95Sec = b.Miss.Load.P95Sec
		}
		if st := m.Streaming; st != nil {
			row.PeakInflight = st.PeakInflight
		}
		if s.cells == 1 {
			baseWall[s.fleet] = res.WallSeconds
			row.Speedup = 1
		} else if b := baseWall[s.fleet]; b > 0 && res.WallSeconds > 0 {
			row.Speedup = b / res.WallSeconds
		}
		rows[i] = row
	}
	return rows, nil
}

// WriteCellTable renders the sweep.
func WriteCellTable(w io.Writer, rows []CellRow) {
	fmt.Fprintf(w, "%6s %3s %-10s %9s %12s %10s %8s %10s %8s %9s %9s %8s %8s\n",
		"gpus", "k", "router", "requests", "avg_lat(s)", "p95(s)", "miss",
		"load_p95", "sm_util", "req_min", "req_max", "wall(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %3d %-10s %9d %12.3f %10.3f %8.4f %10.3f %8.4f %9d %9d %8.2f %8.2f\n",
			r.Fleet, r.Cells, r.Router, r.Requests, r.AvgLatencySec, r.P95LatencySec,
			r.MissRatio, r.LoadP95Sec, r.SMUtilization, r.MinCellRequests, r.MaxCellRequests,
			r.WallSeconds, r.Speedup)
	}
}
