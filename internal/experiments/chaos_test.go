package experiments

// Availability-sweep invariants, the chaos determinism gate, and the
// seeded-fault golden. The sweep-level claims mirror the BENCH_chaos
// acceptance gate: retry-on strictly dominates retry-off on goodput in
// every crash cell, and request conservation (completed + failed ==
// offered) holds in every cell against the fault-free baseline.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestChaosSweepShort(t *testing.T) {
	rows, err := ChaosSweep(Matrix{}, true)
	if err != nil {
		t.Fatal(err)
	}
	cells := chaosCells()
	if len(rows) != len(cells) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cells))
	}

	base := rows[0]
	if base.Mode != "none" {
		t.Fatalf("first cell = %q, want the fault-free baseline", base.Mode)
	}
	if base.Failures != 0 || base.Interrupted != 0 || base.Retries != 0 || base.Failed != 0 {
		t.Fatalf("fault-free baseline has fault accounting: %+v", base)
	}

	// Conservation: every cell was offered the same trace, and completed
	// + failed must account for all of it — no request vanishes into a
	// crashed GPU and none is double-counted by a retry.
	for i, r := range rows {
		if r.Offered != base.Offered {
			t.Errorf("cell %d (%s mttr=%.0f retry=%d): offered %d, want %d — requests leaked or double-counted",
				i, r.Mode, r.MTTRSec, r.RetryAttempts, r.Offered, base.Offered)
		}
	}

	// Pair up retry-off/retry-on within each (mode, MTTR) and check the
	// dominance claim: crash cells crash, retry-on re-queues every
	// allowed attempt, and goodput is strictly higher with retry on.
	byKey := make(map[string]ChaosRow)
	for i, r := range rows {
		byKey[cells[i].mode.name+string(rune('0'+cells[i].retry))+cells[i].mttr.String()] = r
	}
	for _, cell := range cells {
		if cell.retry == 0 {
			continue
		}
		off, on := byKey[cell.mode.name+"0"+cell.mttr.String()], byKey[cell.mode.name+string(rune('0'+cell.retry))+cell.mttr.String()]
		if off.Failures == 0 || on.Failures == 0 {
			t.Errorf("%s mttr=%v: no crashes fired (off=%d on=%d)", cell.mode.name, cell.mttr, off.Failures, on.Failures)
		}
		if off.Failed == 0 {
			t.Errorf("%s mttr=%v retry-off: no interrupted request failed — the cell proves nothing", cell.mode.name, cell.mttr)
		}
		if off.FailedByReason["fault"] != off.Failed {
			t.Errorf("%s mttr=%v retry-off: failure split %v does not attribute all %d drops to faults",
				cell.mode.name, cell.mttr, off.FailedByReason, off.Failed)
		}
		if on.Interrupted != on.Retries {
			t.Errorf("%s mttr=%v retry-on: %d interrupts but %d re-queues (budget %d should cover single interrupts)",
				cell.mode.name, cell.mttr, on.Interrupted, on.Retries, ChaosRetryAttempts)
		}
		if on.GoodputRPS <= off.GoodputRPS {
			t.Errorf("%s mttr=%v: retry-on goodput %.6f does not dominate retry-off %.6f",
				cell.mode.name, cell.mttr, on.GoodputRPS, off.GoodputRPS)
		}
		if on.Availability <= off.Availability {
			t.Errorf("%s mttr=%v: retry-on availability %.6f does not dominate retry-off %.6f",
				cell.mode.name, cell.mttr, on.Availability, off.Availability)
		}
	}

	// Straggler cells must actually see slowdown windows: their p99
	// exceeds the crash-only p99 at the same MTTR and retry setting.
	for _, mttr := range ChaosMTTRs {
		crash := byKey["crash0"+mttr.String()]
		strag := byKey["crash+straggler0"+mttr.String()]
		if strag.P99LatencySec <= crash.P99LatencySec {
			t.Errorf("mttr=%v: straggler p99 %.3f not above crash-only p99 %.3f — windows had no effect",
				mttr, strag.P99LatencySec, crash.P99LatencySec)
		}
	}
}

// TestChaosSweepDeterministic is the availability sweep's worker-count
// determinism gate: the full row set marshals byte-identically at 1 and
// 8 workers (every fault instant is a pure function of seed + device
// ordinal, never of scheduling interleaving).
func TestChaosSweepDeterministic(t *testing.T) {
	marshal := func(workers int) []byte {
		rows, err := ChaosSweep(Matrix{Workers: workers}, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	w1, w8 := marshal(1), marshal(8)
	if !bytes.Equal(w1, w8) {
		t.Fatal("chaos sweep rows differ between 1 and 8 workers")
	}
}

// chaosGoldenSpecs pins two seeded-fault cells: a crash+straggler run
// with retry on (the full failure→interrupt→re-queue→recover machinery)
// and a crash-only run with retry off (the drop path and its failure
// split). Kept apart from TestReportGolden's testdata so the zero-fault
// byte-identity claim stays pinned by the untouched legacy golden.
func chaosGoldenSpecs() []Spec {
	var specs []Spec
	for _, s := range ChaosSpecs(true) {
		switch s.Name {
		case "chaos/crash+straggler/mttr=30s/retry=3", "chaos/crash/mttr=30s/retry=0":
			specs = append(specs, s)
		}
	}
	return specs
}

// TestChaosReportGolden pins the seeded-fault Reports byte-for-byte.
// Regenerate (only on an intentional behavior change) with:
//
//	go test ./internal/experiments -run TestChaosReportGolden -update-golden
func TestChaosReportGolden(t *testing.T) {
	specs := chaosGoldenSpecs()
	if len(specs) != 2 {
		t.Fatalf("chaos golden cells = %d, want 2 (did a sweep cell get renamed?)", len(specs))
	}
	entries := make([]goldenEntry, 0, len(specs))
	for _, s := range specs {
		row, err := Run(s.Params)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if row.Failures == 0 {
			t.Fatalf("%s: no faults fired — the golden would pin nothing", s.Name)
		}
		entries = append(entries, goldenEntry{Name: s.Name, Row: row})
	}
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_chaos.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		var wantEntries []goldenEntry
		if err := json.Unmarshal(want, &wantEntries); err == nil && len(wantEntries) == len(entries) {
			for i := range entries {
				g, _ := json.Marshal(entries[i])
				w, _ := json.Marshal(wantEntries[i])
				if !bytes.Equal(g, w) {
					t.Errorf("report diverged at %s:\n got: %s\nwant: %s", entries[i].Name, g, w)
				}
			}
		}
		t.Fatal("seeded-fault reports are not byte-identical to the golden")
	}
}
