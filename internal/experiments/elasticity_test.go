package experiments

import (
	"reflect"
	"testing"
	"time"

	"gpufaas/internal/trace"
)

// shortSweep runs the CI-sized elasticity sweep once per test binary;
// the full 12-minute sweep runs in cmd/faas-bench.
func shortSweep(t *testing.T, workers int) []ElasticityRow {
	t.Helper()
	rows, err := ElasticitySweep(Matrix{Workers: workers}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("sweep returned %d rows, want 6", len(rows))
	}
	return rows
}

func rowFor(t *testing.T, rows []ElasticityRow, scenario, fleet string) ElasticityRow {
	t.Helper()
	for _, r := range rows {
		if r.Scenario == scenario && r.Fleet == fleet {
			return r
		}
	}
	t.Fatalf("no row %s/%s", scenario, fleet)
	return ElasticityRow{}
}

// TestElasticitySweepAcceptance pins the PR's headline claim: on the
// diurnal trace the target-utilization autoscaled fleet consumes fewer
// GPU-seconds than the peak-provisioned fixed fleet at equal-or-better
// p95 latency.
func TestElasticitySweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("elasticity sweep in -short mode")
	}
	rows, err := ElasticitySweep(Matrix{}, false)
	if err != nil {
		t.Fatal(err)
	}
	fixed := rowFor(t, rows, "diurnal", "fixed")
	auto := rowFor(t, rows, "diurnal", "autoscale/target-util")
	if auto.GPUSeconds >= fixed.GPUSeconds {
		t.Errorf("autoscaled fleet used %.1f GPU-seconds, fixed %.1f — no saving",
			auto.GPUSeconds, fixed.GPUSeconds)
	}
	if auto.P95LatencySec > fixed.P95LatencySec {
		t.Errorf("autoscaled p95 %.3fs worse than fixed %.3fs",
			auto.P95LatencySec, fixed.P95LatencySec)
	}
	if auto.Requests != fixed.Requests {
		t.Errorf("request counts differ: %d vs %d", auto.Requests, fixed.Requests)
	}
	if auto.Failed != 0 || fixed.Failed != 0 {
		t.Errorf("failures: auto=%d fixed=%d", auto.Failed, fixed.Failed)
	}
	if len(auto.ScaleEvents) == 0 || auto.ScaleUps == 0 || auto.ScaleDowns == 0 {
		t.Errorf("autoscaled run did not scale: ups=%d downs=%d events=%d",
			auto.ScaleUps, auto.ScaleDowns, len(auto.ScaleEvents))
	}
	if fixed.ScaleUps != 0 || len(fixed.ScaleEvents) != 0 {
		t.Errorf("fixed fleet scaled: %+v", fixed.ScaleEvents)
	}
}

// TestElasticitySweepDeterministic is the grid determinism contract
// extended to elasticity: identical rows — including scale-event logs —
// at any worker count.
func TestElasticitySweepDeterministic(t *testing.T) {
	serial := shortSweep(t, 1)
	parallel := shortSweep(t, 6)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("row %d (%s/%s) differs between worker counts:\nserial:   %+v\nparallel: %+v",
				i, serial[i].Scenario, serial[i].Fleet, serial[i], parallel[i])
		}
	}
	for _, r := range serial {
		if r.Requests == 0 {
			t.Errorf("%s/%s completed no requests", r.Scenario, r.Fleet)
		}
	}
}

// TestAutoscaleSpecConfig checks spec materialization: fresh policies
// per call and the derived horizon.
func TestAutoscaleSpecConfig(t *testing.T) {
	spec := elasticityAutoscale("step")
	wp := ElasticityWorkload(trace.Shape{Kind: trace.ShapeDiurnal}, true)
	a, err := spec.Config(wp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Config(wp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy == b.Policy {
		t.Error("Config must build a fresh policy per run (shared hysteresis state)")
	}
	if want := time.Duration(wp.Minutes)*time.Minute + 30*time.Second; a.Horizon != want {
		t.Errorf("derived horizon = %v, want %v", a.Horizon, want)
	}
	bad := *spec
	bad.Policy = "bogus"
	if _, err := bad.Config(wp); err == nil {
		t.Error("unknown policy should fail")
	}
}
