package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"gpufaas/internal/multicell"
	"gpufaas/internal/obs"
)

// obsTestParams is cellTestParams with the full observability surface
// enabled: tracing at 1-in-4 sampling, decomposition, 15s telemetry.
func obsTestParams() RunParams {
	p := cellTestParams()
	p.Obs = obs.Options{
		Trace:          true,
		SampleMod:      4,
		Breakdown:      true,
		Series:         true,
		SeriesInterval: 15 * time.Second,
	}
	return p
}

// TestObsInstrumentedRun pins the semantic invariants of a fully
// instrumented multi-cell run: the decomposition's components sum to the
// end-to-end latency, every completed request is classified, the
// time-series conserves completions, and the sampled spans internally
// agree with the clock arithmetic the decomposition uses.
func TestObsInstrumentedRun(t *testing.T) {
	res, err := RunCells(CellParams{Run: obsTestParams(), Cells: 4, Router: multicell.RouteHash, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Merged

	b := m.Breakdown
	if b == nil {
		t.Fatal("instrumented run carries no Breakdown")
	}
	if b.Requests != m.Requests {
		t.Errorf("Breakdown.Requests = %d, completed = %d", b.Requests, m.Requests)
	}
	if b.Hits+b.Misses != b.Requests {
		t.Errorf("hits %d + misses %d != requests %d", b.Hits, b.Misses, b.Requests)
	}
	if b.Misses != m.Misses {
		t.Errorf("Breakdown.Misses = %d, report Misses = %d", b.Misses, m.Misses)
	}
	// Queue + load + service is the whole request: the component means
	// must sum to the end-to-end mean (floating-point slack only).
	sum := b.All.QueueWait.MeanSec + b.All.Load.MeanSec + b.All.Service.MeanSec
	if math.Abs(sum-m.AvgLatencySec) > 1e-9*math.Max(1, m.AvgLatencySec) {
		t.Errorf("component means sum to %v, end-to-end mean is %v", sum, m.AvgLatencySec)
	}
	// Hits never load.
	if b.Hit.Load.MeanSec != 0 || b.Hit.Load.P99Sec != 0 {
		t.Errorf("hit-path load is nonzero: %+v", b.Hit.Load)
	}

	s := m.Series
	if s == nil {
		t.Fatal("instrumented run carries no Series")
	}
	if s.IntervalSec != 15 {
		t.Errorf("IntervalSec = %v, want 15", s.IntervalSec)
	}
	if len(s.Points) == 0 {
		t.Fatal("empty merged series")
	}
	var completed int64
	for _, pt := range s.Points {
		completed += pt.Completed
		if len(pt.CellCompleted) != 4 {
			t.Fatalf("point %v carries %d cell loads, want 4", pt.TSec, len(pt.CellCompleted))
		}
	}
	// The series counts completions up to the last crossed boundary; the
	// final partial interval stays unreported, so <= with most of the
	// trace covered.
	if completed > m.Requests || completed < m.Requests/2 {
		t.Errorf("series completions %d vs report %d", completed, m.Requests)
	}

	var spans []obs.Span
	for _, c := range res.Cells {
		spans = append(spans, c.Spans...)
	}
	if int64(len(spans)) != m.SampledSpans {
		t.Fatalf("concatenated spans %d != SampledSpans %d", len(spans), m.SampledSpans)
	}
	if len(spans) == 0 {
		t.Fatal("1-in-4 sampling over 600 requests produced no spans")
	}
	for _, sp := range spans {
		if !obs.Sampled(sp.ReqID, 4) {
			t.Errorf("span for req %d escaped the sample predicate", sp.ReqID)
		}
		if sp.Dispatched < sp.Arrival || sp.Finished < sp.Dispatched {
			t.Errorf("req %d: non-monotonic lifecycle %d/%d/%d", sp.ReqID, sp.Arrival, sp.Dispatched, sp.Finished)
		}
		if got := sp.Finished - sp.Dispatched; got != sp.LoadTime+sp.InferTime {
			t.Errorf("req %d: dispatch-to-finish %v != load %v + infer %v", sp.ReqID, got, sp.LoadTime, sp.InferTime)
		}
		if sp.Hit && sp.LoadTime != 0 {
			t.Errorf("req %d: hit with nonzero load %v", sp.ReqID, sp.LoadTime)
		}
	}
}

// TestObsDeterminism is the obs half of the worker-count determinism
// claim, in-process: the instrumented run's merged report, span set and
// rendered trace-event JSON are byte-identical at workers=1 and
// workers=4. (`make obs-determinism` pins the same property through the
// faas-bench binary.)
func TestObsDeterminism(t *testing.T) {
	type snapshot struct {
		merged []byte
		trace  []byte
	}
	take := func(workers int) snapshot {
		res, err := RunCells(CellParams{Run: obsTestParams(), Cells: 4, Router: multicell.RouteLeastLoaded, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.WallSeconds = 0
		merged, err := json.Marshal(res.Merged)
		if err != nil {
			t.Fatal(err)
		}
		var spans []obs.Span
		for _, c := range res.Cells {
			spans = append(spans, c.Spans...)
		}
		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf, spans); err != nil {
			t.Fatal(err)
		}
		return snapshot{merged: merged, trace: buf.Bytes()}
	}
	serial, pooled := take(1), take(4)
	if !bytes.Equal(serial.merged, pooled.merged) {
		t.Error("merged reports differ between workers=1 and workers=4")
	}
	if !bytes.Equal(serial.trace, pooled.trace) {
		t.Error("trace-event exports differ between workers=1 and workers=4")
	}
}

// TestObsDisabledIsFree pins that the zero Options value leaves the
// report untouched — nil Breakdown/Series, zero spans — so the goldens
// (and every uninstrumented run) marshal byte-identically to the
// pre-observability layout.
func TestObsDisabledIsFree(t *testing.T) {
	res, err := RunCells(CellParams{Run: cellTestParams(), Cells: 2, Router: multicell.RouteHash})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Merged
	if m.Breakdown != nil || m.Series != nil || m.SampledSpans != 0 {
		t.Errorf("disabled obs leaked into the report: breakdown=%v series=%v spans=%d",
			m.Breakdown, m.Series, m.SampledSpans)
	}
	for i, c := range res.Cells {
		if len(c.Spans) != 0 || c.Report.Breakdown != nil || c.Report.Series != nil || c.Report.SampledSpans != 0 {
			t.Errorf("cell %d leaked obs state", i)
		}
	}
}
