package experiments

// The availability sweep: the deterministic fault injector
// (internal/chaos) swept over fault mode × MTTR × retry policy on the
// paper's 12-GPU testbed with batching on (MaxBatch=8, so crashes
// interrupt whole in-flight batches and stragglers stack on the
// batch-aware service-time model).
//
// The grid is {no-faults, crash-only, crash+straggler} × MTTR × {retry
// off, retry on}. The claim the committed BENCH_chaos.json pins: with
// the retry policy on, goodput holds (interrupted requests re-queue and
// complete) and the tail stays bounded, where retry-off bleeds every
// interrupted request — so retry-on strictly dominates retry-off on
// goodput in every crash cell.
//
// Everything is sim time and every fault instant is a pure function of
// (seed, device ordinal), so the sweep is deterministic at any worker
// count and joins the CI determinism gates. Like batch and overload it
// is excluded from `-exp all` and runs via `faas-bench -exp chaos`.

import (
	"fmt"
	"io"
	"time"

	"gpufaas/internal/chaos"
	"gpufaas/internal/core"
)

// ChaosSeed drives every sampled fault time in the sweep.
const ChaosSeed uint64 = 42

// ChaosRetryAttempts is the retry-on policy: the first try plus up to
// two failure-interrupted re-queues.
const ChaosRetryAttempts = 3

// ChaosMTTRs are the swept mean-times-to-repair.
var ChaosMTTRs = []time.Duration{30 * time.Second, 2 * time.Minute}

// chaosMode is one swept fault model.
type chaosMode struct {
	name      string
	crash     bool
	straggler bool
}

// chaosModes returns the swept fault models in row order.
func chaosModes() []chaosMode {
	return []chaosMode{
		{name: "none"},
		{name: "crash", crash: true},
		{name: "crash+straggler", crash: true, straggler: true},
	}
}

// chaosWorkload is the sweep's workload: flat load at working set 15
// over 12 minutes, 6 in short mode, at 2x the paper's nominal rate —
// busy enough that crashes usually abort an in-flight (often batched)
// launch, but far from saturation, so lost capacity and wasted attempts
// (not a standing queue) are what move the numbers.
func chaosWorkload(short bool) WorkloadParams {
	wp := DefaultWorkload(15)
	wp.Minutes = 12
	if short {
		wp.Minutes = 6
	}
	wp.RequestsPerMinute = 650
	return wp
}

// chaosConfig builds one cell's fault model. MTBF is chosen so a
// 12-GPU fleet takes several crashes over the trace without collapsing:
// per-device mean 2x the trace length ≈ half the fleet crashes once.
func chaosConfig(mode chaosMode, mttr time.Duration, wp WorkloadParams) *chaos.Config {
	if !mode.crash && !mode.straggler {
		return nil
	}
	horizon := time.Duration(wp.Minutes)*time.Minute + 2*time.Minute
	cc := &chaos.Config{
		Seed:    ChaosSeed,
		MTTR:    mttr,
		Horizon: horizon,
	}
	if mode.crash {
		cc.MTBF = 2 * time.Duration(wp.Minutes) * time.Minute
	}
	if mode.straggler {
		cc.StragglerEvery = 4 * time.Minute
		cc.StragglerFactor = 3
		cc.StragglerWindow = 30 * time.Second
	}
	return cc
}

// ChaosRow is one availability-sweep point.
type ChaosRow struct {
	Mode    string  `json:"mode"`
	MTTRSec float64 `json:"mttr_sec"`
	// RetryAttempts is the retry policy's total attempt budget (0 =
	// retry off: an interrupted request fails outright).
	RetryAttempts int `json:"retry_attempts"`

	Requests int64 `json:"requests"`
	Failed   int64 `json:"failed"`
	// Offered is completed + failed: the conservation identity every
	// chaos run must satisfy against the injected trace.
	Offered     int64   `json:"offered"`
	MakespanSec float64 `json:"makespan_sec"`
	// GoodputRPS is completed requests per second of trace time. The
	// denominator is the fixed injection window, not the per-cell
	// makespan, so cells compare apples-to-apples: a retried request
	// that completes late counts as goodput without the drain tail
	// diluting the rate (the tail is visible in makespan_sec).
	GoodputRPS float64 `json:"goodput_rps"`
	// Availability is completed / offered — the sweep's headline axis.
	Availability float64 `json:"availability"`

	AvgLatencySec float64 `json:"avg_latency_sec"`
	P50LatencySec float64 `json:"p50_latency_sec"`
	P95LatencySec float64 `json:"p95_latency_sec"`
	P99LatencySec float64 `json:"p99_latency_sec"`

	// Fault accounting: crash events, attempts they aborted, re-queued
	// attempts granted, and the per-reason failure split.
	Failures       int64            `json:"failures,omitempty"`
	Interrupted    int64            `json:"interrupted,omitempty"`
	Retries        int64            `json:"retries,omitempty"`
	FailedByReason map[string]int64 `json:"failed_by_reason,omitempty"`
}

// chaosCell is one sweep cell's identity.
type chaosCell struct {
	mode  chaosMode
	mttr  time.Duration
	retry int // total attempts; 0 = retry off
}

// chaosCells returns the grid in row order: one fault-free baseline
// (retry is a no-op without faults), then fault mode × MTTR × retry.
func chaosCells() []chaosCell {
	cells := []chaosCell{{mode: chaosMode{name: "none"}}}
	for _, mode := range chaosModes() {
		if !mode.crash && !mode.straggler {
			continue
		}
		for _, mttr := range ChaosMTTRs {
			for _, retry := range []int{0, ChaosRetryAttempts} {
				cells = append(cells, chaosCell{mode: mode, mttr: mttr, retry: retry})
			}
		}
	}
	return cells
}

// ChaosSpecs returns the sweep grid as Matrix specs.
func ChaosSpecs(short bool) []Spec {
	wp := chaosWorkload(short)
	cells := chaosCells()
	specs := make([]Spec, len(cells))
	for i, cell := range cells {
		name := fmt.Sprintf("chaos/%s", cell.mode.name)
		if cell.mode.crash || cell.mode.straggler {
			name += fmt.Sprintf("/mttr=%v/retry=%d", cell.mttr, cell.retry)
		}
		specs[i] = Spec{
			Name: name,
			Params: RunParams{
				Policy:   core.LALBO3,
				MaxBatch: 8,
				Workload: wp,
				Chaos:    chaosConfig(cell.mode, cell.mttr, wp),
				Retry:    core.RetryPolicy{MaxAttempts: cell.retry},
			},
		}
	}
	return specs
}

// ChaosSweep runs the availability grid and maps the reports into rows.
func ChaosSweep(m Matrix, short bool) ([]ChaosRow, error) {
	rows, err := m.Run(ChaosSpecs(short))
	if err != nil {
		return nil, err
	}
	cells := chaosCells()
	trace := time.Duration(chaosWorkload(short).Minutes) * time.Minute
	out := make([]ChaosRow, len(rows))
	for i, row := range rows {
		out[i] = chaosRowFrom(cells[i], row, trace)
	}
	return out, nil
}

// chaosRowFrom projects one run's Report onto the sweep row. trace is
// the injection window, the shared goodput denominator.
func chaosRowFrom(cell chaosCell, row Row, trace time.Duration) ChaosRow {
	cr := ChaosRow{
		Mode:           cell.mode.name,
		MTTRSec:        cell.mttr.Seconds(),
		RetryAttempts:  cell.retry,
		Requests:       row.Requests,
		Failed:         row.Failed,
		Offered:        row.Requests + row.Failed,
		MakespanSec:    row.Makespan.Seconds(),
		AvgLatencySec:  row.AvgLatencySec,
		P50LatencySec:  row.P50LatencySec,
		P95LatencySec:  row.P95LatencySec,
		P99LatencySec:  row.P99LatencySec,
		Failures:       row.Failures,
		Interrupted:    row.Interrupted,
		Retries:        row.Retries,
		FailedByReason: row.FailedByReason,
	}
	if trace > 0 {
		cr.GoodputRPS = float64(cr.Requests) / trace.Seconds()
	}
	if cr.Offered > 0 {
		cr.Availability = float64(cr.Requests) / float64(cr.Offered)
	}
	return cr
}

// WriteChaosTable renders the availability sweep.
func WriteChaosTable(w io.Writer, rows []ChaosRow) {
	fmt.Fprintf(w, "%-16s %6s %5s %7s %7s %9s %8s %6s %8s %8s %6s %6s %6s\n",
		"mode", "mttr", "retry", "reqs", "failed", "avail", "goodput",
		"avg(s)", "p95(s)", "p99(s)", "crash", "intr", "requeue")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %6.0f %5d %7d %7d %9.4f %8.2f %6.3f %8.3f %8.3f %6d %6d %6d\n",
			r.Mode, r.MTTRSec, r.RetryAttempts, r.Requests, r.Failed,
			r.Availability, r.GoodputRPS, r.AvgLatencySec, r.P95LatencySec,
			r.P99LatencySec, r.Failures, r.Interrupted, r.Retries)
	}
}
