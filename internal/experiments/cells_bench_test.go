package experiments

import (
	"fmt"
	"testing"
	"time"

	"gpufaas/internal/multicell"
	"gpufaas/internal/trace"
)

// benchRouter measures one front-door routing decision at the 16-cell
// shard width; these back the router_route rows in the gpufaas-bench/v1
// snapshot (and so the benchregress gate).
func benchRouter(b *testing.B, pol multicell.Policy) {
	router, err := multicell.NewRouter(multicell.RouterConfig{Cells: 16, Policy: pol, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]trace.Request, 1024)
	for i := range reqs {
		reqs[i] = trace.Request{
			ID:       int64(i),
			Function: fmt.Sprintf("f%03d", i%97),
			Model:    fmt.Sprintf("m%02d", i%31),
			Arrival:  time.Duration(i) * 10 * time.Millisecond,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Route(reqs[i%len(reqs)])
	}
}

func BenchmarkRouterRouteHash(b *testing.B)      { benchRouter(b, multicell.RouteHash) }
func BenchmarkRouterRouteAffinity(b *testing.B)  { benchRouter(b, multicell.RouteAffinity) }
func BenchmarkRouterRouteLeastLoad(b *testing.B) { benchRouter(b, multicell.RouteLeastLoaded) }

// BenchmarkMultiCellReplay runs a small sharded replay end to end — 16
// GPUs in 4 cells, router filter, streaming injectors, merged roll-up —
// the per-run overhead the cell sweep pays on top of the cells' own
// simulation work.
func BenchmarkMultiCellReplay(b *testing.B) {
	p := cellTestParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCells(CellParams{Run: p, Cells: 4, Router: multicell.RouteHash}); err != nil {
			b.Fatal(err)
		}
	}
}
