package experiments

// The scale sweep: the paper evaluates 12 GPUs over 6-minute traces;
// the ROADMAP asks for production fleets and hour-long streams. This
// grid pushes the indexed scheduler and the streaming replay path to
// 1024 GPUs × 60 minutes: every cell replays through
// cluster.RunWorkloadStream (peak memory O(in-flight), pinned by the
// arena counters in each row) with the per-GPU arrival rate held at the
// paper's operating point (325 requests/minute per 12 GPUs), so latency
// shape stays comparable across fleet sizes while the queue and holder
// structures grow with the fleet.

import (
	"fmt"
	"io"

	"gpufaas/internal/core"
	"gpufaas/internal/models"
	"gpufaas/internal/obs"
)

// ScaleFleets are the swept fleet sizes (GPUs-per-node stays at the
// paper's 4).
var ScaleFleets = []int{64, 256, 1024}

// ScaleMinutes are the swept trace lengths.
var ScaleMinutes = []int{12, 60}

// scaleWorkingSet grows the working set with the fleet (capped by the
// synthesizer's function population) so aggregate memory pressure — the
// force behind the paper's locality mechanics — survives the scale-up
// instead of every model fitting everywhere.
func scaleWorkingSet(gpus int) int {
	ws := gpus
	if ws > 512 {
		ws = 512
	}
	return ws
}

// ScaleSpecs returns the fleet × trace-length grid. Short mode drops the
// 1024-GPU column and the hour-long row — the CI smoke; the full grid is
// the snapshot run.
func ScaleSpecs(short bool) []Spec {
	fleets, lengths := ScaleFleets, ScaleMinutes
	if short {
		fleets = []int{64, 256}
		lengths = []int{12}
	}
	var specs []Spec
	for _, gpus := range fleets {
		for _, minutes := range lengths {
			ws := scaleWorkingSet(gpus)
			specs = append(specs, Spec{
				Name: fmt.Sprintf("scale/gpus=%d/min=%d", gpus, minutes),
				Params: RunParams{
					Policy:      core.LALBO3,
					WorkingSet:  ws,
					Nodes:       gpus / 4,
					GPUsPerNode: 4,
					Streaming:   true,
					// Latency decomposition on every scale row: a p95
					// regression across fleet sizes names its component.
					Obs: obs.Options{Breakdown: true},
					Workload: WorkloadParams{
						Minutes:           minutes,
						RequestsPerMinute: gpus * 325 / 12,
						WorkingSet:        ws,
						Batch:             models.EvalBatchSize,
						Seed:              1,
					},
				},
			})
		}
	}
	return specs
}

// ScaleRow is one scale-sweep cell: the usual latency/locality metrics
// plus the streaming-memory counters that certify the O(in-flight)
// claim, and the dead-ordinal signal.
type ScaleRow struct {
	Fleet         int
	Minutes       int
	WorkingSet    int
	Requests      int64
	AvgLatencySec float64
	P95LatencySec float64
	MissRatio     float64
	SMUtilization float64
	// Latency decomposition (Report.Breakdown): p95 of each additive
	// component, plus the load p95 over misses only.
	QueueP95Sec    float64
	LoadP95Sec     float64
	ServiceP95Sec  float64
	MissLoadP95Sec float64
	// PeakInflight / ArenaAllocated / ArenaReused are the request-arena
	// counters: ArenaAllocated tracks the in-flight peak, not the trace
	// length.
	PeakInflight   int64
	ArenaAllocated int64
	ArenaReused    int64
	// OrdBound vs Fleet measures dead-ordinal pressure (equal for these
	// fixed fleets; diverges under autoscaler churn).
	OrdBound int
	// MaxEventQueueLen / PeakLocalQueue complete the capacity-planning
	// telemetry: the peak discrete-event queue length and the deepest
	// single GPU local queue over the run.
	MaxEventQueueLen int
	PeakLocalQueue   int
}

// ScaleSweep runs the grid and returns one row per cell, in grid order
// — byte-identical at any worker count (each cell owns its cluster,
// engine and stream; seeds are fixed by the spec).
func ScaleSweep(m Matrix, short bool) ([]ScaleRow, error) {
	specs := ScaleSpecs(short)
	rows, err := m.Run(specs)
	if err != nil {
		return nil, err
	}
	out := make([]ScaleRow, len(rows))
	for i, r := range rows {
		p := specs[i].Params
		out[i] = ScaleRow{
			Fleet:         p.Nodes * p.GPUsPerNode,
			Minutes:       p.Workload.Minutes,
			WorkingSet:    r.WorkingSet,
			Requests:      r.Requests,
			AvgLatencySec: r.AvgLatencySec,
			P95LatencySec: r.P95LatencySec,
			MissRatio:     r.MissRatio,
			SMUtilization: r.SMUtilization,
			OrdBound:      r.OrdBound,

			MaxEventQueueLen: r.MaxEventQueueLen,
			PeakLocalQueue:   r.PeakLocalQueue,
		}
		if b := r.Breakdown; b != nil {
			out[i].QueueP95Sec = b.All.QueueWait.P95Sec
			out[i].LoadP95Sec = b.All.Load.P95Sec
			out[i].ServiceP95Sec = b.All.Service.P95Sec
			out[i].MissLoadP95Sec = b.Miss.Load.P95Sec
		}
		if st := r.Streaming; st != nil {
			out[i].PeakInflight = st.PeakInflight
			out[i].ArenaAllocated = st.ArenaAllocated
			out[i].ArenaReused = st.ArenaReused
		}
	}
	return out, nil
}

// WriteScaleTable renders the sweep.
func WriteScaleTable(w io.Writer, rows []ScaleRow) {
	fmt.Fprintf(w, "%6s %5s %5s %9s %12s %10s %8s %9s %8s %9s %8s %10s %10s %8s %8s\n",
		"gpus", "min", "ws", "requests", "avg_lat(s)", "p95(s)", "miss", "queue_p95", "load_p95", "svc_p95", "sm_util", "peak_infl", "arena_new", "max_evq", "peak_lq")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %5d %5d %9d %12.3f %10.3f %8.4f %9.3f %8.3f %9.3f %8.4f %10d %10d %8d %8d\n",
			r.Fleet, r.Minutes, r.WorkingSet, r.Requests, r.AvgLatencySec,
			r.P95LatencySec, r.MissRatio, r.QueueP95Sec, r.LoadP95Sec, r.ServiceP95Sec,
			r.SMUtilization, r.PeakInflight, r.ArenaAllocated,
			r.MaxEventQueueLen, r.PeakLocalQueue)
	}
}
