package experiments

import "math/rand"

// newRand builds the deterministic source used for workload shuffling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
