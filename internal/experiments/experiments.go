// Package experiments reproduces the paper's evaluation (§V): it builds
// the Azure-trace workload exactly as §V-A1 describes, runs it through the
// simulated 12-GPU cluster under each scheduler, and emits the data series
// behind Table I and Figures 4–7. The benchmark harness (bench_test.go)
// and cmd/faas-bench both drive this package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"gpufaas/internal/cache"
	"gpufaas/internal/chaos"
	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/models"
	"gpufaas/internal/obs"
	"gpufaas/internal/trace"
)

// WorkloadParams selects the §V-A1 workload construction.
type WorkloadParams struct {
	// Minutes of trace to replay (paper: first 6 minutes).
	Minutes int
	// RequestsPerMinute after normalization (paper: 325 for 12 GPUs).
	RequestsPerMinute int
	// WorkingSet is the number of most-popular functions kept
	// (paper: 15, 25, 35).
	WorkingSet int
	// Batch is the inference batch size (paper: 32).
	Batch int
	// Seed drives both the trace synthesizer and the per-minute shuffle.
	Seed int64
	// Synth optionally overrides the Azure-shape synthesizer config;
	// zero value uses a scaled default.
	Synth trace.SynthConfig
	// Shape modulates the per-minute request budget (diurnal, burst);
	// the zero value is the paper's flat load.
	Shape trace.Shape
}

// DefaultWorkload returns the paper's workload for a working-set size.
func DefaultWorkload(workingSet int) WorkloadParams {
	return WorkloadParams{
		Minutes:           6,
		RequestsPerMinute: 325,
		WorkingSet:        workingSet,
		Batch:             models.EvalBatchSize,
		Seed:              1,
	}
}

// synthDefaults returns a synthesizer config that preserves the published
// trace statistics but keeps generation cheap: the tail only needs to be
// large enough that TopN(workingSet) behaves like the real trace.
func synthDefaults(seed int64) trace.SynthConfig {
	return trace.SynthConfig{
		Functions:            2000,
		Minutes:              6,
		InvocationsPerMinute: 40000,
		TopShare:             0.56,
		TopCount:             15,
		Seed:                 seed,
	}
}

// BuiltWorkload is a materialized §V-A1 workload. Each trace function is
// mapped to its own model *instance* — same architecture and profile as a
// Table I model, but separately-trained weights, hence a distinct cache
// item. This is what the paper means by "map each unique function in the
// trace to a unique model": a working set of 35 functions is 35 distinct
// cache items even though only 22 architectures exist, and it is exactly
// this that overwhelms the 12 GPUs' aggregate memory at the larger working
// sets.
type BuiltWorkload struct {
	Requests []trace.Request
	// Zoo contains the per-function model instances (named
	// "<arch>@f<rank>") the cluster must be built with.
	Zoo *models.Zoo
	// TopModel is the instance used by the most popular function
	// (tracked for the Fig. 6 duplicates metric).
	TopModel string
}

// workloadTrace runs the §V-A1 construction up to (but excluding) the
// request expansion: the normalized working-set trace, the
// function→instance mapping, the derived zoo and the tracked top model.
// Workload materializes the expansion; StreamWorkload wraps it in an
// ArrivalStream.
func workloadTrace(p WorkloadParams, base *models.Zoo) (*trace.Trace, trace.ModelMapping, *models.Zoo, string, error) {
	synth := p.Synth
	if synth.Functions == 0 {
		synth = synthDefaults(p.Seed)
	}
	if synth.Minutes < p.Minutes {
		synth.Minutes = p.Minutes
	}
	tr, err := trace.Synthesize(synth)
	if err != nil {
		return nil, nil, nil, "", err
	}
	budgets, err := p.Shape.Budgets(p.Minutes, p.RequestsPerMinute)
	if err != nil {
		return nil, nil, nil, "", err
	}
	w, err := tr.FirstMinutes(p.Minutes).TopN(p.WorkingSet).
		RedistributeMinutesBudgets(budgets, trace.WorkloadZipfS)
	if err != nil {
		return nil, nil, nil, "", err
	}

	// One model instance per working-set function, architectures dealt
	// round-robin in size order so sizes spread evenly across popularity
	// ranks.
	bySize := base.BySize()
	if len(bySize) == 0 {
		return nil, nil, nil, "", fmt.Errorf("experiments: empty base zoo")
	}
	mapping := make(trace.ModelMapping, len(w.Functions))
	instances := make([]models.Model, 0, len(w.Functions))
	for i, fn := range w.Functions {
		inst := bySize[i%len(bySize)]
		inst.Name = fmt.Sprintf("%s@f%02d", inst.Name, i)
		instances = append(instances, inst)
		mapping[fn] = inst.Name
	}
	zoo, err := models.NewZoo(instances)
	if err != nil {
		return nil, nil, nil, "", err
	}
	top := ""
	if len(w.Functions) > 0 {
		top = mapping[w.Functions[0]]
	}
	return w, mapping, zoo, top, nil
}

// Workload materializes the request stream and the derived model zoo.
func Workload(p WorkloadParams, base *models.Zoo) (BuiltWorkload, error) {
	w, mapping, zoo, top, err := workloadTrace(p, base)
	if err != nil {
		return BuiltWorkload{}, err
	}
	reqs, err := w.BuildRequests(mapping, p.Batch, newRand(p.Seed))
	if err != nil {
		return BuiltWorkload{}, err
	}
	return BuiltWorkload{Requests: reqs, Zoo: zoo, TopModel: top}, nil
}

// BuiltStream is BuiltWorkload's streaming form: the same workload as an
// arrival iterator, so peak memory is one trace minute plus the
// in-flight set instead of the whole invocation stream.
type BuiltStream struct {
	Stream   *trace.ArrivalStream
	Zoo      *models.Zoo
	TopModel string
}

// StreamWorkload builds the workload as an ArrivalStream. chunk caps
// requests per injected batch (<= 0: one trace minute).
func StreamWorkload(p WorkloadParams, base *models.Zoo, chunk int) (BuiltStream, error) {
	w, mapping, zoo, top, err := workloadTrace(p, base)
	if err != nil {
		return BuiltStream{}, err
	}
	s, err := w.Stream(mapping, p.Batch, newRand(p.Seed), chunk)
	if err != nil {
		return BuiltStream{}, err
	}
	return BuiltStream{Stream: s, Zoo: zoo, TopModel: top}, nil
}

// RunParams configures one experiment run.
type RunParams struct {
	Policy core.Policy
	// O3Limit overrides the LALBO3 starvation limit; nil uses the
	// paper's default of 25. An explicit 0 degenerates LALBO3 to LALB
	// (the Fig. 7 sweep's first point).
	O3Limit *int
	// DisableLocalQueue ablates Algorithm 2's busy-GPU parking.
	DisableLocalQueue bool
	WorkingSet        int
	CachePolicy       string
	// Cluster overrides; zero values use the paper's testbed.
	Nodes       int
	GPUsPerNode int
	GPUMemory   int64
	// Fleet declares a heterogeneous device-class mix; when set it
	// overrides Nodes/GPUsPerNode/GPUMemory and the run's Report gains
	// the Cost / ClassUsage columns.
	Fleet    cluster.FleetSpec
	Workload WorkloadParams // zero value -> DefaultWorkload(WorkingSet)
	// Autoscale attaches an autoscaler to the run's cluster. It is a
	// value spec (not a live autoscale.Config) so every run materializes
	// a fresh, stateless-by-construction policy — grid cells must not
	// share hysteresis counters across workers.
	Autoscale *AutoscaleSpec
	// Streaming replays the workload through an ArrivalStream and
	// cluster.RunWorkloadStream — peak memory O(in-flight), with the
	// Report carrying Streaming statistics — instead of materializing
	// the full request slice. The scale sweep runs this way.
	Streaming bool
	// ScanPlacement runs the scheduler's reference scan path (the
	// benchmark baseline; decisions are identical to the indexed path).
	ScanPlacement bool
	// StreamChunk caps arrivals per injected batch under Streaming
	// (<= 0: one trace minute per batch).
	StreamChunk int
	// Obs selects the run's observability features (lifecycle tracing,
	// latency decomposition, time-series telemetry); zero disables all.
	Obs obs.Options
	// MaxBatch / BatchWait enable coalesced same-model dispatch
	// (cluster.Config.MaxBatch / BatchWait). MaxBatch <= 1 keeps the
	// run byte-identical to the pre-batching build.
	MaxBatch  int
	BatchWait time.Duration
	// Chaos attaches the deterministic fault injector
	// (cluster.Config.Chaos); nil injects nothing and keeps the run
	// byte-identical to a fault-free build. The spec is deep-copied per
	// run so grid cells cannot share mutable state.
	Chaos *chaos.Config
	// Retry is the mid-flight failure retry policy
	// (cluster.Config.Retry); the zero value fails interrupted requests
	// outright.
	Retry core.RetryPolicy
}

// Row is one experiment result: a point in Figures 4a/4b/4c/5/6.
type Row struct {
	Policy     string
	WorkingSet int
	cluster.Report
}

// buildConfig resolves RunParams into the cluster configuration (sans
// zoo) and the effective workload. Run and the multi-cell runner share
// this construction so the single- and sharded-cell paths cannot drift.
func buildConfig(p RunParams) (cluster.Config, WorkloadParams, error) {
	cfg := cluster.DefaultConfig()
	cfg.Policy = p.Policy
	cfg.O3Limit = core.DefaultO3Limit
	if p.O3Limit != nil {
		cfg.O3Limit = *p.O3Limit
	}
	cfg.DisableLocalQueue = p.DisableLocalQueue
	cfg.ScanPlacement = p.ScanPlacement
	if p.CachePolicy != "" {
		cfg.CachePolicy = p.CachePolicy
	}
	if p.Nodes > 0 {
		cfg.Nodes = p.Nodes
	}
	if p.GPUsPerNode > 0 {
		cfg.GPUsPerNode = p.GPUsPerNode
	}
	if p.GPUMemory > 0 {
		cfg.GPUMemory = p.GPUMemory
	}
	if p.Fleet != nil {
		// Deep-copy: cluster.New normalizes the spec in place, and grid
		// cells must not share mutable state across Matrix workers.
		cfg.Fleet = append(cluster.FleetSpec(nil), p.Fleet...)
	}
	cfg.Obs = p.Obs
	cfg.MaxBatch = p.MaxBatch
	cfg.BatchWait = p.BatchWait
	if p.Chaos != nil {
		cc := *p.Chaos
		cc.Script = append([]chaos.Fault(nil), p.Chaos.Script...)
		cfg.Chaos = &cc
	}
	cfg.Retry = p.Retry
	wp := p.Workload
	if wp.Minutes == 0 {
		wp = DefaultWorkload(p.WorkingSet)
	}
	if p.Autoscale != nil {
		ac, err := p.Autoscale.Config(wp)
		if err != nil {
			return cluster.Config{}, WorkloadParams{}, err
		}
		cfg.Autoscale = ac
	}
	return cfg, wp, nil
}

// Run executes one experiment and returns its row.
func Run(p RunParams) (Row, error) {
	cfg, wp, err := buildConfig(p)
	if err != nil {
		return Row{}, err
	}
	// The two replay modes differ only in how the workload is built and
	// fed; everything around them (cluster construction, top-model
	// tracking, the row shape) is shared so the paths cannot drift.
	var topModel string
	var replay func(*cluster.Cluster) (cluster.Report, error)
	if p.Streaming {
		built, err := StreamWorkload(wp, models.Default(), p.StreamChunk)
		if err != nil {
			return Row{}, err
		}
		cfg.Zoo = built.Zoo
		topModel = built.TopModel
		replay = func(c *cluster.Cluster) (cluster.Report, error) {
			return c.RunWorkloadStream(built.Stream)
		}
	} else {
		built, err := Workload(wp, models.Default())
		if err != nil {
			return Row{}, err
		}
		cfg.Zoo = built.Zoo
		topModel = built.TopModel
		replay = func(c *cluster.Cluster) (cluster.Report, error) {
			return c.RunWorkload(built.Requests)
		}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return Row{}, err
	}
	if topModel != "" {
		c.TrackModel(topModel)
	}
	rep, err := replay(c)
	if err != nil {
		return Row{}, err
	}
	return Row{Policy: cfg.Policy.String(), WorkingSet: wp.WorkingSet, Report: rep}, nil
}

// PaperWorkingSets are the working-set sizes of Figures 4–6.
var PaperWorkingSets = []int{15, 25, 35}

// PaperPolicies are the schedulers compared in Figures 4–6.
var PaperPolicies = []core.Policy{core.LB, core.LALB, core.LALBO3}

// Fig4Specs returns the scheduler × working-set grid behind Figures 4a
// (average latency), 4b (cache miss ratio), 4c (SM utilization), 5
// (false-miss ratio) and 6 (top-model duplicates), in row order
// (working set outer, policy inner).
func Fig4Specs() []Spec {
	var specs []Spec
	for _, ws := range PaperWorkingSets {
		for _, pol := range PaperPolicies {
			specs = append(specs, Spec{
				Name:   fmt.Sprintf("fig4/%v/ws=%d", pol, ws),
				Params: RunParams{Policy: pol, WorkingSet: ws},
			})
		}
	}
	return specs
}

// Fig4Matrix runs the full scheduler × working-set matrix across the
// default worker pool.
func Fig4Matrix() ([]Row, error) { return Fig4MatrixWith(Matrix{}) }

// Fig4MatrixWith is Fig4Matrix under an explicit runner (worker count,
// streaming observer).
func Fig4MatrixWith(m Matrix) ([]Row, error) { return m.Run(Fig4Specs()) }

// Fig7Point is one x-value of the O3 sensitivity sweep (§V-E).
type Fig7Point struct {
	Limit               int
	AvgLatencySec       float64
	MissRatio           float64
	LatencyVarianceSec2 float64
}

// Fig7Limits are the paper's swept O3 limits ("from zero to 45").
var Fig7Limits = []int{0, 5, 10, 15, 20, 25, 30, 35, 40, 45}

// Fig7Specs returns the O3 starvation-limit sweep grid, one cell per
// entry of Fig7Limits in order.
func Fig7Specs() []Spec {
	specs := make([]Spec, 0, len(Fig7Limits))
	for _, limit := range Fig7Limits {
		limit := limit
		specs = append(specs, Spec{
			Name:   fmt.Sprintf("fig7/limit=%d", limit),
			Params: RunParams{Policy: core.LALBO3, O3Limit: &limit, WorkingSet: 35},
		})
	}
	return specs
}

// Fig7Sweep reproduces Fig. 7: the LALBO3 scheduler at working set 35 with
// the starvation limit swept from 0 to 45.
func Fig7Sweep() ([]Fig7Point, error) { return Fig7SweepWith(Matrix{}) }

// Fig7SweepWith is Fig7Sweep under an explicit runner.
func Fig7SweepWith(m Matrix) ([]Fig7Point, error) {
	rows, err := m.Run(Fig7Specs())
	if err != nil {
		return nil, err
	}
	pts := make([]Fig7Point, len(rows))
	for i, row := range rows {
		pts[i] = Fig7Point{
			Limit:               Fig7Limits[i],
			AvgLatencySec:       row.AvgLatencySec,
			MissRatio:           row.MissRatio,
			LatencyVarianceSec2: row.LatencyVarianceSec2,
		}
	}
	return pts, nil
}

// TableIRow is one profiled model (Table I).
type TableIRow struct {
	Model       string
	OccupancyMB int64
	LoadTime    time.Duration
	InferTime   time.Duration
}

// simRunner profiles models against the simulated GPU timing model; it is
// the paper's profiling procedure (§IV-A) executed on the simulator.
type simRunner struct {
	gpuType  string
	profiles *models.ProfileStore
}

func (r simRunner) GPUType() string { return r.gpuType }
func (r simRunner) MeasureLoad(m models.Model) time.Duration {
	p, ok := r.profiles.Get(r.gpuType, m.Name)
	if !ok {
		return 0
	}
	return p.LoadTime
}
func (r simRunner) MeasureInfer(m models.Model, batch int) time.Duration {
	p, ok := r.profiles.Get(r.gpuType, m.Name)
	if !ok {
		return 0
	}
	return p.InferTime(batch)
}

// TableI runs the profiling procedure over the full zoo and returns the
// regenerated table (occupancy, load time, inference time at batch 32).
func TableI() ([]TableIRow, error) {
	zoo := models.Default()
	store := models.TableProfiles("rtx2080", zoo)
	runner := simRunner{gpuType: "rtx2080", profiles: store}
	fitted := models.NewProfileStore()
	if err := models.ProfileZoo(runner, zoo, models.DefaultProfileBatches, fitted); err != nil {
		return nil, err
	}
	var rows []TableIRow
	for _, m := range zoo.BySize() {
		p, ok := fitted.Get("rtx2080", m.Name)
		if !ok {
			return nil, fmt.Errorf("experiments: missing fitted profile for %s", m.Name)
		}
		rows = append(rows, TableIRow{
			Model:       m.Name,
			OccupancyMB: m.OccupancyMB,
			LoadTime:    p.LoadTime,
			InferTime:   p.InferTime(models.EvalBatchSize),
		})
	}
	return rows, nil
}

// CachePolicies are the replacement policies compared by the §VI
// ablation, in presentation order.
var CachePolicies = []string{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyLFU}

// CachePolicySpecs returns the §VI replacement-policy ablation grid at
// the working-set size, one cell per CachePolicies entry in order.
func CachePolicySpecs(workingSet int) []Spec {
	specs := make([]Spec, len(CachePolicies))
	for i, pol := range CachePolicies {
		specs[i] = Spec{
			Name:   "cachepolicy/" + pol,
			Params: RunParams{Policy: core.LALBO3, WorkingSet: workingSet, CachePolicy: pol},
		}
	}
	return specs
}

// CachePolicyComparison is the §VI ablation: the same workload under LRU,
// FIFO and LFU replacement with the LALBO3 scheduler.
func CachePolicyComparison(workingSet int) (map[string]Row, error) {
	return CachePolicyComparisonWith(Matrix{}, workingSet)
}

// CachePolicyComparisonWith is CachePolicyComparison under an explicit
// runner.
func CachePolicyComparisonWith(m Matrix, workingSet int) (map[string]Row, error) {
	rows, err := m.Run(CachePolicySpecs(workingSet))
	if err != nil {
		return nil, err
	}
	out := make(map[string]Row, len(rows))
	for i, row := range rows {
		out[CachePolicies[i]] = row
	}
	return out, nil
}

// GPUScalingSpecs returns the cluster-growth ablation grid: LALBO3 at
// working set 25 with 4 GPUs per node and the given node counts.
func GPUScalingSpecs(nodes []int) []Spec {
	specs := make([]Spec, len(nodes))
	for i, n := range nodes {
		specs[i] = Spec{
			Name:   fmt.Sprintf("scaling/%dgpu", n*4),
			Params: RunParams{Policy: core.LALBO3, WorkingSet: 25, Nodes: n, GPUsPerNode: 4},
		}
	}
	return specs
}

// GPUScaling runs the LALBO3 scheduler at working set 25 while varying the
// GPU count (ablation: does the locality benefit persist as the cluster
// grows?). gpusPerNode stays 4; nodes varies.
func GPUScaling(nodes []int) ([]Row, error) {
	return GPUScalingWith(Matrix{}, nodes)
}

// GPUScalingWith is GPUScaling under an explicit runner.
func GPUScalingWith(m Matrix, nodes []int) ([]Row, error) {
	rows, err := m.Run(GPUScalingSpecs(nodes))
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Policy = fmt.Sprintf("LALBO3/%dgpu", nodes[i]*4)
	}
	return rows, nil
}

// WriteFig4Table renders the Figures 4–6 matrix as an aligned text table.
func WriteFig4Table(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-8s %4s %12s %10s %8s %11s %11s\n",
		"policy", "ws", "avg_lat(s)", "miss", "sm_util", "false_miss", "dup_top1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %12.3f %10.4f %8.4f %11.4f %11.3f\n",
			r.Policy, r.WorkingSet, r.AvgLatencySec, r.MissRatio,
			r.SMUtilization, r.FalseMissRatio, r.TopModelDuplicates)
	}
}

// WriteFig7Table renders the O3 sensitivity sweep.
func WriteFig7Table(w io.Writer, pts []Fig7Point) {
	fmt.Fprintf(w, "%6s %12s %10s %14s\n", "limit", "avg_lat(s)", "miss", "lat_var(s^2)")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %12.3f %10.4f %14.3f\n",
			p.Limit, p.AvgLatencySec, p.MissRatio, p.LatencyVarianceSec2)
	}
}

// WriteTableI renders the regenerated Table I.
func WriteTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintf(w, "%-18s %10s %10s %12s\n", "model", "size(MB)", "load(s)", "infer(s)@32")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %10.2f %12.2f\n",
			r.Model, r.OccupancyMB, r.LoadTime.Seconds(), r.InferTime.Seconds())
	}
}
