package experiments

import (
	"reflect"
	"testing"
)

// TestScaleSweepDeterministic pins the worker-count contract for the
// streaming scale grid: byte-identical rows whether the cells run
// serially or fanned out.
func TestScaleSweepDeterministic(t *testing.T) {
	serial, err := ScaleSweep(Matrix{Workers: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	fanned, err := ScaleSweep(Matrix{Workers: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("scale rows differ across worker counts:\nserial: %+v\nfanned: %+v", serial, fanned)
	}
	if len(serial) == 0 {
		t.Fatal("no scale rows")
	}
	for _, r := range serial {
		if r.Requests == 0 || r.AvgLatencySec <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.OrdBound != r.Fleet {
			t.Errorf("fleet %d: OrdBound %d (fixed fleets assign exactly one ordinal per GPU)", r.Fleet, r.OrdBound)
		}
	}
}

// TestScaleSweepArenaBounded is the O(in-flight) acceptance check: the
// arena's fresh allocations equal the peak in-flight population and do
// not grow with the trace length — tripling the minutes must leave the
// allocation count unchanged (the steady-state in-flight set is fixed
// by arrival rate and service times).
func TestScaleSweepArenaBounded(t *testing.T) {
	cell := func(minutes int) ScaleRow {
		t.Helper()
		specs := ScaleSpecs(true)
		p := specs[0].Params // 64-GPU cell
		p.Workload.Minutes = minutes
		row, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if row.Streaming == nil {
			t.Fatal("streaming run reported no stream stats")
		}
		return ScaleRow{
			Minutes:        minutes,
			Requests:       row.Requests,
			PeakInflight:   row.Streaming.PeakInflight,
			ArenaAllocated: row.Streaming.ArenaAllocated,
			ArenaReused:    row.Streaming.ArenaReused,
		}
	}
	short, long := cell(6), cell(18)
	if long.Requests < 2*short.Requests {
		t.Fatalf("trace scaling broken: %d requests at 18 min vs %d at 6", long.Requests, short.Requests)
	}
	if short.ArenaAllocated != short.PeakInflight || long.ArenaAllocated != long.PeakInflight {
		t.Errorf("arena allocations should equal peak in-flight: short %+v long %+v", short, long)
	}
	if long.ArenaAllocated > short.ArenaAllocated+short.ArenaAllocated/10 {
		t.Errorf("peak allocation grew with trace length: %d at 18 min vs %d at 6 min",
			long.ArenaAllocated, short.ArenaAllocated)
	}
	if long.ArenaAllocated+long.ArenaReused != long.Requests {
		t.Errorf("arena accounting: %d allocated + %d reused != %d requests",
			long.ArenaAllocated, long.ArenaReused, long.Requests)
	}
}

// TestScaleIndexedMatchesScanPlacement runs one scale cell on both
// placement paths: the indexed scheduler must reproduce the scan
// baseline's report exactly (dispatch-for-dispatch, so every derived
// metric matches) at fleet scale, not just in the core-level oracle.
func TestScaleIndexedMatchesScanPlacement(t *testing.T) {
	p := ScaleSpecs(true)[0].Params
	p.Workload.Minutes = 4
	indexed, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.ScanPlacement = true
	scan, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indexed, scan) {
		t.Fatalf("indexed and scan placement diverge:\nindexed: %+v\nscan: %+v", indexed, scan)
	}
}
