package experiments

// The elasticity sweep: the paper evaluates LALB/LALB+O3 on a fixed
// 12-GPU fleet, but production traffic is diurnal and bursty. This file
// compares a peak-provisioned fixed fleet against an autoscaled fleet
// (the internal/autoscale subsystem) on non-flat arrival shapes,
// reporting GPU-seconds consumed alongside the usual latency / miss-ratio
// metrics — the cost/performance trade the autoscaler exists to win.

import (
	"fmt"
	"io"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/core"
	"gpufaas/internal/trace"
)

// defaultElasticityPolicy: the sweep compares fleets, not schedulers, so
// every cell runs the paper's best scheduler.
const defaultElasticityPolicy = core.LALBO3

// AutoscaleSpec is a value-typed autoscaler description for experiment
// grids. Unlike autoscale.Config it carries no live Policy: every run
// builds a fresh policy instance, so stateful policies (hysteresis
// counters) never leak across Matrix workers and runs stay deterministic.
type AutoscaleSpec struct {
	// Policy: "target-util" (Utilization, QueuePerGPU), "step"
	// (UpQueueDepth, DownIdleRatio, Step) or "tiered" (Tiers, TierCaps,
	// TargetP95, EscalateAfter plus the shared Utilization /
	// QueuePerGPU / Step knobs). Zero-valued fields take the autoscale
	// package defaults.
	Policy        string
	Utilization   float64
	QueuePerGPU   int
	UpQueueDepth  int
	DownIdleRatio float64
	Step          int
	// Tiered-policy fields: device classes cheap-first, optional
	// per-tier caps, the p95 objective in seconds, and how many
	// consecutive over-target ticks escalate to the fast tier.
	Tiers         []string
	TierCaps      []int
	TargetP95     float64
	EscalateAfter int

	Interval  time.Duration
	ColdStart time.Duration
	MinGPUs   int
	MaxGPUs   int
	// Horizon stops evaluation ticks; zero derives it from the
	// workload length plus a drain margin.
	Horizon time.Duration
}

// policy materializes a fresh policy instance for one run.
func (s AutoscaleSpec) policy() (autoscale.Policy, error) {
	if s.Policy == "tiered" {
		return autoscale.NewTiered(autoscale.Tiered{
			Tiers:         s.Tiers,
			TierCaps:      s.TierCaps,
			TargetP95:     s.TargetP95,
			Utilization:   s.Utilization,
			QueuePerGPU:   s.QueuePerGPU,
			Step:          s.Step,
			EscalateAfter: s.EscalateAfter,
		})
	}
	return autoscale.ParsePolicy(s.Policy, s.Utilization, s.QueuePerGPU,
		s.UpQueueDepth, s.DownIdleRatio, s.Step)
}

// Config materializes a fresh autoscale.Config for one run over the
// given workload.
func (s AutoscaleSpec) Config(wp WorkloadParams) (*autoscale.Config, error) {
	pol, err := s.policy()
	if err != nil {
		return nil, err
	}
	// GPU-seconds integrate through the last clock event, so the
	// default horizon adds only a short drain margin past the trace:
	// idle ticks after end-of-service would bill the autoscaled fleet
	// for time the fixed fleet's run never observes.
	horizon := s.Horizon
	if horizon == 0 {
		horizon = time.Duration(wp.Minutes)*time.Minute + 30*time.Second
	}
	return &autoscale.Config{
		Policy:    pol,
		Interval:  s.Interval,
		MinGPUs:   s.MinGPUs,
		MaxGPUs:   s.MaxGPUs,
		ColdStart: s.ColdStart,
		Horizon:   horizon,
	}, nil
}

// ElasticityRow is one elasticity-sweep cell: a (trace shape, fleet
// strategy) pair. The embedded Report carries the GPUSeconds /
// ScaleUps / ScaleDowns / PeakGPUs accounting and the deterministic
// ScaleEvents log.
type ElasticityRow struct {
	// Scenario is the arrival shape ("diurnal", "burst").
	Scenario string
	// Fleet is the strategy ("fixed", "autoscale/target-util",
	// "autoscale/step").
	Fleet string
	Row
}

// elasticityCell pairs a Spec with its sweep labels.
type elasticityCell struct {
	scenario, fleet string
	spec            Spec
}

// ElasticityWorkload returns the sweep's workload for an arrival shape.
// Short mode halves the trace for CI smoke runs.
func ElasticityWorkload(shape trace.Shape, short bool) WorkloadParams {
	wp := DefaultWorkload(15)
	wp.Minutes = 12
	if short {
		wp.Minutes = 6
	}
	wp.Shape = shape
	return wp
}

// elasticityAutoscale is the sweep's autoscaler configuration: start at
// a 6-GPU floor, grow to the fixed fleet's 12 at peak. target-util sizes
// toward 60% busy with every queued request counting as a full GPU of
// demand (QueuePerGPU=1 — deliberately eager, since scale-up lag is what
// costs p95); step waits for queue depth > 4 on consecutive ticks before
// stepping ±2. The 5 s cold start is on the order of one Table I model
// load.
func elasticityAutoscale(policy string) *AutoscaleSpec {
	return &AutoscaleSpec{
		Policy:        policy,
		Utilization:   0.60,
		QueuePerGPU:   1,
		UpQueueDepth:  4,
		DownIdleRatio: 0.5,
		Step:          2,
		Interval:      2 * time.Second,
		ColdStart:     5 * time.Second,
		MinGPUs:       6,
		MaxGPUs:       12,
	}
}

// ElasticityScenarios returns the sweep grid: {diurnal, burst} arrival
// shapes × {fixed 12-GPU, target-utilization autoscaled, step-hysteresis
// autoscaled} fleets, in presentation order.
func ElasticityScenarios(short bool) []elasticityCell {
	shapes := []struct {
		name  string
		shape trace.Shape
	}{
		{"diurnal", trace.Shape{Kind: trace.ShapeDiurnal, Amplitude: 0.7}},
		{"burst", trace.Shape{Kind: trace.ShapeBurst, BurstEvery: 6, BurstLen: 1, BurstFactor: 2}},
	}
	fleets := []struct {
		name string
		auto *AutoscaleSpec
	}{
		{"fixed", nil},
		{"autoscale/target-util", elasticityAutoscale("target-util")},
		{"autoscale/step", elasticityAutoscale("step")},
	}
	var cells []elasticityCell
	for _, sh := range shapes {
		wp := ElasticityWorkload(sh.shape, short)
		for _, fl := range fleets {
			p := RunParams{
				Policy:     defaultElasticityPolicy,
				WorkingSet: wp.WorkingSet,
				Workload:   wp,
				Autoscale:  fl.auto,
			}
			if fl.auto != nil {
				// Autoscaled fleets boot at the floor and grow; the
				// fixed fleet keeps the paper's peak-provisioned 3x4.
				p.Nodes, p.GPUsPerNode = 1, fl.auto.MinGPUs
			}
			cells = append(cells, elasticityCell{
				scenario: sh.name,
				fleet:    fl.name,
				spec: Spec{
					Name:   fmt.Sprintf("elasticity/%s/%s", sh.name, fl.name),
					Params: p,
				},
			})
		}
	}
	return cells
}

// ElasticitySpecs exposes the sweep's Specs (grid order), for callers
// that drive the Matrix directly.
func ElasticitySpecs(short bool) []Spec {
	cells := ElasticityScenarios(short)
	specs := make([]Spec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	return specs
}

// ElasticitySweep runs the sweep and returns labelled rows in grid
// order. Determinism contract (same as every Matrix grid): identical
// rows — including the ScaleEvents logs — at any worker count.
func ElasticitySweep(m Matrix, short bool) ([]ElasticityRow, error) {
	cells := ElasticityScenarios(short)
	specs := make([]Spec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	rows, err := m.Run(specs)
	if err != nil {
		return nil, err
	}
	out := make([]ElasticityRow, len(rows))
	for i, row := range rows {
		out[i] = ElasticityRow{Scenario: cells[i].scenario, Fleet: cells[i].fleet, Row: row}
	}
	return out, nil
}

// WriteElasticityTable renders the sweep with the cost metric next to
// the latency metrics.
func WriteElasticityTable(w io.Writer, rows []ElasticityRow) {
	fmt.Fprintf(w, "%-8s %-22s %12s %10s %10s %8s %6s %6s\n",
		"trace", "fleet", "gpu_seconds", "p95(s)", "miss", "avg(s)", "peak", "final")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-22s %12.1f %10.3f %10.4f %8.3f %6d %6d\n",
			r.Scenario, r.Fleet, r.GPUSeconds, r.P95LatencySec, r.MissRatio,
			r.AvgLatencySec, r.PeakGPUs, r.FinalGPUs)
	}
}
