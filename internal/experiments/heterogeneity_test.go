package experiments

import (
	"reflect"
	"strings"
	"testing"

	"gpufaas/internal/trace"
)

// shortHeteroSweep runs the CI-sized heterogeneity sweep.
func shortHeteroSweep(t *testing.T, workers int) []HeterogeneityRow {
	t.Helper()
	rows, err := HeterogeneitySweep(Matrix{Workers: workers}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("sweep returned %d rows, want 8", len(rows))
	}
	return rows
}

func heteroRowFor(t *testing.T, rows []HeterogeneityRow, scenario, fleet string) HeterogeneityRow {
	t.Helper()
	for _, r := range rows {
		if r.Scenario == scenario && r.Fleet == fleet {
			return r
		}
	}
	t.Fatalf("no row %s/%s", scenario, fleet)
	return HeterogeneityRow{}
}

// TestHeterogeneitySweepAcceptance pins the PR's headline claims on the
// full 12-minute traces.
//
// Diurnal: the mixed tiered-autoscaled fleet beats BOTH homogeneous
// fleets on cost at comparable p95 — cheaper than the capacity-matched
// 20×t4 fleet (which is itself ~45% cheaper than the fast fleet) while
// keeping p95 within 15% of it, and roughly half the 12×rtx2080 fleet's
// cost.
//
// Burst: the fast tier absorbs the spikes — the mixed autoscaled fleet
// beats BOTH homogeneous fleets on p95, still far below the fast
// fleet's cost.
func TestHeterogeneitySweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("heterogeneity sweep in -short mode")
	}
	rows, err := HeterogeneitySweep(Matrix{}, false)
	if err != nil {
		t.Fatal(err)
	}

	fast := heteroRowFor(t, rows, "diurnal", FleetFastFixed)
	cheap := heteroRowFor(t, rows, "diurnal", FleetCheapFixed)
	tiered := heteroRowFor(t, rows, "diurnal", FleetMixedTiered)
	if tiered.Cost >= cheap.Cost {
		t.Errorf("diurnal: tiered cost %.1f !< capacity-matched cheap %.1f", tiered.Cost, cheap.Cost)
	}
	if tiered.Cost >= fast.Cost {
		t.Errorf("diurnal: tiered cost %.1f !< fast %.1f", tiered.Cost, fast.Cost)
	}
	if tiered.P95LatencySec > cheap.P95LatencySec*1.15 {
		t.Errorf("diurnal: tiered p95 %.3fs not comparable to cheap %.3fs (>15%% worse)",
			tiered.P95LatencySec, cheap.P95LatencySec)
	}
	for _, r := range []HeterogeneityRow{fast, cheap, tiered} {
		if r.Failed != 0 {
			t.Errorf("%s/%s failed %d requests", r.Scenario, r.Fleet, r.Failed)
		}
		if r.Requests != fast.Requests {
			t.Errorf("request counts differ: %s served %d, fast %d", r.Fleet, r.Requests, fast.Requests)
		}
	}

	bFast := heteroRowFor(t, rows, "burst", FleetFastFixed)
	bCheap := heteroRowFor(t, rows, "burst", FleetCheapFixed)
	bTiered := heteroRowFor(t, rows, "burst", FleetMixedTiered)
	if bTiered.P95LatencySec >= bFast.P95LatencySec || bTiered.P95LatencySec >= bCheap.P95LatencySec {
		t.Errorf("burst: tiered p95 %.3fs does not beat both fleets (fast %.3fs, cheap %.3fs)",
			bTiered.P95LatencySec, bFast.P95LatencySec, bCheap.P95LatencySec)
	}
	if bTiered.Cost >= bFast.Cost {
		t.Errorf("burst: tiered cost %.1f !< fast %.1f", bTiered.Cost, bFast.Cost)
	}

	// The tiered fleet really is mixed: both classes accrue GPU-seconds,
	// scale events carry class labels, and the expensive tier stays the
	// minority share of spend.
	for _, r := range []HeterogeneityRow{tiered, bTiered} {
		if len(r.ClassUsage) != 2 {
			t.Fatalf("%s: ClassUsage = %+v", r.Scenario, r.ClassUsage)
		}
		t4, rtx := r.ClassUsage[0], r.ClassUsage[1]
		if t4.Class != "t4" || rtx.Class != "rtx2080" {
			t.Fatalf("%s: class order = %+v", r.Scenario, r.ClassUsage)
		}
		if t4.GPUSeconds <= 0 || rtx.GPUSeconds <= 0 {
			t.Errorf("%s: a class served no GPU-seconds: %+v", r.Scenario, r.ClassUsage)
		}
		if t4.GPUSeconds <= rtx.GPUSeconds {
			t.Errorf("%s: cheap tier is not the majority: t4=%.0f rtx=%.0f",
				r.Scenario, t4.GPUSeconds, rtx.GPUSeconds)
		}
		if r.ScaleUps == 0 || r.ScaleDowns == 0 {
			t.Errorf("%s: tiered fleet did not scale: ups=%d downs=%d", r.Scenario, r.ScaleUps, r.ScaleDowns)
		}
		for _, ev := range r.ScaleEvents {
			if ev.Class == "" {
				t.Errorf("%s: scale event lost its class: %+v", r.Scenario, ev)
			}
		}
	}

	// Fixed fleets carry the per-class breakdown too, and never scale.
	if len(fast.ClassUsage) != 1 || fast.ClassUsage[0].Class != "rtx2080" {
		t.Errorf("fast fleet ClassUsage = %+v", fast.ClassUsage)
	}
	if fast.ScaleUps != 0 || len(fast.ScaleEvents) != 0 {
		t.Errorf("fixed fleet scaled: %+v", fast.ScaleEvents)
	}
}

// TestHeterogeneitySweepDeterministic is the grid determinism contract:
// identical rows — including per-class usage and classed scale-event
// logs — at any worker count.
func TestHeterogeneitySweepDeterministic(t *testing.T) {
	serial := shortHeteroSweep(t, 1)
	parallel := shortHeteroSweep(t, 6)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("row %d (%s/%s) differs between worker counts",
				i, serial[i].Scenario, serial[i].Fleet)
		}
	}
	for _, r := range serial {
		if r.Requests == 0 {
			t.Errorf("%s/%s completed no requests", r.Scenario, r.Fleet)
		}
	}
}

// TestAutoscaleSpecTiered checks tiered-spec materialization: fresh
// policy instances per run and validation pass-through.
func TestAutoscaleSpecTiered(t *testing.T) {
	spec := heterogeneityTiered()
	wp := ElasticityWorkload(trace.Shape{Kind: trace.ShapeDiurnal}, true)
	a, err := spec.Config(wp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Config(wp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy == b.Policy {
		t.Error("Config must build a fresh tiered policy per run (shared escalation counters)")
	}
	if !strings.HasPrefix(a.Policy.Name(), "tiered(") {
		t.Errorf("policy name = %q", a.Policy.Name())
	}
	bad := *spec
	bad.Tiers = nil
	if _, err := bad.Config(wp); err == nil {
		t.Error("tiered spec without tiers should fail")
	}
}
