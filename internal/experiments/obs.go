package experiments

// The observability sweep: the full instrumented pipeline — lifecycle
// tracing, latency decomposition, time-series telemetry — turned on at
// the cell sweep's most interesting operating point, 1024 GPUs sharded
// into K=1 vs K=16 cells. BENCH_cells.json shows the K=16 miss-ratio
// jump (cache locality collapses when the fleet shards into 16 small
// caches); the Breakdown columns here attribute it causally: the load
// component blows out while service time stays flat. The K=16 run's
// sampled spans are what `faas-bench -exp obs -trace` exports, and the
// whole output is byte-identical at any worker count (the trace export
// is half of the CI determinism gate).

import (
	"fmt"
	"io"
	"time"

	"gpufaas/internal/multicell"
	"gpufaas/internal/obs"
)

// ObsSampleMod keeps 1-in-512 requests in the lifecycle trace: a few
// hundred spans out of the ~330k-request sweep — enough to populate
// every GPU-ord track in the viewer without a multi-MB artifact.
const ObsSampleMod = 512

// ObsSeriesInterval is the telemetry sampling period.
const ObsSeriesInterval = 30 * time.Second

// ObsRow is one observability-sweep point: the merged fleet metrics
// with the latency decomposition and merged time-series attached.
type ObsRow struct {
	Fleet  int
	Cells  int
	Router string

	Requests      int64
	AvgLatencySec float64
	P95LatencySec float64
	MissRatio     float64

	// Component p95s (from Breakdown, also carried in full below).
	QueueP95Sec    float64
	LoadP95Sec     float64
	ServiceP95Sec  float64
	MissLoadP95Sec float64

	// SampledSpans counts the lifecycle spans the 1-in-ObsSampleMod
	// sample kept across cells.
	SampledSpans int64

	Breakdown *obs.Breakdown    `json:"breakdown,omitempty"`
	Series    *obs.MergedSeries `json:"series,omitempty"`
}

// ObsSweep runs the fully instrumented K=1 vs K=16 comparison at 1024
// GPUs behind the least-loaded router and returns the rows plus the
// sampled spans of the LAST row (the K=16 locality-collapse run — the
// trace worth looking at). Short mode halves the trace length.
func ObsSweep(workers int, short bool) ([]ObsRow, []obs.Span, error) {
	const fleet = 1024
	minutes := 12
	if short {
		minutes = 6
	}
	var rows []ObsRow
	var spans []obs.Span
	for _, cells := range []int{1, 16} {
		run := cellRunParams(fleet)
		run.Workload.Minutes = minutes
		run.Obs = obs.Options{
			Trace:          true,
			SampleMod:      ObsSampleMod,
			Breakdown:      true,
			Series:         true,
			SeriesInterval: ObsSeriesInterval,
		}
		res, err := RunCells(CellParams{
			Run:     run,
			Cells:   cells,
			Router:  multicell.RouteLeastLoaded,
			Workers: workers,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: obs/gpus=%d/k=%d: %w", fleet, cells, err)
		}
		m := res.Merged
		row := ObsRow{
			Fleet:         fleet,
			Cells:         cells,
			Router:        multicell.RouteLeastLoaded.String(),
			Requests:      m.Requests,
			AvgLatencySec: m.AvgLatencySec,
			P95LatencySec: m.P95LatencySec,
			MissRatio:     m.MissRatio,
			SampledSpans:  m.SampledSpans,
			Breakdown:     m.Breakdown,
			Series:        m.Series,
		}
		if b := m.Breakdown; b != nil {
			row.QueueP95Sec = b.All.QueueWait.P95Sec
			row.LoadP95Sec = b.All.Load.P95Sec
			row.ServiceP95Sec = b.All.Service.P95Sec
			row.MissLoadP95Sec = b.Miss.Load.P95Sec
		}
		rows = append(rows, row)
		spans = spans[:0]
		for _, c := range res.Cells {
			spans = append(spans, c.Spans...)
		}
	}
	obs.SortSpans(spans)
	return rows, spans, nil
}

// WriteObsTable renders the sweep.
func WriteObsTable(w io.Writer, rows []ObsRow) {
	fmt.Fprintf(w, "%6s %3s %-10s %9s %12s %10s %8s %10s %9s %9s %10s %7s\n",
		"gpus", "k", "router", "requests", "avg_lat(s)", "p95(s)", "miss",
		"queue_p95", "load_p95", "svc_p95", "missld_p95", "spans")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %3d %-10s %9d %12.3f %10.3f %8.4f %10.3f %9.3f %9.3f %10.3f %7d\n",
			r.Fleet, r.Cells, r.Router, r.Requests, r.AvgLatencySec, r.P95LatencySec,
			r.MissRatio, r.QueueP95Sec, r.LoadP95Sec, r.ServiceP95Sec,
			r.MissLoadP95Sec, r.SampledSpans)
	}
}
