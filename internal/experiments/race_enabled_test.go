//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// performance tests skip under it: the instrumentation slows the real CPU
// work enough that an in-process load generator can no longer outrun the
// server, so overload never builds and the assertions are meaningless.
const raceEnabled = true
