package experiments

import (
	"strings"
	"testing"
	"time"

	"gpufaas/internal/cache"
	"gpufaas/internal/core"
	"gpufaas/internal/models"
	"gpufaas/internal/stats"
)

func TestWorkloadConstruction(t *testing.T) {
	built, err := Workload(DefaultWorkload(35), models.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Requests) != 6*325 {
		t.Fatalf("requests = %d", len(built.Requests))
	}
	if built.Zoo.Len() != 35 {
		t.Fatalf("instances = %d", built.Zoo.Len())
	}
	if built.TopModel == "" || !strings.Contains(built.TopModel, "@f00") {
		t.Errorf("top model = %q", built.TopModel)
	}
	// Every request's model exists in the derived zoo.
	counts := map[string]int{}
	for _, r := range built.Requests {
		if _, ok := built.Zoo.Get(r.Model); !ok {
			t.Fatalf("request model %q missing from zoo", r.Model)
		}
		counts[r.Model]++
	}
	// The top-ranked instance is the busiest.
	for m, c := range counts {
		if m != built.TopModel && c > counts[built.TopModel] {
			t.Errorf("%s (%d) busier than top model %s (%d)", m, c, built.TopModel, counts[built.TopModel])
		}
	}
	// Instance naming: same architecture may appear twice with distinct
	// instance names (35 > 22 architectures).
	if _, ok := built.Zoo.Get("squeezenet1.1@f00"); !ok {
		t.Error("expected squeezenet1.1@f00 (smallest architecture on hottest rank)")
	}
	if _, ok := built.Zoo.Get("squeezenet1.1@f22"); !ok {
		t.Error("expected wrapped architecture instance @f22")
	}
}

func anyTail(counts map[string]int, top string) string {
	for m := range counts {
		if m != top {
			return m
		}
	}
	return top
}

func TestWorkloadDeterministic(t *testing.T) {
	a, err := Workload(DefaultWorkload(25), models.Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Workload(DefaultWorkload(25), models.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("same params produced different workloads")
		}
	}
}

// TestPaperClaims runs the full Fig. 4–6 matrix once and asserts the
// paper's qualitative results (§V-B/C/D): who wins, by roughly what
// factor, and where the crossovers fall. Exact values are recorded in
// EXPERIMENTS.md; these assertions only pin the shape.
func TestPaperClaims(t *testing.T) {
	rows, err := Fig4Matrix()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Policy+"/"+itoa(r.WorkingSet)] = r
	}
	get := func(pol string, ws int) Row {
		r, ok := byKey[pol+"/"+itoa(ws)]
		if !ok {
			t.Fatalf("missing row %s/%d", pol, ws)
		}
		return r
	}

	for _, ws := range PaperWorkingSets {
		lb, lalb, o3 := get("LB", ws), get("LALB", ws), get("LALBO3", ws)
		// Fig 4a: locality reduces average latency dramatically.
		if red := stats.Reduction(lb.AvgLatencySec, lalb.AvgLatencySec); red < 0.5 {
			t.Errorf("ws=%d LALB latency reduction = %.2f, want > 0.5", ws, red)
		}
		if red := stats.Reduction(lb.AvgLatencySec, o3.AvgLatencySec); red < 0.9 {
			t.Errorf("ws=%d LALBO3 latency reduction = %.2f, want > 0.9", ws, red)
		}
		// Fig 4b: locality reduces the miss ratio.
		if lalb.MissRatio >= lb.MissRatio || o3.MissRatio >= lb.MissRatio {
			t.Errorf("ws=%d miss ratios: LB=%.3f LALB=%.3f O3=%.3f", ws,
				lb.MissRatio, lalb.MissRatio, o3.MissRatio)
		}
		// Fig 4c: SM utilization anti-correlates with miss ratio; LALBO3
		// is the highest (§V-C).
		if o3.SMUtilization < lalb.SMUtilization-0.02 || o3.SMUtilization <= lb.SMUtilization {
			t.Errorf("ws=%d SM: LB=%.3f LALB=%.3f O3=%.3f", ws,
				lb.SMUtilization, lalb.SMUtilization, o3.SMUtilization)
		}
		// Fig 6: locality reduces duplicates of the hottest model.
		if lalb.TopModelDuplicates >= lb.TopModelDuplicates {
			t.Errorf("ws=%d duplicates: LB=%.2f LALB=%.2f", ws,
				lb.TopModelDuplicates, lalb.TopModelDuplicates)
		}
	}

	// Headline (abstract): ~48x speedup of locality-aware scheduling over
	// the baseline at the favorable working set; accept anything >= 10x.
	if sp := stats.Speedup(get("LB", 15).AvgLatencySec, get("LALBO3", 15).AvgLatencySec); sp < 10 {
		t.Errorf("headline speedup = %.1fx, want >= 10x", sp)
	}

	// §V-B: LALB degrades as the working set grows (the WS35 miss ratio
	// reduction is much weaker than at WS15), and O3 recovers most of it.
	red15 := stats.Reduction(get("LB", 15).MissRatio, get("LALB", 15).MissRatio)
	red35 := stats.Reduction(get("LB", 35).MissRatio, get("LALB", 35).MissRatio)
	if red35 >= red15 {
		t.Errorf("LALB miss reduction should degrade with WS: ws15=%.2f ws35=%.2f", red15, red35)
	}
	if get("LALBO3", 35).AvgLatencySec >= get("LALB", 35).AvgLatencySec {
		t.Error("O3 should beat plain LALB at ws=35")
	}

	// Fig 5: LB's false-miss ratio is very high (~96% in the paper).
	if fm := get("LB", 15).FalseMissRatio; fm < 0.85 {
		t.Errorf("LB false-miss ratio = %.3f, want > 0.85", fm)
	}
	if get("LALB", 15).FalseMissRatio >= get("LB", 15).FalseMissRatio {
		t.Error("LALB should reduce the false-miss ratio at ws=15")
	}
}

func itoa(n int) string {
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestFig7Sensitivity(t *testing.T) {
	pts, err := Fig7Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig7Limits) {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// §V-E: larger limits reduce latency, miss ratio and latency variance.
	if last.AvgLatencySec >= first.AvgLatencySec {
		t.Errorf("limit 45 latency %.2f !< limit 0 latency %.2f", last.AvgLatencySec, first.AvgLatencySec)
	}
	if last.MissRatio >= first.MissRatio {
		t.Errorf("limit 45 miss %.3f !< limit 0 miss %.3f", last.MissRatio, first.MissRatio)
	}
	if last.LatencyVarianceSec2 >= first.LatencyVarianceSec2 {
		t.Errorf("limit 45 variance %.2f !< limit 0 variance %.2f",
			last.LatencyVarianceSec2, first.LatencyVarianceSec2)
	}
}

func TestTableIRegeneration(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows = %d", len(rows))
	}
	zoo := models.Default()
	for _, r := range rows {
		m := zoo.MustGet(r.Model)
		if r.OccupancyMB != m.OccupancyMB {
			t.Errorf("%s occupancy %d != %d", r.Model, r.OccupancyMB, m.OccupancyMB)
		}
		if d := r.LoadTime - m.LoadTime; d > time.Millisecond || d < -time.Millisecond {
			t.Errorf("%s load %v != %v", r.Model, r.LoadTime, m.LoadTime)
		}
		if d := r.InferTime - m.InferTime; d > 5*time.Millisecond || d < -5*time.Millisecond {
			t.Errorf("%s infer %v != %v", r.Model, r.InferTime, m.InferTime)
		}
	}
}

func TestCachePolicyComparison(t *testing.T) {
	out, err := CachePolicyComparison(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyLFU} {
		row, ok := out[pol]
		if !ok {
			t.Fatalf("missing %s", pol)
		}
		if row.Requests != 6*325 {
			t.Errorf("%s completed %d", pol, row.Requests)
		}
	}
}

func TestGPUScaling(t *testing.T) {
	rows, err := GPUScaling([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More GPUs must not increase average latency on the same workload.
	if rows[2].AvgLatencySec > rows[0].AvgLatencySec*1.5 {
		t.Errorf("scaling raised latency: %v", rows)
	}
}

func TestRunParamsOverrides(t *testing.T) {
	row, err := Run(RunParams{
		Policy: core.LALBO3, WorkingSet: 15,
		Nodes: 1, GPUsPerNode: 2, GPUMemory: 8 << 30,
		Workload: WorkloadParams{Minutes: 2, RequestsPerMinute: 50, WorkingSet: 15, Batch: 32, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.Requests != 100 {
		t.Errorf("requests = %d", row.Requests)
	}
	if row.Policy != "LALBO3" || row.WorkingSet != 15 {
		t.Errorf("row = %+v", row)
	}
}

func TestWriters(t *testing.T) {
	var sb strings.Builder
	WriteFig4Table(&sb, []Row{{Policy: "LB", WorkingSet: 15}})
	if !strings.Contains(sb.String(), "LB") {
		t.Error("fig4 table missing row")
	}
	sb.Reset()
	WriteFig7Table(&sb, []Fig7Point{{Limit: 5}})
	if !strings.Contains(sb.String(), "5") {
		t.Error("fig7 table missing row")
	}
	sb.Reset()
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	WriteTableI(&sb, rows)
	if !strings.Contains(sb.String(), "vgg19") {
		t.Error("table I missing vgg19")
	}
}
