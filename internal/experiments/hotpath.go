package experiments

// Hot-path microbenchmarks for the BENCH snapshot: the discrete-event
// engine's schedule+fire cycle and the scheduler's per-decision round.
// These are the two loops every simulated request crosses several times,
// so their ns/op and allocs/op gate how large a fleet / how long a trace
// the experiment grids can sweep. faas-bench embeds the rows in the
// gpufaas-bench/v1 snapshot next to the figure series, with the
// pre-refactor baselines (measured at the PR-3 seed, Xeon 2.10GHz) kept
// inline so a regression is visible in the artifact itself.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/models"
	"gpufaas/internal/multicell"
	"gpufaas/internal/ordset"
	"gpufaas/internal/sim"
	"gpufaas/internal/trace"
)

// HotpathRow is one microbenchmark result. Baseline* fields carry the
// pre-refactor measurement where one exists (zero = the case did not
// exist before the pooled-engine/dense-ord rework).
type HotpathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
}

// fill converts a testing.BenchmarkResult into a row.
func (r *HotpathRow) fill(res testing.BenchmarkResult) {
	r.NsPerOp = float64(res.T.Nanoseconds()) / float64(res.N)
	r.BytesPerOp = res.AllocedBytesPerOp()
	r.AllocsPerOp = res.AllocsPerOp()
}

// Hotpath runs the microbenchmarks. Wall cost is a few seconds (each case
// runs via testing.Benchmark's standard calibration).
func Hotpath() ([]HotpathRow, error) {
	var rows []HotpathRow

	// Engine schedule+fire at two standing queue depths; the cost every
	// arrival / load-done / completion event pays.
	for _, c := range []struct {
		depth          int
		baselineNs     float64
		baselineAllocs int64
	}{
		{0, 67.0, 1},
		{1024, 242.2, 1},
	} {
		depth := c.depth
		row := HotpathRow{
			Name:                fmt.Sprintf("engine_fire/depth=%d", depth),
			BaselineNsPerOp:     c.baselineNs,
			BaselineAllocsPerOp: c.baselineAllocs,
		}
		row.fill(testing.Benchmark(func(b *testing.B) {
			e := sim.New()
			for i := 0; i < depth; i++ {
				e.After(time.Duration(i+1)*time.Hour, "standing", func(sim.Time) {})
			}
			fn := func(sim.Time) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(time.Millisecond, "fire", fn)
				e.Step()
			}
		}))
		rows = append(rows, row)
	}

	// One scheduler decision round against a real 64-GPU cluster backend
	// (cache index, idle set): enqueue one request, run Schedule. The
	// dispatches are not executed, so the fleet stays idle and every
	// round measures the same decision shape. No pre-refactor baseline:
	// the seed had no per-round case (the full-round numbers live in
	// BenchmarkScheduleDecision and EXPERIMENTS.md).
	cfg := cluster.DefaultConfig()
	cfg.Nodes, cfg.GPUsPerNode = 16, 4
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	s := c.Scheduler()
	row := HotpathRow{Name: "schedule_round/64gpus"}
	row.fill(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := &core.Request{ID: int64(i), Model: "resnet18", BatchSize: 32, Arrival: sim.Time(i)}
			if err := s.Enqueue(r); err != nil {
				b.Fatal(err)
			}
			s.Schedule(sim.Time(i))
		}
	}))
	rows = append(rows, row)

	// The 1024-GPU round: the saturated deep-queue regime, scan baseline
	// first so its measurement rides along as the indexed row's inline
	// baseline (and as its own row for benchregress).
	scanRow := HotpathRow{Name: "schedule_round/1024gpus_scan"}
	scanRow.fill(testing.Benchmark(func(b *testing.B) { scheduleRound1024(b, true) }))
	rows = append(rows, scanRow)
	idxRow := HotpathRow{
		Name:                "schedule_round/1024gpus",
		BaselineNsPerOp:     scanRow.NsPerOp,
		BaselineAllocsPerOp: scanRow.AllocsPerOp,
	}
	idxRow.fill(testing.Benchmark(func(b *testing.B) { scheduleRound1024(b, false) }))
	rows = append(rows, idxRow)

	// The front-door routing decision at the 16-cell shard width: the
	// per-request cost every multi-cell arrival pays once per cell
	// worker (each worker replays the full stream through its private
	// router). No pre-multicell baseline exists.
	for _, pol := range multicell.RouterPolicies {
		pol := pol
		row := HotpathRow{Name: fmt.Sprintf("router_route/%v/16cells", pol)}
		row.fill(testing.Benchmark(func(b *testing.B) {
			router, err := multicell.NewRouter(multicell.RouterConfig{
				Cells: 16, Policy: pol, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]trace.Request, 1024)
			for i := range reqs {
				reqs[i] = trace.Request{
					ID:       int64(i),
					Function: fmt.Sprintf("f%03d", i%97),
					Model:    fmt.Sprintf("m%02d", i%31),
					Arrival:  time.Duration(i) * 10 * time.Millisecond,
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				router.Route(reqs[i%len(reqs)])
			}
		}))
		rows = append(rows, row)
	}

	// End-to-end streaming replay of the small scale cell: the cost of a
	// full simulated run on the O(in-flight) path.
	replay := HotpathRow{Name: "streaming_replay/64gpus_6min"}
	replay.fill(testing.Benchmark(func(b *testing.B) {
		p := streamingReplayParams()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(p); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rows = append(rows, replay)
	return rows, nil
}

// ---- 1024-GPU scheduling round ----

// The scale-round fixture reproduces the regime that made per-round cost
// grow with fleet × queue before the indexed placement path: a saturated
// 1024-GPU fleet (8 freshly idle GPUs per round — completions free GPUs
// a handful at a time), a burst-deep global queue of 1024 requests drawn
// from 32 hot models, and hot models resident on ~340 busy GPUs each
// (duplicates scale with the fleet). None of the queue is cached on the
// idle GPUs, so the scan baseline walks the full queue per idle GPU and
// runs a full holder argmin per placement, while the indexed path
// consults the per-model position index, walks the idle side of the
// holder intersection, and reuses the memoized argmin across the round.
const (
	roundFleet      = 1024
	roundIdleGPUs   = 8
	roundHotModels  = 32
	roundQueueDepth = 1024
)

// roundBackend is a frozen synthetic core.Backend at fleet scale; the
// benchmark recreates the Scheduler per iteration (outside the timer)
// so every measured round sees identical state.
type roundBackend struct {
	ids     []string
	busy    []bool
	est     []time.Duration
	holders map[string][]ordset.Ord
	idle    []core.Ord
	load    time.Duration
	infer   time.Duration
}

func newRoundBackend() *roundBackend {
	bk := &roundBackend{
		ids:     make([]string, roundFleet),
		busy:    make([]bool, roundFleet),
		est:     make([]time.Duration, roundFleet),
		holders: make(map[string][]ordset.Ord, roundHotModels),
		load:    5 * time.Second,
		infer:   2 * time.Second,
	}
	firstIdle := roundFleet - roundIdleGPUs
	for o := 0; o < roundFleet; o++ {
		bk.ids[o] = fmt.Sprintf("gpu%04d", o)
		if o < firstIdle {
			bk.busy[o] = true
			// Finish estimates beyond the load time: waiting never beats
			// a miss, so rounds produce no parking and stay stateless.
			bk.est[o] = 60*time.Second + time.Duration(o)*time.Millisecond
		} else {
			bk.idle = append(bk.idle, core.Ord(o))
		}
	}
	for m := 0; m < roundHotModels; m++ {
		var hs []ordset.Ord
		for o := 0; o < firstIdle; o++ {
			if o%3 == m%3 {
				hs = append(hs, core.Ord(o))
			}
		}
		bk.holders[roundModel(m)] = hs
	}
	return bk
}

func roundModel(m int) string { return fmt.Sprintf("hot%02d", m) }

func (bk *roundBackend) Ords() []core.Ord {
	out := make([]core.Ord, len(bk.ids))
	for i := range out {
		out[i] = core.Ord(i)
	}
	return out
}
func (bk *roundBackend) OrdBound() core.Ord { return core.Ord(len(bk.ids)) }
func (bk *roundBackend) OrdOf(id string) (core.Ord, bool) {
	for i, s := range bk.ids {
		if s == id {
			return core.Ord(i), true
		}
	}
	return 0, false
}
func (bk *roundBackend) IDOf(o core.Ord) string { return bk.ids[o] }
func (bk *roundBackend) Busy(o core.Ord) bool   { return bk.busy[o] }
func (bk *roundBackend) Cached(o core.Ord, model string) bool {
	return ordset.Contains(bk.holders[model], o)
}
func (bk *roundBackend) GPUsCaching(model string) []core.Ord { return bk.holders[model] }
func (bk *roundBackend) EstimatedFinish(o core.Ord, _ sim.Time) time.Duration {
	if !bk.busy[o] {
		return 0
	}
	return bk.est[o]
}
func (bk *roundBackend) LoadTime(core.Ord, string) time.Duration       { return bk.load }
func (bk *roundBackend) InferTime(core.Ord, string, int) time.Duration { return bk.infer }
func (bk *roundBackend) IdleOrds() []core.Ord                          { return bk.idle }

// scheduleRound1024 measures one full Schedule round over the fixture.
// Scheduler construction and queue fill happen outside the timer; the
// request objects are shared across iterations (Enqueue resets the skip
// count). Requests arrive in blocks of eight per model, so the round's
// successive head placements repeat models — the shape a bursty hot
// model produces.
func scheduleRound1024(b *testing.B, scan bool) {
	bk := newRoundBackend()
	reqs := make([]*core.Request, roundQueueDepth)
	for i := range reqs {
		reqs[i] = &core.Request{
			ID:        int64(i),
			Model:     roundModel((i / 8) % roundHotModels),
			BatchSize: 32,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.New(core.Config{
			Policy:        core.LALBO3,
			O3Limit:       core.DefaultO3Limit,
			ScanPlacement: scan,
		}, bk)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reqs {
			if err := s.Enqueue(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if ds := s.Schedule(0); len(ds) != roundIdleGPUs {
			b.Fatalf("round dispatched %d, want %d", len(ds), roundIdleGPUs)
		}
	}
}

// streamingReplayParams is the small streaming scale cell the replay
// benchmark and hotpath row measure end to end (64 GPUs, 6 minutes).
func streamingReplayParams() RunParams {
	return RunParams{
		Policy:      core.LALBO3,
		WorkingSet:  64,
		Nodes:       16,
		GPUsPerNode: 4,
		Streaming:   true,
		Workload: WorkloadParams{
			Minutes:           6,
			RequestsPerMinute: 64 * 325 / 12,
			WorkingSet:        64,
			Batch:             models.EvalBatchSize,
			Seed:              1,
		},
	}
}

// WriteHotpathTable renders the rows with their baselines.
func WriteHotpathTable(w io.Writer, rows []HotpathRow) {
	fmt.Fprintf(w, "%-26s %10s %8s %8s %14s %12s\n",
		"case", "ns/op", "B/op", "allocs", "baseline ns/op", "baseline allocs")
	for _, r := range rows {
		base, baseAllocs := "-", "-"
		if r.BaselineNsPerOp > 0 {
			base = fmt.Sprintf("%.1f", r.BaselineNsPerOp)
			baseAllocs = fmt.Sprintf("%d", r.BaselineAllocsPerOp)
		}
		fmt.Fprintf(w, "%-26s %10.1f %8d %8d %14s %12s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, base, baseAllocs)
	}
}
