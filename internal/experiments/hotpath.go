package experiments

// Hot-path microbenchmarks for the BENCH snapshot: the discrete-event
// engine's schedule+fire cycle and the scheduler's per-decision round.
// These are the two loops every simulated request crosses several times,
// so their ns/op and allocs/op gate how large a fleet / how long a trace
// the experiment grids can sweep. faas-bench embeds the rows in the
// gpufaas-bench/v1 snapshot next to the figure series, with the
// pre-refactor baselines (measured at the PR-3 seed, Xeon 2.10GHz) kept
// inline so a regression is visible in the artifact itself.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/sim"
)

// HotpathRow is one microbenchmark result. Baseline* fields carry the
// pre-refactor measurement where one exists (zero = the case did not
// exist before the pooled-engine/dense-ord rework).
type HotpathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
}

// fill converts a testing.BenchmarkResult into a row.
func (r *HotpathRow) fill(res testing.BenchmarkResult) {
	r.NsPerOp = float64(res.T.Nanoseconds()) / float64(res.N)
	r.BytesPerOp = res.AllocedBytesPerOp()
	r.AllocsPerOp = res.AllocsPerOp()
}

// Hotpath runs the microbenchmarks. Wall cost is a few seconds (each case
// runs via testing.Benchmark's standard calibration).
func Hotpath() ([]HotpathRow, error) {
	var rows []HotpathRow

	// Engine schedule+fire at two standing queue depths; the cost every
	// arrival / load-done / completion event pays.
	for _, c := range []struct {
		depth          int
		baselineNs     float64
		baselineAllocs int64
	}{
		{0, 67.0, 1},
		{1024, 242.2, 1},
	} {
		depth := c.depth
		row := HotpathRow{
			Name:                fmt.Sprintf("engine_fire/depth=%d", depth),
			BaselineNsPerOp:     c.baselineNs,
			BaselineAllocsPerOp: c.baselineAllocs,
		}
		row.fill(testing.Benchmark(func(b *testing.B) {
			e := sim.New()
			for i := 0; i < depth; i++ {
				e.After(time.Duration(i+1)*time.Hour, "standing", func(sim.Time) {})
			}
			fn := func(sim.Time) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(time.Millisecond, "fire", fn)
				e.Step()
			}
		}))
		rows = append(rows, row)
	}

	// One scheduler decision round against a real 64-GPU cluster backend
	// (cache index, idle set): enqueue one request, run Schedule. The
	// dispatches are not executed, so the fleet stays idle and every
	// round measures the same decision shape. No pre-refactor baseline:
	// the seed had no per-round case (the full-round numbers live in
	// BenchmarkScheduleDecision and EXPERIMENTS.md).
	cfg := cluster.DefaultConfig()
	cfg.Nodes, cfg.GPUsPerNode = 16, 4
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	s := c.Scheduler()
	row := HotpathRow{Name: "schedule_round/64gpus"}
	row.fill(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := &core.Request{ID: int64(i), Model: "resnet18", BatchSize: 32, Arrival: sim.Time(i)}
			if err := s.Enqueue(r); err != nil {
				b.Fatal(err)
			}
			s.Schedule(sim.Time(i))
		}
	}))
	rows = append(rows, row)
	return rows, nil
}

// WriteHotpathTable renders the rows with their baselines.
func WriteHotpathTable(w io.Writer, rows []HotpathRow) {
	fmt.Fprintf(w, "%-26s %10s %8s %8s %14s %12s\n",
		"case", "ns/op", "B/op", "allocs", "baseline ns/op", "baseline allocs")
	for _, r := range rows {
		base, baseAllocs := "-", "-"
		if r.BaselineNsPerOp > 0 {
			base = fmt.Sprintf("%.1f", r.BaselineNsPerOp)
			baseAllocs = fmt.Sprintf("%d", r.BaselineAllocsPerOp)
		}
		fmt.Fprintf(w, "%-26s %10.1f %8d %8d %14s %12s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, base, baseAllocs)
	}
}
