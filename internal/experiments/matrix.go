package experiments

// This file is the concurrent experiment engine. Every experiment run
// (one scheduling policy × working set × cache policy × topology cell)
// owns a private cluster and discrete-event engine, so runs are
// independent and the grid experiments behind Figures 4–7 fan out across
// a worker pool bounded by GOMAXPROCS. Determinism is preserved because
// each run's seed is fixed by its Spec — never by worker interleaving —
// and results are collected by grid index: the same grid produces
// byte-identical Row sets whether it runs serially or on eight workers.

import (
	"fmt"
	"runtime"
	"sync"
)

// Spec names one cell of an experiment grid.
type Spec struct {
	// Name labels the cell in errors and streamed progress.
	Name string
	// Params configures the run; the workload seed inside Params is the
	// run's deterministic seed.
	Params RunParams
}

// Matrix fans a grid of independent experiment runs across a worker
// pool. The zero value runs with GOMAXPROCS workers and no streaming.
type Matrix struct {
	// Workers bounds concurrent runs; <= 0 means GOMAXPROCS.
	Workers int
	// OnRow, when non-nil, streams each finished row as it completes
	// (completion order, not grid order). Calls are serialized.
	OnRow func(Spec, Row)
}

// Run executes every spec and returns the rows in spec order. All specs
// are attempted even after a failure; the returned error is the
// lowest-index failure (deterministic regardless of worker count).
func (m Matrix) Run(specs []Spec) ([]Row, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	rows := make([]Row, len(specs))
	errs := make([]error, len(specs))
	idx := make(chan int)
	var mu sync.Mutex // serializes OnRow
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				row, err := Run(specs[i].Params)
				if err != nil {
					errs[i] = fmt.Errorf("experiments: %s: %w", specs[i].Name, err)
					continue
				}
				rows[i] = row
				if m.OnRow != nil {
					mu.Lock()
					m.OnRow(specs[i], row)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
