package experiments

// The heterogeneity sweep: the paper sketches multi-GPU-type support in
// §VI ("Heterogeneity of GPUs" — run the profiling procedure per type)
// but evaluates only a homogeneous RTX 2080 testbed. This file compares
// fleet compositions at equal device count on the non-flat traces:
// homogeneous-fast (the paper's class), homogeneous-cheap (a t4-like
// tier: ~1.6x slower, ~3x cheaper per second, capacity-matched at 20
// devices), a fixed mix of both, and
// a mixed fleet grown by the cost-aware Tiered autoscaler (cheap tier
// first, fast tier only on sustained p95 violation). The Report's Cost
// column (per-class GPU-seconds × CostPerSecond) is the metric the mixed
// autoscaled fleet is built to win.

import (
	"fmt"
	"io"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/trace"
)

// heteroClass builds one fleet class from the built-in device registry.
func heteroClass(gpuType string, count int) cluster.GPUClass {
	spec, err := cluster.DefaultFleet(gpuType)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	class := spec[0]
	class.Count = count
	return class
}

// Heterogeneity sweep fleet names, in presentation order.
const (
	FleetFastFixed   = "fixed/rtx2080"
	FleetCheapFixed  = "fixed/t4"
	FleetMixedFixed  = "fixed/mixed"
	FleetMixedTiered = "autoscale/tiered"
)

// CheapCapacityMatch is the homogeneous-cheap fleet size: the t4 class
// is 1.6x slower, so matching the 12-GPU fast fleet's aggregate service
// capacity takes ceil(12 × 1.6) = 20 devices. (12 t4s cannot serve the
// trace at all — their p95 degrades to minutes — so the equal-capacity
// fleet is the economically meaningful cheap baseline.)
const CheapCapacityMatch = 20

// heterogeneityTiered is the sweep's cost-aware autoscaler: boot 4 cheap
// GPUs; the cheap tier is demand-sized toward 85% utilization (capped at
// the capacity-matched 20), and the fast tier (cap 4) is bought only
// when the windowed p95 stays above 6 s — above the cheap fleet's
// steady-state p95 — so the expensive class is the latency escape
// hatch, not the default. Interval/cold-start mirror the elasticity
// sweep.
func heterogeneityTiered() *AutoscaleSpec {
	return &AutoscaleSpec{
		Policy:        "tiered",
		Tiers:         []string{"t4", "rtx2080"},
		TierCaps:      []int{CheapCapacityMatch, 4},
		TargetP95:     6.0,
		Utilization:   0.85,
		QueuePerGPU:   1,
		Step:          2,
		EscalateAfter: 2,
		Interval:      2 * time.Second,
		ColdStart:     5 * time.Second,
		MinGPUs:       4,
		MaxGPUs:       CheapCapacityMatch + 4,
	}
}

// HeterogeneityRow is one sweep cell: a (trace shape, fleet composition)
// pair. The embedded Report carries the Cost / ClassUsage columns.
type HeterogeneityRow struct {
	// Scenario is the arrival shape ("diurnal", "burst").
	Scenario string
	// Fleet is the composition (FleetFastFixed, ...).
	Fleet string
	Row
}

// heterogeneityCell pairs a Spec with its sweep labels.
type heterogeneityCell struct {
	scenario, fleet string
	spec            Spec
}

// heterogeneityScenarios returns the sweep grid: {diurnal, burst} ×
// {homogeneous-fast, homogeneous-cheap, mixed-fixed, mixed-autoscaled},
// in presentation order. The three fixed fleets hold the paper's 12
// devices; the autoscaled fleet boots 4 cheap GPUs and buys capacity as
// the trace demands it.
func heterogeneityScenarios(short bool) []heterogeneityCell {
	shapes := []struct {
		name  string
		shape trace.Shape
	}{
		{"diurnal", trace.Shape{Kind: trace.ShapeDiurnal, Amplitude: 0.7}},
		{"burst", trace.Shape{Kind: trace.ShapeBurst, BurstEvery: 6, BurstLen: 1, BurstFactor: 2}},
	}
	fleets := []struct {
		name string
		spec cluster.FleetSpec
		auto *AutoscaleSpec
	}{
		{FleetFastFixed, cluster.FleetSpec{heteroClass("rtx2080", 12)}, nil},
		{FleetCheapFixed, cluster.FleetSpec{heteroClass("t4", CheapCapacityMatch)}, nil},
		{FleetMixedFixed, cluster.FleetSpec{heteroClass("t4", 8), heteroClass("rtx2080", 4)}, nil},
		{FleetMixedTiered, cluster.FleetSpec{heteroClass("t4", 4), heteroClass("rtx2080", 0)}, heterogeneityTiered()},
	}
	var cells []heterogeneityCell
	for _, sh := range shapes {
		wp := ElasticityWorkload(sh.shape, short)
		for _, fl := range fleets {
			cells = append(cells, heterogeneityCell{
				scenario: sh.name,
				fleet:    fl.name,
				spec: Spec{
					Name: fmt.Sprintf("heterogeneity/%s/%s", sh.name, fl.name),
					Params: RunParams{
						Policy:     defaultElasticityPolicy,
						WorkingSet: wp.WorkingSet,
						Workload:   wp,
						Fleet:      fl.spec,
						Autoscale:  fl.auto,
					},
				},
			})
		}
	}
	return cells
}

// HeterogeneitySpecs exposes the sweep's Specs (grid order).
func HeterogeneitySpecs(short bool) []Spec {
	cells := heterogeneityScenarios(short)
	specs := make([]Spec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	return specs
}

// HeterogeneitySweep runs the sweep and returns labelled rows in grid
// order, under the usual Matrix determinism contract (identical rows —
// including per-class usage and scale-event logs — at any worker count).
func HeterogeneitySweep(m Matrix, short bool) ([]HeterogeneityRow, error) {
	cells := heterogeneityScenarios(short)
	specs := make([]Spec, len(cells))
	for i, c := range cells {
		specs[i] = c.spec
	}
	rows, err := m.Run(specs)
	if err != nil {
		return nil, err
	}
	out := make([]HeterogeneityRow, len(rows))
	for i, row := range rows {
		out[i] = HeterogeneityRow{Scenario: cells[i].scenario, Fleet: cells[i].fleet, Row: row}
	}
	return out, nil
}

// WriteHeterogeneityTable renders the sweep with the cost column next to
// the latency metrics and the per-class GPU-second split.
func WriteHeterogeneityTable(w io.Writer, rows []HeterogeneityRow) {
	fmt.Fprintf(w, "%-8s %-18s %10s %12s %10s %10s %6s  %s\n",
		"trace", "fleet", "cost", "gpu_seconds", "p95(s)", "miss", "peak", "per-class gpu-s")
	for _, r := range rows {
		classes := ""
		for i, cu := range r.ClassUsage {
			if i > 0 {
				classes += " "
			}
			classes += fmt.Sprintf("%s=%.0f", cu.Class, cu.GPUSeconds)
		}
		fmt.Fprintf(w, "%-8s %-18s %10.1f %12.1f %10.3f %10.4f %6d  %s\n",
			r.Scenario, r.Fleet, r.Cost, r.GPUSeconds, r.P95LatencySec,
			r.MissRatio, r.PeakGPUs, classes)
	}
}
