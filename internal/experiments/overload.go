package experiments

// The overload benchmark: the one experiment that measures the LIVE
// serving path (wall-clock goroutines through the gateway, not the
// discrete-event simulator). It drives the gateway past saturation in
// open loop — arrivals keep coming whether or not the system keeps up,
// the regime where a closed-loop benchmark silently self-throttles —
// and compares admission control on vs off at the same offered load:
//
//   - shedding on: the bounded admission queue + deadline rejection
//     keep tail latency flat; excess load turns into fast 429s and
//     goodput plateaus at capacity.
//   - shedding off: the backlog queues inside the cluster, so latency
//     grows with the length of the overload — the p99 divergence row.
//
// Every row also carries the allocation telemetry (runtime.MemStats
// deltas and the request-arena counters) that pins the zero-alloc
// claim under real concurrency, not just in AllocsPerRun.
//
// Unlike every other experiment these rows are wall-clock measurements:
// they are excluded from `-exp all` and from the CI determinism gates,
// and benchregress compares them only with a loose threshold.

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpufaas/internal/faas"
)

// Overload benchmark shape. The cluster is deliberately small (one
// node, four GPUs), the batch size 1 (the watchdog runs a REAL forward
// pass on the CPU per image — at batch 32 that compute would dwarf the
// simulated GPU time on a small runner), and the profile scale chosen
// so one inference occupies a GPU for ~89ms wall: capacity ≈ 45 req/s,
// which a single-core CI runner can drive at 2x in open loop without
// the load generator itself becoming the bottleneck.
const (
	overloadGPUs      = 4
	overloadTimeScale = 0.1
	overloadBatch     = 1
	overloadModel     = "resnet18"
	// overloadConcurrent is the admission concurrency limit: 2x the GPU
	// count, enough in-flight to keep every GPU busy while one batch is
	// in the scheduler hand-off.
	overloadConcurrent = 2 * overloadGPUs
	overloadQueueDepth = 2 * overloadConcurrent
	overloadMaxWait    = 100 * time.Millisecond
)

// OverloadRow is one phase of the overload benchmark.
type OverloadRow struct {
	// Name identifies the phase: "closed_loop" (the capacity
	// calibration), "overload_shed_on", "overload_shed_off".
	Name string `json:"name"`
	// Shedding reports whether admission control was enabled.
	Shedding bool `json:"shedding"`
	// OfferedRPS is the open-loop arrival rate (0 for the closed loop).
	OfferedRPS float64 `json:"offered_rps"`
	// DurationSec is the arrival window; the drain of the backlog after
	// the last arrival is included in the latency sample but not here.
	DurationSec float64 `json:"duration_sec"`

	Sent   int64 `json:"sent"`
	Served int64 `json:"served"`
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`
	// GoodputRPS is served requests over the full wall time including
	// the backlog drain — the rate the system actually sustained.
	GoodputRPS float64 `json:"goodput_rps"`

	// Latency quantiles over served requests only (sheds are not
	// latency, they are the absence of it — counted above).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// Shed decomposition (from the admission counters; zero when off).
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	ShedTenant    int64 `json:"shed_tenant"`

	// Allocation telemetry: heap allocations per sent request across
	// the whole phase (driver included) and the live request arena's
	// counters — in steady state Allocated stops at the peak in-flight
	// count while Reused keeps growing.
	AllocsPerOp    float64 `json:"allocs_per_op"`
	HeapDeltaMB    float64 `json:"heap_delta_mb"`
	ArenaAllocated int64   `json:"arena_allocated"`
	ArenaReused    int64   `json:"arena_reused"`
	ArenaPeakLive  int64   `json:"arena_peak_live"`
}

// overloadGateway builds the benchmark gateway; admission control is
// attached only for the shedding-on phase.
func overloadGateway(shed bool) (*faas.Gateway, error) {
	cfg := faas.GatewayConfig{
		Policy:        "LALBO3",
		Nodes:         1,
		GPUsPerNode:   overloadGPUs,
		TimeScale:     overloadTimeScale,
		InvokeTimeout: 60 * time.Second,
	}
	if shed {
		cfg.Admission = &faas.AdmissionConfig{
			MaxConcurrent: overloadConcurrent,
			QueueDepth:    overloadQueueDepth,
			MaxWait:       overloadMaxWait,
		}
	}
	g, err := faas.NewGateway(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := g.Deploy(faas.FunctionSpec{
		Name:       "overload-fn",
		GPUEnabled: true,
		Model:      overloadModel,
		BatchSize:  overloadBatch,
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// phaseCounts accumulates one phase's outcomes.
type phaseCounts struct {
	mu     sync.Mutex
	latsMs []float64
	served atomic.Int64
	shed   atomic.Int64
	errs   atomic.Int64
}

// invokeOnce drives one request and files its outcome.
func (pc *phaseCounts) invokeOnce(g *faas.Gateway) {
	t0 := time.Now()
	_, err := g.Invoke("overload-fn", faas.InvokeRequest{})
	latMs := float64(time.Since(t0)) / float64(time.Millisecond)
	var shedErr *faas.ShedError
	switch {
	case err == nil:
		pc.served.Add(1)
		pc.mu.Lock()
		pc.latsMs = append(pc.latsMs, latMs)
		pc.mu.Unlock()
	case errors.As(err, &shedErr):
		pc.shed.Add(1)
	default:
		pc.errs.Add(1)
	}
}

// quantiles fills the latency columns of a row from the served sample.
func (pc *phaseCounts) quantiles(row *OverloadRow) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	sort.Float64s(pc.latsMs)
	n := len(pc.latsMs)
	if n == 0 {
		return
	}
	at := func(q float64) float64 {
		i := int(q * float64(n-1))
		return pc.latsMs[i]
	}
	row.P50Ms = at(0.50)
	row.P95Ms = at(0.95)
	row.P99Ms = at(0.99)
	row.MaxMs = pc.latsMs[n-1]
}

// closedLoop drives the gateway with a fixed worker count for the
// window and returns the sustained completion rate: the measured
// capacity that sizes the open-loop overload.
func closedLoop(g *faas.Gateway, workers int, window time.Duration) (OverloadRow, error) {
	var pc phaseCounts
	var sent atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				sent.Add(1)
				pc.invokeOnce(g)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if pc.errs.Load() > 0 || pc.served.Load() == 0 {
		return OverloadRow{}, fmt.Errorf("experiments: overload calibration broke: served=%d errors=%d",
			pc.served.Load(), pc.errs.Load())
	}
	row := OverloadRow{
		Name:        "closed_loop",
		DurationSec: window.Seconds(),
		Sent:        sent.Load(),
		Served:      pc.served.Load(),
		GoodputRPS:  float64(pc.served.Load()) / elapsed.Seconds(),
	}
	pc.quantiles(&row)
	return row, nil
}

// openLoop offers arrivals at a fixed rate regardless of completions
// for the window, then drains the backlog so every in-flight request's
// latency lands in the sample.
func openLoop(g *faas.Gateway, name string, shedding bool, rps float64, window time.Duration) OverloadRow {
	interval := time.Duration(float64(time.Second) / rps)
	var pc phaseCounts
	var wg sync.WaitGroup
	var sent int64

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	start := time.Now()
	for next := start; time.Since(start) < window; next = next.Add(interval) {
		// Open loop: sleep to the schedule, and when the driver falls
		// behind (GC pause, scheduling), send immediately — late
		// arrivals burst instead of silently lowering the offered rate.
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			pc.invokeOnce(g)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	row := OverloadRow{
		Name:        name,
		Shedding:    shedding,
		OfferedRPS:  rps,
		DurationSec: window.Seconds(),
		Sent:        sent,
		Served:      pc.served.Load(),
		Shed:        pc.shed.Load(),
		Errors:      pc.errs.Load(),
		GoodputRPS:  float64(pc.served.Load()) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(sent),
		HeapDeltaMB: (float64(m1.HeapAlloc) - float64(m0.HeapAlloc)) / (1 << 20),
	}
	pc.quantiles(&row)
	for _, st := range g.AdmissionStats() {
		row.ShedQueueFull += st.ShedQueueFull
		row.ShedDeadline += st.ShedDeadline
		row.ShedTenant += st.ShedTenant
	}
	arena := g.ArenaStats()
	row.ArenaAllocated = arena.Allocated
	row.ArenaReused = arena.Reused
	row.ArenaPeakLive = arena.PeakLive
	return row
}

// OverloadSweep measures capacity in closed loop, then offers 2x that
// in open loop with shedding on and off. Short mode shrinks the
// windows to CI-smoke length.
func OverloadSweep(short bool) ([]OverloadRow, error) {
	calib, window := 3*time.Second, 6*time.Second
	if short {
		calib, window = 1500*time.Millisecond, 2*time.Second
	}

	// Capacity calibration on its own gateway (no admission: a closed
	// loop at bounded concurrency never needs shedding).
	g, err := overloadGateway(false)
	if err != nil {
		return nil, err
	}
	calibRow, err := closedLoop(g, overloadConcurrent, calib)
	if err != nil {
		return nil, err
	}
	rows := []OverloadRow{calibRow}
	offered := 2 * calibRow.GoodputRPS

	for _, shed := range []bool{true, false} {
		g, err := overloadGateway(shed)
		if err != nil {
			return nil, err
		}
		// Warm the model caches and the runtime pools before measuring.
		if _, err := closedLoop(g, overloadConcurrent, calib/3); err != nil {
			return nil, err
		}
		name := "overload_shed_on"
		if !shed {
			name = "overload_shed_off"
		}
		rows = append(rows, openLoop(g, name, shed, offered, window))
	}
	return rows, nil
}

// WriteOverloadTable renders the sweep.
func WriteOverloadTable(w io.Writer, rows []OverloadRow) {
	fmt.Fprintf(w, "%-18s %5s %8s %7s %7s %6s %5s %9s %8s %8s %8s %9s %6s\n",
		"phase", "shed", "offered", "sent", "served", "shed#", "err",
		"goodput", "p50(ms)", "p95(ms)", "p99(ms)", "allocs/op", "arena")
	for _, r := range rows {
		shed := "off"
		if r.Shedding {
			shed = "on"
		}
		fmt.Fprintf(w, "%-18s %5s %8.1f %7d %7d %6d %5d %9.1f %8.1f %8.1f %8.1f %9.1f %6d\n",
			r.Name, shed, r.OfferedRPS, r.Sent, r.Served, r.Shed, r.Errors,
			r.GoodputRPS, r.P50Ms, r.P95Ms, r.P99Ms, r.AllocsPerOp, r.ArenaAllocated)
	}
}
