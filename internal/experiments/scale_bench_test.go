package experiments

import "testing"

// BenchmarkScheduleRound1024 measures one full scheduling round on the
// saturated 1024-GPU deep-queue fixture (see hotpath.go) with the
// indexed placement path; BenchmarkScheduleRound1024Scan is the
// decision-identical scan baseline. The pair backs the scale rows in
// the gpufaas-bench/v1 snapshot.
func BenchmarkScheduleRound1024(b *testing.B) { scheduleRound1024(b, false) }

// BenchmarkScheduleRound1024Scan is the reference scan baseline.
func BenchmarkScheduleRound1024Scan(b *testing.B) { scheduleRound1024(b, true) }

// BenchmarkStreamingReplay replays the 64-GPU / 6-minute scale cell end
// to end through trace.ArrivalStream + cluster.RunWorkloadStream — the
// full O(in-flight) pipeline, reported as requests simulated per second
// of wall time.
func BenchmarkStreamingReplay(b *testing.B) {
	p := streamingReplayParams()
	var requests int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := Run(p)
		if err != nil {
			b.Fatal(err)
		}
		requests = row.Requests
	}
	b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "requests/s")
	b.ReportMetric(float64(requests), "requests")
}
