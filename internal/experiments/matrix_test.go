package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"gpufaas/internal/core"
)

// smallSpecs is a reduced policy × working-set grid (2-minute workload)
// so matrix tests stay fast while still exercising every policy.
func smallSpecs() []Spec {
	var specs []Spec
	for _, ws := range []int{15, 25} {
		for _, pol := range PaperPolicies {
			specs = append(specs, Spec{
				Name: pol.String(),
				Params: RunParams{
					Policy: pol, WorkingSet: ws,
					Workload: WorkloadParams{
						Minutes: 2, RequestsPerMinute: 120,
						WorkingSet: ws, Batch: 32, Seed: 1,
					},
				},
			})
		}
	}
	return specs
}

// TestMatrixDeterminism is the parallel-runner contract: the same seeded
// grid run serially and with 8 workers produces identical Row sets, in
// grid order.
func TestMatrixDeterminism(t *testing.T) {
	specs := smallSpecs()
	serial, err := Matrix{Workers: 1}.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Matrix{Workers: 8}.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("row %d (%s) differs:\nserial:   %+v\nparallel: %+v",
				i, specs[i].Name, serial[i], parallel[i])
		}
	}
}

// TestMatrixFullGridDeterminism runs the real Fig. 4 grid both ways; this
// is the acceptance check that the rewritten Fig4Matrix is bit-stable.
func TestMatrixFullGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	specs := Fig4Specs()
	serial, err := Matrix{Workers: 1}.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Matrix{Workers: 8}.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("row %d (%s) differs", i, specs[i].Name)
		}
	}
}

// TestMatrixConcurrentRunners exercises several Matrix runs in flight at
// once under the race detector (experiment runs share no mutable state).
func TestMatrixConcurrentRunners(t *testing.T) {
	specs := smallSpecs()[:3]
	want, err := Matrix{Workers: 1}.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := Matrix{Workers: 3}.Run(specs)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range rows {
				if !reflect.DeepEqual(rows[i], want[i]) {
					t.Errorf("concurrent run diverged at row %d", i)
				}
			}
		}()
	}
	wg.Wait()
}

// TestMatrixStreams verifies OnRow fires exactly once per spec.
func TestMatrixStreams(t *testing.T) {
	specs := smallSpecs()[:4]
	seen := make(map[string]int)
	_, err := Matrix{Workers: 4, OnRow: func(s Spec, r Row) {
		seen[s.Name+"/"+itoa(r.WorkingSet)]++
		if r.Requests == 0 {
			t.Errorf("streamed empty row for %s", s.Name)
		}
	}}.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(specs) {
		t.Fatalf("streamed %d distinct rows, want %d: %v", len(seen), len(specs), seen)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("%s streamed %d times", k, n)
		}
	}
}

// TestMatrixError: a failing cell reports the lowest-index failure with
// its spec name, regardless of worker count, and all cells are attempted.
func TestMatrixError(t *testing.T) {
	bad := RunParams{Policy: core.Policy(99), WorkingSet: 15,
		Workload: WorkloadParams{Minutes: 1, RequestsPerMinute: 10, WorkingSet: 15, Batch: 32, Seed: 1}}
	specs := []Spec{
		{Name: "ok-first", Params: smallSpecs()[0].Params},
		{Name: "bad-one", Params: bad},
		{Name: "bad-two", Params: bad},
	}
	for _, workers := range []int{1, 3} {
		_, err := Matrix{Workers: workers}.Run(specs)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "bad-one") {
			t.Errorf("workers=%d: error %q should name the first failing spec", workers, err)
		}
	}
}

// TestMatrixEmpty: no specs, no rows, no error.
func TestMatrixEmpty(t *testing.T) {
	rows, err := Matrix{}.Run(nil)
	if err != nil || rows != nil {
		t.Fatalf("empty grid: rows=%v err=%v", rows, err)
	}
}
