package experiments

// The batching frontier sweep: coalesced same-model dispatch
// (cluster.Config.MaxBatch) swept against scheduler policy and trace
// shape, emitting the latency/throughput frontier batching buys on the
// paper's 12-GPU testbed.
//
// The burst trace is deliberately saturated — the offered rate is
// ~2.3x the fleet's MaxBatch=1 capacity (325 req/min) — so the
// MaxBatch=1 rows are queue-bound (goodput pinned at capacity, tail
// latency growing with the backlog) while the batched rows convert the
// same-model queue runs into sub-linear batched launches and drain the
// same trace in a fraction of the makespan. The flat and diurnal rows
// run at the paper's nominal load and show the other side of the
// frontier: batching at moderate load trades a little average latency
// (members wait for the launch sized by the whole batch) for load
// amortization and a lower miss ratio.
//
// Unlike the overload benchmark this sweep is pure sim time:
// deterministic at any worker count, so it joins the CI determinism
// gates. It is still excluded from `-exp all` (the saturated rows take
// a while) and runs via `faas-bench -exp batch`.

import (
	"fmt"
	"io"
	"time"

	"gpufaas/internal/core"
	"gpufaas/internal/trace"
)

// BatchMaxBatches are the swept per-dispatch coalescing caps; 1 is the
// pre-batching baseline every frontier ratio is computed against.
var BatchMaxBatches = []int{1, 2, 4, 8, 16}

// batchShape is one swept trace shape with its offered load.
type batchShape struct {
	name  string
	rpm   int
	shape trace.Shape
}

// batchShapes returns the swept shapes. Flat and diurnal run at the
// paper's nominal 325 req/min; burst offers ~2.2x capacity (1000 base
// with a 2x burst minute every 6), the saturated regime the acceptance
// gate measures the goodput ratio on.
func batchShapes() []batchShape {
	return []batchShape{
		{name: "flat", rpm: 325},
		{name: "diurnal", rpm: 325, shape: trace.Shape{Kind: trace.ShapeDiurnal, Amplitude: 0.7}},
		{name: "burst", rpm: 1000, shape: trace.Shape{Kind: trace.ShapeBurst, BurstEvery: 6, BurstLen: 1, BurstFactor: 2}},
	}
}

// batchLingerWaits are the BatchWait linger windows appended as extra
// rows (LALBO3 × burst × MaxBatch=8): how much tail latency a linger
// buys in extra occupancy when the queue alone does not fill batches.
var batchLingerWaits = []time.Duration{100 * time.Millisecond, 500 * time.Millisecond}

// batchWorkload is the sweep's workload: working set 15 (the
// cache-friendly end, where same-model runs are long enough to
// coalesce) over 12 minutes, 6 in short mode.
func batchWorkload(shape batchShape, short bool) WorkloadParams {
	wp := DefaultWorkload(15)
	wp.Minutes = 12
	if short {
		wp.Minutes = 6
	}
	wp.RequestsPerMinute = shape.rpm
	wp.Shape = shape.shape
	return wp
}

// BatchRow is one frontier point.
type BatchRow struct {
	Policy      string  `json:"policy"`
	Shape       string  `json:"shape"`
	MaxBatch    int     `json:"max_batch"`
	BatchWaitMs float64 `json:"batch_wait_ms,omitempty"`

	Requests    int64   `json:"requests"`
	Failed      int64   `json:"failed"`
	MakespanSec float64 `json:"makespan_sec"`
	// GoodputRPS is completed requests over the makespan — on the
	// saturated burst trace this is the sustained drain rate, the
	// frontier's throughput axis.
	GoodputRPS float64 `json:"goodput_rps"`

	AvgLatencySec float64 `json:"avg_latency_sec"`
	P50LatencySec float64 `json:"p50_latency_sec"`
	P95LatencySec float64 `json:"p95_latency_sec"`
	P99LatencySec float64 `json:"p99_latency_sec"`

	MissRatio     float64 `json:"miss_ratio"`
	SMUtilization float64 `json:"sm_utilization"`
	LoadFraction  float64 `json:"load_fraction"`

	// BatchedDispatches counts dispatches that coalesced >= 2 requests,
	// BatchedMembers the extra requests they carried; AvgOccupancy is
	// the mean members per batched dispatch (0 when none happened).
	BatchedDispatches int64   `json:"batched_dispatches"`
	BatchedMembers    int64   `json:"batched_members"`
	AvgOccupancy      float64 `json:"avg_occupancy"`
}

// batchCell is one sweep cell's identity alongside its Spec.
type batchCell struct {
	policy   core.Policy
	shape    string
	maxBatch int
	wait     time.Duration
}

// batchCells returns the sweep grid in row order: policy outer, shape
// middle, MaxBatch inner, then the linger rows.
func batchCells() []batchCell {
	var cells []batchCell
	for _, pol := range PaperPolicies {
		for _, shape := range batchShapes() {
			for _, k := range BatchMaxBatches {
				cells = append(cells, batchCell{policy: pol, shape: shape.name, maxBatch: k})
			}
		}
	}
	for _, wait := range batchLingerWaits {
		cells = append(cells, batchCell{policy: core.LALBO3, shape: "burst", maxBatch: 8, wait: wait})
	}
	return cells
}

// BatchSpecs returns the sweep grid as Matrix specs.
func BatchSpecs(short bool) []Spec {
	shapes := make(map[string]batchShape)
	for _, s := range batchShapes() {
		shapes[s.name] = s
	}
	cells := batchCells()
	specs := make([]Spec, len(cells))
	for i, cell := range cells {
		name := fmt.Sprintf("batch/%v/%s/k=%d", cell.policy, cell.shape, cell.maxBatch)
		if cell.wait > 0 {
			name += fmt.Sprintf("/wait=%v", cell.wait)
		}
		specs[i] = Spec{
			Name: name,
			Params: RunParams{
				Policy:    cell.policy,
				MaxBatch:  cell.maxBatch,
				BatchWait: cell.wait,
				Workload:  batchWorkload(shapes[cell.shape], short),
			},
		}
	}
	return specs
}

// BatchSweep runs the frontier grid and maps the reports into rows.
func BatchSweep(m Matrix, short bool) ([]BatchRow, error) {
	rows, err := m.Run(BatchSpecs(short))
	if err != nil {
		return nil, err
	}
	cells := batchCells()
	out := make([]BatchRow, len(rows))
	for i, row := range rows {
		out[i] = batchRowFrom(cells[i], row)
	}
	return out, nil
}

// batchRowFrom projects one run's Report onto the frontier row.
func batchRowFrom(cell batchCell, row Row) BatchRow {
	br := BatchRow{
		Policy:            cell.policy.String(),
		Shape:             cell.shape,
		MaxBatch:          cell.maxBatch,
		BatchWaitMs:       float64(cell.wait) / float64(time.Millisecond),
		Requests:          row.Requests,
		Failed:            row.Failed,
		MakespanSec:       row.Makespan.Seconds(),
		AvgLatencySec:     row.AvgLatencySec,
		P50LatencySec:     row.P50LatencySec,
		P95LatencySec:     row.P95LatencySec,
		P99LatencySec:     row.P99LatencySec,
		MissRatio:         row.MissRatio,
		SMUtilization:     row.SMUtilization,
		LoadFraction:      row.LoadFraction,
		BatchedDispatches: row.BatchedDispatches,
		BatchedMembers:    row.BatchedMembers,
	}
	if br.MakespanSec > 0 {
		br.GoodputRPS = float64(br.Requests) / br.MakespanSec
	}
	if br.BatchedDispatches > 0 {
		br.AvgOccupancy = float64(br.BatchedDispatches+br.BatchedMembers) / float64(br.BatchedDispatches)
	}
	return br
}

// WriteBatchTable renders the frontier.
func WriteBatchTable(w io.Writer, rows []BatchRow) {
	fmt.Fprintf(w, "%-8s %-8s %3s %8s %7s %9s %9s %8s %8s %8s %7s %6s %7s\n",
		"policy", "shape", "k", "wait_ms", "reqs", "makespan", "goodput",
		"avg(s)", "p95(s)", "p99(s)", "miss", "occ", "batched")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-8s %3d %8.0f %7d %9.1f %9.2f %8.3f %8.3f %8.3f %7.4f %6.2f %7d\n",
			r.Policy, r.Shape, r.MaxBatch, r.BatchWaitMs, r.Requests, r.MakespanSec,
			r.GoodputRPS, r.AvgLatencySec, r.P95LatencySec, r.P99LatencySec,
			r.MissRatio, r.AvgOccupancy, r.BatchedDispatches)
	}
}
