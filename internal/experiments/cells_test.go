package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gpufaas/internal/multicell"
)

// cellTestParams is a small multi-cell workload: 16 GPUs over 4 nodes,
// two trace minutes, streaming replay.
func cellTestParams() RunParams {
	p := cellRunParams(16)
	p.Workload.Minutes = 2
	p.Workload.RequestsPerMinute = 300
	return p
}

// TestCellsGoldenEquivalenceK1 pins the tentpole's compatibility claim
// directly against the committed goldens: a K=1 multi-cell run of every
// golden cell — through the router, the cell filter and the
// materialized per-cell replay — must reproduce
// testdata/golden_reports.json byte for byte.
func TestCellsGoldenEquivalenceK1(t *testing.T) {
	specs := goldenSpecs()
	entries := make([]goldenEntry, 0, len(specs))
	for _, s := range specs {
		res, err := RunCells(CellParams{Run: s.Params, Cells: 1, Materialize: true})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		wp := s.Params.Workload
		if wp.Minutes == 0 {
			wp = DefaultWorkload(s.Params.WorkingSet)
		}
		rep := res.Cells[0].Report
		entries = append(entries, goldenEntry{
			Name: s.Name,
			Row:  Row{Policy: rep.Policy, WorkingSet: wp.WorkingSet, Report: rep},
		})
	}
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(filepath.Join("testdata", "golden_reports.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		var wantEntries []goldenEntry
		if err := json.Unmarshal(want, &wantEntries); err == nil && len(wantEntries) == len(entries) {
			for i := range entries {
				g, _ := json.Marshal(entries[i])
				w, _ := json.Marshal(wantEntries[i])
				if !bytes.Equal(g, w) {
					t.Errorf("K=1 cell report diverged at %s:\n got: %s\nwant: %s", entries[i].Name, g, w)
				}
			}
		}
		t.Fatal("K=1 multi-cell reports are not byte-identical to the single-cluster goldens")
	}
}

// TestCellMergeCorrectness pins the merge semantics against a
// materialized split of the same run: merged counters equal the sum of
// the per-cell reports, no request is lost or double-routed, and the
// merged percentiles equal the percentiles of the concatenated per-cell
// samples.
func TestCellMergeCorrectness(t *testing.T) {
	p := cellTestParams()
	res, err := RunCells(CellParams{Run: p, Cells: 4, Router: multicell.RouteHash, Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Merged

	var sumReq, sumFailed, sumMisses, sumMoves, sumRouted int64
	var sumGPUSeconds float64
	var latencies []float64
	for _, c := range res.Cells {
		sumReq += c.Report.Requests
		sumFailed += c.Report.Failed
		sumMisses += c.Report.Misses
		sumMoves += c.Report.LocalQueueMoves
		sumGPUSeconds += c.Report.GPUSeconds
		sumRouted += c.Routed
		latencies = append(latencies, c.Stats.Latencies...)
	}
	if m.Requests != sumReq || m.Failed != sumFailed || m.Misses != sumMisses || m.LocalQueueMoves != sumMoves {
		t.Errorf("merged counters != per-cell sums: merged=%+v", m)
	}
	if sumGPUSeconds != m.GPUSeconds {
		t.Errorf("GPUSeconds = %v, want %v", m.GPUSeconds, sumGPUSeconds)
	}

	// Conservation: the router split the full stream with no loss and
	// no duplication.
	total := int64(2 * 300) // minutes × requests/minute
	if sumRouted != total {
		t.Errorf("routed %d requests, workload has %d", sumRouted, total)
	}
	if m.Requests+m.Failed != total {
		t.Errorf("completed+failed = %d, want %d", m.Requests+m.Failed, total)
	}

	if int64(len(latencies)) != m.Requests {
		t.Fatalf("latency sample size %d != completed %d", len(latencies), m.Requests)
	}
	if m.CellSpread.MinRequests > m.CellSpread.MaxRequests {
		t.Errorf("inverted spread: %+v", m.CellSpread)
	}
}

// TestRunCellsWorkerCountDeterminism is the in-repo half of the CI
// determinism gate: the same multi-cell configuration must produce
// byte-identical results at any worker count, in streaming mode, for
// every router policy.
func TestRunCellsWorkerCountDeterminism(t *testing.T) {
	p := cellTestParams()
	for _, pol := range multicell.RouterPolicies {
		marshal := func(workers int) []byte {
			res, err := RunCells(CellParams{Run: p, Cells: 4, Router: pol, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", pol, workers, err)
			}
			res.WallSeconds = 0 // the one volatile field
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		if serial, pooled := marshal(1), marshal(4); !bytes.Equal(serial, pooled) {
			t.Errorf("%v: results differ between workers=1 and workers=4", pol)
		}
	}
}

// TestRunCellsStreamingMatchesMaterialized pins that the two replay
// modes agree on everything but the streaming counters for a
// non-autoscaled cell config (the same equivalence the single-cluster
// stream test pins).
func TestRunCellsStreamingMatchesMaterialized(t *testing.T) {
	p := cellTestParams()
	run := func(materialize bool) multicell.MergedReport {
		res, err := RunCells(CellParams{Run: p, Cells: 2, Router: multicell.RouteLeastLoaded, Materialize: materialize})
		if err != nil {
			t.Fatal(err)
		}
		return res.Merged
	}
	streamed, materialized := run(false), run(true)
	if streamed.Streaming == nil {
		t.Fatal("streaming run carries no streaming stats")
	}
	streamed.Streaming = nil
	// The event queue peaks differently by construction: materialized
	// replay heaps the whole trace at t=0, streaming one minute at a
	// time (that bound is the point of streaming).
	streamed.MaxEventQueueLen, materialized.MaxEventQueueLen = 0, 0
	a, _ := json.Marshal(streamed)
	b, _ := json.Marshal(materialized)
	if !bytes.Equal(a, b) {
		t.Errorf("streamed != materialized:\n%s\n%s", a, b)
	}
}

// TestRunCellsRejectsBadShard pins the partition guardrails.
func TestRunCellsRejectsBadShard(t *testing.T) {
	p := cellTestParams() // 4 nodes
	if _, err := RunCells(CellParams{Run: p, Cells: 8}); err == nil {
		t.Error("sharding 4 nodes into 8 cells should fail")
	}
	if _, err := RunCells(CellParams{Run: p, Cells: 0}); err == nil {
		t.Error("0 cells should fail")
	}
}
