package experiments

import (
	"strings"
	"testing"
)

// TestOverloadSweep runs the short sweep end to end and pins the
// benchmark's two claims loosely enough for a noisy single-core
// runner: with shedding on, overload turns into 429s and tail latency
// stays far below the shedding-off divergence; the arena keeps the
// request population bounded by in-flight, not by request count.
func TestOverloadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	if raceEnabled {
		// The race detector slows the watchdog's real CPU forward pass
		// enough that the in-process generator can't drive the gateway
		// past saturation on a small runner; CI covers this path
		// un-instrumented via the overload smoke step.
		t.Skip("wall-clock benchmark is meaningless under the race detector")
	}
	rows, err := OverloadSweep(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (closed_loop, shed_on, shed_off)", len(rows))
	}
	byName := map[string]OverloadRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	calib, okC := byName["closed_loop"]
	on, okOn := byName["overload_shed_on"]
	off, okOff := byName["overload_shed_off"]
	if !okC || !okOn || !okOff {
		t.Fatalf("missing phases: %+v", rows)
	}

	if calib.GoodputRPS <= 0 || calib.Served == 0 {
		t.Fatalf("calibration measured no capacity: %+v", calib)
	}
	if on.OfferedRPS < 1.5*calib.GoodputRPS {
		t.Errorf("offered %.1f rps is not ~2x capacity %.1f", on.OfferedRPS, calib.GoodputRPS)
	}

	// Shedding on: overload is visibly rejected, and served + shed +
	// errors accounts for every arrival.
	if on.Shed == 0 {
		t.Error("shedding-on phase shed nothing at 2x capacity")
	}
	if on.Shed != on.ShedQueueFull+on.ShedDeadline+on.ShedTenant {
		t.Errorf("shed %d != reason decomposition %d+%d+%d",
			on.Shed, on.ShedQueueFull, on.ShedDeadline, on.ShedTenant)
	}
	if got := on.Served + on.Shed + on.Errors; got != on.Sent {
		t.Errorf("outcomes %d != sent %d", got, on.Sent)
	}
	if on.Errors > 0 || off.Errors > 0 {
		t.Errorf("hard errors under overload: on=%d off=%d", on.Errors, off.Errors)
	}

	// The headline: bounded tail with shedding vs divergence without.
	if on.P99Ms <= 0 || off.P99Ms <= 0 {
		t.Fatalf("empty latency samples: on=%+v off=%+v", on, off)
	}
	if on.P99Ms >= off.P99Ms {
		t.Errorf("shedding-on p99 %.1fms >= shedding-off p99 %.1fms — no divergence",
			on.P99Ms, off.P99Ms)
	}

	// Allocation discipline: the arena population is bounded by peak
	// in-flight, never by request count.
	for _, r := range []OverloadRow{on, off} {
		if r.ArenaAllocated == 0 || r.ArenaReused == 0 {
			t.Errorf("%s: arena never engaged: %+v", r.Name, r)
		}
		if r.ArenaAllocated > r.ArenaPeakLive {
			t.Errorf("%s: arena allocated %d > peak in-flight %d — reuse broken",
				r.Name, r.ArenaAllocated, r.ArenaPeakLive)
		}
		if r.AllocsPerOp <= 0 {
			t.Errorf("%s: allocs/op = %g, telemetry missing", r.Name, r.AllocsPerOp)
		}
	}
	// With admission on, in-flight — and therefore the arena population
	// — is capped by the concurrency limit; without it the backlog is
	// the cap, which under 2x overload is far larger.
	if on.ArenaPeakLive > overloadConcurrent {
		t.Errorf("shedding-on arena peak %d exceeds the admission limit %d",
			on.ArenaPeakLive, overloadConcurrent)
	}
	if off.ArenaPeakLive <= on.ArenaPeakLive {
		t.Errorf("shedding-off arena peak %d not above shedding-on peak %d — no backlog built",
			off.ArenaPeakLive, on.ArenaPeakLive)
	}

	var sb strings.Builder
	WriteOverloadTable(&sb, rows)
	out := sb.String()
	for _, want := range []string{"closed_loop", "overload_shed_on", "overload_shed_off", "p99(ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
