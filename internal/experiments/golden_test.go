package experiments

// Report-equivalence goldens for hot-path refactors. The committed
// testdata/golden_reports.json was generated from the pre-refactor
// implementation (container/heap event queue, map-keyed scheduler state,
// slice-splice global queue); TestReportGolden re-runs the same cells and
// requires the marshalled Reports to be byte-identical, pinning that
// scheduler decisions, event ordering and every derived metric survived
// the optimization unchanged. Cells cover all three policies at the
// paper's hardest working set plus churn-heavy elasticity runs (GPUs
// provisioned and drain-decommissioned mid-trace under both autoscale
// policies).
//
// Regenerate (only when an intentional behavior change lands) with:
//
//	go test ./internal/experiments -run TestReportGolden -update-golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_reports.json")

// goldenSpecs returns the pinned cells: LB/LALB/LALBO3 at working set 35,
// one autoscaled run per policy flavor (diurnal/target-util and
// burst/step), which exercise elastic membership churn, and one
// mixed-fleet tiered-autoscale run pinning heterogeneous membership
// (per-type profiles, classed scale events, cost accounting).
func goldenSpecs() []Spec {
	var specs []Spec
	for _, pol := range PaperPolicies {
		specs = append(specs, Spec{
			Name:   fmt.Sprintf("golden/%v/ws=35", pol),
			Params: RunParams{Policy: pol, WorkingSet: 35},
		})
	}
	for _, s := range ElasticitySpecs(true) {
		switch s.Name {
		case "elasticity/diurnal/autoscale/target-util", "elasticity/burst/autoscale/step":
			specs = append(specs, s)
		}
	}
	for _, s := range HeterogeneitySpecs(true) {
		if s.Name == "heterogeneity/diurnal/"+FleetMixedTiered {
			specs = append(specs, s)
		}
	}
	return specs
}

// goldenEntry is one named report; a slice (not a map) keeps the JSON
// rendering order-stable so the comparison can be byte-for-byte.
type goldenEntry struct {
	Name string
	Row  Row
}

func TestReportGolden(t *testing.T) {
	specs := goldenSpecs()
	if len(specs) != 6 {
		t.Fatalf("golden cells = %d, want 6 (did an elasticity/heterogeneity spec get renamed?)", len(specs))
	}
	entries := make([]goldenEntry, 0, len(specs))
	for _, s := range specs {
		row, err := Run(s.Params)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		entries = append(entries, goldenEntry{Name: s.Name, Row: row})
	}
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_reports.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Locate the first diverging cell for a readable failure.
		var wantEntries []goldenEntry
		if err := json.Unmarshal(want, &wantEntries); err == nil && len(wantEntries) == len(entries) {
			for i := range entries {
				g, _ := json.Marshal(entries[i])
				w, _ := json.Marshal(wantEntries[i])
				if !bytes.Equal(g, w) {
					t.Errorf("report diverged at %s:\n got: %s\nwant: %s", entries[i].Name, g, w)
				}
			}
		}
		t.Fatal("reports are not byte-identical to the pre-refactor golden")
	}
}
