package experiments

// Batching equivalence, conservation, determinism and the frontier
// acceptance gate (ISSUE 9). Batching is a strict extension: MaxBatch=1
// must reproduce the pre-batching goldens byte-for-byte, every batched
// completion must account for each member exactly once, the sweep must
// be worker-count independent, and MaxBatch=8 must deliver >= 2x the
// MaxBatch=1 goodput on the saturated burst trace at a bounded tail.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/core"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
)

// TestBatchOneGoldenEquivalence re-runs the golden cells with batching
// explicitly configured at MaxBatch=1 (plus a linger window, which must
// be ignored at that cap) and requires the reports to stay
// byte-identical to testdata/golden_reports.json: enabling the batching
// plumbing without coalescing is a no-op.
func TestBatchOneGoldenEquivalence(t *testing.T) {
	entries := make([]goldenEntry, 0, len(goldenSpecs()))
	for _, s := range goldenSpecs() {
		p := s.Params
		p.MaxBatch = 1
		p.BatchWait = 250 * time.Millisecond // ignored at MaxBatch <= 1
		row, err := Run(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		entries = append(entries, goldenEntry{Name: s.Name, Row: row})
	}
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(filepath.Join("testdata", "golden_reports.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("MaxBatch=1 reports are not byte-identical to the pre-batching goldens")
	}
}

// TestBatchConservation runs a saturated batched workload through the
// streaming path and checks every member request completes exactly
// once: per-ID completion counts, completed+failed == injected, and the
// request arena's live count back at zero after the drain.
func TestBatchConservation(t *testing.T) {
	wp := batchWorkload(batchShapes()[2], true) // saturated burst
	built, err := StreamWorkload(wp, models.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Policy = core.LALBO3
	cfg.MaxBatch = 8
	cfg.Zoo = built.Zoo
	seen := make(map[int64]int)
	cfg.OnResult = func(res gpumgr.Result) { seen[res.ReqID]++ }
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWorkloadStream(built.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchedDispatches == 0 || rep.BatchedMembers == 0 {
		t.Fatalf("saturated run coalesced nothing: %+v", rep)
	}
	if rep.Streaming == nil {
		t.Fatal("streaming stats missing")
	}
	if got := rep.Requests + rep.Failed; got != rep.Streaming.Requests {
		t.Fatalf("completed(%d)+failed(%d) != injected(%d)", rep.Requests, rep.Failed, rep.Streaming.Requests)
	}
	if rep.Streaming.FinalLive != 0 {
		t.Fatalf("arena live = %d after drain, want 0", rep.Streaming.FinalLive)
	}
	if int64(len(seen)) != rep.Requests {
		t.Fatalf("distinct completed IDs = %d, report says %d", len(seen), rep.Requests)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request %d completed %d times", id, n)
		}
	}
}

// TestBatchSweepDeterministic runs a frontier subset at workers 1 and 8
// and requires byte-identical JSON — the in-package form of the CI
// `-det-json` gate (which covers the full sweep via faas-bench).
func TestBatchSweepDeterministic(t *testing.T) {
	specs := BatchSpecs(true)
	// Subset: the first policy's flat MaxBatch block plus the linger
	// rows — enough cells to cross worker boundaries without running
	// every saturated cell twice (the CI faas-bench gate covers the
	// full grid).
	subset := append(specs[:4:4], specs[len(specs)-2:]...)
	run := func(workers int) []byte {
		t.Helper()
		rows, err := Matrix{Workers: workers}.Run(subset)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if w1, w8 := run(1), run(8); !bytes.Equal(w1, w8) {
		t.Fatal("batch sweep rows differ between workers=1 and workers=8")
	}
}

// TestBatchFrontierAcceptance is the ISSUE 9 acceptance gate: on the
// saturated burst trace, MaxBatch=8 must deliver at least 2x the
// MaxBatch=1 goodput while keeping the p95 bounded (below the
// queue-bound baseline's, and under an absolute ceiling).
func TestBatchFrontierAcceptance(t *testing.T) {
	burst := batchShapes()[2]
	run := func(k int) BatchRow {
		t.Helper()
		row, err := Run(RunParams{
			Policy:   core.LALBO3,
			MaxBatch: k,
			Workload: batchWorkload(burst, true),
		})
		if err != nil {
			t.Fatal(err)
		}
		return batchRowFrom(batchCell{policy: core.LALBO3, shape: burst.name, maxBatch: k}, row)
	}
	base, batched := run(1), run(8)
	if base.GoodputRPS <= 0 {
		t.Fatalf("baseline goodput = %v", base.GoodputRPS)
	}
	ratio := batched.GoodputRPS / base.GoodputRPS
	t.Logf("goodput %.2f -> %.2f rps (%.2fx), p95 %.2fs -> %.2fs, occupancy %.2f",
		base.GoodputRPS, batched.GoodputRPS, ratio,
		base.P95LatencySec, batched.P95LatencySec, batched.AvgOccupancy)
	if ratio < 2 {
		t.Fatalf("MaxBatch=8 goodput ratio = %.2fx (%.2f vs %.2f rps), want >= 2x",
			ratio, batched.GoodputRPS, base.GoodputRPS)
	}
	if batched.P95LatencySec >= base.P95LatencySec {
		t.Fatalf("MaxBatch=8 p95 %.2fs not below MaxBatch=1 p95 %.2fs",
			batched.P95LatencySec, base.P95LatencySec)
	}
	if batched.P95LatencySec > 60 {
		t.Fatalf("MaxBatch=8 p95 %.2fs exceeds the 60s bound", batched.P95LatencySec)
	}
}
