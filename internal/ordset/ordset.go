// Package ordset maintains string slices ordered by a caller-owned
// registration index (gpuID → monotone ord). Two hot structures share
// this shape — the cluster's incremental idle-GPU set and the cache
// index's per-model holder lists — and the scheduler's indexed/scan
// equivalence contract requires them to order identically, so the
// insert/remove logic lives here once.
package ordset

import "sort"

// Insert returns s with id inserted at its registration-order position;
// s is returned unchanged if id is already present. ids missing from ord
// sort as 0 — callers register before inserting.
func Insert(s []string, ord map[string]int, id string) []string {
	i := sort.Search(len(s), func(i int) bool { return ord[s[i]] >= ord[id] })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// Remove returns s without id; unchanged if absent.
func Remove(s []string, ord map[string]int, id string) []string {
	i := sort.Search(len(s), func(i int) bool { return ord[s[i]] >= ord[id] })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
