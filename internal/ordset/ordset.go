// Package ordset defines the dense GPU registration ordinal (Ord) and
// maintains ascending Ord slices. GPU string IDs are interned to Ords
// once, at cluster registration (the cache index is the authority); every
// hot-path structure — the cluster's incremental idle set, the cache
// index's per-model holder lists, the scheduler's taken/draining/local-
// queue state — is then a slice or bitset indexed by Ord instead of a
// map[string]. Ords are monotone and never reused, so a sorted Ord slice
// is exactly "registration order", which the scheduler's determinism
// contract requires all views to share.
package ordset

import "slices"

// Ord is a dense GPU registration ordinal: assigned monotonically at
// registration, never reused after removal. Never reusing ordinals is
// what keeps "sorted by Ord" equal to "registration order" across
// elastic churn; the cost is that Ord-indexed state grows with the
// cumulative number of GPUs ever registered (a few dozen bytes per dead
// ordinal across the cluster's tables), not the current fleet size.
type Ord = int32

// Insert returns s with o inserted at its sorted position; s is returned
// unchanged if o is already present.
func Insert(s []Ord, o Ord) []Ord {
	i, found := slices.BinarySearch(s, o)
	if found {
		return s
	}
	return slices.Insert(s, i, o)
}

// Remove returns s without o; unchanged if absent.
func Remove(s []Ord, o Ord) []Ord {
	i, found := slices.BinarySearch(s, o)
	if found {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// Contains reports whether o is in the sorted slice s.
func Contains(s []Ord, o Ord) bool {
	_, found := slices.BinarySearch(s, o)
	return found
}
