package ordset

import (
	"reflect"
	"testing"
)

func TestInsertRemoveOrder(t *testing.T) {
	ord := map[string]int{"a": 0, "b": 1, "c": 2, "d": 7}
	var s []string
	for _, id := range []string{"c", "a", "d", "b"} {
		s = Insert(s, ord, id)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(s, want) {
		t.Fatalf("s = %v, want %v", s, want)
	}
	// Duplicate insert is a no-op.
	if got := Insert(s, ord, "b"); !reflect.DeepEqual(got, s) {
		t.Errorf("dup insert = %v", got)
	}
	s = Remove(s, ord, "b")
	s = Remove(s, ord, "b") // absent: no-op
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(s, want) {
		t.Fatalf("after remove s = %v, want %v", s, want)
	}
	// Monotone ords from re-registration keep sorting after everything.
	ord["e"] = 99
	s = Insert(s, ord, "e")
	if s[len(s)-1] != "e" {
		t.Errorf("monotone insert = %v", s)
	}
}
