package ordset

import (
	"reflect"
	"testing"
)

func TestInsertRemoveOrder(t *testing.T) {
	var s []Ord
	for _, o := range []Ord{2, 0, 7, 1} {
		s = Insert(s, o)
	}
	if want := []Ord{0, 1, 2, 7}; !reflect.DeepEqual(s, want) {
		t.Fatalf("s = %v, want %v", s, want)
	}
	// Duplicate insert is a no-op.
	if got := Insert(s, 1); !reflect.DeepEqual(got, s) {
		t.Errorf("dup insert = %v", got)
	}
	s = Remove(s, 1)
	s = Remove(s, 1) // absent: no-op
	if want := []Ord{0, 2, 7}; !reflect.DeepEqual(s, want) {
		t.Fatalf("after remove s = %v, want %v", s, want)
	}
	// Monotone ords from re-registration keep sorting after everything.
	s = Insert(s, 99)
	if s[len(s)-1] != 99 {
		t.Errorf("monotone insert = %v", s)
	}
	for _, c := range []struct {
		o    Ord
		want bool
	}{{0, true}, {1, false}, {7, true}, {99, true}, {100, false}, {-1, false}} {
		if Contains(s, c.o) != c.want {
			t.Errorf("Contains(%v) != %v in %v", c.o, c.want, s)
		}
	}
	if Contains(nil, 0) {
		t.Error("Contains on empty slice")
	}
	if got := Remove(nil, 3); len(got) != 0 {
		t.Errorf("Remove on empty = %v", got)
	}
}
