package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gpufaas/internal/sim"
)

const gib = int64(1) << 30

func newDev(t *testing.T) *Device {
	t.Helper()
	d, err := New(Config{ID: "n0/gpu0", Node: "n0", Type: "rtx2080", Capacity: 8 * gib})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ID: "", Capacity: 1}); err == nil {
		t.Error("want error for empty ID")
	}
	if _, err := New(Config{ID: "x", Capacity: 0}); err == nil {
		t.Error("want error for zero capacity")
	}
}

func TestAdmitEvictMemoryAccounting(t *testing.T) {
	d := newDev(t)
	if err := d.Admit("resnet18", 2*gib, 0); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 2*gib || d.MemFree() != 6*gib {
		t.Errorf("mem = %d used / %d free", d.MemUsed(), d.MemFree())
	}
	if !d.Resident("resnet18") {
		t.Error("model should be resident")
	}
	if sz, ok := d.ResidentSize("resnet18"); !ok || sz != 2*gib {
		t.Errorf("ResidentSize = %d, %v", sz, ok)
	}
	if err := d.Admit("resnet18", gib, 0); !errors.Is(err, ErrResident) {
		t.Errorf("double admit: %v", err)
	}
	if err := d.Evict("resnet18"); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 0 {
		t.Errorf("MemUsed after evict = %d", d.MemUsed())
	}
	if err := d.Evict("resnet18"); !errors.Is(err, ErrNotResident) {
		t.Errorf("double evict: %v", err)
	}
}

func TestAdmitOOMRejected(t *testing.T) {
	d := newDev(t)
	if err := d.Admit("big", 7*gib, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Admit("too-big", 2*gib, 0); !errors.Is(err, ErrOOM) {
		t.Fatalf("want OOM, got %v", err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.Admit("zero", 0, 0); err == nil {
		t.Error("want error for zero size")
	}
}

func TestExecuteMissLifecycle(t *testing.T) {
	d := newDev(t)
	now := sim.Time(0)
	if err := d.Admit("vgg19", 4*gib, now); err != nil {
		t.Fatal(err)
	}
	fin, err := d.Begin(1, "vgg19", 4*time.Second, time.Second, now)
	if err != nil {
		t.Fatal(err)
	}
	if fin != sim.Time(5*time.Second) {
		t.Errorf("finishAt = %v", fin)
	}
	if !d.Busy() || d.Phase() != Loading {
		t.Errorf("phase = %v busy = %v", d.Phase(), d.Busy())
	}
	inf, ok := d.Inflight()
	if !ok || inf.ReqID != 1 || inf.LoadUntil != sim.Time(4*time.Second) {
		t.Errorf("inflight = %+v %v", inf, ok)
	}
	if err := d.LoadDone(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Phase() != Inferring {
		t.Errorf("phase after load = %v", d.Phase())
	}
	done, err := d.Complete(sim.Time(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if done.ReqID != 1 || d.Busy() || d.Phase() != Idle {
		t.Errorf("completion state wrong: %+v", done)
	}
	if d.Completed() != 1 {
		t.Errorf("Completed = %d", d.Completed())
	}
	u := d.Utilization(sim.Time(5 * time.Second))
	if u.Loading != 4*time.Second || u.Inferring != time.Second || u.Idle != 0 {
		t.Errorf("utilization = %+v", u)
	}
	if sm := u.SM(); sm < 0.19 || sm > 0.21 {
		t.Errorf("SM = %g, want 0.2", sm)
	}
}

func TestExecuteHitSkipsLoading(t *testing.T) {
	d := newDev(t)
	if err := d.Admit("resnet18", gib, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Begin(7, "resnet18", 0, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if d.Phase() != Inferring {
		t.Errorf("hit should start in Inferring, got %v", d.Phase())
	}
	if _, err := d.Complete(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	u := d.Utilization(sim.Time(time.Second))
	if u.SM() != 1 {
		t.Errorf("SM = %g, want 1 for pure inference", u.SM())
	}
}

func TestBeginErrors(t *testing.T) {
	d := newDev(t)
	if _, err := d.Begin(1, "ghost", 0, time.Second, 0); !errors.Is(err, ErrNotResident) {
		t.Errorf("Begin non-resident: %v", err)
	}
	if err := d.Admit("m", gib, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Begin(1, "m", 0, 0, 0); err == nil {
		t.Error("want error for zero inference time")
	}
	if _, err := d.Begin(1, "m", -time.Second, time.Second, 0); err == nil {
		t.Error("want error for negative load time")
	}
	if _, err := d.Begin(1, "m", 0, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Begin(2, "m", 0, time.Second, 0); !errors.Is(err, ErrBusy) {
		t.Errorf("Begin while busy: %v", err)
	}
}

func TestEvictInflightModelRefused(t *testing.T) {
	d := newDev(t)
	if err := d.Admit("live", gib, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Admit("victim", gib, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Begin(1, "live", 0, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Evict("live"); !errors.Is(err, ErrInUse) {
		t.Errorf("evicting in-flight model: %v", err)
	}
	if err := d.Evict("victim"); err != nil {
		t.Errorf("evicting idle model while busy should work: %v", err)
	}
}

func TestLoadDoneAndCompleteErrors(t *testing.T) {
	d := newDev(t)
	if err := d.LoadDone(0); !errors.Is(err, ErrIdle) {
		t.Errorf("LoadDone idle: %v", err)
	}
	if _, err := d.Complete(0); !errors.Is(err, ErrIdle) {
		t.Errorf("Complete idle: %v", err)
	}
	if err := d.Admit("m", gib, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Begin(1, "m", 0, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.LoadDone(0); err == nil {
		t.Error("LoadDone while inferring should fail")
	}
}

func TestEstimatedFinish(t *testing.T) {
	d := newDev(t)
	if d.EstimatedFinish(0) != 0 {
		t.Error("idle device should estimate 0")
	}
	if err := d.Admit("m", gib, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Begin(1, "m", 2*time.Second, time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.EstimatedFinish(sim.Time(time.Second)); got != 2*time.Second {
		t.Errorf("EstimatedFinish = %v", got)
	}
	if got := d.EstimatedFinish(sim.Time(10 * time.Second)); got != 0 {
		t.Errorf("past-deadline estimate = %v", got)
	}
}

func TestUtilizationIdleOnly(t *testing.T) {
	d := newDev(t)
	u := d.Utilization(sim.Time(10 * time.Second))
	if u.Idle != 10*time.Second || u.SM() != 0 || u.BusyFraction() != 0 {
		t.Errorf("utilization = %+v", u)
	}
	if (Utilization{}).SM() != 0 {
		t.Error("zero-total SM should be 0")
	}
}

func TestPhaseString(t *testing.T) {
	if Idle.String() != "idle" || Loading.String() != "loading" || Inferring.String() != "inferring" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() == "" {
		t.Error("unknown phase should still stringify")
	}
}

// Property: a random sequence of admit/evict/execute operations never
// violates device invariants, and memory accounting always balances.
func TestDeviceInvariantProperty(t *testing.T) {
	modelsList := []string{"a", "b", "c", "d", "e", "f"}
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(Config{ID: "p", Capacity: 4 * gib})
		if err != nil {
			return false
		}
		now := sim.Time(0)
		reqID := int64(0)
		for _, op := range ops {
			m := modelsList[int(op)%len(modelsList)]
			switch op % 4 {
			case 0:
				_ = d.Admit(m, gib+int64(rng.Intn(int(gib))), now)
			case 1:
				_ = d.Evict(m)
			case 2:
				if d.Resident(m) && !d.Busy() {
					reqID++
					if _, err := d.Begin(reqID, m, time.Second, time.Second, now); err != nil {
						return false
					}
				}
			case 3:
				if d.Busy() {
					now += sim.Time(time.Second)
					_ = d.LoadDone(now)
					now += sim.Time(time.Second)
					if _, err := d.Complete(now); err != nil {
						return false
					}
				}
			}
			now += sim.Time(100 * time.Millisecond)
			if err := d.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization phases always sum to total elapsed time.
func TestUtilizationSumsProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		d, err := New(Config{ID: "p", Capacity: 8 * gib})
		if err != nil {
			return false
		}
		_ = d.Admit("m", gib, 0)
		now := sim.Time(0)
		for _, s := range steps {
			dt := sim.Time(time.Duration(s%50+1) * time.Millisecond)
			switch s % 3 {
			case 0:
				if !d.Busy() {
					_, _ = d.Begin(1, "m", time.Duration(dt), time.Duration(dt), now)
				}
			case 1:
				if d.Phase() == Loading {
					_ = d.LoadDone(now)
				}
			case 2:
				if d.Busy() {
					if d.Phase() == Loading {
						_ = d.LoadDone(now)
					}
					_, _ = d.Complete(now)
				}
			}
			now += dt
		}
		u := d.Utilization(now)
		return u.Idle+u.Loading+u.Inferring == time.Duration(now) && u.Total == time.Duration(now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResidentModelsSorted(t *testing.T) {
	d := newDev(t)
	for _, m := range []string{"zeta", "alpha", "mid"} {
		if err := d.Admit(m, gib, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := d.ResidentModels()
	if len(got) != 3 || got[0] != "alpha" || got[2] != "zeta" {
		t.Errorf("ResidentModels = %v", got)
	}
}
