// Package gpu models the GPU devices of the FaaS cluster. A Device is a
// passive state machine tracking exactly the quantities the paper's
// scheduling problem is defined over (§II-B, §III-C):
//
//   - device memory: models occupy GPU memory while resident; admitting a
//     model beyond capacity is an OOM and is rejected (the Cache Manager
//     must evict victims first);
//   - execution: one inference request at a time per GPU (§III-C "GPU
//     Manager enforces each GPU to run one request at a time"); a request
//     passes through an optional Loading phase (PCIe upload on a cache
//     miss) followed by an Inferring phase;
//   - SM utilization: the streaming multiprocessors are busy only during
//     the Inferring phase — "the SM utilization remains zero until the
//     victim model becomes evicted and the new model is uploaded" (§V-C);
//   - estimated finish time of the in-flight request, which the LALB
//     scheduler compares against model-load times (§IV-A).
//
// Devices carry no clock; the GPU Manager advances them at event
// boundaries, which keeps the same code exact under the discrete-event
// engine and the live gateway.
package gpu

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gpufaas/internal/sim"
)

// Phase is the device's activity state.
type Phase int

// Device phases. Loading and Inferring both make the device busy; only
// Inferring counts toward SM utilization.
const (
	Idle Phase = iota
	Loading
	Inferring
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Idle:
		return "idle"
	case Loading:
		return "loading"
	case Inferring:
		return "inferring"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Errors reported by Device operations.
var (
	ErrOOM         = errors.New("gpu: out of memory")
	ErrBusy        = errors.New("gpu: device busy")
	ErrNotResident = errors.New("gpu: model not resident")
	ErrResident    = errors.New("gpu: model already resident")
	ErrInUse       = errors.New("gpu: model in use by in-flight request")
	ErrIdle        = errors.New("gpu: device idle")
)

// Inflight describes the request currently executing on a device.
type Inflight struct {
	ReqID    int64
	Model    string
	Start    sim.Time
	FinishAt sim.Time
	// LoadUntil is when the Loading phase ends (== Start on a cache hit).
	LoadUntil sim.Time
}

// Device is one GPU. It is not safe for concurrent use; the owning GPU
// Manager serializes access.
type Device struct {
	id       string
	node     string
	gpuType  string
	capacity int64

	memUsed  int64
	resident map[string]int64 // model -> occupancy bytes
	loadedAt map[string]sim.Time

	phase      Phase
	phaseSince sim.Time
	accum      [3]time.Duration
	inflight   *Inflight

	completed int64
}

// Config describes a device to create.
type Config struct {
	ID       string
	Node     string
	Type     string
	Capacity int64 // bytes of GPU memory
	// CreatedAt anchors the phase/utilization accounting: a GPU
	// provisioned mid-run (elastic scale-up) must not be charged idle
	// time for the epoch before it existed. Zero is the run epoch.
	CreatedAt sim.Time
}

// New creates an idle device with the given memory capacity.
func New(cfg Config) (*Device, error) {
	if cfg.ID == "" {
		return nil, errors.New("gpu: empty device ID")
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("gpu: non-positive capacity %d for %s", cfg.Capacity, cfg.ID)
	}
	return &Device{
		id:         cfg.ID,
		node:       cfg.Node,
		gpuType:    cfg.Type,
		capacity:   cfg.Capacity,
		phaseSince: cfg.CreatedAt,
		resident:   make(map[string]int64),
		loadedAt:   make(map[string]sim.Time),
	}, nil
}

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// Node returns the host node name.
func (d *Device) Node() string { return d.node }

// Type returns the GPU type used for profile lookup.
func (d *Device) Type() string { return d.gpuType }

// Capacity returns total device memory in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// MemUsed returns bytes occupied by resident models.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemFree returns unoccupied bytes.
func (d *Device) MemFree() int64 { return d.capacity - d.memUsed }

// Busy reports whether a request is executing.
func (d *Device) Busy() bool { return d.inflight != nil }

// Phase returns the current activity phase.
func (d *Device) Phase() Phase { return d.phase }

// Inflight returns a copy of the in-flight descriptor, or false when idle.
func (d *Device) Inflight() (Inflight, bool) {
	if d.inflight == nil {
		return Inflight{}, false
	}
	return *d.inflight, true
}

// Completed returns the number of requests finished on this device.
func (d *Device) Completed() int64 { return d.completed }

// Resident reports whether the model is loaded in device memory.
func (d *Device) Resident(model string) bool {
	_, ok := d.resident[model]
	return ok
}

// ResidentModels returns the resident model names, sorted for determinism.
func (d *Device) ResidentModels() []string {
	out := make([]string, 0, len(d.resident))
	for m := range d.resident {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ResidentSize returns the occupancy of a resident model in bytes.
func (d *Device) ResidentSize(model string) (int64, bool) {
	sz, ok := d.resident[model]
	return sz, ok
}

// Admit marks a model resident, charging its occupancy against device
// memory. It fails with ErrOOM when the model does not fit — the caller
// (Cache Manager via GPU Manager) must evict victims first; the device
// never silently over-commits, which is the paper's no-OOM invariant.
func (d *Device) Admit(model string, bytes int64, now sim.Time) error {
	if bytes <= 0 {
		return fmt.Errorf("gpu: non-positive model size %d", bytes)
	}
	if _, ok := d.resident[model]; ok {
		return fmt.Errorf("%w: %s on %s", ErrResident, model, d.id)
	}
	if d.memUsed+bytes > d.capacity {
		return fmt.Errorf("%w: %s needs %d, free %d on %s", ErrOOM, model, bytes, d.MemFree(), d.id)
	}
	d.resident[model] = bytes
	d.loadedAt[model] = now
	d.memUsed += bytes
	return nil
}

// Evict removes a resident model, freeing its memory. The model used by
// the in-flight request cannot be evicted (the GPU Manager would be
// killing the process serving a live request).
func (d *Device) Evict(model string) error {
	sz, ok := d.resident[model]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrNotResident, model, d.id)
	}
	if d.inflight != nil && d.inflight.Model == model {
		return fmt.Errorf("%w: %s on %s", ErrInUse, model, d.id)
	}
	delete(d.resident, model)
	delete(d.loadedAt, model)
	d.memUsed -= sz
	return nil
}

func (d *Device) setPhase(p Phase, now sim.Time) {
	if now > d.phaseSince {
		d.accum[d.phase] += time.Duration(now - d.phaseSince)
	}
	d.phase = p
	d.phaseSince = now
}

// Begin starts executing a request. The model must already be resident
// (Admit first on a miss). loadTime > 0 models the PCIe upload phase of a
// cache miss; zero means a cache hit that reuses the warm process. The
// device is busy until now+loadTime+inferTime.
func (d *Device) Begin(reqID int64, model string, loadTime, inferTime time.Duration, now sim.Time) (finishAt sim.Time, err error) {
	if d.inflight != nil {
		return 0, fmt.Errorf("%w: %s already runs req %d", ErrBusy, d.id, d.inflight.ReqID)
	}
	if _, ok := d.resident[model]; !ok {
		return 0, fmt.Errorf("%w: %s on %s (Admit before Begin)", ErrNotResident, model, d.id)
	}
	if loadTime < 0 || inferTime <= 0 {
		return 0, fmt.Errorf("gpu: invalid times load=%v infer=%v", loadTime, inferTime)
	}
	loadUntil := now + loadTime
	finishAt = loadUntil + inferTime
	d.inflight = &Inflight{ReqID: reqID, Model: model, Start: now, FinishAt: finishAt, LoadUntil: loadUntil}
	if loadTime > 0 {
		d.setPhase(Loading, now)
	} else {
		d.setPhase(Inferring, now)
	}
	return finishAt, nil
}

// LoadDone transitions a loading device to the inferring phase. The GPU
// Manager calls it when the upload completes.
func (d *Device) LoadDone(now sim.Time) error {
	if d.inflight == nil {
		return ErrIdle
	}
	if d.phase != Loading {
		return fmt.Errorf("gpu: LoadDone in phase %v on %s", d.phase, d.id)
	}
	d.setPhase(Inferring, now)
	return nil
}

// Interrupt abandons the in-flight request without counting it as
// completed: the device (or its host) failed mid-flight. The partial
// attempt's phase time folds into the utilization accumulators — the
// GPU really did burn those seconds — but `completed` stays untouched,
// so GPU-seconds are charged exactly once per attempt while completions
// count only finished work. The descriptor is returned so the caller
// (cluster failure path) can re-queue or fail the member requests.
func (d *Device) Interrupt(now sim.Time) (Inflight, error) {
	if d.inflight == nil {
		return Inflight{}, ErrIdle
	}
	fin := *d.inflight
	d.inflight = nil
	d.setPhase(Idle, now)
	return fin, nil
}

// Complete finishes the in-flight request, returning the device to idle.
func (d *Device) Complete(now sim.Time) (Inflight, error) {
	if d.inflight == nil {
		return Inflight{}, ErrIdle
	}
	if d.phase == Loading {
		// A zero-length inference would be invalid; callers sequence
		// LoadDone before Complete. Tolerate exact coincidence.
		d.setPhase(Inferring, now)
	}
	fin := *d.inflight
	d.inflight = nil
	d.completed++
	d.setPhase(Idle, now)
	d.loadedAt[fin.Model] = now
	return fin, nil
}

// EstimatedFinish returns when the in-flight request will complete; zero
// duration when idle. This feeds the LALB finish-time comparison.
func (d *Device) EstimatedFinish(now sim.Time) time.Duration {
	if d.inflight == nil {
		return 0
	}
	if d.inflight.FinishAt <= now {
		return 0
	}
	return time.Duration(d.inflight.FinishAt - now)
}

// Utilization summarizes how the device spent its time up to now.
type Utilization struct {
	Idle, Loading, Inferring time.Duration
	Total                    time.Duration
}

// SM returns the SM-utilization fraction: inferring time over total time.
func (u Utilization) SM() float64 {
	if u.Total <= 0 {
		return 0
	}
	return float64(u.Inferring) / float64(u.Total)
}

// BusyFraction returns the fraction of time the device was not idle.
func (u Utilization) BusyFraction() float64 {
	if u.Total <= 0 {
		return 0
	}
	return float64(u.Loading+u.Inferring) / float64(u.Total)
}

// Utilization reports the phase breakdown through `now`.
func (d *Device) Utilization(now sim.Time) Utilization {
	acc := d.accum
	if now > d.phaseSince {
		acc[d.phase] += time.Duration(now - d.phaseSince)
	}
	u := Utilization{Idle: acc[Idle], Loading: acc[Loading], Inferring: acc[Inferring]}
	u.Total = u.Idle + u.Loading + u.Inferring
	return u
}

// CheckInvariants verifies internal consistency; tests and the property
// suite call it after every operation.
func (d *Device) CheckInvariants() error {
	var sum int64
	for m, sz := range d.resident {
		if sz <= 0 {
			return fmt.Errorf("gpu: resident %s has size %d", m, sz)
		}
		sum += sz
	}
	if sum != d.memUsed {
		return fmt.Errorf("gpu: memUsed %d != resident sum %d", d.memUsed, sum)
	}
	if d.memUsed > d.capacity {
		return fmt.Errorf("gpu: over capacity: %d > %d", d.memUsed, d.capacity)
	}
	if d.inflight != nil {
		if _, ok := d.resident[d.inflight.Model]; !ok {
			return fmt.Errorf("gpu: in-flight model %s not resident", d.inflight.Model)
		}
		if d.phase == Idle {
			return errors.New("gpu: busy device in idle phase")
		}
	} else if d.phase != Idle {
		return fmt.Errorf("gpu: idle device in phase %v", d.phase)
	}
	return nil
}
