package autoscale

import (
	"fmt"
	"math"
	"strings"
)

// Tiered is the cost-aware provisioning policy for heterogeneous fleets.
// The fleet's device classes are ordered into tiers, cheapest per second
// first, with two distinct roles:
//
//   - the base tier (Tiers[0], the cheap class) is demand-proportional,
//     like TargetUtilization: every tick it is sized to
//     ceil((busy + queue/QueuePerGPU) / Utilization) minus whatever the
//     higher tiers already provide, so it tracks load both up and down;
//   - the higher tiers (faster, more expensive classes) are latency
//     insurance: Step devices are added only when the windowed p95 has
//     stayed above TargetP95 for EscalateAfter consecutive ticks — i.e.
//     when cheap capacity demonstrably is not meeting the objective —
//     and retired again, most expensive first, once the p95 has been
//     back under target for DownAfter consecutive ticks.
//
// It implements ClassPolicy and therefore requires a class-aware fleet
// (cluster.Config.Fleet): New rejects it on a plain Fleet, and rejects
// tiers the fleet does not declare (ClassRequirer), so a misspelled
// class fails construction instead of silently never scaling. The
// Decide fallback (direct class-blind invocation) holds the current
// size.
type Tiered struct {
	// Tiers orders device classes cheapest-first; every entry must be a
	// class the fleet declares. Tiers[0] is the demand-sized base tier.
	Tiers []string
	// TierCaps bounds each tier's non-draining size (0 = unbounded).
	// When set it must have one entry per tier.
	TierCaps []int
	// TargetP95 is the latency objective in seconds.
	TargetP95 float64
	// Utilization sizes the base tier: desired total capacity is
	// demand / Utilization (default 0.75).
	Utilization float64
	// QueuePerGPU is how many queued requests one GPU absorbs within a
	// tick when converting backlog to demand (default 1).
	QueuePerGPU int
	// Step is how many fast-tier GPUs each escalation adds (and each
	// cool-down removes; default 2).
	Step int
	// EscalateAfter is how many consecutive over-target ticks it takes
	// to buy fast-tier capacity (default 2).
	EscalateAfter int
	// DownAfter is how many consecutive under-target ticks it takes to
	// retire fast-tier capacity (default 4).
	DownAfter int

	hotTicks, coolTicks int
}

// NewTiered validates and builds the policy, filling documented defaults.
func NewTiered(cfg Tiered) (*Tiered, error) {
	if len(cfg.Tiers) == 0 {
		return nil, fmt.Errorf("autoscale: tiered policy needs at least one tier")
	}
	seen := make(map[string]bool, len(cfg.Tiers))
	for _, tier := range cfg.Tiers {
		if tier == "" {
			return nil, fmt.Errorf("autoscale: empty tier class name")
		}
		if seen[tier] {
			return nil, fmt.Errorf("autoscale: duplicate tier %q", tier)
		}
		seen[tier] = true
	}
	if cfg.TierCaps != nil && len(cfg.TierCaps) != len(cfg.Tiers) {
		return nil, fmt.Errorf("autoscale: %d tier caps for %d tiers", len(cfg.TierCaps), len(cfg.Tiers))
	}
	for _, c := range cfg.TierCaps {
		if c < 0 {
			return nil, fmt.Errorf("autoscale: negative tier cap %d", c)
		}
	}
	if cfg.TargetP95 <= 0 {
		return nil, fmt.Errorf("autoscale: tiered policy needs a positive TargetP95, got %g", cfg.TargetP95)
	}
	if cfg.Utilization < 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("autoscale: utilization %g outside (0,1]", cfg.Utilization)
	}
	if cfg.Utilization == 0 {
		cfg.Utilization = 0.75
	}
	if cfg.QueuePerGPU <= 0 {
		cfg.QueuePerGPU = 1
	}
	if cfg.Step <= 0 {
		cfg.Step = 2
	}
	if cfg.EscalateAfter <= 0 {
		cfg.EscalateAfter = 2
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 4
	}
	cfg.hotTicks, cfg.coolTicks = 0, 0
	return &cfg, nil
}

// Clone implements ClonablePolicy: a copy with fresh tick counters.
func (p *Tiered) Clone() Policy {
	cp := *p
	cp.hotTicks, cp.coolTicks = 0, 0
	return &cp
}

// RequiredClasses implements ClassRequirer: every tier must be a class
// the fleet declares, enforced at autoscaler construction.
func (p *Tiered) RequiredClasses() []string { return p.Tiers }

// Name implements Policy.
func (p *Tiered) Name() string {
	return fmt.Sprintf("tiered(p95<%.2gs,util=%.2f,%s)", p.TargetP95, p.Utilization, strings.Join(p.Tiers, "<"))
}

// Decide implements Policy as the degraded class-blind fallback: without
// a ClassedFleet the policy cannot choose a device class, so it holds
// the current size.
func (p *Tiered) Decide(sig Signal) Decision {
	return Decision{
		Target: sig.Active + sig.Provisioning,
		Reason: "tiered policy requires a class-aware fleet",
	}
}

// cap returns tier i's bound (0 = unbounded).
func (p *Tiered) cap(i int) int {
	if p.TierCaps == nil {
		return 0
	}
	return p.TierCaps[i]
}

// DecideClasses implements ClassPolicy.
func (p *Tiered) DecideClasses(sig Signal) ClassDecision {
	current := make([]int, len(p.Tiers))
	for i, tier := range p.Tiers {
		for _, cs := range sig.Classes {
			if cs.Class == tier {
				current[i] = cs.Active + cs.Provisioning
				break
			}
		}
	}
	targets := make([]ClassTarget, len(p.Tiers))
	for i, tier := range p.Tiers {
		targets[i] = ClassTarget{Class: tier, Target: current[i]}
	}

	// Latency bookkeeping: ticks with no completions carry no p95
	// evidence and advance neither counter.
	var note string
	if sig.Completions > 0 {
		if sig.P95LatencySec > p.TargetP95 {
			p.hotTicks++
			p.coolTicks = 0
		} else {
			p.hotTicks = 0
			p.coolTicks++
		}
	}

	// Fast tiers: buy Step on sustained violation (cheapest higher tier
	// with headroom first), retire Step once sustainedly cool (most
	// expensive non-empty tier first).
	if p.hotTicks >= p.EscalateAfter {
		for i := 1; i < len(p.Tiers); i++ {
			c := p.cap(i)
			if c > 0 && current[i] >= c {
				continue
			}
			target := current[i] + p.Step
			if c > 0 && target > c {
				target = c
			}
			targets[i].Target = target
			// Pay for the fast tier once, then wait for it to take
			// effect before escalating again.
			p.hotTicks = 0
			note = fmt.Sprintf("; p95=%.2fs>%.2fs sustained -> %s+%d",
				sig.P95LatencySec, p.TargetP95, p.Tiers[i], target-current[i])
			break
		}
	} else if p.coolTicks >= p.DownAfter {
		for i := len(p.Tiers) - 1; i >= 1; i-- {
			if current[i] == 0 {
				continue
			}
			target := current[i] - p.Step
			if target < 0 {
				target = 0
			}
			targets[i].Target = target
			p.coolTicks = 0
			note = fmt.Sprintf("; p95=%.2fs<%.2fs sustained -> %s-%d",
				sig.P95LatencySec, p.TargetP95, p.Tiers[i], current[i]-target)
			break
		}
	}

	// Base tier: demand-proportional, net of what the higher tiers
	// provide after their step decisions.
	busy := sig.Active - sig.Idle
	demand := float64(busy) + float64(sig.QueueDepth)/float64(p.QueuePerGPU)
	desired := int(math.Ceil(demand / p.Utilization))
	higher := 0
	for i := 1; i < len(p.Tiers); i++ {
		higher += targets[i].Target
	}
	base := desired - higher
	if base < 0 {
		base = 0
	}
	if c := p.cap(0); c > 0 && base > c {
		base = c
	}
	targets[0].Target = base
	return ClassDecision{
		Targets: targets,
		Reason: fmt.Sprintf("busy=%d queue=%d demand=%.1f util=%.2f -> %s=%d%s",
			busy, sig.QueueDepth, demand, p.Utilization, p.Tiers[0], base, note),
	}
}
