package autoscale

import (
	"fmt"
	"testing"
	"time"

	"gpufaas/internal/sim"
)

// fakeFleet is a scriptable Fleet: tests set the size/pending fields and
// record the scale calls.
type fakeFleet struct {
	size    Size
	pending int
	nextID  int
	ups     []int
	downs   []int
}

func (f *fakeFleet) FleetSize() Size      { return f.size }
func (f *fakeFleet) PendingRequests() int { return f.pending }

func (f *fakeFleet) ScaleUp(n int, _ time.Duration) []string {
	f.ups = append(f.ups, n)
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("g%d", f.nextID)
		f.nextID++
	}
	f.size.Provisioning += n
	return out
}

func (f *fakeFleet) ScaleDown(n int) []string {
	f.downs = append(f.downs, n)
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%d", i)
	}
	f.size.Active -= n
	f.size.Draining += n
	return out
}

func mustTU(t *testing.T, util float64, qpg int) *TargetUtilization {
	t.Helper()
	p, err := NewTargetUtilization(util, qpg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	fleet := &fakeFleet{}
	clock := sim.SimClock{E: sim.New()}
	pol := mustTU(t, 0.7, 1)
	bad := []Config{
		{Policy: nil},
		{Policy: pol, MinGPUs: 4, MaxGPUs: 2},
		{Policy: pol, ColdStart: -time.Second},
		{Policy: pol, Horizon: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(fleet, clock, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if _, err := New(nil, clock, Config{Policy: pol}); err == nil {
		t.Error("nil fleet should fail")
	}
	if _, err := New(fleet, nil, Config{Policy: pol}); err == nil {
		t.Error("nil clock should fail")
	}
	a, err := New(fleet, clock, Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().Interval != DefaultInterval || a.Config().MinGPUs != 1 {
		t.Errorf("defaults = %+v", a.Config())
	}
}

func TestTargetUtilizationDecide(t *testing.T) {
	cases := []struct {
		util       float64
		qpg        int
		sig        Signal
		wantTarget int
	}{
		// 7 busy of 10, no queue, util 0.7 → ceil(7/0.7) = 10: steady.
		{0.7, 1, Signal{Active: 10, Idle: 3}, 10},
		// All 10 busy + 4 queued → ceil(14/0.7) = 20.
		{0.7, 1, Signal{Active: 10, Idle: 0, QueueDepth: 4}, 20},
		// Queue damped at 4/GPU: ceil((10+1)/0.7) = 16.
		{0.7, 4, Signal{Active: 10, Idle: 0, QueueDepth: 4}, 16},
		// 1 busy of 10 → ceil(1/0.7) = 2: scale-in pressure.
		{0.7, 1, Signal{Active: 10, Idle: 9}, 2},
		// Empty fleet, empty queue → 0 (clamped to MinGPUs by the
		// autoscaler, not the policy).
		{0.5, 1, Signal{}, 0},
	}
	for i, c := range cases {
		p := mustTU(t, c.util, c.qpg)
		if d := p.Decide(c.sig); d.Target != c.wantTarget {
			t.Errorf("case %d: target = %d, want %d (%s)", i, d.Target, c.wantTarget, d.Reason)
		}
	}
	if _, err := NewTargetUtilization(0, 1); err == nil {
		t.Error("utilization 0 should fail")
	}
	if _, err := NewTargetUtilization(1.5, 1); err == nil {
		t.Error("utilization > 1 should fail")
	}
}

func TestStepHysteresisConsecutiveTicks(t *testing.T) {
	p, err := NewStepHysteresis(4, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	hot := Signal{Active: 4, Provisioning: 0, QueueDepth: 10}
	// First hot tick: pressure building, no action.
	if d := p.Decide(hot); d.Target != 4 {
		t.Errorf("tick 1 target = %d (%s)", d.Target, d.Reason)
	}
	// Second consecutive hot tick: step up.
	if d := p.Decide(hot); d.Target != 6 {
		t.Errorf("tick 2 target = %d (%s)", d.Target, d.Reason)
	}
	// A cold tick resets the up counter.
	cold := Signal{Active: 4, Idle: 1, QueueDepth: 0, IdleRatio: 0.25}
	if d := p.Decide(cold); d.Target != 4 {
		t.Errorf("steady target = %d (%s)", d.Target, d.Reason)
	}
	if d := p.Decide(hot); d.Target != 4 {
		t.Error("up counter must restart after a cold tick")
	}
	// Sustained slack: DownAfter (4) consecutive idle ticks step down.
	slack := Signal{Active: 4, Idle: 3, QueueDepth: 0, IdleRatio: 0.75}
	for i := 0; i < 3; i++ {
		if d := p.Decide(slack); d.Target != 4 {
			t.Errorf("slack tick %d target = %d", i+1, d.Target)
		}
	}
	if d := p.Decide(slack); d.Target != 2 {
		t.Errorf("4th slack tick target = %d (%s)", d.Target, d.Reason)
	}
}

func TestAutoscalerClampsAndLogs(t *testing.T) {
	engine := sim.New()
	clock := sim.SimClock{E: engine}
	fleet := &fakeFleet{size: Size{Active: 2}, pending: 50}
	a, err := New(fleet, clock, Config{
		Policy:   mustTU(t, 0.7, 1),
		Interval: time.Second,
		MinGPUs:  2,
		MaxGPUs:  6,
		Horizon:  3500 * time.Millisecond, // ticks at 1s, 2s, 3s
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	engine.Run(0)
	if a.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3 (horizon)", a.Ticks())
	}
	// Demand is 2 busy + 50 queued → far above MaxGPUs: the first tick
	// scales to the clamp, later ticks hold (active+provisioning == 6).
	evs := a.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Action != ActionScaleUp || evs[0].From != 2 || evs[0].To != 6 || evs[0].Delta != 4 {
		t.Errorf("event = %+v", evs[0])
	}
	if evs[0].At != time.Second {
		t.Errorf("event at %v, want 1s", evs[0].At)
	}
	if len(evs[0].GPUs) != 4 {
		t.Errorf("event GPUs = %v", evs[0].GPUs)
	}
}

func TestAutoscalerScaleDownToMin(t *testing.T) {
	engine := sim.New()
	fleet := &fakeFleet{size: Size{Active: 8, Idle: 8}}
	a, err := New(fleet, sim.SimClock{E: engine}, Config{
		Policy:   mustTU(t, 0.7, 1),
		Interval: time.Second,
		MinGPUs:  3,
		Horizon:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	engine.Run(0)
	evs := a.Events()
	if len(evs) != 1 || evs[0].Action != ActionScaleDown {
		t.Fatalf("events = %+v", evs)
	}
	// Nothing busy → policy wants 0, clamped to MinGPUs 3: remove 5.
	if evs[0].Delta != -5 || evs[0].To != 3 {
		t.Errorf("event = %+v", evs[0])
	}
}

func TestAutoscalerWindowedP95(t *testing.T) {
	engine := sim.New()
	fleet := &fakeFleet{size: Size{Active: 2, Idle: 1}}
	a, err := New(fleet, sim.SimClock{E: engine}, Config{
		Policy:   mustTU(t, 0.7, 1),
		Interval: time.Second,
		MinGPUs:  1,
		Horizon:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		a.ObserveLatency(float64(i))
	}
	a.Start()
	engine.RunUntil(time.Second)
	sig := a.LastSignal()
	if sig.Completions != 100 {
		t.Fatalf("completions = %d", sig.Completions)
	}
	if sig.P95LatencySec < 95 || sig.P95LatencySec > 96 {
		t.Errorf("p95 = %g", sig.P95LatencySec)
	}
	// Window resets per tick: a quiet interval reports zero.
	engine.Run(0)
	if sig := a.LastSignal(); sig.Completions != 0 || sig.P95LatencySec != 0 {
		t.Errorf("second tick signal = %+v", sig)
	}
}

func TestAutoscalerDisableAndStop(t *testing.T) {
	engine := sim.New()
	fleet := &fakeFleet{size: Size{Active: 1}, pending: 40}
	a, err := New(fleet, sim.SimClock{E: engine}, Config{
		Policy:   mustTU(t, 0.7, 1),
		Interval: time.Second,
		Horizon:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetEnabled(false)
	a.Start()
	engine.RunUntil(3 * time.Second)
	if len(a.Events()) != 0 {
		t.Fatalf("disabled autoscaler scaled: %+v", a.Events())
	}
	if a.Ticks() != 3 {
		t.Errorf("disabled autoscaler stopped sampling: ticks = %d", a.Ticks())
	}
	a.SetEnabled(true)
	engine.RunUntil(4 * time.Second)
	if len(a.Events()) != 1 {
		t.Fatalf("re-enabled autoscaler did not scale: %+v", a.Events())
	}
	a.Stop()
	engine.Run(0)
	if a.Ticks() != 4 {
		t.Errorf("stopped autoscaler kept ticking: %d", a.Ticks())
	}
	st := a.Status()
	if !st.Enabled || st.Ticks != 4 || len(st.Events) != 1 {
		t.Errorf("status = %+v", st)
	}
}

// TestMaxGPUsCountsDrainingMembers: draining GPUs still occupy machines,
// so scale-up must not push the physical fleet past MaxGPUs while they
// wind down.
func TestMaxGPUsCountsDrainingMembers(t *testing.T) {
	engine := sim.New()
	fleet := &fakeFleet{size: Size{Active: 10, Draining: 2}, pending: 50}
	a, err := New(fleet, sim.SimClock{E: engine}, Config{
		Policy:   mustTU(t, 0.7, 1),
		Interval: time.Second,
		MinGPUs:  2,
		MaxGPUs:  12,
		Horizon:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	engine.Run(0)
	// Demand wants 12+ but 10 active + 2 draining already fill the
	// physical ceiling: no scale-up allowed.
	if evs := a.Events(); len(evs) != 0 {
		t.Fatalf("scaled past the physical ceiling: %+v", evs)
	}
	// With one machine of room (9 active + 2 draining), only 1 GPU fits.
	fleet2 := &fakeFleet{size: Size{Active: 9, Draining: 2}, pending: 50}
	b, err := New(fleet2, sim.SimClock{E: engine}, Config{
		Policy:   mustTU(t, 0.7, 1),
		Interval: time.Second,
		MinGPUs:  2,
		MaxGPUs:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Evaluate(engine.Now())
	evs := b.Events()
	if len(evs) != 1 || evs[0].Delta != 1 {
		t.Fatalf("events = %+v, want one +1 scale-up", evs)
	}
}

// TestEventLogBounded: the retained log is capped (live gateways run
// for weeks); TotalEvents keeps the lifetime count.
func TestEventLogBounded(t *testing.T) {
	engine := sim.New()
	// Alternating pressure/slack flaps the fleet every tick.
	fleet := &fakeFleet{size: Size{Active: 4}, pending: 50}
	a, err := New(fleet, sim.SimClock{E: engine}, Config{
		Policy:    mustTU(t, 0.7, 1),
		Interval:  time.Second,
		MinGPUs:   2,
		MaxGPUs:   100,
		MaxEvents: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			fleet.pending, fleet.size.Idle = 50, 0
		} else {
			fleet.pending, fleet.size.Idle = 0, fleet.size.Active
		}
		fleet.size.Active += fleet.size.Provisioning
		fleet.size.Provisioning = 0
		fleet.size.Draining = 0
		a.Evaluate(sim.Time(i) * time.Second)
	}
	if got := len(a.Events()); got > 3 {
		t.Errorf("retained events = %d, cap 3", got)
	}
	if a.TotalEvents() <= 3 {
		t.Errorf("TotalEvents = %d, want > cap", a.TotalEvents())
	}
	evs := a.Events()
	// Retained events are the most recent ones, still in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].At <= evs[i-1].At {
			t.Errorf("retained log out of order: %v", evs)
		}
	}
	if _, err := New(fleet, sim.SimClock{E: engine}, Config{Policy: mustTU(t, 0.7, 1), MaxEvents: -1}); err == nil {
		t.Error("negative MaxEvents should fail")
	}
}

// TestStatefulPolicyClonedPerAutoscaler: one Config (and thus one
// policy value) shared across two autoscalers must not share hysteresis
// counters.
func TestStatefulPolicyClonedPerAutoscaler(t *testing.T) {
	pol, err := NewStepHysteresis(4, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: pol, Interval: time.Second, Horizon: time.Second}
	engine := sim.New()
	clock := sim.SimClock{E: engine}
	a1, err := New(&fakeFleet{}, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(&fakeFleet{}, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Config().Policy == a2.Config().Policy || a1.Config().Policy == Policy(pol) {
		t.Fatal("stateful policy must be cloned per autoscaler")
	}
	// Advance a1's counter one hot tick; a2's first hot tick must still
	// be "pressure building", not an immediate step.
	hot := Signal{Active: 4, QueueDepth: 10}
	if d := a1.Config().Policy.Decide(hot); d.Target != 4 {
		t.Fatalf("a1 tick 1 target = %d", d.Target)
	}
	if d := a2.Config().Policy.Decide(hot); d.Target != 4 {
		t.Fatalf("a2 leaked a1's hysteresis counter: target = %d", d.Target)
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("target-util", 0, 0, 0, 0, 0); err != nil || p.Name() != "target-util(0.70)" {
		t.Errorf("default target-util: %v %v", p, err)
	}
	if p, err := ParsePolicy("step", 0, 0, 0, 0, 0); err != nil || p == nil {
		t.Errorf("default step: %v %v", p, err)
	}
	if _, err := ParsePolicy("bogus", 0, 0, 0, 0, 0); err == nil {
		t.Error("bogus policy should fail")
	}
}
