package autoscale

import (
	"fmt"
	"math"
)

// TargetUtilization sizes the fleet so the busy fraction approaches a
// target: demand is the number of busy GPUs plus the GPUs the current
// queue backlog would occupy, and the desired size is demand scaled by
// 1/utilization so the fleet retains headroom.
type TargetUtilization struct {
	// Utilization is the desired busy fraction in (0, 1]; 0.7 means
	// "size the fleet so ~70% of GPUs are busy".
	Utilization float64
	// QueuePerGPU is how many queued requests one GPU is assumed to
	// absorb within a tick (default 1; larger values damp queue-driven
	// scale-up).
	QueuePerGPU int
}

// NewTargetUtilization validates and builds the policy.
func NewTargetUtilization(utilization float64, queuePerGPU int) (*TargetUtilization, error) {
	if utilization <= 0 || utilization > 1 {
		return nil, fmt.Errorf("autoscale: utilization %g outside (0,1]", utilization)
	}
	if queuePerGPU <= 0 {
		queuePerGPU = 1
	}
	return &TargetUtilization{Utilization: utilization, QueuePerGPU: queuePerGPU}, nil
}

// Name implements Policy.
func (p *TargetUtilization) Name() string {
	return fmt.Sprintf("target-util(%.2f)", p.Utilization)
}

// Decide implements Policy.
func (p *TargetUtilization) Decide(sig Signal) Decision {
	busy := sig.Active - sig.Idle
	qp := p.QueuePerGPU
	if qp <= 0 {
		qp = 1
	}
	demand := float64(busy) + float64(sig.QueueDepth)/float64(qp)
	target := int(math.Ceil(demand / p.Utilization))
	return Decision{
		Target: target,
		Reason: fmt.Sprintf("busy=%d queue=%d demand=%.1f util=%.2f", busy, sig.QueueDepth, demand, p.Utilization),
	}
}

// StepHysteresis scales in fixed steps after sustained pressure: Step
// GPUs up once the queue depth has exceeded UpQueueDepth for UpAfter
// consecutive ticks, Step GPUs down once the idle ratio has exceeded
// DownIdleRatio (with an empty queue) for DownAfter consecutive ticks.
// The consecutive-tick requirement is the hysteresis: transient spikes
// and lulls do not flap the fleet.
type StepHysteresis struct {
	// UpQueueDepth: queue depth that counts as sustained pressure.
	UpQueueDepth int
	// DownIdleRatio: idle fraction that counts as sustained slack.
	DownIdleRatio float64
	// Step is how many GPUs each scaling action adds or removes.
	Step int
	// UpAfter / DownAfter are the consecutive-tick thresholds
	// (defaults 2 and 4: scaling down is the more cautious move).
	UpAfter   int
	DownAfter int

	upTicks, downTicks int
}

// NewStepHysteresis validates and builds the policy.
func NewStepHysteresis(upQueueDepth int, downIdleRatio float64, step int) (*StepHysteresis, error) {
	if upQueueDepth <= 0 {
		return nil, fmt.Errorf("autoscale: non-positive UpQueueDepth %d", upQueueDepth)
	}
	if downIdleRatio <= 0 || downIdleRatio > 1 {
		return nil, fmt.Errorf("autoscale: DownIdleRatio %g outside (0,1]", downIdleRatio)
	}
	if step <= 0 {
		return nil, fmt.Errorf("autoscale: non-positive Step %d", step)
	}
	return &StepHysteresis{
		UpQueueDepth:  upQueueDepth,
		DownIdleRatio: downIdleRatio,
		Step:          step,
		UpAfter:       2,
		DownAfter:     4,
	}, nil
}

// Clone implements ClonablePolicy: a copy with fresh hysteresis
// counters, so autoscalers built from a shared Config never share
// mutable state.
func (p *StepHysteresis) Clone() Policy {
	cp := *p
	cp.upTicks, cp.downTicks = 0, 0
	return &cp
}

// Name implements Policy.
func (p *StepHysteresis) Name() string {
	return fmt.Sprintf("step-hysteresis(q>%d,idle>%.2f,step=%d)", p.UpQueueDepth, p.DownIdleRatio, p.Step)
}

// Decide implements Policy.
func (p *StepHysteresis) Decide(sig Signal) Decision {
	current := sig.Active + sig.Provisioning
	upAfter, downAfter := p.UpAfter, p.DownAfter
	if upAfter <= 0 {
		upAfter = 2
	}
	if downAfter <= 0 {
		downAfter = 4
	}

	if sig.QueueDepth > p.UpQueueDepth {
		p.upTicks++
		p.downTicks = 0
		if p.upTicks >= upAfter {
			p.upTicks = 0
			return Decision{
				Target: current + p.Step,
				Reason: fmt.Sprintf("queue=%d > %d for %d ticks", sig.QueueDepth, p.UpQueueDepth, upAfter),
			}
		}
		return Decision{Target: current, Reason: "pressure building"}
	}
	p.upTicks = 0

	if sig.QueueDepth == 0 && sig.IdleRatio > p.DownIdleRatio {
		p.downTicks++
		if p.downTicks >= downAfter {
			p.downTicks = 0
			return Decision{
				Target: current - p.Step,
				Reason: fmt.Sprintf("idle=%.2f > %.2f for %d ticks", sig.IdleRatio, p.DownIdleRatio, downAfter),
			}
		}
		return Decision{Target: current, Reason: "slack building"}
	}
	p.downTicks = 0
	return Decision{Target: current, Reason: "steady"}
}

// ParsePolicy builds a policy from its admin-endpoint name:
// "target-util" (params: utilization, queuePerGPU) or "step"
// (params: upQueueDepth, downIdleRatio, step). Zero-valued params take
// the documented defaults.
func ParsePolicy(name string, utilization float64, queuePerGPU, upQueueDepth int, downIdleRatio float64, step int) (Policy, error) {
	switch name {
	case "target-util", "target-utilization", "":
		if utilization == 0 {
			utilization = 0.7
		}
		return NewTargetUtilization(utilization, queuePerGPU)
	case "step", "step-hysteresis":
		if upQueueDepth == 0 {
			upQueueDepth = 4
		}
		if downIdleRatio == 0 {
			downIdleRatio = 0.5
		}
		if step == 0 {
			step = 2
		}
		return NewStepHysteresis(upQueueDepth, downIdleRatio, step)
	default:
		return nil, fmt.Errorf("autoscale: unknown policy %q", name)
	}
}
