// Package autoscale implements elastic cluster membership control: a
// policy-driven autoscaler that provisions and decommissions GPUs while
// the locality-aware scheduler keeps running. The paper evaluates LALB /
// LALB+O3 on a fixed 12-GPU fleet; serving heavy, time-varying traffic at
// production scale additionally requires the fleet itself to track load
// (diurnal cycles, bursts, scale-to-zero cost), which is what this
// subsystem adds.
//
// The Autoscaler is a passive component on the shared Clock abstraction:
// every Interval it samples a Signal (queue depth, idle ratio, windowed
// p95 latency) from the Fleet, asks its Policy for a desired fleet size,
// clamps the answer to [MinGPUs, MaxGPUs], and issues scale-up /
// scale-down operations. Under the discrete-event engine the whole loop
// is deterministic: the same trace, seed and policy produce byte-identical
// ScaleEvent logs at any worker count. Under the wall clock the cluster's
// mutex serializes ticks with the rest of the system.
//
// Scale-down is drain-before-remove (the Kubernetes GPU-scheduler idiom):
// a decommissioned GPU first becomes unschedulable, finishes its in-flight
// and parked work, has its cache residents evicted through the ordinary
// insert/evict event stream (so the global index and the idle set stay
// consistent), and only then leaves the membership. Scale-up pays a
// configurable cold-start delay before the new GPU becomes schedulable.
package autoscale

import (
	"errors"
	"fmt"
	"time"

	"gpufaas/internal/sim"
	"gpufaas/internal/stats"
)

// Size is the fleet's membership breakdown at a sampling instant.
type Size struct {
	// Active GPUs are schedulable (neither provisioning nor draining).
	Active int
	// Provisioning GPUs were added but are still in their cold-start
	// window.
	Provisioning int
	// Draining GPUs are finishing in-flight/parked work before removal.
	Draining int
	// Idle is the number of Active GPUs with no request executing.
	Idle int
}

// Fleet is the autoscaler's view of the cluster; the cluster harness
// implements it. Methods are invoked from within clock callbacks, so the
// harness's usual serialization (event loop in sim mode, cluster mutex in
// live mode) already applies.
type Fleet interface {
	// FleetSize returns the current membership breakdown.
	FleetSize() Size
	// PendingRequests returns queued requests (global + local queues).
	PendingRequests() int
	// ScaleUp provisions n GPUs, each schedulable after coldStart; it
	// returns the new GPU IDs (possibly fewer than n on error).
	ScaleUp(n int, coldStart time.Duration) []string
	// ScaleDown drain-decommissions up to n GPUs and returns their IDs.
	// The fleet picks victims deterministically (provisioning first,
	// then idle, then busy; newest first within each class).
	ScaleDown(n int) []string
}

// ClassSize is one device class's membership breakdown.
type ClassSize struct {
	// Class is the device class (GPU type).
	Class string
	Size
	// CostPerSecond is the class's declared price per GPU-second (0
	// when the fleet declares none).
	CostPerSecond float64
}

// ClassedFleet is implemented by fleets declared as a mix of device
// classes (cluster.FleetSpec). Class-aware policies (Tiered) require it;
// class-agnostic policies keep working against the plain Fleet view.
type ClassedFleet interface {
	Fleet
	// ClassSizes returns the per-class breakdown in fleet-spec order.
	ClassSizes() []ClassSize
	// ScaleUpClass provisions n GPUs of the given class; coldStart is
	// the fallback delay for classes that declare no ColdStart of their
	// own. Returns the new GPU IDs (possibly fewer than n on error).
	ScaleUpClass(class string, n int, coldStart time.Duration) []string
	// ScaleDownClass drain-decommissions up to n GPUs of the given
	// class, with the same deterministic victim order as ScaleDown.
	ScaleDownClass(class string, n int) []string
}

// FaultyFleet is optionally implemented by fleets that track GPU crash
// events (fault injection); the sampled cumulative count lands in
// Signal.FailedGPUs so policies and the event log see the capacity a
// run has lost to failures.
type FaultyFleet interface {
	Fleet
	// FailedGPUs returns the cumulative number of GPU crash events.
	FailedGPUs() int
}

// Signal is one evaluation-tick sample, the policy's input.
type Signal struct {
	// At is the virtual (or wall-offset) sampling time.
	At sim.Time `json:"at"`
	// QueueDepth is the number of queued requests (global + local).
	QueueDepth int `json:"queueDepth"`
	// Active/Provisioning/Draining/Idle mirror Size.
	Active       int `json:"active"`
	Provisioning int `json:"provisioning"`
	Draining     int `json:"draining"`
	Idle         int `json:"idle"`
	// IdleRatio is Idle / Active (0 when the fleet is empty).
	IdleRatio float64 `json:"idleRatio"`
	// P95LatencySec is the 95th-percentile end-to-end latency of the
	// requests that completed since the previous tick (0 when none did).
	P95LatencySec float64 `json:"p95LatencySec"`
	// Completions is how many requests finished since the previous tick.
	Completions int `json:"completions"`
	// Classes is the per-device-class breakdown in fleet-spec order;
	// nil when the fleet is not class-aware (homogeneous clusters built
	// without a FleetSpec).
	Classes []ClassSignal `json:"classes,omitempty"`
	// FailedGPUs is the cumulative GPU crash count (FaultyFleet); zero —
	// and omitted, keeping fault-free ScaleEvent logs byte-identical —
	// without fault injection.
	FailedGPUs int `json:"failedGPUs,omitempty"`
}

// ClassSignal is one device class's slice of a Signal.
type ClassSignal struct {
	Class        string `json:"class"`
	Active       int    `json:"active"`
	Provisioning int    `json:"provisioning"`
	Draining     int    `json:"draining"`
	Idle         int    `json:"idle"`
}

// Decision is a policy's verdict for one tick.
type Decision struct {
	// Target is the desired number of non-draining GPUs
	// (active + provisioning). It is clamped to [MinGPUs, MaxGPUs].
	Target int
	// Reason explains the verdict; it lands in the ScaleEvent log.
	Reason string
}

// Policy maps a Signal to a desired fleet size. Implementations may keep
// state (hysteresis counters) but must be deterministic functions of the
// signal sequence: no wall-clock or randomness.
type Policy interface {
	Name() string
	Decide(sig Signal) Decision
}

// ClassTarget is one device class's desired size.
type ClassTarget struct {
	Class  string
	Target int
}

// ClassDecision is a class-aware policy's verdict: per-class targets in
// the order they should be reconciled.
type ClassDecision struct {
	Targets []ClassTarget
	Reason  string
}

// ClassPolicy is a Policy that additionally makes a provisioning
// decision: not just how many GPUs, but of which device class. The
// autoscaler uses DecideClasses when (and only when) the fleet is a
// ClassedFleet; Decide is the degraded single-class fallback.
type ClassPolicy interface {
	Policy
	DecideClasses(sig Signal) ClassDecision
}

// ClassRequirer is implemented by policies that target specific device
// classes (Tiered). New validates the requirement against the fleet at
// construction: a misspelled or undeclared class would otherwise make
// the autoscaler a silent no-op (unknown-class targets are dropped at
// reconcile time).
type ClassRequirer interface {
	// RequiredClasses lists the device classes the policy addresses.
	RequiredClasses() []string
}

// ClonablePolicy is implemented by stateful policies. New clones the
// policy at construction so a Config shared across clusters never shares
// mutable decision state (which would corrupt hysteresis counters and
// race between clusters).
type ClonablePolicy interface {
	Policy
	Clone() Policy
}

// ScaleEvent records one executed scaling operation.
type ScaleEvent struct {
	At     sim.Time `json:"at"`
	Action string   `json:"action"` // "scale-up" | "scale-down"
	Delta  int      `json:"delta"`  // GPUs requested (+up / -down)
	From   int      `json:"from"`   // non-draining fleet size before
	To     int      `json:"to"`     // non-draining fleet size after
	Reason string   `json:"reason"`
	GPUs   []string `json:"gpus"` // affected GPU IDs
	// Class is the device class the operation targeted; empty for
	// class-agnostic operations (legacy policies), which keeps
	// pre-heterogeneity event logs byte-identical.
	Class string `json:"class,omitempty"`
}

// Actions recorded in ScaleEvent.Action.
const (
	ActionScaleUp   = "scale-up"
	ActionScaleDown = "scale-down"
)

// Config assembles an Autoscaler.
type Config struct {
	// Policy decides the target fleet size each tick. Required.
	Policy Policy
	// Interval between evaluation ticks (default 5s of virtual time).
	Interval time.Duration
	// MinGPUs / MaxGPUs bound the fleet (defaults 1 / no bound).
	MinGPUs int
	MaxGPUs int
	// ColdStart is the provisioning delay before a scaled-up GPU
	// becomes schedulable.
	ColdStart time.Duration
	// Horizon stops evaluation ticks after this virtual time. It is
	// required in simulated-time mode — a forever-rescheduling tick
	// would keep the discrete-event queue nonempty and RunWorkload
	// would never drain. Zero means no horizon (live mode only).
	Horizon time.Duration
	// MaxEvents bounds the retained scale-event log: once exceeded, the
	// oldest events are dropped (TotalEvents keeps the lifetime count).
	// A long-lived live gateway under flapping load would otherwise
	// grow the log without bound. Zero means DefaultMaxEvents;
	// experiment runs stay far below the default, so Report event logs
	// keep their determinism contract.
	MaxEvents int
}

// DefaultInterval is the evaluation tick period when Config.Interval is
// zero.
const DefaultInterval = 5 * time.Second

// DefaultMaxEvents is the retained scale-event log bound when
// Config.MaxEvents is zero.
const DefaultMaxEvents = 4096

// Autoscaler drives a Fleet from a Policy. It is a passive component:
// not safe for concurrent use, serialized by the harness like the
// scheduler and cache manager.
type Autoscaler struct {
	cfg   Config
	fleet Fleet
	clock sim.Clock

	enabled bool
	stopped bool
	cancel  func()

	window      *stats.Sample // latencies since the previous tick
	last        Signal
	ticks       int64
	events      []ScaleEvent
	totalEvents int64
	started     bool
}

// New validates the config and builds an Autoscaler. Call Start to begin
// ticking.
func New(fleet Fleet, clock sim.Clock, cfg Config) (*Autoscaler, error) {
	if fleet == nil {
		return nil, errors.New("autoscale: nil fleet")
	}
	if clock == nil {
		return nil, errors.New("autoscale: nil clock")
	}
	if cfg.Policy == nil {
		return nil, errors.New("autoscale: nil policy")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MinGPUs <= 0 {
		cfg.MinGPUs = 1
	}
	if cfg.MaxGPUs > 0 && cfg.MaxGPUs < cfg.MinGPUs {
		return nil, fmt.Errorf("autoscale: MaxGPUs %d < MinGPUs %d", cfg.MaxGPUs, cfg.MinGPUs)
	}
	if cfg.ColdStart < 0 || cfg.Horizon < 0 {
		return nil, fmt.Errorf("autoscale: negative ColdStart/Horizon")
	}
	if cp, ok := cfg.Policy.(ClonablePolicy); ok {
		cfg.Policy = cp.Clone()
	}
	if cr, ok := cfg.Policy.(ClassRequirer); ok {
		cf, classed := fleet.(ClassedFleet)
		if !classed {
			return nil, fmt.Errorf("autoscale: policy %s requires a class-aware fleet", cfg.Policy.Name())
		}
		declared := make(map[string]bool)
		for _, cs := range cf.ClassSizes() {
			declared[cs.Class] = true
		}
		for _, class := range cr.RequiredClasses() {
			if !declared[class] {
				return nil, fmt.Errorf("autoscale: policy %s requires device class %q, which the fleet does not declare", cfg.Policy.Name(), class)
			}
		}
	}
	if cfg.MaxEvents < 0 {
		return nil, fmt.Errorf("autoscale: negative MaxEvents %d", cfg.MaxEvents)
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &Autoscaler{
		cfg:     cfg,
		fleet:   fleet,
		clock:   clock,
		enabled: true,
		window:  stats.NewSample(256),
	}, nil
}

// Config returns the autoscaler's effective configuration.
func (a *Autoscaler) Config() Config { return a.cfg }

// Start schedules the first evaluation tick. It is idempotent.
func (a *Autoscaler) Start() {
	if a.started || a.stopped {
		return
	}
	a.started = true
	a.schedule()
}

// Stop cancels the pending tick; the autoscaler will not evaluate again.
func (a *Autoscaler) Stop() {
	a.stopped = true
	if a.cancel != nil {
		a.cancel()
		a.cancel = nil
	}
}

// SetEnabled pauses (false) or resumes (true) scaling decisions. Ticks
// keep sampling signals while paused so a re-enabled policy sees fresh
// state.
func (a *Autoscaler) SetEnabled(on bool) { a.enabled = on }

// Enabled reports whether scaling decisions are being executed.
func (a *Autoscaler) Enabled() bool { return a.enabled }

// ObserveLatency feeds one completed request's end-to-end latency into
// the current tick window; the harness calls it from its completion hook.
func (a *Autoscaler) ObserveLatency(seconds float64) { a.window.Add(seconds) }

// Ticks returns the number of evaluations performed.
func (a *Autoscaler) Ticks() int64 { return a.ticks }

// LastSignal returns the most recent tick's sampled signal.
func (a *Autoscaler) LastSignal() Signal { return a.last }

// Events returns a copy of the retained scale-event log (the most
// recent MaxEvents), in execution order.
func (a *Autoscaler) Events() []ScaleEvent {
	out := make([]ScaleEvent, len(a.events))
	copy(out, a.events)
	return out
}

// TotalEvents returns the lifetime count of executed scaling operations,
// including any dropped from the retained log.
func (a *Autoscaler) TotalEvents() int64 { return a.totalEvents }

// record appends a scale event, dropping the oldest beyond MaxEvents.
func (a *Autoscaler) record(ev ScaleEvent) {
	a.totalEvents++
	if len(a.events) >= a.cfg.MaxEvents {
		n := copy(a.events, a.events[len(a.events)-a.cfg.MaxEvents+1:])
		a.events = a.events[:n]
	}
	a.events = append(a.events, ev)
}

func (a *Autoscaler) schedule() {
	a.cancel = a.clock.AfterFunc(a.cfg.Interval, "autoscale.tick", a.tick)
}

func (a *Autoscaler) tick(now sim.Time) {
	a.cancel = nil
	a.Evaluate(now)
	if a.stopped {
		return
	}
	if a.cfg.Horizon > 0 && now+a.cfg.Interval > a.cfg.Horizon {
		return // past the horizon: let the event queue drain
	}
	a.schedule()
}

// Evaluate performs one evaluation: sample the signal, consult the
// policy, execute the clamped decision. It is exported so benchmarks and
// admin endpoints can drive a tick outside the timer.
func (a *Autoscaler) Evaluate(now sim.Time) Signal {
	size := a.fleet.FleetSize()
	sig := Signal{
		At:           now,
		QueueDepth:   a.fleet.PendingRequests(),
		Active:       size.Active,
		Provisioning: size.Provisioning,
		Draining:     size.Draining,
		Idle:         size.Idle,
		Completions:  a.window.N(),
	}
	if size.Active > 0 {
		sig.IdleRatio = float64(size.Idle) / float64(size.Active)
	}
	if sig.Completions > 0 {
		sig.P95LatencySec = a.window.Percentile(95)
	}
	if ff, ok := a.fleet.(FaultyFleet); ok {
		sig.FailedGPUs = ff.FailedGPUs()
	}
	cf, classed := a.fleet.(ClassedFleet)
	var classes []ClassSize
	if classed {
		classes = cf.ClassSizes()
		sig.Classes = make([]ClassSignal, len(classes))
		for i, cs := range classes {
			sig.Classes[i] = ClassSignal{
				Class:        cs.Class,
				Active:       cs.Active,
				Provisioning: cs.Provisioning,
				Draining:     cs.Draining,
				Idle:         cs.Idle,
			}
		}
	}
	a.window.Reset()
	a.last = sig
	a.ticks++
	if !a.enabled {
		return sig
	}

	if cp, ok := a.cfg.Policy.(ClassPolicy); ok && classed {
		a.evaluateClassed(now, sig, cp, cf, classes)
		return sig
	}

	d := a.cfg.Policy.Decide(sig)
	target := d.Target
	if target < a.cfg.MinGPUs {
		target = a.cfg.MinGPUs
	}
	if a.cfg.MaxGPUs > 0 && target > a.cfg.MaxGPUs {
		target = a.cfg.MaxGPUs
	}
	current := size.Active + size.Provisioning
	switch {
	case target > current:
		n := target - current
		if a.cfg.MaxGPUs > 0 {
			// MaxGPUs caps the PHYSICAL fleet: draining GPUs still
			// occupy machines (and bill GPU-seconds) until their
			// in-flight work finishes, so scale-up may not overshoot
			// the ceiling while they wind down.
			if room := a.cfg.MaxGPUs - (current + size.Draining); room < n {
				n = room
			}
		}
		if n <= 0 {
			return sig
		}
		gpus := a.fleet.ScaleUp(n, a.cfg.ColdStart)
		if len(gpus) > 0 {
			a.record(ScaleEvent{
				At: now, Action: ActionScaleUp, Delta: len(gpus),
				From: current, To: current + len(gpus),
				Reason: d.Reason, GPUs: gpus,
			})
		}
	case target < current:
		gpus := a.fleet.ScaleDown(current - target)
		if len(gpus) > 0 {
			a.record(ScaleEvent{
				At: now, Action: ActionScaleDown, Delta: -len(gpus),
				From: current, To: current - len(gpus),
				Reason: d.Reason, GPUs: gpus,
			})
		}
	}
	return sig
}

// evaluateClassed reconciles per-class targets from a class-aware
// policy. The global MinGPUs/MaxGPUs bounds still apply, to the summed
// non-draining (floor) and physical (ceiling) fleet: per-class deltas
// are trimmed in decision order once a bound is hit. The fleet size is
// re-sampled before each operation — an earlier scale-down in the same
// tick may have put GPUs into the draining state (or removed idle ones
// outright), and clamping against the pre-tick snapshot would let
// scale-ups overshoot the physical ceiling.
func (a *Autoscaler) evaluateClassed(now sim.Time, sig Signal, cp ClassPolicy, cf ClassedFleet, classes []ClassSize) {
	d := cp.DecideClasses(sig)
	byClass := make(map[string]ClassSize, len(classes))
	for _, cs := range classes {
		byClass[cs.Class] = cs
	}
	for _, t := range d.Targets {
		cs, ok := byClass[t.Class]
		if !ok {
			continue // target for a class the fleet does not declare
		}
		current := cs.Active + cs.Provisioning
		target := t.Target
		if target < 0 {
			target = 0
		}
		live := cf.FleetSize()
		fleet := live.Active + live.Provisioning // summed non-draining fleet
		switch {
		case target > current:
			n := target - current
			if a.cfg.MaxGPUs > 0 {
				// MaxGPUs caps the PHYSICAL fleet across all classes:
				// draining GPUs still occupy machines (and bill
				// GPU-seconds) until their in-flight work finishes.
				if room := a.cfg.MaxGPUs - (fleet + live.Draining); room < n {
					n = room
				}
			}
			if n <= 0 {
				continue
			}
			gpus := cf.ScaleUpClass(t.Class, n, a.cfg.ColdStart)
			if len(gpus) > 0 {
				// From/To keep the documented semantics (summed
				// non-draining fleet size); Class carries the tier.
				a.record(ScaleEvent{
					At: now, Action: ActionScaleUp, Delta: len(gpus),
					From: fleet, To: fleet + len(gpus),
					Reason: d.Reason, GPUs: gpus, Class: t.Class,
				})
			}
		case target < current:
			n := current - target
			// MinGPUs floors the summed non-draining fleet.
			if fleet-n < a.cfg.MinGPUs {
				n = fleet - a.cfg.MinGPUs
			}
			if n <= 0 {
				continue
			}
			gpus := cf.ScaleDownClass(t.Class, n)
			if len(gpus) > 0 {
				a.record(ScaleEvent{
					At: now, Action: ActionScaleDown, Delta: -len(gpus),
					From: fleet, To: fleet - len(gpus),
					Reason: d.Reason, GPUs: gpus, Class: t.Class,
				})
			}
		}
	}
}

// Status is a read-only snapshot for admin endpoints.
type Status struct {
	Policy      string        `json:"policy"`
	Enabled     bool          `json:"enabled"`
	Interval    time.Duration `json:"interval"`
	MinGPUs     int           `json:"minGPUs"`
	MaxGPUs     int           `json:"maxGPUs"`
	ColdStart   time.Duration `json:"coldStart"`
	Ticks       int64         `json:"ticks"`
	LastSignal  Signal        `json:"lastSignal"`
	TotalEvents int64         `json:"totalEvents"`
	Events      []ScaleEvent  `json:"events"`
}

// Status snapshots the autoscaler for reporting.
func (a *Autoscaler) Status() Status {
	return Status{
		Policy:      a.cfg.Policy.Name(),
		Enabled:     a.enabled,
		Interval:    a.cfg.Interval,
		MinGPUs:     a.cfg.MinGPUs,
		MaxGPUs:     a.cfg.MaxGPUs,
		ColdStart:   a.cfg.ColdStart,
		Ticks:       a.ticks,
		LastSignal:  a.last,
		TotalEvents: a.totalEvents,
		Events:      a.Events(),
	}
}
