package autoscale

import (
	"fmt"
	"testing"
	"time"

	"gpufaas/internal/sim"
)

// fakeClassedFleet extends fakeFleet with per-class membership; classes
// keep spec order.
type fakeClassedFleet struct {
	fakeFleet
	classes  []ClassSize
	classUps map[string][]int
	classDns map[string][]int
}

func newFakeClassedFleet(classes ...ClassSize) *fakeClassedFleet {
	f := &fakeClassedFleet{
		classes:  classes,
		classUps: make(map[string][]int),
		classDns: make(map[string][]int),
	}
	f.syncTotal()
	return f
}

func (f *fakeClassedFleet) syncTotal() {
	f.size = Size{}
	for _, cs := range f.classes {
		f.size.Active += cs.Active
		f.size.Provisioning += cs.Provisioning
		f.size.Draining += cs.Draining
		f.size.Idle += cs.Idle
	}
}

func (f *fakeClassedFleet) ClassSizes() []ClassSize { return f.classes }

func (f *fakeClassedFleet) ScaleUpClass(class string, n int, _ time.Duration) []string {
	f.classUps[class] = append(f.classUps[class], n)
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s/g%d", class, f.nextID)
		f.nextID++
	}
	for i := range f.classes {
		if f.classes[i].Class == class {
			f.classes[i].Provisioning += n
		}
	}
	f.syncTotal()
	return out
}

func (f *fakeClassedFleet) ScaleDownClass(class string, n int) []string {
	f.classDns[class] = append(f.classDns[class], n)
	out := make([]string, 0, n)
	for i := range f.classes {
		if f.classes[i].Class != class {
			continue
		}
		if f.classes[i].Active < n {
			n = f.classes[i].Active
		}
		f.classes[i].Active -= n
		f.classes[i].Draining += n
		for j := 0; j < n; j++ {
			out = append(out, fmt.Sprintf("%s/d%d", class, j))
		}
	}
	f.syncTotal()
	return out
}

func mustTiered(t *testing.T, cfg Tiered) *Tiered {
	t.Helper()
	p, err := NewTiered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewTieredValidation(t *testing.T) {
	bad := []Tiered{
		{},                                  // no tiers
		{Tiers: []string{""}, TargetP95: 1}, // empty tier name
		{Tiers: []string{"a", "a"}, TargetP95: 1},                     // duplicate
		{Tiers: []string{"a"}, TargetP95: 0},                          // no latency target
		{Tiers: []string{"a", "b"}, TargetP95: 1, TierCaps: []int{4}}, // cap arity
		{Tiers: []string{"a"}, TargetP95: 1, TierCaps: []int{-1}},     // negative cap
		{Tiers: []string{"a"}, TargetP95: 1, Utilization: 1.5},        // bad utilization
	}
	for i, cfg := range bad {
		if _, err := NewTiered(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4})
	if p.Utilization != 0.75 || p.QueuePerGPU != 1 || p.Step != 2 || p.EscalateAfter != 2 || p.DownAfter != 4 {
		t.Errorf("defaults = %+v", p)
	}
}

// sigFor builds a two-tier signal: cheap ("t4") and fast ("rtx2080").
func sigFor(cheap, fast, idle, queue int, p95 float64) Signal {
	sig := Signal{
		Active:     cheap + fast,
		Idle:       idle,
		QueueDepth: queue,
		Classes: []ClassSignal{
			{Class: "t4", Active: cheap, Idle: idle},
			{Class: "rtx2080", Active: fast},
		},
	}
	if p95 > 0 {
		sig.P95LatencySec = p95
		sig.Completions = 10
	}
	if sig.Active > 0 {
		sig.IdleRatio = float64(idle) / float64(sig.Active)
	}
	return sig
}

func targetOf(t *testing.T, d ClassDecision, class string) int {
	t.Helper()
	for _, ct := range d.Targets {
		if ct.Class == class {
			return ct.Target
		}
	}
	t.Fatalf("no target for %s in %+v", class, d)
	return 0
}

// TestTieredBaseTierTracksDemand: the cheap tier is demand-proportional
// in both directions, while the fast tier stays untouched without a p95
// violation.
func TestTieredBaseTierTracksDemand(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, Utilization: 0.8})
	// 4 busy + 4 queued → demand 8 → ceil(8/0.8) = 10 cheap GPUs.
	d := p.DecideClasses(sigFor(4, 0, 0, 4, 1.0))
	if got := targetOf(t, d, "t4"); got != 10 {
		t.Errorf("t4 target = %d, want 10 (%s)", got, d.Reason)
	}
	if got := targetOf(t, d, "rtx2080"); got != 0 {
		t.Errorf("rtx2080 target = %d, want 0 — cheap tier first (%s)", got, d.Reason)
	}
	// Demand falls: 10 active, 8 idle, empty queue → demand 2 →
	// ceil(2/0.8) = 3. Tracks down with no hysteresis counter.
	d = p.DecideClasses(sigFor(10, 0, 8, 0, 1.0))
	if got := targetOf(t, d, "t4"); got != 3 {
		t.Errorf("t4 target = %d, want 3 (%s)", got, d.Reason)
	}
}

// TestTieredBaseTierCap: the cheap tier saturates at its cap; excess
// demand does NOT leak into the fast tier (that takes a p95 violation).
func TestTieredBaseTierCap(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TierCaps: []int{8, 4}, TargetP95: 4, Utilization: 0.8})
	d := p.DecideClasses(sigFor(8, 0, 0, 20, 1.0))
	if got := targetOf(t, d, "t4"); got != 8 {
		t.Errorf("t4 target = %d, want 8 (capped; %s)", got, d.Reason)
	}
	if got := targetOf(t, d, "rtx2080"); got != 0 {
		t.Errorf("rtx2080 target = %d, want 0 without a p95 violation (%s)", got, d.Reason)
	}
}

func TestTieredEscalatesToFastTierOnSustainedP95(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, Step: 2, EscalateAfter: 2, Utilization: 0.8})
	// Tick 1: p95 above target but not sustained → cheap tier only.
	d := p.DecideClasses(sigFor(4, 0, 0, 0, 9.0))
	if got := targetOf(t, d, "rtx2080"); got != 0 {
		t.Errorf("tick 1: rtx2080 target = %d, want 0 (%s)", got, d.Reason)
	}
	// Tick 2: p95 STILL above target → buy Step fast GPUs; the base
	// tier absorbs the rest of demand (busy 6 → ceil(6/0.8)=8 total,
	// minus 2 fast = 6 cheap).
	d = p.DecideClasses(sigFor(6, 0, 0, 0, 9.0))
	if got := targetOf(t, d, "rtx2080"); got != 2 {
		t.Errorf("tick 2: rtx2080 target = %d, want 2 (%s)", got, d.Reason)
	}
	if got := targetOf(t, d, "t4"); got != 6 {
		t.Errorf("tick 2: t4 target = %d, want 6 (%s)", got, d.Reason)
	}
	// Tick 3: still hot, but the escalation counter was consumed — no
	// further fast-tier buy until the violation sustains again.
	d = p.DecideClasses(sigFor(6, 2, 0, 0, 9.0))
	if got := targetOf(t, d, "rtx2080"); got != 2 {
		t.Errorf("tick 3: rtx2080 target = %d, want 2 (%s)", got, d.Reason)
	}
}

// TestTieredFastTierCap: escalation respects the fast tier's cap.
func TestTieredFastTierCap(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TierCaps: []int{0, 2}, TargetP95: 4, Step: 4, EscalateAfter: 1})
	d := p.DecideClasses(sigFor(4, 0, 0, 0, 9.0))
	if got := targetOf(t, d, "rtx2080"); got != 2 {
		t.Errorf("rtx2080 target = %d, want 2 (cap; %s)", got, d.Reason)
	}
	// At cap: a further sustained violation cannot buy more.
	d = p.DecideClasses(sigFor(4, 2, 0, 0, 9.0))
	if got := targetOf(t, d, "rtx2080"); got != 2 {
		t.Errorf("capped rtx2080 target = %d, want 2 (%s)", got, d.Reason)
	}
}

// TestTieredRetiresFastTierWhenCool: after DownAfter under-target ticks
// the most expensive tier steps back down; the base tier keeps tracking
// demand.
func TestTieredRetiresFastTierWhenCool(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, Step: 2, DownAfter: 2, Utilization: 0.8})
	cool := sigFor(6, 2, 2, 0, 1.0) // p95 well under target
	d := p.DecideClasses(cool)
	if got := targetOf(t, d, "rtx2080"); got != 2 {
		t.Errorf("tick 1 retired too early: %+v", d)
	}
	d = p.DecideClasses(cool)
	if got := targetOf(t, d, "rtx2080"); got != 0 {
		t.Errorf("rtx2080 target = %d, want 0 — expensive tier retires first (%s)", got, d.Reason)
	}
	// Base tier still demand-sized: busy 6 → ceil(6/0.8) = 8, minus 0
	// fast.
	if got := targetOf(t, d, "t4"); got != 8 {
		t.Errorf("t4 target = %d, want 8 (%s)", got, d.Reason)
	}
}

// TestTieredNoCompletionsFreezesLatencyCounters: ticks without
// completions carry no p95 evidence; neither escalation nor cool-down
// advances.
func TestTieredNoCompletionsFreezesLatencyCounters(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, EscalateAfter: 1, DownAfter: 1})
	d := p.DecideClasses(sigFor(4, 2, 4, 0, 0)) // idle, no completions
	if got := targetOf(t, d, "rtx2080"); got != 2 {
		t.Errorf("no-evidence tick moved the fast tier: %+v", d)
	}
}

func TestTieredCloneResetsCounters(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, EscalateAfter: 2})
	p.DecideClasses(sigFor(4, 0, 0, 0, 9.0)) // hotTicks = 1
	cp, ok := p.Clone().(*Tiered)
	if !ok {
		t.Fatal("Clone did not return *Tiered")
	}
	if cp.hotTicks != 0 || cp.coolTicks != 0 {
		t.Errorf("clone kept counters: hot=%d cool=%d", cp.hotTicks, cp.coolTicks)
	}
	// The clone must not escalate on its first hot tick.
	d := cp.DecideClasses(sigFor(4, 0, 0, 0, 9.0))
	if got := targetOf(t, d, "rtx2080"); got != 0 {
		t.Errorf("fresh clone escalated immediately: %+v", d)
	}
}

func TestTieredDecideFallbackHoldsSize(t *testing.T) {
	p := mustTiered(t, Tiered{Tiers: []string{"t4"}, TargetP95: 4})
	d := p.Decide(Signal{Active: 5, Provisioning: 1, QueueDepth: 100})
	if d.Target != 6 {
		t.Errorf("class-blind fallback target = %d, want 6 (hold)", d.Target)
	}
}

// TestAutoscalerClassedPath drives Evaluate against a classed fleet and
// checks per-class scale events, the global bounds, and the per-class
// signal.
func TestAutoscalerClassedPath(t *testing.T) {
	fleet := newFakeClassedFleet(
		ClassSize{Class: "t4", Size: Size{Active: 2}},
		ClassSize{Class: "rtx2080"},
	)
	pol := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, Utilization: 0.5})
	a, err := New(fleet, sim.SimClock{E: sim.New()}, Config{
		Policy:  pol,
		MinGPUs: 1,
		MaxGPUs: 4, // physical ceiling trims the demand-sized target
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 busy + 10 queued → demand 12 → target 24, clamped to 4 → +2.
	fleet.pending = 10
	sig := a.Evaluate(0)
	if len(sig.Classes) != 2 || sig.Classes[0].Class != "t4" || sig.Classes[0].Active != 2 {
		t.Fatalf("per-class signal = %+v", sig.Classes)
	}
	events := a.Events()
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	ev := events[0]
	if ev.Class != "t4" || ev.Action != ActionScaleUp || ev.Delta != 2 || ev.From != 2 || ev.To != 4 {
		t.Errorf("event = %+v (want t4 +2, clamped by MaxGPUs=4)", ev)
	}
	if got := fleet.classUps["t4"]; len(got) != 1 || got[0] != 2 {
		t.Errorf("ScaleUpClass calls = %v", got)
	}
	if len(fleet.classUps["rtx2080"]) != 0 {
		t.Errorf("fast tier scaled: %v", fleet.classUps["rtx2080"])
	}
}

// TestAutoscalerClassedScaleDownFloor pins that the global MinGPUs floor
// applies to the summed fleet during per-class scale-down.
func TestAutoscalerClassedScaleDownFloor(t *testing.T) {
	fleet := newFakeClassedFleet(
		ClassSize{Class: "t4", Size: Size{Active: 2, Idle: 2}},
		ClassSize{Class: "rtx2080", Size: Size{Active: 2, Idle: 2}},
	)
	pol := mustTiered(t, Tiered{Tiers: []string{"t4", "rtx2080"}, TargetP95: 4, Utilization: 0.8})
	a, err := New(fleet, sim.SimClock{E: sim.New()}, Config{Policy: pol, MinGPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Fully idle fleet, no completions: demand 0 → t4 target 0, but the
	// summed non-draining fleet must not fall below MinGPUs=3 → -1.
	a.Evaluate(0)
	events := a.Events()
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	ev := events[0]
	if ev.Class != "t4" || ev.Delta != -1 {
		t.Errorf("event = %+v (want t4 -1: the scale-down floored at MinGPUs=3)", ev)
	}
	// From/To keep the documented fleet-level (non-draining) semantics.
	if ev.From != 4 || ev.To != 3 {
		t.Errorf("event from/to = %d/%d, want 4/3 (summed non-draining fleet)", ev.From, ev.To)
	}
}

// TestAutoscalerClassedSameTickDrainRespectsMaxGPUs: GPUs drained (or
// removed) by an earlier per-class scale-down in the same tick still
// occupy machines; a later escalation must clamp against the LIVE
// physical fleet, not the pre-tick snapshot.
func TestAutoscalerClassedSameTickDrainRespectsMaxGPUs(t *testing.T) {
	fleet := newFakeClassedFleet(
		ClassSize{Class: "t4", Size: Size{Active: 8, Idle: 8}},
		ClassSize{Class: "rtx2080"},
	)
	pol := mustTiered(t, Tiered{
		Tiers: []string{"t4", "rtx2080"}, TargetP95: 1,
		Step: 6, EscalateAfter: 1, Utilization: 0.8,
	})
	a, err := New(fleet, sim.SimClock{E: sim.New()}, Config{Policy: pol, MinGPUs: 1, MaxGPUs: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Hot window: the tick both shrinks the idle base tier (demand 0)
	// and escalates to the fast tier (p95 5s > 1s target).
	for i := 0; i < 20; i++ {
		a.ObserveLatency(5)
	}
	a.Evaluate(0)
	phys := fleet.size.Active + fleet.size.Provisioning + fleet.size.Draining
	if phys > 10 {
		t.Errorf("physical fleet = %d > MaxGPUs=10 after same-tick drain + escalate (%+v)", phys, fleet.size)
	}
	if len(fleet.classUps["rtx2080"]) == 0 {
		t.Error("escalation never bought fast-tier capacity")
	}
}

// TestNewRejectsUndeclaredTierClass pins the construction-time class
// validation: a tier the fleet does not declare (e.g. a typo) must fail
// New instead of silently never scaling, and a class-aware policy on a
// classless fleet is equally rejected.
func TestNewRejectsUndeclaredTierClass(t *testing.T) {
	clock := sim.SimClock{E: sim.New()}
	fleet := newFakeClassedFleet(ClassSize{Class: "t4", Size: Size{Active: 1}})
	typo := mustTiered(t, Tiered{Tiers: []string{"T4"}, TargetP95: 1})
	if _, err := New(fleet, clock, Config{Policy: typo}); err == nil {
		t.Error("tier class the fleet does not declare must fail New")
	}
	ok := mustTiered(t, Tiered{Tiers: []string{"t4"}, TargetP95: 1})
	if _, err := New(fleet, clock, Config{Policy: ok}); err != nil {
		t.Errorf("declared tier rejected: %v", err)
	}
	if _, err := New(&fakeFleet{}, clock, Config{Policy: ok}); err == nil {
		t.Error("tiered policy on a classless fleet must fail New")
	}
}
