// Package dataset provides the inference inputs of the paper's evaluation
// (§V-A2): "a small group of 150 image files which comprise standard
// datasets such as CIFAR10, MNIST, and Hymenoptera". The real files are
// replaced by deterministic synthetic images with the same dimensions and
// channel layouts — inputs only affect payload size and preprocessing in
// this system, never scheduling — plus the preprocessing pipeline that
// resizes/normalizes them into network input tensors.
package dataset

import (
	"fmt"
	"math/rand"

	"gpufaas/internal/tensor"
)

// Kind identifies a source dataset.
type Kind string

// The three datasets of §V-A2.
const (
	MNIST       Kind = "mnist"
	CIFAR10     Kind = "cifar10"
	Hymenoptera Kind = "hymenoptera"
)

// Image is one sample: raw pixel data plus geometry.
type Image struct {
	Dataset  Kind
	Label    int
	Width    int
	Height   int
	Channels int
	// Pixels is HWC uint8 data, len = Width*Height*Channels.
	Pixels []byte
}

// Bytes returns the raw payload size, what an HTTP invocation carries.
func (im Image) Bytes() int { return len(im.Pixels) }

// Spec describes a dataset's geometry.
type Spec struct {
	Kind       Kind
	Width      int
	Height     int
	Channels   int
	NumClasses int
	// Variable marks datasets whose images vary in size (Hymenoptera
	// images range from 50KB to 2MB and "must be compressed before being
	// used in model inference").
	Variable bool
}

// Specs returns the three dataset specs.
func Specs() []Spec {
	return []Spec{
		{Kind: MNIST, Width: 28, Height: 28, Channels: 1, NumClasses: 10},
		{Kind: CIFAR10, Width: 32, Height: 32, Channels: 3, NumClasses: 10},
		{Kind: Hymenoptera, Width: 0, Height: 0, Channels: 3, NumClasses: 2, Variable: true},
	}
}

// SpecFor looks up a dataset spec.
func SpecFor(k Kind) (Spec, error) {
	for _, s := range Specs() {
		if s.Kind == k {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown kind %q", k)
}

// Generate produces n deterministic images from the dataset. Each image's
// content is a class-dependent gradient pattern with pixel noise, so
// different labels produce visibly different tensors (tests rely on
// determinism, examples rely on plausibility).
func Generate(k Kind, n int, seed int64) ([]Image, error) {
	spec, err := SpecFor(k)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative count %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Image, 0, n)
	for i := 0; i < n; i++ {
		w, h := spec.Width, spec.Height
		if spec.Variable {
			// Hymenoptera-like: random sizes from ~128 to ~640 px.
			w = 128 + rng.Intn(512)
			h = 128 + rng.Intn(512)
		}
		label := rng.Intn(spec.NumClasses)
		img := Image{
			Dataset: k, Label: label, Width: w, Height: h, Channels: spec.Channels,
			Pixels: make([]byte, w*h*spec.Channels),
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for c := 0; c < spec.Channels; c++ {
					base := (x*13 + y*7 + label*31 + c*17) % 256
					noise := rng.Intn(32)
					img.Pixels[(y*w+x)*spec.Channels+c] = byte((base + noise) % 256)
				}
			}
		}
		out = append(out, img)
	}
	return out, nil
}

// EvalPool reproduces the paper's 150-image evaluation pool: 50 images
// from each of the three datasets.
func EvalPool(seed int64) ([]Image, error) {
	var pool []Image
	for i, k := range []Kind{MNIST, CIFAR10, Hymenoptera} {
		imgs, err := Generate(k, 50, seed+int64(i))
		if err != nil {
			return nil, err
		}
		pool = append(pool, imgs...)
	}
	return pool, nil
}

// ToTensor preprocesses a batch of images into the network input
// [N, 3, size, size]: nearest-neighbour resize (the "compression" step for
// oversized Hymenoptera images), grayscale→RGB channel replication, and
// scaling to [0, 1).
func ToTensor(imgs []Image, size int) (*tensor.Tensor, error) {
	if len(imgs) == 0 {
		return nil, fmt.Errorf("dataset: empty batch")
	}
	if size <= 0 {
		return nil, fmt.Errorf("dataset: non-positive size %d", size)
	}
	out := tensor.MustNew(len(imgs), 3, size, size)
	for n, im := range imgs {
		if im.Width <= 0 || im.Height <= 0 || len(im.Pixels) != im.Width*im.Height*im.Channels {
			return nil, fmt.Errorf("dataset: malformed image %d", n)
		}
		for y := 0; y < size; y++ {
			sy := y * im.Height / size
			for x := 0; x < size; x++ {
				sx := x * im.Width / size
				for c := 0; c < 3; c++ {
					sc := c
					if sc >= im.Channels {
						sc = im.Channels - 1 // replicate gray into RGB
					}
					px := im.Pixels[(sy*im.Width+sx)*im.Channels+sc]
					out.Data[((n*3+c)*size+y)*size+x] = float32(px) / 256
				}
			}
		}
	}
	return out, nil
}

// Batch selects a batch of images round-robin from a pool starting at
// offset, wrapping around; it is how the gateway examples draw inputs.
func Batch(pool []Image, offset, n int) ([]Image, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("dataset: empty pool")
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: non-positive batch %d", n)
	}
	out := make([]Image, n)
	for i := 0; i < n; i++ {
		out[i] = pool[(offset+i)%len(pool)]
	}
	return out, nil
}
