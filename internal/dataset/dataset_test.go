package dataset

import (
	"testing"
	"testing/quick"

	"gpufaas/internal/nn"
)

func TestSpecs(t *testing.T) {
	if len(Specs()) != 3 {
		t.Fatal("want 3 dataset specs")
	}
	m, err := SpecFor(MNIST)
	if err != nil || m.Width != 28 || m.Channels != 1 {
		t.Errorf("MNIST spec = %+v (%v)", m, err)
	}
	c, err := SpecFor(CIFAR10)
	if err != nil || c.Width != 32 || c.Channels != 3 {
		t.Errorf("CIFAR spec = %+v (%v)", c, err)
	}
	h, err := SpecFor(Hymenoptera)
	if err != nil || !h.Variable || h.NumClasses != 2 {
		t.Errorf("Hymenoptera spec = %+v (%v)", h, err)
	}
	if _, err := SpecFor("imagenet"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, k := range []Kind{MNIST, CIFAR10, Hymenoptera} {
		imgs, err := Generate(k, 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(imgs) != 10 {
			t.Fatalf("%s: %d images", k, len(imgs))
		}
		spec, _ := SpecFor(k)
		for _, im := range imgs {
			if len(im.Pixels) != im.Width*im.Height*im.Channels {
				t.Fatalf("%s: pixel buffer mismatch", k)
			}
			if im.Bytes() != len(im.Pixels) {
				t.Error("Bytes() wrong")
			}
			if im.Label < 0 || im.Label >= spec.NumClasses {
				t.Errorf("%s: label %d out of range", k, im.Label)
			}
			if !spec.Variable && (im.Width != spec.Width || im.Height != spec.Height) {
				t.Errorf("%s: fixed-size dataset produced %dx%d", k, im.Width, im.Height)
			}
			if spec.Variable && (im.Width < 128 || im.Width > 640) {
				t.Errorf("variable width %d out of range", im.Width)
			}
		}
	}
	if _, err := Generate(MNIST, -1, 1); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := Generate("nope", 1, 1); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(CIFAR10, 5, 42)
	b, _ := Generate(CIFAR10, 5, 42)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ")
		}
		for j := range a[i].Pixels {
			if a[i].Pixels[j] != b[i].Pixels[j] {
				t.Fatal("pixels differ")
			}
		}
	}
}

func TestEvalPool(t *testing.T) {
	pool, err := EvalPool(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 150 {
		t.Fatalf("pool = %d images, want 150 (paper §V-A2)", len(pool))
	}
	kinds := map[Kind]int{}
	for _, im := range pool {
		kinds[im.Dataset]++
	}
	if kinds[MNIST] != 50 || kinds[CIFAR10] != 50 || kinds[Hymenoptera] != 50 {
		t.Errorf("pool mix = %v", kinds)
	}
}

func TestToTensor(t *testing.T) {
	pool, err := EvalPool(1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Batch(pool, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ToTensor(batch, nn.InputSize)
	if err != nil {
		t.Fatal(err)
	}
	if x.Shape[0] != 8 || x.Shape[1] != 3 || x.Shape[2] != 32 || x.Shape[3] != 32 {
		t.Fatalf("tensor shape = %v", x.Shape)
	}
	for _, v := range x.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("pixel %v out of [0,1)", v)
		}
	}
	// A tensor built this way must be a valid network input.
	net, err := nn.Build("resnet18", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Predict(x); err != nil {
		t.Fatal(err)
	}
}

func TestToTensorErrors(t *testing.T) {
	if _, err := ToTensor(nil, 32); err == nil {
		t.Error("empty batch should fail")
	}
	imgs, _ := Generate(MNIST, 1, 1)
	if _, err := ToTensor(imgs, 0); err == nil {
		t.Error("zero size should fail")
	}
	bad := imgs[0]
	bad.Pixels = bad.Pixels[:10]
	if _, err := ToTensor([]Image{bad}, 32); err == nil {
		t.Error("malformed image should fail")
	}
}

func TestBatchWraps(t *testing.T) {
	pool, _ := Generate(CIFAR10, 3, 1)
	b, err := Batch(pool, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4 {
		t.Fatalf("batch = %d", len(b))
	}
	if b[0].Label != pool[2].Label || b[1].Label != pool[0].Label {
		t.Error("wrap-around order wrong")
	}
	if _, err := Batch(nil, 0, 1); err == nil {
		t.Error("empty pool should fail")
	}
	if _, err := Batch(pool, 0, 0); err == nil {
		t.Error("zero batch should fail")
	}
}

// Property: ToTensor output is always within [0,1) and shaped correctly
// for any pool offset/batch size.
func TestToTensorRangeProperty(t *testing.T) {
	pool, err := EvalPool(7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(offset uint8, nRaw uint8) bool {
		n := int(nRaw)%16 + 1
		b, err := Batch(pool, int(offset), n)
		if err != nil {
			return false
		}
		x, err := ToTensor(b, 32)
		if err != nil {
			return false
		}
		if x.Shape[0] != n {
			return false
		}
		for _, v := range x.Data {
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
