// Package chaos is a deterministic, seed-driven fault injector for the
// simulated GPU fleet. It schedules three event kinds on the shared sim
// clock:
//
//   - crashes: a GPU fails instantly (no drain) — sampled per device
//     from an exponential MTBF, or scripted explicitly;
//   - stragglers: a transient slowdown window (thermal throttle, noisy
//     neighbor) multiplying the device's service times by a factor,
//     stacking on the batch-aware service-time model;
//   - recoveries: the cluster re-adds capacity MTTR after a crash (the
//     injector signals the crash; the owning cluster schedules the
//     replacement).
//
// Determinism contract: every sampled fault time is a pure function of
// (Seed, device ordinal, event index) — the same splitmix64 trick as
// the observability sampler and the multi-cell router replay — so the
// fault schedule is byte-identical at any worker count and under K>1
// cell sharding (each cell owns a private injector over its own dense
// ordinals). No global RNG state exists to race on.
package chaos

import (
	"errors"
	"fmt"
	"math"
	"time"

	"gpufaas/internal/sim"
)

// FaultKind selects what a scripted fault does to its target device.
type FaultKind int

// Scripted fault kinds.
const (
	// Crash fails the device instantly: in-flight work is interrupted,
	// residents evict, capacity drops without a drain.
	Crash FaultKind = iota
	// Straggle opens a slowdown window on the device: launches
	// dispatched inside [At, At+Window) run Factor× slower.
	Straggle
)

// String returns the kind name.
func (k FaultKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Straggle:
		return "straggle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scripted fault: an explicit (time, device) entry used by
// tests and targeted scenarios instead of (or alongside) MTBF sampling.
type Fault struct {
	// At is the fault instant as an offset from the run epoch.
	At time.Duration
	// Ord is the target device's dense registration ordinal. A fault
	// whose ordinal is not live when it fires is a no-op.
	Ord int
	// Kind selects crash vs straggler.
	Kind FaultKind
	// Factor is the straggler slowdown multiplier (> 1); ignored for
	// crashes.
	Factor float64
	// Window is the straggler duration; ignored for crashes.
	Window time.Duration
}

// Config describes the fault model. The zero value injects nothing.
type Config struct {
	// Seed drives every sampled fault time. Two runs with the same
	// seed, fleet and workload produce byte-identical fault schedules.
	Seed uint64

	// MTBF is the per-device mean time between crash faults (sampled
	// exponentially, independently per device ordinal). Zero disables
	// sampled crashes.
	MTBF time.Duration

	// MTTR is the mean-time-to-repair: the cluster re-adds a same-class
	// replacement (cold cache, fresh ordinal) this long after each
	// crash. Zero disables recovery — crashed capacity stays lost.
	MTTR time.Duration

	// StragglerEvery is the per-device mean interval between slowdown
	// windows (exponentially sampled). Zero disables stragglers.
	StragglerEvery time.Duration
	// StragglerFactor is the service-time multiplier inside a window
	// (must be > 1 when StragglerEvery is set).
	StragglerFactor float64
	// StragglerWindow is each window's length (must be > 0 when
	// StragglerEvery is set).
	StragglerWindow time.Duration

	// Script schedules explicit faults, evaluated alongside any
	// sampling. Entries must be sorted by At (validated).
	Script []Fault

	// Horizon bounds the schedule: no fault, window or recovery chain
	// event is scheduled at or beyond it. Mandatory when MTBF or
	// StragglerEvery is set — the crash→recover→crash and straggler
	// window chains are otherwise endless and the simulation would
	// never drain. Experiments set it to the trace length plus slack.
	Horizon time.Duration
}

// Enabled reports whether the config injects anything at all.
func (c *Config) Enabled() bool {
	return c != nil && (c.MTBF > 0 || c.StragglerEvery > 0 || len(c.Script) > 0)
}

// Validate checks the config's internal consistency.
func (c *Config) Validate() error {
	if c == nil || !c.Enabled() {
		return nil
	}
	if c.MTBF < 0 || c.MTTR < 0 || c.StragglerEvery < 0 || c.StragglerWindow < 0 || c.Horizon < 0 {
		return errors.New("chaos: negative duration in config")
	}
	if (c.MTBF > 0 || c.StragglerEvery > 0) && c.Horizon == 0 {
		return errors.New("chaos: sampled faults require a Horizon")
	}
	if c.StragglerEvery > 0 {
		if c.StragglerFactor <= 1 {
			return fmt.Errorf("chaos: straggler factor %v must be > 1", c.StragglerFactor)
		}
		if c.StragglerWindow <= 0 {
			return errors.New("chaos: straggler window must be > 0")
		}
	}
	var prev time.Duration
	for i, f := range c.Script {
		if f.At < prev {
			return fmt.Errorf("chaos: script fault %d at %v out of order", i, f.At)
		}
		prev = f.At
		if f.Kind == Straggle && (f.Factor <= 1 || f.Window <= 0) {
			return fmt.Errorf("chaos: script straggler %d needs factor > 1 and window > 0", i)
		}
	}
	return nil
}

// Hooks are the injector's effect callbacks, supplied by the owning
// cluster. They run on the shared clock (the cluster's lock discipline
// applies in live mode). Fail receives a crash; SetSlowdown opens
// (factor > 1) and closes (factor == 1) straggler windows.
type Hooks struct {
	Fail        func(gpuID string, now sim.Time)
	SetSlowdown func(gpuID string, factor float64, now sim.Time)
}

// Injector schedules the configured faults for one cluster (or one
// cell). Not safe for concurrent use; the owning cluster serializes.
type Injector struct {
	cfg   Config
	clock sim.Clock
	hooks Hooks

	devs map[int]*devState

	faults     int64
	stragglers int64
}

// devState tracks one live device's pending fault timers so removal
// (crash, decommission) cancels them — a timer must never fire against
// a reused ordinal or a departed device.
type devState struct {
	id      string
	cancels []func()
	stragK  uint64 // next straggler sample index for this ordinal
}

// NewInjector builds an injector. The cluster calls Start once and
// DeviceAdded/DeviceRemoved as fleet membership changes.
func NewInjector(cfg Config, clock sim.Clock, hooks Hooks) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, errors.New("chaos: nil clock")
	}
	if hooks.Fail == nil || hooks.SetSlowdown == nil {
		return nil, errors.New("chaos: nil hook")
	}
	return &Injector{cfg: cfg, clock: clock, hooks: hooks, devs: make(map[int]*devState)}, nil
}

// Counters reports how many faults and straggler windows fired.
func (in *Injector) Counters() (faults, stragglers int64) {
	return in.faults, in.stragglers
}

// Start schedules the scripted faults. Call once, after the boot fleet
// is registered.
func (in *Injector) Start(now sim.Time) {
	for _, f := range in.cfg.Script {
		f := f
		at := sim.Time(f.At)
		if at < now || (in.cfg.Horizon > 0 && at >= sim.Time(in.cfg.Horizon)) {
			continue
		}
		// Script timers are not per-device (the target may not exist yet
		// at schedule time); the fire-time ordinal lookup makes a fault
		// against a departed or never-live ordinal a no-op.
		in.clock.AfterFunc(at-now, "chaos.script", func(at sim.Time) {
			d, ok := in.devs[f.Ord]
			if !ok {
				return
			}
			switch f.Kind {
			case Crash:
				in.faults++
				in.hooks.Fail(d.id, at)
			case Straggle:
				in.openWindow(f.Ord, d, f.Factor, f.Window, at)
			}
		})
	}
}

// DeviceAdded registers a live device and schedules its sampled faults:
// at most one crash (a crash removes the device) and the first
// straggler window of its chain, both pure functions of (Seed, ord).
func (in *Injector) DeviceAdded(ord int, gpuID string, now sim.Time) {
	d := &devState{id: gpuID}
	in.devs[ord] = d
	if in.cfg.MTBF > 0 {
		at := now + sim.Time(expSample(in.cfg.MTBF, in.streamU64(ord, streamCrash, 0)))
		if at < sim.Time(in.cfg.Horizon) {
			cancel := in.clock.AfterFunc(at-now, "chaos.crash "+gpuID, func(at sim.Time) {
				in.faults++
				in.hooks.Fail(gpuID, at)
			})
			d.cancels = append(d.cancels, cancel)
		}
	}
	if in.cfg.StragglerEvery > 0 {
		in.armStraggler(ord, d, now)
	}
}

// DeviceRemoved cancels the device's pending fault timers. The cluster
// calls it from every removal path — crash, drain, decommission.
func (in *Injector) DeviceRemoved(ord int) {
	d, ok := in.devs[ord]
	if !ok {
		return
	}
	for _, c := range d.cancels {
		c()
	}
	delete(in.devs, ord)
}

// armStraggler schedules the device's next slowdown window start.
func (in *Injector) armStraggler(ord int, d *devState, now sim.Time) {
	at := now + sim.Time(expSample(in.cfg.StragglerEvery, in.streamU64(ord, streamStrag, d.stragK)))
	d.stragK++
	if at >= sim.Time(in.cfg.Horizon) {
		return
	}
	cancel := in.clock.AfterFunc(at-now, "chaos.straggle "+d.id, func(at sim.Time) {
		in.openWindow(ord, d, in.cfg.StragglerFactor, in.cfg.StragglerWindow, at)
	})
	d.cancels = append(d.cancels, cancel)
}

// openWindow applies a slowdown window: factor now, restore at
// now+window, then re-arm the sampled chain (the restore may land past
// the horizon — harmless, it only ever shortens service times — but no
// new window starts beyond it, so the chain terminates).
func (in *Injector) openWindow(ord int, d *devState, factor float64, window time.Duration, now sim.Time) {
	in.stragglers++
	in.hooks.SetSlowdown(d.id, factor, now)
	end := now + sim.Time(window)
	cancel := in.clock.AfterFunc(end-now, "chaos.restore "+d.id, func(at sim.Time) {
		in.hooks.SetSlowdown(d.id, 1, at)
		if in.cfg.StragglerEvery > 0 {
			in.armStraggler(ord, d, at)
		}
	})
	d.cancels = append(d.cancels, cancel)
}

// Stream salts separating the per-device sample streams.
const (
	streamCrash uint64 = 0x632D6372617368 // "c-crash"
	streamStrag uint64 = 0x632D7374726167 // "c-strag"
)

// streamU64 returns the k-th uniform of a device's sample stream: a
// splitmix64 output keyed by (Seed, ordinal, stream, k). Stateless, so
// the schedule never depends on evaluation order.
func (in *Injector) streamU64(ord int, stream, k uint64) uint64 {
	x := in.cfg.Seed
	x ^= (uint64(ord) + 1) * 0x9E3779B97F4A7C15
	x ^= stream * 0xD1342543DE82EF95
	x += (k + 1) * 0xBF58476D1CE4E5B9
	return splitmix64(x)
}

// splitmix64 is the finalizer used throughout the repo for deterministic
// hashing (obs sampling, router replay).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// expSample maps a uniform to an exponential inter-arrival time with
// the given mean via the inverse CDF. The uniform is shifted into
// (0, 1] so the log argument is never zero.
func expSample(mean time.Duration, u uint64) time.Duration {
	f := (float64(u>>11) + 1) / (1 << 53)
	return time.Duration(-float64(mean) * math.Log(f))
}
