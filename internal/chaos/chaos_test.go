package chaos

// Unit tests for the injector itself: config validation, the purity of
// the sampled fault schedule, and timer-cancel hygiene on removal. The
// recovery/retry semantics live in the cluster tests; here the injector
// runs against a bare engine with recording hooks.

import (
	"reflect"
	"testing"
	"time"

	"gpufaas/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value injects nothing", Config{}, true},
		{"script only needs no horizon", Config{Script: []Fault{{At: time.Second, Kind: Crash}}}, true},
		{"mtbf without horizon", Config{Seed: 1, MTBF: time.Minute}, false},
		{"mtbf with horizon", Config{Seed: 1, MTBF: time.Minute, Horizon: time.Hour}, true},
		{"straggler factor must exceed 1", Config{StragglerEvery: time.Minute, StragglerFactor: 1, StragglerWindow: time.Second, Horizon: time.Hour}, false},
		{"straggler window must be positive", Config{StragglerEvery: time.Minute, StragglerFactor: 2, Horizon: time.Hour}, false},
		{"script out of order", Config{Script: []Fault{{At: 2 * time.Second}, {At: time.Second}}}, false},
		{"script straggler needs factor and window", Config{Script: []Fault{{At: time.Second, Kind: Straggle, Factor: 1}}}, false},
		{"negative duration", Config{MTTR: -time.Second, Script: []Fault{{At: time.Second}}}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// event is one hook firing as the recording hooks observe it.
type event struct {
	gpu    string
	at     sim.Time
	factor float64 // 0 for crashes
}

// runSchedule drives cfg against a fleet of n devices on a fresh engine
// and returns every hook firing in delivery order.
func runSchedule(t *testing.T, cfg Config, n int) []event {
	t.Helper()
	eng := sim.New()
	var got []event
	in, err := NewInjector(cfg, sim.SimClock{E: eng}, Hooks{
		Fail:        func(gpu string, now sim.Time) { got = append(got, event{gpu: gpu, at: now}) },
		SetSlowdown: func(gpu string, f float64, now sim.Time) { got = append(got, event{gpu: gpu, at: now, factor: f}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for ord := 0; ord < n; ord++ {
		in.DeviceAdded(ord, "gpu"+string(rune('0'+ord)), 0)
	}
	in.Start(0)
	eng.Run(0)
	return got
}

// TestScheduleIsPureFunctionOfSeed pins the determinism contract: the
// same (seed, fleet) yields the identical event sequence, and a
// different seed yields a different one.
func TestScheduleIsPureFunctionOfSeed(t *testing.T) {
	cfg := Config{
		Seed: 7, MTBF: 10 * time.Minute,
		StragglerEvery: 5 * time.Minute, StragglerFactor: 2, StragglerWindow: 30 * time.Second,
		Horizon: time.Hour,
	}
	a := runSchedule(t, cfg, 4)
	b := runSchedule(t, cfg, 4)
	if len(a) == 0 {
		t.Fatal("schedule produced no events inside the horizon")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%v\n%v", a, b)
	}
	cfg.Seed = 8
	if c := runSchedule(t, cfg, 4); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	// Every event respects the horizon except window restores, which may
	// close just past it (they only ever shorten service times).
	for _, ev := range a {
		if ev.at >= sim.Time(cfg.Horizon)+sim.Time(30*time.Second) {
			t.Errorf("event at %v beyond horizon+window", ev.at)
		}
	}
}

// TestDeviceRemovedCancelsTimers removes a device before its sampled
// crash fires: no hook may target a departed device.
func TestDeviceRemovedCancelsTimers(t *testing.T) {
	eng := sim.New()
	var got []event
	cfg := Config{
		Seed: 3, MTBF: time.Minute,
		StragglerEvery: time.Minute, StragglerFactor: 2, StragglerWindow: 10 * time.Second,
		Horizon: time.Hour,
	}
	in, err := NewInjector(cfg, sim.SimClock{E: eng}, Hooks{
		Fail:        func(gpu string, now sim.Time) { got = append(got, event{gpu: gpu, at: now}) },
		SetSlowdown: func(gpu string, f float64, now sim.Time) { got = append(got, event{gpu: gpu, at: now, factor: f}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	in.DeviceAdded(0, "victim", 0)
	in.DeviceAdded(1, "survivor", 0)
	in.DeviceRemoved(0)
	eng.Run(0)
	if len(got) == 0 {
		t.Fatal("survivor produced no events inside the horizon")
	}
	for _, ev := range got {
		if ev.gpu == "victim" {
			t.Fatalf("event %v fired against a removed device", ev)
		}
	}
	faults, stragglers := in.Counters()
	if int(faults+stragglers) == 0 || int(faults) > 1 {
		t.Errorf("counters = (%d, %d): want survivor-only accounting", faults, stragglers)
	}
}

// TestScriptTargetsOrdinalAtFireTime pins the scripted-fault no-op rule:
// a script entry against an ordinal that is not live when it fires does
// nothing, and crash vs straggle dispatch on Kind.
func TestScriptTargetsOrdinalAtFireTime(t *testing.T) {
	eng := sim.New()
	var got []event
	cfg := Config{Script: []Fault{
		{At: time.Second, Ord: 0, Kind: Crash},
		{At: 2 * time.Second, Ord: 1, Kind: Straggle, Factor: 3, Window: time.Second},
		{At: 3 * time.Second, Ord: 9, Kind: Crash}, // never-live ordinal: no-op
	}}
	in, err := NewInjector(cfg, sim.SimClock{E: eng}, Hooks{
		Fail:        func(gpu string, now sim.Time) { got = append(got, event{gpu: gpu, at: now}) },
		SetSlowdown: func(gpu string, f float64, now sim.Time) { got = append(got, event{gpu: gpu, at: now, factor: f}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	in.DeviceAdded(0, "a", 0)
	in.DeviceAdded(1, "b", 0)
	in.Start(0)
	eng.Run(0)
	want := []event{
		{gpu: "a", at: sim.Time(time.Second)},
		{gpu: "b", at: sim.Time(2 * time.Second), factor: 3},
		{gpu: "b", at: sim.Time(3 * time.Second), factor: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("script events = %v, want %v", got, want)
	}
	if faults, stragglers := in.Counters(); faults != 1 || stragglers != 1 {
		t.Errorf("counters = (%d, %d), want (1, 1)", faults, stragglers)
	}
}
