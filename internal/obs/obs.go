// Package obs is the observability layer: request-lifecycle spans,
// latency decomposition, and time-series telemetry, shared by the
// simulated and live paths.
//
// Everything here is opt-in and zero-overhead when disabled: the zero
// Options value turns every feature off, the cluster holds nil
// collectors in that state, and the hot paths guard each hook with a
// single nil check. Reports marshal the collected blocks with
// `omitempty`, so goldens recorded before this package existed stay
// byte-identical.
//
// Determinism is a hard requirement (the CI gate byte-compares trace
// exports across worker counts): sampling is a pure function of the
// request ID, spans record sim time only, and every exporter iterates
// slices in a sorted order — no map iteration, no wall clock.
package obs

import (
	"sort"
	"time"

	"gpufaas/internal/stats"
)

// Options selects which observability features a cluster records. The
// zero value disables everything.
type Options struct {
	// Trace records request-lifecycle spans for the deterministic
	// sample selected by SampleMod.
	Trace bool
	// SampleMod keeps roughly 1-in-SampleMod requests
	// (splitmix64(reqID) % SampleMod == 0). <= 1 keeps every request.
	SampleMod uint64
	// Breakdown collects the queue-wait / load / service latency
	// decomposition surfaced as Report.Breakdown.
	Breakdown bool
	// Series samples queue depth, idle count, in-flight count, and the
	// windowed miss ratio every SeriesInterval of sim time.
	Series bool
	// SeriesInterval is the sampling period for Series; <= 0 means
	// DefaultSeriesInterval.
	SeriesInterval time.Duration
	// Cell tags spans with the owning cell index (multi-cell runs).
	Cell int
}

// Enabled reports whether any feature is on.
func (o Options) Enabled() bool { return o.Trace || o.Breakdown || o.Series }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash
// used to turn sequential request IDs into an unbiased sample.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether request id falls in the deterministic
// 1-in-mod sample. Pure function of (id, mod): the same request is
// sampled regardless of worker count, cell partitioning, or replay
// order.
func Sampled(id int64, mod uint64) bool {
	if mod <= 1 {
		return true
	}
	return splitmix64(uint64(id))%mod == 0
}

// Span is one sampled request's lifecycle, in sim time relative to
// the run origin. Ord is captured at dispatch: by completion time the
// GPU may already have been drained out of the fleet.
type Span struct {
	ReqID    int64  `json:"req"`
	Function string `json:"function"`
	Model    string `json:"model"`
	GPU      string `json:"gpu"`
	Ord      int    `json:"ord"`
	Cell     int    `json:"cell"`

	Arrival    time.Duration `json:"arrival_ns"`
	Dispatched time.Duration `json:"dispatched_ns"`
	Finished   time.Duration `json:"finished_ns"`
	LoadTime   time.Duration `json:"load_ns"`
	InferTime  time.Duration `json:"infer_ns"`

	Hit       bool `json:"hit"`
	FalseMiss bool `json:"false_miss"`
	ExpectHit bool `json:"expect_hit"`
	Parked    bool `json:"parked"`
	O3Skips   int  `json:"o3_skips"`

	// BatchMembers is the number of requests coalesced into this
	// request's GPU launch; 0 on the single-dispatch path, omitted so
	// pre-batching trace exports stay byte-identical. InferShare is the
	// request's attributed slice of the batched inference wall time
	// (InferTime above is the whole launch); 0/omitted on the single
	// path, where the request owns the full InferTime.
	BatchMembers int           `json:"batch,omitempty"`
	InferShare   time.Duration `json:"infer_share_ns,omitempty"`

	// Attempt counts earlier execution attempts this request lost to
	// GPU failures before the dispatch recorded here (0 on the first
	// try, omitted so fault-free trace exports stay byte-identical).
	Attempt int `json:"attempt,omitempty"`
}

// pendingSpan holds the placement-decision fields captured at
// dispatch until the completion record arrives.
type pendingSpan struct {
	gpu       string
	ord       int
	o3Skips   int
	parked    bool
	expectHit bool
	attempt   int
}

// Tracer records lifecycle spans for the sampled request subset. It
// is confined to the owning cluster's goroutine (like every other
// per-cluster structure) and needs no locking.
type Tracer struct {
	mod     uint64
	cell    int
	pending map[int64]pendingSpan
	spans   []Span
}

// NewTracer returns a tracer sampling 1-in-sampleMod requests,
// tagging spans with the given cell index.
func NewTracer(sampleMod uint64, cell int) *Tracer {
	return &Tracer{mod: sampleMod, cell: cell, pending: make(map[int64]pendingSpan)}
}

// Sampled reports whether request id is in this tracer's sample.
func (t *Tracer) Sampled(id int64) bool { return Sampled(id, t.mod) }

// OnDispatch records the placement decision for a request about to
// execute; attempt counts its earlier failure-interrupted attempts. A
// re-dispatch after an interrupt simply overwrites the pending record.
// No-op for unsampled requests.
func (t *Tracer) OnDispatch(id int64, gpu string, ord, o3Skips int, parked, expectHit bool, attempt int) {
	if !t.Sampled(id) {
		return
	}
	t.pending[id] = pendingSpan{gpu: gpu, ord: ord, o3Skips: o3Skips, parked: parked, expectHit: expectHit, attempt: attempt}
}

// Drop discards the pending dispatch record for a request whose
// execution failed (it will never complete).
func (t *Tracer) Drop(id int64) {
	if t == nil {
		return
	}
	delete(t.pending, id)
}

// Completion carries the execution-side fields of a finished request.
type Completion struct {
	ReqID      int64
	Function   string
	Model      string
	Hit        bool
	FalseMiss  bool
	Arrival    time.Duration
	Dispatched time.Duration
	Finished   time.Duration
	LoadTime   time.Duration
	InferTime  time.Duration
	// BatchMembers / InferShare mirror the Span fields: launch occupancy
	// and this request's attributed service slice (0 on the single path).
	BatchMembers int
	InferShare   time.Duration
}

// OnComplete joins a completion record with its pending dispatch
// fields and appends the finished span. No-op for unsampled requests.
func (t *Tracer) OnComplete(c Completion) {
	p, ok := t.pending[c.ReqID]
	if !ok {
		return
	}
	delete(t.pending, c.ReqID)
	t.spans = append(t.spans, Span{
		ReqID:        c.ReqID,
		Function:     c.Function,
		Model:        c.Model,
		GPU:          p.gpu,
		Ord:          p.ord,
		Cell:         t.cell,
		Arrival:      c.Arrival,
		Dispatched:   c.Dispatched,
		Finished:     c.Finished,
		LoadTime:     c.LoadTime,
		InferTime:    c.InferTime,
		Hit:          c.Hit,
		FalseMiss:    c.FalseMiss,
		ExpectHit:    p.expectHit,
		Parked:       p.parked,
		O3Skips:      p.o3Skips,
		BatchMembers: c.BatchMembers,
		InferShare:   c.InferShare,
		Attempt:      p.attempt,
	})
}

// Len returns the number of completed spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the completed spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// SortSpans orders spans canonically — by (cell, ord, dispatch time,
// request ID) — so concatenations from differently-ordered cell
// slices serialize identically.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Ord != b.Ord {
			return a.Ord < b.Ord
		}
		if a.Dispatched != b.Dispatched {
			return a.Dispatched < b.Dispatched
		}
		return a.ReqID < b.ReqID
	})
}

// Quantiles summarizes one latency component in seconds.
type Quantiles struct {
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P95Sec  float64 `json:"p95_sec"`
	P99Sec  float64 `json:"p99_sec"`
}

// PhaseStats decomposes latency into its three additive phases:
// queue wait (arrival -> dispatch), model load (zero on a cache hit),
// and service (inference). queue + load + service == end-to-end
// latency for every request.
type PhaseStats struct {
	QueueWait Quantiles `json:"queue_wait"`
	Load      Quantiles `json:"load"`
	Service   Quantiles `json:"service"`
}

// Breakdown is the per-run latency decomposition: phase quantiles
// over all requests and split by cache hit vs miss. This is the block
// that attributes a p95 move to a specific component — e.g. the
// K=16 locality collapse shows up as the Load component blowing out
// while Service stays flat.
type Breakdown struct {
	Requests    int64 `json:"requests"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	FalseMisses int64 `json:"false_misses"`

	All  PhaseStats `json:"all"`
	Hit  PhaseStats `json:"hit"`
	Miss PhaseStats `json:"miss"`

	// Batched counts requests that completed via a coalesced (multi- or
	// single-member) batched launch; BatchOccupancy is the histogram of
	// launch occupancy over those requests, and EffectiveService the
	// quantiles of their attributed service slices (InferShare — what a
	// request actually cost, vs the Service phase above, which records
	// the whole launch wall time each member rode on). All zero/omitted
	// when batching is off, keeping pre-batching reports byte-identical.
	Batched          int64             `json:"batched,omitempty"`
	BatchOccupancy   []OccupancyBucket `json:"batch_occupancy,omitempty"`
	EffectiveService *Quantiles        `json:"effective_service,omitempty"`

	// Retried counts execution attempts aborted by GPU failures, and
	// RetryWaste the quantiles of the GPU time each aborted attempt had
	// already burned (work the fleet paid for but no request benefited
	// from). Zero/omitted without fault injection.
	Retried    int64      `json:"retried,omitempty"`
	RetryWaste *Quantiles `json:"retry_waste,omitempty"`
}

// OccupancyBucket is one row of the batch-occupancy histogram: how many
// requests completed in launches coalescing exactly Members requests.
type OccupancyBucket struct {
	Members  int   `json:"members"`
	Requests int64 `json:"requests"`
}

// RawBreakdown holds the raw per-request component samples, split by
// hit/miss, in seconds. Keeping the raw values (rather than
// pre-computed quantiles) lets multicell.Merge compute exact merged
// percentiles over the concatenated fleet, the same way it merges
// end-to-end latencies. Hits have an implicit zero load sample.
type RawBreakdown struct {
	Hits        int64
	Misses      int64
	FalseMisses int64

	QueueHit    []float64
	QueueMiss   []float64
	LoadMiss    []float64
	ServiceHit  []float64
	ServiceMiss []float64

	// Batch accounting (coalesced dispatch). Occupancy[k-1] counts
	// requests that completed in a k-member launch; EffShare holds each
	// batched request's attributed service slice in seconds. Both empty
	// when batching is off.
	Batched   int64
	Occupancy []int64
	EffShare  []float64

	// Retry accounting (fault injection). RetryWaste holds the GPU time
	// each failure-aborted attempt had burned, in seconds.
	Retried    int64
	RetryWaste []float64
}

// Collector accumulates the raw latency decomposition for one
// cluster. Goroutine-confined like Tracer.
type Collector struct {
	raw RawBreakdown
}

// NewCollector returns an empty breakdown collector.
func NewCollector() *Collector { return &Collector{} }

// Observe records one completed request's phase durations. members is
// the launch occupancy (0 on the single-dispatch path) and share the
// request's attributed service slice — both recorded only for batched
// completions, so pre-batching collections are unchanged.
func (c *Collector) Observe(hit, falseMiss bool, queue, load, service time.Duration, members int, share time.Duration) {
	if members > 0 {
		c.raw.Batched++
		for len(c.raw.Occupancy) < members {
			c.raw.Occupancy = append(c.raw.Occupancy, 0)
		}
		c.raw.Occupancy[members-1]++
		c.raw.EffShare = append(c.raw.EffShare, share.Seconds())
	}
	if hit {
		c.raw.Hits++
		c.raw.QueueHit = append(c.raw.QueueHit, queue.Seconds())
		c.raw.ServiceHit = append(c.raw.ServiceHit, service.Seconds())
		return
	}
	c.raw.Misses++
	if falseMiss {
		c.raw.FalseMisses++
	}
	c.raw.QueueMiss = append(c.raw.QueueMiss, queue.Seconds())
	c.raw.LoadMiss = append(c.raw.LoadMiss, load.Seconds())
	c.raw.ServiceMiss = append(c.raw.ServiceMiss, service.Seconds())
}

// ObserveRetry records one execution attempt aborted by a GPU failure
// and the GPU time it had already consumed.
func (c *Collector) ObserveRetry(waste time.Duration) {
	c.raw.Retried++
	c.raw.RetryWaste = append(c.raw.RetryWaste, waste.Seconds())
}

// Raw returns the accumulated raw samples (shared, not copied): the
// cluster hands it to multicell for exact cross-cell merging.
func (c *Collector) Raw() *RawBreakdown {
	if c == nil {
		return nil
	}
	return &c.raw
}

// Breakdown computes the quantile summary of what was collected.
func (c *Collector) Breakdown() *Breakdown {
	if c == nil {
		return nil
	}
	return c.raw.Breakdown()
}

// quantiles summarizes values (plus zeros implicit zero samples, used
// for the load component of cache hits) without mutating the input.
func quantiles(values []float64, zeros int64) Quantiles {
	n := int64(len(values)) + zeros
	if n == 0 {
		return Quantiles{}
	}
	s := stats.NewSample(int(n))
	for i := int64(0); i < zeros; i++ {
		s.Add(0)
	}
	sum := 0.0
	for _, v := range values {
		s.Add(v)
		sum += v
	}
	return Quantiles{
		MeanSec: sum / float64(n),
		P50Sec:  s.Percentile(50),
		P95Sec:  s.Percentile(95),
		P99Sec:  s.Percentile(99),
	}
}

// concat returns a ∪ b as a fresh slice.
func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Breakdown computes the quantile summary of the raw samples.
func (r *RawBreakdown) Breakdown() *Breakdown {
	if r == nil {
		return nil
	}
	b := &Breakdown{
		Requests:    r.Hits + r.Misses,
		Hits:        r.Hits,
		Misses:      r.Misses,
		FalseMisses: r.FalseMisses,
	}
	b.Hit = PhaseStats{
		QueueWait: quantiles(r.QueueHit, 0),
		Load:      quantiles(nil, r.Hits),
		Service:   quantiles(r.ServiceHit, 0),
	}
	b.Miss = PhaseStats{
		QueueWait: quantiles(r.QueueMiss, 0),
		Load:      quantiles(r.LoadMiss, 0),
		Service:   quantiles(r.ServiceMiss, 0),
	}
	b.All = PhaseStats{
		QueueWait: quantiles(concat(r.QueueHit, r.QueueMiss), 0),
		Load:      quantiles(r.LoadMiss, r.Hits),
		Service:   quantiles(concat(r.ServiceHit, r.ServiceMiss), 0),
	}
	if r.Batched > 0 {
		b.Batched = r.Batched
		for i, n := range r.Occupancy {
			if n > 0 {
				b.BatchOccupancy = append(b.BatchOccupancy, OccupancyBucket{Members: i + 1, Requests: n})
			}
		}
		q := quantiles(r.EffShare, 0)
		b.EffectiveService = &q
	}
	if r.Retried > 0 {
		b.Retried = r.Retried
		q := quantiles(r.RetryWaste, 0)
		b.RetryWaste = &q
	}
	return b
}

// MergeRaw concatenates per-cell raw breakdowns into one fleet-wide
// raw breakdown (exact: quantiles computed after merging are the
// quantiles of the union). Nil entries (cells with the collector off)
// are skipped; returns nil if every entry is nil.
func MergeRaw(raws []*RawBreakdown) *RawBreakdown {
	var out *RawBreakdown
	for _, r := range raws {
		if r == nil {
			continue
		}
		if out == nil {
			out = &RawBreakdown{}
		}
		out.Hits += r.Hits
		out.Misses += r.Misses
		out.FalseMisses += r.FalseMisses
		out.QueueHit = append(out.QueueHit, r.QueueHit...)
		out.QueueMiss = append(out.QueueMiss, r.QueueMiss...)
		out.LoadMiss = append(out.LoadMiss, r.LoadMiss...)
		out.ServiceHit = append(out.ServiceHit, r.ServiceHit...)
		out.ServiceMiss = append(out.ServiceMiss, r.ServiceMiss...)
		out.Batched += r.Batched
		for len(out.Occupancy) < len(r.Occupancy) {
			out.Occupancy = append(out.Occupancy, 0)
		}
		for i, n := range r.Occupancy {
			out.Occupancy[i] += n
		}
		out.EffShare = append(out.EffShare, r.EffShare...)
		out.Retried += r.Retried
		out.RetryWaste = append(out.RetryWaste, r.RetryWaste...)
	}
	return out
}
