package obs

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// WriteTrace serializes spans as Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load): one process per cell, one
// thread (track) per GPU ordinal, a complete ("X") slice per request
// spanning dispatch -> completion, and a nested "load" slice when the
// request missed cache and paid a model load.
//
// The output is deterministic: spans are sorted canonically, every
// object is emitted by fmt with fixed field order (no map iteration,
// no encoding/json), and timestamps are sim-time microseconds printed
// with fixed precision. The CI determinism gate byte-compares this
// output across worker counts.
func WriteTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			fmt.Fprint(bw, ",\n")
		} else {
			fmt.Fprint(bw, "\n")
			first = false
		}
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name each cell's process and each ordinal's thread so
	// the viewer groups tracks by cell and labels them with GPU IDs.
	// sorted order means cells ascend and, within a cell, ords ascend.
	lastCell, lastOrd := -1, -1
	for _, s := range sorted {
		if s.Cell != lastCell {
			lastCell, lastOrd = s.Cell, -1
			emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"cell%d"}}`, s.Cell, s.Cell)
		}
		if s.Ord != lastOrd {
			lastOrd = s.Ord
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, s.Cell, s.Ord, s.GPU)
		}
	}

	for _, s := range sorted {
		ts := usec(s.Dispatched)
		dur := usec(s.Finished - s.Dispatched)
		name := s.Model + " hit"
		if !s.Hit {
			name = s.Model + " miss"
		}
		emit(`{"name":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"req":%d,"function":%q,"hit":%t,"false_miss":%t,"expect_hit":%t,"parked":%t,"o3_skips":%d,"queue_us":%s,"load_us":%s,"infer_us":%s}}`,
			name, ts, dur, s.Cell, s.Ord,
			s.ReqID, s.Function, s.Hit, s.FalseMiss, s.ExpectHit, s.Parked, s.O3Skips,
			usec(s.Dispatched-s.Arrival), usec(s.LoadTime), usec(s.InferTime))
		if s.LoadTime > 0 {
			emit(`{"name":"load","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"req":%d,"model":%q}}`,
				ts, usec(s.LoadTime), s.Cell, s.Ord, s.ReqID, s.Model)
		}
	}
	fmt.Fprint(bw, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// usec renders a sim duration as trace-event microseconds with fixed
// nanosecond precision (sim time is integer nanoseconds, so three
// decimals is exact — no floating-point formatting in the output).
func usec(d time.Duration) string {
	n := int64(d)
	return fmt.Sprintf("%d.%03d", n/1000, n%1000)
}
