package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestSampledDeterministicAndUnbiased(t *testing.T) {
	const n, mod = 100000, 64
	kept := 0
	for id := int64(0); id < n; id++ {
		s := Sampled(id, mod)
		if s != Sampled(id, mod) {
			t.Fatalf("Sampled(%d) not stable", id)
		}
		if s {
			kept++
		}
	}
	want := float64(n) / mod
	if math.Abs(float64(kept)-want) > want/2 {
		t.Fatalf("sample density off: kept %d of %d at mod %d (want ~%.0f)", kept, n, mod, want)
	}
	// mod <= 1 keeps everything.
	if !Sampled(12345, 0) || !Sampled(12345, 1) {
		t.Fatal("mod <= 1 must keep every request")
	}
}

func TestTracerLifecycle(t *testing.T) {
	tr := NewTracer(1, 3) // keep everything, cell 3
	tr.OnDispatch(7, "node0/gpu2", 2, 4, true, true, 1)
	tr.OnDispatch(8, "node0/gpu1", 1, 0, false, false, 0)
	tr.Drop(8) // execution failed
	tr.OnComplete(Completion{
		ReqID: 7, Function: "f", Model: "resnet50", Hit: false, FalseMiss: true,
		Arrival: 10 * time.Millisecond, Dispatched: 15 * time.Millisecond,
		Finished: 40 * time.Millisecond, LoadTime: 20 * time.Millisecond, InferTime: 5 * time.Millisecond,
	})
	tr.OnComplete(Completion{ReqID: 8}) // dropped: ignored
	if tr.Len() != 1 {
		t.Fatalf("want 1 span, got %d", tr.Len())
	}
	s := tr.Spans()[0]
	if s.ReqID != 7 || s.GPU != "node0/gpu2" || s.Ord != 2 || s.Cell != 3 ||
		s.O3Skips != 4 || !s.Parked || !s.ExpectHit || s.Hit || !s.FalseMiss || s.Attempt != 1 {
		t.Fatalf("span fields wrong: %+v", s)
	}
	if s.Dispatched-s.Arrival != 5*time.Millisecond {
		t.Fatalf("queue wait = %v", s.Dispatched-s.Arrival)
	}

	// nil tracer is safe for the hooks the cluster calls un-guarded.
	var nilTr *Tracer
	nilTr.Drop(1)
	if nilTr.Len() != 0 || nilTr.Spans() != nil {
		t.Fatal("nil tracer accessors must be zero")
	}
}

func TestCollectorBreakdown(t *testing.T) {
	c := NewCollector()
	// Two hits (queue 1s/3s, service 2s each), one miss
	// (queue 5s, load 10s, service 2s, false miss).
	c.Observe(true, false, 1*time.Second, 0, 2*time.Second, 0, 0)
	c.Observe(true, false, 3*time.Second, 0, 2*time.Second, 0, 0)
	c.Observe(false, true, 5*time.Second, 10*time.Second, 2*time.Second, 0, 0)
	b := c.Breakdown()
	if b.Requests != 3 || b.Hits != 2 || b.Misses != 1 || b.FalseMisses != 1 {
		t.Fatalf("counts wrong: %+v", b)
	}
	if got := b.All.QueueWait.MeanSec; math.Abs(got-3) > 1e-12 {
		t.Fatalf("all queue mean = %v, want 3", got)
	}
	// Load over all requests includes the hits' implicit zeros:
	// mean = 10/3, p50 = 0 (two of three samples are zero).
	if got := b.All.Load.MeanSec; math.Abs(got-10.0/3) > 1e-12 {
		t.Fatalf("all load mean = %v, want 10/3", got)
	}
	if b.All.Load.P50Sec != 0 {
		t.Fatalf("all load p50 = %v, want 0", b.All.Load.P50Sec)
	}
	if b.Hit.Load.MeanSec != 0 || b.Hit.Load.P99Sec != 0 {
		t.Fatalf("hit load must be all-zero: %+v", b.Hit.Load)
	}
	if b.Miss.Load.P50Sec != 10 || b.Miss.Service.MeanSec != 2 {
		t.Fatalf("miss phases wrong: %+v", b.Miss)
	}
	// The additive identity: mean(queue)+mean(load)+mean(service) ==
	// mean(end-to-end latency). Latencies: 3, 5, 17 -> mean 25/3.
	sum := b.All.QueueWait.MeanSec + b.All.Load.MeanSec + b.All.Service.MeanSec
	if math.Abs(sum-25.0/3) > 1e-9 {
		t.Fatalf("component means sum to %v, want 25/3", sum)
	}
}

func TestMergeRawExactUnion(t *testing.T) {
	a := NewCollector()
	a.Observe(true, false, 1*time.Second, 0, 1*time.Second, 0, 0)
	a.Observe(false, false, 2*time.Second, 4*time.Second, 1*time.Second, 0, 0)
	b := NewCollector()
	b.Observe(false, true, 3*time.Second, 8*time.Second, 1*time.Second, 0, 0)

	// Union collector observing the same six requests directly.
	u := NewCollector()
	u.Observe(true, false, 1*time.Second, 0, 1*time.Second, 0, 0)
	u.Observe(false, false, 2*time.Second, 4*time.Second, 1*time.Second, 0, 0)
	u.Observe(false, true, 3*time.Second, 8*time.Second, 1*time.Second, 0, 0)

	merged := MergeRaw([]*RawBreakdown{a.Raw(), nil, b.Raw()}).Breakdown()
	want := u.Breakdown()
	mj, _ := json.Marshal(merged)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(mj, wj) {
		t.Fatalf("merged breakdown != union breakdown:\n%s\n%s", mj, wj)
	}
	if MergeRaw([]*RawBreakdown{nil, nil}) != nil {
		t.Fatal("all-nil merge must be nil")
	}
}

func TestRecorderBoundaries(t *testing.T) {
	r := NewRecorder(10 * time.Second)
	if r.Due(9 * time.Second) {
		t.Fatal("not due before first boundary")
	}
	if !r.Due(10 * time.Second) {
		t.Fatal("due at the boundary")
	}
	// One event at t=25s crosses two boundaries: both points carry
	// the same gauges, the first carries the deltas.
	r.Tick(25*time.Second, 4, 2, 3, 100, 10, 50)
	// One more at t=31s.
	r.Tick(31*time.Second, 1, 5, 0, 160, 13, 90)
	s := r.Series()
	if len(s.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(s.Points))
	}
	p0, p1, p2 := s.Points[0], s.Points[1], s.Points[2]
	if p0.TSec != 10 || p1.TSec != 20 || p2.TSec != 30 {
		t.Fatalf("boundary times wrong: %v %v %v", p0.TSec, p1.TSec, p2.TSec)
	}
	if p0.Completed != 50 || p0.Lookups != 100 || p0.Misses != 10 || p0.MissRatio != 0.1 {
		t.Fatalf("first point deltas wrong: %+v", p0)
	}
	if p1.Completed != 0 || p1.Lookups != 0 || p1.QueueDepth != 4 {
		t.Fatalf("fill-forward point wrong: %+v", p1)
	}
	if p2.Completed != 40 || p2.Lookups != 60 || p2.Misses != 3 || p2.QueueDepth != 1 || p2.Idle != 5 {
		t.Fatalf("third point wrong: %+v", p2)
	}
}

func TestMergeSeries(t *testing.T) {
	a := &Series{IntervalSec: 10, Points: []Point{
		{TSec: 10, QueueDepth: 2, Idle: 1, InFlight: 3, Completed: 10, Lookups: 12, Misses: 3},
		{TSec: 20, QueueDepth: 1, Completed: 5, Lookups: 5, Misses: 1},
	}}
	b := &Series{IntervalSec: 10, Points: []Point{
		{TSec: 10, QueueDepth: 4, Idle: 2, InFlight: 1, Completed: 6, Lookups: 6, Misses: 3},
	}}
	m := MergeSeries([]*Series{a, b})
	if m.IntervalSec != 10 || len(m.Points) != 2 {
		t.Fatalf("merged shape wrong: %+v", m)
	}
	p0 := m.Points[0]
	if p0.QueueDepth != 6 || p0.Idle != 3 || p0.InFlight != 4 || p0.Completed != 16 ||
		p0.Lookups != 18 || p0.Misses != 6 {
		t.Fatalf("merged point wrong: %+v", p0)
	}
	if math.Abs(p0.MissRatio-6.0/18) > 1e-12 {
		t.Fatalf("merged miss ratio = %v", p0.MissRatio)
	}
	if len(p0.CellCompleted) != 2 || p0.CellCompleted[0] != 10 || p0.CellCompleted[1] != 6 {
		t.Fatalf("cell loads wrong: %v", p0.CellCompleted)
	}
	// Shorter cell stops contributing.
	p1 := m.Points[1]
	if p1.Completed != 5 || p1.CellCompleted[1] != 0 {
		t.Fatalf("tail point wrong: %+v", p1)
	}
	if MergeSeries([]*Series{nil, nil}) != nil {
		t.Fatal("all-nil merge must be nil")
	}
	// Single-cell merge omits the per-cell loads.
	if s := MergeSeries([]*Series{a}); s.Points[0].CellCompleted != nil {
		t.Fatal("single-cell merge must omit CellCompleted")
	}
}

func TestWriteTraceDeterministicAndValid(t *testing.T) {
	spans := []Span{
		{ReqID: 2, Function: "f2", Model: "bert", GPU: "node0/gpu1", Ord: 1, Cell: 1,
			Arrival: 1 * time.Millisecond, Dispatched: 2 * time.Millisecond,
			Finished: 30 * time.Millisecond, LoadTime: 20 * time.Millisecond,
			InferTime: 8 * time.Millisecond, O3Skips: 2},
		{ReqID: 1, Function: "f1", Model: "resnet50", GPU: "node0/gpu0", Ord: 0, Cell: 0,
			Arrival: 0, Dispatched: 1500 * time.Microsecond,
			Finished: 5 * time.Millisecond, InferTime: 3500 * time.Microsecond,
			Hit: true, ExpectHit: true},
	}
	var a, b bytes.Buffer
	if err := WriteTrace(&a, spans); err != nil {
		t.Fatal(err)
	}
	// Reversed input order must serialize identically (canonical sort).
	rev := []Span{spans[1], spans[0]}
	if err := WriteTrace(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace output depends on span order:\n%s\n%s", a.Bytes(), b.Bytes())
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a.Bytes())
	}
	// 2 process_name + 2 thread_name + 2 request slices + 1 load slice.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("want 7 events, got %d:\n%s", len(doc.TraceEvents), a.Bytes())
	}
	var sawHit, sawLoad bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Name == "resnet50 hit":
			sawHit = true
			if e.TS != 1500 || e.Dur != 3500 || e.PID != 0 || e.TID != 0 {
				t.Fatalf("hit slice wrong: %+v", e)
			}
			if e.Args["queue_us"].(float64) != 1500 {
				t.Fatalf("queue_us wrong: %+v", e.Args)
			}
		case e.Name == "load":
			sawLoad = true
			if e.Dur != 20000 || e.PID != 1 || e.TID != 1 {
				t.Fatalf("load slice wrong: %+v", e)
			}
		}
	}
	if !sawHit || !sawLoad {
		t.Fatalf("missing expected slices (hit=%t load=%t)", sawHit, sawLoad)
	}
}
