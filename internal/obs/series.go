package obs

import "time"

// DefaultSeriesInterval is the sampling period when
// Options.SeriesInterval is unset.
const DefaultSeriesInterval = 10 * time.Second

// Point is one fixed-interval telemetry sample. Gauge fields
// (QueueDepth, Idle, InFlight) are the instantaneous state at the
// first event on or after the interval boundary; delta fields
// (Completed, Lookups, Misses) count activity since the previous
// point. Raw counts rather than ratios so cross-cell merging is
// exact; MissRatio is derived (Misses/Lookups for the interval).
type Point struct {
	TSec       float64 `json:"t_sec"`
	QueueDepth int     `json:"queue_depth"`
	Idle       int     `json:"idle"`
	InFlight   int     `json:"in_flight"`
	Completed  int64   `json:"completed"`
	Lookups    int64   `json:"lookups"`
	Misses     int64   `json:"misses"`
	MissRatio  float64 `json:"miss_ratio"`
}

// Series is the time-series telemetry for one cluster.
type Series struct {
	IntervalSec float64 `json:"interval_sec"`
	Points      []Point `json:"points"`
}

// Recorder emits fixed-interval samples on the sim clock without
// scheduling any clock events of its own: a self-re-arming AfterFunc
// would keep the event queue non-empty and stop `engine.Run(0)` from
// ever draining. Instead the cluster calls Due/Tick from its existing
// dispatch and completion hooks; when an event crosses one or more
// interval boundaries the recorder emits a point per crossed boundary
// (fill-forward: an idle gap repeats the current gauges with zero
// deltas on the first boundary carrying the delta).
type Recorder struct {
	interval time.Duration
	next     time.Duration
	series   Series

	lastCompleted int64
	lastLookups   int64
	lastMisses    int64
}

// NewRecorder returns a recorder sampling every interval of sim time
// (DefaultSeriesInterval if interval <= 0).
func NewRecorder(interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = DefaultSeriesInterval
	}
	return &Recorder{interval: interval, next: interval,
		series: Series{IntervalSec: interval.Seconds()}}
}

// Due reports whether now has reached the next interval boundary.
// One comparison: the cluster guards the state-gathering cost of a
// full Tick behind it.
func (r *Recorder) Due(now time.Duration) bool { return now >= r.next }

// Tick emits a point for every interval boundary at or before now,
// using the supplied instantaneous state and cumulative counters.
func (r *Recorder) Tick(now time.Duration, queueDepth, idle, inFlight int, lookups, misses, completed int64) {
	for r.next <= now {
		p := Point{
			TSec:       r.next.Seconds(),
			QueueDepth: queueDepth,
			Idle:       idle,
			InFlight:   inFlight,
			Completed:  completed - r.lastCompleted,
			Lookups:    lookups - r.lastLookups,
			Misses:     misses - r.lastMisses,
		}
		if p.Lookups > 0 {
			p.MissRatio = float64(p.Misses) / float64(p.Lookups)
		}
		r.lastCompleted = completed
		r.lastLookups = lookups
		r.lastMisses = misses
		r.series.Points = append(r.series.Points, p)
		r.next += r.interval
	}
}

// Series returns the recorded series. The points slice is shared with
// the recorder; callers treat it as read-only.
func (r *Recorder) Series() *Series {
	if r == nil {
		return nil
	}
	s := r.series
	return &s
}

// MergedPoint is a fleet-wide sample: gauges and deltas summed over
// cells at the same interval index, plus the per-cell completion
// counts (the cell-load distribution the router produced).
type MergedPoint struct {
	TSec       float64 `json:"t_sec"`
	QueueDepth int     `json:"queue_depth"`
	Idle       int     `json:"idle"`
	InFlight   int     `json:"in_flight"`
	Completed  int64   `json:"completed"`
	Lookups    int64   `json:"lookups"`
	Misses     int64   `json:"misses"`
	MissRatio  float64 `json:"miss_ratio"`
	// CellCompleted is this interval's completion count per cell
	// (index = cell); omitted for single-cell runs.
	CellCompleted []int64 `json:"cell_completed,omitempty"`
}

// MergedSeries is the cross-cell merge of per-cell Series.
type MergedSeries struct {
	IntervalSec float64       `json:"interval_sec"`
	Points      []MergedPoint `json:"points"`
}

// MergeSeries merges per-cell series by interval index. Cells whose
// runs end earlier simply stop contributing (their makespan is
// shorter); nil entries are skipped. Returns nil if every entry is
// nil. All series share the interval configured on the run.
func MergeSeries(cells []*Series) *MergedSeries {
	var out *MergedSeries
	maxLen := 0
	for _, s := range cells {
		if s == nil {
			continue
		}
		if out == nil {
			out = &MergedSeries{IntervalSec: s.IntervalSec}
		}
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if out == nil {
		return nil
	}
	multi := len(cells) > 1
	for i := 0; i < maxLen; i++ {
		var mp MergedPoint
		if multi {
			mp.CellCompleted = make([]int64, len(cells))
		}
		for ci, s := range cells {
			if s == nil || i >= len(s.Points) {
				continue
			}
			p := s.Points[i]
			mp.TSec = p.TSec
			mp.QueueDepth += p.QueueDepth
			mp.Idle += p.Idle
			mp.InFlight += p.InFlight
			mp.Completed += p.Completed
			mp.Lookups += p.Lookups
			mp.Misses += p.Misses
			if multi {
				mp.CellCompleted[ci] = p.Completed
			}
		}
		if mp.Lookups > 0 {
			mp.MissRatio = float64(mp.Misses) / float64(mp.Lookups)
		}
		out.Points = append(out.Points, mp)
	}
	return out
}
