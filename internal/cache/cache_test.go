package cache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gpufaas/internal/sim"
)

const gib = int64(1) << 30

// fakeDev implements DeviceView.
type fakeDev struct {
	id       string
	capacity int64
	resident map[string]int64
}

func newFakeDev(id string, capacity int64) *fakeDev {
	return &fakeDev{id: id, capacity: capacity, resident: map[string]int64{}}
}

func (d *fakeDev) ID() string { return d.id }
func (d *fakeDev) MemFree() int64 {
	used := int64(0)
	for _, sz := range d.resident {
		used += sz
	}
	return d.capacity - used
}
func (d *fakeDev) ResidentSize(model string) (int64, bool) {
	sz, ok := d.resident[model]
	return sz, ok
}

var sizes = map[string]int64{
	"a": 1 * gib, "b": 1 * gib, "c": 2 * gib, "d": 2 * gib, "e": 3 * gib,
}

func sizeOf(model string) (int64, bool) {
	sz, ok := sizes[model]
	return sz, ok
}

func newMgr(t *testing.T, policy string) *Manager {
	t.Helper()
	m, err := NewManager(policy, sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager("bogus", sizeOf); err == nil {
		t.Error("want error for unknown policy")
	}
	if _, err := NewManager(PolicyLRU, nil); err == nil {
		t.Error("want error for nil sizeOf")
	}
	m, err := NewManager("", sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy() != PolicyLRU {
		t.Errorf("default policy = %s", m.Policy())
	}
}

func TestRegisterAndIndex(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	if err := m.RegisterGPU("g0"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterGPU("g0"); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := m.RegisterGPU("g1"); err != nil {
		t.Fatal(err)
	}
	if got := m.GPUs(); len(got) != 2 || got[0] != "g0" {
		t.Errorf("GPUs = %v", got)
	}

	if err := m.OnMiss("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	if err := m.OnMiss("g1", "a", 0); err != nil {
		t.Fatal(err)
	}
	if !m.Cached("g0", "a") || !m.Cached("g1", "a") {
		t.Error("index lost residency")
	}
	if m.NumCaching("a") != 2 {
		t.Errorf("NumCaching = %d", m.NumCaching("a"))
	}
	if got := m.GPUsCaching("a"); len(got) != 2 || got[0] != "g0" || got[1] != "g1" {
		t.Errorf("GPUsCaching = %v", got)
	}
	if m.GPUsCaching("nope") != nil {
		t.Error("unknown model should have nil GPU list")
	}
	if err := m.OnEvict("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	if m.Cached("g0", "a") || !m.CachedAnywhere("a") {
		t.Error("eviction bookkeeping wrong")
	}
	if err := m.OnEvict("g1", "a", 0); err != nil {
		t.Fatal(err)
	}
	if m.CachedAnywhere("a") {
		t.Error("model should be gone everywhere")
	}
}

func TestHitMissErrors(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	if err := m.OnHit("ghost", "a", 0); !errors.Is(err, ErrUnknownGPU) {
		t.Errorf("OnHit unknown GPU: %v", err)
	}
	if err := m.OnMiss("ghost", "a", 0); !errors.Is(err, ErrUnknownGPU) {
		t.Errorf("OnMiss unknown GPU: %v", err)
	}
	if err := m.OnEvict("ghost", "a", 0); !errors.Is(err, ErrUnknownGPU) {
		t.Errorf("OnEvict unknown GPU: %v", err)
	}
	if err := m.RegisterGPU("g0"); err != nil {
		t.Fatal(err)
	}
	if err := m.OnHit("g0", "a", 0); !errors.Is(err, ErrNotTracked) {
		t.Errorf("OnHit untracked: %v", err)
	}
	if err := m.OnEvict("g0", "a", 0); !errors.Is(err, ErrNotTracked) {
		t.Errorf("OnEvict untracked: %v", err)
	}
	if err := m.OnMiss("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	if err := m.OnMiss("g0", "a", 0); !errors.Is(err, ErrAlreadyKnown) {
		t.Errorf("double miss: %v", err)
	}
}

func TestVictimsLRUOrder(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	if err := m.RegisterGPU("g0"); err != nil {
		t.Fatal(err)
	}
	dev := newFakeDev("g0", 4*gib)
	for _, model := range []string{"a", "b", "c"} { // 1+1+2 = 4 GiB, full
		if err := m.OnMiss("g0", model, 0); err != nil {
			t.Fatal(err)
		}
		dev.resident[model] = sizes[model]
	}
	// Touch "a" so "b" becomes LRU.
	if err := m.OnHit("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	// Need 2 GiB: must evict b (1 GiB) then c (2 GiB)? b first is LRU
	// order; b alone gives 1 GiB free, so c is also taken.
	victims, err := m.Victims(dev, 2*gib)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 2 || victims[0] != "b" || victims[1] != "c" {
		t.Errorf("victims = %v", victims)
	}
	// Already fits -> no victims.
	dev2 := newFakeDev("g0", 8*gib)
	v2, err := m.Victims(dev2, gib)
	if err != nil || v2 != nil {
		t.Errorf("fit case: %v %v", v2, err)
	}
}

func TestVictimsSkipsPinned(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	if err := m.RegisterGPU("g0"); err != nil {
		t.Fatal(err)
	}
	dev := newFakeDev("g0", 2*gib)
	for _, model := range []string{"a", "b"} {
		if err := m.OnMiss("g0", model, 0); err != nil {
			t.Fatal(err)
		}
		dev.resident[model] = sizes[model]
	}
	m.Pin("g0", "a") // a is LRU but in use
	victims, err := m.Victims(dev, gib)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0] != "b" {
		t.Errorf("victims = %v", victims)
	}
	m.Pin("g0", "") // unpin
	victims, err = m.Victims(dev, gib)
	if err != nil || victims[0] != "a" {
		t.Errorf("after unpin victims = %v (%v)", victims, err)
	}
}

func TestVictimsWontFit(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	if err := m.RegisterGPU("g0"); err != nil {
		t.Fatal(err)
	}
	dev := newFakeDev("g0", 2*gib)
	if err := m.OnMiss("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	dev.resident["a"] = sizes["a"]
	if _, err := m.Victims(dev, 100*gib); !errors.Is(err, ErrWontFit) {
		t.Errorf("want ErrWontFit, got %v", err)
	}
	if _, err := m.Victims(newFakeDev("ghost", gib), gib); !errors.Is(err, ErrUnknownGPU) {
		t.Errorf("unknown GPU: %v", err)
	}
}

func TestMetricsAndFalseMiss(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	for _, id := range []string{"g0", "g1"} {
		if err := m.RegisterGPU(id); err != nil {
			t.Fatal(err)
		}
	}
	// miss on g0 (model nowhere): not a false miss
	if err := m.OnMiss("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	// miss on g1 (a cached on g0): false miss
	if err := m.OnMiss("g1", "a", 0); err != nil {
		t.Fatal(err)
	}
	// hit on g0
	if err := m.OnHit("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	got := m.Metrics()
	if got.Requests != 3 || got.Misses != 2 || got.FalseMisses != 1 {
		t.Errorf("metrics = %+v", got)
	}
	if got.MissRatio < 0.66 || got.MissRatio > 0.67 {
		t.Errorf("MissRatio = %g", got.MissRatio)
	}
	if got.FalseMissRatio != 0.5 {
		t.Errorf("FalseMissRatio = %g", got.FalseMissRatio)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	got := m.Metrics()
	if got.MissRatio != 0 || got.FalseMissRatio != 0 {
		t.Errorf("empty metrics = %+v", got)
	}
}

func TestTrackedDuplicates(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	for _, id := range []string{"g0", "g1"} {
		if err := m.RegisterGPU(id); err != nil {
			t.Fatal(err)
		}
	}
	sec := sim.Time(1e9)
	m.Track("a", 0)
	if err := m.OnMiss("g0", "a", 0); err != nil { // 1 copy from t=0
		t.Fatal(err)
	}
	if err := m.OnMiss("g1", "a", 10*sec); err != nil { // 2 copies from t=10
		t.Fatal(err)
	}
	// average over [0,20]: (1*10 + 2*10)/20 = 1.5
	if got := m.TrackedAverage("a", 20*sec); got < 1.49 || got > 1.51 {
		t.Errorf("TrackedAverage = %g", got)
	}
	if m.TrackedAverage("untracked", 20*sec) != 0 {
		t.Error("untracked model should average 0")
	}
}

func TestResidentCount(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	if m.ResidentCount("ghost") != 0 {
		t.Error("unknown GPU should count 0")
	}
	if err := m.RegisterGPU("g0"); err != nil {
		t.Fatal(err)
	}
	if err := m.OnMiss("g0", "a", 0); err != nil {
		t.Fatal(err)
	}
	if m.ResidentCount("g0") != 1 {
		t.Errorf("ResidentCount = %d", m.ResidentCount("g0"))
	}
}

func TestReplacementListPolicies(t *testing.T) {
	t.Run("lru", func(t *testing.T) {
		l := newLRU()
		l.Insert("a")
		l.Insert("b")
		l.Insert("c")
		l.Touch("a") // order (evict first): b, c, a
		got := l.Candidates()
		if len(got) != 3 || got[0] != "b" || got[1] != "c" || got[2] != "a" {
			t.Errorf("LRU candidates = %v", got)
		}
		l.Remove("c")
		if l.Len() != 2 {
			t.Errorf("Len = %d", l.Len())
		}
		l.Insert("a") // re-insert refreshes
		if got := l.Candidates(); got[0] != "b" {
			t.Errorf("after refresh = %v", got)
		}
	})
	t.Run("fifo", func(t *testing.T) {
		l := newFIFO()
		l.Insert("a")
		l.Insert("b")
		l.Touch("a")  // no effect
		l.Insert("a") // no effect, already present
		got := l.Candidates()
		if got[0] != "a" || got[1] != "b" {
			t.Errorf("FIFO candidates = %v", got)
		}
		l.Remove("a")
		l.Remove("missing") // no-op
		if l.Len() != 1 {
			t.Errorf("Len = %d", l.Len())
		}
	})
	t.Run("lfu", func(t *testing.T) {
		l := newLFU()
		l.Insert("a")
		l.Insert("b")
		l.Insert("c")
		l.Touch("b")
		l.Touch("b")
		l.Touch("c")
		l.Touch("missing") // ignored
		got := l.Candidates()
		// a: 0 uses, c: 1 use, b: 2 uses
		if got[0] != "a" || got[1] != "c" || got[2] != "b" {
			t.Errorf("LFU candidates = %v", got)
		}
		l.Remove("a")
		if l.Len() != 2 {
			t.Errorf("Len = %d", l.Len())
		}
	})
}

// Property: after any sequence of miss/hit/evict operations, the per-GPU
// lists and the global index agree, and victim selection frees enough
// space without ever selecting a pinned model.
func TestManagerConsistencyProperty(t *testing.T) {
	modelNames := []string{"a", "b", "c", "d", "e"}
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewManager(PolicyLRU, sizeOf)
		if err != nil {
			return false
		}
		devs := map[string]*fakeDev{}
		for _, id := range []string{"g0", "g1", "g2"} {
			if err := m.RegisterGPU(id); err != nil {
				return false
			}
			devs[id] = newFakeDev(id, 4*gib)
		}
		ids := []string{"g0", "g1", "g2"}
		for _, op := range ops {
			id := ids[int(op)%len(ids)]
			model := modelNames[rng.Intn(len(modelNames))]
			dev := devs[id]
			switch op % 3 {
			case 0: // access: hit or miss-with-eviction
				if m.Cached(id, model) {
					if err := m.OnHit(id, model, 0); err != nil {
						return false
					}
				} else {
					need := sizes[model]
					victims, err := m.Victims(dev, need)
					if errors.Is(err, ErrWontFit) {
						continue
					}
					if err != nil {
						return false
					}
					for _, v := range victims {
						if err := m.OnEvict(id, v, 0); err != nil {
							return false
						}
						delete(dev.resident, v)
					}
					if dev.MemFree() < need {
						return false // victims did not free enough
					}
					if err := m.OnMiss(id, model, 0); err != nil {
						return false
					}
					dev.resident[model] = need
				}
			case 1: // evict something if present
				if m.Cached(id, model) {
					if err := m.OnEvict(id, model, 0); err != nil {
						return false
					}
					delete(dev.resident, model)
				}
			case 2: // toggle pin
				if rng.Intn(2) == 0 && m.Cached(id, model) {
					m.Pin(id, model)
				} else {
					m.Pin(id, "")
				}
			}
			if err := m.CheckConsistency(); err != nil {
				t.Logf("consistency: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEventSubscription(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	for _, id := range []string{"g0", "g1"} {
		if err := m.RegisterGPU(id); err != nil {
			t.Fatal(err)
		}
	}
	var events []Event
	m.Subscribe(func(ev Event) { events = append(events, ev) })
	// Subscribers observe post-transition state.
	m.Subscribe(func(ev Event) {
		cached := m.Cached(ev.GPU, ev.Model)
		if ev.Kind == EventInsert && !cached {
			t.Errorf("insert event for %s/%s observed before index update", ev.GPU, ev.Model)
		}
		if ev.Kind == EventEvict && cached {
			t.Errorf("evict event for %s/%s observed before index update", ev.GPU, ev.Model)
		}
	})

	if err := m.OnMiss("g0", "a", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.OnMiss("g1", "a", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.OnHit("g0", "a", 3); err != nil { // hits emit no event
		t.Fatal(err)
	}
	if err := m.OnEvict("g0", "a", 4); err != nil {
		t.Fatal(err)
	}

	want := []Event{
		{Kind: EventInsert, GPU: "g0", Model: "a", At: 1},
		{Kind: EventInsert, GPU: "g1", Model: "a", At: 2},
		{Kind: EventEvict, GPU: "g0", Model: "a", At: 4},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestGPUsCachingView(t *testing.T) {
	m := newMgr(t, PolicyLRU)
	for _, id := range []string{"g0", "g1", "g2"} {
		if err := m.RegisterGPU(id); err != nil {
			t.Fatal(err)
		}
	}
	// Insert out of registration order; views stay in registration order.
	for i, id := range []string{"g2", "g0", "g1"} {
		if err := m.OnMiss(id, "a", sim.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	view := m.HoldersView("a")
	copied := m.GPUsCaching("a")
	wantOrder := []string{"g0", "g1", "g2"}
	for i, id := range wantOrder {
		if m.IDOf(view[i]) != id || copied[i] != id {
			t.Fatalf("holder order: view=%v copy=%v, want %v", view, copied, wantOrder)
		}
	}
	if m.HoldersView("nope") != nil {
		t.Error("unknown model should have nil view")
	}
	// Ordinals round-trip through the string boundary.
	for _, id := range wantOrder {
		o, ok := m.Ord(id)
		if !ok || m.IDOf(o) != id {
			t.Errorf("ord round-trip failed for %s", id)
		}
		if !m.CachedOrd(o, "a") {
			t.Errorf("CachedOrd(%s, a) = false", id)
		}
	}
	if m.OrdBound() != 3 {
		t.Errorf("OrdBound = %d", m.OrdBound())
	}
	// The copy is detached from the index; the view reflects mutations.
	if err := m.OnEvict("g1", "a", 5); err != nil {
		t.Fatal(err)
	}
	got := m.HoldersView("a")
	if len(got) != 2 || m.IDOf(got[0]) != "g0" || m.IDOf(got[1]) != "g2" {
		t.Errorf("view after evict = %v", got)
	}
	if copied[1] != "g1" {
		t.Errorf("copy mutated by evict: %v", copied)
	}
}

func TestIndexConsistencyProperty(t *testing.T) {
	m := newMgr(t, PolicyLFU)
	gpus := []string{"g0", "g1", "g2", "g3"}
	for _, id := range gpus {
		if err := m.RegisterGPU(id); err != nil {
			t.Fatal(err)
		}
	}
	mdls := []string{"a", "b", "c", "d", "e"}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 2000; step++ {
		g := gpus[rng.Intn(len(gpus))]
		mdl := mdls[rng.Intn(len(mdls))]
		if m.Cached(g, mdl) {
			if rng.Intn(2) == 0 {
				if err := m.OnHit(g, mdl, sim.Time(step)); err != nil {
					t.Fatal(err)
				}
			} else if err := m.OnEvict(g, mdl, sim.Time(step)); err != nil {
				t.Fatal(err)
			}
		} else if err := m.OnMiss(g, mdl, sim.Time(step)); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
