// Residency index and event stream. The Manager emits an Event for every
// cache state transition (a model becoming resident on a miss, a model
// being evicted); the Index consumes that stream to maintain the global
// model → {GPUs caching it} map the Scheduler's hot path queries. Keeping
// the index event-driven means every lookup the scheduler performs per
// decision — Cached, GPUsCaching — is O(1) in the cluster size instead of
// a scan, and external components (datastores, dashboards) can subscribe
// to the same stream to maintain their own derived views.
package cache

import (
	"fmt"

	"gpufaas/internal/ordset"
	"gpufaas/internal/sim"
)

// EventKind classifies a cache state transition.
type EventKind int

// Cache transition kinds.
const (
	// EventInsert: a miss was resolved and the model became resident.
	EventInsert EventKind = iota
	// EventEvict: the model was evicted (its GPU process killed).
	EventEvict
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventEvict:
		return "evict"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one cache residency transition, emitted by the Manager after
// its own state (including the Index) reflects the transition.
type Event struct {
	Kind  EventKind
	GPU   string
	Model string
	At    sim.Time
}

// Index is the incremental model → resident-GPUs map. It is updated from
// the Manager's insert/evict events and keeps, per model, the holder set
// (for O(1) Cached checks) plus the holders ordered by GPU registration
// index (for deterministic, allocation-free GPUsCaching lookups bounded
// by the number of holders rather than the cluster size).
type Index struct {
	ord     map[string]int // gpuID -> registration index
	nextOrd int            // monotone, survives removals
	where   map[string]map[string]bool
	holders map[string][]string // model -> GPUs in registration order
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		ord:     make(map[string]int),
		where:   make(map[string]map[string]bool),
		holders: make(map[string][]string),
	}
}

// AddGPU registers a GPU; registration order defines the deterministic
// holder order. Duplicate registrations are ignored. Registration indices
// are monotone and never reused, so GPUs added after a removal
// (elastic membership) still sort after every earlier registration.
func (ix *Index) AddGPU(gpuID string) {
	if _, ok := ix.ord[gpuID]; ok {
		return
	}
	ix.ord[gpuID] = ix.nextOrd
	ix.nextOrd++
}

// RemoveGPU deregisters a GPU. The caller must have evicted all of the
// GPU's residents first (the Manager enforces this); removing a GPU that
// still appears in a holder list is an error.
func (ix *Index) RemoveGPU(gpuID string) error {
	if _, ok := ix.ord[gpuID]; !ok {
		return nil
	}
	for model, set := range ix.where {
		if set[gpuID] {
			return fmt.Errorf("cache: removing GPU %s still caching %s", gpuID, model)
		}
	}
	delete(ix.ord, gpuID)
	return nil
}

// Apply folds one residency transition into the index. Unknown GPUs and
// redundant transitions are ignored (the Manager validates before
// emitting).
func (ix *Index) Apply(ev Event) {
	if _, ok := ix.ord[ev.GPU]; !ok {
		return
	}
	switch ev.Kind {
	case EventInsert:
		set, ok := ix.where[ev.Model]
		if !ok {
			set = make(map[string]bool)
			ix.where[ev.Model] = set
		}
		if set[ev.GPU] {
			return
		}
		set[ev.GPU] = true
		ix.holders[ev.Model] = ordset.Insert(ix.holders[ev.Model], ix.ord, ev.GPU)
	case EventEvict:
		set, ok := ix.where[ev.Model]
		if !ok || !set[ev.GPU] {
			return
		}
		delete(set, ev.GPU)
		if len(set) == 0 {
			delete(ix.where, ev.Model)
		}
		hs := ordset.Remove(ix.holders[ev.Model], ix.ord, ev.GPU)
		if len(hs) == 0 {
			delete(ix.holders, ev.Model)
		} else {
			ix.holders[ev.Model] = hs
		}
	}
}

// Cached reports whether the model is resident on the GPU.
func (ix *Index) Cached(gpuID, model string) bool {
	set, ok := ix.where[model]
	return ok && set[gpuID]
}

// NumCaching returns how many GPUs cache the model.
func (ix *Index) NumCaching(model string) int { return len(ix.where[model]) }

// Holders returns the GPUs caching the model in registration order. The
// returned slice is the index's internal storage: callers must treat it
// as read-only and must not retain it across the next Apply. It is nil
// when the model is resident nowhere.
func (ix *Index) Holders(model string) []string { return ix.holders[model] }

// Models returns the number of distinct models resident anywhere.
func (ix *Index) Models() int { return len(ix.where) }

// CheckConsistency verifies the holder set and the ordered holder list
// agree for every model, and that holder lists are sorted by registration
// index.
func (ix *Index) CheckConsistency() error {
	if len(ix.where) != len(ix.holders) {
		return fmt.Errorf("cache: index has %d models in set, %d in holder lists", len(ix.where), len(ix.holders))
	}
	for model, set := range ix.where {
		hs := ix.holders[model]
		if len(hs) != len(set) {
			return fmt.Errorf("cache: index set/list mismatch for %s", model)
		}
		for i, id := range hs {
			if !set[id] {
				return fmt.Errorf("cache: %s listed on %s but not in its set", model, id)
			}
			if i > 0 && ix.ord[hs[i-1]] >= ix.ord[id] {
				return fmt.Errorf("cache: holder list for %s out of registration order", model)
			}
		}
	}
	return nil
}
