// Residency index and event stream. The Manager emits an Event for every
// cache state transition (a model becoming resident on a miss, a model
// being evicted); the Index consumes that stream to maintain the global
// model → {GPUs caching it} map the Scheduler's hot path queries. Keeping
// the index event-driven means every lookup the scheduler performs per
// decision — Cached, holder lists — is O(holders) instead of a cluster
// scan, and external components (datastores, dashboards) can subscribe to
// the same stream to maintain their own derived views.
//
// The Index is also the system's interning authority for GPU identifiers:
// registration assigns each GPU a dense, monotone ordset.Ord, and the
// holder lists are ascending Ord slices. Hot-path consumers (the
// scheduler, the cluster's idle set) operate on Ords — slice and bitset
// indexing — and only translate back to strings at the dispatch boundary.
package cache

import (
	"fmt"

	"gpufaas/internal/ordset"
	"gpufaas/internal/sim"
)

// Ord is the dense GPU registration ordinal (see ordset.Ord).
type Ord = ordset.Ord

// EventKind classifies a cache state transition.
type EventKind int

// Cache transition kinds.
const (
	// EventInsert: a miss was resolved and the model became resident.
	EventInsert EventKind = iota
	// EventEvict: the model was evicted (its GPU process killed).
	EventEvict
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventEvict:
		return "evict"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one cache residency transition, emitted by the Manager after
// its own state (including the Index) reflects the transition.
type Event struct {
	Kind  EventKind
	GPU   string
	Model string
	At    sim.Time
}

// Index is the incremental model → resident-GPUs map. It is updated from
// the Manager's insert/evict events and keeps, per model, the holders as
// an ascending Ord slice — registration order, so lookups are
// deterministic, allocation-free, and bounded by the number of holders
// rather than the cluster size. Membership tests binary-search the holder
// list: resident sets per model are tiny (duplicates of one model are
// what the paper's Fig. 6 counts), so this beats a per-model hash set on
// both lookup cost and memory.
type Index struct {
	ord map[string]Ord // gpuID -> registration ordinal
	// ids translates a live ordinal back to its GPU ID ("" once
	// removed). Ordinals are monotone and never reused, so len(ids) is
	// the OrdBound: every ordinal ever assigned is < len(ids).
	ids     []string
	holders map[string][]Ord // model -> caching GPUs, ascending Ord
}

// NewIndex creates an empty index.
func NewIndex() *Index {
	return &Index{
		ord:     make(map[string]Ord),
		holders: make(map[string][]Ord),
	}
}

// AddGPU registers a GPU; registration order defines the deterministic
// holder order. Duplicate registrations are ignored. Registration
// ordinals are monotone and never reused, so GPUs added after a removal
// (elastic membership) still sort after every earlier registration.
func (ix *Index) AddGPU(gpuID string) {
	if _, ok := ix.ord[gpuID]; ok {
		return
	}
	ix.ord[gpuID] = Ord(len(ix.ids))
	ix.ids = append(ix.ids, gpuID)
}

// RemoveGPU deregisters a GPU. The caller must have evicted all of the
// GPU's residents first (the Manager enforces this); removing a GPU that
// still appears in a holder list is an error.
func (ix *Index) RemoveGPU(gpuID string) error {
	o, ok := ix.ord[gpuID]
	if !ok {
		return nil
	}
	for model, hs := range ix.holders {
		if ordset.Contains(hs, o) {
			return fmt.Errorf("cache: removing GPU %s still caching %s", gpuID, model)
		}
	}
	delete(ix.ord, gpuID)
	ix.ids[o] = ""
	return nil
}

// Ord resolves a GPU ID to its registration ordinal.
func (ix *Index) Ord(gpuID string) (Ord, bool) {
	o, ok := ix.ord[gpuID]
	return o, ok
}

// IDOf returns the GPU ID for an ordinal ("" if never assigned or
// removed).
func (ix *Index) IDOf(o Ord) string {
	if o < 0 || int(o) >= len(ix.ids) {
		return ""
	}
	return ix.ids[o]
}

// OrdBound returns one past the highest ordinal ever assigned; ordinals
// are dense, so slices indexed by Ord are sized by this bound.
func (ix *Index) OrdBound() Ord { return Ord(len(ix.ids)) }

// Apply folds one residency transition into the index. Unknown GPUs and
// redundant transitions are ignored (the Manager validates before
// emitting).
func (ix *Index) Apply(ev Event) {
	o, ok := ix.ord[ev.GPU]
	if !ok {
		return
	}
	switch ev.Kind {
	case EventInsert:
		ix.holders[ev.Model] = ordset.Insert(ix.holders[ev.Model], o)
	case EventEvict:
		hs := ordset.Remove(ix.holders[ev.Model], o)
		if len(hs) == 0 {
			delete(ix.holders, ev.Model)
		} else {
			ix.holders[ev.Model] = hs
		}
	}
}

// Cached reports whether the model is resident on the GPU.
func (ix *Index) Cached(gpuID, model string) bool {
	o, ok := ix.ord[gpuID]
	return ok && ordset.Contains(ix.holders[model], o)
}

// CachedOrd is Cached for a pre-resolved ordinal (the scheduler's
// per-decision path).
func (ix *Index) CachedOrd(o Ord, model string) bool {
	return ordset.Contains(ix.holders[model], o)
}

// NumCaching returns how many GPUs cache the model.
func (ix *Index) NumCaching(model string) int { return len(ix.holders[model]) }

// Holders returns the ordinals of the GPUs caching the model, ascending
// (= registration order). The returned slice is the index's internal
// storage: callers must treat it as read-only and must not retain it
// across the next Apply. It is nil when the model is resident nowhere.
func (ix *Index) Holders(model string) []Ord { return ix.holders[model] }

// Models returns the number of distinct models resident anywhere.
func (ix *Index) Models() int { return len(ix.holders) }

// CheckConsistency verifies every holder list is strictly ascending and
// every listed ordinal belongs to a live registration.
func (ix *Index) CheckConsistency() error {
	for model, hs := range ix.holders {
		if len(hs) == 0 {
			return fmt.Errorf("cache: empty holder list retained for %s", model)
		}
		for i, o := range hs {
			if i > 0 && hs[i-1] >= o {
				return fmt.Errorf("cache: holder list for %s out of registration order", model)
			}
			id := ix.IDOf(o)
			if id == "" {
				return fmt.Errorf("cache: %s held by dead ordinal %d", model, o)
			}
			if got, ok := ix.ord[id]; !ok || got != o {
				return fmt.Errorf("cache: ordinal %d for %s does not round-trip", o, id)
			}
		}
	}
	return nil
}
