// Package cache implements the paper's global Cache Manager (§III-D). It
// treats the inference models resident in each GPU's memory as cache items,
// maintains one replacement list per GPU (LRU by default, with the
// pluggable alternatives §VI calls out), selects eviction victims to make
// room on a miss, and maintains the global model → {GPUs caching it} index
// the Scheduler consults ("the Cache Manager maintains the lists of GPUs
// where each model is cached", §VI).
//
// The Manager also owns the evaluation metrics that are defined at cache
// granularity: cache miss ratio (Fig. 4b), false-miss ratio (Fig. 5), and
// the time-averaged number of duplicates of tracked hot models (Fig. 6).
package cache

import (
	"container/list"
	"errors"
	"fmt"
	"slices"
	"sort"

	"gpufaas/internal/sim"
	"gpufaas/internal/stats"
)

// ReplacementList orders a single GPU's resident models by eviction
// preference. Implementations are not safe for concurrent use; the Manager
// serializes access.
type ReplacementList interface {
	// Insert adds a model that just became resident.
	Insert(model string)
	// Touch records a use of a resident model.
	Touch(model string)
	// Remove drops a model (evicted or killed).
	Remove(model string)
	// Candidates returns resident models in eviction-preference order
	// (first = evict first).
	Candidates() []string
	// Len returns the number of tracked models.
	Len() int
}

// lruList evicts the least-recently-used model first (the paper's default
// policy).
type lruList struct {
	ll  *list.List // front = most recent
	pos map[string]*list.Element
}

func newLRU() ReplacementList {
	return &lruList{ll: list.New(), pos: make(map[string]*list.Element)}
}

func (l *lruList) Insert(model string) {
	if e, ok := l.pos[model]; ok {
		l.ll.MoveToFront(e)
		return
	}
	l.pos[model] = l.ll.PushFront(model)
}

func (l *lruList) Touch(model string) {
	if e, ok := l.pos[model]; ok {
		l.ll.MoveToFront(e)
	}
}

func (l *lruList) Remove(model string) {
	if e, ok := l.pos[model]; ok {
		l.ll.Remove(e)
		delete(l.pos, model)
	}
}

func (l *lruList) Candidates() []string {
	out := make([]string, 0, l.ll.Len())
	for e := l.ll.Back(); e != nil; e = e.Prev() {
		out = append(out, e.Value.(string))
	}
	return out
}

func (l *lruList) Len() int { return len(l.pos) }

// fifoList evicts in insertion order regardless of use.
type fifoList struct {
	ll  *list.List // front = newest
	pos map[string]*list.Element
}

func newFIFO() ReplacementList {
	return &fifoList{ll: list.New(), pos: make(map[string]*list.Element)}
}

func (l *fifoList) Insert(model string) {
	if _, ok := l.pos[model]; ok {
		return
	}
	l.pos[model] = l.ll.PushFront(model)
}

func (l *fifoList) Touch(string) {}

func (l *fifoList) Remove(model string) {
	if e, ok := l.pos[model]; ok {
		l.ll.Remove(e)
		delete(l.pos, model)
	}
}

func (l *fifoList) Candidates() []string {
	out := make([]string, 0, l.ll.Len())
	for e := l.ll.Back(); e != nil; e = e.Prev() {
		out = append(out, e.Value.(string))
	}
	return out
}

func (l *fifoList) Len() int { return len(l.pos) }

// lfuList evicts the least-frequently-used model first, breaking ties by
// least-recent use.
type lfuList struct {
	count map[string]int64
	last  map[string]int64
	tick  int64
}

func newLFU() ReplacementList {
	return &lfuList{count: make(map[string]int64), last: make(map[string]int64)}
}

func (l *lfuList) Insert(model string) {
	l.tick++
	if _, ok := l.count[model]; !ok {
		l.count[model] = 0
	}
	l.last[model] = l.tick
}

func (l *lfuList) Touch(model string) {
	if _, ok := l.count[model]; !ok {
		return
	}
	l.tick++
	l.count[model]++
	l.last[model] = l.tick
}

func (l *lfuList) Remove(model string) {
	delete(l.count, model)
	delete(l.last, model)
}

func (l *lfuList) Candidates() []string {
	out := make([]string, 0, len(l.count))
	for m := range l.count {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := l.count[out[i]], l.count[out[j]]
		if ci != cj {
			return ci < cj
		}
		return l.last[out[i]] < l.last[out[j]]
	})
	return out
}

func (l *lfuList) Len() int { return len(l.count) }

// Policy names accepted by NewManager.
const (
	PolicyLRU  = "lru"
	PolicyFIFO = "fifo"
	PolicyLFU  = "lfu"
)

// NewReplacementList builds a list for the named policy.
func NewReplacementList(policy string) (ReplacementList, error) {
	switch policy {
	case PolicyLRU, "":
		return newLRU(), nil
	case PolicyFIFO:
		return newFIFO(), nil
	case PolicyLFU:
		return newLFU(), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", policy)
	}
}

// DeviceView is the slice of gpu.Device the Cache Manager needs for victim
// selection; defined here so cache does not import gpu.
type DeviceView interface {
	ID() string
	MemFree() int64
	ResidentSize(model string) (int64, bool)
}

// Errors reported by the Manager.
var (
	ErrUnknownGPU   = errors.New("cache: unknown GPU")
	ErrWontFit      = errors.New("cache: model cannot fit even after evicting all victims")
	ErrNotTracked   = errors.New("cache: model not tracked on GPU")
	ErrAlreadyKnown = errors.New("cache: model already tracked on GPU")
)

// Manager is the global Cache Manager. It is not safe for concurrent use;
// the live path wraps it in the cluster mutex, matching the paper's
// single global component.
type Manager struct {
	policy string
	perGPU map[string]ReplacementList
	gpuIDs []string
	idx    *Index            // model -> resident GPUs, updated from events
	pinned map[string]string // gpuID -> model currently in use (not evictable)
	sizeOf func(model string) (int64, bool)
	miss   stats.Ratio
	falseMiss
	tracked map[string]*stats.TimeWeighted
	subs    []func(Event)
}

type falseMiss struct {
	falseMisses int64
	misses      int64
}

// NewManager creates a Manager using the named replacement policy. sizeOf
// resolves a model's GPU occupancy in bytes (from the model zoo).
func NewManager(policy string, sizeOf func(model string) (int64, bool)) (*Manager, error) {
	if _, err := NewReplacementList(policy); err != nil {
		return nil, err
	}
	if sizeOf == nil {
		return nil, errors.New("cache: nil sizeOf")
	}
	if policy == "" {
		policy = PolicyLRU
	}
	return &Manager{
		policy:  policy,
		perGPU:  make(map[string]ReplacementList),
		idx:     NewIndex(),
		pinned:  make(map[string]string),
		sizeOf:  sizeOf,
		tracked: make(map[string]*stats.TimeWeighted),
	}, nil
}

// Subscribe registers a listener for cache residency events. Listeners
// run synchronously, in subscription order, after the Manager's own state
// (replacement lists and the global index) reflects the transition; they
// must not call back into the Manager.
func (m *Manager) Subscribe(fn func(Event)) {
	if fn != nil {
		m.subs = append(m.subs, fn)
	}
}

// emit folds the transition into the index, refreshes tracked-duplicate
// sampling, and notifies subscribers.
func (m *Manager) emit(ev Event) {
	m.idx.Apply(ev)
	m.sample(ev.Model, ev.At)
	for _, fn := range m.subs {
		fn(ev)
	}
}

// Policy returns the replacement policy name.
func (m *Manager) Policy() string { return m.policy }

// RegisterGPU adds a GPU to the manager. Registration order defines the
// deterministic tie-break order used elsewhere.
func (m *Manager) RegisterGPU(gpuID string) error {
	if _, ok := m.perGPU[gpuID]; ok {
		return fmt.Errorf("cache: GPU %s already registered", gpuID)
	}
	rl, err := NewReplacementList(m.policy)
	if err != nil {
		return err
	}
	m.perGPU[gpuID] = rl
	m.gpuIDs = append(m.gpuIDs, gpuID)
	m.idx.AddGPU(gpuID)
	return nil
}

// UnregisterGPU removes a GPU from the manager (elastic decommission).
// Every resident model must already have been evicted through OnEvict so
// the index, subscribers and derived views saw the departures; a GPU with
// residents cannot be unregistered.
func (m *Manager) UnregisterGPU(gpuID string) error {
	rl, ok := m.perGPU[gpuID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	if rl.Len() != 0 {
		return fmt.Errorf("cache: GPU %s still holds %d residents", gpuID, rl.Len())
	}
	if err := m.idx.RemoveGPU(gpuID); err != nil {
		return err
	}
	delete(m.perGPU, gpuID)
	delete(m.pinned, gpuID)
	if i := slices.Index(m.gpuIDs, gpuID); i >= 0 {
		m.gpuIDs = slices.Delete(m.gpuIDs, i, i+1)
	}
	return nil
}

// GPUs returns the registered GPU IDs in registration order.
func (m *Manager) GPUs() []string {
	out := make([]string, len(m.gpuIDs))
	copy(out, m.gpuIDs)
	return out
}

// Cached reports whether model is resident on gpuID according to the
// manager's view.
func (m *Manager) Cached(gpuID, model string) bool {
	return m.idx.Cached(gpuID, model)
}

// GPUsCaching returns the GPUs currently caching model, in registration
// order (deterministic). This is the §VI index that bounds the scheduler's
// search "by the number of GPUs that have this model cached". The result
// is a fresh slice the caller may keep; hot paths should prefer
// HoldersView.
func (m *Manager) GPUsCaching(model string) []string {
	hs := m.idx.Holders(model)
	if len(hs) == 0 {
		return nil
	}
	out := make([]string, len(hs))
	for i, o := range hs {
		out[i] = m.idx.IDOf(o)
	}
	return out
}

// HoldersView is the allocation-free holder lookup for the scheduler's
// hot path: the index's internal ascending-Ord holder list (registration
// order). Callers must treat it as read-only and must not retain it
// across the next cache mutation.
func (m *Manager) HoldersView(model string) []Ord {
	return m.idx.Holders(model)
}

// Ord resolves a GPU ID to its dense registration ordinal.
func (m *Manager) Ord(gpuID string) (Ord, bool) { return m.idx.Ord(gpuID) }

// IDOf translates a live ordinal back to its GPU ID.
func (m *Manager) IDOf(o Ord) string { return m.idx.IDOf(o) }

// OrdBound returns one past the highest ordinal ever assigned.
func (m *Manager) OrdBound() Ord { return m.idx.OrdBound() }

// CachedOrd is Cached for a pre-resolved ordinal.
func (m *Manager) CachedOrd(o Ord, model string) bool {
	return m.idx.CachedOrd(o, model)
}

// NumCaching returns how many GPUs cache the model (Fig. 6 duplicates).
func (m *Manager) NumCaching(model string) int {
	return m.idx.NumCaching(model)
}

// CachedAnywhere reports whether any GPU caches the model.
func (m *Manager) CachedAnywhere(model string) bool {
	return m.idx.NumCaching(model) > 0
}

// Pin marks the model as in use on the GPU; pinned models are never chosen
// as victims (the GPU would be killing the process serving a live
// request). Unpin with the empty string.
func (m *Manager) Pin(gpuID, model string) {
	if model == "" {
		delete(m.pinned, gpuID)
		return
	}
	m.pinned[gpuID] = model
}

// Victims selects the models to evict from the device, least-preferred
// first according to the GPU's replacement list, so that `need` bytes fit.
// It returns nil (no evictions) when the model already fits. Pinned models
// are skipped. ErrWontFit is returned when even evicting every candidate
// cannot make room.
func (m *Manager) Victims(dev DeviceView, need int64) ([]string, error) {
	rl, ok := m.perGPU[dev.ID()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownGPU, dev.ID())
	}
	free := dev.MemFree()
	if free >= need {
		return nil, nil
	}
	var victims []string
	for _, cand := range rl.Candidates() {
		if m.pinned[dev.ID()] == cand {
			continue
		}
		sz, ok := dev.ResidentSize(cand)
		if !ok {
			// The manager's list drifted from the device; treat as
			// already gone.
			continue
		}
		victims = append(victims, cand)
		free += sz
		if free >= need {
			return victims, nil
		}
	}
	return nil, fmt.Errorf("%w: need %d, reachable %d on %s", ErrWontFit, need, free, dev.ID())
}

// OnHit records a cache hit: the model was resident on the GPU and is
// being reused. It refreshes the replacement list.
func (m *Manager) OnHit(gpuID, model string, now sim.Time) error {
	rl, ok := m.perGPU[gpuID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	if !m.Cached(gpuID, model) {
		return fmt.Errorf("%w: %s on %s", ErrNotTracked, model, gpuID)
	}
	rl.Touch(model)
	m.miss.Observe(false)
	return nil
}

// OnMiss records a cache miss being resolved by loading the model onto the
// GPU. It updates the replacement list, the global index, the miss ratio,
// and the false-miss ratio — a false miss is "a cache miss scenario ...
// where the request is forwarded to a GPU as a cache miss even though the
// requested model is cached on another GPU" (§V-D).
func (m *Manager) OnMiss(gpuID, model string, now sim.Time) error {
	rl, ok := m.perGPU[gpuID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	if m.Cached(gpuID, model) {
		return fmt.Errorf("%w: %s on %s", ErrAlreadyKnown, model, gpuID)
	}
	m.miss.Observe(true)
	m.misses++
	if m.CachedAnywhere(model) {
		m.falseMisses++
	}
	rl.Insert(model)
	m.emit(Event{Kind: EventInsert, GPU: gpuID, Model: model, At: now})
	return nil
}

// OnEvict records that the model was evicted from the GPU (its process
// killed).
func (m *Manager) OnEvict(gpuID, model string, now sim.Time) error {
	rl, ok := m.perGPU[gpuID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	if !m.Cached(gpuID, model) {
		return fmt.Errorf("%w: %s on %s", ErrNotTracked, model, gpuID)
	}
	rl.Remove(model)
	m.emit(Event{Kind: EventEvict, GPU: gpuID, Model: model, At: now})
	return nil
}

// Track starts time-averaged duplicate accounting for the model (used for
// the Fig. 6 "average number of duplicates of the top one model" metric).
func (m *Manager) Track(model string, now sim.Time) {
	tw := &stats.TimeWeighted{}
	tw.Set(tw0(now), float64(m.NumCaching(model)))
	m.tracked[model] = tw
}

func tw0(t sim.Time) float64 { return float64(t) / 1e9 }

func (m *Manager) sample(model string, now sim.Time) {
	if tw, ok := m.tracked[model]; ok {
		tw.Set(tw0(now), float64(m.NumCaching(model)))
	}
}

// TrackedAverage returns the time-averaged duplicate count of a tracked
// model through now; 0 when untracked.
func (m *Manager) TrackedAverage(model string, now sim.Time) float64 {
	tw, ok := m.tracked[model]
	if !ok {
		return 0
	}
	return tw.Average(tw0(now))
}

// Metrics summarizes cache-level evaluation metrics.
type Metrics struct {
	Requests    int64
	Misses      int64
	FalseMisses int64
	// MissRatio is misses / requests (Fig. 4b).
	MissRatio float64
	// FalseMissRatio is false misses / misses (Fig. 5): among the
	// scheduling decisions that caused a load, the fraction for which
	// the model was already cached on some other GPU.
	FalseMissRatio float64
}

// Metrics returns a snapshot of the counters.
func (m *Manager) Metrics() Metrics {
	out := Metrics{
		Requests:    m.miss.Den,
		Misses:      m.miss.Num,
		FalseMisses: m.falseMisses,
		MissRatio:   m.miss.Value(),
	}
	if m.misses > 0 {
		out.FalseMissRatio = float64(m.falseMisses) / float64(m.misses)
	}
	return out
}

// ResidentCount returns how many models the manager believes are resident
// on the GPU.
func (m *Manager) ResidentCount(gpuID string) int {
	rl, ok := m.perGPU[gpuID]
	if !ok {
		return 0
	}
	return rl.Len()
}

// CheckConsistency verifies that the per-GPU lists and the global index
// agree; the property tests call it after every operation.
func (m *Manager) CheckConsistency() error {
	if err := m.idx.CheckConsistency(); err != nil {
		return err
	}
	fromLists := make(map[string]map[string]bool)
	for id, rl := range m.perGPU {
		for _, model := range rl.Candidates() {
			set, ok := fromLists[model]
			if !ok {
				set = make(map[string]bool)
				fromLists[model] = set
			}
			set[id] = true
		}
	}
	if len(fromLists) != m.idx.Models() {
		return fmt.Errorf("cache: index has %d models, lists have %d", m.idx.Models(), len(fromLists))
	}
	for model, lset := range fromLists {
		if m.idx.NumCaching(model) != len(lset) {
			return fmt.Errorf("cache: index/list mismatch for %s", model)
		}
		for id := range lset {
			if !m.idx.Cached(id, model) {
				return fmt.Errorf("cache: %s in %s's list but not indexed", model, id)
			}
		}
	}
	return nil
}
