package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func synthSmall(t *testing.T) *Trace {
	t.Helper()
	cfg := SynthConfig{
		Functions:            500,
		Minutes:              6,
		InvocationsPerMinute: 5000,
		TopShare:             0.56,
		TopCount:             15,
		Seed:                 7,
	}
	tr, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSynthesizeShape(t *testing.T) {
	tr := synthSmall(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	share := tr.TopShare(15)
	if math.Abs(share-0.56) > 0.05 {
		t.Errorf("top-15 share = %.3f, want ~0.56", share)
	}
	// Tail functions must each be small relative to the total.
	totals := tr.FunctionTotals()
	grand := tr.TotalInvocations()
	// identify the 15 largest
	hot := map[int]bool{}
	type kv struct {
		i int
		v int64
	}
	var rs []kv
	for i, v := range totals {
		rs = append(rs, kv{i, v})
	}
	for k := 0; k < 15; k++ {
		best := k
		for j := k + 1; j < len(rs); j++ {
			if rs[j].v > rs[best].v {
				best = j
			}
		}
		rs[k], rs[best] = rs[best], rs[k]
		hot[rs[k].i] = true
	}
	for i, v := range totals {
		if hot[i] {
			continue
		}
		if frac := float64(v) / float64(grand); frac > 0.01 {
			t.Errorf("tail function %d has share %.4f, want < 0.01", i, frac)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := synthSmall(t)
	b := synthSmall(t)
	if a.TotalInvocations() != b.TotalInvocations() {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Counts {
		for m := range a.Counts[i] {
			if a.Counts[i][m] != b.Counts[i][m] {
				t.Fatal("same seed produced different counts")
			}
		}
	}
}

func TestSynthesizeConfigErrors(t *testing.T) {
	bad := []SynthConfig{
		{Functions: 0, Minutes: 1, InvocationsPerMinute: 1, TopCount: 1, TopShare: 0.5},
		{Functions: 10, Minutes: 0, InvocationsPerMinute: 1, TopCount: 1, TopShare: 0.5},
		{Functions: 10, Minutes: 1, InvocationsPerMinute: 0, TopCount: 1, TopShare: 0.5},
		{Functions: 10, Minutes: 1, InvocationsPerMinute: 1, TopCount: 0, TopShare: 0.5},
		{Functions: 10, Minutes: 1, InvocationsPerMinute: 1, TopCount: 20, TopShare: 0.5},
		{Functions: 10, Minutes: 1, InvocationsPerMinute: 1, TopCount: 5, TopShare: 0},
		{Functions: 10, Minutes: 1, InvocationsPerMinute: 1, TopCount: 5, TopShare: 1},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestSynthesizeNoTail(t *testing.T) {
	tr, err := Synthesize(SynthConfig{Functions: 15, Minutes: 2, InvocationsPerMinute: 1000, TopCount: 15, TopShare: 0.56, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalInvocations() == 0 {
		t.Fatal("no invocations generated")
	}
}

func TestTopN(t *testing.T) {
	tr := synthSmall(t)
	top := tr.TopN(15)
	if len(top.Functions) != 15 {
		t.Fatalf("TopN kept %d", len(top.Functions))
	}
	totals := top.FunctionTotals()
	for i := 1; i < len(totals); i++ {
		if totals[i] > totals[i-1] {
			t.Fatal("TopN not sorted by popularity")
		}
	}
	// Requesting more than available returns everything.
	if got := tr.TopN(10_000); len(got.Functions) != 500 {
		t.Errorf("overlarge TopN kept %d", len(got.Functions))
	}
}

func TestFirstMinutes(t *testing.T) {
	tr := synthSmall(t)
	f := tr.FirstMinutes(2)
	if f.Minutes != 2 {
		t.Fatalf("Minutes = %d", f.Minutes)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.FirstMinutes(99); got.Minutes != 6 {
		t.Errorf("clamped FirstMinutes = %d", got.Minutes)
	}
}

func TestNormalizeMinutesExactBudget(t *testing.T) {
	tr := synthSmall(t).TopN(25)
	n := tr.NormalizeMinutes(325)
	for m := 0; m < n.Minutes; m++ {
		sum := 0
		for i := range n.Counts {
			sum += n.Counts[i][m]
		}
		if sum != 325 {
			t.Errorf("minute %d sums to %d, want 325", m, sum)
		}
	}
	// Shares approximately preserved for the hottest function.
	beforeTotals := tr.FunctionTotals()
	afterTotals := n.FunctionTotals()
	before := float64(beforeTotals[0]) / float64(tr.TotalInvocations())
	after := float64(afterTotals[0]) / float64(n.TotalInvocations())
	if math.Abs(before-after) > 0.03 {
		t.Errorf("hot share drifted: %.3f -> %.3f", before, after)
	}
}

func TestNormalizeEmptyMinute(t *testing.T) {
	tr := &Trace{
		Functions: []string{"a", "b"},
		Counts:    [][]int{{0, 3}, {0, 1}},
		Minutes:   2,
	}
	n := tr.NormalizeMinutes(100)
	if n.Counts[0][0] != 0 || n.Counts[1][0] != 0 {
		t.Error("empty minute should stay empty")
	}
	if n.Counts[0][1]+n.Counts[1][1] != 100 {
		t.Error("non-empty minute should sum to budget")
	}
}

// Property: normalization hits the budget exactly for any column.
func TestNormalizeBudgetProperty(t *testing.T) {
	f := func(counts []uint8, budget uint8) bool {
		if len(counts) == 0 || budget == 0 {
			return true
		}
		tr := &Trace{Minutes: 1}
		anyPositive := false
		for i, c := range counts {
			tr.Functions = append(tr.Functions, string(rune('a'+i%26))+string(rune('0'+i%10)))
			tr.Counts = append(tr.Counts, []int{int(c)})
			if c > 0 {
				anyPositive = true
			}
		}
		n := tr.NormalizeMinutes(int(budget))
		sum := 0
		for i := range n.Counts {
			sum += n.Counts[i][0]
		}
		if !anyPositive {
			return sum == 0
		}
		return sum == int(budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvenSizeMapping(t *testing.T) {
	fns := []string{"f0", "f1", "f2", "f3", "f4"}
	models := []string{"m0", "m1", "m2"}
	mm, err := EvenSizeMapping(fns, models)
	if err != nil {
		t.Fatal(err)
	}
	if mm["f0"] != "m0" || mm["f3"] != "m0" || mm["f4"] != "m1" {
		t.Errorf("mapping = %v", mm)
	}
	if _, err := EvenSizeMapping(fns, nil); err == nil {
		t.Error("want error with no models")
	}
}

func TestBuildRequests(t *testing.T) {
	tr := &Trace{
		Functions: []string{"hot", "cold"},
		Counts:    [][]int{{3, 2}, {1, 0}},
		Minutes:   2,
	}
	mm := ModelMapping{"hot": "resnet18", "cold": "vgg19"}
	reqs, err := tr.BuildRequests(mm, 32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 6 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != int64(i) {
			t.Errorf("IDs not sequential: %d at %d", r.ID, i)
		}
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Error("arrivals not sorted")
		}
		if r.BatchSize != 32 {
			t.Error("batch size lost")
		}
		if r.Model != mm[r.Function] {
			t.Error("model mapping broken")
		}
	}
	// Minute boundaries respected: first 4 in minute 0, last 2 in minute 1.
	if reqs[3].Arrival >= time.Minute || reqs[4].Arrival < time.Minute {
		t.Errorf("minute bucketing wrong: %v %v", reqs[3].Arrival, reqs[4].Arrival)
	}
}

func TestBuildRequestsErrors(t *testing.T) {
	tr := &Trace{Functions: []string{"f"}, Counts: [][]int{{1}}, Minutes: 1}
	if _, err := tr.BuildRequests(ModelMapping{}, 32, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for missing mapping")
	}
	if _, err := tr.BuildRequests(ModelMapping{"f": "m"}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("want error for zero batch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := synthSmall(t).TopN(20)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Functions) != 20 || back.Minutes != 6 {
		t.Fatalf("round trip lost shape: %d fns, %d minutes", len(back.Functions), back.Minutes)
	}
	for i := range tr.Counts {
		if back.Functions[i] != tr.Functions[i] {
			t.Fatal("function names lost")
		}
		for m := range tr.Counts[i] {
			if back.Counts[i][m] != tr.Counts[i][m] {
				t.Fatal("counts lost")
			}
		}
	}
}

func TestParseCSVWithExtraColumns(t *testing.T) {
	csv := "HashOwner,HashApp,HashFunction,Trigger,1,2\no1,a1,fX,http,5,7\no2,a2,fY,queue,0,1\n"
	tr, err := ParseCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Minutes != 2 || len(tr.Functions) != 2 {
		t.Fatalf("shape = %d fns %d minutes", len(tr.Functions), tr.Minutes)
	}
	if tr.Functions[0] != "fX" || tr.Counts[0][1] != 7 {
		t.Errorf("parse wrong: %+v", tr)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"NoFunctionCol,foo\nx,y\n",
		"HashFunction\nf1\n",
		"HashFunction,1\nf1,notanumber\n",
		"HashFunction,1\nf1,-3\n",
		"HashFunction,1,2\nf1,5\n",
	}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}

func TestPaperWorkload(t *testing.T) {
	tr := synthSmall(t)
	names := []string{"m0", "m1", "m2", "m3", "m4"}
	reqs, err := PaperWorkload(tr, 6, 25, 325, names, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 6*325 {
		t.Fatalf("got %d requests, want %d", len(reqs), 6*325)
	}
	// Every minute has exactly 325 requests.
	perMinute := map[int]int{}
	for _, r := range reqs {
		perMinute[int(r.Arrival/time.Minute)]++
	}
	for m := 0; m < 6; m++ {
		if perMinute[m] != 325 {
			t.Errorf("minute %d has %d requests", m, perMinute[m])
		}
	}
	// Working set respected.
	fns := map[string]bool{}
	for _, r := range reqs {
		fns[r.Function] = true
	}
	if len(fns) > 25 {
		t.Errorf("working set = %d, want <= 25", len(fns))
	}
	if _, err := PaperWorkload(tr, 6, 0, 325, names, 32, 1); err == nil {
		t.Error("want error for zero working set")
	}
}

func TestPaperWorkloadDeterministic(t *testing.T) {
	tr := synthSmall(t)
	names := []string{"m0", "m1"}
	a, err := PaperWorkload(tr, 3, 15, 100, names, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperWorkload(tr, 3, 15, 100, names, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := &Trace{Functions: []string{"a"}, Counts: [][]int{{1}, {2}}, Minutes: 1}
	if bad.Validate() == nil {
		t.Error("row/function mismatch should fail")
	}
	bad2 := &Trace{Functions: []string{"a"}, Counts: [][]int{{1, 2}}, Minutes: 1}
	if bad2.Validate() == nil {
		t.Error("minute mismatch should fail")
	}
	bad3 := &Trace{Functions: []string{"a"}, Counts: [][]int{{-1}}, Minutes: 1}
	if bad3.Validate() == nil {
		t.Error("negative count should fail")
	}
}
