package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(10, 1)
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatal("weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum = %g", sum)
	}
	// s=0 is uniform.
	u := ZipfWeights(4, 0)
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("uniform weights = %v", u)
		}
	}
}

func TestWorkloadZipfSMatchesPaperStatistic(t *testing.T) {
	// With the calibrated exponent, the top 15 of a 35-function working
	// set must carry approximately the paper's 56% of invocations.
	w := ZipfWeights(35, WorkloadZipfS)
	top := 0.0
	for _, v := range w[:15] {
		top += v
	}
	if top < 0.53 || top > 0.61 {
		t.Errorf("top-15 share = %.3f, want ~0.56", top)
	}
}

func TestRedistributeMinutes(t *testing.T) {
	tr := &Trace{
		Functions: []string{"f0", "f1", "f2"},
		Counts:    [][]int{{100, 100}, {10, 10}, {1, 1}},
		Minutes:   2,
	}
	out := tr.RedistributeMinutes(325, WorkloadZipfS)
	for m := 0; m < 2; m++ {
		sum := 0
		for i := range out.Counts {
			sum += out.Counts[i][m]
		}
		if sum != 325 {
			t.Errorf("minute %d sums to %d", m, sum)
		}
	}
	// Rank order respected: f0 >= f1 >= f2.
	if out.Counts[0][0] < out.Counts[1][0] || out.Counts[1][0] < out.Counts[2][0] {
		t.Errorf("rank order broken: %v %v %v", out.Counts[0][0], out.Counts[1][0], out.Counts[2][0])
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeEmptyTrace(t *testing.T) {
	tr := &Trace{Minutes: 3}
	out := tr.RedistributeMinutes(100, 0.4)
	if len(out.Counts) != 0 || out.Minutes != 3 {
		t.Errorf("empty redistribution = %+v", out)
	}
}

// Property: redistribution hits the budget exactly for any function count
// and budget, with any skew.
func TestRedistributeBudgetProperty(t *testing.T) {
	f := func(nFuncs, budget uint8, skew uint8) bool {
		n := int(nFuncs)%40 + 1
		tr := &Trace{Minutes: 1}
		for i := 0; i < n; i++ {
			tr.Functions = append(tr.Functions, "f")
			tr.Counts = append(tr.Counts, []int{1})
		}
		s := float64(skew) / 64.0 // 0..4
		out := tr.RedistributeMinutes(int(budget), s)
		sum := 0
		for i := range out.Counts {
			sum += out.Counts[i][0]
		}
		return sum == int(budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
