package trace

import (
	"math/rand"
	"testing"
	"time"
)

// buildRequestsOracle is a verbatim copy of the pre-stream BuildRequests
// implementation (materialize every minute into one slice). It is the
// oracle TestStreamMatchesBuildRequests compares against, so the
// iterator refactor cannot silently drift the workload construction.
func buildRequestsOracle(t *Trace, mapping ModelMapping, batch int, rng *rand.Rand) []Request {
	var reqs []Request
	var id int64
	for m := 0; m < t.Minutes; m++ {
		var minuteFns []string
		for i, row := range t.Counts {
			for k := 0; k < row[m]; k++ {
				minuteFns = append(minuteFns, t.Functions[i])
			}
		}
		rng.Shuffle(len(minuteFns), func(a, b int) {
			minuteFns[a], minuteFns[b] = minuteFns[b], minuteFns[a]
		})
		n := len(minuteFns)
		for k, fn := range minuteFns {
			offset := time.Duration(float64(time.Minute) * float64(k) / float64(max(n, 1)))
			reqs = append(reqs, Request{
				ID:        id,
				Function:  fn,
				Model:     mapping[fn],
				Arrival:   time.Duration(m)*time.Minute + offset,
				BatchSize: batch,
			})
			id++
		}
	}
	return reqs
}

func streamWorkload(t *testing.T, seed int64) (*Trace, ModelMapping) {
	t.Helper()
	tr, err := Synthesize(SynthConfig{
		Functions: 200, Minutes: 5, InvocationsPerMinute: 400,
		TopShare: 0.56, TopCount: 15, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := tr.TopN(20).NormalizeMinutes(120)
	mapping, err := EvenSizeMapping(w.Functions, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	return w, mapping
}

// TestStreamMatchesBuildRequests is the streaming≡materialized property
// test: for identical seeds the ArrivalStream must yield exactly the
// oracle's request sequence, at every chunk size (including chunks that
// split minutes and the whole-minute default), and BuildRequests (now a
// Stream consumer itself) must agree too.
func TestStreamMatchesBuildRequests(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		w, mapping := streamWorkload(t, seed)
		want := buildRequestsOracle(w, mapping, 32, rand.New(rand.NewSource(seed)))

		got, err := w.BuildRequests(mapping, 32, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: BuildRequests yielded %d requests, oracle %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: BuildRequests[%d] = %+v, oracle %+v", seed, i, got[i], want[i])
			}
		}

		for _, chunk := range []int{1, 7, 97, 1 << 20, 0} {
			s, err := w.Stream(mapping, 32, rand.New(rand.NewSource(seed)), chunk)
			if err != nil {
				t.Fatal(err)
			}
			if s.Total() != int64(len(want)) {
				t.Fatalf("seed %d chunk %d: Total = %d, want %d", seed, chunk, s.Total(), len(want))
			}
			i := 0
			for {
				b, ok := s.Next()
				if !ok {
					break
				}
				if len(b) == 0 {
					t.Fatalf("seed %d chunk %d: empty non-final batch at request %d", seed, chunk, i)
				}
				if chunk > 0 && len(b) > chunk {
					t.Fatalf("seed %d chunk %d: batch of %d exceeds chunk", seed, chunk, len(b))
				}
				for _, r := range b {
					if i >= len(want) {
						t.Fatalf("seed %d chunk %d: stream yielded more than %d requests", seed, chunk, len(want))
					}
					if r != want[i] {
						t.Fatalf("seed %d chunk %d: stream[%d] = %+v, oracle %+v", seed, chunk, i, r, want[i])
					}
					i++
				}
			}
			if i != len(want) {
				t.Fatalf("seed %d chunk %d: stream yielded %d requests, oracle %d", seed, chunk, i, len(want))
			}
		}
	}
}

// TestStreamArrivalsStrictlyIncrease pins the property the streaming
// harness relies on to keep chunking invisible: arrival timestamps are
// strictly increasing across the whole stream, so no batch boundary can
// split a timestamp tie.
func TestStreamArrivalsStrictlyIncrease(t *testing.T) {
	w, mapping := streamWorkload(t, 9)
	s, err := w.Stream(mapping, 32, rand.New(rand.NewSource(9)), 13)
	if err != nil {
		t.Fatal(err)
	}
	last := time.Duration(-1)
	for {
		b, ok := s.Next()
		if !ok {
			return
		}
		for _, r := range b {
			if r.Arrival <= last {
				t.Fatalf("arrival %v after %v (id %d)", r.Arrival, last, r.ID)
			}
			last = r.Arrival
		}
	}
}

// TestStreamValidation mirrors BuildRequests' error contract.
func TestStreamValidation(t *testing.T) {
	w, mapping := streamWorkload(t, 2)
	if _, err := w.Stream(mapping, 0, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("non-positive batch accepted")
	}
	delete(mapping, w.Functions[3])
	if _, err := w.Stream(mapping, 32, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("incomplete mapping accepted")
	}
	if _, err := w.BuildRequests(mapping, 32, rand.New(rand.NewSource(1))); err == nil {
		t.Error("BuildRequests accepted incomplete mapping")
	}
}
