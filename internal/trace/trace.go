// Package trace models the Microsoft Azure Functions invocation trace used
// in the paper's evaluation (§V-A1, Shahrad et al., ATC'20). It provides:
//
//   - a parser for the published CSV format (one row per function, one
//     column per minute, cell = invocations of that function that minute);
//   - a synthesizer that reproduces the trace's published shape — a highly
//     skewed popularity distribution where the top-15 functions account
//     for 56% of per-minute invocations and every function outside the top
//     15 contributes less than 0.01% each;
//   - the paper's workload-construction pipeline: keep the top-N most
//     frequent functions ("working set"), normalize each minute to a fixed
//     request budget (325 requests for the 12-GPU testbed), map functions
//     onto models, and randomize arrival order within each minute.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Trace holds per-function, per-minute invocation counts.
type Trace struct {
	// Functions[i] is the identifier of row i.
	Functions []string
	// Counts[i][m] is the number of invocations of function i during
	// minute m.
	Counts [][]int
	// Minutes is the number of per-minute columns.
	Minutes int
}

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	if len(t.Functions) != len(t.Counts) {
		return fmt.Errorf("trace: %d functions but %d count rows", len(t.Functions), len(t.Counts))
	}
	for i, row := range t.Counts {
		if len(row) != t.Minutes {
			return fmt.Errorf("trace: row %d has %d minutes, want %d", i, len(row), t.Minutes)
		}
		for m, c := range row {
			if c < 0 {
				return fmt.Errorf("trace: negative count at row %d minute %d", i, m)
			}
		}
	}
	return nil
}

// TotalInvocations returns the sum of all counts.
func (t *Trace) TotalInvocations() int64 {
	var total int64
	for _, row := range t.Counts {
		for _, c := range row {
			total += int64(c)
		}
	}
	return total
}

// FunctionTotals returns per-function invocation sums, index-aligned with
// Functions.
func (t *Trace) FunctionTotals() []int64 {
	out := make([]int64, len(t.Counts))
	for i, row := range t.Counts {
		for _, c := range row {
			out[i] += int64(c)
		}
	}
	return out
}

// TopShare returns the fraction of total invocations contributed by the n
// most-invoked functions. The paper reports TopShare(15) ≈ 0.56 for the
// Azure trace.
func (t *Trace) TopShare(n int) float64 {
	totals := t.FunctionTotals()
	sort.Slice(totals, func(i, j int) bool { return totals[i] > totals[j] })
	var top, all int64
	for i, v := range totals {
		all += v
		if i < n {
			top += v
		}
	}
	if all == 0 {
		return 0
	}
	return float64(top) / float64(all)
}

// TopN returns a trace restricted to the n most-invoked functions — the
// paper's "working set" extraction. Functions are renumbered in descending
// popularity order so index 0 is the hottest function.
func (t *Trace) TopN(n int) *Trace {
	type ranked struct {
		idx   int
		total int64
	}
	totals := t.FunctionTotals()
	rs := make([]ranked, len(totals))
	for i, v := range totals {
		rs[i] = ranked{i, v}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].total > rs[j].total })
	if n > len(rs) {
		n = len(rs)
	}
	out := &Trace{Minutes: t.Minutes}
	for _, r := range rs[:n] {
		out.Functions = append(out.Functions, t.Functions[r.idx])
		row := make([]int, t.Minutes)
		copy(row, t.Counts[r.idx])
		out.Counts = append(out.Counts, row)
	}
	return out
}

// FirstMinutes returns a trace truncated to the first m minutes (the paper
// extracts the first 6 minutes).
func (t *Trace) FirstMinutes(m int) *Trace {
	if m > t.Minutes {
		m = t.Minutes
	}
	out := &Trace{Functions: append([]string(nil), t.Functions...), Minutes: m}
	for _, row := range t.Counts {
		out.Counts = append(out.Counts, append([]int(nil), row[:m]...))
	}
	return out
}

// NormalizeMinutes scales every minute so its column sum equals budget
// requests (the paper normalizes to 325 requests/minute for its 12-GPU
// testbed), preserving each function's within-minute share. Rounding
// residue is assigned to the most popular functions of that minute via
// largest-remainder apportionment, so the column sums are exact.
func (t *Trace) NormalizeMinutes(budget int) *Trace {
	out := &Trace{Functions: append([]string(nil), t.Functions...), Minutes: t.Minutes}
	out.Counts = make([][]int, len(t.Counts))
	for i := range out.Counts {
		out.Counts[i] = make([]int, t.Minutes)
	}
	for m := 0; m < t.Minutes; m++ {
		var colSum int64
		for i := range t.Counts {
			colSum += int64(t.Counts[i][m])
		}
		if colSum == 0 {
			continue
		}
		type frac struct {
			idx  int
			rem  float64
			base int
		}
		fracs := make([]frac, 0, len(t.Counts))
		assigned := 0
		for i := range t.Counts {
			exact := float64(t.Counts[i][m]) * float64(budget) / float64(colSum)
			base := int(math.Floor(exact))
			assigned += base
			fracs = append(fracs, frac{idx: i, rem: exact - float64(base), base: base})
		}
		sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
		left := budget - assigned
		for k := range fracs {
			n := fracs[k].base
			if k < left {
				n++
			}
			out.Counts[fracs[k].idx][m] = n
		}
	}
	return out
}

// ZipfWeights returns normalized rank weights w_r ∝ (r+1)^-s for r in
// [0, n). s = 0 is uniform; larger s is more skewed.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// WorkloadZipfS is the within-working-set skew used when redistributing
// the per-minute request budget across the working set. The paper states
// that the top-15 functions carry 56% of the per-minute invocations; with
// s = 0.4 the top 15 of a 35-function working set receive ≈57% of the
// budget, matching that statistic while leaving the remaining functions
// enough traffic to exert the memory pressure the evaluation observes at
// the larger working sets.
const WorkloadZipfS = 0.4

// RedistributeMinutes reassigns each minute's budget across the trace's
// functions (assumed ordered by descending popularity, as TopN produces)
// according to Zipf rank weights with exponent s, using largest-remainder
// apportionment so each minute sums exactly to budget. This implements the
// paper's workload construction: "we randomly distribute the invocations
// of different functions while maintaining the normalized total
// invocations per minute" (§V-A1).
func (t *Trace) RedistributeMinutes(budget int, s float64) *Trace {
	budgets := make([]int, t.Minutes)
	for m := range budgets {
		budgets[m] = budget
	}
	out, _ := t.RedistributeMinutesBudgets(budgets, s) // lengths match by construction
	return out
}

// RedistributeMinutesBudgets is RedistributeMinutes with a per-minute
// budget vector (len == Minutes), the hook through which arrival shapes
// (diurnal, burst) reach the workload: minute m's column sums to
// budgets[m] exactly. A budget vector of the wrong length is an error,
// not an empty trace.
func (t *Trace) RedistributeMinutesBudgets(budgets []int, s float64) (*Trace, error) {
	if len(budgets) != t.Minutes {
		return nil, fmt.Errorf("trace: %d budgets for %d minutes", len(budgets), t.Minutes)
	}
	out := &Trace{Functions: append([]string(nil), t.Functions...), Minutes: t.Minutes}
	out.Counts = make([][]int, len(t.Counts))
	for i := range out.Counts {
		out.Counts[i] = make([]int, t.Minutes)
	}
	if len(t.Counts) == 0 {
		return out, nil
	}
	weights := ZipfWeights(len(t.Counts), s)
	for m := 0; m < t.Minutes; m++ {
		budget := budgets[m]
		type frac struct {
			idx  int
			rem  float64
			base int
		}
		fracs := make([]frac, 0, len(t.Counts))
		assigned := 0
		for i := range t.Counts {
			exact := weights[i] * float64(budget)
			base := int(math.Floor(exact))
			assigned += base
			fracs = append(fracs, frac{idx: i, rem: exact - float64(base), base: base})
		}
		sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
		left := budget - assigned
		for k := range fracs {
			n := fracs[k].base
			if k < left {
				n++
			}
			out.Counts[fracs[k].idx][m] = n
		}
	}
	return out, nil
}

// Request is one function invocation materialized from the trace.
type Request struct {
	// ID is a unique sequence number in arrival order.
	ID int64
	// Function is the trace function identifier.
	Function string
	// Model is the inference model the function uses.
	Model string
	// Arrival is the offset from the start of the workload.
	Arrival time.Duration
	// BatchSize is the inference batch size (the evaluation fixes 32).
	BatchSize int
	// Tenant optionally identifies the owning tenant (multi-tenancy
	// extension, §VI); empty for the paper's single-tenant evaluation.
	Tenant string
}

// ModelMapping assigns models to trace functions. The paper maps "each
// unique function in the trace to a unique model in Table I and ensure[s]
// models with different sizes are distributed evenly in the workload".
type ModelMapping map[string]string

// EvenSizeMapping maps functions (in descending popularity order) onto the
// given models such that model sizes are distributed evenly across the
// popularity ranks: models are taken in size order and dealt round-robin,
// wrapping when the working set exceeds the model count.
func EvenSizeMapping(functions []string, modelNames []string) (ModelMapping, error) {
	if len(modelNames) == 0 {
		return nil, fmt.Errorf("trace: no models to map onto")
	}
	mm := make(ModelMapping, len(functions))
	for i, f := range functions {
		mm[f] = modelNames[i%len(modelNames)]
	}
	return mm, nil
}

// BuildRequests expands a trace into a time-ordered request stream.
// Within each minute, invocations of the different functions are shuffled
// uniformly and assigned arrival offsets spread evenly across the minute,
// matching the paper's "randomly distribute the invocations of different
// functions while maintaining the normalized total invocations per minute".
// The rng makes the workload reproducible. It is the materialized form of
// Stream — workloads too large to hold in memory pull batches from an
// ArrivalStream instead (TestStreamMatchesBuildRequests pins that the
// sequences are identical).
func (t *Trace) BuildRequests(mapping ModelMapping, batch int, rng *rand.Rand) ([]Request, error) {
	s, err := t.Stream(mapping, batch, rng, 0)
	if err != nil {
		return nil, err
	}
	var reqs []Request
	if s.Total() > 0 {
		reqs = make([]Request, 0, s.Total())
	}
	for {
		b, ok := s.Next()
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, b...)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Shape kinds accepted by Shape.Kind.
const (
	// ShapeFlat is the paper's stationary load (the default).
	ShapeFlat = "flat"
	// ShapeDiurnal modulates per-minute load sinusoidally — the daily
	// traffic cycle the elasticity experiments scale against.
	ShapeDiurnal = "diurnal"
	// ShapeBurst overlays periodic load spikes on a flat baseline.
	ShapeBurst = "burst"
)

// Shape describes how aggregate load varies across minutes. The zero
// value is flat (every minute identical), which reproduces the paper's
// stationary workload; the diurnal and burst shapes drive the elasticity
// experiments, where a fixed fleet is provisioned for the peak and an
// autoscaled fleet tracks the curve.
type Shape struct {
	// Kind is ShapeFlat, ShapeDiurnal or ShapeBurst ("" = flat).
	Kind string
	// PeriodMinutes is the diurnal full-cycle length (default: the
	// trace length, one full day-cycle per trace).
	PeriodMinutes int
	// Amplitude is the diurnal modulation depth in [0, 1): minute load
	// swings between (1-Amplitude) and (1+Amplitude) of the mean
	// (default 0.6).
	Amplitude float64
	// PhaseMinutes shifts the diurnal curve; with the default phase the
	// trace starts at the trough, so an autoscaled fleet begins small.
	PhaseMinutes int
	// BurstEvery is the burst period in minutes (default 6).
	BurstEvery int
	// BurstLen is how many minutes each burst lasts (default 1).
	BurstLen int
	// BurstFactor multiplies the baseline during a burst (default 3).
	BurstFactor float64
}

// normalized fills in the documented defaults for a trace of the given
// length.
func (s Shape) normalized(minutes int) (Shape, error) {
	switch s.Kind {
	case "", ShapeFlat:
		s.Kind = ShapeFlat
	case ShapeDiurnal:
		if s.PeriodMinutes <= 0 {
			s.PeriodMinutes = minutes
		}
		if s.Amplitude == 0 {
			s.Amplitude = 0.6
		}
		if s.Amplitude < 0 || s.Amplitude >= 1 {
			return s, fmt.Errorf("trace: diurnal amplitude %g outside [0,1)", s.Amplitude)
		}
	case ShapeBurst:
		if s.BurstEvery <= 0 {
			s.BurstEvery = 6
		}
		if s.BurstLen <= 0 {
			s.BurstLen = 1
		}
		if s.BurstLen > s.BurstEvery {
			return s, fmt.Errorf("trace: burst length %d exceeds period %d", s.BurstLen, s.BurstEvery)
		}
		if s.BurstFactor == 0 {
			s.BurstFactor = 3
		}
		if s.BurstFactor < 1 {
			return s, fmt.Errorf("trace: burst factor %g < 1", s.BurstFactor)
		}
	default:
		return s, fmt.Errorf("trace: unknown shape %q", s.Kind)
	}
	return s, nil
}

// Factor returns minute m's load multiplier (flat = 1). Diurnal minutes
// follow 1 + A*sin(2π(m+phase)/period - π/2) so minute 0 sits at the
// trough; burst minutes m with (m mod BurstEvery) < BurstLen carry
// BurstFactor.
func (s Shape) Factor(m int) float64 {
	switch s.Kind {
	case ShapeDiurnal:
		if s.PeriodMinutes <= 0 {
			return 1
		}
		phase := 2*math.Pi*float64(m+s.PhaseMinutes)/float64(s.PeriodMinutes) - math.Pi/2
		return 1 + s.Amplitude*math.Sin(phase)
	case ShapeBurst:
		if s.BurstEvery > 0 && m%s.BurstEvery < s.BurstLen {
			return s.BurstFactor
		}
		return 1
	default:
		return 1
	}
}

// Budgets expands the shape into per-minute request budgets around the
// mean rpm, for RedistributeMinutesBudgets. Every minute gets at least
// one request so arrival streams never go fully silent.
func (s Shape) Budgets(minutes, rpm int) ([]int, error) {
	if minutes <= 0 || rpm <= 0 {
		return nil, fmt.Errorf("trace: invalid shape budget %d minutes x %d rpm", minutes, rpm)
	}
	ns, err := s.normalized(minutes)
	if err != nil {
		return nil, err
	}
	out := make([]int, minutes)
	for m := 0; m < minutes; m++ {
		b := int(math.Round(float64(rpm) * ns.Factor(m)))
		if b < 1 {
			b = 1
		}
		out[m] = b
	}
	return out, nil
}

// SynthConfig controls the Azure-shaped synthesizer.
type SynthConfig struct {
	// Functions is the total number of unique functions (the real trace
	// has 46,413).
	Functions int
	// Minutes is the number of per-minute columns to generate.
	Minutes int
	// InvocationsPerMinute is the mean column sum before normalization.
	InvocationsPerMinute int
	// TopShare is the fraction of invocations the TopCount hottest
	// functions receive (paper: 0.56 for the top 15).
	TopShare float64
	// TopCount is the size of the hot set (paper: 15).
	TopCount int
	// Seed makes generation reproducible.
	Seed int64
	// Shape modulates per-minute aggregate load (zero value = flat,
	// the paper's stationary workload).
	Shape Shape
}

// DefaultSynthConfig mirrors the published Azure trace statistics scaled
// to the paper's 6-minute evaluation window.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Functions:            46413,
		Minutes:              6,
		InvocationsPerMinute: 40000,
		TopShare:             0.56,
		TopCount:             15,
		Seed:                 1,
	}
}

// Synthesize builds a trace matching cfg: a Zipf-like popularity curve over
// the hot set scaled so it receives exactly TopShare of the mass, with the
// remainder spread across the long tail so that each tail function stays
// under 0.01% of per-minute invocations, as the paper describes. Counts
// vary Poisson-like across minutes.
func Synthesize(cfg SynthConfig) (*Trace, error) {
	if cfg.Functions <= 0 || cfg.Minutes <= 0 || cfg.InvocationsPerMinute <= 0 {
		return nil, fmt.Errorf("trace: invalid synth config %+v", cfg)
	}
	if cfg.TopCount <= 0 || cfg.TopCount > cfg.Functions {
		return nil, fmt.Errorf("trace: invalid TopCount %d", cfg.TopCount)
	}
	if cfg.TopShare <= 0 || cfg.TopShare >= 1 {
		return nil, fmt.Errorf("trace: TopShare must be in (0,1), got %g", cfg.TopShare)
	}
	shape, err := cfg.Shape.normalized(cfg.Minutes)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Popularity weights: Zipf(s=1) within the hot set, scaled to
	// TopShare; uniform-ish tail with mild Zipf decay for the rest.
	weights := make([]float64, cfg.Functions)
	var hotRaw float64
	for i := 0; i < cfg.TopCount; i++ {
		w := 1 / float64(i+1)
		weights[i] = w
		hotRaw += w
	}
	for i := 0; i < cfg.TopCount; i++ {
		weights[i] = weights[i] / hotRaw * cfg.TopShare
	}
	tail := cfg.Functions - cfg.TopCount
	if tail > 0 {
		// Near-uniform tail with a gentle linear decay (1.5x to 0.5x of
		// the mean): the paper reports every tail function individually
		// contributes <0.01% of invocations, i.e. the tail is flat.
		var tailRaw float64
		for i := 0; i < tail; i++ {
			w := 1.5 - float64(i)/float64(tail)
			weights[cfg.TopCount+i] = w
			tailRaw += w
		}
		for i := 0; i < tail; i++ {
			weights[cfg.TopCount+i] = weights[cfg.TopCount+i] / tailRaw * (1 - cfg.TopShare)
		}
	} else {
		// No tail: renormalize the hot set to 1.
		for i := range weights {
			weights[i] /= cfg.TopShare
		}
	}

	t := &Trace{Minutes: cfg.Minutes}
	t.Functions = make([]string, cfg.Functions)
	t.Counts = make([][]int, cfg.Functions)
	for i := 0; i < cfg.Functions; i++ {
		t.Functions[i] = fmt.Sprintf("func-%05d", i)
		t.Counts[i] = make([]int, cfg.Minutes)
	}
	for m := 0; m < cfg.Minutes; m++ {
		factor := shape.Factor(m)
		for i := 0; i < cfg.Functions; i++ {
			mean := weights[i] * float64(cfg.InvocationsPerMinute) * factor
			t.Counts[i][m] = poisson(rng, mean)
		}
	}
	return t, nil
}

// poisson draws a Poisson variate; for large means it falls back to a
// normal approximation to stay O(1).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// ParseCSV reads the Azure trace CSV format: a header row, then one row per
// function: "HashFunction,1,2,...,1440" where numbered columns hold
// per-minute invocation counts. Columns other than the function hash and
// minute counts (e.g. HashOwner, HashApp, Trigger in the published
// dataset) are skipped by name.
func ParseCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	fnCol := -1
	minuteCols := make([]int, 0, len(header))
	for i, h := range header {
		h = strings.TrimSpace(h)
		if _, err := strconv.Atoi(h); err == nil {
			minuteCols = append(minuteCols, i)
			continue
		}
		if strings.EqualFold(h, "HashFunction") || strings.EqualFold(h, "Function") {
			fnCol = i
		}
	}
	if fnCol < 0 {
		return nil, fmt.Errorf("trace: CSV header lacks a HashFunction column")
	}
	if len(minuteCols) == 0 {
		return nil, fmt.Errorf("trace: CSV header lacks minute columns")
	}
	t := &Trace{Minutes: len(minuteCols)}
	line := 1
	for sc.Scan() {
		line++
		row := strings.Split(sc.Text(), ",")
		if len(row) != len(header) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(row), len(header))
		}
		t.Functions = append(t.Functions, strings.TrimSpace(row[fnCol]))
		counts := make([]int, len(minuteCols))
		for k, col := range minuteCols {
			v, err := strconv.Atoi(strings.TrimSpace(row[col]))
			if err != nil {
				return nil, fmt.Errorf("trace: line %d col %d: %v", line, col, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: line %d col %d: negative count", line, col)
			}
			counts[k] = v
		}
		t.Counts = append(t.Counts, counts)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, t.Validate()
}

// WriteCSV emits the trace in the Azure CSV format.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("HashFunction"); err != nil {
		return err
	}
	for m := 1; m <= t.Minutes; m++ {
		fmt.Fprintf(bw, ",%d", m)
	}
	bw.WriteByte('\n')
	for i, fn := range t.Functions {
		bw.WriteString(fn)
		for _, c := range t.Counts[i] {
			fmt.Fprintf(bw, ",%d", c)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// PaperWorkload builds the exact workload of §V-A1: synthesize (or accept)
// an Azure-shaped trace, truncate to the first `minutes` minutes, restrict
// to the top `workingSet` functions, normalize each minute to
// `requestsPerMinute`, map onto the model names evenly by size, and expand
// to a shuffled request stream.
func PaperWorkload(t *Trace, minutes, workingSet, requestsPerMinute int, modelNames []string, batch int, seed int64) ([]Request, error) {
	if workingSet <= 0 {
		return nil, fmt.Errorf("trace: non-positive working set %d", workingSet)
	}
	w := t.FirstMinutes(minutes).TopN(workingSet).NormalizeMinutes(requestsPerMinute)
	mapping, err := EvenSizeMapping(w.Functions, modelNames)
	if err != nil {
		return nil, err
	}
	return w.BuildRequests(mapping, batch, rand.New(rand.NewSource(seed)))
}
