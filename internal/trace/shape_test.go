package trace

import (
	"math"
	"testing"
)

func TestShapeBudgetsFlat(t *testing.T) {
	b, err := (Shape{}).Budgets(6, 325)
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range b {
		if v != 325 {
			t.Errorf("minute %d budget = %d, want 325", m, v)
		}
	}
	if _, err := (Shape{Kind: "bogus"}).Budgets(6, 325); err == nil {
		t.Error("unknown shape should fail")
	}
	if _, err := (Shape{}).Budgets(0, 325); err == nil {
		t.Error("zero minutes should fail")
	}
}

func TestShapeBudgetsDiurnal(t *testing.T) {
	sh := Shape{Kind: ShapeDiurnal, Amplitude: 0.6}
	b, err := sh.Budgets(12, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Minute 0 is the trough (1-A), the half-period point the peak (1+A).
	if b[0] >= b[6] {
		t.Errorf("trough %d not below peak %d", b[0], b[6])
	}
	if want := int(math.Round(300 * 0.4)); b[0] != want {
		t.Errorf("trough = %d, want %d", b[0], want)
	}
	if want := int(math.Round(300 * 1.6)); b[6] != want {
		t.Errorf("peak = %d, want %d", b[6], want)
	}
	// Mean stays near rpm: the sine integrates to zero over a period.
	sum := 0
	for _, v := range b {
		sum += v
	}
	if mean := float64(sum) / 12; mean < 290 || mean > 310 {
		t.Errorf("mean budget = %g, want ~300", mean)
	}
	if _, err := (Shape{Kind: ShapeDiurnal, Amplitude: 1.5}).Budgets(6, 100); err == nil {
		t.Error("amplitude >= 1 should fail")
	}
}

func TestShapeBudgetsBurst(t *testing.T) {
	sh := Shape{Kind: ShapeBurst, BurstEvery: 4, BurstLen: 1, BurstFactor: 3}
	b, err := sh.Budgets(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range b {
		want := 100
		if m%4 == 0 {
			want = 300
		}
		if v != want {
			t.Errorf("minute %d budget = %d, want %d", m, v, want)
		}
	}
	if _, err := (Shape{Kind: ShapeBurst, BurstEvery: 2, BurstLen: 3}).Budgets(6, 100); err == nil {
		t.Error("burst longer than its period should fail")
	}
	if _, err := (Shape{Kind: ShapeBurst, BurstFactor: 0.5}).Budgets(6, 100); err == nil {
		t.Error("burst factor < 1 should fail")
	}
}

func TestSynthesizeShapedLoad(t *testing.T) {
	base := SynthConfig{
		Functions: 200, Minutes: 12, InvocationsPerMinute: 5000,
		TopShare: 0.56, TopCount: 15, Seed: 7,
	}
	colSums := func(tr *Trace) []int64 {
		out := make([]int64, tr.Minutes)
		for _, row := range tr.Counts {
			for m, c := range row {
				out[m] += int64(c)
			}
		}
		return out
	}

	diurnal := base
	diurnal.Shape = Shape{Kind: ShapeDiurnal, Amplitude: 0.7}
	tr, err := Synthesize(diurnal)
	if err != nil {
		t.Fatal(err)
	}
	s := colSums(tr)
	if float64(s[0]) > 0.6*float64(s[6]) {
		t.Errorf("diurnal trough %d vs peak %d: modulation too weak", s[0], s[6])
	}

	burst := base
	burst.Shape = Shape{Kind: ShapeBurst, BurstEvery: 6, BurstLen: 1, BurstFactor: 4}
	tr, err = Synthesize(burst)
	if err != nil {
		t.Fatal(err)
	}
	s = colSums(tr)
	if float64(s[0]) < 2*float64(s[1]) {
		t.Errorf("burst minute %d vs baseline %d: spike too weak", s[0], s[1])
	}
}

func TestRedistributeMinutesBudgets(t *testing.T) {
	tr := &Trace{
		Functions: []string{"a", "b", "c"},
		Counts:    [][]int{{10, 10}, {5, 5}, {1, 1}},
		Minutes:   2,
	}
	budgets := []int{50, 200}
	out, err := tr.RedistributeMinutesBudgets(budgets, WorkloadZipfS)
	if err != nil {
		t.Fatal(err)
	}
	for m, want := range budgets {
		sum := 0
		for i := range out.Counts {
			sum += out.Counts[i][m]
		}
		if sum != want {
			t.Errorf("minute %d sums to %d, want %d", m, sum, want)
		}
	}
	// A mismatched budget vector is a caller bug: error, not an empty
	// workload.
	if _, err := tr.RedistributeMinutesBudgets([]int{1}, WorkloadZipfS); err == nil {
		t.Error("mismatched budget length should fail")
	}
}
