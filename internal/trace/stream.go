package trace

import (
	"fmt"
	"math/rand"
	"time"
)

// ArrivalStream is the iterator form of BuildRequests: it yields the
// exact same request sequence (same mapping validation, same per-minute
// shuffle, same arrival offsets, same IDs) in chunks, materializing at
// most one trace minute at a time. An hour-long trace at production
// request rates no longer needs its full arrival stream resident before
// the simulation clock starts — the harness pulls batches on demand.
//
// Arrival times are strictly increasing across the whole stream (offsets
// within a minute are distinct by construction and minutes do not
// overlap), so chunk boundaries never split a timestamp tie and the
// yielded sequence is independent of the chunk size.
type ArrivalStream struct {
	t       *Trace
	mapping ModelMapping
	batch   int
	rng     *rand.Rand
	chunk   int

	minute    int
	id        int64
	total     int64
	minuteFns []string  // scratch for one minute's expansion
	buf       []Request // current minute's requests
	bufPos    int
	out       []Request // reusable batch returned by Next
}

// Stream returns an ArrivalStream over the trace. chunk caps the number
// of requests per yielded batch; chunk <= 0 yields one trace minute per
// batch. Batches never span a minute boundary. The mapping must cover
// every trace function (the same validation BuildRequests performs,
// hoisted to construction time).
func (t *Trace) Stream(mapping ModelMapping, batch int, rng *rand.Rand, chunk int) (*ArrivalStream, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("trace: non-positive batch size %d", batch)
	}
	for _, fn := range t.Functions {
		if _, ok := mapping[fn]; !ok {
			return nil, fmt.Errorf("trace: no model mapping for function %q", fn)
		}
	}
	return &ArrivalStream{
		t:       t,
		mapping: mapping,
		batch:   batch,
		rng:     rng,
		chunk:   chunk,
		total:   t.TotalInvocations(),
	}, nil
}

// Total returns the total number of requests the stream will yield.
func (s *ArrivalStream) Total() int64 { return s.total }

// Next returns the next batch of requests in arrival order, or false
// when the stream is exhausted. The returned slice is reused by the next
// call; consumers must copy what they retain.
func (s *ArrivalStream) Next() ([]Request, bool) {
	for s.bufPos >= len(s.buf) {
		if s.minute >= s.t.Minutes {
			return nil, false
		}
		s.fillMinute()
	}
	n := len(s.buf) - s.bufPos
	if s.chunk > 0 && n > s.chunk {
		n = s.chunk
	}
	s.out = append(s.out[:0], s.buf[s.bufPos:s.bufPos+n]...)
	s.bufPos += n
	return s.out, true
}

// fillMinute materializes the next minute into buf — the exact
// per-minute expansion BuildRequests performs: invocations of the
// minute's functions shuffled uniformly and spread evenly across the
// minute.
func (s *ArrivalStream) fillMinute() {
	t, m := s.t, s.minute
	s.minute++
	s.minuteFns = s.minuteFns[:0]
	for i, row := range t.Counts {
		for k := 0; k < row[m]; k++ {
			s.minuteFns = append(s.minuteFns, t.Functions[i])
		}
	}
	s.rng.Shuffle(len(s.minuteFns), func(a, b int) {
		s.minuteFns[a], s.minuteFns[b] = s.minuteFns[b], s.minuteFns[a]
	})
	n := len(s.minuteFns)
	s.buf = s.buf[:0]
	s.bufPos = 0
	for k, fn := range s.minuteFns {
		offset := time.Duration(float64(time.Minute) * float64(k) / float64(max(n, 1)))
		s.buf = append(s.buf, Request{
			ID:        s.id,
			Function:  fn,
			Model:     s.mapping[fn],
			Arrival:   time.Duration(m)*time.Minute + offset,
			BatchSize: s.batch,
		})
		s.id++
	}
}
