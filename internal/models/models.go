// Package models defines the ML model zoo used by the GPU-FaaS
// reproduction. It embeds the paper's Table I — the 22 production CNN
// models with their GPU-memory occupancy, model-upload (PCIe) time, and
// inference latency at batch size 32 — and provides the profile store the
// scheduler consults for finish-time estimation (§IV-A: "The latencies of
// uploading the model and running the inference are collected by profiling
// each unique model on the GPUs in the system").
package models

import (
	"fmt"
	"sort"
	"time"

	"gpufaas/internal/stats"
)

// MB is one mebibyte; model occupancy sizes are expressed in MB as in
// Table I of the paper.
const MB = int64(1) << 20

// Model describes one inference model deployable as a FaaS function.
type Model struct {
	// Name is the unique model identifier (Table I, column 1).
	Name string
	// OccupancyMB is the peak GPU memory occupancy (MB) when the model
	// runs inference with the evaluation batch size of 32. The Cache
	// Manager uses this for replacement decisions because exceeding it
	// would cause a GPU OOM (§V-A1).
	OccupancyMB int64
	// LoadTime is the time to upload the model's parameters over PCIe
	// into GPU memory (Table I "Loading time").
	LoadTime time.Duration
	// InferTime is the measured latency of ONE request carrying the
	// evaluation batch of 32 inputs executing alone on the GPU — one
	// kernel launch, batch occupancy 1 (Table I "Inference time").
	// Coalesced execution of several requests in a single launch costs
	// Profile.InferTimeAt(n, k), which is sub-linear in k because the
	// fixed launch overhead amortizes across members.
	InferTime time.Duration
	// Params is the approximate parameter count, used by the live-mode
	// nn substrate to construct a scaled architecture. Derived, not from
	// the table.
	Params int64
}

// OccupancyBytes returns the model's GPU memory footprint in bytes.
func (m Model) OccupancyBytes() int64 { return m.OccupancyMB * MB }

func ms(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }

// TableI is the paper's Table I verbatim: occupancy size in GPU memory
// (MB), loading time (s) and inference latency (s) at batch size 32,
// ordered by occupancy as in the paper.
var TableI = []Model{
	{Name: "squeezenet1.1", OccupancyMB: 1269, LoadTime: ms(2.41), InferTime: ms(1.28), Params: 1_235_496},
	{Name: "resnet18", OccupancyMB: 1313, LoadTime: ms(2.52), InferTime: ms(1.25), Params: 11_689_512},
	{Name: "resnet34", OccupancyMB: 1357, LoadTime: ms(2.60), InferTime: ms(1.25), Params: 21_797_672},
	{Name: "squeezenet1.0", OccupancyMB: 1435, LoadTime: ms(2.32), InferTime: ms(1.33), Params: 1_248_424},
	{Name: "alexnet", OccupancyMB: 1437, LoadTime: ms(2.81), InferTime: ms(1.25), Params: 61_100_840},
	{Name: "resnext50.32x4d", OccupancyMB: 1555, LoadTime: ms(2.64), InferTime: ms(1.29), Params: 25_028_904},
	{Name: "densenet121", OccupancyMB: 1601, LoadTime: ms(2.49), InferTime: ms(1.28), Params: 7_978_856},
	{Name: "densenet169", OccupancyMB: 1631, LoadTime: ms(2.56), InferTime: ms(1.30), Params: 14_149_480},
	{Name: "densenet201", OccupancyMB: 1665, LoadTime: ms(2.67), InferTime: ms(1.40), Params: 20_013_928},
	{Name: "resnet50", OccupancyMB: 1701, LoadTime: ms(2.67), InferTime: ms(1.28), Params: 25_557_032},
	{Name: "resnet101", OccupancyMB: 1757, LoadTime: ms(2.95), InferTime: ms(1.30), Params: 44_549_160},
	{Name: "resnet152", OccupancyMB: 1827, LoadTime: ms(3.10), InferTime: ms(1.31), Params: 60_192_808},
	{Name: "densenet161", OccupancyMB: 1919, LoadTime: ms(2.75), InferTime: ms(1.32), Params: 28_681_000},
	{Name: "inception.v3", OccupancyMB: 2157, LoadTime: ms(4.42), InferTime: ms(1.63), Params: 27_161_264},
	{Name: "resnext101.32x8d", OccupancyMB: 2191, LoadTime: ms(3.51), InferTime: ms(1.33), Params: 88_791_336},
	{Name: "vgg11", OccupancyMB: 2903, LoadTime: ms(3.94), InferTime: ms(1.29), Params: 132_863_336},
	{Name: "wideresnet502", OccupancyMB: 3611, LoadTime: ms(3.16), InferTime: ms(1.31), Params: 68_883_240},
	{Name: "wideresnet1012", OccupancyMB: 3831, LoadTime: ms(3.91), InferTime: ms(1.32), Params: 126_886_696},
	{Name: "vgg13", OccupancyMB: 3887, LoadTime: ms(3.98), InferTime: ms(1.30), Params: 133_047_848},
	{Name: "vgg16", OccupancyMB: 3907, LoadTime: ms(4.04), InferTime: ms(1.27), Params: 138_357_544},
	{Name: "vgg16.bn", OccupancyMB: 3907, LoadTime: ms(4.03), InferTime: ms(1.26), Params: 138_365_992},
	{Name: "vgg19", OccupancyMB: 3947, LoadTime: ms(4.07), InferTime: ms(1.33), Params: 143_667_240},
}

// EvalBatchSize is the fixed batch size used throughout the paper's
// evaluation (§V-A1).
const EvalBatchSize = 32

// Zoo is an immutable-by-convention registry of models keyed by name.
type Zoo struct {
	byName map[string]Model
	names  []string // insertion order
}

// NewZoo builds a registry from the given models. Duplicate names are an
// error.
func NewZoo(models []Model) (*Zoo, error) {
	z := &Zoo{byName: make(map[string]Model, len(models))}
	for _, m := range models {
		if m.Name == "" {
			return nil, fmt.Errorf("models: model with empty name")
		}
		if _, dup := z.byName[m.Name]; dup {
			return nil, fmt.Errorf("models: duplicate model %q", m.Name)
		}
		if m.OccupancyMB <= 0 || m.LoadTime <= 0 || m.InferTime <= 0 {
			return nil, fmt.Errorf("models: model %q has non-positive profile fields", m.Name)
		}
		z.byName[m.Name] = m
		z.names = append(z.names, m.Name)
	}
	return z, nil
}

// Default returns the Table I zoo. It panics only on programmer error
// (the embedded table is validated by tests).
func Default() *Zoo {
	z, err := NewZoo(TableI)
	if err != nil {
		panic(err)
	}
	return z
}

// Get looks a model up by name.
func (z *Zoo) Get(name string) (Model, bool) {
	m, ok := z.byName[name]
	return m, ok
}

// MustGet looks a model up and panics if absent; for tests and embedded
// tables only.
func (z *Zoo) MustGet(name string) Model {
	m, ok := z.Get(name)
	if !ok {
		panic(fmt.Sprintf("models: unknown model %q", name))
	}
	return m
}

// Names returns the model names in registry order.
func (z *Zoo) Names() []string {
	out := make([]string, len(z.names))
	copy(out, z.names)
	return out
}

// Len returns the number of registered models.
func (z *Zoo) Len() int { return len(z.names) }

// All returns the models in registry order.
func (z *Zoo) All() []Model {
	out := make([]Model, 0, len(z.names))
	for _, n := range z.names {
		out = append(out, z.byName[n])
	}
	return out
}

// BySize returns the models sorted by ascending GPU occupancy, the order
// Table I uses.
func (z *Zoo) BySize() []Model {
	out := z.All()
	sort.Slice(out, func(i, j int) bool {
		if out[i].OccupancyMB != out[j].OccupancyMB {
			return out[i].OccupancyMB < out[j].OccupancyMB
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Profile is the per-(GPU-type, model) timing record the Scheduler uses.
// Inference time scales with batch size via a fitted line (§IV-A: "the
// inference time depends on the model and the batch size which can be
// profiled using simple regression methods"); load time depends only on
// model size.
type Profile struct {
	Model    string
	GPUType  string
	LoadTime time.Duration
	// InferFit maps batch size (x) to inference seconds (y).
	InferFit stats.Linear
}

// InferTime predicts the inference latency for one request carrying a
// batch of n inputs (batch occupancy 1). It is InferTimeAt(n, 1).
func (p Profile) InferTime(n int) time.Duration {
	return p.InferTimeAt(n, 1)
}

// InferTimeAt predicts the service time of one coalesced kernel launch
// executing k same-model requests, each carrying a batch of n inputs:
// the fitted line evaluated at k·n total inputs. Because the fit keeps
// a fixed launch/overhead intercept (Alpha) and a per-input slope
// (Beta), the curve is sub-linear in k — equivalently
//
//	InferTimeAt(n, k) = InferTime(n) · (1 + α·(k−1)),  α = βn/(α₀+βn)
//
// with α ≈ 0.3 for the Table I profiles at the evaluation batch of 32
// (the 70/30 launch-cost split AddTableProfiles calibrates). k ≤ 1
// reproduces InferTime(n) exactly, so batching is a strict extension
// of the single-dispatch model.
func (p Profile) InferTimeAt(n, k int) time.Duration {
	if n <= 0 {
		n = 1
	}
	if k <= 0 {
		k = 1
	}
	sec := p.InferFit.Predict(float64(k) * float64(n))
	if sec < 0 {
		sec = 0
	}
	return time.Duration(sec * float64(time.Second))
}

// ProfileStore holds profiles keyed by (GPU type, model). The paper
// supports heterogeneous GPUs by running the same profiling procedure per
// GPU type (§VI "Heterogeneity of GPUs").
type ProfileStore struct {
	m map[string]map[string]Profile // gpuType -> model -> profile
}

// NewProfileStore returns an empty store.
func NewProfileStore() *ProfileStore {
	return &ProfileStore{m: make(map[string]map[string]Profile)}
}

// Put inserts or replaces a profile.
func (s *ProfileStore) Put(p Profile) {
	byModel, ok := s.m[p.GPUType]
	if !ok {
		byModel = make(map[string]Profile)
		s.m[p.GPUType] = byModel
	}
	byModel[p.Model] = p
}

// Get fetches the profile for (gpuType, model).
func (s *ProfileStore) Get(gpuType, model string) (Profile, bool) {
	byModel, ok := s.m[gpuType]
	if !ok {
		return Profile{}, false
	}
	p, ok := byModel[model]
	return p, ok
}

// GPUTypes returns the GPU types with at least one profile, sorted.
func (s *ProfileStore) GPUTypes() []string {
	out := make([]string, 0, len(s.m))
	for t := range s.m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Runner executes a model on a device and reports measured latencies; the
// simulated GPU and (in principle) a real backend both satisfy it. It is
// what the profiling procedure drives.
type Runner interface {
	// GPUType identifies the device class being profiled.
	GPUType() string
	// MeasureLoad uploads the model and returns the observed load time.
	MeasureLoad(m Model) time.Duration
	// MeasureInfer runs one inference at the given batch size and
	// returns the observed latency. The model must be loaded.
	MeasureInfer(m Model, batch int) time.Duration
}

// DefaultProfileBatches are the batch sizes swept during profiling.
var DefaultProfileBatches = []int{1, 2, 4, 8, 16, 32, 64}

// ProfileModel runs the paper's profiling procedure for one model on one
// device: measure the upload once, then sweep batch sizes and fit a line.
func ProfileModel(r Runner, m Model, batches []int) (Profile, error) {
	if len(batches) < 2 {
		return Profile{}, fmt.Errorf("models: need >=2 batch sizes to fit, got %d", len(batches))
	}
	load := r.MeasureLoad(m)
	xs := make([]float64, 0, len(batches))
	ys := make([]float64, 0, len(batches))
	for _, b := range batches {
		if b <= 0 {
			return Profile{}, fmt.Errorf("models: non-positive batch size %d", b)
		}
		lat := r.MeasureInfer(m, b)
		xs = append(xs, float64(b))
		ys = append(ys, lat.Seconds())
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return Profile{}, fmt.Errorf("models: fitting %s on %s: %w", m.Name, r.GPUType(), err)
	}
	return Profile{Model: m.Name, GPUType: r.GPUType(), LoadTime: load, InferFit: fit}, nil
}

// ProfileZoo profiles every model in the zoo on the device and stores the
// results.
func ProfileZoo(r Runner, z *Zoo, batches []int, into *ProfileStore) error {
	for _, m := range z.All() {
		p, err := ProfileModel(r, m, batches)
		if err != nil {
			return err
		}
		into.Put(p)
	}
	return nil
}

// TableProfiles builds a ProfileStore directly from Table I for the given
// GPU type, modelling inference time as the paper does: a fixed per-batch
// launch cost plus a per-sample cost calibrated so that batch 32 matches
// the table. This is the store all simulated experiments use.
func TableProfiles(gpuType string, z *Zoo) *ProfileStore {
	s := NewProfileStore()
	AddTableProfiles(s, gpuType, 1, z)
	return s
}

// AddTableProfiles writes Table-I-derived profiles for one GPU type into
// an existing store, with all times scaled by slowdown (1 reproduces the
// paper's RTX 2080 numbers exactly; the paper profiles each GPU type
// separately per §VI "Heterogeneity of GPUs", and a deterministic
// fixed-factor variant is how the reproduction models further device
// classes without new measurements). Heterogeneous fleets call it once
// per device class over the same store.
func AddTableProfiles(s *ProfileStore, gpuType string, slowdown float64, z *Zoo) {
	for _, m := range z.All() {
		total := m.InferTime.Seconds() * slowdown
		// Calibration: ~70% of the batch-32 latency is fixed kernel
		// launch/overhead, 30% scales with total input count. At batch
		// 32 the fit reproduces Table I (times slowdown) exactly; the
		// split is also what sets the coalesced-batch scaling curve —
		// InferTimeAt(32, k) = InferTime·(0.7 + 0.3k), i.e. a batch of
		// 8 requests costs 3.1x one request for 8x the work.
		alpha := total * 0.7
		beta := total * 0.3 / float64(EvalBatchSize)
		s.Put(Profile{
			Model:    m.Name,
			GPUType:  gpuType,
			LoadTime: time.Duration(float64(m.LoadTime) * slowdown),
			InferFit: stats.Linear{Alpha: alpha, Beta: beta, R2: 1, N: 2},
		})
	}
}

// DeviceClass is a built-in GPU device class: its speed relative to the
// paper's profiled RTX 2080, its relative price, and its usable model
// memory. The classes let heterogeneous-fleet experiments run without a
// per-type profiling pass — Table I times are scaled by Slowdown, which
// is the paper's per-type profiling procedure collapsed to one factor.
type DeviceClass struct {
	Type string
	// Slowdown scales Table I load/inference times (1 = RTX 2080).
	Slowdown float64
	// CostPerSecond is the relative price of one GPU-second; the
	// autoscaler's cost column multiplies accrued GPU-seconds by it.
	CostPerSecond float64
	// MemoryBytes is the usable model memory (physical minus the CUDA
	// context / runtime overhead).
	MemoryBytes int64
}

// BuiltinDeviceClasses are the device classes with embedded Table I
// scalings, cheapest-per-second first. "rtx2080" is the paper's testbed
// GPU; "t4" is the cheap inference tier — slower per request but priced
// ~3x lower per second and carrying more memory.
var BuiltinDeviceClasses = []DeviceClass{
	{Type: "t4", Slowdown: 1.6, CostPerSecond: 0.20, MemoryBytes: 15 << 30},
	{Type: "rtx2080", Slowdown: 1.0, CostPerSecond: 0.60, MemoryBytes: 7 << 30},
}

// LookupDeviceClass finds a built-in class by GPU type.
func LookupDeviceClass(gpuType string) (DeviceClass, bool) {
	for _, c := range BuiltinDeviceClasses {
		if c.Type == gpuType {
			return c, true
		}
	}
	return DeviceClass{}, false
}

// FleetTableProfiles builds one store covering every listed GPU type with
// its built-in Slowdown. Unknown types are an error: a fleet class the
// table cannot cover needs an explicit profiling pass instead.
func FleetTableProfiles(z *Zoo, gpuTypes ...string) (*ProfileStore, error) {
	s := NewProfileStore()
	for _, t := range gpuTypes {
		c, ok := LookupDeviceClass(t)
		if !ok {
			return nil, fmt.Errorf("models: no built-in device class %q (provide an explicit ProfileStore)", t)
		}
		AddTableProfiles(s, c.Type, c.Slowdown, z)
	}
	return s, nil
}
