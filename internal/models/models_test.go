package models

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTableIIntegrity(t *testing.T) {
	if len(TableI) != 22 {
		t.Fatalf("Table I has %d models, want 22", len(TableI))
	}
	seen := map[string]bool{}
	for _, m := range TableI {
		if seen[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if m.OccupancyMB < 1000 || m.OccupancyMB > 4000 {
			t.Errorf("%s occupancy %d MB outside Table I range", m.Name, m.OccupancyMB)
		}
		if m.LoadTime < 2*time.Second || m.LoadTime > 5*time.Second {
			t.Errorf("%s load time %v outside Table I range", m.Name, m.LoadTime)
		}
		if m.InferTime < time.Second || m.InferTime > 2*time.Second {
			t.Errorf("%s inference time %v outside Table I range", m.Name, m.InferTime)
		}
	}
	// Spot-check exact values from the paper.
	z := Default()
	sq := z.MustGet("squeezenet1.1")
	if sq.OccupancyMB != 1269 || sq.LoadTime != 2410*time.Millisecond || sq.InferTime != 1280*time.Millisecond {
		t.Errorf("squeezenet1.1 = %+v", sq)
	}
	vg := z.MustGet("vgg19")
	if vg.OccupancyMB != 3947 || vg.LoadTime != 4070*time.Millisecond || vg.InferTime != 1330*time.Millisecond {
		t.Errorf("vgg19 = %+v", vg)
	}
}

func TestTableIOrderedByOccupancy(t *testing.T) {
	for i := 1; i < len(TableI); i++ {
		if TableI[i].OccupancyMB < TableI[i-1].OccupancyMB {
			t.Errorf("Table I not size-ordered at %s", TableI[i].Name)
		}
	}
}

func TestZooErrors(t *testing.T) {
	if _, err := NewZoo([]Model{{Name: ""}}); err == nil {
		t.Error("want error for empty name")
	}
	m := TableI[0]
	if _, err := NewZoo([]Model{m, m}); err == nil {
		t.Error("want error for duplicate")
	}
	bad := m
	bad.LoadTime = 0
	if _, err := NewZoo([]Model{bad}); err == nil {
		t.Error("want error for zero load time")
	}
}

func TestZooAccessors(t *testing.T) {
	z := Default()
	if z.Len() != 22 {
		t.Fatalf("Len = %d", z.Len())
	}
	if _, ok := z.Get("nope"); ok {
		t.Error("Get of unknown model succeeded")
	}
	names := z.Names()
	if names[0] != "squeezenet1.1" || names[len(names)-1] != "vgg19" {
		t.Errorf("Names order wrong: first=%s last=%s", names[0], names[len(names)-1])
	}
	all := z.All()
	if len(all) != 22 || all[4].Name != "alexnet" {
		t.Errorf("All order wrong")
	}
	bySize := z.BySize()
	for i := 1; i < len(bySize); i++ {
		if bySize[i].OccupancyMB < bySize[i-1].OccupancyMB {
			t.Fatal("BySize not sorted")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet of unknown model should panic")
		}
	}()
	z.MustGet("nope")
}

func TestOccupancyBytes(t *testing.T) {
	m := Model{OccupancyMB: 3}
	if m.OccupancyBytes() != 3<<20 {
		t.Errorf("OccupancyBytes = %d", m.OccupancyBytes())
	}
}

// fakeRunner implements Runner with a known linear latency law.
type fakeRunner struct{ alpha, beta float64 }

func (f fakeRunner) GPUType() string                   { return "fake" }
func (f fakeRunner) MeasureLoad(m Model) time.Duration { return m.LoadTime }
func (f fakeRunner) MeasureInfer(m Model, batch int) time.Duration {
	return time.Duration((f.alpha + f.beta*float64(batch)) * float64(time.Second))
}

func TestProfileModelRecoversLaw(t *testing.T) {
	r := fakeRunner{alpha: 0.9, beta: 0.0125}
	p, err := ProfileModel(r, TableI[0], DefaultProfileBatches)
	if err != nil {
		t.Fatal(err)
	}
	if p.LoadTime != TableI[0].LoadTime {
		t.Errorf("LoadTime = %v", p.LoadTime)
	}
	if math.Abs(p.InferFit.Alpha-0.9) > 1e-9 || math.Abs(p.InferFit.Beta-0.0125) > 1e-9 {
		t.Errorf("fit = %+v", p.InferFit)
	}
	want := time.Duration((0.9 + 0.0125*64) * float64(time.Second))
	if got := p.InferTime(64); got != want {
		t.Errorf("InferTime(64) = %v, want %v", got, want)
	}
}

func TestProfileModelErrors(t *testing.T) {
	r := fakeRunner{alpha: 1, beta: 0.01}
	if _, err := ProfileModel(r, TableI[0], []int{32}); err == nil {
		t.Error("want error for single batch size")
	}
	if _, err := ProfileModel(r, TableI[0], []int{1, -2}); err == nil {
		t.Error("want error for negative batch size")
	}
}

func TestProfileZooAndStore(t *testing.T) {
	store := NewProfileStore()
	z := Default()
	if err := ProfileZoo(fakeRunner{alpha: 1, beta: 0.01}, z, DefaultProfileBatches, store); err != nil {
		t.Fatal(err)
	}
	for _, name := range z.Names() {
		if _, ok := store.Get("fake", name); !ok {
			t.Errorf("missing profile for %s", name)
		}
	}
	if _, ok := store.Get("other", "resnet18"); ok {
		t.Error("profile for unknown GPU type should be absent")
	}
	if got := store.GPUTypes(); len(got) != 1 || got[0] != "fake" {
		t.Errorf("GPUTypes = %v", got)
	}
}

func TestTableProfilesMatchesTableAtBatch32(t *testing.T) {
	z := Default()
	s := TableProfiles("rtx2080", z)
	for _, m := range z.All() {
		p, ok := s.Get("rtx2080", m.Name)
		if !ok {
			t.Fatalf("missing profile for %s", m.Name)
		}
		if p.LoadTime != m.LoadTime {
			t.Errorf("%s load = %v, want %v", m.Name, p.LoadTime, m.LoadTime)
		}
		got := p.InferTime(EvalBatchSize)
		if d := got - m.InferTime; d > time.Millisecond || d < -time.Millisecond {
			t.Errorf("%s infer(32) = %v, want %v", m.Name, got, m.InferTime)
		}
	}
}

func TestTableProfilesScaledSlowdown(t *testing.T) {
	z := Default()
	base := TableProfiles("rtx2080", z)
	slow := NewProfileStore()
	AddTableProfiles(slow, "t4", 1.6, z)
	for _, m := range z.All() {
		b, _ := base.Get("rtx2080", m.Name)
		s, ok := slow.Get("t4", m.Name)
		if !ok {
			t.Fatalf("missing scaled profile for %s", m.Name)
		}
		if want := time.Duration(float64(b.LoadTime) * 1.6); s.LoadTime != want {
			t.Errorf("%s load = %v, want %v", m.Name, s.LoadTime, want)
		}
		got := s.InferTime(EvalBatchSize).Seconds()
		want := b.InferTime(EvalBatchSize).Seconds() * 1.6
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("%s infer(32) = %gs, want %gs", m.Name, got, want)
		}
	}
}

// TestGPUTypesOrdering pins that GPUTypes is sorted regardless of
// insertion order — the heterogeneity sweeps and the per-class report
// rows rely on it for deterministic output.
func TestGPUTypesOrdering(t *testing.T) {
	cases := []struct {
		name   string
		insert []string
		want   []string
	}{
		{"single", []string{"rtx2080"}, []string{"rtx2080"}},
		{"sorted-input", []string{"a100", "rtx2080", "t4"}, []string{"a100", "rtx2080", "t4"}},
		{"reverse-input", []string{"t4", "rtx2080", "a100"}, []string{"a100", "rtx2080", "t4"}},
		{"interleaved-dups", []string{"t4", "a100", "t4", "rtx2080", "a100"}, []string{"a100", "rtx2080", "t4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewProfileStore()
			for _, ty := range tc.insert {
				s.Put(Profile{Model: "resnet18", GPUType: ty})
			}
			got := s.GPUTypes()
			if len(got) != len(tc.want) {
				t.Fatalf("GPUTypes = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("GPUTypes = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestFleetTableProfiles(t *testing.T) {
	z := Default()
	s, err := FleetTableProfiles(z, "rtx2080", "t4")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GPUTypes(); len(got) != 2 || got[0] != "rtx2080" || got[1] != "t4" {
		t.Errorf("GPUTypes = %v", got)
	}
	fast, _ := s.Get("rtx2080", "resnet18")
	slow, _ := s.Get("t4", "resnet18")
	if slow.LoadTime <= fast.LoadTime {
		t.Errorf("t4 load %v not slower than rtx2080 %v", slow.LoadTime, fast.LoadTime)
	}
	if _, err := FleetTableProfiles(z, "rtx2080", "unobtanium"); err == nil {
		t.Error("unknown device class must error")
	}
	c, ok := LookupDeviceClass("t4")
	if !ok || c.Slowdown <= 1 || c.CostPerSecond >= 0.6 {
		t.Errorf("t4 class = %+v (want slower and cheaper than rtx2080)", c)
	}
	if _, ok := LookupDeviceClass("unobtanium"); ok {
		t.Error("LookupDeviceClass of unknown type succeeded")
	}
}

func TestProfileInferTimeClamps(t *testing.T) {
	p := Profile{InferFit: statsLinear(-1, 0.001)}
	if p.InferTime(1) != 0 {
		t.Error("negative prediction should clamp to 0")
	}
	p2 := Profile{InferFit: statsLinear(0.5, 0.01)}
	if p2.InferTime(0) != p2.InferTime(1) {
		t.Error("batch<=0 should be treated as 1")
	}
}

// Property: predicted inference time is monotone in batch size for
// non-negative slope fits.
func TestProfileMonotoneProperty(t *testing.T) {
	f := func(a, b uint16, n1, n2 uint8) bool {
		p := Profile{InferFit: statsLinear(float64(a)/1000, float64(b)/100000)}
		x, y := int(n1)+1, int(n2)+1
		if x > y {
			x, y = y, x
		}
		return p.InferTime(x) <= p.InferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// statsLinear builds a stats.Linear without importing the package name in
// every call site.
func statsLinear(alpha, beta float64) (l struct {
	Alpha, Beta float64
	R2          float64
	N           int
}) {
	l.Alpha, l.Beta = alpha, beta
	return
}

// TestInferTimeAtCurve table-tests the coalesced-batch service-time
// curve for every builtin profile × device class: batch-1 identity
// (InferTimeAt(n, 1) must be float-exact InferTime(n) — the MaxBatch=1
// golden guarantee), strict monotonicity in coalesced members, and
// sub-linear scaling (k requests cost less than k times one request).
func TestInferTimeAtCurve(t *testing.T) {
	zoo := Default()
	for _, class := range BuiltinDeviceClasses {
		store, err := FleetTableProfiles(zoo, class.Type)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range zoo.All() {
			p, ok := store.Get(class.Type, m.Name)
			if !ok {
				t.Fatalf("%s: no profile for %s", class.Type, m.Name)
			}
			for _, n := range []int{1, 8, EvalBatchSize} {
				if got, want := p.InferTimeAt(n, 1), p.InferTime(n); got != want {
					t.Fatalf("%s/%s: InferTimeAt(%d,1)=%v != InferTime(%d)=%v",
						class.Type, m.Name, n, got, n, want)
				}
				one := p.InferTimeAt(n, 1)
				for k := 2; k <= 16; k++ {
					cur, prev := p.InferTimeAt(n, k), p.InferTimeAt(n, k-1)
					if cur <= prev {
						t.Fatalf("%s/%s: InferTimeAt(%d,%d)=%v not > InferTimeAt(%d,%d)=%v",
							class.Type, m.Name, n, k, cur, n, k-1, prev)
					}
					if cur >= time.Duration(k)*one {
						t.Fatalf("%s/%s: InferTimeAt(%d,%d)=%v not sub-linear vs %d×%v",
							class.Type, m.Name, n, k, cur, k, one)
					}
				}
				// The calibrated split: k coalesced requests of n inputs
				// cost InferTime(n·1)·(α₀+β·kn)/(α₀+β·n); at n=32 this is
				// the documented 0.7+0.3k curve.
				if n == EvalBatchSize {
					want := p.InferTime(n).Seconds() * (0.7 + 0.3*8)
					got := p.InferTimeAt(n, 8).Seconds()
					if math.Abs(got-want) > 5e-9 {
						t.Fatalf("%s/%s: InferTimeAt(32,8)=%vs, want %vs (0.7+0.3k calibration)",
							class.Type, m.Name, got, want)
					}
				}
			}
		}
	}
}
