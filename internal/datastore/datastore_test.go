package datastore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	rev, err := s.Put("gpu/node0/gpu0/status", []byte("busy"), 0)
	if err != nil || rev != 1 {
		t.Fatalf("Put = %d, %v", rev, err)
	}
	kv, err := s.Get("gpu/node0/gpu0/status")
	if err != nil {
		t.Fatal(err)
	}
	if string(kv.Value) != "busy" || kv.CreateRevision != 1 || kv.ModRevision != 1 {
		t.Errorf("kv = %+v", kv)
	}
	rev2, err := s.Put("gpu/node0/gpu0/status", []byte("idle"), 0)
	if err != nil || rev2 != 2 {
		t.Fatalf("second Put = %d, %v", rev2, err)
	}
	kv, _ = s.Get("gpu/node0/gpu0/status")
	if kv.CreateRevision != 1 || kv.ModRevision != 2 {
		t.Errorf("revisions = %+v", kv)
	}
	ok, err := s.Delete("gpu/node0/gpu0/status")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, err := s.Get("gpu/node0/gpu0/status"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	ok, _ = s.Delete("gpu/node0/gpu0/status")
	if ok {
		t.Error("double delete should report false")
	}
	if _, err := s.Put("", []byte("x"), 0); err == nil {
		t.Error("empty key should fail")
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	buf := []byte("abc")
	if _, err := s.Put("k", buf, 0); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller mutation must not leak in
	kv, _ := s.Get("k")
	if string(kv.Value) != "abc" {
		t.Error("store aliased caller buffer")
	}
	kv.Value[0] = 'Y' // reader mutation must not leak back
	kv2, _ := s.Get("k")
	if string(kv2.Value) != "abc" {
		t.Error("reader mutated stored value")
	}
}

func TestListPrefix(t *testing.T) {
	s := New()
	keys := []string{"lru/g1", "lru/g0", "status/g0", "lru/g2"}
	for _, k := range keys {
		if _, err := s.Put(k, []byte(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List("lru/")
	if len(got) != 3 {
		t.Fatalf("List = %d entries", len(got))
	}
	if got[0].Key != "lru/g0" || got[2].Key != "lru/g2" {
		t.Errorf("not sorted: %v", got)
	}
	if len(s.List("nope/")) != 0 {
		t.Error("unmatched prefix should be empty")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := New()
	// Create-if-absent.
	rev, err := s.CompareAndSwap("leader", 0, []byte("sched-1"))
	if err != nil {
		t.Fatal(err)
	}
	// Second create must fail.
	if _, err := s.CompareAndSwap("leader", 0, []byte("sched-2")); !errors.Is(err, ErrCASFailed) {
		t.Errorf("create-exists: %v", err)
	}
	// Swap at the right revision succeeds.
	if _, err := s.CompareAndSwap("leader", rev, []byte("sched-2")); err != nil {
		t.Fatal(err)
	}
	// Swap at a stale revision fails.
	if _, err := s.CompareAndSwap("leader", rev, []byte("sched-3")); !errors.Is(err, ErrCASFailed) {
		t.Errorf("stale swap: %v", err)
	}
	// Swap of a missing key fails.
	if _, err := s.CompareAndSwap("ghost", 5, []byte("x")); !errors.Is(err, ErrCASFailed) {
		t.Errorf("missing swap: %v", err)
	}
	if _, err := s.CompareAndSwap("", 0, nil); err == nil {
		t.Error("empty key should fail")
	}
}

func TestWatch(t *testing.T) {
	s := New()
	ch, cancel, err := s.Watch("gpu/")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, err := s.Put("gpu/g0", []byte("busy"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("other/x", []byte("y"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("gpu/g0"); err != nil {
		t.Fatal(err)
	}
	ev1 := <-ch
	if ev1.Type != EventPut || ev1.Key != "gpu/g0" || string(ev1.Value) != "busy" {
		t.Errorf("ev1 = %+v", ev1)
	}
	ev2 := <-ch
	if ev2.Type != EventDelete || ev2.Key != "gpu/g0" {
		t.Errorf("ev2 = %+v", ev2)
	}
	if ev2.Revision <= ev1.Revision {
		t.Error("revisions must increase")
	}
	cancel()
	if _, ok := <-ch; ok {
		// drained events may remain; read until closed
		for range ch {
		}
	}
	cancel() // double cancel is a no-op
}

func TestWatchOrdering(t *testing.T) {
	s := New()
	ch, cancel, err := s.Watch("")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			s.Put("k", []byte{byte(i)}, 0)
		}
	}()
	var prev int64
	for i := 0; i < n; i++ {
		ev := <-ch
		if ev.Revision <= prev {
			t.Fatalf("out of order: %d after %d", ev.Revision, prev)
		}
		prev = ev.Revision
	}
}

func TestLeaseExpiry(t *testing.T) {
	s := New()
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	id, err := s.GrantLease(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("ephemeral/g0", []byte("alive"), id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("ephemeral/g0"); err != nil {
		t.Fatal(err)
	}
	// Advance past the TTL: key disappears.
	now = now.Add(11 * time.Second)
	if _, err := s.Get("ephemeral/g0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired key: %v", err)
	}
	if err := s.KeepAlive(id); !errors.Is(err, ErrLeaseExpire) {
		t.Errorf("keepalive expired lease: %v", err)
	}
}

func TestLeaseKeepAlive(t *testing.T) {
	s := New()
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	id, _ := s.GrantLease(10 * time.Second)
	if _, err := s.Put("k", []byte("v"), id); err != nil {
		t.Fatal(err)
	}
	now = now.Add(8 * time.Second)
	if err := s.KeepAlive(id); err != nil {
		t.Fatal(err)
	}
	now = now.Add(8 * time.Second) // 16s after grant, 8s after refresh
	if _, err := s.Get("k"); err != nil {
		t.Errorf("refreshed lease expired early: %v", err)
	}
}

func TestLeaseRevoke(t *testing.T) {
	s := New()
	id, _ := s.GrantLease(time.Hour)
	s.Put("a", []byte("1"), id)
	s.Put("b", []byte("2"), id)
	s.Put("c", []byte("3"), 0)
	if err := s.RevokeLease(id); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after revoke", s.Len())
	}
	if err := s.RevokeLease(id); !errors.Is(err, ErrLeaseExpire) {
		t.Errorf("double revoke: %v", err)
	}
	if _, err := s.GrantLease(0); err == nil {
		t.Error("zero TTL should fail")
	}
	if _, err := s.Put("d", []byte("4"), 999); !errors.Is(err, ErrLeaseExpire) {
		t.Errorf("put with bogus lease: %v", err)
	}
}

func TestLeaseRebind(t *testing.T) {
	s := New()
	id1, _ := s.GrantLease(time.Hour)
	id2, _ := s.GrantLease(time.Hour)
	s.Put("k", []byte("1"), id1)
	s.Put("k", []byte("2"), id2) // rebinding moves the key to lease 2
	if err := s.RevokeLease(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Errorf("key should survive revoking the old lease: %v", err)
	}
	if err := s.RevokeLease(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("key should die with its lease: %v", err)
	}
}

func TestClose(t *testing.T) {
	s := New()
	ch, _, err := s.Watch("")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, ok := <-ch; ok {
		t.Error("watcher channel should close")
	}
	if _, err := s.Put("k", nil, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close: %v", err)
	}
	if _, _, err := s.Watch(""); !errors.Is(err, ErrClosed) {
		t.Errorf("Watch after close: %v", err)
	}
	s.Close() // idempotent
}

func TestConcurrentClients(t *testing.T) {
	s := New()
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i)
				if _, err := s.Put(key, []byte{byte(i)}, 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
	if s.Revision() != writers*perWriter {
		t.Errorf("Revision = %d", s.Revision())
	}
}

func TestConcurrentCASCounter(t *testing.T) {
	// A CAS-based counter incremented by racing goroutines must not lose
	// updates — the consistency property the paper gets from etcd.
	s := New()
	if _, err := s.Put("counter", []byte{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const increments = 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					kv, err := s.Get("counter")
					if err != nil {
						t.Error(err)
						return
					}
					v := int(kv.Value[0])<<8 | int(kv.Value[1])
					v++
					next := []byte{byte(v >> 8), byte(v)}
					if _, err := s.CompareAndSwap("counter", kv.ModRevision, next); err == nil {
						break
					} else if !errors.Is(err, ErrCASFailed) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	kv, _ := s.Get("counter")
	total := int(kv.Value[0])<<8 | int(kv.Value[1])
	if total != clients*increments {
		t.Errorf("counter = %d, want %d", total, clients*increments)
	}
}
