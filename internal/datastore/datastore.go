// Package datastore implements the Datastore of the FaaS architecture
// (§III-E): an etcd-like consistent key-value store holding "the estimated
// latency of each inference request, the LRU list of each GPU, and the
// status of each GPU". Like etcd it provides monotonically increasing
// revisions, compare-and-swap, prefix queries, watches that stream ordered
// change events, and TTL leases. It is an in-process store with full
// mutual exclusion — the consistency guarantees the paper relies on (a
// single serialized view shared by the Scheduler, Cache Manager and GPU
// Managers) hold by construction.
package datastore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one change notification.
type Event struct {
	Type     EventType
	Key      string
	Value    []byte
	Revision int64
}

// EventType discriminates puts from deletes.
type EventType int

// Event types.
const (
	EventPut EventType = iota
	EventDelete
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventPut:
		return "put"
	case EventDelete:
		return "delete"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// KV is one key-value pair with its metadata.
type KV struct {
	Key            string
	Value          []byte
	CreateRevision int64
	ModRevision    int64
	Lease          int64
}

// Errors reported by the store.
var (
	ErrNotFound    = errors.New("datastore: key not found")
	ErrCASFailed   = errors.New("datastore: compare-and-swap failed")
	ErrLeaseExpire = errors.New("datastore: lease not found or expired")
	ErrClosed      = errors.New("datastore: store closed")
)

type watcher struct {
	prefix string
	ch     chan Event
	done   chan struct{}
}

type lease struct {
	id      int64
	ttl     time.Duration
	expires time.Time
	keys    map[string]bool
}

// Store is the key-value store. All operations are linearizable under the
// single internal mutex.
type Store struct {
	mu       sync.Mutex
	rev      int64
	kv       map[string]*KV
	watchers map[*watcher]bool
	leases   map[int64]*lease
	nextLs   int64
	closed   bool
	// now is injectable for deterministic lease tests.
	now func() time.Time
}

// New creates an empty store.
func New() *Store {
	return &Store{
		kv:       make(map[string]*KV),
		watchers: make(map[*watcher]bool),
		leases:   make(map[int64]*lease),
		now:      time.Now,
	}
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Revision returns the current store revision.
func (s *Store) Revision() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// expireLocked drops expired leases and their keys.
func (s *Store) expireLocked() {
	now := s.now()
	for id, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		for k := range l.keys {
			s.deleteLocked(k)
		}
		delete(s.leases, id)
	}
}

func (s *Store) notifyLocked(ev Event) {
	for w := range s.watchers {
		if !strings.HasPrefix(ev.Key, w.prefix) {
			continue
		}
		select {
		case w.ch <- ev:
		case <-w.done:
		}
	}
}

// Put writes a key, returning the new revision. leaseID 0 means no lease.
func (s *Store) Put(key string, value []byte, leaseID int64) (int64, error) {
	if key == "" {
		return 0, errors.New("datastore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.expireLocked()
	var l *lease
	if leaseID != 0 {
		var ok bool
		l, ok = s.leases[leaseID]
		if !ok {
			return 0, fmt.Errorf("%w: %d", ErrLeaseExpire, leaseID)
		}
	}
	s.rev++
	old, existed := s.kv[key]
	create := s.rev
	if existed {
		create = old.CreateRevision
		if old.Lease != 0 && old.Lease != leaseID {
			if ol, ok := s.leases[old.Lease]; ok {
				delete(ol.keys, key)
			}
		}
	}
	val := append([]byte(nil), value...)
	s.kv[key] = &KV{Key: key, Value: val, CreateRevision: create, ModRevision: s.rev, Lease: leaseID}
	if l != nil {
		l.keys[key] = true
	}
	s.notifyLocked(Event{Type: EventPut, Key: key, Value: val, Revision: s.rev})
	return s.rev, nil
}

// Get reads one key.
func (s *Store) Get(key string) (KV, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return KV{}, ErrClosed
	}
	s.expireLocked()
	kv, ok := s.kv[key]
	if !ok {
		return KV{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	out := *kv
	out.Value = append([]byte(nil), kv.Value...)
	return out, nil
}

// List returns all pairs under a prefix, sorted by key.
func (s *Store) List(prefix string) []KV {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.expireLocked()
	var out []KV
	for k, kv := range s.kv {
		if strings.HasPrefix(k, prefix) {
			cp := *kv
			cp.Value = append([]byte(nil), kv.Value...)
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (s *Store) deleteLocked(key string) bool {
	kv, ok := s.kv[key]
	if !ok {
		return false
	}
	if kv.Lease != 0 {
		if l, ok := s.leases[kv.Lease]; ok {
			delete(l.keys, key)
		}
	}
	delete(s.kv, key)
	s.rev++
	s.notifyLocked(Event{Type: EventDelete, Key: key, Revision: s.rev})
	return true
}

// Delete removes a key; it reports whether the key existed.
func (s *Store) Delete(key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	s.expireLocked()
	return s.deleteLocked(key), nil
}

// CompareAndSwap writes value only if the key's current ModRevision equals
// expected (0 = key must not exist). It returns the new revision.
func (s *Store) CompareAndSwap(key string, expected int64, value []byte) (int64, error) {
	if key == "" {
		return 0, errors.New("datastore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.expireLocked()
	cur, exists := s.kv[key]
	switch {
	case expected == 0 && exists:
		return 0, fmt.Errorf("%w: %s exists at rev %d", ErrCASFailed, key, cur.ModRevision)
	case expected != 0 && (!exists || cur.ModRevision != expected):
		got := int64(0)
		if exists {
			got = cur.ModRevision
		}
		return 0, fmt.Errorf("%w: %s at rev %d, expected %d", ErrCASFailed, key, got, expected)
	}
	s.rev++
	create := s.rev
	if exists {
		create = cur.CreateRevision
	}
	val := append([]byte(nil), value...)
	s.kv[key] = &KV{Key: key, Value: val, CreateRevision: create, ModRevision: s.rev}
	s.notifyLocked(Event{Type: EventPut, Key: key, Value: val, Revision: s.rev})
	return s.rev, nil
}

// GrantLease creates a lease with the given TTL and returns its ID.
func (s *Store) GrantLease(ttl time.Duration) (int64, error) {
	if ttl <= 0 {
		return 0, fmt.Errorf("datastore: non-positive TTL %v", ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.nextLs++
	id := s.nextLs
	s.leases[id] = &lease{id: id, ttl: ttl, expires: s.now().Add(ttl), keys: make(map[string]bool)}
	return id, nil
}

// KeepAlive refreshes a lease's expiry.
func (s *Store) KeepAlive(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.expireLocked()
	l, ok := s.leases[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrLeaseExpire, id)
	}
	l.expires = s.now().Add(l.ttl)
	return nil
}

// RevokeLease drops a lease and deletes its keys.
func (s *Store) RevokeLease(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	l, ok := s.leases[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrLeaseExpire, id)
	}
	for k := range l.keys {
		s.deleteLocked(k)
	}
	delete(s.leases, id)
	return nil
}

// Watch streams events for keys under prefix, starting with changes after
// the call. Cancel releases the watcher; the channel is closed on cancel
// or store close. The channel is buffered; a slow consumer blocks writers,
// matching etcd's backpressure-by-default behaviour at this scale.
func (s *Store) Watch(prefix string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	w := &watcher{prefix: prefix, ch: make(chan Event, 128), done: make(chan struct{})}
	s.watchers[w] = true
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.watchers[w] {
			delete(s.watchers, w)
			close(w.done)
			close(w.ch)
		}
	}
	return w.ch, cancel, nil
}

// Close shuts the store; all watchers are closed and further operations
// fail with ErrClosed.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for w := range s.watchers {
		delete(s.watchers, w)
		close(w.done)
		close(w.ch)
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return len(s.kv)
}
