package core

// reqRing is the global queue's backing store: a power-of-two ring-buffer
// deque addressed by monotone absolute positions, with tombstoned O(1)
// mid-queue removal. The paper's O3 and LLB mechanics extract requests
// from the middle of the arrival order; a slice splice there is O(n) per
// extraction and dominated deep-queue burst traces, while a tombstone is
// a single nil store. Invariants: the head and tail always rest on live
// requests (removal advances them past tombstones eagerly), so headPos()
// is the first live request and position order is arrival order.
//
// Positions are only meaningful within one Schedule call: push may grow
// and compact the ring, which renumbers positions, but push is never
// called mid-Schedule (the harness enqueues between rounds).
type reqRing struct {
	buf  []*Request // len(buf) is a power of two
	head int        // absolute position of the first live request
	tail int        // absolute position one past the last live request
	live int        // live (non-tombstone) count
	// ver counts compactions. Compaction renumbers positions, so any
	// derived structure keyed by position (the scheduler's per-model
	// index) must rebuild when ver changes.
	ver int
}

// len returns the number of live requests.
func (q *reqRing) len() int { return q.live }

// headPos returns the absolute position of the first live request
// (undefined when empty; callers check len first).
func (q *reqRing) headPos() int { return q.head }

// at returns the request at an absolute position, or nil for a tombstone.
func (q *reqRing) at(pos int) *Request { return q.buf[pos&(len(q.buf)-1)] }

// last returns the most recently pushed live request, or nil when empty.
func (q *reqRing) last() *Request {
	if q.live == 0 {
		return nil
	}
	return q.buf[(q.tail-1)&(len(q.buf)-1)]
}

// tombstones returns the number of tombstoned slots inside the live
// span.
func (q *reqRing) tombstones() int { return (q.tail - q.head) - q.live }

// push appends a request at the tail, growing (and compacting tombstones
// out of) the ring when the position span fills the buffer, when
// tombstones exceed half the buffer — an adversarial enqueue/extract
// pattern (O3 jumps and LLB placements hollow out the middle) must not
// keep a mostly-dead buffer alive — or when the live count has fallen
// under an eighth of the buffer, so a deep burst's allocation is handed
// back once the queue returns to its steady depth. Compaction renumbers
// positions, which is safe here because push is never called
// mid-Schedule.
func (q *reqRing) push(r *Request) {
	if q.buf == nil {
		q.buf = make([]*Request, 16)
	}
	if q.tail-q.head == len(q.buf) || q.tombstones() > len(q.buf)/2 ||
		(len(q.buf) > 16 && q.live*8 < len(q.buf)) {
		q.compact()
	}
	q.buf[q.tail&(len(q.buf)-1)] = r
	q.tail++
	q.live++
}

// pushFront prepends a request ahead of the current head. The failure
// path re-queues interrupted requests here: they already waited their
// arrival-order turn once, so a retry resumes at the front instead of
// re-queueing behind later arrivals. The head position simply decrements
// (absolute positions may go negative; the power-of-two mask indexes
// two's-complement negatives correctly), so position order remains
// dispatch-priority order.
func (q *reqRing) pushFront(r *Request) {
	if q.buf == nil {
		q.buf = make([]*Request, 16)
	}
	if q.tail-q.head == len(q.buf) || q.tombstones() > len(q.buf)/2 ||
		(len(q.buf) > 16 && q.live*8 < len(q.buf)) {
		q.compact()
	}
	q.head--
	q.buf[q.head&(len(q.buf)-1)] = r
	q.live++
}

// compact rewrites the live requests contiguously from position zero,
// doubling the buffer only when it is genuinely full of live entries and
// shrinking it while the live count fits in a quarter of it, so the
// ring's memory tracks the live queue depth in both directions.
func (q *reqRing) compact() {
	size := len(q.buf)
	if q.live == size {
		size *= 2
	} else {
		for size > 16 && q.live <= size/4 {
			size /= 2
		}
	}
	q.ver++
	fresh := make([]*Request, size)
	n := 0
	for pos := q.head; pos < q.tail; pos++ {
		if r := q.buf[pos&(len(q.buf)-1)]; r != nil {
			fresh[n] = r
			n++
		}
	}
	q.buf = fresh
	q.head = 0
	q.tail = n
}

// remove tombstones the live request at an absolute position and returns
// it, advancing head/tail past any adjacent tombstones so both always
// rest on live requests.
func (q *reqRing) remove(pos int) *Request {
	mask := len(q.buf) - 1
	r := q.buf[pos&mask]
	q.buf[pos&mask] = nil
	q.live--
	if pos == q.head {
		for q.head < q.tail && q.buf[q.head&mask] == nil {
			q.head++
		}
	}
	if pos == q.tail-1 {
		for q.tail > q.head && q.buf[(q.tail-1)&mask] == nil {
			q.tail--
		}
	}
	return r
}

// forEach visits the live requests in arrival order.
func (q *reqRing) forEach(f func(*Request)) {
	for pos := q.head; pos < q.tail; pos++ {
		if r := q.at(pos); r != nil {
			f(r)
		}
	}
}
