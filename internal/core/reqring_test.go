package core

import (
	"math/rand"
	"testing"
)

// TestReqRingTombstoneCompaction drives an adversarial enqueue/extract
// pattern — O3 jumps and LLB placements hollow out the middle of the
// ring while the head lingers — and requires the buffer to stay
// proportional to the live queue depth: tombstones past half the buffer
// trigger a compaction at the next push, and compaction shrinks the
// buffer while the live count fits in a quarter of it.
func TestReqRingTombstoneCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q reqRing
	maxLive := 0
	for round := 0; round < 5000; round++ {
		// Burst of arrivals...
		for i := 0; i < 8; i++ {
			q.push(&Request{ID: int64(round*8 + i)})
		}
		if q.live > maxLive {
			maxLive = q.live
		}
		// ...then extract almost all of them from the middle/back, the
		// O3 pattern: the head request is starved in place while later
		// requests leave, so head never advances and tombstones pile up
		// inside the span.
		for q.live > 2 {
			// Pick a random live position strictly after the head.
			pos := q.headPos() + 1 + rng.Intn(q.tail-q.headPos()-1)
			if q.at(pos) == nil {
				continue
			}
			q.remove(pos)
		}
		if got := len(q.buf); got > 64 {
			t.Fatalf("round %d: buffer grew to %d slots for %d live requests (tombstones %d)",
				round, got, q.live, q.tombstones())
		}
	}
	// Drain and verify the survivors are still intact and ordered.
	var last int64 = -1
	for q.live > 0 {
		r := q.remove(q.headPos())
		if r == nil {
			t.Fatal("head resolved to a tombstone")
		}
		if r.ID <= last {
			t.Fatalf("drain out of arrival order: %d after %d", r.ID, last)
		}
		last = r.ID
	}
}

// TestReqRingShrinksAfterBurst pins the shrink side: a deep burst grows
// the buffer, and once the queue returns to a shallow steady state the
// next compactions hand the memory back.
func TestReqRingShrinksAfterBurst(t *testing.T) {
	var q reqRing
	for i := 0; i < 4096; i++ {
		q.push(&Request{ID: int64(i)})
	}
	grown := len(q.buf)
	if grown < 4096 {
		t.Fatalf("buffer %d did not grow to hold the burst", grown)
	}
	// Drain to a shallow queue, then churn: each push sees a mostly-dead
	// or mostly-empty buffer and compaction walks it back down.
	for q.live > 4 {
		q.remove(q.headPos())
	}
	for i := 0; i < 4096; i++ {
		q.push(&Request{ID: int64(4096 + i)})
		q.remove(q.headPos())
	}
	if len(q.buf) >= grown/4 {
		t.Fatalf("buffer stuck at %d slots after burst (was %d, live %d)", len(q.buf), grown, q.live)
	}
}

// TestReqRingVersionTracksCompaction: every compaction must bump ver —
// that is the signal the scheduler's per-model position index rebuilds
// on, since compaction renumbers every position.
func TestReqRingVersionTracksCompaction(t *testing.T) {
	var q reqRing
	v0 := q.ver
	for i := 0; i < 64; i++ {
		q.push(&Request{ID: int64(i)})
	}
	if q.ver == v0 {
		t.Fatal("growth compaction did not bump ver")
	}
	v1 := q.ver
	// Tombstone more than half the buffer (always extracting the first
	// live request after the head, so the head pins the span), then
	// push: must compact.
	for q.live > 4 {
		pos := q.headPos() + 1
		for q.at(pos) == nil {
			pos++
		}
		q.remove(pos)
	}
	q.push(&Request{ID: 1000})
	if q.ver == v1 {
		t.Fatalf("tombstone-majority push did not compact (tombstones %d, buf %d)", q.tombstones(), len(q.buf))
	}
}
