package core

// RequestArena recycles Request objects through a free list so that a
// workload allocates proportionally to the number of requests in
// flight, not to the request count: the caller takes a Request per
// arrival and returns it once the request completes (or fails to
// dispatch). The arena itself is not safe for concurrent use — each
// owner brings its own serialization: the simulated-time streaming
// harness is single-threaded, and the live gateway's inference client
// guards its arena with the same lock that orders its waiter map
// (acquire at admission, release from the completion/drop hooks).
type RequestArena struct {
	free  []*Request
	stats ArenaStats
}

// ArenaStats counts arena traffic. Once the replay reaches its steady
// state, Allocated stops growing and equals the peak number of
// concurrently live requests — the O(in-flight) memory claim the scale
// experiments assert.
type ArenaStats struct {
	// Allocated counts fresh Request allocations (free list empty).
	Allocated int64
	// Reused counts Gets served from the free list.
	Reused int64
	// Live is the number of outstanding (Get minus Put) requests.
	Live int64
	// PeakLive is the high-water mark of Live.
	PeakLive int64
}

// Get returns a zeroed Request, reusing a completed one when available.
func (a *RequestArena) Get() *Request {
	a.stats.Live++
	if a.stats.Live > a.stats.PeakLive {
		a.stats.PeakLive = a.stats.Live
	}
	if n := len(a.free); n > 0 {
		r := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.stats.Reused++
		*r = Request{}
		return r
	}
	a.stats.Allocated++
	return &Request{}
}

// Put returns a request to the free list. The caller must guarantee no
// reference survives the call: the object will be handed out again.
func (a *RequestArena) Put(r *Request) {
	if r == nil {
		return
	}
	a.stats.Live--
	a.free = append(a.free, r)
}

// Stats returns a snapshot of the counters.
func (a *RequestArena) Stats() ArenaStats { return a.stats }
