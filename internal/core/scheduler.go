// Package core implements the paper's primary contribution: the global
// function Scheduler with its three policies (§IV):
//
//   - LB — the baseline load-balancing scheduler: "simply dispatches the
//     request at the head of the global queue whenever a GPU becomes idle"
//     (§V-A);
//   - LALB — locality-aware load balancing (Algorithm 1 + Algorithm 2):
//     prefer idle GPUs that already cache the request's model; when only a
//     busy GPU caches it, compare that GPU's estimated finish time against
//     the model-load time and queue locally when the busy hit wins;
//   - LALB+O3 — LALB with out-of-order dispatch: a waiting request whose
//     model is cached on an idle GPU may be dispatched ahead of earlier
//     arrivals, bounded by a starvation limit (default 25 skips, §IV-B).
//
// The Scheduler maintains the paper's queue topology (Fig. 3): one
// system-wide global queue ordered by arrival, plus one local queue per
// GPU holding requests that were scheduled to a busy GPU and wait there.
// When a GPU becomes idle it always serves its local queue before the
// global queue (Algorithm 1 lines 2–4).
//
// The Scheduler is a passive decision engine: Schedule(now) inspects the
// cluster through the Backend interface and returns the dispatch decisions
// for the harness (simulated or live) to execute. It is not safe for
// concurrent use; callers serialize.
package core

import (
	"errors"
	"fmt"
	"time"

	"gpufaas/internal/sim"
)

// Policy selects the scheduling algorithm.
type Policy int

// Scheduling policies.
const (
	// LB is the default load-balancing baseline.
	LB Policy = iota
	// LALB is locality-aware load balancing with in-order dispatch.
	LALB
	// LALBO3 is LALB with out-of-order dispatch.
	LALBO3
)

// String returns the policy name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case LB:
		return "LB"
	case LALB:
		return "LALB"
	case LALBO3:
		return "LALBO3"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a case-sensitive policy name ("LB", "LALB",
// "LALBO3") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "LB", "lb":
		return LB, nil
	case "LALB", "lalb":
		return LALB, nil
	case "LALBO3", "lalbo3", "LALB+O3":
		return LALBO3, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q", s)
	}
}

// DefaultO3Limit is the paper's default starvation limit for out-of-order
// dispatch (§IV-B).
const DefaultO3Limit = 25

// Request is a function invocation as seen by the scheduler.
type Request struct {
	ID        int64
	Function  string
	Model     string
	BatchSize int
	Arrival   sim.Time
	Tenant    string

	// visits counts how many times this request has been passed over by
	// an out-of-order dispatch (Algorithm 1 line 15).
	visits int
}

// Visits returns the request's out-of-order skip count (exported for tests
// and metrics).
func (r *Request) Visits() int { return r.visits }

// Backend is the scheduler's view of the cluster, implemented by the
// cluster harness. All methods are queries; the scheduler performs no
// mutation through it.
type Backend interface {
	// GPUIDs returns every GPU in deterministic order.
	GPUIDs() []string
	// Busy reports whether the GPU is executing a request.
	Busy(gpuID string) bool
	// Cached reports whether the model is resident on the GPU.
	Cached(gpuID, model string) bool
	// GPUsCaching returns the GPUs caching the model, in deterministic
	// order (the Cache Manager's global index, §VI). The returned slice
	// may be a read-only view into backend state, valid only until the
	// next cache mutation; the scheduler consumes it within the call and
	// never mutates or retains it.
	GPUsCaching(model string) []string
	// EstimatedFinish returns the remaining execution time of the GPU's
	// in-flight request (zero when idle). The scheduler adds local-queue
	// inference times itself.
	EstimatedFinish(gpuID string, now sim.Time) time.Duration
	// LoadTime returns the profiled model-upload time on the GPU.
	LoadTime(gpuID, model string) time.Duration
	// InferTime returns the profiled inference latency on the GPU for
	// the batch size.
	InferTime(gpuID, model string, batch int) time.Duration
}

// IdleLister is an optional Backend extension. Backends that track busy
// transitions incrementally (the cluster harness does, from GPU status
// events) expose the current idle set here so Schedule iterates only the
// idle GPUs instead of scanning every GPU each round. The slice must be
// ordered consistently with GPUIDs and is treated as a read-only view
// valid for the duration of one Schedule call. Backends without the
// extension fall back to a Busy() scan.
type IdleLister interface {
	IdleGPUs() []string
}

// Dispatch is one decision returned by Schedule: run Req on GPU now.
// ExpectHit records whether the model was cached on the GPU at decision
// time (the harness re-validates at execution).
type Dispatch struct {
	Req       *Request
	GPU       string
	ExpectHit bool
	// FromLocalQueue marks a dispatch of a request that had been parked
	// in the GPU's local queue.
	FromLocalQueue bool
}

// Config configures a Scheduler.
type Config struct {
	Policy Policy
	// O3Limit is the starvation limit for LALBO3 (how many times a
	// request may be passed over before it is force-scheduled). It is
	// ignored for LB and LALB, whose effective limit is 0 (in-order).
	// Callers who want the paper's default pass DefaultO3Limit.
	O3Limit int
	// DisableLocalQueue turns off Algorithm 2's busy-GPU parking (lines
	// 8–15): requests whose model is cached only on busy GPUs always
	// miss onto an idle GPU instead of waiting. This is an ablation knob
	// quantifying the finish-time-estimation mechanism; the paper's
	// schedulers keep it enabled.
	DisableLocalQueue bool
}

// parked is one local-queue entry: the request plus its profiled
// inference time on the queue's GPU, captured at parking time so the
// estimated-finish sum is maintained incrementally instead of re-walking
// the queue per decision. Profiles are static, so the captured value
// equals a fresh lookup.
type parked struct {
	req   *Request
	infer time.Duration
}

// Scheduler implements the three policies over the Backend.
type Scheduler struct {
	policy  Policy
	limit   int
	noPark  bool
	backend Backend
	idle    IdleLister // non-nil when the backend tracks idle GPUs

	global []*Request
	local  map[string][]parked
	// localSum caches the summed inference time of each local queue,
	// updated on park/dispatch (Algorithm 2's estimated-finish tail).
	localSum map[string]time.Duration
	// draining marks GPUs being decommissioned: they still serve their
	// local queue (parked work completes where it was promised the cache
	// hit) but take no new global-queue work and attract no new parkings.
	draining map[string]bool

	// moves counts global→local-queue migrations (Algorithm 2 line 12).
	moves int64
	// o3Dispatches counts dispatches that jumped the queue.
	o3Dispatches int64
	// starved counts requests force-dispatched by the starvation limit.
	starved int64
}

// New creates a Scheduler. The backend must be non-nil.
func New(cfg Config, backend Backend) (*Scheduler, error) {
	if backend == nil {
		return nil, errors.New("core: nil backend")
	}
	limit := 0
	switch cfg.Policy {
	case LB, LALB:
		limit = 0
	case LALBO3:
		limit = cfg.O3Limit
		if limit < 0 {
			return nil, fmt.Errorf("core: negative O3 limit %d", limit)
		}
	default:
		return nil, fmt.Errorf("core: unknown policy %v", cfg.Policy)
	}
	il, _ := backend.(IdleLister)
	return &Scheduler{
		policy:   cfg.Policy,
		limit:    limit,
		noPark:   cfg.DisableLocalQueue,
		backend:  backend,
		idle:     il,
		local:    make(map[string][]parked),
		localSum: make(map[string]time.Duration),
		draining: make(map[string]bool),
	}, nil
}

// SetDraining marks (or clears) a GPU as draining. A draining GPU only
// dispatches from its own local queue; the global queue and the
// LocalityLoadBalance routine treat it as if it were not part of the
// cluster. The harness flips this while decommissioning a GPU that still
// has in-flight or parked work.
func (s *Scheduler) SetDraining(gpuID string, draining bool) {
	if draining {
		s.draining[gpuID] = true
		return
	}
	delete(s.draining, gpuID)
}

// Draining reports whether the GPU is draining.
func (s *Scheduler) Draining(gpuID string) bool { return s.draining[gpuID] }

// RemoveGPU forgets a decommissioned GPU's scheduler state. The GPU's
// local queue must be empty — the harness drains it before removal; a
// non-empty queue is an error so churn bugs surface instead of silently
// dropping requests.
func (s *Scheduler) RemoveGPU(gpuID string) error {
	if n := len(s.local[gpuID]); n != 0 {
		return fmt.Errorf("core: removing GPU %s with %d parked requests", gpuID, n)
	}
	delete(s.local, gpuID)
	delete(s.localSum, gpuID)
	delete(s.draining, gpuID)
	return nil
}

// PolicyName returns the configured policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// O3Limit returns the effective starvation limit.
func (s *Scheduler) O3Limit() int { return s.limit }

// Enqueue appends a request to the global queue. Requests must be
// enqueued in non-decreasing arrival order (the Gateway forwards them as
// they arrive).
func (s *Scheduler) Enqueue(r *Request) error {
	if r == nil {
		return errors.New("core: nil request")
	}
	if n := len(s.global); n > 0 && s.global[n-1].Arrival > r.Arrival {
		return fmt.Errorf("core: out-of-order enqueue: %v after %v", r.Arrival, s.global[n-1].Arrival)
	}
	s.global = append(s.global, r)
	return nil
}

// GlobalQueueLen returns the number of requests waiting in the global
// queue.
func (s *Scheduler) GlobalQueueLen() int { return len(s.global) }

// LocalQueueLen returns the number of requests parked at the GPU.
func (s *Scheduler) LocalQueueLen(gpuID string) int { return len(s.local[gpuID]) }

// PendingTotal returns all queued requests (global + local).
func (s *Scheduler) PendingTotal() int {
	n := len(s.global)
	for _, q := range s.local {
		n += len(q)
	}
	return n
}

// Counters reports scheduler-internal decision counts for the efficiency
// analyses.
type Counters struct {
	LocalQueueMoves int64
	O3Dispatches    int64
	Starved         int64
}

// Counters returns a snapshot of internal counters.
func (s *Scheduler) Counters() Counters {
	return Counters{LocalQueueMoves: s.moves, O3Dispatches: s.o3Dispatches, Starved: s.starved}
}

// EstimatedFinishWithQueue returns the busy GPU's estimated finish time
// including its local queue (§IV-A: "the time to wait for the busy GPU to
// finish its current request (and requests already queued in its local
// queue)"). The queue tail is the incrementally-maintained localSum, so
// this is O(1) regardless of queue depth.
func (s *Scheduler) EstimatedFinishWithQueue(gpuID string, now sim.Time) time.Duration {
	return s.backend.EstimatedFinish(gpuID, now) + s.localSum[gpuID]
}

// removeGlobal removes the request at index i from the global queue.
func (s *Scheduler) removeGlobal(i int) *Request {
	r := s.global[i]
	s.global = append(s.global[:i], s.global[i+1:]...)
	return r
}

// Schedule runs the configured policy to completion for the current
// cluster state: it keeps assigning requests until no idle GPU can accept
// one. The returned dispatches must be executed (GPUs become busy) by the
// caller; Busy() is expected to reflect each dispatch immediately, which
// the harness guarantees by marking the GPU reserved as it executes the
// decisions — to keep the scheduler self-contained it also tracks GPUs it
// has dispatched to within this call and treats them as busy.
func (s *Scheduler) Schedule(now sim.Time) []Dispatch {
	var out []Dispatch
	taken := make(map[string]bool) // GPUs consumed within this round
	busy := func(id string) bool { return taken[id] || s.backend.Busy(id) }

	// Backend busy state is stable for the duration of a Schedule call
	// (the harness executes the returned dispatches afterwards), so the
	// idle candidates are computed once; GPUs consumed mid-call are
	// filtered through taken.
	idle := s.idleCandidates()
	for {
		progressed := false
		for _, id := range idle {
			if busy(id) {
				continue
			}
			d, ok := s.scheduleIdleGPU(id, now, busy, taken)
			if ok {
				out = append(out, d...)
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// idleCandidates returns the idle GPUs in deterministic order: the
// backend's incremental idle set when available, otherwise a Busy scan
// over all GPUs (same order either way, so decisions are identical).
func (s *Scheduler) idleCandidates() []string {
	if s.idle != nil {
		return s.idle.IdleGPUs()
	}
	ids := s.backend.GPUIDs()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if !s.backend.Busy(id) {
			out = append(out, id)
		}
	}
	return out
}

// scheduleIdleGPU implements Algorithm 1 for one idle GPU. It returns the
// dispatches produced while trying to occupy this GPU (the LLB routine may
// also dispatch requests to *other* idle GPUs) and whether any dispatch or
// queue movement happened.
func (s *Scheduler) scheduleIdleGPU(gpuID string, now sim.Time, busy func(string) bool, taken map[string]bool) ([]Dispatch, bool) {
	// Lines 2–4: prioritize the local queue.
	if q := s.local[gpuID]; len(q) > 0 {
		p := q[0]
		s.local[gpuID] = q[1:]
		s.localSum[gpuID] -= p.infer
		taken[gpuID] = true
		return []Dispatch{{
			Req: p.req, GPU: gpuID,
			ExpectHit:      s.backend.Cached(gpuID, p.req.Model),
			FromLocalQueue: true,
		}}, true
	}
	if s.draining[gpuID] {
		// A draining GPU with an empty local queue takes no new work.
		return nil, false
	}
	if len(s.global) == 0 {
		return nil, false
	}

	// Baseline LB: head of queue to this idle GPU, no locality.
	if s.policy == LB {
		r := s.removeGlobal(0)
		taken[gpuID] = true
		return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: s.backend.Cached(gpuID, r.Model)}}, true
	}

	// Lines 6–16: look for a request whose model is cached on this GPU,
	// enforcing the out-of-order starvation limit along the way.
	var all []Dispatch
	i := 0
	for i < len(s.global) {
		r := s.global[i]
		if s.backend.Cached(gpuID, r.Model) {
			s.removeGlobal(i)
			taken[gpuID] = true
			if i > 0 {
				s.o3Dispatches++
			}
			all = append(all, Dispatch{Req: r, GPU: gpuID, ExpectHit: true})
			return all, true
		}
		if r.visits >= s.limit {
			// Starvation limit reached (or limit==0, i.e. plain LALB
			// considering the head in order): schedule it now via
			// LocalityLoadBalance.
			if r.visits > 0 && s.limit > 0 {
				s.starved++
			}
			d, tookThis := s.llb(gpuID, i, now, busy, taken)
			all = append(all, d...)
			if tookThis {
				return all, true
			}
			// Request left the queue for another GPU; the element at
			// index i is now a different request — re-examine it.
			continue
		}
		r.visits++
		i++
	}
	// Lines 17–22: no queued request has its model cached here — drain
	// through LocalityLoadBalance until this GPU takes one.
	for len(s.global) > 0 {
		before := len(s.global)
		d, tookThis := s.llb(gpuID, 0, now, busy, taken)
		all = append(all, d...)
		if tookThis {
			return all, true
		}
		if len(s.global) == before {
			// llb always removes the request; guard against spinning if
			// that invariant is ever broken.
			break
		}
	}
	return all, len(all) > 0
}

// llb implements Algorithm 2 (function LocalityLoadBalance) for the
// request at global-queue index idx, considering idle GPU gpuID. It
// returns the dispatches performed and whether gpuID itself was taken.
func (s *Scheduler) llb(gpuID string, idx int, now sim.Time, busy func(string) bool, taken map[string]bool) ([]Dispatch, bool) {
	r := s.global[idx]
	holders := s.backend.GPUsCaching(r.Model)

	// Line 1–3: model cached nowhere — cache miss on the selected idle
	// GPU.
	if len(holders) == 0 {
		s.removeGlobal(idx)
		taken[gpuID] = true
		return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: false}}, true
	}

	// Line 4–6: model cached on another idle GPU — dispatch there (a
	// cache hit); the selected GPU stays idle. Draining holders are
	// skipped: their residents are on the way out.
	for _, h := range holders {
		if s.draining[h] {
			continue
		}
		if h == gpuID {
			// The caller only reaches llb when the model is not cached
			// on gpuID, but handle it for robustness: hit right here.
			s.removeGlobal(idx)
			taken[gpuID] = true
			return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: true}}, true
		}
		if !busy(h) {
			s.removeGlobal(idx)
			taken[h] = true
			return []Dispatch{{Req: r, GPU: h, ExpectHit: true}}, false
		}
	}

	// Lines 8–15: model cached only on busy GPUs. Find the busy holder
	// with the smallest estimated finish time; if waiting for it beats
	// paying the model-load time on the idle GPU, park the request in
	// that GPU's local queue. (Skipped entirely under the
	// DisableLocalQueue ablation.)
	if !s.noPark {
		bestGPU := ""
		var bestFinish time.Duration
		for _, h := range holders {
			if s.draining[h] {
				continue
			}
			fin := s.EstimatedFinishWithQueue(h, now)
			if bestGPU == "" || fin < bestFinish {
				bestGPU, bestFinish = h, fin
			}
		}
		if bestGPU != "" && bestFinish < s.backend.LoadTime(gpuID, r.Model) {
			s.removeGlobal(idx)
			infer := s.backend.InferTime(bestGPU, r.Model, r.BatchSize)
			s.local[bestGPU] = append(s.local[bestGPU], parked{req: r, infer: infer})
			s.localSum[bestGPU] += infer
			s.moves++
			return nil, false
		}
	}

	// Lines 16–18: allow the cache miss on the idle GPU.
	s.removeGlobal(idx)
	taken[gpuID] = true
	return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: false}}, true
}
