// Package core implements the paper's primary contribution: the global
// function Scheduler with its three policies (§IV):
//
//   - LB — the baseline load-balancing scheduler: "simply dispatches the
//     request at the head of the global queue whenever a GPU becomes idle"
//     (§V-A);
//   - LALB — locality-aware load balancing (Algorithm 1 + Algorithm 2):
//     prefer idle GPUs that already cache the request's model; when only a
//     busy GPU caches it, compare that GPU's estimated finish time against
//     the model-load time and queue locally when the busy hit wins;
//   - LALB+O3 — LALB with out-of-order dispatch: a waiting request whose
//     model is cached on an idle GPU may be dispatched ahead of earlier
//     arrivals, bounded by a starvation limit (default 25 skips, §IV-B).
//
// The Scheduler maintains the paper's queue topology (Fig. 3): one
// system-wide global queue ordered by arrival, plus one local queue per
// GPU holding requests that were scheduled to a busy GPU and wait there.
// When a GPU becomes idle it always serves its local queue before the
// global queue (Algorithm 1 lines 2–4).
//
// The Scheduler is a passive decision engine: Schedule(now) inspects the
// cluster through the Backend interface and returns the dispatch decisions
// for the harness (simulated or live) to execute. It is not safe for
// concurrent use; callers serialize.
//
// Hot-path representation: GPUs are identified by dense registration
// ordinals (ordset.Ord, interned once at cluster registration) rather
// than strings. Per-GPU state — local queues, queue-time sums, the
// draining set, the per-round taken set — lives in Ord-indexed slices and
// an epoch-stamped array instead of map[string]s, the global queue is a
// ring-buffer deque with tombstoned O(1) mid-queue removal, and the
// dispatch slice is pooled across Schedule calls.
//
// Placement selection is indexed: a per-model list of queued positions
// answers "first queued request whose model is cached on this GPU" in
// O(distinct queued models) instead of an O(queue) walk, the
// LocalityLoadBalance idle-holder pick walks the smaller of (idle set,
// holder list), and the busy-holder finish-time argmin is memoized per
// (round, model) over round-frozen finish estimates. All of it is
// decision-identical to the straight scan, which is retained behind
// Config.ScanPlacement as the reference baseline (benchmarked as the
// `scan` rows, cross-checked by TestScheduleEquivalence). The load-
// bearing invariant is that a request's out-of-order skip count is
// non-increasing along the live queue — every scan increments a clean
// prefix — so the only position that can trip the starvation limit is
// the queue head, and the skip bump is a uniform prefix increment.
//
// Batching (Config.MaxBatch > 1): whatever request a policy decides to
// dispatch, the scheduler then drains up to MaxBatch-1 further queued
// requests of the same model — in arrival order, via the same per-model
// position index — into the dispatch's Batch, and the harness executes
// the group as one load + one batched inference. Extraction of batch
// members preserves the monotone-skip invariant (a subsequence of a
// non-increasing sequence is non-increasing), so the O3 starvation
// machinery is untouched. MaxBatch <= 1 short-circuits every batching
// branch: the decision sequence is bit-for-bit the legacy one.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gpufaas/internal/ordset"
	"gpufaas/internal/sim"
)

// Ord is the dense GPU registration ordinal (see ordset.Ord). Ordinals
// are assigned monotonically at registration and never reused.
type Ord = ordset.Ord

// Policy selects the scheduling algorithm.
type Policy int

// Scheduling policies.
const (
	// LB is the default load-balancing baseline.
	LB Policy = iota
	// LALB is locality-aware load balancing with in-order dispatch.
	LALB
	// LALBO3 is LALB with out-of-order dispatch.
	LALBO3
)

// String returns the policy name as used in the paper's figures.
func (p Policy) String() string {
	switch p {
	case LB:
		return "LB"
	case LALB:
		return "LALB"
	case LALBO3:
		return "LALBO3"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name to a Policy. Each policy is accepted
// in its canonical upper-case figure spelling ("LB", "LALB", "LALBO3",
// "LALB+O3") or all-lower-case ("lb", "lalb", "lalbo3"); mixed case is
// rejected.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "LB", "lb":
		return LB, nil
	case "LALB", "lalb":
		return LALB, nil
	case "LALBO3", "lalbo3", "LALB+O3":
		return LALBO3, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q", s)
	}
}

// DefaultO3Limit is the paper's default starvation limit for out-of-order
// dispatch (§IV-B).
const DefaultO3Limit = 25

// Request is a function invocation as seen by the scheduler.
type Request struct {
	ID        int64
	Function  string
	Model     string
	BatchSize int
	Arrival   sim.Time
	Tenant    string

	// Attempt counts execution attempts lost to GPU failures: 0 until
	// the first interrupt, incremented by the harness each time an
	// in-flight attempt is interrupted. The retry policy bounds it.
	Attempt int

	// visits counts how many times this request has been passed over by
	// an out-of-order dispatch (Algorithm 1 line 15).
	visits int
}

// RetryPolicy bounds how many times a request interrupted by a GPU
// failure may be re-executed (§ fault model). GPU-seconds are charged
// per attempt; the policy caps the total attempts, not the charges.
type RetryPolicy struct {
	// MaxAttempts is the total number of execution attempts allowed,
	// first try included. <= 1 disables retry: an interrupted request
	// fails immediately.
	MaxAttempts int
}

// Allows reports whether a request that has lost `attempt` attempts may
// be re-queued for another.
func (p RetryPolicy) Allows(attempt int) bool { return attempt < p.MaxAttempts }

// Enabled reports whether the policy grants any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Visits returns the request's out-of-order skip count (exported for tests
// and metrics).
func (r *Request) Visits() int { return r.visits }

// Backend is the scheduler's view of the cluster, implemented by the
// cluster harness. All methods are queries; the scheduler performs no
// mutation through it. GPUs are addressed by their dense registration
// ordinal; OrdOf/IDOf translate at the (cold) string boundary.
type Backend interface {
	// Ords returns the current members' ordinals in registration order.
	// Only the no-IdleLister fallback path iterates it.
	Ords() []Ord
	// OrdBound returns one past the highest ordinal ever assigned
	// (monotone; sizes the scheduler's Ord-indexed state).
	OrdBound() Ord
	// OrdOf resolves a GPU ID to its ordinal.
	OrdOf(gpuID string) (Ord, bool)
	// IDOf returns the GPU ID for a live ordinal (interned: the returned
	// string is shared, not allocated per call).
	IDOf(o Ord) string
	// Busy reports whether the GPU is executing a request.
	Busy(o Ord) bool
	// Cached reports whether the model is resident on the GPU.
	Cached(o Ord, model string) bool
	// GPUsCaching returns the ordinals of the GPUs caching the model in
	// ascending order — registration order, the Cache Manager's global
	// index (§VI). The returned slice may be a read-only view into
	// backend state, valid only until the next cache mutation; the
	// scheduler consumes it within the call and never mutates or retains
	// it.
	GPUsCaching(model string) []Ord
	// EstimatedFinish returns the remaining execution time of the GPU's
	// in-flight request (zero when idle). The scheduler adds local-queue
	// inference times itself.
	EstimatedFinish(o Ord, now sim.Time) time.Duration
	// LoadTime returns the profiled model-upload time on the GPU.
	LoadTime(o Ord, model string) time.Duration
	// InferTime returns the profiled inference latency on the GPU for
	// the batch size.
	InferTime(o Ord, model string, batch int) time.Duration
}

// IdleLister is an optional Backend extension. Backends that track busy
// transitions incrementally (the cluster harness does, from GPU status
// events) expose the current idle set here so Schedule iterates only the
// idle GPUs instead of scanning every GPU each round. The slice must be
// ascending (registration order) and is treated as a read-only view valid
// for the duration of one Schedule call. Backends without the extension
// fall back to a Busy() scan over Ords().
type IdleLister interface {
	IdleOrds() []Ord
}

// Dispatch is one decision returned by Schedule: run Req on GPU now.
// ExpectHit records whether the model was cached on the GPU at decision
// time (the harness re-validates at execution).
type Dispatch struct {
	Req       *Request
	GPU       string
	ExpectHit bool
	// FromLocalQueue marks a dispatch of a request that had been parked
	// in the GPU's local queue.
	FromLocalQueue bool
	// Batch holds the additional same-model requests coalesced into this
	// dispatch (Config.MaxBatch > 1), in arrival order; nil for a plain
	// single-request dispatch. The harness executes Req and every Batch
	// member as one batched launch. Like the Schedule result slice, the
	// backing array is pooled — valid until the next Schedule call.
	Batch []*Request
}

// Members returns the total request count of the dispatch (1 + extras).
func (d Dispatch) Members() int { return 1 + len(d.Batch) }

// Config configures a Scheduler.
type Config struct {
	Policy Policy
	// O3Limit is the starvation limit for LALBO3 (how many times a
	// request may be passed over before it is force-scheduled). It is
	// ignored for LB and LALB, whose effective limit is 0 (in-order).
	// Callers who want the paper's default pass DefaultO3Limit.
	O3Limit int
	// DisableLocalQueue turns off Algorithm 2's busy-GPU parking (lines
	// 8–15): requests whose model is cached only on busy GPUs always
	// miss onto an idle GPU instead of waiting. This is an ablation knob
	// quantifying the finish-time-estimation mechanism; the paper's
	// schedulers keep it enabled.
	DisableLocalQueue bool
	// ScanPlacement selects the straight-scan placement path (per-request
	// queue walk, linear holder argmin) instead of the indexed one. Both
	// produce identical dispatch sequences; the scan path exists as the
	// reference baseline for the schedule-round benchmarks and the
	// equivalence suite.
	ScanPlacement bool
	// MaxBatch caps how many same-model requests one dispatch may
	// coalesce into a single batched execution. <= 1 disables coalescing
	// entirely: the scheduler takes exactly the legacy single-dispatch
	// path and its decisions (and the harness reports) are byte-identical
	// to a build without batching.
	MaxBatch int
	// BatchWait is an optional linger window on the sim clock: while the
	// head of the global queue has fewer than MaxBatch same-model
	// requests queued behind it AND has waited less than BatchWait since
	// arrival, idle GPUs decline global work so the batch can fill.
	// Callers that set it must re-run Schedule at PendingWake deadlines
	// (the cluster harness arms a clock event). Zero dispatches every
	// batch as soon as a GPU frees up, whatever its size. Ignored when
	// MaxBatch <= 1.
	BatchWait time.Duration
}

// parked is one local-queue entry: the request plus its profiled
// inference time on the queue's GPU, captured at parking time so the
// estimated-finish sum is maintained incrementally instead of re-walking
// the queue per decision. Profiles are static, so the captured value
// equals a fresh lookup.
type parked struct {
	req   *Request
	infer time.Duration
}

// posList tracks the ascending absolute ring positions of one model's
// queued requests. Pushes arrive in increasing position order (arrival
// order); removals are arbitrary. Front removals advance a start cursor
// (the common case: dispatch order tracks arrival order) and the dead
// prefix is compacted away once it outgrows the live tail.
type posList struct {
	pos   []int
	start int
}

func (l *posList) push(p int) { l.pos = append(l.pos, p) }

func (l *posList) empty() bool { return l.start >= len(l.pos) }

// first returns the smallest tracked position >= from, or -1.
func (l *posList) first(from int) int {
	a := l.pos[l.start:]
	i := sort.SearchInts(a, from)
	if i == len(a) {
		return -1
	}
	return a[i]
}

// remove drops a tracked position.
func (l *posList) remove(p int) {
	a := l.pos[l.start:]
	i := 0
	if a[0] != p { // head removal is the common case; search otherwise
		i = sort.SearchInts(a, p)
	}
	if i == 0 {
		l.start++
		if l.start >= len(l.pos) {
			l.pos = l.pos[:0]
			l.start = 0
		} else if l.start > len(l.pos)-l.start {
			l.pos = append(l.pos[:0], l.pos[l.start:]...)
			l.start = 0
		}
		return
	}
	copy(a[i:], a[i+1:])
	l.pos = l.pos[:len(l.pos)-1]
}

// llbMemo caches one model's busy-holder argmin for the duration of a
// round: holder sets and backend finish estimates are frozen while
// Schedule runs, so the result only changes when a local-queue sum does
// (tracked by parkGen).
type llbMemo struct {
	epoch uint32
	gen   uint64
	ord   Ord
	fin   time.Duration
}

// bitset is a fixed-capacity Ord-indexed bit array.
type bitset []uint64

func (b bitset) get(o Ord) bool { return b[o>>6]&(1<<(uint(o)&63)) != 0 }
func (b bitset) set(o Ord)      { b[o>>6] |= 1 << (uint(o) & 63) }
func (b bitset) clear(o Ord)    { b[o>>6] &^= 1 << (uint(o) & 63) }
func bitsetSize(bound Ord) int  { return (int(bound) + 63) / 64 }

// Scheduler implements the three policies over the Backend.
type Scheduler struct {
	policy  Policy
	limit   int
	noPark  bool
	backend Backend
	idle    IdleLister // non-nil when the backend tracks idle GPUs

	// global is the system-wide arrival-ordered queue: a ring-buffer
	// deque with tombstoned removal, so out-of-order extraction (O3
	// jumps, LLB placements) is O(1) instead of a slice splice.
	global reqRing

	// Ord-indexed per-GPU state, sized by the backend's OrdBound and
	// grown lazily as elastic membership raises the bound.
	local    [][]parked // local[o]: requests parked at GPU o
	localSum []time.Duration
	draining bitset

	// takenEpoch marks GPUs consumed within the current Schedule round:
	// takenEpoch[o] == epoch means taken. Bumping epoch resets the whole
	// set in O(1) — no per-round map allocation or clearing pass.
	takenEpoch []uint32
	epoch      uint32

	// out is the pooled dispatch slice returned by Schedule, valid until
	// the next Schedule call.
	out []Dispatch
	// idleScratch backs the fallback (no IdleLister) candidate scan.
	idleScratch []Ord

	// Indexed-placement state (unused under scanPlacement).
	scanPlacement bool
	// indexed flips on the first time the global queue crosses
	// indexActivateLen and stays on: a shallow steady-state queue keeps
	// the zero-overhead walk (the index would cost more to maintain
	// than the one-position scan it replaces), while deep queues build
	// the index once — O(threshold) — and maintain it incrementally.
	indexed bool
	// byModel maps each queued model to its ascending queue positions;
	// maintained on enqueue/extract, rebuilt when the ring compacts
	// (ringVer tracks reqRing.ver). Emptied lists stay in the map (the
	// steady path drains and re-fills one model every round — deleting
	// and re-inserting the entry would dominate the decision cost) and
	// are pruned into plFree only once empties outnumber live lists
	// 4:1, keeping the per-scan model iteration proportional to the
	// queued mix.
	byModel    map[string]*posList
	liveModels int
	plFree     []*posList
	ringVer    int
	// lastModel/lastPL short-circuit the byModel lookup for the model
	// touched by the previous index operation — the steady enqueue →
	// dispatch cycle hits one model twice in a row.
	lastModel string
	lastPL    *posList
	// roundIdle is the frozen idle candidate list of the current round
	// (backend busy state is stable for the duration of a Schedule call).
	roundIdle []Ord
	// estVal/estEpoch memoize backend.EstimatedFinish per ordinal within
	// a round; memo/parkGen memoize the per-model busy-holder argmin
	// until a local-queue sum changes.
	estVal   []time.Duration
	estEpoch []uint32
	memo     map[string]llbMemo
	parkGen  uint64

	// Batching (Config.MaxBatch > 1): coalesce same-model queue runs
	// into one dispatch. batchFree pools the member slices handed out
	// through Dispatch.Batch (reclaimed at the next Schedule call, the
	// same lifetime contract as s.out); pendingWake is the earliest
	// linger deadline the last Schedule call declined work for.
	maxBatch    int
	batchWait   time.Duration
	batchFree   [][]*Request
	pendingWake sim.Time
	hasWake     bool

	// moves counts global→local-queue migrations (Algorithm 2 line 12).
	moves int64
	// o3Dispatches counts dispatches that jumped the queue.
	o3Dispatches int64
	// starved counts requests force-dispatched by the starvation limit.
	starved int64
	// batchedDispatches counts dispatches that coalesced >= 2 requests;
	// batchedMembers counts the extra (non-primary) requests they carried.
	batchedDispatches int64
	batchedMembers    int64
	// peakLocal is the deepest any single local queue has grown, the
	// capacity-planning companion to sim.Engine.MaxQueueLen.
	peakLocal int
}

// New creates a Scheduler. The backend must be non-nil.
func New(cfg Config, backend Backend) (*Scheduler, error) {
	if backend == nil {
		return nil, errors.New("core: nil backend")
	}
	limit := 0
	switch cfg.Policy {
	case LB, LALB:
		limit = 0
	case LALBO3:
		limit = cfg.O3Limit
		if limit < 0 {
			return nil, fmt.Errorf("core: negative O3 limit %d", limit)
		}
	default:
		return nil, fmt.Errorf("core: unknown policy %v", cfg.Policy)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("core: negative MaxBatch %d", cfg.MaxBatch)
	}
	if cfg.BatchWait < 0 {
		return nil, fmt.Errorf("core: negative BatchWait %v", cfg.BatchWait)
	}
	il, _ := backend.(IdleLister)
	s := &Scheduler{
		policy:        cfg.Policy,
		limit:         limit,
		noPark:        cfg.DisableLocalQueue,
		backend:       backend,
		idle:          il,
		scanPlacement: cfg.ScanPlacement,
		maxBatch:      cfg.MaxBatch,
		batchWait:     cfg.BatchWait,
	}
	if !s.scanPlacement {
		s.memo = make(map[string]llbMemo)
	}
	s.grow(backend.OrdBound())
	return s, nil
}

// indexActivateLen is the global-queue depth at which the per-model
// position index switches on (and stays on). Below it, the plain walk
// touches fewer positions than the index bookkeeping would.
const indexActivateLen = 64

// grow extends the Ord-indexed state to cover ordinals < bound (elastic
// membership only ever raises the bound).
func (s *Scheduler) grow(bound Ord) {
	for Ord(len(s.local)) < bound {
		s.local = append(s.local, nil)
	}
	for Ord(len(s.localSum)) < bound {
		s.localSum = append(s.localSum, 0)
	}
	for Ord(len(s.takenEpoch)) < bound {
		s.takenEpoch = append(s.takenEpoch, 0)
	}
	for Ord(len(s.estEpoch)) < bound {
		s.estEpoch = append(s.estEpoch, 0)
		s.estVal = append(s.estVal, 0)
	}
	for len(s.draining) < bitsetSize(bound) {
		s.draining = append(s.draining, 0)
	}
}

// syncBound refreshes the Ord-indexed state against the backend's current
// bound; call before any ord-indexed access on externally-driven paths.
func (s *Scheduler) syncBound() { s.grow(s.backend.OrdBound()) }

// SetDraining marks (or clears) a GPU as draining. A draining GPU only
// dispatches from its own local queue; the global queue and the
// LocalityLoadBalance routine treat it as if it were not part of the
// cluster. The harness flips this while decommissioning a GPU that still
// has in-flight or parked work. Unknown GPUs are a no-op.
func (s *Scheduler) SetDraining(gpuID string, draining bool) {
	o, ok := s.backend.OrdOf(gpuID)
	if !ok {
		return
	}
	s.syncBound()
	if draining {
		s.draining.set(o)
		return
	}
	s.draining.clear(o)
}

// Draining reports whether the GPU is draining.
func (s *Scheduler) Draining(gpuID string) bool {
	o, ok := s.backend.OrdOf(gpuID)
	if !ok || int(o)>>6 >= len(s.draining) {
		return false
	}
	return s.draining.get(o)
}

// RemoveGPU forgets a decommissioned GPU's scheduler state. The GPU's
// local queue must be empty — the harness drains it before removal; a
// non-empty queue is an error so churn bugs surface instead of silently
// dropping requests. The GPU must still resolve through the backend (the
// harness removes scheduler state before deregistering the ID).
func (s *Scheduler) RemoveGPU(gpuID string) error {
	o, ok := s.backend.OrdOf(gpuID)
	if !ok {
		return nil
	}
	s.syncBound()
	if n := len(s.local[o]); n != 0 {
		return fmt.Errorf("core: removing GPU %s with %d parked requests", gpuID, n)
	}
	s.local[o] = nil
	s.localSum[o] = 0
	s.draining.clear(o)
	return nil
}

// PolicyName returns the configured policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// O3Limit returns the effective starvation limit.
func (s *Scheduler) O3Limit() int { return s.limit }

// Enqueue appends a request to the global queue. Requests must be
// enqueued in non-decreasing arrival order (the Gateway forwards them as
// they arrive). The skip count starts at zero — a request enters the
// queue fresh, which is what keeps skip counts non-increasing along the
// queue (the invariant the indexed placement path builds on).
func (s *Scheduler) Enqueue(r *Request) error {
	if r == nil {
		return errors.New("core: nil request")
	}
	r.visits = 0
	if last := s.global.last(); last != nil && last.Arrival > r.Arrival {
		return fmt.Errorf("core: out-of-order enqueue: %v after %v", r.Arrival, last.Arrival)
	}
	s.global.push(r)
	if s.indexed {
		if s.global.ver != s.ringVer {
			// The push compacted the ring, renumbering every position:
			// rebuild the per-model index (the walk is the same O(n) the
			// compaction itself just paid, and includes this request).
			s.rebuildIndex()
		} else {
			s.indexAdd(r.Model, s.global.tail-1)
		}
	} else if s.global.len() >= indexActivateLen {
		// Only out-of-order dispatch (limit > 0) and batch coalescing
		// (MaxBatch > 1) ever look past the head for a same-model
		// request; LB and in-order LALB without batching keep the index
		// off — it would be pure maintenance overhead.
		if !s.scanPlacement && (s.limit > 0 || s.maxBatch > 1) {
			s.activateIndex()
		}
	}
	return nil
}

// Requeue returns an interrupted request to the FRONT of the global
// queue. The request already waited its arrival-order turn once, so a
// GPU failure must not send it to the back behind later arrivals; the
// front position is also deterministic — a pure function of the fault
// schedule, independent of worker count. The skip count is reset to the
// current head's, which preserves the monotone-skip invariant (visit
// counts non-increasing along the queue) the indexed placement path
// relies on. Failures are rare, so the per-model index is simply
// rebuilt rather than taught about front insertion.
func (s *Scheduler) Requeue(r *Request) error {
	if r == nil {
		return errors.New("core: nil request")
	}
	r.visits = 0
	if s.global.len() > 0 {
		r.visits = s.global.at(s.global.headPos()).visits
	}
	s.global.pushFront(r)
	if s.indexed {
		s.rebuildIndex()
	}
	return nil
}

// DrainLocal removes and returns every request parked in the GPU's
// local queue, in parking (FIFO) order; nil when none. The failure path
// uses it: a crashed GPU's parked requests never began executing, so
// they re-enter the global queue without consuming a retry attempt.
func (s *Scheduler) DrainLocal(gpuID string) []*Request {
	o, ok := s.backend.OrdOf(gpuID)
	if !ok || int(o) >= len(s.local) || len(s.local[o]) == 0 {
		return nil
	}
	q := s.local[o]
	out := make([]*Request, len(q))
	for i, p := range q {
		out[i] = p.req
	}
	s.local[o] = nil
	s.localSum[o] = 0
	s.parkGen++
	return out
}

// activateIndex switches the per-model position index on (idempotent;
// a no-op under ScanPlacement). Exposed to tests so the equivalence
// suite can exercise the indexed path below the activation depth.
func (s *Scheduler) activateIndex() {
	if s.indexed || s.scanPlacement {
		return
	}
	s.indexed = true
	if s.byModel == nil {
		s.byModel = make(map[string]*posList)
	}
	s.rebuildIndex()
}

// indexAdd records a queued request's position under its model.
func (s *Scheduler) indexAdd(model string, pos int) {
	pl := s.lastPL
	if pl == nil || s.lastModel != model {
		var ok bool
		pl, ok = s.byModel[model]
		if !ok {
			if n := len(s.plFree); n > 0 {
				pl = s.plFree[n-1]
				s.plFree[n-1] = nil
				s.plFree = s.plFree[:n-1]
			} else {
				pl = &posList{}
			}
			s.byModel[model] = pl
		}
		s.lastModel, s.lastPL = model, pl
	}
	if pl.empty() {
		s.liveModels++
	}
	pl.push(pos)
}

// rebuildIndex reconstructs the per-model position index from the ring,
// recycling the displaced lists (ring compaction is now routine under
// deep queues; the rebuild must not churn the heap).
func (s *Scheduler) rebuildIndex() {
	for _, pl := range s.byModel {
		pl.pos = pl.pos[:0]
		pl.start = 0
		s.plFree = append(s.plFree, pl)
	}
	clear(s.byModel)
	s.lastPL = nil
	s.liveModels = 0
	for p := s.global.head; p < s.global.tail; p++ {
		if r := s.global.at(p); r != nil {
			s.indexAdd(r.Model, p)
		}
	}
	s.ringVer = s.global.ver
}

// extract removes the live request at a position, keeping the per-model
// index in sync. Every indexed-path extraction goes through here; the
// scan path mutates the ring directly (it has no index to maintain).
func (s *Scheduler) extract(pos int) *Request {
	r := s.global.remove(pos)
	if s.indexed {
		pl := s.lastPL
		if pl == nil || s.lastModel != r.Model {
			pl = s.byModel[r.Model]
			s.lastModel, s.lastPL = r.Model, pl
		}
		pl.remove(pos)
		if pl.empty() {
			s.liveModels--
			if n := len(s.byModel); n > 32 && n > 4*s.liveModels {
				s.pruneIndex()
			}
		}
	}
	return r
}

// pruneIndex drops emptied per-model lists once they outnumber live
// ones 4:1, recycling them through the free list. Amortized: a prune
// only runs after at least as many emptying extractions.
func (s *Scheduler) pruneIndex() {
	for model, pl := range s.byModel {
		if pl.empty() {
			delete(s.byModel, model)
			pl.pos = pl.pos[:0]
			pl.start = 0
			s.plFree = append(s.plFree, pl)
		}
	}
	s.lastPL = nil
}

// GlobalQueueLen returns the number of requests waiting in the global
// queue.
func (s *Scheduler) GlobalQueueLen() int { return s.global.len() }

// LocalQueueLen returns the number of requests parked at the GPU.
func (s *Scheduler) LocalQueueLen(gpuID string) int {
	o, ok := s.backend.OrdOf(gpuID)
	if !ok || int(o) >= len(s.local) {
		return 0
	}
	return len(s.local[o])
}

// PendingTotal returns all queued requests (global + local).
func (s *Scheduler) PendingTotal() int {
	n := s.global.len()
	for _, q := range s.local {
		n += len(q)
	}
	return n
}

// Counters reports scheduler-internal decision counts for the efficiency
// analyses.
type Counters struct {
	LocalQueueMoves int64
	O3Dispatches    int64
	Starved         int64
	// PeakLocalQueue is the deepest any single GPU's local queue grew.
	PeakLocalQueue int
	// BatchedDispatches counts dispatches that coalesced two or more
	// requests into one launch; BatchedMembers counts the extra
	// (non-primary) requests those dispatches carried. Both stay zero
	// with MaxBatch <= 1.
	BatchedDispatches int64
	BatchedMembers    int64
}

// Counters returns a snapshot of internal counters.
func (s *Scheduler) Counters() Counters {
	return Counters{
		LocalQueueMoves:   s.moves,
		O3Dispatches:      s.o3Dispatches,
		Starved:           s.starved,
		PeakLocalQueue:    s.peakLocal,
		BatchedDispatches: s.batchedDispatches,
		BatchedMembers:    s.batchedMembers,
	}
}

// EstimatedFinishWithQueue returns the busy GPU's estimated finish time
// including its local queue (§IV-A: "the time to wait for the busy GPU to
// finish its current request (and requests already queued in its local
// queue)"). The queue tail is the incrementally-maintained localSum, so
// this is O(1) regardless of queue depth.
func (s *Scheduler) EstimatedFinishWithQueue(gpuID string, now sim.Time) time.Duration {
	o, ok := s.backend.OrdOf(gpuID)
	if !ok {
		return 0
	}
	s.syncBound()
	return s.estFinish(o, now)
}

// estFinish is EstimatedFinishWithQueue on the ord-indexed hot path.
func (s *Scheduler) estFinish(o Ord, now sim.Time) time.Duration {
	return s.backend.EstimatedFinish(o, now) + s.localSum[o]
}

// taken reports whether the GPU was consumed earlier in this round.
func (s *Scheduler) taken(o Ord) bool { return s.takenEpoch[o] == s.epoch }

// markTaken consumes the GPU for the rest of this round.
func (s *Scheduler) markTaken(o Ord) { s.takenEpoch[o] = s.epoch }

// busyOrTaken folds the backend's busy state with this round's takes.
func (s *Scheduler) busyOrTaken(o Ord) bool { return s.taken(o) || s.backend.Busy(o) }

// Schedule runs the configured policy to completion for the current
// cluster state: it keeps assigning requests until no idle GPU can accept
// one. The returned dispatches must be executed (GPUs become busy) by the
// caller; Busy() is expected to reflect each dispatch immediately, which
// the harness guarantees by marking the GPU reserved as it executes the
// decisions — to keep the scheduler self-contained it also tracks GPUs it
// has dispatched to within this call and treats them as busy.
//
// The returned slice is pooled: it is valid until the next Schedule call
// on this Scheduler, and callers that retain dispatches across rounds
// must copy them out.
func (s *Scheduler) Schedule(now sim.Time) []Dispatch {
	s.syncBound()
	if s.maxBatch > 1 {
		// Reclaim the member slices the previous round handed out
		// through Dispatch.Batch (same pooled lifetime as s.out) and
		// reset the linger deadline for this round.
		for i := range s.out {
			if b := s.out[i].Batch; b != nil {
				clear(b)
				s.batchFree = append(s.batchFree, b[:0])
			}
		}
		s.hasWake = false
		s.pendingWake = 0
	}
	s.out = s.out[:0]
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could read as taken/fresh
		clear(s.takenEpoch)
		clear(s.estEpoch)
		clear(s.memo)
		s.epoch = 1
	}

	// Backend busy state is stable for the duration of a Schedule call
	// (the harness executes the returned dispatches afterwards), so the
	// idle candidates are computed once; GPUs consumed mid-call are
	// filtered through the epoch-stamped taken set.
	idle := s.idleCandidates()
	s.roundIdle = idle
	for {
		progressed := false
		for _, o := range idle {
			if s.busyOrTaken(o) {
				continue
			}
			if s.scheduleIdleGPU(o, now) {
				progressed = true
			}
		}
		if !progressed {
			return s.out
		}
	}
}

// idleCandidates returns the idle GPUs in deterministic order: the
// backend's incremental idle set when available, otherwise a Busy scan
// over all GPUs (same order either way, so decisions are identical).
func (s *Scheduler) idleCandidates() []Ord {
	if s.idle != nil {
		return s.idle.IdleOrds()
	}
	s.idleScratch = s.idleScratch[:0]
	for _, o := range s.backend.Ords() {
		if !s.backend.Busy(o) {
			s.idleScratch = append(s.idleScratch, o)
		}
	}
	return s.idleScratch
}

// PendingWake returns the earliest BatchWait linger deadline the last
// Schedule call declined global work for, and whether one exists. The
// harness arms a clock event at that time and re-runs Schedule so a
// lingering batch is eventually dispatched even if no completion or
// arrival lands first.
func (s *Scheduler) PendingWake() (sim.Time, bool) { return s.pendingWake, s.hasWake }

// lingerHold reports whether idle GPUs should decline global work this
// round: the head of the global queue is still inside its BatchWait
// window and fewer than MaxBatch same-model requests are queued. The
// gate watches only the head — the request every policy examines first —
// so it is deterministic and bounded: the head dispatches no later than
// Arrival+BatchWait, whatever its batch filled to.
func (s *Scheduler) lingerHold(now sim.Time) bool {
	if s.maxBatch <= 1 || s.batchWait <= 0 || s.global.len() == 0 {
		return false
	}
	r := s.global.at(s.global.headPos())
	deadline := r.Arrival + sim.Time(s.batchWait)
	if now >= deadline {
		return false
	}
	if s.queuedOfModel(r.Model, s.maxBatch) >= s.maxBatch {
		return false
	}
	if !s.hasWake || deadline < s.pendingWake {
		s.pendingWake = deadline
		s.hasWake = true
	}
	return true
}

// queuedOfModel counts queued requests of the model, stopping at stop.
func (s *Scheduler) queuedOfModel(model string, stop int) int {
	if s.indexed {
		pl, ok := s.byModel[model]
		if !ok {
			return 0
		}
		return len(pl.pos) - pl.start
	}
	n := 0
	for p := s.global.head; p < s.global.tail && n < stop; p++ {
		if r := s.global.at(p); r != nil && r.Model == model {
			n++
		}
	}
	return n
}

// coalesceLast drains up to MaxBatch-1 additional queued requests with
// the primary's model — in arrival order — out of the global queue and
// into the just-appended dispatch's Batch. With the per-model index
// active the collection is O(batch·log queue); the shallow-queue walk
// visits ring positions directly, yielding the identical ascending-
// position member set. Extracted members bump no skip counts: removing
// elements from the queue preserves the monotone-skip invariant (a
// subsequence of a non-increasing sequence is non-increasing).
func (s *Scheduler) coalesceLast() {
	if s.maxBatch <= 1 || s.global.len() == 0 {
		return
	}
	d := &s.out[len(s.out)-1]
	model := d.Req.Model
	batch := s.grabBatchSlice()
	if s.indexed {
		pl := s.byModel[model]
		for pl != nil && !pl.empty() && 1+len(batch) < s.maxBatch {
			p := pl.first(s.global.head)
			if p < 0 {
				break
			}
			batch = append(batch, s.extract(p))
		}
	} else {
		for p := s.global.head; p < s.global.tail && 1+len(batch) < s.maxBatch; p++ {
			if r := s.global.at(p); r != nil && r.Model == model {
				batch = append(batch, s.extract(p))
			}
		}
	}
	s.finishBatch(d, batch)
}

// coalesceLocal extends a local-queue dispatch with the GPU's parked
// same-model requests (arrival order — the local queue is FIFO by
// parking time), leaving other models parked in place.
func (s *Scheduler) coalesceLocal(o Ord) {
	if s.maxBatch <= 1 || len(s.local[o]) == 0 {
		return
	}
	d := &s.out[len(s.out)-1]
	model := d.Req.Model
	batch := s.grabBatchSlice()
	q := s.local[o]
	w := 0
	for i, p := range q {
		if p.req.Model == model && 1+len(batch) < s.maxBatch {
			batch = append(batch, p.req)
			s.localSum[o] -= p.infer
			continue
		}
		q[w] = q[i]
		w++
	}
	if w < len(q) {
		clear(q[w:])
		s.local[o] = q[:w]
		s.parkGen++
	}
	s.finishBatch(d, batch)
}

// grabBatchSlice returns a pooled zero-length member slice.
func (s *Scheduler) grabBatchSlice() []*Request {
	if n := len(s.batchFree); n > 0 {
		b := s.batchFree[n-1]
		s.batchFree[n-1] = nil
		s.batchFree = s.batchFree[:n-1]
		return b
	}
	return nil
}

// finishBatch attaches the collected members (returning an empty slice
// to the pool) and maintains the batching counters.
func (s *Scheduler) finishBatch(d *Dispatch, batch []*Request) {
	if len(batch) == 0 {
		if batch != nil {
			s.batchFree = append(s.batchFree, batch)
		}
		return
	}
	d.Batch = batch
	s.batchedDispatches++
	s.batchedMembers += int64(len(batch))
}

// scheduleIdleGPU implements Algorithm 1 for one idle GPU, appending the
// dispatches produced while trying to occupy it (the LLB routine may also
// dispatch requests to *other* idle GPUs) to s.out. It reports whether
// any dispatch was produced.
func (s *Scheduler) scheduleIdleGPU(o Ord, now sim.Time) bool {
	n0 := len(s.out)
	// Lines 2–4: prioritize the local queue.
	if q := s.local[o]; len(q) > 0 {
		p := q[0]
		s.local[o] = q[1:]
		s.localSum[o] -= p.infer
		s.parkGen++
		s.markTaken(o)
		s.out = append(s.out, Dispatch{
			Req: p.req, GPU: s.backend.IDOf(o),
			ExpectHit:      s.backend.Cached(o, p.req.Model),
			FromLocalQueue: true,
		})
		s.coalesceLocal(o)
		return true
	}
	if s.draining.get(o) {
		// A draining GPU with an empty local queue takes no new work.
		return false
	}
	if s.global.len() == 0 {
		return false
	}
	if s.lingerHold(now) {
		// The head's batch is still filling inside its BatchWait window.
		return false
	}

	// Baseline LB: head of queue to this idle GPU, no locality.
	if s.policy == LB {
		r := s.extract(s.global.headPos())
		s.markTaken(o)
		s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: s.backend.Cached(o, r.Model)})
		s.coalesceLast()
		return true
	}
	if s.scanPlacement || !s.indexed {
		// Shallow queues (and the reference baseline) keep the plain
		// walk; scanPlacement additionally selects the unmemoized llb.
		return s.findWorkScan(o, now, n0)
	}
	return s.findWork(o, now, n0)
}

// findWork is Algorithm 1 lines 6–22 on the indexed path. Instead of
// walking the queue per request it relies on the monotone-skip invariant
// (visits is non-increasing along the live queue, so only the head can
// be starved) and the per-model position index (the first request cached
// on o is the min over cached models' first queued positions): each
// iteration either resolves the head, or jumps straight to the
// out-of-order hit after bumping the skipped prefix.
func (s *Scheduler) findWork(o Ord, now sim.Time, n0 int) bool {
	for s.global.len() > 0 {
		pos := s.global.headPos()
		r := s.global.at(pos)
		if s.backend.Cached(o, r.Model) {
			// Head hit: in-order, so no out-of-order jump is counted.
			s.extract(pos)
			s.markTaken(o)
			s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: true})
			s.coalesceLast()
			return true
		}
		if r.visits >= s.limit {
			// Starvation limit reached (or limit==0, i.e. plain LALB
			// considering the head in order): schedule it now via
			// LocalityLoadBalance. llb removes the request; re-examine
			// the queue, whose head now resolves to the next request.
			if r.visits > 0 && s.limit > 0 {
				s.starved++
			}
			if s.llb(o, pos, now) {
				return true
			}
			continue
		}
		// The head is uncached here and under the limit — and by the
		// monotone-skip invariant so is everything behind it, so the
		// scan's stop is the first queued request cached on o.
		if s.global.len() == 1 {
			// Nothing behind the head to jump to.
			r.visits++
			break
		}
		jump := s.firstCachedPos(o, pos+1)
		if jump < 0 {
			// Nothing cached on o anywhere in the queue: every live
			// request is passed over once (none can be starved).
			s.bumpVisits(pos, s.global.tail)
			break
		}
		s.bumpVisits(pos, jump)
		rj := s.global.at(jump)
		s.o3Dispatches++
		s.extract(jump)
		s.markTaken(o)
		s.out = append(s.out, Dispatch{Req: rj, GPU: s.backend.IDOf(o), ExpectHit: true})
		s.coalesceLast()
		return true
	}
	// Lines 17–22: no queued request has its model cached here — drain
	// through LocalityLoadBalance until this GPU takes one.
	for s.global.len() > 0 {
		before := s.global.len()
		if s.llb(o, s.global.headPos(), now) {
			return true
		}
		if s.global.len() == before {
			// llb always removes the request; guard against spinning if
			// that invariant is ever broken.
			break
		}
	}
	return len(s.out) > n0
}

// firstCachedPos returns the position of the first queued request at or
// after from whose model is cached on o, or -1. The per-model index
// makes this O(distinct queued models · log) instead of O(queue).
func (s *Scheduler) firstCachedPos(o Ord, from int) int {
	best := -1
	for model, pl := range s.byModel {
		p := pl.first(from)
		if p < 0 || (best >= 0 && p >= best) {
			continue
		}
		if s.backend.Cached(o, model) {
			best = p
		}
	}
	return best
}

// bumpVisits passes every live request in [from, to) over once — the
// uniform prefix increment behind the monotone-skip invariant.
func (s *Scheduler) bumpVisits(from, to int) {
	for p := from; p < to; p++ {
		if r := s.global.at(p); r != nil {
			r.visits++
		}
	}
}

// llb implements Algorithm 2 (function LocalityLoadBalance) for the
// request at global-queue position pos, considering idle GPU o. It
// appends any dispatch to s.out and reports whether o itself was taken.
// llb always removes the request from the global queue (dispatching,
// parking, or missing it somewhere).
func (s *Scheduler) llb(o Ord, pos int, now sim.Time) bool {
	r := s.global.at(pos)
	holders := s.backend.GPUsCaching(r.Model)

	// Line 1–3: model cached nowhere — cache miss on the selected idle
	// GPU.
	if len(holders) == 0 {
		s.extract(pos)
		s.markTaken(o)
		s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: false})
		s.coalesceLast()
		return true
	}

	// Line 4–6: model cached on another idle GPU — dispatch there (a
	// cache hit); the selected GPU stays idle. Draining holders are
	// skipped: their residents are on the way out. The pick walks the
	// smaller of the frozen idle list and the holder list; both are
	// ascending ordinals, so either walk yields the same lowest-ord
	// free holder the straight holder scan finds.
	if h := s.firstFreeHolder(o, holders); h >= 0 {
		s.extract(pos)
		if h == o {
			s.markTaken(o)
			s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: true})
			s.coalesceLast()
			return true
		}
		s.markTaken(h)
		s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(h), ExpectHit: true})
		s.coalesceLast()
		return false
	}

	// Lines 8–15: model cached only on busy GPUs. Find the busy holder
	// with the smallest estimated finish time; if waiting for it beats
	// paying the model-load time on the idle GPU, park the request in
	// that GPU's local queue. (Skipped entirely under the
	// DisableLocalQueue ablation.)
	if !s.noPark {
		best, bestFinish := s.argminHolders(r.Model, holders, now)
		if best >= 0 && bestFinish < s.backend.LoadTime(o, r.Model) {
			s.extract(pos)
			infer := s.backend.InferTime(best, r.Model, r.BatchSize)
			s.local[best] = append(s.local[best], parked{req: r, infer: infer})
			if n := len(s.local[best]); n > s.peakLocal {
				s.peakLocal = n
			}
			s.localSum[best] += infer
			s.parkGen++
			s.moves++
			return false
		}
	}

	// Lines 16–18: allow the cache miss on the idle GPU.
	s.extract(pos)
	s.markTaken(o)
	s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: false})
	s.coalesceLast()
	return true
}

// firstFreeHolder returns the lowest-ord holder that is neither draining
// nor busy nor taken this round (-1 when none). When the round's idle
// list is the smaller side it drives the walk — on a saturated fleet the
// idle list is a handful of GPUs while a hot model's holder list grows
// with the fleet.
func (s *Scheduler) firstFreeHolder(o Ord, holders []Ord) Ord {
	if len(s.roundIdle) < len(holders) {
		for _, g := range s.roundIdle {
			if s.draining.get(g) || s.busyOrTaken(g) {
				continue
			}
			if ordset.Contains(holders, g) {
				return g
			}
		}
		return -1
	}
	for _, h := range holders {
		if s.draining.get(h) {
			continue
		}
		// h == o is the robustness case (the caller only reaches llb
		// when the model is not cached on o); o is idle and untaken, so
		// it folds into the busyOrTaken test.
		if h == o || !s.busyOrTaken(h) {
			return h
		}
	}
	return -1
}

// argminHolders returns the non-draining holder with the smallest
// estimated finish (including its local queue) and that finish, with the
// original scan's tie-break (lowest ordinal wins on equal finish). The
// result is memoized per (round, model): holder sets, draining flags and
// backend finish estimates are all frozen while Schedule runs, so the
// memo only invalidates when a local-queue sum changes (parkGen).
func (s *Scheduler) argminHolders(model string, holders []Ord, now sim.Time) (Ord, time.Duration) {
	if m, ok := s.memo[model]; ok && m.epoch == s.epoch && m.gen == s.parkGen {
		return m.ord, m.fin
	}
	best := Ord(-1)
	var bestFinish time.Duration
	for _, h := range holders {
		if s.draining.get(h) {
			continue
		}
		fin := s.frozenEst(h, now) + s.localSum[h]
		if best < 0 || fin < bestFinish {
			best, bestFinish = h, fin
		}
	}
	s.memo[model] = llbMemo{epoch: s.epoch, gen: s.parkGen, ord: best, fin: bestFinish}
	return best, bestFinish
}

// frozenEst memoizes the backend's in-flight finish estimate per ordinal
// for the duration of a round (busy state is stable across a Schedule
// call, and `now` is fixed).
func (s *Scheduler) frozenEst(o Ord, now sim.Time) time.Duration {
	if s.estEpoch[o] != s.epoch {
		s.estEpoch[o] = s.epoch
		s.estVal[o] = s.backend.EstimatedFinish(o, now)
	}
	return s.estVal[o]
}

// findWorkScan is Algorithm 1 lines 6–22 on the reference scan path: it
// walks ring positions request by request, enforcing the out-of-order
// starvation limit along the way. Tombstones (removed mid-scan by LLB
// placements) are skipped.
func (s *Scheduler) findWorkScan(o Ord, now sim.Time, n0 int) bool {
	pos := s.global.headPos()
	for pos < s.global.tail {
		r := s.global.at(pos)
		if r == nil {
			pos++
			continue
		}
		if s.backend.Cached(o, r.Model) {
			// The ring's head is kept tombstone-free, so any position
			// past it has a live request ahead: an out-of-order jump.
			if pos > s.global.headPos() {
				s.o3Dispatches++
			}
			s.global.remove(pos)
			s.markTaken(o)
			s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: true})
			s.coalesceLast()
			return true
		}
		if r.visits >= s.limit {
			if r.visits > 0 && s.limit > 0 {
				s.starved++
			}
			if s.llbScan(o, pos, now) {
				return true
			}
			// The request left the queue for another GPU (or a local
			// queue); its slot is tombstoned — re-examine from the same
			// position, which now resolves to the next live request.
			continue
		}
		r.visits++
		pos++
	}
	for s.global.len() > 0 {
		before := s.global.len()
		if s.llbScan(o, s.global.headPos(), now) {
			return true
		}
		if s.global.len() == before {
			break
		}
	}
	return len(s.out) > n0
}

// llbScan is llb on the reference scan path: straight holder walks, no
// memoization.
func (s *Scheduler) llbScan(o Ord, pos int, now sim.Time) bool {
	r := s.global.at(pos)
	holders := s.backend.GPUsCaching(r.Model)

	if len(holders) == 0 {
		s.global.remove(pos)
		s.markTaken(o)
		s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: false})
		s.coalesceLast()
		return true
	}

	for _, h := range holders {
		if s.draining.get(h) {
			continue
		}
		if h == o {
			s.global.remove(pos)
			s.markTaken(o)
			s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: true})
			s.coalesceLast()
			return true
		}
		if !s.busyOrTaken(h) {
			s.global.remove(pos)
			s.markTaken(h)
			s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(h), ExpectHit: true})
			s.coalesceLast()
			return false
		}
	}

	if !s.noPark {
		best := Ord(-1)
		var bestFinish time.Duration
		for _, h := range holders {
			if s.draining.get(h) {
				continue
			}
			fin := s.estFinish(h, now)
			if best < 0 || fin < bestFinish {
				best, bestFinish = h, fin
			}
		}
		if best >= 0 && bestFinish < s.backend.LoadTime(o, r.Model) {
			s.global.remove(pos)
			infer := s.backend.InferTime(best, r.Model, r.BatchSize)
			s.local[best] = append(s.local[best], parked{req: r, infer: infer})
			if n := len(s.local[best]); n > s.peakLocal {
				s.peakLocal = n
			}
			s.localSum[best] += infer
			s.moves++
			return false
		}
	}

	s.global.remove(pos)
	s.markTaken(o)
	s.out = append(s.out, Dispatch{Req: r, GPU: s.backend.IDOf(o), ExpectHit: false})
	s.coalesceLast()
	return true
}
