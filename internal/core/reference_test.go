package core

import (
	"math/rand"
	"testing"
	"time"
)

// refSched is a behavioral port of the pre-refactor Scheduler: a plain
// slice global queue with O(n) splice removal, string-keyed map state for
// local queues / draining / per-round taken sets, and no pooling. It
// exists only as the equivalence oracle for TestScheduleEquivalence: the
// optimized Scheduler (ring buffer, dense ords, bitsets) must produce the
// exact dispatch sequence this implementation produces, under every
// policy, including draining churn. Request skip counts are tracked in a
// side table so the oracle never touches the shared Request.visits field.
type refSched struct {
	policy   Policy
	limit    int
	noPark   bool
	b        *mockBackend
	global   []*Request
	visits   map[int64]int
	local    map[string][]parked
	localSum map[string]time.Duration
	draining map[string]bool
}

func newRefSched(policy Policy, limit int, b *mockBackend) *refSched {
	if policy != LALBO3 {
		limit = 0
	}
	return &refSched{
		policy:   policy,
		limit:    limit,
		b:        b,
		visits:   map[int64]int{},
		local:    map[string][]parked{},
		localSum: map[string]time.Duration{},
		draining: map[string]bool{},
	}
}

func (s *refSched) enqueue(r *Request) { s.global = append(s.global, r) }

func (s *refSched) removeGlobal(i int) *Request {
	r := s.global[i]
	s.global = append(s.global[:i], s.global[i+1:]...)
	return r
}

func (s *refSched) pendingTotal() int {
	n := len(s.global)
	for _, q := range s.local {
		n += len(q)
	}
	return n
}

func (s *refSched) schedule(now time.Duration) []Dispatch {
	var out []Dispatch
	taken := map[string]bool{}
	busy := func(id string) bool { return taken[id] || s.b.busy[id] }
	var idle []string
	for _, id := range s.b.gpus {
		if !s.b.busy[id] {
			idle = append(idle, id)
		}
	}
	for {
		progressed := false
		for _, id := range idle {
			if busy(id) {
				continue
			}
			d, ok := s.scheduleIdleGPU(id, now, busy, taken)
			if ok {
				out = append(out, d...)
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

func (s *refSched) scheduleIdleGPU(gpuID string, now time.Duration, busy func(string) bool, taken map[string]bool) ([]Dispatch, bool) {
	if q := s.local[gpuID]; len(q) > 0 {
		p := q[0]
		s.local[gpuID] = q[1:]
		s.localSum[gpuID] -= p.infer
		taken[gpuID] = true
		return []Dispatch{{
			Req: p.req, GPU: gpuID,
			ExpectHit:      s.b.cached[gpuID][p.req.Model],
			FromLocalQueue: true,
		}}, true
	}
	if s.draining[gpuID] {
		return nil, false
	}
	if len(s.global) == 0 {
		return nil, false
	}
	if s.policy == LB {
		r := s.removeGlobal(0)
		taken[gpuID] = true
		return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: s.b.cached[gpuID][r.Model]}}, true
	}
	var all []Dispatch
	i := 0
	for i < len(s.global) {
		r := s.global[i]
		if s.b.cached[gpuID][r.Model] {
			s.removeGlobal(i)
			taken[gpuID] = true
			all = append(all, Dispatch{Req: r, GPU: gpuID, ExpectHit: true})
			return all, true
		}
		if s.visits[r.ID] >= s.limit {
			d, tookThis := s.llb(gpuID, i, now, busy, taken)
			all = append(all, d...)
			if tookThis {
				return all, true
			}
			continue
		}
		s.visits[r.ID]++
		i++
	}
	for len(s.global) > 0 {
		before := len(s.global)
		d, tookThis := s.llb(gpuID, 0, now, busy, taken)
		all = append(all, d...)
		if tookThis {
			return all, true
		}
		if len(s.global) == before {
			break
		}
	}
	return all, len(all) > 0
}

func (s *refSched) llb(gpuID string, idx int, now time.Duration, busy func(string) bool, taken map[string]bool) ([]Dispatch, bool) {
	r := s.global[idx]
	var holders []string
	for _, g := range s.b.gpus {
		if s.b.cached[g][r.Model] {
			holders = append(holders, g)
		}
	}
	if len(holders) == 0 {
		s.removeGlobal(idx)
		taken[gpuID] = true
		return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: false}}, true
	}
	for _, h := range holders {
		if s.draining[h] {
			continue
		}
		if h == gpuID {
			s.removeGlobal(idx)
			taken[gpuID] = true
			return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: true}}, true
		}
		if !busy(h) {
			s.removeGlobal(idx)
			taken[h] = true
			return []Dispatch{{Req: r, GPU: h, ExpectHit: true}}, false
		}
	}
	if !s.noPark {
		bestGPU := ""
		var bestFinish time.Duration
		for _, h := range holders {
			if s.draining[h] {
				continue
			}
			fin := s.b.finish[h] + s.localSum[h]
			if bestGPU == "" || fin < bestFinish {
				bestGPU, bestFinish = h, fin
			}
		}
		if bestGPU != "" && bestFinish < s.b.load[r.Model] {
			s.removeGlobal(idx)
			infer := s.b.infer[r.Model]
			s.local[bestGPU] = append(s.local[bestGPU], parked{req: r, infer: infer})
			s.localSum[bestGPU] += infer
			return nil, false
		}
	}
	s.removeGlobal(idx)
	taken[gpuID] = true
	return []Dispatch{{Req: r, GPU: gpuID, ExpectHit: false}}, true
}

// TestScheduleEquivalence drives the indexed Scheduler, the retained
// scan-placement Scheduler and the pre-refactor oracle through identical
// randomized workloads — arrivals, completions, cache churn, draining
// flips — and requires identical dispatch sequences at every round, for
// all three policies. The scan scheduler consumes its own Request clones
// (both real schedulers mutate the shared skip counter; the oracle keeps
// its counts in a side table).
func TestScheduleEquivalence(t *testing.T) {
	models := []string{"m0", "m1", "m2", "m3", "m4", "m5"}
	policies := []struct {
		p     Policy
		limit int
	}{{LB, 0}, {LALB, 0}, {LALBO3, 2}, {LALBO3, 25}}
	for _, pc := range policies {
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			nGPU := 2 + rng.Intn(4)
			names := make([]string, nGPU)
			for i := range names {
				names[i] = "g" + string(rune('0'+i))
			}
			b := newMock(names...)
			for _, m := range models {
				b.setModel(m, time.Duration(1+rng.Intn(5))*time.Second,
					time.Duration(1+rng.Intn(3))*time.Second)
			}
			s := newSched(t, pc.p, pc.limit, b)
			// Force the index on: the randomized workloads stay below the
			// activation depth, and the point of this suite is to check
			// the indexed findWork/llb path against the oracle (the
			// below-threshold walk is textually the scan path, which the
			// scan scheduler covers).
			s.activateIndex()
			scan, err := New(Config{Policy: pc.p, O3Limit: pc.limit, ScanPlacement: true}, b)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefSched(pc.p, pc.limit, b)

			compare := func(round int, label string, got, want []Dispatch) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%v seed=%d round %d (%s): %d dispatches, oracle %d\n got: %+v\nwant: %+v",
						pc.p, seed, round, label, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i].Req.ID != want[i].Req.ID || got[i].GPU != want[i].GPU ||
						got[i].ExpectHit != want[i].ExpectHit ||
						got[i].FromLocalQueue != want[i].FromLocalQueue {
						t.Fatalf("%v seed=%d round %d dispatch %d (%s): got %+v, oracle %+v",
							pc.p, seed, round, i, label, got[i], want[i])
					}
				}
			}
			apply := func(ds []Dispatch) {
				for _, d := range ds {
					g := d.GPU
					if !b.cached[g][d.Req.Model] {
						if len(b.cached[g]) >= 2 { // evict deterministically
							for _, victim := range models {
								if b.cached[g][victim] {
									delete(b.cached[g], victim)
									break
								}
							}
						}
						b.cached[g][d.Req.Model] = true
					}
					b.busy[g] = true
					b.finish[g] = b.infer[d.Req.Model]
				}
			}

			var now time.Duration
			for round := 0; round < 60; round++ {
				switch rng.Intn(4) {
				case 0, 1: // arrival
					r := &Request{ID: int64(round), Model: models[rng.Intn(len(models))], BatchSize: 32, Arrival: now}
					clone := *r
					if err := s.Enqueue(r); err != nil {
						t.Fatal(err)
					}
					if err := scan.Enqueue(&clone); err != nil {
						t.Fatal(err)
					}
					ref.enqueue(r)
				case 2: // completion
					for _, g := range names {
						if b.busy[g] {
							b.busy[g] = false
							b.finish[g] = 0
							break
						}
					}
				case 3: // draining churn
					g := names[rng.Intn(nGPU)]
					on := rng.Intn(2) == 0
					s.SetDraining(g, on)
					scan.SetDraining(g, on)
					ref.draining[g] = on
				}
				got := s.Schedule(now)
				want := ref.schedule(now)
				compare(round, "indexed", got, want)
				compare(round, "scan", scan.Schedule(now), want)
				apply(got)
				now += time.Second
			}
			// Drain: clear draining flags and complete everything.
			for _, g := range names {
				s.SetDraining(g, false)
				scan.SetDraining(g, false)
				ref.draining[g] = false
			}
			for round := 60; round < 300 && (s.PendingTotal() > 0 || anyBusy(b)); round++ {
				for _, g := range names {
					b.busy[g] = false
					b.finish[g] = 0
				}
				got := s.Schedule(now)
				want := ref.schedule(now)
				compare(round, "indexed", got, want)
				compare(round, "scan", scan.Schedule(now), want)
				apply(got)
				now += time.Second
			}
			if s.PendingTotal() != ref.pendingTotal() {
				t.Fatalf("%v seed=%d: pending %d, oracle %d", pc.p, seed, s.PendingTotal(), ref.pendingTotal())
			}
			if s.PendingTotal() != 0 {
				t.Fatalf("%v seed=%d: %d requests never drained", pc.p, seed, s.PendingTotal())
			}
			if scan.PendingTotal() != 0 {
				t.Fatalf("%v seed=%d: scan path left %d requests pending", pc.p, seed, scan.PendingTotal())
			}
		}
	}
}

func anyBusy(b *mockBackend) bool {
	for _, g := range b.gpus {
		if b.busy[g] {
			return true
		}
	}
	return false
}
