package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gpufaas/internal/sim"
)

// driver simulates a cluster around the scheduler: it executes dispatches
// (marking GPUs busy, updating the cache), completes GPUs in random order,
// and checks scheduler invariants after every step.
type driver struct {
	t       *testing.T
	b       *mockBackend
	s       *Scheduler
	rng     *rand.Rand
	now     sim.Time
	running map[string]*Request // gpu -> in-flight request
	done    map[int64]int       // request ID -> completion count
	memCap  int                 // max resident models per GPU
}

func newDriver(t *testing.T, policy Policy, limit int, gpus int, rng *rand.Rand) *driver {
	names := make([]string, gpus)
	for i := range names {
		names[i] = "g" + string(rune('0'+i))
	}
	b := newMock(names...)
	for _, m := range []string{"m0", "m1", "m2", "m3", "m4", "m5"} {
		b.setModel(m, 3*time.Second, time.Second)
	}
	s, err := New(Config{Policy: policy, O3Limit: limit}, b)
	if err != nil {
		t.Fatal(err)
	}
	return &driver{
		t: t, b: b, s: s, rng: rng,
		running: map[string]*Request{},
		done:    map[int64]int{},
		memCap:  2,
	}
}

// execute applies the scheduler's dispatch decisions to the mock world.
func (d *driver) execute(ds []Dispatch) {
	for _, disp := range ds {
		g, r := disp.GPU, disp.Req
		if d.b.busy[g] {
			d.t.Fatalf("dispatch %d to busy GPU %s", r.ID, g)
		}
		if d.running[g] != nil {
			d.t.Fatalf("double dispatch to %s", g)
		}
		actualHit := d.b.cached[g][r.Model]
		if disp.ExpectHit != actualHit && !disp.FromLocalQueue {
			d.t.Fatalf("dispatch %d hit expectation %v != %v", r.ID, disp.ExpectHit, actualHit)
		}
		// Invariant: a miss dispatched to g means no *idle* GPU cached
		// the model at decision time (locality policies only; local-queue
		// dispatches are exempt — the driver may have evicted their model
		// while they waited).
		if d.s.Policy() != LB && !actualHit && !disp.FromLocalQueue {
			for _, h := range d.b.holderIDs(r.Model) {
				if !d.b.busy[h] && h != g {
					d.t.Fatalf("false miss on idle: req %d model %s missed on %s while idle %s caches it",
						r.ID, r.Model, g, h)
				}
			}
		}
		if !actualHit {
			// Evict a random victim if at capacity, then admit.
			if len(d.b.cached[g]) >= d.memCap {
				for victim := range d.b.cached[g] {
					delete(d.b.cached[g], victim)
					break
				}
			}
			d.b.cached[g][r.Model] = true
		}
		d.b.busy[g] = true
		d.b.finish[g] = d.b.infer[r.Model]
		if !actualHit {
			d.b.finish[g] += d.b.load[r.Model]
		}
		d.running[g] = r
	}
}

// completeOne finishes a random busy GPU and reschedules.
func (d *driver) completeOne() bool {
	var busy []string
	for _, g := range d.b.gpus {
		if d.running[g] != nil {
			busy = append(busy, g)
		}
	}
	if len(busy) == 0 {
		return false
	}
	g := busy[d.rng.Intn(len(busy))]
	r := d.running[g]
	d.running[g] = nil
	d.b.busy[g] = false
	d.b.finish[g] = 0
	d.done[r.ID]++
	d.now += sim.Time(time.Second)
	d.execute(d.s.Schedule(d.now))
	return true
}

// TestSchedulerLifecycleProperty: under every policy, any workload drains
// completely with each request dispatched exactly once, never onto a busy
// GPU, and without idle-cached false misses.
func TestSchedulerLifecycleProperty(t *testing.T) {
	policies := []struct {
		p     Policy
		limit int
	}{{LB, 0}, {LALB, 0}, {LALBO3, 3}, {LALBO3, 25}}
	f := func(seed int64, reqsRaw []uint8) bool {
		for _, pc := range policies {
			rng := rand.New(rand.NewSource(seed))
			d := newDriver(t, pc.p, pc.limit, 3, rng)
			n := len(reqsRaw)
			for i, raw := range reqsRaw {
				r := &Request{
					ID:        int64(i),
					Model:     "m" + string(rune('0'+raw%6)),
					BatchSize: 32,
					Arrival:   d.now,
				}
				if err := d.s.Enqueue(r); err != nil {
					return false
				}
				d.execute(d.s.Schedule(d.now))
				// Occasionally complete something mid-stream.
				if rng.Intn(3) == 0 {
					d.completeOne()
				}
			}
			// Drain.
			for i := 0; i < 10*n+10; i++ {
				if !d.completeOne() && d.s.PendingTotal() == 0 {
					break
				}
			}
			if d.s.PendingTotal() != 0 {
				t.Logf("%v: %d requests still pending", pc.p, d.s.PendingTotal())
				return false
			}
			for id := int64(0); id < int64(n); id++ {
				if d.done[id] != 1 {
					t.Logf("%v: request %d completed %d times", pc.p, id, d.done[id])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestO3NeverStarvesProperty: with a positive limit, no request is ever
// skipped more than the limit allows.
func TestO3NeverStarvesProperty(t *testing.T) {
	f := func(seed int64, reqsRaw []uint8) bool {
		const limit = 4
		rng := rand.New(rand.NewSource(seed))
		d := newDriver(t, LALBO3, limit, 2, rng)
		for i, raw := range reqsRaw {
			r := &Request{
				ID:        int64(i),
				Model:     "m" + string(rune('0'+raw%6)),
				BatchSize: 32,
				Arrival:   d.now,
			}
			if err := d.s.Enqueue(r); err != nil {
				return false
			}
			d.execute(d.s.Schedule(d.now))
			if rng.Intn(2) == 0 {
				d.completeOne()
			}
			// Invariant: nothing in the global queue has been skipped
			// beyond the limit plus the in-scan allowance of one round.
			over := false
			d.s.global.forEach(func(q *Request) {
				if q.Visits() > limit+1 {
					t.Logf("request %d skipped %d times (limit %d)", q.ID, q.Visits(), limit)
					over = true
				}
			})
			if over {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
