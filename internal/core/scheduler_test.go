package core

import (
	"testing"
	"time"

	"gpufaas/internal/sim"
)

// mockBackend is a hand-driven cluster view.
type mockBackend struct {
	gpus   []string
	busy   map[string]bool
	cached map[string]map[string]bool // gpu -> model set
	finish map[string]time.Duration   // remaining in-flight time
	load   map[string]time.Duration   // model -> load time
	infer  map[string]time.Duration   // model -> infer time
}

func newMock(gpus ...string) *mockBackend {
	m := &mockBackend{
		gpus:   gpus,
		busy:   map[string]bool{},
		cached: map[string]map[string]bool{},
		finish: map[string]time.Duration{},
		load:   map[string]time.Duration{},
		infer:  map[string]time.Duration{},
	}
	for _, g := range gpus {
		m.cached[g] = map[string]bool{}
	}
	return m
}

func (m *mockBackend) setModel(model string, load, infer time.Duration) {
	m.load[model] = load
	m.infer[model] = infer
}

// The mock keeps its state in string-keyed maps for test readability and
// adapts to the ord-based Backend at the boundary: ordinals are indices
// into the gpus slice.
func (m *mockBackend) Ords() []Ord {
	out := make([]Ord, len(m.gpus))
	for i := range m.gpus {
		out[i] = Ord(i)
	}
	return out
}
func (m *mockBackend) OrdBound() Ord { return Ord(len(m.gpus)) }
func (m *mockBackend) OrdOf(g string) (Ord, bool) {
	for i, id := range m.gpus {
		if id == g {
			return Ord(i), true
		}
	}
	return 0, false
}
func (m *mockBackend) IDOf(o Ord) string             { return m.gpus[o] }
func (m *mockBackend) Busy(o Ord) bool               { return m.busy[m.gpus[o]] }
func (m *mockBackend) Cached(o Ord, mdl string) bool { return m.cached[m.gpus[o]][mdl] }
func (m *mockBackend) GPUsCaching(model string) []Ord {
	var out []Ord
	for i, g := range m.gpus {
		if m.cached[g][model] {
			out = append(out, Ord(i))
		}
	}
	return out
}
func (m *mockBackend) EstimatedFinish(o Ord, _ sim.Time) time.Duration { return m.finish[m.gpus[o]] }
func (m *mockBackend) LoadTime(_ Ord, model string) time.Duration      { return m.load[model] }
func (m *mockBackend) InferTime(_ Ord, model string, _ int) time.Duration {
	return m.infer[model]
}

// holderIDs is GPUsCaching translated back to IDs for test assertions.
func (m *mockBackend) holderIDs(model string) []string {
	var out []string
	for _, o := range m.GPUsCaching(model) {
		out = append(out, m.gpus[o])
	}
	return out
}

func req(id int64, model string) *Request {
	return &Request{ID: id, Model: model, BatchSize: 32, Arrival: sim.Time(id)}
}

func newSched(t *testing.T, p Policy, limit int, b Backend) *Scheduler {
	t.Helper()
	s, err := New(Config{Policy: p, O3Limit: limit}, b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Policy: LALB}, nil); err == nil {
		t.Error("nil backend should fail")
	}
	if _, err := New(Config{Policy: LALBO3, O3Limit: -1}, newMock("g0")); err == nil {
		t.Error("negative limit should fail")
	}
	if _, err := New(Config{Policy: Policy(99)}, newMock("g0")); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestParsePolicy(t *testing.T) {
	// The accepted-spellings table mirrors the doc comment exactly: the
	// canonical figure spelling, the all-lower-case form, and the paper's
	// "LALB+O3" — anything else (mixed case, lower-case plus form) is
	// rejected.
	for _, c := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"LB", LB, true},
		{"lb", LB, true},
		{"LALB", LALB, true},
		{"lalb", LALB, true},
		{"LALBO3", LALBO3, true},
		{"lalbo3", LALBO3, true},
		{"LALB+O3", LALBO3, true},
		{"", 0, false},
		{"Lb", 0, false},
		{"Lalb", 0, false},
		{"lalb+o3", 0, false},
		{"LALB+o3", 0, false},
		{"LALBO", 0, false},
		{"nope", 0, false},
	} {
		got, err := ParsePolicy(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePolicy(%q) accepted, want error", c.in)
		}
	}
	if LB.String() != "LB" || LALB.String() != "LALB" || LALBO3.String() != "LALBO3" {
		t.Error("policy names wrong")
	}
	if Policy(7).String() == "" {
		t.Error("unknown policy should stringify")
	}
}

func TestEnqueueOrdering(t *testing.T) {
	s := newSched(t, LB, 0, newMock("g0"))
	if err := s.Enqueue(nil); err == nil {
		t.Error("nil request should fail")
	}
	if err := s.Enqueue(&Request{ID: 1, Arrival: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(&Request{ID: 2, Arrival: 5}); err == nil {
		t.Error("out-of-order enqueue should fail")
	}
	if s.GlobalQueueLen() != 1 {
		t.Errorf("queue len = %d", s.GlobalQueueLen())
	}
}

func TestLBDispatchesHeadInOrder(t *testing.T) {
	b := newMock("g0", "g1")
	b.setModel("m1", 3*time.Second, time.Second)
	b.setModel("m2", 3*time.Second, time.Second)
	s := newSched(t, LB, 0, b)
	// m2 cached on g1 — LB must ignore locality.
	b.cached["g1"]["m2"] = true
	mustEnqueue(t, s, req(0, "m2"), req(1, "m1"))
	ds := s.Schedule(0)
	if len(ds) != 2 {
		t.Fatalf("dispatches = %+v", ds)
	}
	// Head (m2) goes to the first idle GPU g0 even though g1 caches it.
	if ds[0].Req.ID != 0 || ds[0].GPU != "g0" || ds[0].ExpectHit {
		t.Errorf("first dispatch = %+v", ds[0])
	}
	if ds[1].Req.ID != 1 || ds[1].GPU != "g1" {
		t.Errorf("second dispatch = %+v", ds[1])
	}
	if s.GlobalQueueLen() != 0 {
		t.Error("queue should drain")
	}
}

func TestLALBPrefersIdleCachedGPU(t *testing.T) {
	b := newMock("g0", "g1")
	b.setModel("m", 3*time.Second, time.Second)
	b.cached["g1"]["m"] = true
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"))
	ds := s.Schedule(0)
	if len(ds) != 1 || ds[0].GPU != "g1" || !ds[0].ExpectHit {
		t.Fatalf("dispatch = %+v", ds)
	}
}

func TestLALBParksOnBusyGPUWhenFaster(t *testing.T) {
	b := newMock("g0", "g1")
	b.setModel("m", 3*time.Second, time.Second)
	// g1 busy, caches m, finishes in 1s; load on idle g0 costs 3s.
	b.busy["g1"] = true
	b.cached["g1"]["m"] = true
	b.finish["g1"] = time.Second
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"))
	ds := s.Schedule(0)
	if len(ds) != 0 {
		t.Fatalf("expected no dispatch, got %+v", ds)
	}
	if s.LocalQueueLen("g1") != 1 {
		t.Errorf("local queue g1 = %d", s.LocalQueueLen("g1"))
	}
	if s.Counters().LocalQueueMoves != 1 {
		t.Errorf("moves = %d", s.Counters().LocalQueueMoves)
	}
	if s.PendingTotal() != 1 {
		t.Errorf("PendingTotal = %d", s.PendingTotal())
	}
}

func TestLALBMissesWhenBusyHitSlower(t *testing.T) {
	b := newMock("g0", "g1")
	b.setModel("m", 3*time.Second, time.Second)
	// g1 busy with 10s remaining; loading on g0 (3s) wins.
	b.busy["g1"] = true
	b.cached["g1"]["m"] = true
	b.finish["g1"] = 10 * time.Second
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"))
	ds := s.Schedule(0)
	if len(ds) != 1 || ds[0].GPU != "g0" || ds[0].ExpectHit {
		t.Fatalf("dispatch = %+v", ds)
	}
}

func TestLALBFinishEstimateIncludesLocalQueue(t *testing.T) {
	b := newMock("g0", "g1")
	b.setModel("m", 10*time.Second, 4*time.Second)
	b.busy["g1"] = true
	b.cached["g1"]["m"] = true
	b.finish["g1"] = time.Second
	s := newSched(t, LALB, 0, b)
	// First request parks on g1 (finish 1s < load 10s).
	mustEnqueue(t, s, req(0, "m"), req(1, "m"), req(2, "m"))
	s.Schedule(0)
	// Queue estimates: after parking r0, est = 1s + 4s = 5s < 10s, park r1;
	// then est = 9s < 10s, park r2.
	if s.LocalQueueLen("g1") != 3 {
		t.Errorf("local queue = %d", s.LocalQueueLen("g1"))
	}
	// A fourth request would see 13s > 10s and miss onto g0.
	mustEnqueue(t, s, req(3, "m"))
	ds := s.Schedule(0)
	if len(ds) != 1 || ds[0].GPU != "g0" || ds[0].ExpectHit {
		t.Fatalf("dispatch = %+v", ds)
	}
	if got := s.EstimatedFinishWithQueue("g1", 0); got != 13*time.Second {
		t.Errorf("EstimatedFinishWithQueue = %v", got)
	}
}

func TestLocalQueuePriorityOnIdle(t *testing.T) {
	// g0 is busy and caches m; g1 is idle. LLB (run on behalf of idle g1)
	// parks the request on g0 because waiting 1s beats a 3s load.
	b := newMock("g0", "g1")
	b.setModel("m", 3*time.Second, time.Second)
	b.setModel("other", 3*time.Second, time.Second)
	b.busy["g0"] = true
	b.cached["g0"]["m"] = true
	b.finish["g0"] = time.Second
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"))
	s.Schedule(0) // parks on g0; g1 stays idle
	if s.LocalQueueLen("g0") != 1 {
		t.Fatal("expected parked request")
	}
	// g0 completes; another request waits in the global queue. The local
	// queue must win (Algorithm 1 lines 2-4).
	b.busy["g0"] = false
	b.finish["g0"] = 0
	mustEnqueue(t, s, req(1, "other"))
	ds := s.Schedule(sim.Time(2 * time.Second))
	if len(ds) == 0 || !ds[0].FromLocalQueue || ds[0].Req.ID != 0 {
		t.Fatalf("dispatches = %+v", ds)
	}
	if s.LocalQueueLen("g0") != 0 {
		t.Error("local queue should drain")
	}
}

func TestO3JumpsQueueForCacheHit(t *testing.T) {
	b := newMock("g0")
	b.setModel("cold", 3*time.Second, time.Second)
	b.setModel("hot", 3*time.Second, time.Second)
	b.cached["g0"]["hot"] = true
	s := newSched(t, LALBO3, 25, b)
	mustEnqueue(t, s, req(0, "cold"), req(1, "hot"))
	ds := s.Schedule(0)
	// O3: the hot request (id 1) jumps ahead onto g0 as a hit.
	if len(ds) == 0 || ds[0].Req.ID != 1 || !ds[0].ExpectHit {
		t.Fatalf("dispatches = %+v", ds)
	}
	if s.Counters().O3Dispatches != 1 {
		t.Errorf("O3Dispatches = %d", s.Counters().O3Dispatches)
	}
	// The cold request was skipped once.
	head := s.global.at(s.global.headPos())
	if s.GlobalQueueLen() != 1 || head.Visits() != 1 {
		t.Errorf("queue=%d visits=%d", s.GlobalQueueLen(), head.Visits())
	}
}

func TestLALBInOrderNoJump(t *testing.T) {
	b := newMock("g0")
	b.setModel("cold", 3*time.Second, time.Second)
	b.setModel("hot", 3*time.Second, time.Second)
	b.cached["g0"]["hot"] = true
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "cold"), req(1, "hot"))
	ds := s.Schedule(0)
	// In-order: head (cold) must be served first even though hot would hit.
	if len(ds) != 1 || ds[0].Req.ID != 0 || ds[0].ExpectHit {
		t.Fatalf("dispatches = %+v", ds)
	}
}

func TestO3StarvationLimit(t *testing.T) {
	b := newMock("g0")
	b.setModel("cold", 3*time.Second, time.Second)
	b.setModel("hot", 3*time.Second, time.Second)
	b.cached["g0"]["hot"] = true
	limit := 3
	s := newSched(t, LALBO3, limit, b)
	if s.O3Limit() != 3 {
		t.Fatalf("O3Limit = %d", s.O3Limit())
	}
	if err := s.Enqueue(req(0, "cold")); err != nil {
		t.Fatal(err)
	}
	// Repeatedly arrive hot requests; cold gets skipped `limit` times,
	// then must be force-dispatched.
	for i := 1; ; i++ {
		if err := s.Enqueue(req(int64(i), "hot")); err != nil {
			t.Fatal(err)
		}
		ds := s.Schedule(0)
		if len(ds) == 0 {
			t.Fatal("no dispatch")
		}
		d := ds[0]
		b.busy["g0"] = false // complete instantly for the next round
		if d.Req.ID == 0 {
			// cold finally dispatched; must have been skipped exactly
			// `limit` times.
			if d.Req.Visits() != limit {
				t.Errorf("visits = %d, want %d", d.Req.Visits(), limit)
			}
			if i != limit+1 {
				t.Errorf("cold dispatched on round %d, want %d", i, limit+1)
			}
			if s.Counters().Starved != 1 {
				t.Errorf("starved = %d", s.Counters().Starved)
			}
			return
		}
		if i > limit+2 {
			t.Fatal("cold request starved beyond the limit")
		}
	}
}

func TestLLBFallbackMissOnIdle(t *testing.T) {
	// Model cached on a busy GPU but waiting is slower than loading:
	// during the "no cached request" drain the request must land on the
	// idle GPU as a miss.
	b := newMock("g0", "g1")
	b.setModel("m", time.Second, time.Second) // cheap load
	b.busy["g1"] = true
	b.cached["g1"]["m"] = true
	b.finish["g1"] = 30 * time.Second
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"))
	ds := s.Schedule(0)
	if len(ds) != 1 || ds[0].GPU != "g0" || ds[0].ExpectHit {
		t.Fatalf("dispatches = %+v", ds)
	}
}

func TestScheduleDrainsMultipleGPUs(t *testing.T) {
	b := newMock("g0", "g1", "g2")
	for _, m := range []string{"a", "b", "c"} {
		b.setModel(m, 3*time.Second, time.Second)
	}
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "a"), req(1, "b"), req(2, "c"))
	ds := s.Schedule(0)
	if len(ds) != 3 {
		t.Fatalf("dispatches = %d", len(ds))
	}
	used := map[string]bool{}
	for _, d := range ds {
		if used[d.GPU] {
			t.Errorf("GPU %s dispatched twice in one round", d.GPU)
		}
		used[d.GPU] = true
	}
}

func TestScheduleNoIdleGPUs(t *testing.T) {
	b := newMock("g0")
	b.busy["g0"] = true
	b.setModel("m", time.Second, time.Second)
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"))
	if ds := s.Schedule(0); len(ds) != 0 {
		t.Fatalf("dispatches = %+v", ds)
	}
	if s.GlobalQueueLen() != 1 {
		t.Error("request should remain queued")
	}
}

func TestScheduleEmptyQueue(t *testing.T) {
	s := newSched(t, LALBO3, 25, newMock("g0", "g1"))
	if ds := s.Schedule(0); len(ds) != 0 {
		t.Fatalf("dispatches = %+v", ds)
	}
}

func TestLLBPrefersOtherIdleCachedGPU(t *testing.T) {
	// Head request's model cached on idle g2: LLB from g0 must send it to
	// g2 as a hit, then g0 itself stays available for the next request.
	b := newMock("g0", "g1", "g2")
	b.setModel("m", 3*time.Second, time.Second)
	b.setModel("n", 3*time.Second, time.Second)
	b.cached["g2"]["m"] = true
	s := newSched(t, LALB, 0, b)
	mustEnqueue(t, s, req(0, "m"), req(1, "n"))
	ds := s.Schedule(0)
	if len(ds) != 2 {
		t.Fatalf("dispatches = %+v", ds)
	}
	var hitGPU, missGPU string
	for _, d := range ds {
		if d.Req.ID == 0 {
			hitGPU = d.GPU
			if !d.ExpectHit {
				t.Error("request 0 should hit")
			}
		} else {
			missGPU = d.GPU
		}
	}
	if hitGPU != "g2" {
		t.Errorf("hit went to %s", hitGPU)
	}
	if missGPU == "g2" {
		t.Error("miss collided with the hit GPU")
	}
}

func mustEnqueue(t *testing.T, s *Scheduler, rs ...*Request) {
	t.Helper()
	for _, r := range rs {
		if err := s.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
}
