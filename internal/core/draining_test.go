package core

import (
	"testing"
	"time"
)

// TestDrainingGPUServesOnlyLocalQueue: a draining GPU dispatches its
// parked work but never takes global-queue requests.
func TestDrainingGPUServesOnlyLocalQueue(t *testing.T) {
	m := newMock("g0", "g1")
	m.setModel("a", 100*time.Millisecond, 10*time.Millisecond)
	m.setModel("b", 100*time.Millisecond, 10*time.Millisecond)
	// Park request 1 on g0: model a cached only on busy g0, waiting
	// beats loading.
	m.cached["g0"]["a"] = true
	m.busy["g0"] = true
	m.finish["g0"] = 5 * time.Millisecond
	s := newSched(t, LALB, 0, m)
	mustEnqueue(t, s, req(1, "a"))
	if d := s.Schedule(0); len(d) != 0 || s.LocalQueueLen("g0") != 1 {
		t.Fatalf("expected a parked request: dispatches=%v local=%d", d, s.LocalQueueLen("g0"))
	}

	// g0 finishes and is marked draining (decommission requested).
	m.busy["g0"] = false
	m.finish["g0"] = 0
	s.SetDraining("g0", true)
	if !s.Draining("g0") {
		t.Fatal("Draining not set")
	}
	mustEnqueue(t, s, req(2, "b"))
	m.busy["g1"] = true // keep g1 out of the way

	d := s.Schedule(0)
	if len(d) != 1 || d[0].Req.ID != 1 || d[0].GPU != "g0" || !d[0].FromLocalQueue {
		t.Fatalf("dispatches = %+v, want parked req 1 on g0", d)
	}
	if s.GlobalQueueLen() != 1 {
		t.Fatalf("global queue = %d, want request 2 still waiting", s.GlobalQueueLen())
	}

	// Local queue empty, still draining: g0 takes nothing more.
	m.busy["g0"] = false
	if d := s.Schedule(0); len(d) != 0 {
		t.Fatalf("draining GPU took new work: %+v", d)
	}

	// Once g1 frees up, request 2 goes there, not to the draining GPU.
	m.busy["g1"] = false
	d = s.Schedule(0)
	if len(d) != 1 || d[0].GPU != "g1" {
		t.Fatalf("dispatches = %+v, want req 2 on g1", d)
	}
}

// TestDrainingHolderNotUsedByLLB: LocalityLoadBalance must neither
// dispatch to an idle draining holder nor park behind a busy draining
// holder.
func TestDrainingHolderNotUsedByLLB(t *testing.T) {
	m := newMock("g0", "g1", "g2")
	m.setModel("a", 100*time.Millisecond, 10*time.Millisecond)
	m.cached["g1"]["a"] = true
	s := newSched(t, LALB, 0, m)

	// Idle draining holder: the request must miss onto g0 instead of
	// hitting on g1.
	s.SetDraining("g1", true)
	mustEnqueue(t, s, req(1, "a"))
	d := s.Schedule(0)
	if len(d) != 1 || d[0].GPU != "g2" && d[0].GPU != "g0" || d[0].ExpectHit {
		t.Fatalf("dispatches = %+v, want a miss on a non-draining GPU", d)
	}

	// Busy draining holder: no parking (the local queue of a draining
	// GPU accepts no new work) — the request misses instead.
	m2 := newMock("g0", "g1")
	m2.setModel("a", time.Hour, 10*time.Millisecond) // waiting always beats loading
	m2.cached["g1"]["a"] = true
	m2.busy["g1"] = true
	m2.finish["g1"] = time.Millisecond
	s2 := newSched(t, LALB, 0, m2)
	s2.SetDraining("g1", true)
	mustEnqueue(t, s2, req(1, "a"))
	d = s2.Schedule(0)
	if len(d) != 1 || d[0].GPU != "g0" || d[0].ExpectHit {
		t.Fatalf("dispatches = %+v, want a forced miss on g0", d)
	}
	if s2.LocalQueueLen("g1") != 0 {
		t.Error("request parked behind a draining GPU")
	}
}

// TestRemoveGPUGuards: removal requires an empty local queue and clears
// scheduler state.
func TestRemoveGPUGuards(t *testing.T) {
	m := newMock("g0", "g1")
	m.setModel("a", time.Hour, 10*time.Millisecond)
	m.cached["g0"]["a"] = true
	m.busy["g0"] = true
	m.finish["g0"] = time.Millisecond
	s := newSched(t, LALB, 0, m)
	mustEnqueue(t, s, req(1, "a"))
	s.Schedule(0) // parks on g0
	if s.LocalQueueLen("g0") != 1 {
		t.Fatal("setup: expected a parked request")
	}
	if err := s.RemoveGPU("g0"); err == nil {
		t.Fatal("RemoveGPU with parked work must fail")
	}
	// Dispatch the parked request, then removal succeeds.
	m.busy["g0"] = false
	s.Schedule(0)
	s.SetDraining("g0", true)
	if err := s.RemoveGPU("g0"); err != nil {
		t.Fatal(err)
	}
	if s.Draining("g0") {
		t.Error("draining flag survived removal")
	}
	if s.PendingTotal() != 0 {
		t.Errorf("pending = %d", s.PendingTotal())
	}
}
