package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"gpufaas/internal/models"
)

// GPUClass declares one device class of a heterogeneous fleet: the GPU
// type the profile store is keyed by, the usable model memory, how many
// devices of the class the cluster boots with, and the economics the
// autoscaler trades against latency (price per GPU-second, provisioning
// cold start).
type GPUClass struct {
	// Type is the GPU type; profiles are resolved per (Type, model) and
	// every type must be covered by the profile store (validated at
	// construction). Types must be unique within a FleetSpec.
	Type string
	// Memory is the usable model memory per device in bytes.
	Memory int64
	// Count is the number of devices the cluster boots with; elastic
	// scaling can grow or shrink each class afterwards.
	Count int
	// CostPerSecond prices one GPU-second of this class; it feeds the
	// Report's Cost column (GPU-seconds × CostPerSecond, summed over
	// classes). Zero means the class is not priced.
	CostPerSecond float64
	// ColdStart is the class's provisioning delay for elastic scale-up;
	// zero falls back to the caller-supplied cold start.
	ColdStart time.Duration
}

// FleetSpec declares a fleet as an ordered mix of device classes. Order
// is meaningful: it fixes device registration order (and so scheduler
// ordinals), the per-class report rows, and the default class ([0]) used
// by class-agnostic scale-ups.
type FleetSpec []GPUClass

// DefaultGPUType is the paper testbed's device class.
const DefaultGPUType = "rtx2080"

// Validate normalizes the spec in place (defaulting Memory from the
// built-in device classes or DefaultGPUMemory) and checks it is usable:
// non-empty unique types, positive memory, non-negative counts with at
// least one device overall, non-negative economics.
func (f FleetSpec) Validate() error {
	if len(f) == 0 {
		return fmt.Errorf("cluster: empty fleet spec")
	}
	seen := make(map[string]bool, len(f))
	total := 0
	for i := range f {
		c := &f[i]
		if c.Type == "" {
			return fmt.Errorf("cluster: fleet class %d has no GPU type", i)
		}
		if seen[c.Type] {
			return fmt.Errorf("cluster: duplicate fleet class %q", c.Type)
		}
		seen[c.Type] = true
		if c.Memory == 0 {
			if dc, ok := models.LookupDeviceClass(c.Type); ok {
				c.Memory = dc.MemoryBytes
			} else {
				c.Memory = DefaultGPUMemory
			}
		}
		if c.Memory < 0 {
			return fmt.Errorf("cluster: fleet class %q has negative memory %d", c.Type, c.Memory)
		}
		if c.Count < 0 {
			return fmt.Errorf("cluster: fleet class %q has negative count %d", c.Type, c.Count)
		}
		if c.CostPerSecond < 0 {
			return fmt.Errorf("cluster: fleet class %q has negative cost %g", c.Type, c.CostPerSecond)
		}
		if c.ColdStart < 0 {
			return fmt.Errorf("cluster: fleet class %q has negative cold start %v", c.Type, c.ColdStart)
		}
		total += c.Count
	}
	if total == 0 {
		return fmt.Errorf("cluster: fleet spec declares no devices")
	}
	return nil
}

// Types returns the class types in spec order.
func (f FleetSpec) Types() []string {
	out := make([]string, len(f))
	for i, c := range f {
		out[i] = c.Type
	}
	return out
}

// Class finds a class by type.
func (f FleetSpec) Class(gpuType string) (GPUClass, bool) {
	for _, c := range f {
		if c.Type == gpuType {
			return c, true
		}
	}
	return GPUClass{}, false
}

// DefaultFleet returns the built-in mix for a class type list: counts
// are zero (callers set them), memory/cost come from the models
// device-class registry.
func DefaultFleet(gpuTypes ...string) (FleetSpec, error) {
	spec := make(FleetSpec, 0, len(gpuTypes))
	for _, t := range gpuTypes {
		dc, ok := models.LookupDeviceClass(t)
		if !ok {
			return nil, fmt.Errorf("cluster: no built-in device class %q", t)
		}
		spec = append(spec, GPUClass{
			Type:          dc.Type,
			Memory:        dc.MemoryBytes,
			CostPerSecond: dc.CostPerSecond,
		})
	}
	return spec, nil
}

// ParseFleetSpec parses the gateway's -fleet flag syntax: a
// comma-separated list of "type:count[:memGiB]" entries, e.g.
//
//	t4:8,rtx2080:4
//	t4:8:15,rtx2080:4:7
//
// Types must be built-in device classes (the flag path has no explicit
// profile store to cover anything else); memory defaults to the class's
// and cost per second always comes from the class registry.
func ParseFleetSpec(s string) (FleetSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty fleet flag")
	}
	var spec FleetSpec
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("cluster: fleet entry %q is not type:count[:memGiB]", entry)
		}
		count, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("cluster: fleet entry %q: bad count: %v", entry, err)
		}
		c := GPUClass{Type: strings.TrimSpace(parts[0]), Count: count}
		dc, ok := models.LookupDeviceClass(c.Type)
		if !ok {
			known := make([]string, 0, len(models.BuiltinDeviceClasses))
			for _, b := range models.BuiltinDeviceClasses {
				known = append(known, b.Type)
			}
			return nil, fmt.Errorf("cluster: fleet entry %q: unknown device class %q (built-in: %s)",
				entry, c.Type, strings.Join(known, ", "))
		}
		c.Memory = dc.MemoryBytes
		c.CostPerSecond = dc.CostPerSecond
		if len(parts) == 3 {
			gib, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || gib <= 0 {
				return nil, fmt.Errorf("cluster: fleet entry %q: bad memGiB %q", entry, parts[2])
			}
			c.Memory = int64(gib * float64(1<<30))
		}
		spec = append(spec, c)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ClassUsage is one device class's cost accounting in a Report.
type ClassUsage struct {
	// Class is the device class (GPU type).
	Class string
	// GPUSeconds is the class's share of the fleet-size integral.
	GPUSeconds float64
	// Cost is GPUSeconds × the class's CostPerSecond.
	Cost float64 `json:",omitempty"`
	// PeakGPUs / FinalGPUs bracket the class's membership over the run.
	PeakGPUs  int
	FinalGPUs int
}

// ClassStatus is one device class's live breakdown, the per-class view
// behind the gateway's /system/scale endpoint.
type ClassStatus struct {
	Class         string  `json:"class"`
	Active        int     `json:"active"`
	Provisioning  int     `json:"provisioning"`
	Draining      int     `json:"draining"`
	Idle          int     `json:"idle"`
	GPUSeconds    float64 `json:"gpuSeconds"`
	CostPerSecond float64 `json:"costPerSecond,omitempty"`
	Cost          float64 `json:"cost,omitempty"`
}
