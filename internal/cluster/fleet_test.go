package cluster

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/core"
	"gpufaas/internal/models"
)

// mixedFleet is the test fixture: 2 cheap t4 devices and 1 fast rtx2080.
func mixedFleet() FleetSpec {
	return FleetSpec{
		{Type: "t4", Count: 2, CostPerSecond: 0.20},
		{Type: "rtx2080", Count: 1, CostPerSecond: 0.60},
	}
}

func TestFleetSpecValidation(t *testing.T) {
	bad := []FleetSpec{
		{},                     // empty
		{{Type: "", Count: 1}}, // no type
		{{Type: "t4", Count: 1}, {Type: "t4", Count: 1}},  // duplicate type
		{{Type: "t4", Count: -1}},                         // negative count
		{{Type: "t4", Count: 0}},                          // no devices at all
		{{Type: "t4", Count: 1, Memory: -1}},              // negative memory
		{{Type: "t4", Count: 1, CostPerSecond: -0.1}},     // negative cost
		{{Type: "t4", Count: 1, ColdStart: -time.Second}}, // negative cold start
	}
	for i, spec := range bad {
		cfg := DefaultConfig()
		cfg.Fleet = spec
		if _, err := New(cfg); err == nil {
			t.Errorf("fleet %d should fail: %+v", i, spec)
		}
	}
	// Memory defaults from the built-in device classes.
	spec := FleetSpec{{Type: "t4", Count: 1}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if dc, _ := models.LookupDeviceClass("t4"); spec[0].Memory != dc.MemoryBytes {
		t.Errorf("t4 memory defaulted to %d, want %d", spec[0].Memory, dc.MemoryBytes)
	}
}

func TestDeclaredFleetTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fleet = mixedFleet()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := c.GPUIDs()
	want := []string{"t4/gpu0", "t4/gpu1", "rtx2080/gpu0"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("GPUIDs = %v, want %v", ids, want)
	}
	if len(c.Managers()) != 2 {
		t.Errorf("managers = %d, want 2 (one per class)", len(c.Managers()))
	}
	for _, id := range ids {
		d, ok := c.Device(id)
		if !ok {
			t.Fatalf("no device %s", id)
		}
		wantType := strings.Split(id, "/")[0]
		if d.Type() != wantType {
			t.Errorf("%s type = %s", id, d.Type())
		}
		dc, _ := models.LookupDeviceClass(wantType)
		if d.Capacity() != dc.MemoryBytes {
			t.Errorf("%s capacity = %d, want %d", id, d.Capacity(), dc.MemoryBytes)
		}
	}
	fleet := c.Fleet()
	if len(fleet) != 2 || fleet[0].Type != "t4" || fleet[1].Type != "rtx2080" {
		t.Errorf("Fleet() = %+v", fleet)
	}
}

func TestProfileCoverageValidatedAtConstruction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fleet = mixedFleet()
	// A store covering only rtx2080 must be rejected: the t4 class's
	// estimates would silently read as zero mid-run otherwise.
	cfg.Zoo = models.Default()
	cfg.Profiles = models.TableProfiles("rtx2080", cfg.Zoo)
	_, err := New(cfg)
	if err == nil {
		t.Fatal("partial profile coverage must fail construction")
	}
	if !strings.Contains(err.Error(), "t4") {
		t.Errorf("error does not name the uncovered class: %v", err)
	}
	// Unknown class with no explicit profiles: the built-in table cannot
	// cover it.
	cfg2 := DefaultConfig()
	cfg2.Fleet = FleetSpec{{Type: "unobtanium", Count: 1, Memory: 1 << 30}}
	if _, err := New(cfg2); err == nil {
		t.Error("unknown class without explicit profiles must fail")
	}
}

// TestDeclaredHomogeneousMatchesLegacyMetrics pins that a declared
// homogeneous rtx2080×12 fleet reproduces the legacy 3×4 topology's
// metrics exactly — the node grouping is bookkeeping, not behavior.
func TestDeclaredHomogeneousMatchesLegacyMetrics(t *testing.T) {
	run := func(declared bool) Report {
		cfg := testConfig(core.LALBO3)
		if declared {
			cfg.Fleet = FleetSpec{{Type: DefaultGPUType, Memory: DefaultGPUMemory, Count: 12}}
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.RunWorkload(tinyWorkload(60, 150*time.Millisecond, "resnet18", "vgg19", "densenet121"))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	legacy, declared := run(false), run(true)
	// The declared run adds the per-class breakdown; blank it for the
	// field-by-field comparison.
	declared.ClassUsage = nil
	if !reflect.DeepEqual(legacy, declared) {
		t.Errorf("declared homogeneous fleet diverged from legacy topology:\nlegacy:   %+v\ndeclared: %+v", legacy, declared)
	}
}

// TestMixedFleetUsesPerTypeProfiles is the type-resolved scheduling
// check: the same model must run slower on the t4 than on the rtx2080,
// with the scheduler's estimates (and so the simulated service times)
// resolved through each device's own profile.
func TestMixedFleetUsesPerTypeProfiles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fleet = FleetSpec{
		{Type: "t4", Count: 1, CostPerSecond: 0.20},
		{Type: "rtx2080", Count: 1, CostPerSecond: 0.60},
	}
	cfg.Policy = core.LB
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.KeepResults(true)
	// Two same-model requests at t=0: LB dispatches to both (idle) GPUs.
	if _, err := c.RunWorkload(tinyWorkload(2, 0, "resnet18")); err != nil {
		t.Fatal(err)
	}
	byGPU := map[string]time.Duration{}
	for _, r := range c.Results() {
		byGPU[r.GPU] = r.InferTime
		if r.Hit {
			t.Errorf("req %d was a hit on a cold fleet", r.ReqID)
		}
	}
	slow, fast := byGPU["t4/gpu0"], byGPU["rtx2080/gpu0"]
	if slow == 0 || fast == 0 {
		t.Fatalf("requests did not spread over both classes: %v", byGPU)
	}
	if ratio := float64(slow) / float64(fast); math.Abs(ratio-1.6) > 0.01 {
		t.Errorf("t4/rtx2080 inference ratio = %.3f, want 1.6 (per-type profiles)", ratio)
	}
}

func TestAddGPUByClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fleet = mixedFleet()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.AddGPU("rtx2080", 0)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := c.Device(id)
	if !ok || d.Type() != "rtx2080" {
		t.Fatalf("added device %s type = %v", id, d)
	}
	// Default class is Fleet[0].
	id2, err := c.AddGPU("", 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := c.Device(id2)
	if d2.Type() != "t4" {
		t.Errorf("default-class device type = %s, want t4", d2.Type())
	}
	if _, err := c.AddGPU("unobtanium", 0); err == nil {
		t.Error("provisioning an undeclared class must fail")
	}
	checkMembership(t, c)
}

// TestMixedFleetCostAccounting runs a tiny workload on the mixed fleet
// and checks the report's cost column against the per-class GPU-seconds.
func TestMixedFleetCostAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fleet = mixedFleet()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWorkload(tinyWorkload(9, 100*time.Millisecond, "resnet18", "vgg19"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ClassUsage) != 2 {
		t.Fatalf("ClassUsage = %+v", rep.ClassUsage)
	}
	t4, fast := rep.ClassUsage[0], rep.ClassUsage[1]
	if t4.Class != "t4" || fast.Class != "rtx2080" {
		t.Fatalf("class order = %s, %s (want spec order)", t4.Class, fast.Class)
	}
	if t4.FinalGPUs != 2 || fast.FinalGPUs != 1 || t4.PeakGPUs != 2 || fast.PeakGPUs != 1 {
		t.Errorf("class membership = %+v", rep.ClassUsage)
	}
	wantSecs := t4.GPUSeconds + fast.GPUSeconds
	if math.Abs(wantSecs-rep.GPUSeconds) > 1e-9 {
		t.Errorf("class GPU-seconds sum %.3f != total %.3f", wantSecs, rep.GPUSeconds)
	}
	wantCost := t4.GPUSeconds*0.20 + fast.GPUSeconds*0.60
	if math.Abs(rep.Cost-wantCost) > 1e-9 {
		t.Errorf("Cost = %.4f, want %.4f", rep.Cost, wantCost)
	}
	if t4.Cost <= 0 || fast.Cost <= 0 {
		t.Errorf("per-class costs = %+v", rep.ClassUsage)
	}

	// The live per-class view agrees on membership and pricing.
	sts := c.ClassStatuses()
	if len(sts) != 2 || sts[0].Class != "t4" || sts[0].CostPerSecond != 0.20 {
		t.Fatalf("ClassStatuses = %+v", sts)
	}
	if sts[0].Active != 2 || sts[0].Idle != 2 || sts[1].Active != 1 {
		t.Errorf("post-run class statuses = %+v", sts)
	}
	if sts[0].Cost <= 0 {
		t.Errorf("live cost = %+v", sts[0])
	}
}

// TestHomogeneousReportsOmitClassFields pins the golden-compatibility
// contract: legacy configs report no cost column and no per-class rows.
func TestHomogeneousReportsOmitClassFields(t *testing.T) {
	c, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWorkload(tinyWorkload(4, 100*time.Millisecond, "resnet18"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost != 0 || rep.ClassUsage != nil {
		t.Errorf("legacy report grew class fields: cost=%g usage=%+v", rep.Cost, rep.ClassUsage)
	}
}

// TestMixedFleetTieredAutoscale runs a mixed fleet under the tiered
// policy end to end: the cheap tier grows first, and the per-class
// scale events carry the class label.
func TestMixedFleetTieredAutoscale(t *testing.T) {
	pol, err := autoscale.NewTiered(autoscale.Tiered{
		Tiers:     []string{"t4", "rtx2080"},
		TierCaps:  []int{6, 2},
		TargetP95: 3,
		Step:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fleet = FleetSpec{
		{Type: "t4", Count: 2, CostPerSecond: 0.20},
		{Type: "rtx2080", Count: 0, CostPerSecond: 0.60, ColdStart: time.Second},
	}
	cfg.Autoscale = &autoscale.Config{
		Policy:    pol,
		Interval:  2 * time.Second,
		MinGPUs:   2,
		MaxGPUs:   8,
		ColdStart: time.Second,
		Horizon:   2 * time.Minute,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWorkload(tinyWorkload(150, 200*time.Millisecond, "resnet18", "vgg19", "alexnet", "densenet121"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 150 || rep.Failed != 0 {
		t.Fatalf("report = requests %d failed %d", rep.Requests, rep.Failed)
	}
	if rep.ScaleUps == 0 {
		t.Fatal("tiered autoscaler never scaled up under a saturating workload")
	}
	sawClass := false
	for _, ev := range rep.ScaleEvents {
		if ev.Class == "" {
			t.Errorf("classed scale event lost its class: %+v", ev)
		}
		if ev.Class == "t4" && ev.Action == autoscale.ActionScaleUp {
			sawClass = true
		}
	}
	if !sawClass {
		t.Error("cheap tier never scaled up first")
	}
	if rep.Cost <= 0 {
		t.Errorf("Cost = %g", rep.Cost)
	}
	checkMembership(t, c)
}

func TestParseFleetSpec(t *testing.T) {
	spec, err := ParseFleetSpec("t4:8,rtx2080:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 2 || spec[0].Type != "t4" || spec[0].Count != 8 || spec[1].Type != "rtx2080" || spec[1].Count != 4 {
		t.Fatalf("spec = %+v", spec)
	}
	if dc, _ := models.LookupDeviceClass("t4"); spec[0].Memory != dc.MemoryBytes || spec[0].CostPerSecond != dc.CostPerSecond {
		t.Errorf("t4 defaults not applied: %+v", spec[0])
	}
	// Explicit memory override in GiB.
	spec, err = ParseFleetSpec("rtx2080:2:5.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(5.5 * float64(1<<30)); spec[0].Memory != want {
		t.Errorf("memory = %d, want %d", spec[0].Memory, want)
	}
	for _, bad := range []string{"", "t4", "t4:x", "t4:1:zero", "t4:1,t4:2", "t4:0", "mygpu:4"} {
		if _, err := ParseFleetSpec(bad); err == nil {
			t.Errorf("ParseFleetSpec(%q) should fail", bad)
		}
	}
}
