package cluster

// Failure-path tests: the failure × drain interplay table, retry-budget
// exhaustion, and request conservation on a scripted chaos run. Timings
// lean on the default profile store (resnet18 ≈ 2.5s load + 1.3s infer,
// vgg19 ≈ 4.1s load + 1.3s infer on the default GPU type), which the
// sim makes exactly reproducible.

import (
	"testing"
	"time"

	"gpufaas/internal/chaos"
	"gpufaas/internal/core"
	"gpufaas/internal/sim"
	"gpufaas/internal/trace"
)

// chaosTestConfig is a 1-node / 2-GPU fleet with the given total retry
// attempt budget (0 = retry off).
func chaosTestConfig(retry int) Config {
	cfg := testConfig(core.LALB)
	cfg.Nodes, cfg.GPUsPerNode = 1, 2
	cfg.Retry = core.RetryPolicy{MaxAttempts: retry}
	return cfg
}

// failAt schedules a FailGPU call inside the run.
func failAt(t *testing.T, c *Cluster, at time.Duration, gpuID string) {
	t.Helper()
	if _, err := c.Engine().At(sim.Time(at), "test.fail "+gpuID, func(now sim.Time) {
		if err := c.FailGPU(gpuID); err != nil {
			t.Errorf("FailGPU(%s) at %v: %v", gpuID, at, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFailureDrainInterplay is the interplay table: a GPU that fails
// while draining, a GPU that fails mid-batch, and a request whose retry
// is already queued when its replacement GPU fails too. With retry
// enabled every interrupted request must still complete; accounting and
// membership views must agree afterwards.
func TestFailureDrainInterplay(t *testing.T) {
	const victim = "node0/gpu0"
	cases := []struct {
		name  string
		retry int
		setup func(t *testing.T, c *Cluster) []int64 // returns expected completed request IDs
		reqs  func() []trace.Request
		check func(t *testing.T, rep Report)
	}{
		{
			// gpu0 is mid-drain (in-flight resnet18 + parked same-model
			// followers) when it fails: the in-flight attempt interrupts
			// and re-queues, parked work re-queues without consuming an
			// attempt, and the drain state must not wedge removal.
			name:  "fail-while-draining",
			retry: 3,
			setup: func(t *testing.T, c *Cluster) []int64 {
				if _, err := c.Engine().At(sim.Time(120*time.Millisecond), "test.drain", func(now sim.Time) {
					if err := c.DecommissionGPU(victim, true); err != nil {
						t.Errorf("drain decommission: %v", err)
					}
				}); err != nil {
					t.Fatal(err)
				}
				failAt(t, c, 1*time.Second, victim)
				ids := make([]int64, 12)
				for i := range ids {
					ids[i] = int64(i)
				}
				return ids
			},
			reqs: func() []trace.Request {
				return tinyWorkload(12, 20*time.Millisecond, "resnet18", "vgg19")
			},
			check: func(t *testing.T, rep Report) {
				if rep.Requests != 12 || rep.Failed != 0 {
					t.Fatalf("report = requests %d failed %d", rep.Requests, rep.Failed)
				}
				if rep.Failures != 1 {
					t.Errorf("Failures = %d, want 1", rep.Failures)
				}
				if rep.Interrupted == 0 {
					t.Error("failing a draining GPU with in-flight work interrupted nothing")
				}
				if rep.Retries != rep.Interrupted {
					t.Errorf("Retries = %d, Interrupted = %d: every interrupt had budget left", rep.Retries, rep.Interrupted)
				}
			},
		},
		{
			// vgg19 pins gpu0 until ~5.4s; five resnet18s land on gpu1 —
			// the first serves solo, the rest coalesce into an in-flight
			// batch at ~3.8s. Failing gpu1 at 4.5s interrupts the whole
			// batch; every member re-queues and completes on gpu0.
			name:  "fail-mid-batch",
			retry: 3,
			setup: func(t *testing.T, c *Cluster) []int64 {
				failAt(t, c, 4500*time.Millisecond, "node0/gpu1")
				return []int64{0, 1, 2, 3, 4, 5}
			},
			reqs: func() []trace.Request {
				reqs := tinyWorkload(1, 0, "vgg19")
				for i := 0; i < 5; i++ {
					r := tinyWorkload(1, 0, "resnet18")[0]
					r.ID = int64(i + 1)
					r.Arrival = 10 * time.Millisecond
					reqs = append(reqs, r)
				}
				return reqs
			},
			check: func(t *testing.T, rep Report) {
				if rep.Requests != 6 || rep.Failed != 0 {
					t.Fatalf("report = requests %d failed %d", rep.Requests, rep.Failed)
				}
				if rep.BatchedDispatches == 0 {
					t.Fatal("setup never formed a batch — the scenario proves nothing")
				}
				if rep.Interrupted < 2 {
					t.Errorf("Interrupted = %d, want the whole in-flight batch (>= 2)", rep.Interrupted)
				}
				if rep.Retries != rep.Interrupted {
					t.Errorf("Retries = %d, Interrupted = %d", rep.Retries, rep.Interrupted)
				}
			},
		},
		{
			// The retry of a failed attempt is re-queued and running on
			// gpu1 when gpu1 fails too: the second interrupt exhausts a
			// 2-attempt budget and the request drops as retry_exhausted.
			name:  "fail-with-retry-queued",
			retry: 2,
			setup: func(t *testing.T, c *Cluster) []int64 {
				failAt(t, c, 1*time.Second, victim)
				failAt(t, c, 2*time.Second, "node0/gpu1")
				return nil
			},
			reqs: func() []trace.Request {
				return tinyWorkload(1, 0, "resnet18")
			},
			check: func(t *testing.T, rep Report) {
				if rep.Requests != 0 || rep.Failed != 1 {
					t.Fatalf("report = requests %d failed %d", rep.Requests, rep.Failed)
				}
				if rep.Failures != 2 || rep.Interrupted != 2 || rep.Retries != 1 {
					t.Errorf("failures %d interrupted %d retries %d, want 2/2/1",
						rep.Failures, rep.Interrupted, rep.Retries)
				}
				if rep.FailedByReason["retry_exhausted"] != 1 {
					t.Errorf("failure split = %v, want retry_exhausted: 1", rep.FailedByReason)
				}
			},
		},
		{
			// Same first failure with retry off: the interrupted attempt
			// drops immediately, attributed to the fault itself.
			name:  "fail-retry-off",
			retry: 0,
			setup: func(t *testing.T, c *Cluster) []int64 {
				failAt(t, c, 1*time.Second, victim)
				return nil
			},
			reqs: func() []trace.Request {
				return tinyWorkload(1, 0, "resnet18")
			},
			check: func(t *testing.T, rep Report) {
				if rep.Requests != 0 || rep.Failed != 1 {
					t.Fatalf("report = requests %d failed %d", rep.Requests, rep.Failed)
				}
				if rep.Retries != 0 {
					t.Errorf("Retries = %d with retry off", rep.Retries)
				}
				if rep.FailedByReason["fault"] != 1 {
					t.Errorf("failure split = %v, want fault: 1", rep.FailedByReason)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := chaosTestConfig(tc.retry)
			if tc.name == "fail-mid-batch" {
				cfg.MaxBatch = 8
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.KeepResults(true)
			wantDone := tc.setup(t, c)
			rep, err := c.RunWorkload(tc.reqs())
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, rep)
			// Whatever failed, the views must agree: the dead GPU is out
			// of every index and the cache serves no dead holder.
			checkMembership(t, c)
			if c.Scheduler().PendingTotal() != 0 {
				t.Error("scheduler still has pending work")
			}
			seen := map[int64]bool{}
			for _, r := range c.Results() {
				if seen[r.ReqID] {
					t.Errorf("request %d completed twice", r.ReqID)
				}
				seen[r.ReqID] = true
			}
			for _, id := range wantDone {
				if !seen[id] {
					t.Errorf("request %d never completed", id)
				}
			}
		})
	}
}

// TestFailGPUAccounting pins the per-GPU failure counters and the
// schedulable-GPU readiness signal across a failure.
func TestFailGPUAccounting(t *testing.T) {
	c, err := New(chaosTestConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SchedulableGPUs(); got != 2 {
		t.Fatalf("SchedulableGPUs = %d, want 2", got)
	}
	if err := c.FailGPU("nope"); err == nil {
		t.Error("failing an unknown GPU must error")
	}
	if err := c.FailGPU("node0/gpu1"); err != nil {
		t.Fatal(err)
	}
	if got := c.SchedulableGPUs(); got != 1 {
		t.Errorf("SchedulableGPUs = %d after failure, want 1", got)
	}
	if got := c.GPUFailures(); got["node0/gpu1"] != 1 || len(got) != 1 {
		t.Errorf("GPUFailures = %v", got)
	}
	if _, ok := c.Device("node0/gpu1"); ok {
		t.Error("device lookup still resolves the failed GPU")
	}
	checkMembership(t, c)
}

// TestChaosRunConservation runs a scripted chaos trace — two crashes
// (one with a straggler window first) and MTTR recovery — and requires
// the conservation identity: completed + failed == offered, with retry
// on bleeding nothing and retry off bleeding exactly the interrupted
// attempts.
func TestChaosRunConservation(t *testing.T) {
	const offered = 40
	run := func(retry int) Report {
		cfg := chaosTestConfig(retry)
		cfg.MaxBatch = 4
		cfg.Chaos = &chaos.Config{
			Seed: 7,
			MTTR: 2 * time.Second,
			Script: []chaos.Fault{
				{At: 1500 * time.Millisecond, Ord: 0, Kind: chaos.Crash},
				{At: 2 * time.Second, Ord: 1, Kind: chaos.Straggle, Factor: 2, Window: time.Second},
				{At: 4 * time.Second, Ord: 1, Kind: chaos.Crash},
			},
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.RunWorkload(tinyWorkload(offered, 100*time.Millisecond, "resnet18", "vgg19", "alexnet"))
		if err != nil {
			t.Fatal(err)
		}
		checkMembership(t, c)
		return rep
	}
	t.Run("retry-on", func(t *testing.T) {
		rep := run(3)
		if rep.Requests+rep.Failed != offered {
			t.Fatalf("conservation violated: %d completed + %d failed != %d offered",
				rep.Requests, rep.Failed, offered)
		}
		if rep.Failed != 0 {
			t.Errorf("retry-on bled %d requests (%v)", rep.Failed, rep.FailedByReason)
		}
		if rep.Failures != 2 {
			t.Errorf("Failures = %d, want both scripted crashes", rep.Failures)
		}
		if rep.Interrupted == 0 {
			t.Error("scripted crashes under load interrupted nothing")
		}
	})
	t.Run("retry-off", func(t *testing.T) {
		rep := run(0)
		if rep.Requests+rep.Failed != offered {
			t.Fatalf("conservation violated: %d completed + %d failed != %d offered",
				rep.Requests, rep.Failed, offered)
		}
		if rep.Failed != rep.Interrupted {
			t.Errorf("retry-off must drop exactly the interrupted attempts: failed %d, interrupted %d",
				rep.Failed, rep.Interrupted)
		}
		if rep.FailedByReason["fault"] != rep.Failed {
			t.Errorf("failure split = %v, want all %d attributed to faults", rep.FailedByReason, rep.Failed)
		}
	})
}

// TestChaosRunDeterministic: the same scripted chaos run twice produces
// identical reports — the fault path introduces no map-order or timer
// nondeterminism.
func TestChaosRunDeterministic(t *testing.T) {
	run := func() Report {
		cfg := chaosTestConfig(2)
		cfg.MaxBatch = 4
		cfg.Chaos = &chaos.Config{
			Seed:    11,
			MTBF:    20 * time.Second,
			MTTR:    3 * time.Second,
			Horizon: 15 * time.Second,
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.RunWorkload(tinyWorkload(60, 80*time.Millisecond, "resnet18", "vgg19", "alexnet", "squeezenet1.1"))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Failures == 0 {
		t.Fatal("sampled MTBF produced no crashes — tighten MTBF or Horizon")
	}
	if a.Requests != b.Requests || a.Failed != b.Failed || a.Makespan != b.Makespan ||
		a.Failures != b.Failures || a.Interrupted != b.Interrupted || a.Retries != b.Retries {
		t.Fatalf("nondeterministic chaos runs:\n%+v\n%+v", a, b)
	}
}
