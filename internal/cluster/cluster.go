// Package cluster wires the reproduction together: GPU devices, per-node
// GPU Managers, the global Cache Manager, and the Scheduler, following the
// architecture of Fig. 2 in the paper. It drives them in either of two
// modes:
//
//   - simulated time: RunWorkload feeds a request stream through a
//     discrete-event engine and returns the evaluation metrics — this is
//     what every benchmark uses;
//   - live time: Submit enqueues one request under the wall clock; the
//     FaaS gateway uses this path.
//
// The Cluster implements core.Backend, giving the Scheduler its view of
// GPU status, cache contents and profiled times.
package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/cache"
	"gpufaas/internal/chaos"
	"gpufaas/internal/core"
	"gpufaas/internal/gpu"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/obs"
	"gpufaas/internal/ordset"
	"gpufaas/internal/sim"
	"gpufaas/internal/stats"
	"gpufaas/internal/trace"
)

// Config describes the cluster to build. The defaults mirror the paper's
// testbed: 3 nodes x 4 GeForce RTX 2080 GPUs with 8 GB memory each.
type Config struct {
	// Fleet declares the GPU fleet as an ordered mix of device classes
	// (heterogeneous fleets, per-class cost accounting, tiered
	// autoscaling). When nil, a homogeneous DefaultGPUType fleet of
	// Nodes × GPUsPerNode devices is built in the paper's node layout.
	Fleet FleetSpec
	// Nodes / GPUsPerNode / GPUMemory shape the homogeneous default
	// fleet; they are ignored when Fleet is declared.
	Nodes       int
	GPUsPerNode int
	GPUMemory   int64 // bytes per GPU
	Policy      core.Policy
	O3Limit     int
	// DisableLocalQueue is the finish-time-estimation ablation knob
	// (core.Config.DisableLocalQueue).
	DisableLocalQueue bool
	// ScanPlacement selects the scheduler's reference scan-placement
	// path (core.Config.ScanPlacement); decision-identical, used as the
	// benchmark baseline for the indexed path.
	ScanPlacement bool
	// MaxBatch caps how many same-model requests one dispatch may
	// coalesce into a single batched GPU launch (core.Config.MaxBatch).
	// <= 1 disables batching entirely: decisions and reports are then
	// byte-identical to the pre-batching build.
	MaxBatch int
	// BatchWait is the optional linger window (core.Config.BatchWait):
	// with every GPU idle, the queue head is held up to this long past
	// its arrival waiting for same-model companions. The cluster arms a
	// clock wake-up at the scheduler's PendingWake deadline, so the
	// simulation drains even when the linger is the only pending event.
	// Ignored unless MaxBatch > 1.
	BatchWait   time.Duration
	CachePolicy string // cache.PolicyLRU (default), PolicyFIFO, PolicyLFU
	Zoo         *models.Zoo
	Profiles    *models.ProfileStore
	// Clock overrides the default simulated clock (live mode passes a
	// RealClock). When nil, a fresh discrete-event engine is created.
	Clock sim.Clock
	// Sink forwards GPU status/completions (e.g. to the Datastore); may
	// be nil.
	Sink gpumgr.StatusSink
	// OnResult is called after each completion, outside metric
	// bookkeeping; may be nil.
	OnResult func(gpumgr.Result)
	// OnDrop is called when a dispatched request fails to execute and
	// is dropped (per-tenant quota, impossible model); may be nil. The
	// live gateway uses it to fail the waiting invocation immediately
	// instead of letting it ride out the invoke timeout.
	OnDrop func(id int64, err error)
	// Autoscale, when non-nil, attaches a policy-driven autoscaler that
	// provisions/decommissions GPUs at (simulated or wall) time. In
	// simulated-time mode Autoscale.Horizon must be set, or the
	// rescheduling tick would keep RunWorkload from draining.
	Autoscale *autoscale.Config
	// Obs selects the observability features (lifecycle tracing, latency
	// decomposition, time-series telemetry). The zero value disables all
	// of them: the hot paths then pay one nil check per hook and reports
	// marshal byte-identically to pre-observability goldens.
	Obs obs.Options
	// Chaos, when it enables anything, attaches a deterministic fault
	// injector: seeded GPU crashes (instant decommission, no drain),
	// transient stragglers, and MTTR recovery. In simulated-time mode a
	// sampled fault model requires Chaos.Horizon (the crash→recover
	// chain would otherwise keep the engine from draining). Nil or zero
	// injects nothing and keeps reports byte-identical to fault-free
	// builds.
	Chaos *chaos.Config
	// Retry governs what happens to a request whose GPU fails mid-flight
	// (including every member of an in-flight batch): while the policy
	// allows another attempt the request re-queues at the front of the
	// global queue (deterministic position, GPU-seconds charged once per
	// attempt); once exhausted — or with the zero policy — it fails with
	// reason "retry_exhausted"/"fault".
	Retry core.RetryPolicy
}

// DefaultGPUMemory is the usable model memory per GPU: the testbed's
// GeForce RTX 2080 has 8 GB physical memory of which roughly 1 GB is
// consumed by the CUDA context and framework runtime, leaving ~7 GB for
// model residency. This is the capacity the Cache Manager allocates
// against.
const DefaultGPUMemory = 7 << 30

// DefaultConfig returns the paper's 12-GPU testbed configuration with the
// LALB+O3 scheduler.
func DefaultConfig() Config {
	return Config{
		Nodes:       3,
		GPUsPerNode: 4,
		GPUMemory:   DefaultGPUMemory,
		Policy:      core.LALBO3,
		O3Limit:     core.DefaultO3Limit,
		CachePolicy: cache.PolicyLRU,
	}
}

// Cluster is the assembled GPU-FaaS system.
type Cluster struct {
	mu sync.Mutex

	cfg      Config
	engine   *sim.Engine // nil in live mode
	clock    sim.Clock
	zoo      *models.Zoo
	profiles *models.ProfileStore
	cacheMgr *cache.Manager
	sched    *core.Scheduler
	mgrs     []*gpumgr.Manager
	devByID  map[string]*gpu.Device
	mgrByDev map[string]*gpumgr.Manager
	// fleet is the normalized device-class mix; declaredFleet records
	// whether the caller declared it (per-class report rows) or it was
	// derived from the homogeneous Nodes × GPUsPerNode default (legacy
	// reports stay byte-identical).
	fleet         FleetSpec
	declaredFleet bool
	// gpuIDs is the membership list. Mutations (elastic add/remove)
	// happen under the harness serialization AND idsMu; GPUIDs()
	// snapshots under idsMu alone, so it stays safe to call from result
	// hooks and sinks that already hold c.mu in live mode (idsMu is a
	// leaf lock — never held while taking c.mu).
	gpuIDs []string
	idsMu  sync.Mutex

	// idle is the incremental idle-GPU set as ascending registration
	// ordinals; it is maintained from GPU status transitions
	// (statusSink) so the scheduler's per-decision candidate scan is
	// proportional to the idle count, never the cluster size. The Cache
	// Manager's index is the ordinal authority (ords are assigned at
	// RegisterGPU, monotone and never reused); devByOrd gives the
	// scheduler's per-decision device lookups slice indexing instead of
	// a map probe.
	idle     []ordset.Ord
	devByOrd []*gpu.Device // ord -> device; nil once removed
	userSink gpumgr.StatusSink

	// Elastic membership (autoscale subsystem). gpuState tracks each
	// member's lifecycle.
	gpuState   map[string]gpuLifecycle
	addedAt    map[string]sim.Time
	activation map[string]func() // pending cold-start timer cancels
	gpuSeq     int               // provisioned-GPU name counter
	elasticMgr *gpumgr.Manager   // lazily-created manager for provisioned GPUs
	gpuSeconds float64           // accumulated GPU-seconds of removed members
	// classSeconds accumulates removed members' GPU-seconds per device
	// class; classCount/classPeak track each class's current membership
	// and its high-water mark.
	classSeconds map[string]float64
	classCount   map[string]int
	classPeak    map[string]int
	// Removed members' phase durations accumulate here so the report's
	// utilization covers the whole fleet history, not just survivors.
	remIdle, remLoading, remInferring time.Duration
	scaleUps                          int64
	scaleDowns                        int64
	peakGPUs                          int
	scaler                            *autoscale.Autoscaler

	// Observability (Config.Obs). All nil/zero when disabled; confined
	// to the harness's serialization like every other collector here.
	// obsInFlight counts dispatched-not-completed requests for the
	// series recorder.
	tracer      *obs.Tracer
	breakdown   *obs.Collector
	seriesRec   *obs.Recorder
	obsInFlight int

	// Linger wake-up dedup (Config.BatchWait): batchWakeArmed is true
	// while a clock timer is pending at batchWakeAt. A later, earlier
	// deadline arms a second timer; the stale one fires a harmless
	// no-op Schedule. Deterministic — pure sim-clock state.
	batchWakeAt    sim.Time
	batchWakeArmed bool

	// Fault injection (Config.Chaos) and retry accounting. failures
	// counts GPU crash events, interrupted the in-flight attempts those
	// crashes aborted, retries the interrupted requests granted another
	// attempt. failedByReason splits the failed counter by drop cause;
	// gpuFailures keeps a cumulative per-GPU crash count (the device
	// itself is gone after a crash, so the counter outlives it).
	injector       *chaos.Injector
	failures       int64
	interrupted    int64
	retries        int64
	failedByReason map[string]int64
	gpuFailures    map[string]int64

	latencies  *stats.Sample
	perModel   map[string]*stats.Welford
	results    []gpumgr.Result
	keepResult bool
	completed  int64
	failed     int64
	lastFinish sim.Time
	topModel   string
	onResult   func(gpumgr.Result)
	onDrop     func(id int64, err error)

	// stream is the active streaming replay (RunWorkloadStream); nil on
	// the materialized and live paths. While set, completed requests are
	// recycled through its arena.
	stream *streamRun
}

// gpuLifecycle is a member GPU's elastic-membership state.
type gpuLifecycle int

const (
	// gpuActive: schedulable.
	gpuActive gpuLifecycle = iota
	// gpuProvisioning: added, still inside the cold-start window; not
	// schedulable and invisible to the idle set.
	gpuProvisioning
	// gpuDraining: decommission requested; finishes in-flight and
	// parked work, takes no new work, leaves once quiescent.
	gpuDraining
)

// lockedClock wraps a clock so that timer callbacks run holding the
// cluster mutex; this is what makes the passive components safe under the
// real clock's timer goroutines.
type lockedClock struct {
	inner sim.Clock
	mu    *sync.Mutex
}

func (c lockedClock) Now() sim.Time { return c.inner.Now() }
func (c lockedClock) AfterFunc(d sim.Time, name string, fn func(now sim.Time)) func() {
	return c.inner.AfterFunc(d, name, func(now sim.Time) {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn(now)
	})
}

// validateProfileCoverage fails construction when any (device class,
// zoo model) pair lacks a profile. Before this check existed a missing
// profile surfaced as silently-zero LLB estimates (and a mid-run
// dispatch error); now the miss is impossible past New, and the
// backendView panics if one happens anyway.
func validateProfileCoverage(profiles *models.ProfileStore, fleet FleetSpec, zoo *models.Zoo) error {
	for _, class := range fleet {
		for _, name := range zoo.Names() {
			if _, ok := profiles.Get(class.Type, name); !ok {
				return fmt.Errorf("cluster: profile store does not cover model %q on GPU type %q (every (class, model) pair must be profiled)", name, class.Type)
			}
		}
	}
	return nil
}

// New assembles a cluster from the config.
func New(cfg Config) (*Cluster, error) {
	declared := cfg.Fleet != nil
	if declared {
		if err := cfg.Fleet.Validate(); err != nil {
			return nil, err
		}
	} else {
		if cfg.Nodes <= 0 || cfg.GPUsPerNode <= 0 {
			return nil, fmt.Errorf("cluster: invalid topology %dx%d", cfg.Nodes, cfg.GPUsPerNode)
		}
		if cfg.GPUMemory <= 0 {
			return nil, fmt.Errorf("cluster: invalid GPU memory %d", cfg.GPUMemory)
		}
		cfg.Fleet = FleetSpec{{
			Type:   DefaultGPUType,
			Memory: cfg.GPUMemory,
			Count:  cfg.Nodes * cfg.GPUsPerNode,
		}}
	}
	if cfg.Zoo == nil {
		cfg.Zoo = models.Default()
	}
	if cfg.Profiles == nil {
		var err error
		cfg.Profiles, err = models.FleetTableProfiles(cfg.Zoo, cfg.Fleet.Types()...)
		if err != nil {
			return nil, err
		}
	}
	if err := validateProfileCoverage(cfg.Profiles, cfg.Fleet, cfg.Zoo); err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:           cfg,
		fleet:         cfg.Fleet,
		declaredFleet: declared,
		zoo:           cfg.Zoo,
		profiles:      cfg.Profiles,
		devByID:       make(map[string]*gpu.Device),
		mgrByDev:      make(map[string]*gpumgr.Manager),
		gpuState:      make(map[string]gpuLifecycle),
		addedAt:       make(map[string]sim.Time),
		activation:    make(map[string]func()),
		classSeconds:  make(map[string]float64),
		classCount:    make(map[string]int),
		classPeak:     make(map[string]int),
		userSink:      cfg.Sink,
		latencies:     stats.NewSample(4096),
		perModel:      make(map[string]*stats.Welford),
		onResult:      cfg.OnResult,
		onDrop:        cfg.OnDrop,
	}
	if cfg.Clock == nil {
		c.engine = sim.New()
		c.clock = sim.SimClock{E: c.engine}
	} else {
		c.clock = lockedClock{inner: cfg.Clock, mu: &c.mu}
	}
	if cfg.Obs.Trace {
		c.tracer = obs.NewTracer(cfg.Obs.SampleMod, cfg.Obs.Cell)
	}
	if cfg.Obs.Breakdown {
		c.breakdown = obs.NewCollector()
	}
	if cfg.Obs.Series {
		c.seriesRec = obs.NewRecorder(cfg.Obs.SeriesInterval)
	}

	sizeOf := func(model string) (int64, bool) {
		m, ok := cfg.Zoo.Get(model)
		if !ok {
			return 0, false
		}
		return m.OccupancyBytes(), true
	}
	var err error
	c.cacheMgr, err = cache.NewManager(cfg.CachePolicy, sizeOf)
	if err != nil {
		return nil, err
	}

	newManager := func(node string) (*gpumgr.Manager, error) {
		return gpumgr.New(gpumgr.Config{
			Node:       node,
			Clock:      c.clock,
			Cache:      c.cacheMgr,
			Zoo:        cfg.Zoo,
			Profiles:   cfg.Profiles,
			Sink:       statusSink{c: c},
			OnComplete: c.handleComplete,
		})
	}
	adopt := func(mgr *gpumgr.Manager, dev *gpu.Device) error {
		if err := mgr.AddDevice(dev); err != nil {
			return err
		}
		c.devByID[dev.ID()] = dev
		c.mgrByDev[dev.ID()] = mgr
		c.trackOrd(dev)
		c.gpuState[dev.ID()] = gpuActive
		c.addedAt[dev.ID()] = 0
		c.gpuIDs = append(c.gpuIDs, dev.ID())
		return nil
	}
	if declared {
		// Declared fleets group each device class under one manager
		// node named after the class; registration (scheduler ordinal)
		// order is spec order.
		for _, class := range cfg.Fleet {
			if class.Count == 0 {
				continue
			}
			mgr, err := newManager(class.Type)
			if err != nil {
				return nil, err
			}
			for g := 0; g < class.Count; g++ {
				dev, err := gpu.New(gpu.Config{
					ID:       fmt.Sprintf("%s/gpu%d", class.Type, g),
					Node:     mgr.Node(),
					Type:     class.Type,
					Capacity: class.Memory,
				})
				if err != nil {
					return nil, err
				}
				if err := adopt(mgr, dev); err != nil {
					return nil, err
				}
			}
			c.mgrs = append(c.mgrs, mgr)
		}
	} else {
		// The paper's homogeneous layout: Nodes managers of GPUsPerNode
		// devices each.
		class := cfg.Fleet[0]
		for n := 0; n < cfg.Nodes; n++ {
			mgr, err := newManager(fmt.Sprintf("node%d", n))
			if err != nil {
				return nil, err
			}
			for g := 0; g < cfg.GPUsPerNode; g++ {
				dev, err := gpu.New(gpu.Config{
					ID:       fmt.Sprintf("node%d/gpu%d", n, g),
					Node:     mgr.Node(),
					Type:     class.Type,
					Capacity: class.Memory,
				})
				if err != nil {
					return nil, err
				}
				if err := adopt(mgr, dev); err != nil {
					return nil, err
				}
			}
			c.mgrs = append(c.mgrs, mgr)
		}
	}
	// Every GPU starts idle.
	for _, id := range c.gpuIDs {
		o, _ := c.cacheMgr.Ord(id)
		c.idle = append(c.idle, o)
		c.bumpClassPeak(c.devByID[id].Type())
	}
	c.peakGPUs = len(c.gpuIDs)

	c.sched, err = core.New(core.Config{
		Policy:            cfg.Policy,
		O3Limit:           cfg.O3Limit,
		DisableLocalQueue: cfg.DisableLocalQueue,
		ScanPlacement:     cfg.ScanPlacement,
		MaxBatch:          cfg.MaxBatch,
		BatchWait:         cfg.BatchWait,
	}, (*backendView)(c))
	if err != nil {
		return nil, err
	}

	if cfg.Autoscale != nil {
		if c.engine != nil && cfg.Autoscale.Horizon <= 0 {
			return nil, errors.New("cluster: autoscaler in simulated-time mode requires a Horizon")
		}
		// The fleet adapter's methods run inside clock callbacks, which
		// the harness already serializes (event loop / lockedClock).
		c.scaler, err = autoscale.New((*fleetView)(c), c.clock, *cfg.Autoscale)
		if err != nil {
			return nil, err
		}
		c.scaler.Start()
	}

	if cfg.Retry.MaxAttempts < 0 {
		return nil, fmt.Errorf("cluster: negative retry attempts %d", cfg.Retry.MaxAttempts)
	}
	if cfg.Chaos.Enabled() {
		// The hooks run inside clock callbacks: serialized by the event
		// loop in sim mode, by lockedClock in live mode.
		c.injector, err = chaos.NewInjector(*cfg.Chaos, c.clock, chaos.Hooks{
			Fail:        c.failGPU,
			SetSlowdown: c.setSlowdown,
		})
		if err != nil {
			return nil, err
		}
		for _, id := range c.gpuIDs {
			o, _ := c.cacheMgr.Ord(id)
			c.injector.DeviceAdded(int(o), id, c.clock.Now())
		}
		c.injector.Start(c.clock.Now())
	}
	return c, nil
}

// statusSink observes GPU busy transitions from the GPU Managers to keep
// the cluster's incremental idle set current, then forwards to the
// user-configured sink. Transitions arrive before the scheduler re-runs
// (gpumgr reports status ahead of OnComplete), so the idle set is always
// fresh at decision time.
type statusSink struct{ c *Cluster }

func (s statusSink) GPUStatus(gpuID string, busy bool, at sim.Time) {
	s.c.markIdle(gpuID, !busy)
	// Forward before any drain finalization: GPURemoved must be the
	// sink's last event for a GPU, or the trailing idle report would
	// re-create state (e.g. the datastore status key) the removal just
	// cleaned up.
	if s.c.userSink != nil {
		s.c.userSink.GPUStatus(gpuID, busy, at)
	}
	if !busy {
		// A draining GPU that just went idle with an empty local queue
		// is quiescent: complete its decommission before the scheduler
		// runs again.
		s.c.maybeFinishDrain(gpuID, at)
	}
}

func (s statusSink) Completion(res gpumgr.Result) {
	if s.c.userSink != nil {
		s.c.userSink.Completion(res)
	}
}

// trackOrd records a freshly registered device in the ord-indexed device
// table (the Cache Manager assigned its ordinal during AddDevice).
func (c *Cluster) trackOrd(dev *gpu.Device) {
	o, ok := c.cacheMgr.Ord(dev.ID())
	if !ok {
		panic("cluster: device registered without an ordinal: " + dev.ID())
	}
	for ordset.Ord(len(c.devByOrd)) <= o {
		c.devByOrd = append(c.devByOrd, nil)
	}
	c.devByOrd[o] = dev
}

// bumpClassPeak increments a device class's member count and raises its
// high-water mark. Runs under the harness's serialization.
func (c *Cluster) bumpClassPeak(gpuType string) {
	c.classCount[gpuType]++
	if c.classCount[gpuType] > c.classPeak[gpuType] {
		c.classPeak[gpuType] = c.classCount[gpuType]
	}
}

// markIdle inserts or removes the GPU from the ordered idle set. Runs
// under the cluster's serialization (event loop in sim mode, lockedClock
// mutex in live mode).
func (c *Cluster) markIdle(gpuID string, idle bool) {
	o, ok := c.cacheMgr.Ord(gpuID)
	if !ok {
		return // already removed from the fleet
	}
	if idle {
		c.idle = ordset.Insert(c.idle, o)
	} else {
		c.idle = ordset.Remove(c.idle, o)
	}
}

// ---- Elastic membership ----

// Errors reported by the membership operations.
var (
	ErrUnknownGPU = errors.New("cluster: unknown GPU")
	ErrNotQuiet   = errors.New("cluster: GPU has in-flight or parked work; decommission with drain")
)

// AddGPU provisions one GPU of the given device class (any class the
// fleet declares; "" means the default class, Fleet[0]). The GPU becomes
// schedulable after coldStart elapses on the cluster clock; until then
// it is invisible to the scheduler but already accrues GPU-seconds (you
// pay for booting instances). Returns the new GPU's ID.
func (c *Cluster) AddGPU(gpuType string, coldStart time.Duration) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	class, err := c.resolveClass(gpuType)
	if err != nil {
		return "", err
	}
	return c.addGPU(class, coldStart)
}

// resolveClass maps a GPU type to its declared fleet class ("" is the
// default class). Provisioning a class the fleet does not declare is an
// error: its profiles were never validated.
func (c *Cluster) resolveClass(gpuType string) (GPUClass, error) {
	if gpuType == "" {
		return c.fleet[0], nil
	}
	class, ok := c.fleet.Class(gpuType)
	if !ok {
		return GPUClass{}, fmt.Errorf("cluster: fleet declares no GPU class %q", gpuType)
	}
	return class, nil
}

// addGPU is AddGPU under the harness's serialization (callers inside
// clock callbacks use it directly; the exported wrapper locks).
func (c *Cluster) addGPU(class GPUClass, coldStart time.Duration) (string, error) {
	if coldStart < 0 {
		return "", fmt.Errorf("cluster: negative cold start %v", coldStart)
	}
	if c.elasticMgr == nil {
		mgr, err := gpumgr.New(gpumgr.Config{
			Node:       "elastic",
			Clock:      c.clock,
			Cache:      c.cacheMgr,
			Zoo:        c.zoo,
			Profiles:   c.profiles,
			Sink:       statusSink{c: c},
			OnComplete: c.handleComplete,
		})
		if err != nil {
			return "", err
		}
		c.elasticMgr = mgr
		c.mgrs = append(c.mgrs, mgr)
	}
	id := fmt.Sprintf("elastic/gpu%d", c.gpuSeq)
	c.gpuSeq++
	now := c.clock.Now()
	dev, err := gpu.New(gpu.Config{
		ID:        id,
		Node:      c.elasticMgr.Node(),
		Type:      class.Type,
		Capacity:  class.Memory,
		CreatedAt: now,
	})
	if err != nil {
		return "", err
	}
	if err := c.elasticMgr.AddDevice(dev); err != nil {
		return "", err
	}
	c.devByID[id] = dev
	c.mgrByDev[id] = c.elasticMgr
	c.trackOrd(dev)
	c.addedAt[id] = now
	c.idsMu.Lock()
	c.gpuIDs = append(c.gpuIDs, id)
	c.idsMu.Unlock()
	if n := len(c.gpuIDs); n > c.peakGPUs {
		c.peakGPUs = n
	}
	c.bumpClassPeak(class.Type)
	c.scaleUps++
	if coldStart == 0 {
		c.gpuState[id] = gpuActive
		c.markIdle(id, true)
		c.notifyDeviceAdded(id, now)
		c.runScheduler(now)
		return id, nil
	}
	c.gpuState[id] = gpuProvisioning
	c.activation[id] = c.clock.AfterFunc(coldStart, "cluster.gpuActivate "+id, func(at sim.Time) {
		c.activate(id, at)
	})
	return id, nil
}

// activate flips a provisioned GPU to schedulable once its cold-start
// window closes; a GPU decommissioned mid-boot never activates.
func (c *Cluster) activate(id string, now sim.Time) {
	if c.gpuState[id] != gpuProvisioning {
		return
	}
	delete(c.activation, id)
	c.gpuState[id] = gpuActive
	c.markIdle(id, true)
	c.notifyDeviceAdded(id, now)
	c.runScheduler(now)
}

// DecommissionGPU removes a GPU from the fleet. With drain=true the GPU
// first becomes unschedulable, finishes its in-flight request and any
// requests parked in its local queue, has its cache residents evicted
// (through the normal insert/evict event stream, so the global index and
// idle set stay consistent), and then leaves. With drain=false the GPU
// must already be quiescent — ErrNotQuiet otherwise.
func (c *Cluster) DecommissionGPU(gpuID string, drain bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decommission(gpuID, drain)
}

// decommission is DecommissionGPU under the harness's serialization.
func (c *Cluster) decommission(gpuID string, drain bool) error {
	state, ok := c.gpuState[gpuID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	now := c.clock.Now()
	switch state {
	case gpuDraining:
		return nil // already on the way out
	case gpuProvisioning:
		// Never became schedulable: cancel the boot and remove.
		return c.finishRemove(gpuID, now)
	}
	busy := c.devByID[gpuID].Busy()
	parked := c.sched.LocalQueueLen(gpuID)
	if !busy && parked == 0 {
		return c.finishRemove(gpuID, now)
	}
	if !drain {
		return fmt.Errorf("%w: %s (busy=%v parked=%d)", ErrNotQuiet, gpuID, busy, parked)
	}
	c.gpuState[gpuID] = gpuDraining
	c.sched.SetDraining(gpuID, true)
	return nil
}

// maybeFinishDrain completes a drain once the GPU is quiescent; called
// from the status sink on every busy→idle transition.
func (c *Cluster) maybeFinishDrain(gpuID string, now sim.Time) {
	if c.gpuState[gpuID] != gpuDraining {
		return
	}
	if c.sched.LocalQueueLen(gpuID) != 0 {
		return // parked work left; the next scheduler round dispatches it
	}
	// Quiescent: remove before the scheduler sees this GPU as idle.
	if err := c.finishRemove(gpuID, now); err != nil {
		// Unreachable if the drain invariants hold; surface loudly in
		// sim mode like other harness bugs.
		panic(fmt.Sprintf("cluster: finish drain %s: %v", gpuID, err))
	}
}

// finishRemove deregisters a quiescent GPU everywhere: scheduler state,
// GPU manager (which kills remaining processes, evicting their models
// through the Cache Manager's event stream), idle set, and membership
// maps. GPU-seconds stop accruing at `now`.
func (c *Cluster) finishRemove(gpuID string, now sim.Time) error {
	// The ordinal dies with the cache deregistration inside RemoveDevice;
	// capture it first for the idle-set and device-table cleanup below.
	ord, hasOrd := c.cacheMgr.Ord(gpuID)
	if cancel, ok := c.activation[gpuID]; ok {
		cancel()
		delete(c.activation, gpuID)
	}
	if err := c.sched.RemoveGPU(gpuID); err != nil {
		return err
	}
	// Fold the departing GPU's phase durations into the removed-member
	// accumulators before the device is dropped, so report() covers
	// every member that ever served, not just survivors.
	u := c.devByID[gpuID].Utilization(now)
	c.remIdle += u.Idle
	c.remLoading += u.Loading
	c.remInferring += u.Inferring
	gpuType := c.devByID[gpuID].Type()
	if err := c.mgrByDev[gpuID].RemoveDevice(gpuID, now); err != nil {
		return err
	}
	secs := time.Duration(now - c.addedAt[gpuID]).Seconds()
	c.gpuSeconds += secs
	c.classSeconds[gpuType] += secs
	c.classCount[gpuType]--
	if hasOrd {
		c.idle = ordset.Remove(c.idle, ord)
		c.devByOrd[ord] = nil
		if c.injector != nil {
			c.injector.DeviceRemoved(int(ord))
		}
	}
	delete(c.gpuState, gpuID)
	delete(c.addedAt, gpuID)
	delete(c.devByID, gpuID)
	delete(c.mgrByDev, gpuID)
	c.idsMu.Lock()
	if i := slices.Index(c.gpuIDs, gpuID); i >= 0 {
		c.gpuIDs = slices.Delete(c.gpuIDs, i, i+1)
	}
	c.idsMu.Unlock()
	c.scaleDowns++
	if rs, ok := c.userSink.(gpumgr.GPURemovalSink); ok {
		rs.GPURemoved(gpuID, now)
	}
	return nil
}

// ---- Fault injection ----

// Failure-path drop causes.
var (
	errGPUFault       = errors.New("cluster: GPU failed mid-flight")
	errRetryExhausted = errors.New("cluster: retry budget exhausted after GPU failure")
)

// notifyDeviceAdded registers a newly schedulable GPU with the fault
// injector. A GPU's MTBF clock starts when it starts serving — a
// provisioning GPU registers at activation, not at AddGPU.
func (c *Cluster) notifyDeviceAdded(id string, now sim.Time) {
	if c.injector == nil {
		return
	}
	if o, ok := c.cacheMgr.Ord(id); ok {
		c.injector.DeviceAdded(int(o), id, now)
	}
}

// setSlowdown is the injector's straggler hook: launches dispatched to
// the device while the window is open run factor× slower (in-flight
// launches keep their original times). factor == 1 closes the window.
func (c *Cluster) setSlowdown(gpuID string, factor float64, _ sim.Time) {
	if mgr, ok := c.mgrByDev[gpuID]; ok {
		mgr.SetSlowdown(gpuID, factor)
	}
}

// FailGPU injects a GPU failure directly (tests, operator tooling); the
// seeded injector goes through the same path.
func (c *Cluster) FailGPU(gpuID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.gpuState[gpuID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGPU, gpuID)
	}
	c.failGPU(gpuID, c.clock.Now())
	return nil
}

// failGPU crashes a GPU instantly — decommission without a drain. The
// in-flight launch (every member of a batch) is interrupted, its
// GPU-seconds already charged for the wasted attempt by the manager;
// parked local-queue work re-queues without consuming an attempt;
// residents evict through the cache event stream as the device
// deregisters, so the placement index never serves a dead holder; the
// scheduler and autoscaler see the capacity loss immediately. With
// Config.Chaos.MTTR set, a same-class replacement (fresh ordinal, cold
// cache) arrives MTTR later, already schedulable — MTTR covers the
// reboot.
func (c *Cluster) failGPU(gpuID string, now sim.Time) {
	state, ok := c.gpuState[gpuID]
	if !ok || state == gpuProvisioning {
		return // raced with a removal, or never started serving
	}
	c.failures++
	if c.gpuFailures == nil {
		c.gpuFailures = make(map[string]int64)
	}
	c.gpuFailures[gpuID]++
	gpuType := c.devByID[gpuID].Type()

	members, startedAt, err := c.mgrByDev[gpuID].Interrupt(gpuID, now)
	if err != nil {
		panic(fmt.Sprintf("cluster: interrupt %s: %v", gpuID, err))
	}
	// Parked local-queue work never started an attempt; it only needs a
	// new home.
	parked := c.sched.DrainLocal(gpuID)
	if state == gpuDraining {
		c.sched.SetDraining(gpuID, false)
	}
	if err := c.finishRemove(gpuID, now); err != nil {
		panic(fmt.Sprintf("cluster: remove failed GPU %s: %v", gpuID, err))
	}

	// Each interrupted member consumed an attempt; the retry policy
	// decides its fate.
	retryable := members[:0]
	for _, m := range members {
		m.Attempt++
		c.interrupted++
		if c.breakdown != nil {
			c.breakdown.ObserveRetry(time.Duration(now - startedAt))
		}
		if c.cfg.Retry.Allows(m.Attempt) {
			retryable = append(retryable, m)
		} else {
			cause := errGPUFault
			if c.cfg.Retry.Enabled() {
				cause = errRetryExhausted
			}
			c.dropRequest(m.ID, cause)
		}
	}
	// Re-queue at the front of the global queue, preserving relative
	// order: interrupted members (dispatched earliest) ahead of parked
	// ones, both ahead of everything still queued. pushFront semantics
	// make reverse iteration land them in order.
	for i := len(parked) - 1; i >= 0; i-- {
		if err := c.sched.Requeue(parked[i]); err != nil {
			panic(fmt.Sprintf("cluster: requeue parked request %d: %v", parked[i].ID, err))
		}
	}
	for i := len(retryable) - 1; i >= 0; i-- {
		c.retries++
		if err := c.sched.Requeue(retryable[i]); err != nil {
			panic(fmt.Sprintf("cluster: requeue request %d: %v", retryable[i].ID, err))
		}
	}

	if cc := c.cfg.Chaos; cc != nil && cc.MTTR > 0 {
		if class, err := c.resolveClass(gpuType); err == nil {
			c.clock.AfterFunc(sim.Time(cc.MTTR), "cluster.chaosRecover "+gpuID, func(at sim.Time) {
				if _, err := c.addGPU(class, 0); err != nil {
					panic(fmt.Sprintf("cluster: chaos recovery for %s: %v", gpuID, err))
				}
			})
		}
	}
	c.runScheduler(now)
}

// ScaleTo reconciles the non-draining fleet size (active + provisioning)
// to target: provisioning new GPUs with the given cold start, or
// drain-decommissioning surplus ones (provisioning first, then idle,
// then busy; newest first). It is the manual-scaling path behind the
// gateway's /system/scale endpoint.
func (c *Cluster) ScaleTo(target int, coldStart time.Duration) (added, removed []string, err error) {
	if target < 1 {
		return nil, nil, fmt.Errorf("cluster: target fleet size %d < 1", target)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	size := (*fleetView)(c).FleetSize()
	current := size.Active + size.Provisioning
	switch {
	case target > current:
		for i := current; i < target; i++ {
			id, err := c.addGPU(c.fleet[0], coldStart)
			if err != nil {
				return added, nil, err
			}
			added = append(added, id)
		}
	case target < current:
		removed = (*fleetView)(c).ScaleDown(current - target)
	}
	return added, removed, nil
}

// fleetView adapts Cluster to autoscale.Fleet. Its methods run inside
// clock callbacks, under the harness's serialization — they must not take
// the cluster mutex (live mode already holds it via lockedClock).
type fleetView Cluster

// FleetSize implements autoscale.Fleet.
func (f *fleetView) FleetSize() autoscale.Size {
	var s autoscale.Size
	for _, st := range f.gpuState {
		switch st {
		case gpuActive:
			s.Active++
		case gpuProvisioning:
			s.Provisioning++
		case gpuDraining:
			s.Draining++
		}
	}
	for _, o := range f.idle {
		if f.gpuState[f.cacheMgr.IDOf(o)] == gpuActive {
			s.Idle++
		}
	}
	return s
}

// PendingRequests implements autoscale.Fleet.
func (f *fleetView) PendingRequests() int { return f.sched.PendingTotal() }

// FailedGPUs implements autoscale.FaultyFleet: the cumulative crash
// count, so scaling policies (and the ScaleEvent log) see lost capacity.
func (f *fleetView) FailedGPUs() int {
	n := int64(0)
	for _, k := range f.gpuFailures {
		n += k
	}
	return int(n)
}

// ScaleUp implements autoscale.Fleet: class-agnostic scale-up provisions
// the default class (Fleet[0]).
func (f *fleetView) ScaleUp(n int, coldStart time.Duration) []string {
	return f.scaleUpClass(f.fleet[0], n, coldStart)
}

func (f *fleetView) scaleUpClass(class GPUClass, n int, coldStart time.Duration) []string {
	c := (*Cluster)(f)
	if class.ColdStart > 0 {
		coldStart = class.ColdStart
	}
	var out []string
	for i := 0; i < n; i++ {
		id, err := c.addGPU(class, coldStart)
		if err != nil {
			break
		}
		out = append(out, id)
	}
	return out
}

// ClassSizes implements autoscale.ClassedFleet: the per-class breakdown
// in fleet-spec order.
func (f *fleetView) ClassSizes() []autoscale.ClassSize {
	idleSet := make(map[string]bool, len(f.idle))
	for _, o := range f.idle {
		idleSet[f.cacheMgr.IDOf(o)] = true
	}
	out := make([]autoscale.ClassSize, len(f.fleet))
	for i, class := range f.fleet {
		out[i] = autoscale.ClassSize{Class: class.Type, CostPerSecond: class.CostPerSecond}
	}
	index := make(map[string]int, len(f.fleet))
	for i, class := range f.fleet {
		index[class.Type] = i
	}
	for id, st := range f.gpuState {
		i, ok := index[f.devByID[id].Type()]
		if !ok {
			continue
		}
		switch st {
		case gpuActive:
			out[i].Active++
			if idleSet[id] {
				out[i].Idle++
			}
		case gpuProvisioning:
			out[i].Provisioning++
		case gpuDraining:
			out[i].Draining++
		}
	}
	return out
}

// ScaleUpClass implements autoscale.ClassedFleet; the class's declared
// ColdStart wins over the autoscaler's fallback.
func (f *fleetView) ScaleUpClass(gpuType string, n int, coldStart time.Duration) []string {
	class, err := (*Cluster)(f).resolveClass(gpuType)
	if err != nil {
		return nil
	}
	return f.scaleUpClass(class, n, coldStart)
}

// ScaleDownClass implements autoscale.ClassedFleet: ScaleDown's victim
// order (provisioning, then idle, then busy; newest first) restricted to
// one device class.
func (f *fleetView) ScaleDownClass(gpuType string, n int) []string {
	return f.scaleDown(n, gpuType)
}

// ScaleDown implements autoscale.Fleet: drain-decommission up to n GPUs,
// preferring provisioning GPUs (they did no useful work yet), then idle,
// then busy; newest registration first within each bucket, so scale-down
// unwinds scale-up deterministically.
func (f *fleetView) ScaleDown(n int) []string { return f.scaleDown(n, "") }

// scaleDown is ScaleDown optionally restricted to one device class
// (gpuType "" considers the whole fleet).
func (f *fleetView) scaleDown(n int, gpuType string) []string {
	c := (*Cluster)(f)
	idleSet := make(map[string]bool, len(c.idle))
	for _, o := range c.idle {
		idleSet[c.cacheMgr.IDOf(o)] = true
	}
	var provisioning, idle, busy []string
	for i := len(c.gpuIDs) - 1; i >= 0; i-- { // newest first
		id := c.gpuIDs[i]
		switch {
		case gpuType != "" && c.devByID[id].Type() != gpuType:
			// not the requested class
		case c.gpuState[id] == gpuDraining:
			// already leaving; not a candidate
		case c.gpuState[id] == gpuProvisioning:
			provisioning = append(provisioning, id)
		case idleSet[id]:
			idle = append(idle, id)
		default:
			busy = append(busy, id)
		}
	}
	var out []string
	for _, id := range append(append(provisioning, idle...), busy...) {
		if len(out) == n {
			break
		}
		if err := c.decommission(id, true); err != nil {
			continue
		}
		out = append(out, id)
	}
	return out
}

// backendView adapts Cluster to core.Backend without exporting the
// methods on Cluster itself. The scheduler addresses GPUs by registration
// ordinal; every per-decision lookup below is a slice index (devByOrd) or
// an index view (holder lists), never a string-keyed map probe.
type backendView Cluster

// Ords returns the current members' ordinals in registration order. Only
// the scheduler's no-IdleLister fallback iterates this; the cluster
// always provides IdleOrds, so the allocation here is off the hot path.
func (b *backendView) Ords() []ordset.Ord {
	out := make([]ordset.Ord, 0, len(b.gpuIDs))
	for _, id := range b.gpuIDs {
		if o, ok := b.cacheMgr.Ord(id); ok {
			out = append(out, o)
		}
	}
	return out
}

func (b *backendView) OrdBound() ordset.Ord { return b.cacheMgr.OrdBound() }
func (b *backendView) OrdOf(gpuID string) (ordset.Ord, bool) {
	return b.cacheMgr.Ord(gpuID)
}
func (b *backendView) IDOf(o ordset.Ord) string { return b.cacheMgr.IDOf(o) }

// IdleOrds implements core.IdleLister: the incrementally-maintained idle
// set, ascending. Read-only view for the duration of one Schedule call.
func (b *backendView) IdleOrds() []ordset.Ord { return b.idle }

func (b *backendView) Busy(o ordset.Ord) bool {
	d := b.dev(o)
	return d != nil && d.Busy()
}
func (b *backendView) Cached(o ordset.Ord, model string) bool {
	return b.cacheMgr.CachedOrd(o, model)
}
func (b *backendView) GPUsCaching(model string) []ordset.Ord {
	return b.cacheMgr.HoldersView(model)
}
func (b *backendView) EstimatedFinish(o ordset.Ord, now sim.Time) time.Duration {
	d := b.dev(o)
	if d == nil {
		return 0
	}
	return d.EstimatedFinish(now)
}
func (b *backendView) LoadTime(o ordset.Ord, model string) time.Duration {
	return b.mustProfile(o, model).LoadTime
}
func (b *backendView) InferTime(o ordset.Ord, model string, batch int) time.Duration {
	return b.mustProfile(o, model).InferTime(batch)
}

// mustProfile resolves the (device type, model) profile for an estimate.
// A miss here would silently zero LLB/O3 finish-time estimates (the bug
// the construction-time coverage validation exists to prevent), so it is
// a harness invariant violation: panic with enough context to debug.
func (b *backendView) mustProfile(o ordset.Ord, model string) models.Profile {
	d := b.dev(o)
	if d == nil {
		panic(fmt.Sprintf("cluster: profile estimate for removed/unknown GPU ord %d (model %q)", o, model))
	}
	p, ok := b.profiles.Get(d.Type(), model)
	if !ok {
		panic(fmt.Sprintf("cluster: no profile for model %q on GPU type %q (%s) — construction-time validation should have rejected this fleet", model, d.Type(), d.ID()))
	}
	return p
}
func (b *backendView) dev(o ordset.Ord) *gpu.Device {
	if o < 0 || int(o) >= len(b.devByOrd) {
		return nil
	}
	return b.devByOrd[o]
}

// GPUIDs returns the cluster's GPUs in deterministic order. Membership
// is mutable at runtime (elastic scaling); the snapshot is taken under
// the dedicated membership lock, NOT the cluster mutex, so it remains
// safe to call from result hooks and sinks (which run holding c.mu in
// live mode, where c.mu would deadlock).
func (c *Cluster) GPUIDs() []string {
	c.idsMu.Lock()
	defer c.idsMu.Unlock()
	out := make([]string, len(c.gpuIDs))
	copy(out, c.gpuIDs)
	return out
}

// IdleGPUs returns a snapshot of the currently idle GPUs in registration
// order (the scheduler's candidate set).
func (c *Cluster) IdleGPUs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.idle))
	for i, o := range c.idle {
		out[i] = c.cacheMgr.IDOf(o)
	}
	return out
}

// Scheduler exposes the scheduler (read-mostly: counters, queue lengths).
func (c *Cluster) Scheduler() *core.Scheduler { return c.sched }

// Autoscaler returns the attached autoscaler, or nil. In live mode use
// the locked accessors (AutoscalerStatus, SetAutoscalerEnabled,
// ScaleEvents) instead of touching it directly.
func (c *Cluster) Autoscaler() *autoscale.Autoscaler { return c.scaler }

// FleetCounts returns the current membership breakdown. Like the other
// autoscaler accessors below (and AddGPU/DecommissionGPU/ScaleTo) it
// takes the cluster mutex: do not call it from result hooks or status
// sinks, which in live mode already run holding that mutex — use
// GPUIDs for hook-safe membership reads.
func (c *Cluster) FleetCounts() autoscale.Size {
	c.mu.Lock()
	defer c.mu.Unlock()
	return (*fleetView)(c).FleetSize()
}

// AutoscalerStatus snapshots the attached autoscaler; ok is false when
// the cluster has none.
func (c *Cluster) AutoscalerStatus() (autoscale.Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.scaler == nil {
		return autoscale.Status{}, false
	}
	return c.scaler.Status(), true
}

// SetAutoscalerEnabled pauses or resumes the attached autoscaler;
// returns false when the cluster has none.
func (c *Cluster) SetAutoscalerEnabled(on bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.scaler == nil {
		return false
	}
	c.scaler.SetEnabled(on)
	return true
}

// ScaleEvents returns a copy of the autoscaler's event log (nil without
// an autoscaler).
func (c *Cluster) ScaleEvents() []autoscale.ScaleEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.scaler == nil {
		return nil
	}
	return c.scaler.Events()
}

// OrdStatus reports the registration-ordinal pressure: bound is one past
// the highest ordinal ever assigned, live the current member count.
// Ordinals are monotone and never reused, so bound − live is the number
// of dead ordinals Ord-indexed state still spans — the measurable signal
// behind the ROADMAP's "ordinal compaction" item.
func (c *Cluster) OrdStatus() (bound, live int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idsMu.Lock()
	live = len(c.gpuIDs)
	c.idsMu.Unlock()
	return int(c.cacheMgr.OrdBound()), live
}

// CacheManager exposes the cache manager for metric inspection.
func (c *Cluster) CacheManager() *cache.Manager { return c.cacheMgr }

// Zoo returns the model zoo in use.
func (c *Cluster) Zoo() *models.Zoo { return c.zoo }

// Managers returns the per-node GPU managers.
func (c *Cluster) Managers() []*gpumgr.Manager { return c.mgrs }

// Device returns a GPU device by ID.
func (c *Cluster) Device(id string) (*gpu.Device, bool) {
	d, ok := c.devByID[id]
	return d, ok
}

// KeepResults makes the cluster retain every completion record (memory
// proportional to workload size); used by analyses that need the full
// distribution.
func (c *Cluster) KeepResults(keep bool) { c.keepResult = keep }

// TrackModel enables time-averaged duplicate accounting for a model
// (Fig. 6 uses the most popular model).
func (c *Cluster) TrackModel(model string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.topModel = model
	c.cacheMgr.Track(model, c.clock.Now())
}

// handleComplete records a finished request and reschedules; invoked from
// clock callbacks (already holding the mutex via lockedClock in live mode,
// single-threaded in sim mode).
func (c *Cluster) handleComplete(res gpumgr.Result) {
	c.completed++
	c.lastFinish = res.FinishedAt
	c.latencies.Add(res.Latency().Seconds())
	if c.breakdown != nil {
		c.breakdown.Observe(res.Hit, res.FalseMiss,
			time.Duration(res.DispatchedAt-res.Arrival), res.LoadTime, res.InferTime,
			res.BatchMembers, res.InferShare)
	}
	if c.tracer != nil {
		c.tracer.OnComplete(obs.Completion{
			ReqID:        res.ReqID,
			Function:     res.Function,
			Model:        res.Model,
			Hit:          res.Hit,
			FalseMiss:    res.FalseMiss,
			Arrival:      time.Duration(res.Arrival),
			Dispatched:   time.Duration(res.DispatchedAt),
			Finished:     time.Duration(res.FinishedAt),
			LoadTime:     res.LoadTime,
			InferTime:    res.InferTime,
			BatchMembers: res.BatchMembers,
			InferShare:   res.InferShare,
		})
	}
	if c.seriesRec != nil {
		c.obsInFlight--
		c.seriesTick(res.FinishedAt)
	}
	w, ok := c.perModel[res.Model]
	if !ok {
		w = &stats.Welford{}
		c.perModel[res.Model] = w
	}
	w.Add(res.Latency().Seconds())
	if c.scaler != nil {
		c.scaler.ObserveLatency(res.Latency().Seconds())
	}
	if c.keepResult {
		c.results = append(c.results, res)
	}
	if c.onResult != nil {
		c.onResult(res)
	}
	if c.stream != nil {
		// Streaming replay: the request object is dead once its result
		// is recorded — recycle it before the next scheduling round.
		c.stream.release(res.ReqID)
	}
	c.runScheduler(res.FinishedAt)
}

// runScheduler executes one scheduling round and dispatches the decisions.
func (c *Cluster) runScheduler(now sim.Time) {
	for _, d := range c.sched.Schedule(now) {
		if c.tracer != nil {
			if o, ok := c.cacheMgr.Ord(d.GPU); ok {
				// Ord is captured here, at dispatch: by completion time a
				// draining GPU may already have left the fleet.
				c.tracer.OnDispatch(d.Req.ID, d.GPU, int(o), d.Req.Visits(), d.FromLocalQueue, d.ExpectHit, d.Req.Attempt)
				for _, m := range d.Batch {
					c.tracer.OnDispatch(m.ID, d.GPU, int(o), m.Visits(), d.FromLocalQueue, d.ExpectHit, m.Attempt)
				}
			}
		}
		if len(d.Batch) > 0 {
			_, dropped, err := c.mgrByDev[d.GPU].ExecuteBatch(d.Req, d.Batch, d.GPU, now)
			if err != nil {
				// The whole launch failed (primary quota, impossible
				// model): every member drops, like a single-dispatch
				// failure.
				c.dropRequest(d.Req.ID, err)
				for _, m := range d.Batch {
					c.dropRequest(m.ID, err)
				}
				continue
			}
			for _, m := range dropped {
				c.dropRequest(m.ID, errBatchMemberQuota)
			}
			if c.seriesRec != nil {
				c.obsInFlight += d.Members() - len(dropped)
			}
			continue
		}
		if _, err := c.mgrByDev[d.GPU].Execute(d.Req, d.GPU, now); err != nil {
			// A failed dispatch (quota, OOM-impossible model) drops the
			// request; the paper's system returns an error to the user.
			c.dropRequest(d.Req.ID, err)
		} else if c.seriesRec != nil {
			c.obsInFlight++
		}
	}
	// Linger (Config.BatchWait): when the scheduler held the queue head
	// waiting for same-model companions, arm a wake-up so the decision
	// is revisited at the deadline even if no other event fires first.
	if wake, ok := c.sched.PendingWake(); ok {
		c.armBatchWake(wake)
	}
	if c.seriesRec != nil {
		c.seriesTick(now)
	}
}

// errBatchMemberQuota is the drop reason for a batch member excluded by
// its tenant's quota while the rest of the launch proceeded.
var errBatchMemberQuota = errors.New("cluster: batch member dropped by tenant quota")

// dropReason classifies a drop cause for the split failure counters.
// The reason set is closed (Reasons below) so the gateway can
// pre-register every labeled counter at zero.
func dropReason(err error) string {
	switch {
	case errors.Is(err, errBatchMemberQuota):
		return "batch_member_quota"
	case errors.Is(err, errRetryExhausted):
		return "retry_exhausted"
	case errors.Is(err, errGPUFault):
		return "fault"
	case errors.Is(err, gpumgr.ErrQuota):
		return "quota"
	default:
		return "other"
	}
}

// Reasons is the closed set of drop-reason labels Report.FailedByReason
// (and the gateway's labeled failure counters) may carry.
var Reasons = []string{"batch_member_quota", "fault", "other", "quota", "retry_exhausted"}

// dropRequest records one failed-to-execute dispatch.
func (c *Cluster) dropRequest(id int64, err error) {
	c.failed++
	if c.failedByReason == nil {
		c.failedByReason = make(map[string]int64)
	}
	c.failedByReason[dropReason(err)]++
	c.tracer.Drop(id)
	if c.stream != nil {
		c.stream.release(id)
	}
	if c.onDrop != nil {
		c.onDrop(id, err)
	}
}

// armBatchWake schedules a scheduler re-run at the linger deadline,
// deduplicating against an already-armed earlier-or-equal wake.
func (c *Cluster) armBatchWake(at sim.Time) {
	if c.batchWakeArmed && c.batchWakeAt <= at {
		return
	}
	c.batchWakeArmed = true
	c.batchWakeAt = at
	d := at - c.clock.Now()
	if d < 0 {
		d = 0
	}
	c.clock.AfterFunc(d, "cluster.batchWake", func(now sim.Time) {
		c.batchWakeArmed = false
		c.runScheduler(now)
	})
}

// seriesTick emits any due time-series samples. The Due pre-check keeps
// the per-event cost at one comparison; the O(fleet) state probes run
// only when an interval boundary was actually crossed.
func (c *Cluster) seriesTick(now sim.Time) {
	if !c.seriesRec.Due(time.Duration(now)) {
		return
	}
	cm := c.cacheMgr.Metrics()
	c.seriesRec.Tick(time.Duration(now), c.sched.PendingTotal(), len(c.idle), c.obsInFlight,
		cm.Requests, cm.Misses, c.completed)
}

// Submit enqueues one request and runs the scheduler; the live gateway
// path. The request's Arrival must be set by the caller (gateway receipt
// time).
func (c *Cluster) Submit(req *core.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sched.Enqueue(req); err != nil {
		return err
	}
	c.runScheduler(c.clock.Now())
	return nil
}

// Engine returns the discrete-event engine (nil in live mode); tests use
// it to step time manually.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// ErrLiveMode is returned by RunWorkload on a cluster built with an
// external clock.
var ErrLiveMode = errors.New("cluster: RunWorkload requires the simulated clock")

// RunWorkload injects the request stream into the discrete-event engine,
// runs the simulation to completion, and returns the metrics report.
func (c *Cluster) RunWorkload(reqs []trace.Request) (Report, error) {
	if c.engine == nil {
		return Report{}, ErrLiveMode
	}
	// Inject all arrivals in one batch: a single shared callback and one
	// O(n) heapify instead of a per-request closure allocation plus heap
	// sift. Arrivals before the engine's current time are rejected, as
	// Engine.At did when each arrival was scheduled individually.
	now0 := c.engine.Now()
	delays := make([]sim.Time, len(reqs))
	creqs := make([]*core.Request, len(reqs))
	for i := range reqs {
		r := reqs[i]
		if sim.Time(r.Arrival) < now0 {
			return Report{}, fmt.Errorf("%w: at=%v now=%v (arrival)", sim.ErrPastEvent, sim.Time(r.Arrival), now0)
		}
		delays[i] = sim.Time(r.Arrival) - now0
		creqs[i] = &core.Request{
			ID:        r.ID,
			Function:  r.Function,
			Model:     r.Model,
			BatchSize: r.BatchSize,
			Arrival:   sim.Time(r.Arrival),
			Tenant:    r.Tenant,
		}
	}
	c.engine.AfterBatch(delays, "arrival", func(i int, now sim.Time) {
		if err := c.sched.Enqueue(creqs[i]); err != nil {
			c.failed++
			return
		}
		c.runScheduler(now)
	})
	c.engine.Run(0)
	if pending := c.sched.PendingTotal(); pending != 0 {
		return Report{}, fmt.Errorf("cluster: %d requests still pending after drain", pending)
	}
	return c.report(), nil
}

// ArrivalSource feeds a streaming workload replay: Next returns the next
// batch of arrivals in time order (arrival times must be non-decreasing
// across the whole stream and not earlier than the engine clock), or
// false when exhausted. The returned slice is only read until the next
// call, so sources may reuse it. trace.ArrivalStream implements this.
type ArrivalSource interface {
	Next() ([]trace.Request, bool)
}

// streamRun is the state of one RunWorkloadStream call: the request
// arena, the in-flight table that maps completions back to their pooled
// requests, and the reusable injection buffers.
type streamRun struct {
	src      ArrivalSource
	arena    core.RequestArena
	inflight map[int64]*core.Request
	delays   []sim.Time
	creqs    []*core.Request
	batches  int
	injected int64
	err      error
}

// release recycles a finished (or failed-to-dispatch) request.
func (st *streamRun) release(id int64) {
	if r, ok := st.inflight[id]; ok {
		delete(st.inflight, id)
		st.arena.Put(r)
	}
}

// RunWorkloadStream is RunWorkload for workloads too large to
// materialize: it pulls arrival batches from the source on demand (each
// batch injected through one AfterBatch, with the next pull scheduled at
// the batch's last arrival), recycles completed requests through a
// free-list arena, and reports the run with streaming statistics
// attached. Peak memory is O(in-flight + one batch), independent of the
// trace length. Timestamp ties between a batch's first arrival and
// events scheduled earlier resolve in favor of the earlier event (the
// arrival is injected later); trace.ArrivalStream yields strictly
// increasing arrivals, so its chunking never reorders anything.
func (c *Cluster) RunWorkloadStream(src ArrivalSource) (Report, error) {
	if c.engine == nil {
		return Report{}, ErrLiveMode
	}
	st := &streamRun{src: src, inflight: make(map[int64]*core.Request)}
	c.stream = st
	// The stream detaches when the run ends (either way): a later
	// RunWorkload or live use of this cluster must not recycle through
	// — or report the statistics of — a finished replay.
	defer func() { c.stream = nil }()
	if err := c.injectNext(st); err != nil {
		return Report{}, err
	}
	c.engine.Run(0)
	if st.err != nil {
		return Report{}, st.err
	}
	if pending := c.sched.PendingTotal(); pending != 0 {
		return Report{}, fmt.Errorf("cluster: %d requests still pending after drain", pending)
	}
	return c.report(), nil
}

// injectNext pulls the next non-empty batch from the source and injects
// it into the engine; the follow-up pull fires once the batch's last
// arrival has been delivered (its event seq is right behind the batch,
// so no later-timestamped event runs before the refill).
func (c *Cluster) injectNext(st *streamRun) error {
	var batch []trace.Request
	for {
		b, ok := st.src.Next()
		if !ok {
			return nil
		}
		if len(b) > 0 {
			batch = b
			break
		}
	}
	now0 := c.engine.Now()
	st.delays = st.delays[:0]
	st.creqs = st.creqs[:0]
	last := now0
	for i := range batch {
		r := batch[i]
		// Arrivals must be non-decreasing — within the batch too: the
		// refill event rides on the batch's LAST element, and an
		// out-of-order batch would let it fire (and reuse the shared
		// injection buffers) while earlier-indexed arrivals are still
		// pending. Reject hard, like every other ordering violation.
		if sim.Time(r.Arrival) < last {
			// Release the part of the batch already pooled; nothing was
			// scheduled yet, so the arena stays balanced on abort.
			for _, cr := range st.creqs {
				st.release(cr.ID)
			}
			return fmt.Errorf("%w: at=%v now=%v (arrival)", sim.ErrPastEvent, sim.Time(r.Arrival), last)
		}
		last = sim.Time(r.Arrival)
		cr := st.arena.Get()
		cr.ID = r.ID
		cr.Function = r.Function
		cr.Model = r.Model
		cr.BatchSize = r.BatchSize
		cr.Arrival = sim.Time(r.Arrival)
		cr.Tenant = r.Tenant
		st.inflight[r.ID] = cr
		st.delays = append(st.delays, sim.Time(r.Arrival)-now0)
		st.creqs = append(st.creqs, cr)
	}
	st.batches++
	st.injected += int64(len(batch))
	creqs := st.creqs
	c.engine.AfterBatch(st.delays, "arrival", func(i int, now sim.Time) {
		if err := c.sched.Enqueue(creqs[i]); err != nil {
			c.failed++
			st.release(creqs[i].ID)
			return
		}
		c.runScheduler(now)
	})
	// The injection buffers are reusable after the batch's last arrival
	// has fired, which is exactly when the refill runs.
	c.engine.After(st.delays[len(st.delays)-1], "arrival.refill", func(sim.Time) {
		if err := c.injectNext(st); err != nil && st.err == nil {
			st.err = err
		}
	})
	return nil
}

// StreamStats summarizes a streaming replay for the Report: how much
// arrived, and how small the working set of pooled requests stayed.
type StreamStats struct {
	// Requests and Batches count the injected arrival stream.
	Requests int64
	Batches  int
	// PeakInflight is the high-water mark of concurrently live pooled
	// requests; ArenaAllocated is the number of fresh allocations the
	// arena performed (equal to PeakInflight once warm) and ArenaReused
	// the recycled remainder.
	PeakInflight   int64
	ArenaAllocated int64
	ArenaReused    int64
	// FinalLive is the arena's live count at report time: 0 after a
	// clean drain (omitted from JSON), non-zero only if a request was
	// lost or double-completed — the batching conservation signal.
	FinalLive int64 `json:",omitempty"`
}

// Report is the evaluation summary for one run; field names reference the
// paper's figures.
type Report struct {
	Policy    string
	Requests  int64
	Failed    int64
	Makespan  time.Duration
	EndOfRun  time.Duration
	completed int64

	// AvgLatencySec is Fig. 4a's metric.
	AvgLatencySec float64
	// LatencyVarianceSec2 is the variance discussed in §V-E.
	LatencyVarianceSec2 float64
	P50LatencySec       float64
	P95LatencySec       float64
	P99LatencySec       float64
	MaxLatencySec       float64

	// MissRatio is Fig. 4b; FalseMissRatio is Fig. 5.
	MissRatio      float64
	FalseMissRatio float64
	Misses         int64
	FalseMisses    int64

	// SMUtilization is Fig. 4c: inferring time / wall time averaged over
	// GPUs.
	SMUtilization float64
	// LoadFraction is the fraction of GPU time spent uploading models.
	LoadFraction float64
	// BusyFraction is 1 - idle fraction.
	BusyFraction float64

	// TopModelDuplicates is Fig. 6: the time-averaged number of GPUs
	// caching the tracked model.
	TopModelDuplicates float64

	// Scheduler internals.
	LocalQueueMoves int64
	O3Dispatches    int64
	Starved         int64
	// Batching counters (Config.MaxBatch > 1): how many dispatches
	// coalesced more than one request, and how many member requests rode
	// in them. Zero — and omitted, keeping pre-batching reports
	// byte-identical — when batching is off.
	BatchedDispatches int64 `json:",omitempty"`
	BatchedMembers    int64 `json:",omitempty"`

	// Elasticity accounting (autoscale subsystem). GPUSeconds is the
	// integral of fleet size over the run — the cost metric the
	// elasticity sweep compares against latency. A GPU accrues from the
	// instant it is provisioned (cold starts are paid for) until its
	// decommission completes.
	GPUSeconds float64
	ScaleUps   int64
	ScaleDowns int64
	PeakGPUs   int
	FinalGPUs  int
	// ScaleEvents is the autoscaler's event log (nil without one);
	// deterministic for a fixed trace, seed and policy.
	ScaleEvents []autoscale.ScaleEvent

	// Cost prices the run: Σ per-class GPU-seconds × CostPerSecond over
	// the declared device classes. Zero — and omitted from JSON, which
	// keeps pre-heterogeneity reports byte-identical — when no class
	// carries a cost.
	Cost float64 `json:",omitempty"`
	// ClassUsage is the per-device-class breakdown in fleet-spec order;
	// nil for clusters built from the homogeneous Nodes × GPUsPerNode
	// default.
	ClassUsage []ClassUsage `json:",omitempty"`

	// OrdBound is one past the highest GPU registration ordinal ever
	// assigned. Ordinals are never reused, so OrdBound − FinalGPUs is
	// the dead-ordinal pressure Ord-indexed state pays for (the
	// ROADMAP's "ordinal compaction" signal; also on /system/scale).
	// Excluded from JSON so golden reports stay byte-identical.
	OrdBound int `json:"-"`
	// MaxEventQueueLen is the peak discrete-event queue length over the
	// run and PeakLocalQueue the deepest single GPU local queue — the
	// capacity-planning telemetry pair surfaced by the scale and cell
	// sweeps. Excluded from JSON for the same golden-stability reason as
	// OrdBound.
	MaxEventQueueLen int `json:"-"`
	PeakLocalQueue   int `json:"-"`
	// Streaming carries the streaming-replay statistics; nil on the
	// materialized RunWorkload path (and so omitted from legacy report
	// JSON).
	Streaming *StreamStats `json:",omitempty"`
	// Breakdown is the queue-wait / load / service latency decomposition
	// (Config.Obs.Breakdown); nil — and omitted, keeping goldens
	// byte-identical — when the collector is off.
	Breakdown *obs.Breakdown `json:",omitempty"`
	// Series is the fixed-interval telemetry (Config.Obs.Series); nil
	// when the recorder is off.
	Series *obs.Series `json:",omitempty"`
	// SampledSpans counts the lifecycle spans recorded by the tracer
	// (Config.Obs.Trace); zero — and omitted — when tracing is off.
	SampledSpans int64 `json:",omitempty"`

	// Fault-injection accounting (Config.Chaos / Config.Retry). Failures
	// counts GPU crash events, Interrupted the in-flight execution
	// attempts those crashes aborted, Retries the interrupted requests
	// granted another attempt by the retry policy. FailedByReason splits
	// Failed by drop cause (keys from Reasons; maps marshal with sorted
	// keys, so the serialization is deterministic). All zero/nil — and
	// omitted, keeping fault-free reports byte-identical — without
	// faults.
	Failures       int64            `json:",omitempty"`
	Interrupted    int64            `json:",omitempty"`
	Retries        int64            `json:",omitempty"`
	FailedByReason map[string]int64 `json:",omitempty"`
}

// report snapshots the metrics (sim mode, after drain).
func (c *Cluster) report() Report {
	now := c.lastFinish
	rep := Report{
		Policy:              c.sched.Policy().String(),
		Requests:            c.completed,
		Failed:              c.failed,
		Makespan:            time.Duration(now),
		EndOfRun:            time.Duration(now),
		AvgLatencySec:       c.latencies.Mean(),
		LatencyVarianceSec2: c.latencies.Variance(),
		P50LatencySec:       c.latencies.Percentile(50),
		P95LatencySec:       c.latencies.Percentile(95),
		P99LatencySec:       c.latencies.Percentile(99),
		MaxLatencySec:       c.latencies.Max(),
	}
	cm := c.cacheMgr.Metrics()
	rep.MissRatio = cm.MissRatio
	rep.FalseMissRatio = cm.FalseMissRatio
	rep.Misses = cm.Misses
	rep.FalseMisses = cm.FalseMisses

	// Utilization is time-weighted over every member that ever served:
	// current GPUs through `now` plus the phase durations of removed
	// members (folded in at decommission time). For a fixed fleet all
	// member lifetimes are equal, so this matches the paper's per-GPU
	// average; for an elastic fleet it weights each member by the
	// GPU-time it actually contributed instead of letting short-lived
	// transients dominate an unweighted mean.
	idleT, loadT, inferT := c.remIdle, c.remLoading, c.remInferring
	for _, id := range c.gpuIDs {
		u := c.devByID[id].Utilization(now)
		idleT += u.Idle
		loadT += u.Loading
		inferT += u.Inferring
	}
	if total := float64(idleT + loadT + inferT); total > 0 {
		rep.SMUtilization = float64(inferT) / total
		rep.LoadFraction = float64(loadT) / total
		rep.BusyFraction = float64(loadT+inferT) / total
	}

	if c.topModel != "" {
		rep.TopModelDuplicates = c.cacheMgr.TrackedAverage(c.topModel, now)
	}
	sc := c.sched.Counters()
	rep.LocalQueueMoves = sc.LocalQueueMoves
	rep.O3Dispatches = sc.O3Dispatches
	rep.Starved = sc.Starved
	rep.PeakLocalQueue = sc.PeakLocalQueue
	rep.BatchedDispatches = sc.BatchedDispatches
	rep.BatchedMembers = sc.BatchedMembers
	if c.engine != nil {
		rep.MaxEventQueueLen = c.engine.MaxQueueLen()
	}

	// GPU-seconds integrate through the clock's now (autoscaler ticks
	// may outlive the last completion); removed members were already
	// accumulated at removal time.
	end := c.clock.Now()
	if end < now {
		end = now
	}
	rep.GPUSeconds = c.gpuSeconds
	classSecs := make(map[string]float64, len(c.classSeconds))
	classFinal := make(map[string]int, len(c.fleet))
	for t, s := range c.classSeconds {
		classSecs[t] = s
	}
	for _, id := range c.gpuIDs {
		secs := time.Duration(end - c.addedAt[id]).Seconds()
		rep.GPUSeconds += secs
		t := c.devByID[id].Type()
		classSecs[t] += secs
		classFinal[t]++
	}
	for _, class := range c.fleet {
		rep.Cost += classSecs[class.Type] * class.CostPerSecond
	}
	if c.declaredFleet {
		rep.ClassUsage = make([]ClassUsage, len(c.fleet))
		for i, class := range c.fleet {
			rep.ClassUsage[i] = ClassUsage{
				Class:      class.Type,
				GPUSeconds: classSecs[class.Type],
				Cost:       classSecs[class.Type] * class.CostPerSecond,
				PeakGPUs:   c.classPeak[class.Type],
				FinalGPUs:  classFinal[class.Type],
			}
		}
	}
	rep.ScaleUps = c.scaleUps
	rep.ScaleDowns = c.scaleDowns
	rep.PeakGPUs = c.peakGPUs
	rep.FinalGPUs = len(c.gpuIDs)
	rep.OrdBound = int(c.cacheMgr.OrdBound())
	if c.scaler != nil {
		rep.ScaleEvents = c.scaler.Events()
	}
	if st := c.stream; st != nil {
		as := st.arena.Stats()
		rep.Streaming = &StreamStats{
			Requests:       st.injected,
			Batches:        st.batches,
			PeakInflight:   as.PeakLive,
			ArenaAllocated: as.Allocated,
			ArenaReused:    as.Reused,
			FinalLive:      as.Live,
		}
	}
	if c.breakdown != nil {
		rep.Breakdown = c.breakdown.Breakdown()
	}
	if c.seriesRec != nil {
		// Flush boundaries the tail of the run crossed without a
		// subsequent event (the final partial interval stays unreported,
		// like any fixed-interval sampler's).
		c.seriesTick(now)
		rep.Series = c.seriesRec.Series()
	}
	if c.tracer != nil {
		rep.SampledSpans = int64(c.tracer.Len())
	}
	rep.Failures = c.failures
	rep.Interrupted = c.interrupted
	rep.Retries = c.retries
	if len(c.failedByReason) > 0 {
		rep.FailedByReason = make(map[string]int64, len(c.failedByReason))
		for k, v := range c.failedByReason {
			rep.FailedByReason[k] = v
		}
	}
	return rep
}

// ClassStatuses returns the live per-device-class breakdown (counts by
// lifecycle state, accrued GPU-seconds, cost), in fleet-spec order. Like
// FleetCounts it takes the cluster mutex — not for use from result hooks
// or status sinks.
func (c *Cluster) ClassStatuses() []ClassStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	sizes := (*fleetView)(c).ClassSizes()
	end := c.clock.Now()
	if end < c.lastFinish {
		end = c.lastFinish
	}
	classSecs := make(map[string]float64, len(c.classSeconds))
	for t, s := range c.classSeconds {
		classSecs[t] = s
	}
	for _, id := range c.gpuIDs {
		classSecs[c.devByID[id].Type()] += time.Duration(end - c.addedAt[id]).Seconds()
	}
	out := make([]ClassStatus, len(sizes))
	for i, cs := range sizes {
		out[i] = ClassStatus{
			Class:         cs.Class,
			Active:        cs.Active,
			Provisioning:  cs.Provisioning,
			Draining:      cs.Draining,
			Idle:          cs.Idle,
			GPUSeconds:    classSecs[cs.Class],
			CostPerSecond: cs.CostPerSecond,
			Cost:          classSecs[cs.Class] * cs.CostPerSecond,
		}
	}
	return out
}

// Fleet returns the normalized device-class mix the cluster was built
// with (a single DefaultGPUType class for homogeneous configs).
func (c *Cluster) Fleet() FleetSpec {
	out := make(FleetSpec, len(c.fleet))
	copy(out, c.fleet)
	return out
}

// Results returns retained completion records (KeepResults must be on).
func (c *Cluster) Results() []gpumgr.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]gpumgr.Result, len(c.results))
	copy(out, c.results)
	return out
}

// Completed returns the number of finished requests.
func (c *Cluster) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// RunStats carries the raw per-run observations behind a Report's
// summary statistics — the exact latency sample, the fleet-wide phase
// durations, and the cache-lookup denominator — so a multi-cell roll-up
// can merge percentiles, utilization and miss ratios exactly instead of
// approximating from per-cell summaries.
type RunStats struct {
	// Latencies are the per-request latencies in seconds (a copy of the
	// full sample, order unspecified).
	Latencies []float64
	// Idle, Loading and Inferring are phase durations summed over every
	// member that ever served, including decommissioned GPUs.
	Idle, Loading, Inferring time.Duration
	// CacheRequests is the lookup count behind Report.MissRatio (its
	// denominator; Report.Misses is the numerator).
	CacheRequests int64
	// Breakdown holds the raw latency-decomposition samples when
	// Config.Obs.Breakdown is on (nil otherwise): multicell merges the
	// raw components and recomputes exact fleet-wide quantiles.
	Breakdown *obs.RawBreakdown
	// Series is this cell's time-series when Config.Obs.Series is on.
	Series *obs.Series
}

// RunStats returns the raw observations for exact cross-cell merging.
func (c *Cluster) RunStats() RunStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.lastFinish
	rs := RunStats{
		Latencies:     c.latencies.Values(),
		CacheRequests: c.cacheMgr.Metrics().Requests,
	}
	rs.Idle, rs.Loading, rs.Inferring = c.remIdle, c.remLoading, c.remInferring
	for _, id := range c.gpuIDs {
		u := c.devByID[id].Utilization(now)
		rs.Idle += u.Idle
		rs.Loading += u.Loading
		rs.Inferring += u.Inferring
	}
	rs.Breakdown = c.breakdown.Raw()
	rs.Series = c.seriesRec.Series()
	return rs
}

// Spans returns the lifecycle spans recorded so far (nil unless
// Config.Obs.Trace is on), in completion order.
func (c *Cluster) Spans() []obs.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer.Spans()
}

// Snapshot returns a live metrics snapshot (live gateway's status page).
func (c *Cluster) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := c.report()
	rep.EndOfRun = time.Duration(c.clock.Now())
	return rep
}

// GPUFailures returns the cumulative per-GPU crash counts (the gateway's
// labeled failure gauges). Crashed devices stay in the map after they
// leave the fleet — the counter is history, not membership.
func (c *Cluster) GPUFailures() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.gpuFailures))
	for k, v := range c.gpuFailures {
		out[k] = v
	}
	return out
}

// SchedulableGPUs returns the number of currently schedulable (active,
// non-draining) GPUs — the gateway's readiness signal: a cell with zero
// is unschedulable.
func (c *Cluster) SchedulableGPUs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.gpuState {
		if s == gpuActive {
			n++
		}
	}
	return n
}

// PerModelMeanLatency returns each model's mean end-to-end latency.
func (c *Cluster) PerModelMeanLatency() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.perModel))
	for m, w := range c.perModel {
		out[m] = w.Mean()
	}
	return out
}
