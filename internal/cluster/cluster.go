// Package cluster wires the reproduction together: GPU devices, per-node
// GPU Managers, the global Cache Manager, and the Scheduler, following the
// architecture of Fig. 2 in the paper. It drives them in either of two
// modes:
//
//   - simulated time: RunWorkload feeds a request stream through a
//     discrete-event engine and returns the evaluation metrics — this is
//     what every benchmark uses;
//   - live time: Submit enqueues one request under the wall clock; the
//     FaaS gateway uses this path.
//
// The Cluster implements core.Backend, giving the Scheduler its view of
// GPU status, cache contents and profiled times.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpufaas/internal/cache"
	"gpufaas/internal/core"
	"gpufaas/internal/gpu"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/sim"
	"gpufaas/internal/stats"
	"gpufaas/internal/trace"
)

// Config describes the cluster to build. The defaults mirror the paper's
// testbed: 3 nodes x 4 GeForce RTX 2080 GPUs with 8 GB memory each.
type Config struct {
	Nodes       int
	GPUsPerNode int
	GPUType     string
	GPUMemory   int64 // bytes per GPU
	Policy      core.Policy
	O3Limit     int
	// DisableLocalQueue is the finish-time-estimation ablation knob
	// (core.Config.DisableLocalQueue).
	DisableLocalQueue bool
	CachePolicy       string // cache.PolicyLRU (default), PolicyFIFO, PolicyLFU
	Zoo               *models.Zoo
	Profiles          *models.ProfileStore
	// Clock overrides the default simulated clock (live mode passes a
	// RealClock). When nil, a fresh discrete-event engine is created.
	Clock sim.Clock
	// Sink forwards GPU status/completions (e.g. to the Datastore); may
	// be nil.
	Sink gpumgr.StatusSink
	// OnResult is called after each completion, outside metric
	// bookkeeping; may be nil.
	OnResult func(gpumgr.Result)
}

// DefaultGPUMemory is the usable model memory per GPU: the testbed's
// GeForce RTX 2080 has 8 GB physical memory of which roughly 1 GB is
// consumed by the CUDA context and framework runtime, leaving ~7 GB for
// model residency. This is the capacity the Cache Manager allocates
// against.
const DefaultGPUMemory = 7 << 30

// DefaultConfig returns the paper's 12-GPU testbed configuration with the
// LALB+O3 scheduler.
func DefaultConfig() Config {
	return Config{
		Nodes:       3,
		GPUsPerNode: 4,
		GPUType:     "rtx2080",
		GPUMemory:   DefaultGPUMemory,
		Policy:      core.LALBO3,
		O3Limit:     core.DefaultO3Limit,
		CachePolicy: cache.PolicyLRU,
	}
}

// Cluster is the assembled GPU-FaaS system.
type Cluster struct {
	mu sync.Mutex

	cfg      Config
	engine   *sim.Engine // nil in live mode
	clock    sim.Clock
	zoo      *models.Zoo
	profiles *models.ProfileStore
	cacheMgr *cache.Manager
	sched    *core.Scheduler
	mgrs     []*gpumgr.Manager
	devByID  map[string]*gpu.Device
	mgrByDev map[string]*gpumgr.Manager
	gpuIDs   []string

	// idle is the incremental idle-GPU set, ordered by registration
	// index; it is maintained from GPU status transitions (statusSink)
	// so the scheduler's per-decision candidate scan is proportional to
	// the idle count, never the cluster size.
	idle     []string
	gpuOrd   map[string]int
	userSink gpumgr.StatusSink

	latencies  *stats.Sample
	perModel   map[string]*stats.Welford
	results    []gpumgr.Result
	keepResult bool
	completed  int64
	failed     int64
	lastFinish sim.Time
	topModel   string
	onResult   func(gpumgr.Result)
}

// lockedClock wraps a clock so that timer callbacks run holding the
// cluster mutex; this is what makes the passive components safe under the
// real clock's timer goroutines.
type lockedClock struct {
	inner sim.Clock
	mu    *sync.Mutex
}

func (c lockedClock) Now() sim.Time { return c.inner.Now() }
func (c lockedClock) AfterFunc(d sim.Time, name string, fn func(now sim.Time)) func() {
	return c.inner.AfterFunc(d, name, func(now sim.Time) {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn(now)
	})
}

// New assembles a cluster from the config.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 || cfg.GPUsPerNode <= 0 {
		return nil, fmt.Errorf("cluster: invalid topology %dx%d", cfg.Nodes, cfg.GPUsPerNode)
	}
	if cfg.GPUMemory <= 0 {
		return nil, fmt.Errorf("cluster: invalid GPU memory %d", cfg.GPUMemory)
	}
	if cfg.GPUType == "" {
		cfg.GPUType = "rtx2080"
	}
	if cfg.Zoo == nil {
		cfg.Zoo = models.Default()
	}
	if cfg.Profiles == nil {
		cfg.Profiles = models.TableProfiles(cfg.GPUType, cfg.Zoo)
	}

	c := &Cluster{
		cfg:       cfg,
		zoo:       cfg.Zoo,
		profiles:  cfg.Profiles,
		devByID:   make(map[string]*gpu.Device),
		mgrByDev:  make(map[string]*gpumgr.Manager),
		gpuOrd:    make(map[string]int),
		userSink:  cfg.Sink,
		latencies: stats.NewSample(4096),
		perModel:  make(map[string]*stats.Welford),
		onResult:  cfg.OnResult,
	}
	if cfg.Clock == nil {
		c.engine = sim.New()
		c.clock = sim.SimClock{E: c.engine}
	} else {
		c.clock = lockedClock{inner: cfg.Clock, mu: &c.mu}
	}

	sizeOf := func(model string) (int64, bool) {
		m, ok := cfg.Zoo.Get(model)
		if !ok {
			return 0, false
		}
		return m.OccupancyBytes(), true
	}
	var err error
	c.cacheMgr, err = cache.NewManager(cfg.CachePolicy, sizeOf)
	if err != nil {
		return nil, err
	}

	for n := 0; n < cfg.Nodes; n++ {
		mgr, err := gpumgr.New(gpumgr.Config{
			Node:       fmt.Sprintf("node%d", n),
			Clock:      c.clock,
			Cache:      c.cacheMgr,
			Zoo:        cfg.Zoo,
			Profiles:   cfg.Profiles,
			Sink:       statusSink{c: c},
			OnComplete: c.handleComplete,
		})
		if err != nil {
			return nil, err
		}
		for g := 0; g < cfg.GPUsPerNode; g++ {
			dev, err := gpu.New(gpu.Config{
				ID:       fmt.Sprintf("node%d/gpu%d", n, g),
				Node:     mgr.Node(),
				Type:     cfg.GPUType,
				Capacity: cfg.GPUMemory,
			})
			if err != nil {
				return nil, err
			}
			if err := mgr.AddDevice(dev); err != nil {
				return nil, err
			}
			c.devByID[dev.ID()] = dev
			c.mgrByDev[dev.ID()] = mgr
			c.gpuOrd[dev.ID()] = len(c.gpuIDs)
			c.gpuIDs = append(c.gpuIDs, dev.ID())
		}
		c.mgrs = append(c.mgrs, mgr)
	}
	// Every GPU starts idle.
	c.idle = append(c.idle, c.gpuIDs...)

	c.sched, err = core.New(core.Config{
		Policy:            cfg.Policy,
		O3Limit:           cfg.O3Limit,
		DisableLocalQueue: cfg.DisableLocalQueue,
	}, (*backendView)(c))
	if err != nil {
		return nil, err
	}
	return c, nil
}

// statusSink observes GPU busy transitions from the GPU Managers to keep
// the cluster's incremental idle set current, then forwards to the
// user-configured sink. Transitions arrive before the scheduler re-runs
// (gpumgr reports status ahead of OnComplete), so the idle set is always
// fresh at decision time.
type statusSink struct{ c *Cluster }

func (s statusSink) GPUStatus(gpuID string, busy bool, at sim.Time) {
	s.c.markIdle(gpuID, !busy)
	if s.c.userSink != nil {
		s.c.userSink.GPUStatus(gpuID, busy, at)
	}
}

func (s statusSink) Completion(res gpumgr.Result) {
	if s.c.userSink != nil {
		s.c.userSink.Completion(res)
	}
}

// markIdle inserts or removes the GPU from the ordered idle set. Runs
// under the cluster's serialization (event loop in sim mode, lockedClock
// mutex in live mode).
func (c *Cluster) markIdle(gpuID string, idle bool) {
	ord, ok := c.gpuOrd[gpuID]
	if !ok {
		return
	}
	i := sort.Search(len(c.idle), func(i int) bool { return c.gpuOrd[c.idle[i]] >= ord })
	present := i < len(c.idle) && c.idle[i] == gpuID
	switch {
	case idle && !present:
		c.idle = append(c.idle, "")
		copy(c.idle[i+1:], c.idle[i:])
		c.idle[i] = gpuID
	case !idle && present:
		c.idle = append(c.idle[:i], c.idle[i+1:]...)
	}
}

// backendView adapts Cluster to core.Backend without exporting the
// methods on Cluster itself.
type backendView Cluster

func (b *backendView) GPUIDs() []string { return b.gpuIDs }

// IdleGPUs implements core.IdleLister: the incrementally-maintained idle
// set, ordered like GPUIDs. Read-only view for the duration of one
// Schedule call.
func (b *backendView) IdleGPUs() []string { return b.idle }
func (b *backendView) Busy(gpuID string) bool {
	d, ok := b.devByID[gpuID]
	return ok && d.Busy()
}
func (b *backendView) Cached(gpuID, model string) bool { return b.cacheMgr.Cached(gpuID, model) }
func (b *backendView) GPUsCaching(model string) []string {
	return b.cacheMgr.GPUsCachingView(model)
}
func (b *backendView) EstimatedFinish(gpuID string, now sim.Time) time.Duration {
	d, ok := b.devByID[gpuID]
	if !ok {
		return 0
	}
	return d.EstimatedFinish(now)
}
func (b *backendView) LoadTime(gpuID, model string) time.Duration {
	p, ok := b.profile(gpuID, model)
	if !ok {
		return 0
	}
	return p.LoadTime
}
func (b *backendView) InferTime(gpuID, model string, batch int) time.Duration {
	p, ok := b.profile(gpuID, model)
	if !ok {
		return 0
	}
	return p.InferTime(batch)
}
func (b *backendView) profile(gpuID, model string) (models.Profile, bool) {
	d, ok := b.devByID[gpuID]
	if !ok {
		return models.Profile{}, false
	}
	return b.profiles.Get(d.Type(), model)
}

// GPUIDs returns the cluster's GPUs in deterministic order.
func (c *Cluster) GPUIDs() []string {
	out := make([]string, len(c.gpuIDs))
	copy(out, c.gpuIDs)
	return out
}

// IdleGPUs returns a snapshot of the currently idle GPUs in registration
// order (the scheduler's candidate set).
func (c *Cluster) IdleGPUs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.idle))
	copy(out, c.idle)
	return out
}

// Scheduler exposes the scheduler (read-mostly: counters, queue lengths).
func (c *Cluster) Scheduler() *core.Scheduler { return c.sched }

// CacheManager exposes the cache manager for metric inspection.
func (c *Cluster) CacheManager() *cache.Manager { return c.cacheMgr }

// Zoo returns the model zoo in use.
func (c *Cluster) Zoo() *models.Zoo { return c.zoo }

// Managers returns the per-node GPU managers.
func (c *Cluster) Managers() []*gpumgr.Manager { return c.mgrs }

// Device returns a GPU device by ID.
func (c *Cluster) Device(id string) (*gpu.Device, bool) {
	d, ok := c.devByID[id]
	return d, ok
}

// KeepResults makes the cluster retain every completion record (memory
// proportional to workload size); used by analyses that need the full
// distribution.
func (c *Cluster) KeepResults(keep bool) { c.keepResult = keep }

// TrackModel enables time-averaged duplicate accounting for a model
// (Fig. 6 uses the most popular model).
func (c *Cluster) TrackModel(model string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.topModel = model
	c.cacheMgr.Track(model, c.clock.Now())
}

// handleComplete records a finished request and reschedules; invoked from
// clock callbacks (already holding the mutex via lockedClock in live mode,
// single-threaded in sim mode).
func (c *Cluster) handleComplete(res gpumgr.Result) {
	c.completed++
	c.lastFinish = res.FinishedAt
	c.latencies.Add(res.Latency().Seconds())
	w, ok := c.perModel[res.Model]
	if !ok {
		w = &stats.Welford{}
		c.perModel[res.Model] = w
	}
	w.Add(res.Latency().Seconds())
	if c.keepResult {
		c.results = append(c.results, res)
	}
	if c.onResult != nil {
		c.onResult(res)
	}
	c.runScheduler(res.FinishedAt)
}

// runScheduler executes one scheduling round and dispatches the decisions.
func (c *Cluster) runScheduler(now sim.Time) {
	for _, d := range c.sched.Schedule(now) {
		if _, err := c.mgrByDev[d.GPU].Execute(d.Req, d.GPU, now); err != nil {
			// A failed dispatch (quota, OOM-impossible model) drops the
			// request; the paper's system returns an error to the user.
			c.failed++
		}
	}
}

// Submit enqueues one request and runs the scheduler; the live gateway
// path. The request's Arrival must be set by the caller (gateway receipt
// time).
func (c *Cluster) Submit(req *core.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sched.Enqueue(req); err != nil {
		return err
	}
	c.runScheduler(c.clock.Now())
	return nil
}

// Engine returns the discrete-event engine (nil in live mode); tests use
// it to step time manually.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// ErrLiveMode is returned by RunWorkload on a cluster built with an
// external clock.
var ErrLiveMode = errors.New("cluster: RunWorkload requires the simulated clock")

// RunWorkload injects the request stream into the discrete-event engine,
// runs the simulation to completion, and returns the metrics report.
func (c *Cluster) RunWorkload(reqs []trace.Request) (Report, error) {
	if c.engine == nil {
		return Report{}, ErrLiveMode
	}
	for i := range reqs {
		r := reqs[i]
		cr := &core.Request{
			ID:        r.ID,
			Function:  r.Function,
			Model:     r.Model,
			BatchSize: r.BatchSize,
			Arrival:   sim.Time(r.Arrival),
			Tenant:    r.Tenant,
		}
		if _, err := c.engine.At(sim.Time(r.Arrival), "arrival", func(now sim.Time) {
			if err := c.sched.Enqueue(cr); err != nil {
				c.failed++
				return
			}
			c.runScheduler(now)
		}); err != nil {
			return Report{}, err
		}
	}
	c.engine.Run(0)
	if pending := c.sched.PendingTotal(); pending != 0 {
		return Report{}, fmt.Errorf("cluster: %d requests still pending after drain", pending)
	}
	return c.report(), nil
}

// Report is the evaluation summary for one run; field names reference the
// paper's figures.
type Report struct {
	Policy    string
	Requests  int64
	Failed    int64
	Makespan  time.Duration
	EndOfRun  time.Duration
	completed int64

	// AvgLatencySec is Fig. 4a's metric.
	AvgLatencySec float64
	// LatencyVarianceSec2 is the variance discussed in §V-E.
	LatencyVarianceSec2 float64
	P50LatencySec       float64
	P95LatencySec       float64
	P99LatencySec       float64
	MaxLatencySec       float64

	// MissRatio is Fig. 4b; FalseMissRatio is Fig. 5.
	MissRatio      float64
	FalseMissRatio float64
	Misses         int64
	FalseMisses    int64

	// SMUtilization is Fig. 4c: inferring time / wall time averaged over
	// GPUs.
	SMUtilization float64
	// LoadFraction is the fraction of GPU time spent uploading models.
	LoadFraction float64
	// BusyFraction is 1 - idle fraction.
	BusyFraction float64

	// TopModelDuplicates is Fig. 6: the time-averaged number of GPUs
	// caching the tracked model.
	TopModelDuplicates float64

	// Scheduler internals.
	LocalQueueMoves int64
	O3Dispatches    int64
	Starved         int64
}

// report snapshots the metrics (sim mode, after drain).
func (c *Cluster) report() Report {
	now := c.lastFinish
	rep := Report{
		Policy:              c.sched.Policy().String(),
		Requests:            c.completed,
		Failed:              c.failed,
		Makespan:            time.Duration(now),
		EndOfRun:            time.Duration(now),
		AvgLatencySec:       c.latencies.Mean(),
		LatencyVarianceSec2: c.latencies.Variance(),
		P50LatencySec:       c.latencies.Percentile(50),
		P95LatencySec:       c.latencies.Percentile(95),
		P99LatencySec:       c.latencies.Percentile(99),
		MaxLatencySec:       c.latencies.Max(),
	}
	cm := c.cacheMgr.Metrics()
	rep.MissRatio = cm.MissRatio
	rep.FalseMissRatio = cm.FalseMissRatio
	rep.Misses = cm.Misses
	rep.FalseMisses = cm.FalseMisses

	var sm, load, busy float64
	for _, id := range c.gpuIDs {
		u := c.devByID[id].Utilization(now)
		sm += u.SM()
		if u.Total > 0 {
			load += float64(u.Loading) / float64(u.Total)
		}
		busy += u.BusyFraction()
	}
	n := float64(len(c.gpuIDs))
	rep.SMUtilization = sm / n
	rep.LoadFraction = load / n
	rep.BusyFraction = busy / n

	if c.topModel != "" {
		rep.TopModelDuplicates = c.cacheMgr.TrackedAverage(c.topModel, now)
	}
	sc := c.sched.Counters()
	rep.LocalQueueMoves = sc.LocalQueueMoves
	rep.O3Dispatches = sc.O3Dispatches
	rep.Starved = sc.Starved
	return rep
}

// Results returns retained completion records (KeepResults must be on).
func (c *Cluster) Results() []gpumgr.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]gpumgr.Result, len(c.results))
	copy(out, c.results)
	return out
}

// Completed returns the number of finished requests.
func (c *Cluster) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Snapshot returns a live metrics snapshot (live gateway's status page).
func (c *Cluster) Snapshot() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := c.report()
	rep.EndOfRun = time.Duration(c.clock.Now())
	return rep
}

// PerModelMeanLatency returns each model's mean end-to-end latency.
func (c *Cluster) PerModelMeanLatency() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.perModel))
	for m, w := range c.perModel {
		out[m] = w.Mean()
	}
	return out
}
