package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"gpufaas/internal/core"
	"gpufaas/internal/trace"
)

// sliceSource feeds a pre-built request slice in fixed-size chunks — the
// test double for trace.ArrivalStream.
type sliceSource struct {
	reqs  []trace.Request
	chunk int
	pos   int
}

func (s *sliceSource) Next() ([]trace.Request, bool) {
	if s.pos >= len(s.reqs) {
		return nil, false
	}
	n := s.chunk
	if n <= 0 || n > len(s.reqs)-s.pos {
		n = len(s.reqs) - s.pos
	}
	out := s.reqs[s.pos : s.pos+n]
	s.pos += n
	return out, true
}

// TestRunWorkloadStreamMatchesMaterialized replays the same workload
// through RunWorkload and through RunWorkloadStream at several chunk
// sizes and requires identical reports (modulo the streaming statistics
// themselves): pulling arrivals on demand must not change a single
// scheduling decision. The workload's arrival times are strictly
// increasing (like trace.ArrivalStream's), so chunk boundaries cannot
// split timestamp ties.
func TestRunWorkloadStreamMatchesMaterialized(t *testing.T) {
	reqs := tinyWorkload(120, 170*time.Millisecond, "resnet18", "vgg19", "alexnet", "resnet50")

	base, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 7, 50, 0} {
		c, err := New(testConfig(core.LALBO3))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.RunWorkloadStream(&sliceSource{reqs: reqs, chunk: chunk})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		st := got.Streaming
		if st == nil {
			t.Fatalf("chunk %d: no streaming stats", chunk)
		}
		if st.Requests != int64(len(reqs)) {
			t.Errorf("chunk %d: injected %d, want %d", chunk, st.Requests, len(reqs))
		}
		if st.ArenaAllocated != st.PeakInflight {
			t.Errorf("chunk %d: allocated %d != peak in-flight %d", chunk, st.ArenaAllocated, st.PeakInflight)
		}
		if st.ArenaAllocated+st.ArenaReused != int64(len(reqs)) {
			t.Errorf("chunk %d: allocated %d + reused %d != %d requests",
				chunk, st.ArenaAllocated, st.ArenaReused, len(reqs))
		}
		got.Streaming = nil
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("chunk %d: streaming report differs from materialized:\n got: %s\nwant: %s",
				chunk, gotJSON, wantJSON)
		}
	}
}

// TestRunWorkloadStreamRecyclesRequests pins the O(in-flight) memory
// claim: tripling the trace length must not grow the arena — fresh
// allocations track the peak in-flight population, which is set by the
// arrival rate and service times, not by how long the trace runs.
func TestRunWorkloadStreamRecyclesRequests(t *testing.T) {
	alloc := func(n int) int64 {
		t.Helper()
		c, err := New(testConfig(core.LALBO3))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.RunWorkloadStream(&sliceSource{
			reqs:  tinyWorkload(n, 150*time.Millisecond, "resnet18", "vgg19", "alexnet"),
			chunk: 25,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Streaming == nil {
			t.Fatal("no streaming stats")
		}
		return rep.Streaming.ArenaAllocated
	}
	short, long := alloc(150), alloc(450)
	if long > short {
		t.Errorf("arena grew with trace length: %d allocations for 450 requests vs %d for 150", long, short)
	}
	if short >= 150 {
		t.Errorf("arena never recycled: %d allocations for 150 requests", short)
	}
}

// TestRunWorkloadStreamPastArrival: a source yielding an arrival behind
// the engine clock must fail the run, mirroring RunWorkload.
func TestRunWorkloadStreamPastArrival(t *testing.T) {
	c, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	reqs := tinyWorkload(10, 100*time.Millisecond, "resnet18")
	reqs[9].Arrival = reqs[8].Arrival // duplicate is fine...
	if _, err := c.RunWorkloadStream(&sliceSource{reqs: reqs, chunk: 3}); err != nil {
		t.Fatalf("equal-time arrival rejected: %v", err)
	}

	c2, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	bad := tinyWorkload(10, 100*time.Millisecond, "resnet18")
	bad[5].Arrival = -time.Second
	if _, err := c2.RunWorkloadStream(&sliceSource{reqs: bad, chunk: 3}); err == nil {
		t.Fatal("past arrival accepted")
	}

	// An internally-unsorted batch must fail hard too: the refill event
	// rides on the batch's last element, so out-of-order elements would
	// otherwise corrupt the reused injection buffers silently.
	c3, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	unsorted := tinyWorkload(10, 100*time.Millisecond, "resnet18")
	unsorted[4].Arrival, unsorted[5].Arrival = unsorted[5].Arrival, unsorted[4].Arrival
	if _, err := c3.RunWorkloadStream(&sliceSource{reqs: unsorted, chunk: 10}); err == nil {
		t.Fatal("unsorted batch accepted")
	}
}
