package cluster

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/core"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/sim"
)

// checkMembership verifies every membership view agrees after churn: the
// idle set only holds members, the cache manager tracks exactly the
// member GPUs, and the scheduler holds no state for departed GPUs.
func checkMembership(t *testing.T, c *Cluster) {
	t.Helper()
	members := make(map[string]bool)
	for _, id := range c.GPUIDs() {
		members[id] = true
	}
	for _, id := range c.IdleGPUs() {
		if !members[id] {
			t.Errorf("idle set holds non-member %s", id)
		}
	}
	for _, id := range c.CacheManager().GPUs() {
		if !members[id] {
			t.Errorf("cache manager tracks non-member %s", id)
		}
	}
	if got, want := len(c.CacheManager().GPUs()), len(members); got != want {
		t.Errorf("cache manager tracks %d GPUs, cluster has %d", got, want)
	}
	if err := c.CacheManager().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestAddGPUImmediatelySchedulable(t *testing.T) {
	c, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.AddGPU("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if id != "elastic/gpu0" {
		t.Errorf("ID = %s", id)
	}
	if got := len(c.GPUIDs()); got != 13 {
		t.Fatalf("fleet = %d, want 13", got)
	}
	if got := len(c.IdleGPUs()); got != 13 {
		t.Fatalf("idle = %d, want 13", got)
	}
	checkMembership(t, c)
	// The new GPU executes work like any other.
	rep, err := c.RunWorkload(tinyWorkload(40, 50*time.Millisecond, "resnet18", "vgg19"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.FinalGPUs != 13 || rep.PeakGPUs != 13 || rep.ScaleUps != 1 {
		t.Errorf("elasticity accounting = final %d peak %d ups %d",
			rep.FinalGPUs, rep.PeakGPUs, rep.ScaleUps)
	}
}

func TestAddGPUColdStartDelaysSchedulability(t *testing.T) {
	cfg := testConfig(core.LALBO3)
	cfg.Nodes, cfg.GPUsPerNode = 1, 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.AddGPU("", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.IdleGPUs()); got != 1 {
		t.Fatalf("cold-starting GPU already idle-listed: idle = %d", got)
	}
	// Two same-model requests at t=0: with one schedulable GPU both run
	// there back to back; the second must NOT land on the provisioning
	// GPU even though it is free.
	reqs := tinyWorkload(2, 0, "resnet18")
	c.KeepResults(true)
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2 {
		t.Fatalf("report = %+v", rep)
	}
	for _, r := range c.Results() {
		if r.GPU == id {
			t.Errorf("request %d dispatched to GPU %s during cold start (dispatched at %v)",
				r.ReqID, id, r.DispatchedAt)
		}
	}
	// After the engine drained, virtual time passed the cold-start
	// window and the GPU joined the idle set.
	if got := len(c.IdleGPUs()); got != 2 {
		t.Errorf("after activation idle = %d, want 2", got)
	}
	checkMembership(t, c)
}

func TestDecommissionIdleGPUEvictsResidents(t *testing.T) {
	c, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	// Warm one model onto node0/gpu0 via a short run.
	if _, err := c.RunWorkload(tinyWorkload(1, 0, "resnet18")); err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, id := range c.GPUIDs() {
		if c.CacheManager().Cached(id, "resnet18") {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatal("no GPU cached resnet18 after the warm-up run")
	}
	if err := c.DecommissionGPU(victim, false); err != nil {
		t.Fatal(err)
	}
	if got := len(c.GPUIDs()); got != 11 {
		t.Fatalf("fleet = %d, want 11", got)
	}
	if c.CacheManager().NumCaching("resnet18") != 0 {
		t.Error("resident survived decommission in the cache index")
	}
	if _, ok := c.Device(victim); ok {
		t.Error("device lookup still resolves the removed GPU")
	}
	checkMembership(t, c)
}

func TestDecommissionUnknownAndBusy(t *testing.T) {
	cfg := testConfig(core.LALBO3)
	cfg.Nodes, cfg.GPUsPerNode = 1, 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DecommissionGPU("nope", true); !errors.Is(err, ErrUnknownGPU) {
		t.Errorf("unknown GPU: %v", err)
	}
	// Make node0/gpu0 busy at t=0, then ask for a non-drain removal
	// from inside the run: it must refuse.
	reqs := tinyWorkload(2, 0, "resnet18", "vgg19")
	if _, err := c.Engine().At(1*time.Millisecond, "test.decommission", func(now sim.Time) {
		if err := c.DecommissionGPU("node0/gpu0", false); !errors.Is(err, ErrNotQuiet) {
			t.Errorf("busy non-drain decommission: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunWorkload(reqs); err != nil {
		t.Fatal(err)
	}
	checkMembership(t, c)
}

// TestDecommissionDrainsInFlightAndParkedWork is the churn acceptance
// test: a GPU holding cache residents, an in-flight request AND parked
// local-queue work is drained mid-run. Every request still completes,
// the draining GPU takes no new global work after the mark, and all
// membership views stay consistent.
func TestDecommissionDrainsInFlightAndParkedWork(t *testing.T) {
	cfg := testConfig(core.LALB)
	cfg.Nodes, cfg.GPUsPerNode = 1, 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.KeepResults(true)
	// resnet18 requests arrive faster than service: the first miss-loads
	// onto gpu0, later ones park in gpu0's local queue (load time >>
	// wait). vgg19 keeps gpu1 occupied so llb cannot divert.
	var reqs = tinyWorkload(12, 20*time.Millisecond, "resnet18", "vgg19")
	const victim = "node0/gpu0"
	drained := make(chan struct{})
	if _, err := c.Engine().At(120*time.Millisecond, "test.drain", func(now sim.Time) {
		if err := c.DecommissionGPU(victim, true); err != nil {
			t.Errorf("drain decommission: %v", err)
		}
		close(drained)
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	default:
		t.Fatal("drain event never fired")
	}
	if rep.Requests != 12 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if got := len(c.GPUIDs()); got != 1 {
		t.Fatalf("fleet = %d, want 1 after drain", got)
	}
	if rep.ScaleDowns != 1 {
		t.Errorf("ScaleDowns = %d", rep.ScaleDowns)
	}
	// The drained GPU must not have started any request after its last
	// pre-drain work finished: every dispatch to it happened either
	// before the drain mark or from its local queue (FromLocalQueue is
	// not recorded in Result, so check completion coverage instead).
	seen := map[int64]bool{}
	for _, r := range c.Results() {
		seen[r.ReqID] = true
	}
	for i := int64(0); i < 12; i++ {
		if !seen[i] {
			t.Errorf("request %d never completed", i)
		}
	}
	checkMembership(t, c)
	if c.Scheduler().PendingTotal() != 0 {
		t.Error("scheduler still has pending work")
	}
}

// TestChurnMembershipTable walks add/decommission sequences and checks
// every view after each step.
func TestChurnMembershipTable(t *testing.T) {
	type step struct {
		op        string // "add", "addCold", "rm", "rmProvisioning"
		wantFleet int
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"grow-then-shrink", []step{
			{"add", 13}, {"add", 14}, {"rm", 13}, {"rm", 12},
		}},
		{"cancel-cold-start", []step{
			{"addCold", 13}, {"rmProvisioning", 12},
		}},
		{"interleaved", []step{
			{"add", 13}, {"addCold", 14}, {"rm", 13}, {"add", 14}, {"rm", 13},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(testConfig(core.LALBO3))
			if err != nil {
				t.Fatal(err)
			}
			var added []string
			for i, s := range tc.steps {
				switch s.op {
				case "add":
					id, err := c.AddGPU("", 0)
					if err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
					added = append(added, id)
				case "addCold":
					id, err := c.AddGPU("", time.Hour) // never activates in this test
					if err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
					added = append(added, id)
				case "rm", "rmProvisioning":
					id := added[len(added)-1]
					added = added[:len(added)-1]
					if err := c.DecommissionGPU(id, true); err != nil {
						t.Fatalf("step %d: %v", i, err)
					}
				}
				if got := len(c.GPUIDs()); got != s.wantFleet {
					t.Fatalf("step %d: fleet = %d, want %d", i, got, s.wantFleet)
				}
				checkMembership(t, c)
			}
		})
	}
}

// TestChurnStressRace hammers a live-mode cluster with concurrent
// submissions, scale-ups and drain-decommissions; run under -race this is
// the churn data-race gate.
func TestChurnStressRace(t *testing.T) {
	cfg := testConfig(core.LALBO3)
	cfg.Nodes, cfg.GPUsPerNode = 1, 2
	cfg.Clock = sim.NewRealClock()
	cfg.Zoo = models.Default()
	cfg.Profiles = fastProfiles(cfg.Zoo, DefaultGPUType)
	done := make(chan struct{}, 256)
	cfg.OnResult = func(gpumgr.Result) { done <- struct{}{} }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const submitters, reqsEach = 4, 12
	var wg sync.WaitGroup
	var idMu sync.Mutex
	var nextID int64
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqsEach; i++ {
				idMu.Lock()
				nextID++
				req := &core.Request{
					ID: nextID, Function: "stress", Model: "resnet18",
					BatchSize: 8, Arrival: c.Snapshot().EndOfRun,
				}
				// Submit under idMu so arrivals reach the scheduler in
				// non-decreasing order.
				err := c.Submit(req)
				idMu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var mine []string
		for i := 0; i < 6; i++ {
			id, err := c.AddGPU("", 2*time.Millisecond)
			if err != nil {
				t.Error(err)
				return
			}
			mine = append(mine, id)
			time.Sleep(3 * time.Millisecond)
			if i%2 == 1 {
				victim := mine[0]
				mine = mine[1:]
				if err := c.DecommissionGPU(victim, true); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	deadline := time.After(10 * time.Second)
	for i := 0; i < submitters*reqsEach; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("only %d/%d completions before deadline", i, submitters*reqsEach)
		}
	}
	if err := c.CacheManager().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestElasticDeterministicReports runs the same autoscaled workload twice
// and requires identical Reports including the scale-event log — once on
// the homogeneous fleet, once on a mixed-class fleet under the tiered
// policy, so determinism is pinned for heterogeneous membership churn
// too.
func TestElasticDeterministicReports(t *testing.T) {
	homogeneous := func() Report {
		cfg := testConfig(core.LALBO3)
		cfg.Nodes, cfg.GPUsPerNode = 1, 4
		pol, err := autoscale.NewTargetUtilization(0.7, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Autoscale = &autoscale.Config{
			Policy:    pol,
			Interval:  2 * time.Second,
			MinGPUs:   2,
			MaxGPUs:   8,
			ColdStart: 1 * time.Second,
			Horizon:   2 * time.Minute,
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := tinyWorkload(150, 300*time.Millisecond, "resnet18", "vgg19", "alexnet", "densenet121")
		rep, err := c.RunWorkload(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	mixed := func() Report {
		cfg := testConfig(core.LALBO3)
		cfg.Fleet = FleetSpec{
			{Type: "t4", Count: 3, CostPerSecond: 0.20},
			{Type: "rtx2080", Count: 1, CostPerSecond: 0.60},
		}
		pol, err := autoscale.NewTiered(autoscale.Tiered{
			Tiers:     []string{"t4", "rtx2080"},
			TierCaps:  []int{6, 3},
			TargetP95: 3,
			Step:      2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Autoscale = &autoscale.Config{
			Policy:    pol,
			Interval:  2 * time.Second,
			MinGPUs:   2,
			MaxGPUs:   9,
			ColdStart: 1 * time.Second,
			Horizon:   2 * time.Minute,
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := tinyWorkload(150, 300*time.Millisecond, "resnet18", "vgg19", "alexnet", "densenet121")
		rep, err := c.RunWorkload(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, tc := range []struct {
		name string
		run  func() Report
	}{
		{"homogeneous", homogeneous},
		{"mixed-tiered", mixed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.run(), tc.run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("nondeterministic elastic runs:\n%+v\n%+v", a, b)
			}
			if a.ScaleUps == 0 && a.ScaleDowns == 0 {
				t.Error("autoscaler made no scaling decisions on a 150-request burst")
			}
			if a.GPUSeconds <= 0 {
				t.Errorf("GPUSeconds = %g", a.GPUSeconds)
			}
		})
	}
}

// TestReportCoversRemovedGPUs: utilization averages must include
// members that served and left, and an emptied fleet must not produce
// NaN metrics (JSON marshalling would fail).
func TestReportCoversRemovedGPUs(t *testing.T) {
	cfg := testConfig(core.LALBO3)
	cfg.Nodes, cfg.GPUsPerNode = 1, 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both GPUs serve work, then one leaves.
	if _, err := c.RunWorkload(tinyWorkload(8, 10*time.Millisecond, "resnet18", "vgg19")); err != nil {
		t.Fatal(err)
	}
	busyBefore := c.Snapshot().BusyFraction
	if busyBefore <= 0 {
		t.Fatal("setup: no recorded utilization")
	}
	if err := c.DecommissionGPU("node0/gpu1", true); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if after.BusyFraction <= 0 {
		t.Error("removed GPU's utilization dropped from the report")
	}
	if math.IsNaN(after.SMUtilization) || math.IsNaN(after.BusyFraction) {
		t.Error("NaN utilization after decommission")
	}
	// Drain the last GPU too: metrics must stay finite (the removed
	// members' history), and the report must survive JSON marshalling.
	if err := c.DecommissionGPU("node0/gpu0", true); err != nil {
		t.Fatal(err)
	}
	final := c.Snapshot()
	if math.IsNaN(final.SMUtilization) || math.IsNaN(final.LoadFraction) || math.IsNaN(final.BusyFraction) {
		t.Errorf("NaN metrics on an empty fleet: %+v", final)
	}
	if _, err := json.Marshal(final); err != nil {
		t.Errorf("empty-fleet report does not marshal: %v", err)
	}
	if final.BusyFraction <= 0 {
		t.Error("fully-drained fleet lost its utilization history")
	}
}

// TestAutoscalerRequiresHorizonInSimMode pins the guard that keeps
// RunWorkload from never draining.
func TestAutoscalerRequiresHorizonInSimMode(t *testing.T) {
	cfg := testConfig(core.LALBO3)
	pol, err := autoscale.NewTargetUtilization(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Autoscale = &autoscale.Config{Policy: pol}
	if _, err := New(cfg); err == nil {
		t.Fatal("sim-mode autoscaler without Horizon must be rejected")
	}
}
