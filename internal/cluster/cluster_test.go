package cluster

import (
	"testing"
	"time"

	"gpufaas/internal/core"
	"gpufaas/internal/gpumgr"
	"gpufaas/internal/models"
	"gpufaas/internal/sim"
	"gpufaas/internal/stats"
	"gpufaas/internal/trace"
)

func testConfig(p core.Policy) Config {
	cfg := DefaultConfig()
	cfg.Policy = p
	if p == core.LALBO3 {
		cfg.O3Limit = core.DefaultO3Limit
	}
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, GPUsPerNode: 1, GPUMemory: 1},
		{Nodes: 1, GPUsPerNode: 0, GPUMemory: 1},
		{Nodes: 1, GPUsPerNode: 1, GPUMemory: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	cfg := DefaultConfig()
	cfg.CachePolicy = "bogus"
	if _, err := New(cfg); err == nil {
		t.Error("bogus cache policy should fail")
	}
}

func TestTopology(t *testing.T) {
	c, err := New(testConfig(core.LALB))
	if err != nil {
		t.Fatal(err)
	}
	ids := c.GPUIDs()
	if len(ids) != 12 {
		t.Fatalf("GPUs = %d, want 12", len(ids))
	}
	if ids[0] != "node0/gpu0" || ids[11] != "node2/gpu3" {
		t.Errorf("IDs = %v", ids)
	}
	if len(c.Managers()) != 3 {
		t.Errorf("managers = %d", len(c.Managers()))
	}
	if _, ok := c.Device("node1/gpu2"); !ok {
		t.Error("device lookup failed")
	}
	if c.Zoo().Len() != 22 {
		t.Errorf("zoo = %d models", c.Zoo().Len())
	}
}

// tinyWorkload builds n requests round-robining over the given models with
// even spacing.
func tinyWorkload(n int, spacing time.Duration, modelNames ...string) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := 0; i < n; i++ {
		reqs[i] = trace.Request{
			ID:        int64(i),
			Function:  "f-" + modelNames[i%len(modelNames)],
			Model:     modelNames[i%len(modelNames)],
			Arrival:   time.Duration(i) * spacing,
			BatchSize: 32,
		}
	}
	return reqs
}

func TestRunWorkloadAllComplete(t *testing.T) {
	c, err := New(testConfig(core.LALBO3))
	if err != nil {
		t.Fatal(err)
	}
	c.KeepResults(true)
	reqs := tinyWorkload(50, 200*time.Millisecond, "resnet18", "vgg19", "alexnet")
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 50 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.AvgLatencySec <= 0 {
		t.Error("latency must be positive")
	}
	if rep.MissRatio <= 0 || rep.MissRatio > 1 {
		t.Errorf("MissRatio = %g", rep.MissRatio)
	}
	results := c.Results()
	if len(results) != 50 {
		t.Fatalf("results = %d", len(results))
	}
	seen := map[int64]bool{}
	for _, r := range results {
		if seen[r.ReqID] {
			t.Errorf("request %d completed twice", r.ReqID)
		}
		seen[r.ReqID] = true
		if r.FinishedAt < r.Arrival {
			t.Error("finished before arrival")
		}
		if r.Hit && r.LoadTime != 0 {
			t.Error("hit with load time")
		}
		if !r.Hit && r.LoadTime == 0 {
			t.Error("miss without load time")
		}
	}
	// Device invariants hold after the run.
	for _, id := range c.GPUIDs() {
		d, _ := c.Device(id)
		if err := d.CheckInvariants(); err != nil {
			t.Error(err)
		}
		if d.Busy() {
			t.Errorf("%s still busy after drain", id)
		}
	}
	if err := c.CacheManager().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	run := func() Report {
		c, err := New(testConfig(core.LALBO3))
		if err != nil {
			t.Fatal(err)
		}
		reqs := tinyWorkload(80, 100*time.Millisecond, "resnet18", "vgg19", "densenet121", "inception.v3")
		rep, err := c.RunWorkload(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.AvgLatencySec != b.AvgLatencySec || a.MissRatio != b.MissRatio || a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestLALBBeatsLBOnHotWorkload(t *testing.T) {
	// A single hot model arriving faster than cold-start service rate:
	// locality should massively beat blind load balancing.
	mk := func(p core.Policy) Report {
		c, err := New(testConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		reqs := tinyWorkload(150, 300*time.Millisecond, "resnet18", "vgg19", "alexnet")
		rep, err := c.RunWorkload(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	lb, lalb := mk(core.LB), mk(core.LALB)
	if lalb.MissRatio >= lb.MissRatio {
		t.Errorf("LALB miss %g !< LB miss %g", lalb.MissRatio, lb.MissRatio)
	}
	if lalb.AvgLatencySec >= lb.AvgLatencySec {
		t.Errorf("LALB latency %g !< LB latency %g", lalb.AvgLatencySec, lb.AvgLatencySec)
	}
	// Underloaded workload: SM utilization must at least not regress
	// (the strict ordering is exercised by the saturated Fig. 4 bench).
	if lalb.SMUtilization < lb.SMUtilization-1e-9 {
		t.Errorf("LALB SM %g < LB SM %g", lalb.SMUtilization, lb.SMUtilization)
	}
}

// fastProfiles builds a profile store where every model loads in 2ms and
// infers in 1ms, so live-clock tests finish quickly.
func fastProfiles(zoo *models.Zoo, gpuType string) *models.ProfileStore {
	prof := models.NewProfileStore()
	for _, m := range zoo.All() {
		prof.Put(models.Profile{
			Model:    m.Name,
			GPUType:  gpuType,
			LoadTime: 2 * time.Millisecond,
			InferFit: stats.Linear{Alpha: 0.001, Beta: 0, R2: 1, N: 2},
		})
	}
	return prof
}

func TestSubmitLiveMode(t *testing.T) {
	cfg := testConfig(core.LALB)
	cfg.Clock = sim.NewRealClock()
	cfg.Zoo = models.Default()
	cfg.Profiles = fastProfiles(cfg.Zoo, DefaultGPUType)
	done := make(chan gpumgr.Result, 16)
	cfg.OnResult = func(r gpumgr.Result) { done <- r }
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunWorkload(nil); err != ErrLiveMode {
		t.Errorf("RunWorkload on live cluster: %v", err)
	}
	for i := 0; i < 8; i++ {
		req := &core.Request{
			ID:        int64(i),
			Function:  "live-fn",
			Model:     "resnet18",
			BatchSize: 32,
			Arrival:   cfg.Clock.Now(),
		}
		if err := c.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case r := <-done:
			if r.Model != "resnet18" {
				t.Errorf("result model = %s", r.Model)
			}
		case <-deadline:
			t.Fatalf("only %d/8 completions before deadline", i)
		}
	}
	if got := c.Completed(); got != 8 {
		t.Errorf("Completed = %d", got)
	}
	snap := c.Snapshot()
	if snap.Requests != 8 {
		t.Errorf("snapshot requests = %d", snap.Requests)
	}
	if lat := c.PerModelMeanLatency(); lat["resnet18"] <= 0 {
		t.Errorf("per-model latency = %v", lat)
	}
}

func TestSubmitOutOfOrderArrivalRejected(t *testing.T) {
	// Saturate all 12 GPUs (LB dispatches the first 12, the 13th waits in
	// the global queue) and then submit a request with an earlier arrival:
	// Submit must propagate the scheduler's ordering error.
	cfg := testConfig(core.LB)
	cfg.Clock = sim.NewRealClock()
	zoo := models.Default()
	cfg.Zoo = zoo
	prof := models.NewProfileStore()
	for _, m := range zoo.All() {
		prof.Put(models.Profile{
			Model:    m.Name,
			GPUType:  DefaultGPUType,
			LoadTime: 500 * time.Millisecond,
			InferFit: stats.Linear{Alpha: 0.5, Beta: 0, R2: 1, N: 2},
		})
	}
	cfg.Profiles = prof
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		req := &core.Request{ID: int64(i), Model: "resnet18", BatchSize: 32, Arrival: sim.Time(time.Second)}
		if err := c.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	if c.Scheduler().GlobalQueueLen() == 0 {
		t.Skip("cluster drained faster than expected; ordering path covered in core tests")
	}
	if err := c.Submit(&core.Request{ID: 99, Model: "resnet18", BatchSize: 32, Arrival: 0}); err == nil {
		t.Error("out-of-order Submit should fail")
	}
}

// idleCheckSink verifies, at every GPU status transition, that the
// cluster's incremental idle set matches the devices' actual busy state
// and stays in registration order.
type idleCheckSink struct {
	t      *testing.T
	c      *Cluster
	events int
}

func (s *idleCheckSink) GPUStatus(gpuID string, busy bool, at sim.Time) {
	s.events++
	idle := map[string]bool{}
	for _, o := range s.c.idle {
		idle[s.c.cacheMgr.IDOf(o)] = true
	}
	for i := 1; i < len(s.c.idle); i++ {
		if s.c.idle[i-1] >= s.c.idle[i] {
			s.t.Errorf("idle set out of registration order: %v", s.c.idle)
		}
	}
	for _, id := range s.c.gpuIDs {
		d := s.c.devByID[id]
		if d.Busy() == idle[id] {
			s.t.Errorf("at %v: GPU %s busy=%v but idle-set membership=%v",
				at, id, d.Busy(), idle[id])
		}
	}
}

func (s *idleCheckSink) Completion(res gpumgr.Result) {}

func TestIdleSetTracksDeviceState(t *testing.T) {
	cfg := testConfig(core.LALBO3)
	sink := &idleCheckSink{t: t}
	cfg.Sink = sink
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink.c = c

	// All GPUs idle at rest.
	if got := c.IdleGPUs(); len(got) != 12 {
		t.Fatalf("initial idle = %v", got)
	}
	reqs := tinyWorkload(80, 150*time.Millisecond, "resnet18", "vgg19", "alexnet", "squeezenet1.1")
	rep, err := c.RunWorkload(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if sink.events == 0 {
		t.Fatal("sink observed no transitions")
	}
	// After drain, every GPU is idle again.
	if got := c.IdleGPUs(); len(got) != 12 {
		t.Errorf("post-run idle = %v", got)
	}
}
