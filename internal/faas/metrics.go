package faas

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"gpufaas/internal/cluster"
	"gpufaas/internal/multicell"
)

// promReport is the slice of a report the Prometheus endpoint exposes;
// single-cell gateways fill it from the cluster snapshot, multi-cell
// gateways from the deterministic fleet merge.
type promReport struct {
	Requests, Failed              int64
	MissRatio, FalseMissRatio     float64
	SMUtilization                 float64
	LocalQueueMoves, O3Dispatches int64
	// FailedByReason splits Failed over the closed cluster.Reasons set.
	FailedByReason map[string]int64
}

// fleetReport rolls the live per-cell snapshots into the fleet view.
func (g *Gateway) fleetReport() promReport {
	if len(g.cells) == 1 {
		s := g.cells[0].Snapshot()
		return promReport{
			Requests: s.Requests, Failed: s.Failed,
			MissRatio: s.MissRatio, FalseMissRatio: s.FalseMissRatio,
			SMUtilization:   s.SMUtilization,
			LocalQueueMoves: s.LocalQueueMoves, O3Dispatches: s.O3Dispatches,
			FailedByReason: s.FailedByReason,
		}
	}
	outs := make([]multicell.CellOutcome, len(g.cells))
	for i, c := range g.cells {
		outs[i] = multicell.CellOutcome{Report: c.Snapshot(), Stats: c.RunStats()}
	}
	m := multicell.Merge(outs, g.infer.routerPolicyValue())
	return promReport{
		Requests: m.Requests, Failed: m.Failed,
		MissRatio: m.MissRatio, FalseMissRatio: m.FalseMissRatio,
		SMUtilization:   m.SMUtilization,
		LocalQueueMoves: m.LocalQueueMoves, O3Dispatches: m.O3Dispatches,
		FailedByReason: m.FailedByReason,
	}
}

// handlePromMetrics serves the cluster and gateway counters in the
// Prometheus text exposition format at /metrics, which is how OpenFaaS
// exposes its gateway metrics in production. On a multi-cell gateway
// the fleet-level series are the merged roll-up across cells.
func (g *Gateway) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	snap := g.fleetReport()
	var sb strings.Builder

	// Two helpers, one per metric type: `_total` series are monotonic
	// counters and must advertise TYPE counter — scrapers apply rate()
	// only to counters, and the old all-gauge exposition silently broke
	// every rate(gpufaas_requests_total[5m]) recording rule.
	metric := func(typ, name, help string, value float64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
	}
	counter := func(name, help string, value float64) { metric("counter", name, help, value) }
	gauge := func(name, help string, value float64) { metric("gauge", name, help, value) }

	counter("gpufaas_requests_total", "Completed inference requests.", float64(snap.Requests))
	// Failed requests split by drop reason over the closed
	// cluster.Reasons set. Every reason is pre-registered at zero so
	// rate() has a defined origin before the first failure of each kind.
	fmt.Fprintf(&sb, "# HELP gpufaas_requests_failed_total Requests dropped, by reason (fault, retry_exhausted, quota, ...).\n# TYPE gpufaas_requests_failed_total counter\n")
	for _, reason := range cluster.Reasons {
		fmt.Fprintf(&sb, "gpufaas_requests_failed_total{reason=%q} %d\n", reason, snap.FailedByReason[reason])
	}
	gauge("gpufaas_cache_miss_ratio", "Model cache miss ratio.", snap.MissRatio)
	gauge("gpufaas_false_miss_ratio", "False-miss ratio (miss while cached elsewhere).", snap.FalseMissRatio)
	gauge("gpufaas_sm_utilization", "Mean GPU SM utilization.", snap.SMUtilization)
	counter("gpufaas_scheduler_queue_moves_total", "Requests parked on busy GPUs' local queues.", float64(snap.LocalQueueMoves))
	counter("gpufaas_scheduler_o3_dispatches_total", "Out-of-order dispatches.", float64(snap.O3Dispatches))

	// Request latency as a true histogram, one series set per cell.
	// This replaces the old gpufaas_avg_latency_seconds /
	// gpufaas_p99_latency_seconds gauges: pre-digested quantiles can't
	// be aggregated across gateways or re-sliced over time, while
	// histogram_quantile() over these buckets yields any percentile.
	fmt.Fprintf(&sb, "# HELP gpufaas_request_duration_seconds End-to-end inference latency.\n# TYPE gpufaas_request_duration_seconds histogram\n")
	for i, h := range g.latHists {
		labels := ""
		if len(g.latHists) > 1 {
			labels = fmt.Sprintf("cell=%q", strconv.Itoa(i))
		}
		h.write(&sb, "gpufaas_request_duration_seconds", labels)
	}

	// Admission-control series (only with admission enabled): shed
	// counters by reason and cell, plus queue/in-flight gauges. Every
	// reason is emitted even at zero so rate() starts from a defined
	// origin.
	if g.admit != nil {
		rows := g.admit.stats()
		fmt.Fprintf(&sb, "# HELP gpufaas_requests_shed_total Invocations rejected by admission control.\n# TYPE gpufaas_requests_shed_total counter\n")
		for _, row := range rows {
			cell := strconv.Itoa(row.Cell)
			fmt.Fprintf(&sb, "gpufaas_requests_shed_total{reason=\"queue_full\",cell=%q} %d\n", cell, row.ShedQueueFull)
			fmt.Fprintf(&sb, "gpufaas_requests_shed_total{reason=\"deadline\",cell=%q} %d\n", cell, row.ShedDeadline)
			fmt.Fprintf(&sb, "gpufaas_requests_shed_total{reason=\"tenant_quota\",cell=%q} %d\n", cell, row.ShedTenant)
		}
		fmt.Fprintf(&sb, "# HELP gpufaas_admission_queue_depth Invocations waiting for an admission slot.\n# TYPE gpufaas_admission_queue_depth gauge\n")
		for _, row := range rows {
			fmt.Fprintf(&sb, "gpufaas_admission_queue_depth{cell=%q} %d\n", strconv.Itoa(row.Cell), row.Queued)
		}
		fmt.Fprintf(&sb, "# HELP gpufaas_admission_inflight Invocations holding an admission slot.\n# TYPE gpufaas_admission_inflight gauge\n")
		for _, row := range rows {
			fmt.Fprintf(&sb, "gpufaas_admission_inflight{cell=%q} %d\n", strconv.Itoa(row.Cell), row.Inflight)
		}
	}

	// Per-function invocation counters.
	fns := g.registry.List()
	fmt.Fprintf(&sb, "# HELP gpufaas_function_invocations_total Invocations routed per function.\n# TYPE gpufaas_function_invocations_total counter\n")
	for _, fn := range fns {
		fmt.Fprintf(&sb, "gpufaas_function_invocations_total{function=%q} %d\n",
			fn.Spec.Name, fn.Invocations)
	}

	// Per-GPU crash counters from each cell's fault accounting. Devices
	// that never failed emit nothing — a crash is an event, not fleet
	// state, and the fleet's device set churns under recovery.
	fmt.Fprintf(&sb, "# HELP gpufaas_gpu_failures_total Injected or observed GPU crash faults per device.\n# TYPE gpufaas_gpu_failures_total counter\n")
	type gpuFail struct {
		gpu string
		n   int64
	}
	var fails []gpuFail
	for i, c := range g.cells {
		prefix := ""
		if len(g.cells) > 1 {
			prefix = fmt.Sprintf("cell%d/", i)
		}
		for gpu, n := range c.GPUFailures() {
			fails = append(fails, gpuFail{gpu: prefix + gpu, n: n})
		}
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i].gpu < fails[j].gpu })
	for _, f := range fails {
		fmt.Fprintf(&sb, "gpufaas_gpu_failures_total{gpu=%q} %d\n", f.gpu, f.n)
	}

	// Per-GPU status (0 idle, 1 busy) from the datastore.
	fmt.Fprintf(&sb, "# HELP gpufaas_gpu_busy GPU busy flag per device.\n# TYPE gpufaas_gpu_busy gauge\n")
	kvs := g.store.List("gpu/")
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	for _, kv := range kvs {
		id := strings.TrimSuffix(strings.TrimPrefix(kv.Key, "gpu/"), "/status")
		v := 0
		if string(kv.Value) == "busy" {
			v = 1
		}
		fmt.Fprintf(&sb, "gpufaas_gpu_busy{gpu=%q} %d\n", id, v)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}
