package faas

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handlePromMetrics serves the cluster and gateway counters in the
// Prometheus text exposition format at /metrics, which is how OpenFaaS
// exposes its gateway metrics in production.
func (g *Gateway) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	snap := g.cluster.Snapshot()
	var sb strings.Builder

	counter := func(name, help string, value float64, labels string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		if labels != "" {
			fmt.Fprintf(&sb, "%s{%s} %g\n", name, labels, value)
		} else {
			fmt.Fprintf(&sb, "%s %g\n", name, value)
		}
	}
	counter("gpufaas_requests_total", "Completed inference requests.", float64(snap.Requests), "")
	counter("gpufaas_requests_failed_total", "Requests rejected (quota, unknown model).", float64(snap.Failed), "")
	counter("gpufaas_avg_latency_seconds", "Mean end-to-end function latency.", snap.AvgLatencySec, "")
	counter("gpufaas_p99_latency_seconds", "99th percentile function latency.", snap.P99LatencySec, "")
	counter("gpufaas_cache_miss_ratio", "Model cache miss ratio.", snap.MissRatio, "")
	counter("gpufaas_false_miss_ratio", "False-miss ratio (miss while cached elsewhere).", snap.FalseMissRatio, "")
	counter("gpufaas_sm_utilization", "Mean GPU SM utilization.", snap.SMUtilization, "")
	counter("gpufaas_scheduler_queue_moves_total", "Requests parked on busy GPUs' local queues.", float64(snap.LocalQueueMoves), "")
	counter("gpufaas_scheduler_o3_dispatches_total", "Out-of-order dispatches.", float64(snap.O3Dispatches), "")

	// Per-function invocation counters.
	fns := g.registry.List()
	fmt.Fprintf(&sb, "# HELP gpufaas_function_invocations_total Invocations routed per function.\n# TYPE gpufaas_function_invocations_total counter\n")
	for _, fn := range fns {
		fmt.Fprintf(&sb, "gpufaas_function_invocations_total{function=%q} %d\n",
			fn.Spec.Name, fn.Invocations)
	}

	// Per-GPU status (0 idle, 1 busy) from the datastore.
	fmt.Fprintf(&sb, "# HELP gpufaas_gpu_busy GPU busy flag per device.\n# TYPE gpufaas_gpu_busy gauge\n")
	kvs := g.store.List("gpu/")
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	for _, kv := range kvs {
		id := strings.TrimSuffix(strings.TrimPrefix(kv.Key, "gpu/"), "/status")
		v := 0
		if string(kv.Value) == "busy" {
			v = 1
		}
		fmt.Fprintf(&sb, "gpufaas_gpu_busy{gpu=%q} %d\n", id, v)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}
