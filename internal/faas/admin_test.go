package faas

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpufaas/internal/autoscale"
	"gpufaas/internal/cluster"
)

// TestAdminClusterScale drives the elastic-membership admin endpoint:
// grow the live fleet, observe the breakdown, shrink it back.
func TestAdminClusterScale(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	var ords map[string]int
	get := func() (counts autoscale.Size, gpus []string) {
		res, err := http.Get(srv.URL + "/system/scale")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var body struct {
			Counts autoscale.Size `json:"counts"`
			GPUs   []string       `json:"gpus"`
			Ords   map[string]int `json:"ords"`
		}
		if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		ords = body.Ords
		return body.Counts, body.GPUs
	}
	counts, gpus := get()
	if counts.Active != 12 || len(gpus) != 12 {
		t.Fatalf("initial fleet = %+v (%d GPUs)", counts, len(gpus))
	}
	if ords["bound"] != 12 || ords["live"] != 12 || ords["dead"] != 0 {
		t.Fatalf("initial ords = %v", ords)
	}

	post := func(target int, wantStatus int) map[string]json.RawMessage {
		payload, _ := json.Marshal(map[string]any{"target": target})
		res, err := http.Post(srv.URL+"/system/scale", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != wantStatus {
			t.Fatalf("scale to %d: status = %d, want %d", target, res.StatusCode, wantStatus)
		}
		var out map[string]json.RawMessage
		_ = json.NewDecoder(res.Body).Decode(&out)
		return out
	}
	out := post(14, http.StatusAccepted)
	var added []string
	_ = json.Unmarshal(out["added"], &added)
	if len(added) != 2 || !strings.HasPrefix(added[0], "elastic/") {
		t.Fatalf("added = %v", added)
	}
	counts, gpus = get()
	if counts.Active != 14 || len(gpus) != 14 {
		t.Fatalf("after grow: %+v (%d GPUs)", counts, len(gpus))
	}

	out = post(12, http.StatusAccepted)
	var removed []string
	_ = json.Unmarshal(out["removed"], &removed)
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	// Idle GPUs drain instantly; the fleet shrinks synchronously here.
	counts, _ = get()
	if counts.Active != 12 || counts.Draining != 0 {
		t.Fatalf("after shrink: %+v", counts)
	}
	// Ordinals are never reused: the churn left two dead ordinals — the
	// dead-ordinal pressure signal behind the ROADMAP's compaction item.
	if ords["bound"] != 14 || ords["live"] != 12 || ords["dead"] != 2 {
		t.Fatalf("ords after churn = %v", ords)
	}
	post(0, http.StatusBadRequest)

	// Autoscaler endpoints 404 without one attached.
	res, _ := http.Get(srv.URL + "/system/autoscaler")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("autoscaler status without autoscaler = %d", res.StatusCode)
	}
	res.Body.Close()
}

// TestAdminClusterScaleClasses: a gateway built with a heterogeneous
// fleet reports the per-class breakdown on /system/scale.
func TestAdminClusterScaleClasses(t *testing.T) {
	g, err := NewGateway(GatewayConfig{
		Policy: "LALBO3",
		Fleet: cluster.FleetSpec{
			{Type: "t4", Count: 2, CostPerSecond: 0.20},
			{Type: "rtx2080", Count: 1, CostPerSecond: 0.60},
		},
		TimeScale:     0.001,
		InvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/system/scale")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body struct {
		Counts  autoscale.Size        `json:"counts"`
		Classes []cluster.ClassStatus `json:"classes"`
		GPUs    []string              `json:"gpus"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Counts.Active != 3 || len(body.GPUs) != 3 {
		t.Fatalf("fleet = %+v (%d GPUs)", body.Counts, len(body.GPUs))
	}
	if len(body.Classes) != 2 {
		t.Fatalf("classes = %+v", body.Classes)
	}
	if body.Classes[0].Class != "t4" || body.Classes[0].Active != 2 || body.Classes[0].CostPerSecond != 0.20 {
		t.Errorf("t4 class = %+v", body.Classes[0])
	}
	if body.Classes[1].Class != "rtx2080" || body.Classes[1].Active != 1 {
		t.Errorf("rtx2080 class = %+v", body.Classes[1])
	}
}

// TestAdminAutoscalerEndpoint covers status + toggle on a gateway with
// an attached autoscaler.
func TestAdminAutoscalerEndpoint(t *testing.T) {
	pol, err := autoscale.NewTargetUtilization(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(GatewayConfig{
		Policy:        "LALBO3",
		TimeScale:     0.001,
		InvokeTimeout: 10 * time.Second,
		Autoscale: &autoscale.Config{
			Policy:   pol,
			Interval: time.Hour, // no ticks during the test
			MinGPUs:  2,
			MaxGPUs:  16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/system/autoscaler")
	if err != nil {
		t.Fatal(err)
	}
	var st autoscale.Status
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !st.Enabled || st.MinGPUs != 2 || st.MaxGPUs != 16 || st.Policy == "" {
		t.Fatalf("status = %+v", st)
	}

	toggle := func(on bool) autoscale.Status {
		payload, _ := json.Marshal(map[string]bool{"enabled": on})
		res, err := http.Post(srv.URL+"/system/autoscaler", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusAccepted {
			t.Fatalf("toggle status = %d", res.StatusCode)
		}
		var st autoscale.Status
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := toggle(false); st.Enabled {
		t.Error("autoscaler still enabled after pause")
	}
	if st := toggle(true); !st.Enabled {
		t.Error("autoscaler still paused after resume")
	}

	// Malformed toggle.
	res, _ = http.Post(srv.URL+"/system/autoscaler", "application/json", strings.NewReader("{}"))
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing enabled: status = %d", res.StatusCode)
	}
	res.Body.Close()
}

// TestDecommissionClearsDatastoreStatus: a GPU that served work has a
// gpu/<id>/status key in the datastore; decommissioning it must delete
// the key, or /system/gpus lists phantom idle GPUs forever.
func TestDecommissionClearsDatastoreStatus(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "cls", GPUEnabled: true, Model: "resnet18", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("cls", InvokeRequest{}); err != nil {
		t.Fatal(err)
	}
	// The serving GPU reported busy/idle transitions into the store.
	served := ""
	for _, kv := range g.Store().List("gpu/") {
		served = strings.TrimSuffix(strings.TrimPrefix(kv.Key, "gpu/"), "/status")
	}
	if served == "" {
		t.Fatal("no GPU status key after an invocation")
	}
	if err := g.Cluster().DecommissionGPU(served, true); err != nil {
		t.Fatal(err)
	}
	// The invocation completed before the decommission, so the GPU was
	// quiescent and left synchronously — its status key must be gone.
	for _, kv := range g.Store().List("gpu/") {
		if strings.Contains(kv.Key, served) {
			t.Errorf("datastore still holds %s after decommission", kv.Key)
		}
	}
}

// TestBusyDrainClearsDatastoreStatus covers the asynchronous drain
// path: decommissioning a GPU while it serves a request must, once the
// request finishes and the drain completes, leave no status key behind
// (the final idle report is forwarded before removal, and GPURemoved is
// the sink's last event).
func TestBusyDrainClearsDatastoreStatus(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "cls2", GPUEnabled: true, Model: "vgg19", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Invoke("cls2", InvokeRequest{})
		done <- err
	}()
	// Wait until some GPU reports busy, then drain it mid-request.
	var victim string
	deadline := time.Now().Add(5 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatal("no GPU went busy")
		}
		for _, kv := range g.Store().List("gpu/") {
			if string(kv.Value) == "busy" {
				victim = strings.TrimSuffix(strings.TrimPrefix(kv.Key, "gpu/"), "/status")
			}
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.Cluster().DecommissionGPU(victim, true); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The drain completes on the completion callback; poll briefly.
	deadline = time.Now().Add(5 * time.Second)
	for {
		stale := false
		for _, kv := range g.Store().List("gpu/") {
			if strings.Contains(kv.Key, victim) {
				stale = true
			}
		}
		member := false
		for _, id := range g.Cluster().GPUIDs() {
			if id == victim {
				member = true
			}
		}
		if !stale && !member {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained GPU %s: still member=%v, datastore key stale=%v", victim, member, stale)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchdogDeterministicMetrics pins the satellite fix: under a
// simulated clock the watchdog's metric records carry virtual
// timestamps and the corrected "latencyMs" key.
func TestWatchdogDeterministicMetrics(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "echo-fn", Handler: HandlerEcho}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("echo-fn", InvokeRequest{Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	kvs := g.Store().List("metrics/invocations/echo-fn/")
	if len(kvs) != 1 {
		t.Fatalf("metric records = %d", len(kvs))
	}
	var rec map[string]any
	if err := json.Unmarshal(kvs[0].Value, &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec["latencyMs"]; !ok {
		t.Errorf("record lacks latencyMs (typo regression): %v", rec)
	}
	if _, ok := rec["latateMs"]; ok {
		t.Error("record still carries the latateMs typo key")
	}
	if _, ok := rec["wallMs"]; !ok {
		t.Errorf("record lacks wallMs: %v", rec)
	}
}
