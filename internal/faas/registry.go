// Package faas implements the OpenFaaS-like platform of Figure 1/2: the
// Gateway (HTTP CRUD + invocation routing), the function Registry,
// in-process Containers each running a Watchdog, and the Datastore sink
// that records GPU status and invocation metrics.
//
// GPU-enabled functions carry the paper's "GPU-enable flag in the
// Dockerfile" (§III-A): the Gateway detects it and replaces the function's
// model-loading/inference interface with one that redirects to the GPU
// Managers through the Scheduler — the function code itself is unchanged.
package faas

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FunctionSpec is the deployment descriptor a user registers (the
// OpenFaaS function spec plus the paper's GPU flag).
type FunctionSpec struct {
	// Name is the function's route: POST /function/<Name>.
	Name string `json:"name"`
	// Image is the container image reference (informational in the
	// in-process runtime).
	Image string `json:"image,omitempty"`
	// Handler selects the function body: "inference" (default for GPU
	// functions) or "echo".
	Handler string `json:"handler,omitempty"`
	// GPUEnabled is the Dockerfile GPU-enable flag (§III-A). When set,
	// model load/predict calls are redirected to the GPU Manager.
	GPUEnabled bool `json:"gpuEnabled"`
	// Model names the inference model the function uses (must exist in
	// the cluster's zoo for GPU functions).
	Model string `json:"model,omitempty"`
	// BatchSize is the inference batch size (default 32).
	BatchSize int `json:"batchSize,omitempty"`
	// Tenant identifies the owner for multi-tenant quota enforcement.
	Tenant string `json:"tenant,omitempty"`
	// Replicas is the desired container count (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Env is passed to the handler.
	Env map[string]string `json:"env,omitempty"`
}

// Validate normalizes and checks the spec.
func (s *FunctionSpec) Validate() error {
	if s.Name == "" {
		return errors.New("faas: function name required")
	}
	if strings.ContainsAny(s.Name, "/ \t\n") {
		return fmt.Errorf("faas: invalid function name %q", s.Name)
	}
	if s.Handler == "" {
		if s.GPUEnabled {
			s.Handler = HandlerInference
		} else {
			s.Handler = HandlerEcho
		}
	}
	switch s.Handler {
	case HandlerInference, HandlerEcho:
	default:
		return fmt.Errorf("faas: unknown handler %q", s.Handler)
	}
	if s.Handler == HandlerInference && s.Model == "" {
		return errors.New("faas: inference function requires a model")
	}
	if s.BatchSize == 0 {
		s.BatchSize = 32
	}
	if s.BatchSize < 0 {
		return fmt.Errorf("faas: negative batch size %d", s.BatchSize)
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 0 {
		return fmt.Errorf("faas: negative replicas %d", s.Replicas)
	}
	return nil
}

// Handler names.
const (
	HandlerInference = "inference"
	HandlerEcho      = "echo"
)

// Container is one running replica of a function, hosting a Watchdog.
type Container struct {
	ID       string
	Function string
	Replica  int
}

// Function is a deployed function: its spec plus running containers.
type Function struct {
	Spec       FunctionSpec
	Containers []Container
	// Invocations counts requests routed to this function. On the
	// registry's stored entry the gateway bumps it with sync/atomic off
	// the invocation hot path; readers go through Get/List, which
	// snapshot it atomically.
	Invocations int64
}

// Registry stores deployed functions; it is the Gateway's CRUD backend.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Function
	nextID int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Function)}
}

// Errors reported by the registry.
var (
	ErrExists   = errors.New("faas: function already deployed")
	ErrNotFound = errors.New("faas: function not found")
)

func (r *Registry) containersFor(spec FunctionSpec) []Container {
	cs := make([]Container, spec.Replicas)
	for i := range cs {
		r.nextID++
		cs[i] = Container{
			ID:       fmt.Sprintf("%s-%d", spec.Name, r.nextID),
			Function: spec.Name,
			Replica:  i,
		}
	}
	return cs
}

// Deploy registers a new function and starts its containers.
func (r *Registry) Deploy(spec FunctionSpec) (*Function, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.Name)
	}
	fn := &Function{Spec: spec, Containers: r.containersFor(spec)}
	r.byName[spec.Name] = fn
	return fn, nil
}

// Update replaces a function's spec (rolling redeploy).
func (r *Registry) Update(spec FunctionSpec) (*Function, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.byName[spec.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, spec.Name)
	}
	fn := &Function{Spec: spec, Containers: r.containersFor(spec), Invocations: old.Invocations}
	r.byName[spec.Name] = fn
	return fn, nil
}

// Remove deletes a function.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(r.byName, name)
	return nil
}

// snapshot copies a stored function field by field; the invocation
// counter is read atomically because Invoke bumps it without the
// registry lock.
func snapshot(fn *Function) *Function {
	return &Function{
		Spec:        fn.Spec,
		Containers:  append([]Container(nil), fn.Containers...),
		Invocations: atomic.LoadInt64(&fn.Invocations),
	}
}

// Get fetches a function by name.
func (r *Registry) Get(name string) (*Function, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return snapshot(fn), nil
}

// List returns all functions sorted by name.
func (r *Registry) List() []*Function {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Function, 0, len(r.byName))
	for _, fn := range r.byName {
		out = append(out, snapshot(fn))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Scale sets the replica count of a deployed function (the Datastore-
// triggered scaling action of Fig. 1).
func (r *Registry) Scale(name string, replicas int) (*Function, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("faas: non-positive replicas %d", replicas)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fn, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	fn.Spec.Replicas = replicas
	fn.Containers = r.containersFor(fn.Spec)
	return snapshot(fn), nil
}
