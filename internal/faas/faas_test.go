package faas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpufaas/internal/cluster"
	"gpufaas/internal/models"
)

func testGateway(t *testing.T) *Gateway {
	t.Helper()
	g, err := NewGateway(GatewayConfig{
		Policy:        "LALBO3",
		TimeScale:     0.001, // Table I seconds -> milliseconds
		InvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpecValidate(t *testing.T) {
	bad := []FunctionSpec{
		{},
		{Name: "has space"},
		{Name: "x", Handler: "bogus"},
		{Name: "x", Handler: HandlerInference},
		{Name: "x", Model: "m", Handler: HandlerInference, BatchSize: -1},
		{Name: "x", Replicas: -2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail: %+v", i, s)
		}
	}
	good := FunctionSpec{Name: "classify", GPUEnabled: true, Model: "resnet18"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Handler != HandlerInference || good.BatchSize != 32 || good.Replicas != 1 {
		t.Errorf("defaults not applied: %+v", good)
	}
	plain := FunctionSpec{Name: "echoer"}
	if err := plain.Validate(); err != nil || plain.Handler != HandlerEcho {
		t.Errorf("non-GPU default handler: %+v (%v)", plain, err)
	}
}

func TestRegistryCRUD(t *testing.T) {
	r := NewRegistry()
	spec := FunctionSpec{Name: "f1", GPUEnabled: true, Model: "resnet18", Replicas: 2}
	fn, err := r.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fn.Containers) != 2 {
		t.Errorf("containers = %d", len(fn.Containers))
	}
	if _, err := r.Deploy(spec); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate deploy: %v", err)
	}
	got, err := r.Get("f1")
	if err != nil || got.Spec.Model != "resnet18" {
		t.Errorf("Get = %+v (%v)", got, err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing: %v", err)
	}
	spec.Model = "vgg19"
	if _, err := r.Update(spec); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Get("f1")
	if got.Spec.Model != "vgg19" {
		t.Error("update lost")
	}
	if _, err := r.Update(FunctionSpec{Name: "ghost", Model: "m", Handler: HandlerInference}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: %v", err)
	}
	fn2, err := r.Scale("f1", 5)
	if err != nil || len(fn2.Containers) != 5 {
		t.Errorf("Scale = %+v (%v)", fn2, err)
	}
	if _, err := r.Scale("f1", 0); err == nil {
		t.Error("zero replicas should fail")
	}
	if _, err := r.Scale("ghost", 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("scale missing: %v", err)
	}
	if list := r.List(); len(list) != 1 || list[0].Spec.Name != "f1" {
		t.Errorf("List = %v", list)
	}
	if err := r.Remove("f1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("f1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestGatewayDeployValidatesModel(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "bad", GPUEnabled: true, Model: "no-such-model"}); err == nil {
		t.Fatal("unknown model should fail deploy")
	}
	if _, err := g.registry.Get("bad"); !errors.Is(err, ErrNotFound) {
		t.Error("failed deploy must roll back registration")
	}
}

func TestEndToEndInference(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "classify", GPUEnabled: true, Model: "resnet18", BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	resp, err := g.Invoke("classify", InvokeRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 8 {
		t.Fatalf("predictions = %d", len(resp.Predictions))
	}
	if resp.GPU == "" {
		t.Error("missing GPU assignment")
	}
	if resp.Hit {
		t.Error("first invocation must be a cold start (miss)")
	}
	if resp.LoadTime <= 0 || resp.InferTime <= 0 {
		t.Errorf("timings = %+v", resp)
	}
	// Second invocation of the same model: warm (cache hit), no load.
	resp2, err := g.Invoke("classify", InvokeRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Hit || resp2.LoadTime != 0 {
		t.Errorf("second invocation should hit: %+v", resp2)
	}
	// Datastore has the latency records and GPU status.
	if recs := g.Store().List("latency/classify/"); len(recs) != 2 {
		t.Errorf("latency records = %d", len(recs))
	}
	if gpus := g.Store().List("gpu/"); len(gpus) == 0 {
		t.Error("no GPU status recorded")
	}
}

func TestEchoFunction(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "echoer"}); err != nil {
		t.Fatal(err)
	}
	resp, err := g.Invoke("echoer", InvokeRequest{Body: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hello" {
		t.Errorf("echo = %q", resp.Body)
	}
	if _, err := g.Invoke("ghost", InvokeRequest{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("invoke missing: %v", err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	g := testGateway(t)
	for i, model := range []string{"resnet18", "vgg19", "alexnet"} {
		name := fmt.Sprintf("fn%d", i)
		if _, err := g.Deploy(FunctionSpec{Name: name, GPUEnabled: true, Model: model, BatchSize: 4}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("fn%d", i%3)
			if _, err := g.Invoke(name, InvokeRequest{}); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := g.Cluster().Completed(); got != 30 {
		t.Errorf("completed = %d", got)
	}
}

func TestHTTPAPI(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// healthz
	res, err := http.Get(srv.URL + "/healthz")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", res.Status, err)
	}
	res.Body.Close()

	// deploy
	spec := FunctionSpec{Name: "classify", GPUEnabled: true, Model: "squeezenet1.1", BatchSize: 4}
	body, _ := json.Marshal(spec)
	res, err = http.Post(srv.URL+"/system/functions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("deploy status = %d", res.StatusCode)
	}
	res.Body.Close()

	// duplicate deploy -> 409
	res, _ = http.Post(srv.URL+"/system/functions", "application/json", bytes.NewReader(body))
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("dup deploy status = %d", res.StatusCode)
	}
	res.Body.Close()

	// list
	res, err = http.Get(srv.URL + "/system/functions")
	if err != nil {
		t.Fatal(err)
	}
	var fns []Function
	if err := json.NewDecoder(res.Body).Decode(&fns); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(fns) != 1 || fns[0].Spec.Name != "classify" {
		t.Fatalf("list = %+v", fns)
	}

	// invoke
	res, err = http.Post(srv.URL+"/function/classify", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	var iv InvokeResponse
	if err := json.NewDecoder(res.Body).Decode(&iv); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 || len(iv.Predictions) != 4 {
		t.Fatalf("invoke = %d, %+v", res.StatusCode, iv)
	}

	// invoke missing -> 404
	res, _ = http.Post(srv.URL+"/function/ghost", "application/json", nil)
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("missing invoke = %d", res.StatusCode)
	}
	res.Body.Close()

	// scale
	res, err = http.Post(srv.URL+"/system/scale/classify", "application/json",
		bytes.NewReader([]byte(`{"replicas":3}`)))
	if err != nil || res.StatusCode != http.StatusAccepted {
		t.Fatalf("scale: %v %v", res.StatusCode, err)
	}
	res.Body.Close()

	// describe
	res, err = http.Get(srv.URL + "/system/functions/classify")
	if err != nil {
		t.Fatal(err)
	}
	var fn Function
	if err := json.NewDecoder(res.Body).Decode(&fn); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(fn.Containers) != 3 {
		t.Fatalf("containers after scale = %d", len(fn.Containers))
	}

	// metrics
	res, err = http.Get(srv.URL + "/system/metrics")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("metrics: %v %v", res, err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(res.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	// gpus
	res, err = http.Get(srv.URL + "/system/gpus")
	if err != nil || res.StatusCode != 200 {
		t.Fatalf("gpus: %v %v", res, err)
	}
	res.Body.Close()

	// delete
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/system/functions/classify", nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil || res.StatusCode != http.StatusAccepted {
		t.Fatalf("delete: %v %v", res.StatusCode, err)
	}
	res.Body.Close()
	res, _ = http.Get(srv.URL + "/system/functions/classify")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", res.StatusCode)
	}
	res.Body.Close()
}

func TestScaledProfiles(t *testing.T) {
	g := testGateway(t)
	zoo := g.Cluster().Zoo()
	prof := ScaledProfiles(zoo, "rtx2080", 0.001)
	p, ok := prof.Get("rtx2080", "resnet18")
	if !ok {
		t.Fatal("missing profile")
	}
	if p.LoadTime < 2*time.Millisecond || p.LoadTime > 3*time.Millisecond {
		t.Errorf("scaled load = %v", p.LoadTime)
	}
	// scale 1 returns the table store unchanged
	p1, _ := ScaledProfiles(zoo, "rtx2080", 1).Get("rtx2080", "resnet18")
	if p1.LoadTime != 2520*time.Millisecond {
		t.Errorf("unit scale load = %v", p1.LoadTime)
	}
}

func TestFleetProfiles(t *testing.T) {
	zoo := models.Default()
	fleet := cluster.FleetSpec{{Type: "t4", Count: 1}, {Type: "rtx2080", Count: 1}}
	prof, err := FleetProfiles(zoo, fleet, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	fast, ok := prof.Get("rtx2080", "resnet18")
	if !ok {
		t.Fatal("missing rtx2080 profile")
	}
	slow, ok := prof.Get("t4", "resnet18")
	if !ok {
		t.Fatal("missing t4 profile")
	}
	if slow.LoadTime <= fast.LoadTime {
		t.Errorf("t4 load %v not slower than rtx2080 %v", slow.LoadTime, fast.LoadTime)
	}
	if fast.LoadTime < 2*time.Millisecond || fast.LoadTime > 3*time.Millisecond {
		t.Errorf("scaled load = %v", fast.LoadTime)
	}
	if _, err := FleetProfiles(zoo, cluster.FleetSpec{{Type: "nope", Count: 1}}, 1); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestGatewayConfigErrors(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{Policy: "bogus"}); err == nil {
		t.Error("bogus policy should fail")
	}
	if _, err := NewGateway(GatewayConfig{TimeScale: -1}); err == nil {
		t.Error("negative time scale should fail")
	}
}

func TestDatastoreSinkNilStore(t *testing.T) {
	var s DatastoreSink
	s.GPUStatus("g0", true, 0) // must not panic
	s.Completion(Result{})
}
