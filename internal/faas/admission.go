package faas

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig bounds the live invocation path. With admission
// enabled the gateway holds at most MaxConcurrent invocations per cell
// in flight, queues at most QueueDepth more, and sheds the rest with
// 429 + Retry-After instead of letting the cluster queue (and p99) grow
// without bound. TenantRate adds per-tenant token buckets on top,
// reusing the paper's §VI per-tenant quota semantics at the front door.
type AdmissionConfig struct {
	// MaxConcurrent is the per-cell concurrent-invocation limit
	// (required, > 0). Sizing it at the cell's GPU count keeps the
	// in-cluster queue near zero, so served-request latency stays at
	// service time plus bounded admission wait.
	MaxConcurrent int
	// QueueDepth bounds how many admitted-but-waiting invocations a
	// cell may hold (0: no queue — shed as soon as the concurrency
	// limit is hit).
	QueueDepth int
	// MaxWait is the admission deadline: a request that cannot start
	// within MaxWait — estimated from the queue length and the EWMA
	// service time, or discovered by actually waiting — is shed with
	// reason "deadline". Default 100ms.
	MaxWait time.Duration
	// TenantRate enables per-tenant token buckets: sustained
	// invocations per second per tenant (0 disables). The tenant is the
	// X-Tenant header when present, else the function spec's Tenant
	// (the empty tenant shares one anonymous bucket).
	TenantRate float64
	// TenantBurst is the bucket capacity (default max(TenantRate, 1)).
	TenantBurst float64
}

func (c *AdmissionConfig) normalize() error {
	if c.MaxConcurrent <= 0 {
		return fmt.Errorf("faas: admission needs MaxConcurrent > 0, got %d", c.MaxConcurrent)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("faas: negative admission queue depth %d", c.QueueDepth)
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("faas: negative admission max wait %v", c.MaxWait)
	}
	if c.MaxWait == 0 {
		c.MaxWait = 100 * time.Millisecond
	}
	if c.TenantRate < 0 {
		return fmt.Errorf("faas: negative tenant rate %g", c.TenantRate)
	}
	if c.TenantBurst == 0 {
		c.TenantBurst = c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.TenantBurst < 1 {
		return fmt.Errorf("faas: tenant burst %g < 1 can never admit", c.TenantBurst)
	}
	return nil
}

// Shed reasons, indexed into the per-cell counters.
const (
	shedQueueFull = iota
	shedDeadline
	shedTenant
	nShedReasons
)

var shedReasonNames = [nShedReasons]string{"queue_full", "deadline", "tenant_quota"}

// ShedError reports a load-shedding rejection. The HTTP layer maps it
// to 429 Too Many Requests with a Retry-After header.
type ShedError struct {
	// Reason is "queue_full", "deadline" or "tenant_quota".
	Reason string
	// RetryAfter estimates when retrying could succeed (queue drain
	// time, or the tenant bucket's next-token time).
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return "faas: request shed (" + e.Reason + "), retry after " + e.RetryAfter.String()
}

// admission is the gateway's load shedder: one bounded queue +
// concurrency limit per cell, plus the shared tenant buckets.
type admission struct {
	cfg     AdmissionConfig
	cells   []*cellAdmission
	tenants sync.Map // tenant name -> *tokenBucket
}

// cellAdmission is one cell's admission state. Everything on the
// admit/release fast path is a channel op or an atomic: concurrent
// invocations never take a lock here.
type cellAdmission struct {
	cfg    *AdmissionConfig
	slots  chan struct{} // buffered MaxConcurrent; holding a token = in flight
	queued atomic.Int64  // waiters currently parked in admit
	shed   [nShedReasons]atomic.Int64
	// ewmaNs tracks service time (admit -> release) as an EWMA in
	// nanoseconds; the deadline estimator uses it to shed requests that
	// cannot start in time without making them wait to find out.
	ewmaNs atomic.Int64
}

func newAdmission(cfg AdmissionConfig, cells int) (*admission, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	a := &admission{cfg: cfg, cells: make([]*cellAdmission, cells)}
	for i := range a.cells {
		a.cells[i] = &cellAdmission{
			cfg:   &a.cfg,
			slots: make(chan struct{}, cfg.MaxConcurrent),
		}
	}
	return a, nil
}

// admit gates one invocation on cell's queue and the tenant's bucket.
// On success the caller owns a concurrency slot and must call
// release(start) when the invocation finishes. The fast path (token
// available, slot free) performs no allocation and takes no lock.
func (a *admission) admit(cell int, tenant string) (*cellAdmission, error) {
	c := a.cells[cell]
	if a.cfg.TenantRate > 0 {
		if wait := a.takeToken(tenant); wait > 0 {
			c.shed[shedTenant].Add(1)
			return nil, &ShedError{Reason: shedReasonNames[shedTenant], RetryAfter: wait}
		}
	}
	select {
	case c.slots <- struct{}{}:
		return c, nil
	default:
	}
	// Concurrency limit hit: queue if there is room AND the wait
	// estimate says a slot can free up before the deadline.
	n := c.queued.Add(1)
	if int(n) > a.cfg.QueueDepth {
		c.queued.Add(-1)
		c.shed[shedQueueFull].Add(1)
		return nil, &ShedError{Reason: shedReasonNames[shedQueueFull], RetryAfter: c.drainEstimate(n)}
	}
	if est := c.startEstimate(n); est > a.cfg.MaxWait {
		c.queued.Add(-1)
		c.shed[shedDeadline].Add(1)
		return nil, &ShedError{Reason: shedReasonNames[shedDeadline], RetryAfter: est}
	}
	t := getTimer(a.cfg.MaxWait)
	select {
	case c.slots <- struct{}{}:
		c.queued.Add(-1)
		putTimer(t)
		return c, nil
	case <-t.C:
		c.queued.Add(-1)
		c.shed[shedDeadline].Add(1)
		putTimer(t) // fired and drained
		return nil, &ShedError{Reason: shedReasonNames[shedDeadline], RetryAfter: c.drainEstimate(n)}
	}
}

// release returns the concurrency slot and folds the observed service
// time (admission to completion) into the EWMA the deadline estimator
// reads.
func (c *cellAdmission) release(start time.Time) {
	obs := int64(time.Since(start))
	prev := c.ewmaNs.Load()
	next := obs
	if prev > 0 {
		// alpha = 1/8: smooth enough to ride out load-time spikes,
		// fresh enough to track a workload shift within ~10 requests.
		next = prev + (obs-prev)/8
	}
	c.ewmaNs.Store(next)
	<-c.slots
}

// startEstimate predicts how long the n-th queued request waits for a
// slot: slots free every ewma/MaxConcurrent on average. A cold EWMA
// (no completions yet) estimates zero — the request queues and the
// timer makes the deadline call.
func (c *cellAdmission) startEstimate(n int64) time.Duration {
	ewma := c.ewmaNs.Load()
	return time.Duration(ewma * n / int64(c.cfg.MaxConcurrent))
}

// drainEstimate is the Retry-After hint: time for the current queue to
// drain (at least 1ms so clients never busy-loop).
func (c *cellAdmission) drainEstimate(n int64) time.Duration {
	d := c.startEstimate(n)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// takeToken draws one token from the tenant's bucket; a positive
// return is the shed's Retry-After (time until a token accrues).
func (a *admission) takeToken(tenant string) time.Duration {
	v, ok := a.tenants.Load(tenant)
	if !ok {
		v, _ = a.tenants.LoadOrStore(tenant, &tokenBucket{tokens: a.cfg.TenantBurst, last: time.Now()})
	}
	return v.(*tokenBucket).take(a.cfg.TenantRate, a.cfg.TenantBurst)
}

// tokenBucket is a classic lazily-refilled token bucket. The lock is
// per tenant, so tenants never contend with each other.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *tokenBucket) take(rate, burst float64) time.Duration {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// AdmissionCellStats is one cell's admission snapshot.
type AdmissionCellStats struct {
	Cell          int   `json:"cell"`
	Inflight      int   `json:"inflight"`
	Queued        int64 `json:"queued"`
	ShedQueueFull int64 `json:"shedQueueFull"`
	ShedDeadline  int64 `json:"shedDeadline"`
	ShedTenant    int64 `json:"shedTenant"`
	// EWMAServiceMs is the shedder's current service-time estimate.
	EWMAServiceMs float64 `json:"ewmaServiceMs"`
}

// ShedTotal sums the per-reason shed counters.
func (s AdmissionCellStats) ShedTotal() int64 {
	return s.ShedQueueFull + s.ShedDeadline + s.ShedTenant
}

func (a *admission) stats() []AdmissionCellStats {
	out := make([]AdmissionCellStats, len(a.cells))
	for i, c := range a.cells {
		out[i] = AdmissionCellStats{
			Cell:          i,
			Inflight:      len(c.slots),
			Queued:        c.queued.Load(),
			ShedQueueFull: c.shed[shedQueueFull].Load(),
			ShedDeadline:  c.shed[shedDeadline].Load(),
			ShedTenant:    c.shed[shedTenant].Load(),
			EWMAServiceMs: float64(c.ewmaNs.Load()) / 1e6,
		}
	}
	return out
}

// ---- shared timer pool ----
//
// Both the admission queue and the inference client wait with a
// deadline on their hot paths; pooling the timers keeps those paths
// allocation-free in steady state.

var timerPool sync.Pool

// getTimer returns a running timer for d. The caller must return it
// with putTimer only once it is stopped-and-drained or has fired (and
// its channel been received from).
func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer recycles a timer whose channel is known empty. stopTimer is
// the receive-path helper that establishes that invariant.
func putTimer(t *time.Timer) { timerPool.Put(t) }

// stopTimer stops t and drains a concurrently-delivered fire so the
// timer is safe to pool.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	putTimer(t)
}
