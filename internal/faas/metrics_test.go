package faas

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// expoFamily is one parsed metric family from the /metrics exposition.
type expoFamily struct {
	typ     string
	samples map[string]float64 // "name{labels}" -> value
}

// parseExposition is a minimal Prometheus text-format parser: enough to
// assert on TYPE declarations and sample values, and to reject lines
// that belong to no declared family.
func parseExposition(t *testing.T, text string) map[string]expoFamily {
	t.Helper()
	fams := make(map[string]expoFamily)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			fams[parts[2]] = expoFamily{typ: parts[3], samples: make(map[string]float64)}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// Histogram samples attach to their family's base name.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		fam, ok := fams[name]
		if !ok {
			if fam, ok = fams[base]; !ok {
				t.Fatalf("sample %q precedes its TYPE declaration", line)
			}
			fams[base] = fam
		}
		fam.samples[key] = val
	}
	return fams
}

// scrape GETs /metrics and parses it.
func scrape(t *testing.T, srv *httptest.Server) map[string]expoFamily {
	t.Helper()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// TestPrometheusMetricsEndpoint pins the exposition contract on a
// single-cell gateway: every `_total` family is TYPE counter (scrapers
// rate() only counters — the old all-gauge exposition broke that),
// ratios/utilization stay gauges, and request latency is a true
// histogram whose count matches the completed-request counter.
func TestPrometheusMetricsEndpoint(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "mfn", GPUEnabled: true, Model: "resnet50", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("mfn", InvokeRequest{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	fams := scrape(t, srv)

	for fam, typ := range map[string]string{
		"gpufaas_requests_total":                "counter",
		"gpufaas_requests_failed_total":         "counter",
		"gpufaas_scheduler_queue_moves_total":   "counter",
		"gpufaas_scheduler_o3_dispatches_total": "counter",
		"gpufaas_function_invocations_total":    "counter",
		"gpufaas_cache_miss_ratio":              "gauge",
		"gpufaas_false_miss_ratio":              "gauge",
		"gpufaas_sm_utilization":                "gauge",
		"gpufaas_gpu_busy":                      "gauge",
		"gpufaas_request_duration_seconds":      "histogram",
	} {
		got, ok := fams[fam]
		if !ok {
			t.Errorf("family %s missing", fam)
			continue
		}
		if got.typ != typ {
			t.Errorf("%s: TYPE %s, want %s", fam, got.typ, typ)
		}
	}
	// The replaced pre-digested quantile gauges must be gone.
	for _, gone := range []string{"gpufaas_avg_latency_seconds", "gpufaas_p99_latency_seconds"} {
		if _, ok := fams[gone]; ok {
			t.Errorf("legacy gauge %s still exposed", gone)
		}
	}

	if v := fams["gpufaas_requests_total"].samples["gpufaas_requests_total"]; v != 1 {
		t.Errorf("gpufaas_requests_total = %g, want 1", v)
	}
	if v := fams["gpufaas_function_invocations_total"].samples[`gpufaas_function_invocations_total{function="mfn"}`]; v != 1 {
		t.Errorf("per-function invocation counter = %g, want 1", v)
	}

	hist := fams["gpufaas_request_duration_seconds"].samples
	if v := hist["gpufaas_request_duration_seconds_count"]; v != 1 {
		t.Errorf("histogram count = %g, want 1", v)
	}
	if v := hist["gpufaas_request_duration_seconds_sum"]; v <= 0 {
		t.Errorf("histogram sum = %g, want > 0", v)
	}
	// The +Inf bucket always equals the count, and buckets are
	// cumulative (monotone in le).
	if v := hist[`gpufaas_request_duration_seconds_bucket{le="+Inf"}`]; v != 1 {
		t.Errorf(`+Inf bucket = %g, want 1`, v)
	}
	var prev float64
	for _, ub := range latencyBuckets {
		key := fmt.Sprintf("gpufaas_request_duration_seconds_bucket{le=%q}", strconv.FormatFloat(ub, 'g', -1, 64))
		v, ok := hist[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %g < previous %g (not cumulative)", key, v, prev)
		}
		prev = v
	}

	// Wrong method rejected.
	res, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d", res.StatusCode)
	}
}

// TestPrometheusMetricsMultiCell pins the sharded exposition: the
// latency histogram carries one bucket set per cell (labelled
// cell="N"), the per-cell counts sum to the fleet-wide request
// counter, and fleet-level families appear exactly once.
func TestPrometheusMetricsMultiCell(t *testing.T) {
	g := testCellGateway(t, "hash")
	if _, err := g.Deploy(FunctionSpec{Name: "mfn", GPUEnabled: true, Model: "resnet50", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	const invocations = 8
	for i := 0; i < invocations; i++ {
		if _, err := g.Invoke("mfn", InvokeRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	fams := scrape(t, srv)

	if v := fams["gpufaas_requests_total"].samples["gpufaas_requests_total"]; v != invocations {
		t.Errorf("fleet gpufaas_requests_total = %g, want %d", v, invocations)
	}
	hist := fams["gpufaas_request_duration_seconds"]
	if hist.typ != "histogram" {
		t.Fatalf("duration TYPE = %s", hist.typ)
	}
	var total float64
	for cell := 0; cell < g.CellCount(); cell++ {
		key := fmt.Sprintf(`gpufaas_request_duration_seconds_count{cell="%d"}`, cell)
		v, ok := hist.samples[key]
		if !ok {
			t.Fatalf("no histogram for cell %d", cell)
		}
		total += v
	}
	if total != invocations {
		t.Errorf("per-cell histogram counts sum to %g, want %d", total, invocations)
	}
	if _, ok := hist.samples["gpufaas_request_duration_seconds_count"]; ok {
		t.Error("multi-cell exposition carries an unlabelled histogram")
	}
}

// TestPprofEndpoints pins the profiling surface on the gateway mux.
func TestPprofEndpoints(t *testing.T) {
	srv := httptest.NewServer(testGateway(t).Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/cmdline"} {
		res, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, res.StatusCode)
		}
	}
}
