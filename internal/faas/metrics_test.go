package faas

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPrometheusMetricsEndpoint(t *testing.T) {
	g := testGateway(t)
	if _, err := g.Deploy(FunctionSpec{Name: "mfn", GPUEnabled: true, Model: "resnet50", BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke("mfn", InvokeRequest{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"gpufaas_requests_total 1",
		"gpufaas_cache_miss_ratio 1",
		`gpufaas_function_invocations_total{function="mfn"} 1`,
		"gpufaas_gpu_busy{gpu=",
		"# TYPE gpufaas_avg_latency_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	// Wrong method rejected.
	res2, err := http.Post(srv.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d", res2.StatusCode)
	}
}
