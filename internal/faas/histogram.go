package faas

// A dependency-free Prometheus histogram. The repo carries no client
// library, so this implements exactly the slice of the exposition
// format the gateway needs: cumulative `le` buckets, `_sum`, `_count`,
// and a constant label set — enough for histogram_quantile() to
// recover any latency percentile server-side, which is what the old
// avg/p99 gauges could never offer (gauges of a mean can't be
// aggregated or re-quantiled across gateways).

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// latencyBuckets spans the live gateway's dynamic range: sub-millisecond
// time-scaled demo invocations up to the 240s tail of a real cold
// model load, roughly ×2.5 per step (the classic 1-2.5-5 decades).
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 60, 120, 240,
}

// promHistogram is a fixed-bucket cumulative histogram safe for
// concurrent observation (every request completion crosses it).
type promHistogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket, non-cumulative; cumulated at render
	sum    float64
	total  uint64
}

func newPromHistogram() *promHistogram {
	return &promHistogram{counts: make([]uint64, len(latencyBuckets))}
}

// Observe records one latency sample in seconds.
func (h *promHistogram) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// write renders the histogram's sample lines (no HELP/TYPE header —
// the caller emits that once for the metric family) with the given
// label set, e.g. `cell="0"`.
func (h *promHistogram) write(sb *strings.Builder, name, labels string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(sb, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	fmt.Fprintf(sb, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, total)
	if labels != "" {
		fmt.Fprintf(sb, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, sum, name, labels, total)
	} else {
		fmt.Fprintf(sb, "%s_sum %g\n%s_count %d\n", name, sum, name, total)
	}
}
