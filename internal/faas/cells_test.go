package faas

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpufaas/internal/autoscale"
)

// testCellGateway builds a live 2-cell gateway over the default 3x4
// testbed (cells get 2 and 1 nodes).
func testCellGateway(t *testing.T, router string) *Gateway {
	t.Helper()
	g, err := NewGateway(GatewayConfig{
		Policy:        "LALBO3",
		TimeScale:     0.001,
		InvokeTimeout: 10 * time.Second,
		Cells:         2,
		CellRouter:    router,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMultiCellGatewayConfig(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{Cells: -1}); err == nil {
		t.Error("negative cells should fail")
	}
	if _, err := NewGateway(GatewayConfig{Cells: 2, CellRouter: "bogus"}); err == nil {
		t.Error("bogus router should fail")
	}
	if _, err := NewGateway(GatewayConfig{Cells: 7}); err == nil {
		t.Error("sharding 3 nodes into 7 cells should fail")
	}
	pol, err := autoscale.NewTargetUtilization(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGateway(GatewayConfig{Cells: 2, Autoscale: &autoscale.Config{Policy: pol}}); err == nil {
		t.Error("multi-cell autoscaler should be rejected")
	}
}

func TestMultiCellGatewayTopology(t *testing.T) {
	g := testCellGateway(t, "hash")
	if g.CellCount() != 2 {
		t.Fatalf("cells = %d", g.CellCount())
	}
	// 3 nodes split 2/1 at 4 GPUs per node.
	if n0, n1 := len(g.Cell(0).GPUIDs()), len(g.Cell(1).GPUIDs()); n0 != 8 || n1 != 4 {
		t.Errorf("cell GPU counts = %d,%d, want 8,4", n0, n1)
	}
	if g.Cell(2) != nil || g.Cell(-1) != nil {
		t.Error("out-of-range cells must be nil")
	}
	if g.Cluster() != g.Cell(0) {
		t.Error("Cluster() must be cell 0")
	}
}

// TestMultiCellInvokeRoutes drives enough distinct functions through a
// leastload-routed 2-cell gateway that both cells receive work, and
// checks the admin surface reflects it.
func TestMultiCellInvokeRoutes(t *testing.T) {
	g := testCellGateway(t, "leastload")
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	for i := 0; i < 4; i++ {
		spec := FunctionSpec{
			Name:       fmt.Sprintf("cfn%d", i),
			GPUEnabled: true,
			Model:      "resnet18",
			BatchSize:  2,
		}
		if _, err := g.Deploy(spec); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Invoke(spec.Name, InvokeRequest{}); err != nil {
			t.Fatal(err)
		}
	}

	routed := g.infer.RoutedByCell()
	var total int64
	for _, n := range routed {
		total += n
	}
	if total != 4 {
		t.Fatalf("routed %v, want 4 total", routed)
	}
	if routed[0] == 0 || routed[1] == 0 {
		t.Errorf("leastload router starved a cell: %v", routed)
	}

	// GET /system/cells reflects the split.
	res, err := http.Get(srv.URL + "/system/cells")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body struct {
		Cells  int    `json:"cells"`
		Router string `json:"router"`
		Rows   []struct {
			Cell   int   `json:"cell"`
			GPUs   int   `json:"gpus"`
			Routed int64 `json:"routed"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Cells != 2 || body.Router != "leastload" || len(body.Rows) != 2 {
		t.Fatalf("cells payload = %+v", body)
	}
	if body.Rows[0].GPUs != 8 || body.Rows[1].GPUs != 4 {
		t.Errorf("per-cell GPUs = %+v", body.Rows)
	}
	if body.Rows[0].Routed+body.Rows[1].Routed != 4 {
		t.Errorf("routed counts = %+v", body.Rows)
	}

	// The per-cell admin selector addresses each cell; out-of-range is
	// a 400.
	for cell, want := range map[string]int{"0": 8, "1": 4} {
		res, err := http.Get(srv.URL + "/system/scale?cell=" + cell)
		if err != nil {
			t.Fatal(err)
		}
		var scale struct {
			GPUs []string `json:"gpus"`
		}
		err = json.NewDecoder(res.Body).Decode(&scale)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(scale.GPUs) != want {
			t.Errorf("cell %s lists %d GPUs, want %d", cell, len(scale.GPUs), want)
		}
	}
	res2, err := http.Get(srv.URL + "/system/metrics?cell=5")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range cell = %d, want 400", res2.StatusCode)
	}

	// GPU status keys are cell-prefixed, so devices stay distinguishable
	// fleet-wide.
	var sawCell0, sawCell1 bool
	for _, kv := range g.Store().List("gpu/") {
		if strings.HasPrefix(kv.Key, "gpu/cell0/") {
			sawCell0 = true
		}
		if strings.HasPrefix(kv.Key, "gpu/cell1/") {
			sawCell1 = true
		}
	}
	if !sawCell0 || !sawCell1 {
		t.Errorf("datastore lacks cell-prefixed GPU status keys (cell0=%v cell1=%v)", sawCell0, sawCell1)
	}

	// The merged Prometheus roll-up counts the whole fleet.
	res3, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := readAll(res3)
	if !strings.Contains(b, "gpufaas_requests_total 4") {
		t.Errorf("merged metrics missing fleet request count:\n%s", b)
	}
}

func readAll(res *http.Response) (string, error) {
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	return string(b), err
}
